# Developer/CI entry points. `make check` is the gate: vet, formatting,
# build, and the full test suite under Go's race detector — the debugging
# phase now runs concurrent (sched worker pool, controller prefetch), so
# our own race detector's implementation is itself race-checked.

GO ?= go

.PHONY: all build test race vet fmt check bench pardebug

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrent packages (sched, race, parallel, controller) plus
# everything that rides on them, under the Go race detector.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@files=$$(gofmt -l .); \
	if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; \
	fi

check: vet fmt build race
	@echo "check: OK"

bench:
	$(GO) test -bench=. -benchmem .

# Regenerate the E13 parallel-debugging-phase table.
pardebug: build
	$(GO) run ./cmd/ppdbench pardebug
