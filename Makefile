# Developer/CI entry points. `make check` is the gate: vet, formatting,
# build, and the full test suite under Go's race detector — the debugging
# phase now runs concurrent (sched worker pool, controller prefetch), so
# our own race detector's implementation is itself race-checked.

GO ?= go

.PHONY: all build test race vet fmt check cover ci bench bench-smoke pardebug obsoverhead execlog vet-mpl vetprune compilecache cache-check fusion-check absint-check dispatch serve serve-smoke stream stream-smoke emu-check debug

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrent packages (sched, race, parallel, controller) plus
# everything that rides on them, under the Go race detector.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@files=$$(gofmt -l .); \
	if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; \
	fi

check: vet fmt build race fusion-check
	@echo "check: OK"

# The checked-in profile-guided fusion table must be regenerable: the test
# re-profiles the standard workloads and diffs the result against
# internal/bytecode/fusiontable_gen.go. Refresh deliberately with
#   PPD_UPDATE_FUSION=1 $(GO) test ./internal/vm -run TestFusionTableFresh
fusion-check:
	$(GO) test -run TestFusionTableFresh ./internal/vm/
	@echo "fusion-check: OK"

# Abstract-interpretation gate: the engine's own unit suite, the fuzz
# targets' seed corpora, the vet golden matrix (which pins the four
# absint-backed passes), the lockset-pruning equivalence tests, and the
# certificate-widened fused-vs-unfused byte-identity checks.
absint-check:
	$(GO) test ./internal/analysis/absint/
	$(GO) test -run 'TestVetGolden|TestVetAcceptance' ./internal/analysis/
	$(GO) test -run 'TestMaskedEquivalentToUnfiltered|TestLocksetPrunesGuardedCounter' ./internal/race/
	$(GO) test -run 'TestLogGoldenFusedVsUnfused|TestRacesFusedVsUnfused|TestFusionCoverage' ./internal/vm/
	@echo "absint-check: OK"

# Coverage profile + per-package summary. internal/obs is the metrics
# contract every phase reports through, so it carries a hard floor.
OBS_COVER_FLOOR = 80
cover:
	$(GO) test -coverprofile=coverage.out ./...
	@$(GO) tool cover -func=coverage.out | tail -1
	@obs=$$($(GO) test -cover ./internal/obs/ | awk '{for (i=1;i<=NF;i++) if ($$i ~ /%/) print $$i}' | tr -d '%' | cut -d. -f1); \
	if [ "$$obs" -lt "$(OBS_COVER_FLOOR)" ]; then \
		echo "cover: internal/obs coverage $$obs% is below the $(OBS_COVER_FLOOR)% floor"; exit 1; \
	fi; \
	echo "cover: internal/obs $$obs% (floor $(OBS_COVER_FLOOR)%)"

# Static analysis over the checked-in MPL programs, with expectations:
# the clean programs must pass `ppd vet -strict`, and the racy program
# must fail it (so a regression that silences the analyzer breaks CI too).
vet-mpl: build
	$(GO) run ./cmd/ppd vet -strict testdata/quick.mpl
	$(GO) run ./cmd/ppd vet -strict testdata/crash.mpl
	@if $(GO) run ./cmd/ppd vet -strict testdata/racy.mpl >/dev/null 2>&1; then \
		echo "vet-mpl: racy.mpl must fail vet -strict"; exit 1; \
	fi
	@echo "vet-mpl: OK"

ci: check cover bench-smoke vet-mpl absint-check cache-check serve-smoke stream-smoke emu-check
	@echo "ci: OK"

# Debugging-phase fast-path gate: the pooled fast-dispatch emulation must
# be byte-identical to the fresh-VM generic oracle across the golden
# matrix (fused and unfused), pooled contexts must actually recycle,
# checkpointed ReplayTo must equal the from-scratch fold at every record
# boundary, and the E22 bench must run end to end (tiny -smoke version,
# no BENCH file written).
emu-check: build
	$(GO) test -run 'TestEmuDispatchByteIdentical|TestPoolReuseObservable|TestEmulateIntoRecycles|TestEmulateConcurrentWidths' ./internal/emulation/
	$(GO) test -run 'TestReplayTo' ./internal/controller/
	$(GO) run ./cmd/ppdbench debug -smoke
	@echo "emu-check: OK"

# Regenerate the E22 debugging-phase fast-path table (writes BENCH_debug.json).
debug: build
	$(GO) run ./cmd/ppdbench debug

# Online-pipeline gate: a live monitored run end-to-end (ppd watch), the
# early-abort path (run -first-race must flag the racy program with a
# nonzero exit), and the oracle-equivalence golden test.
stream-smoke: build
	$(GO) run ./cmd/ppd watch -quantum 1 testdata/racy.mpl
	@if $(GO) run ./cmd/ppd run -first-race -quantum 1 testdata/racy.mpl >/dev/null 2>&1; then \
		echo "stream-smoke: run -first-race must exit nonzero on racy.mpl"; exit 1; \
	fi
	$(GO) test -run TestOnlineRacesByteIdentical ./internal/stream/
	@echo "stream-smoke: OK"

# Regenerate the E20 streaming-analysis table (writes BENCH_stream.json).
stream: build
	$(GO) run ./cmd/ppdbench stream

# Daemon liveness gate: start `ppd serve` on an ephemeral port, drive one
# session through the whole HTTP surface (create → races → flowback →
# what-if → metrics → delete), and shut down cleanly.
serve-smoke: build
	$(GO) run ./cmd/ppd serve -smoke
	@echo "serve-smoke: OK"

# Regenerate the E19 serving-daemon load-test table (writes BENCH_serve.json).
serve: build
	$(GO) run ./cmd/ppdbench serve

bench:
	$(GO) test -bench=. -benchmem .

# One iteration of every benchmark: catches benchmarks that panic or rot
# without paying for stable timings.
bench-smoke:
	$(GO) test -run '^$$' -bench=. -benchtime=1x ./...

# Regenerate the E13 parallel-debugging-phase table.
pardebug: build
	$(GO) run ./cmd/ppdbench pardebug

# Regenerate the E14 observability-overhead table.
obsoverhead: build
	$(GO) run ./cmd/ppdbench obsoverhead

# Regenerate the E15 execution-hot-path table (writes BENCH_exec.json).
execlog: build
	$(GO) run ./cmd/ppdbench execlog

# Regenerate the E16 static-pruning table (writes BENCH_analysis.json).
vetprune: build
	$(GO) run ./cmd/ppdbench vetprune

# Regenerate the E17 compile-cache table (writes BENCH_compile.json).
compilecache: build
	$(GO) run ./cmd/ppdbench compilecache

# Regenerate the E18 dispatch table (writes BENCH_dispatch.json).
dispatch: build
	$(GO) run ./cmd/ppdbench dispatch

# Cache correctness gate: a warm cached compile must be observationally
# identical to a fresh one (execution log bytes, program output, vet
# diagnostics, race reports), the parallel pipeline byte-identical to the
# sequential one, and the codec a lossless fixed point.
cache-check:
	$(GO) test -run 'TestCacheColdWarmIdentical|TestCacheWarmDebugging|TestCacheEnvVar' .
	$(GO) test -run 'TestParallelByteIdentical|TestCompileCachedColdWarm' ./internal/compile/
	$(GO) test -run 'TestCodec|TestCache' ./internal/progdb/
	@echo "cache-check: OK"
