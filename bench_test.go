// Top-level benchmarks: one testing.B target per experiment in DESIGN.md's
// index (cmd/ppdbench prints the same results as formatted tables).
//
//	go test -bench=. -benchmem
package ppd

import (
	"fmt"
	"math/rand"
	"testing"

	"ppd/internal/bitset"
	"ppd/internal/compile"
	"ppd/internal/controller"
	"ppd/internal/eblock"
	"ppd/internal/emulation"
	"ppd/internal/obs"
	"ppd/internal/parallel"
	"ppd/internal/race"
	"ppd/internal/replay"
	"ppd/internal/source"
	"ppd/internal/vm"
	"ppd/internal/workloads"
)

func mustCompile(b *testing.B, w *workloads.Workload, cfg eblock.Config) *compile.Artifacts {
	b.Helper()
	art, err := compile.CompileSource(w.Name, w.Src, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return art
}

func mustCompileBare(b *testing.B, w *workloads.Workload) *compile.Artifacts {
	b.Helper()
	art, err := compile.CompileBareSource(w.Name, w.Src)
	if err != nil {
		b.Fatal(err)
	}
	return art
}

func runVM(b *testing.B, art *compile.Artifacts, mode vm.Mode) *vm.VM {
	b.Helper()
	v := vm.New(art.Prog, vm.Options{Mode: mode, Quantum: 1000})
	if err := v.Run(); err != nil {
		b.Fatal(err)
	}
	return v
}

// --- E1: execution-time overhead of incremental logging -------------------

func benchOverhead(b *testing.B, w *workloads.Workload) {
	bare := mustCompileBare(b, w)
	inst := mustCompile(b, w, eblock.DefaultConfig())
	b.Run("bare", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runVM(b, bare, vm.ModeRun)
		}
	})
	b.Run("logged", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runVM(b, inst, vm.ModeLog)
		}
	})
	b.Run("fulltrace", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runVM(b, inst, vm.ModeFullTrace)
		}
	})
}

func BenchmarkOverheadMatmul(b *testing.B)    { benchOverhead(b, workloads.Matmul(16)) }
func BenchmarkOverheadProdCons(b *testing.B)  { benchOverhead(b, workloads.ProdCons(600)) }
func BenchmarkOverheadTokenRing(b *testing.B) { benchOverhead(b, workloads.TokenRing(4, 100)) }
func BenchmarkOverheadDivide(b *testing.B)    { benchOverhead(b, workloads.Divide(11)) }

// --- E15: execution hot path — ModeLog overhead over ModeRun ---------------

// BenchmarkExecLogOverhead measures the execution phase's logging overhead
// on the *same instrumented bytecode*: "normal" runs the program with the
// e-block markers present but inert (ModeRun), "logged" performs the
// paper's incremental tracing (ModeLog). The logged/normal time ratio is
// E15's headline number, and allocs/op isolates the per-e-block-boundary
// allocation cost that the arena/COW logging path removes.
func BenchmarkExecLogOverhead(b *testing.B) {
	for _, w := range workloads.Standard() {
		art := mustCompile(b, w, eblock.DefaultConfig())
		b.Run(w.Name+"/normal", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				runVM(b, art, vm.ModeRun)
			}
		})
		b.Run(w.Name+"/logged", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				runVM(b, art, vm.ModeLog)
			}
		})
	}
}

// --- E3: debugging-phase latency — emulate one interval -------------------

func BenchmarkEmulateEBlock(b *testing.B) {
	w := workloads.Divide(11)
	art := mustCompile(b, w, eblock.DefaultConfig())
	v := runVM(b, art, vm.ModeLog)
	em := emulation.New(art.Prog, v.Log.Books[0])
	idx := em.LastPrelog()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := em.Emulate(idx); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E4: e-block granularity sweep -----------------------------------------

func BenchmarkEBlockGranularity(b *testing.B) {
	w := workloads.Matmul(16)
	for _, cfg := range []struct {
		name string
		c    eblock.Config
	}{
		{"func-only", eblock.Config{}},
		{"inline3", eblock.Config{LeafInlineThreshold: 3}},
		{"default", eblock.DefaultConfig()},
	} {
		art := mustCompile(b, w, cfg.c)
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runVM(b, art, vm.ModeLog)
			}
		})
	}
}

// --- E8: race-detector scaling ---------------------------------------------

func benchRaceDetector(b *testing.B, detect func(*parallel.Graph) []*race.Race) {
	w := workloads.Sharded(8, 80)
	art := mustCompile(b, w, eblock.Config{})
	v := vm.New(art.Prog, vm.Options{Mode: vm.ModeLog, Quantum: 3})
	if err := v.Run(); err != nil {
		b.Fatal(err)
	}
	g := parallel.Build(v.Log, len(art.Prog.Globals))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rs := detect(g); len(rs) != 0 {
			b.Fatalf("sharded workload should be race-free, got %d", len(rs))
		}
	}
}

func BenchmarkRaceNaive(b *testing.B)   { benchRaceDetector(b, race.Naive) }
func BenchmarkRaceIndexed(b *testing.B) { benchRaceDetector(b, race.Indexed) }

// BenchmarkRaceParallel is E13's detector half: Indexed's per-variable
// buckets sharded across a worker pool. Compare against BenchmarkRaceIndexed
// at each worker count; on a multi-core machine w>=4 should beat it on
// workloads.Sharded(8, 80), and the output race set is golden-identical
// (TestDetectorsEquivalence).
func BenchmarkRaceParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchRaceDetector(b, func(g *parallel.Graph) []*race.Race {
				return race.Parallel(g, workers)
			})
		})
	}
}

// --- E13: memoized emulation — the Controller's interval cache -------------

// BenchmarkEmulateCached measures a repeated Controller.Graph query served
// from the LRU cache; contrast with BenchmarkEmulateEBlock, which pays a
// full VM replay per call.
func BenchmarkEmulateCached(b *testing.B) {
	w := workloads.Divide(11)
	art := mustCompile(b, w, eblock.DefaultConfig())
	v := runVM(b, art, vm.ModeLog)
	c := controller.FromRun(art, v)
	idx, err := c.FocusInterval(0)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := c.Graph(0, idx); err != nil { // warm the cache
		b.Fatal(err)
	}
	before := c.Emulations()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Graph(0, idx); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if c.Emulations() != before {
		b.Fatalf("cached benchmark re-emulated: %d -> %d", before, c.Emulations())
	}
}

// --- E9: bit-mask vs. list set representation -------------------------------

func BenchmarkBitsetVsListSets(b *testing.B) {
	const universe = 512
	rng := rand.New(rand.NewSource(1))
	elems := make([]int, 96)
	for i := range elems {
		elems[i] = rng.Intn(universe)
	}
	bs1 := bitset.FromSlice(universe, elems[:48])
	bs2 := bitset.FromSlice(universe, elems[48:])
	ls1 := bitset.ListFromSlice(elems[:48])
	ls2 := bitset.ListFromSlice(elems[48:])
	b.Run("bitset-intersects", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = bs1.Intersects(bs2)
		}
	})
	b.Run("list-intersects", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = ls1.Intersects(ls2)
		}
	})
	b.Run("bitset-union", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			z := bs1.Clone()
			z.UnionWith(bs2)
		}
	})
	b.Run("list-union", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			z := ls1.Clone()
			z.UnionWith(ls2)
		}
	})
}

// --- E10: state restoration ---------------------------------------------------

func BenchmarkRestore(b *testing.B) {
	w := workloads.Divide(11)
	art := mustCompile(b, w, eblock.DefaultConfig())
	v := runVM(b, art, vm.ModeLog)
	book := v.Log.Books[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replay.RestoreAt(art.Prog, book, len(book.Records))
	}
}

// --- E2 is a size, not a time: assert the shape as a benchmark-guarded test ---

func BenchmarkLogVsTraceSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, w := range workloads.Standard() {
			art := mustCompile(b, w, eblock.DefaultConfig())
			vLog := runVM(b, art, vm.ModeLog)
			vTr := runVM(b, art, vm.ModeFullTrace)
			if vLog.Log.SizeBytes() >= vTr.Trace.SizeBytes() {
				b.Fatalf("%s: log (%d B) not smaller than trace (%d B)",
					w.Name, vLog.Log.SizeBytes(), vTr.Trace.SizeBytes())
			}
		}
	}
}

// --- E14: observability overhead --------------------------------------------

// BenchmarkObsOverhead proves the obs cost contract: with a nil sink the
// instrumented paths (vm logged run, parallel race detection) run at the
// same speed as before the layer existed — the disabled path is a nil check,
// not a measurement. Compare obs=off vs obs=on within each pair; the ISSUE
// acceptance bound is <= 2% for the off case relative to the seed.
func BenchmarkObsOverhead(b *testing.B) {
	w := workloads.Matmul(16)
	art := mustCompile(b, w, eblock.DefaultConfig())
	b.Run("vm/obs=off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runVM(b, art, vm.ModeLog)
		}
	})
	b.Run("vm/obs=on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v := vm.New(art.Prog, vm.Options{Mode: vm.ModeLog, Quantum: 1000, Obs: obs.New()})
			if err := v.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})

	rw := workloads.Sharded(8, 80)
	rart := mustCompile(b, rw, eblock.Config{})
	rv := vm.New(rart.Prog, vm.Options{Mode: vm.ModeLog, Quantum: 3})
	if err := rv.Run(); err != nil {
		b.Fatal(err)
	}
	g := parallel.Build(rv.Log, len(rart.Prog.Globals))
	b.Run("race/obs=off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if rs := race.Parallel(g, 4); len(rs) != 0 {
				b.Fatal("sharded workload should be race-free")
			}
		}
	})
	b.Run("race/obs=on", func(b *testing.B) {
		sink := obs.New()
		for i := 0; i < b.N; i++ {
			if rs := race.ParallelObs(g, 4, sink); len(rs) != 0 {
				b.Fatal("sharded workload should be race-free")
			}
		}
	})
}

// --- E17: parallel preparatory phase + persistent artifact cache ------------

// BenchmarkCompileParallel measures the cold preparatory phase at each
// fan-out width on the widest workload (Sharded generates one function per
// worker, so the per-function passes dominate). sequential is the E17
// baseline; on a multi-core machine workers>=4 should show the >=2x cold
// speedup the acceptance criteria ask for.
func BenchmarkCompileParallel(b *testing.B) {
	w := workloads.Sharded(64, 4)
	cfg := eblock.DefaultConfig()
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := compile.CompileSequential(source.NewFile(w.Name, w.Src), cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := compile.CompileWorkers(source.NewFile(w.Name, w.Src), cfg, workers, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompileCached contrasts a cold compile (full pipeline + store)
// with a warm one (content-hash lookup, decode, done). Warm should beat
// cold by >=10x on the wide workload.
func BenchmarkCompileCached(b *testing.B) {
	w := workloads.Sharded(64, 4)
	cfg := eblock.DefaultConfig()
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := compile.CompileWorkers(source.NewFile(w.Name, w.Src), cfg, 0, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		dir := b.TempDir()
		if _, err := compile.CompileCached(source.NewFile(w.Name, w.Src), cfg, dir, 0, nil); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			art, err := compile.CompileCached(source.NewFile(w.Name, w.Src), cfg, dir, 0, nil)
			if err != nil {
				b.Fatal(err)
			}
			if art.Hydrated() {
				b.Fatal("warm compile ran the pipeline")
			}
		}
	})
}
