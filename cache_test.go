package ppd

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"ppd/internal/eblock"
	"ppd/internal/workloads"
)

// cacheTestSources is the cold→warm corpus: every shipped workload plus
// the testdata programs (racy, crashing, and quick ones alike).
func cacheTestSources(t *testing.T) map[string]string {
	t.Helper()
	srcs := make(map[string]string)
	for _, w := range workloads.Standard() {
		srcs[w.Name+".mpl"] = w.Src
	}
	paths, err := filepath.Glob(filepath.Join("testdata", "*.mpl"))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		srcs[filepath.Base(p)] = string(data)
	}
	return srcs
}

type runResult struct {
	logBytes []byte
	output   string
	vetText  string
	races    string
}

// observe runs the full three-phase pipeline on prog and captures every
// externally visible artifact: the binary execution log, the program
// output, the vet text, and the race report.
func observe(t *testing.T, prog *Program) runResult {
	t.Helper()
	var out bytes.Buffer
	exec, err := prog.RunLogged(Options{Seed: 3, Output: &out})
	if err != nil {
		t.Fatal(err)
	}
	var log bytes.Buffer
	if err := exec.WriteLog(&log); err != nil {
		t.Fatal(err)
	}
	return runResult{
		logBytes: log.Bytes(),
		output:   out.String(),
		vetText:  prog.Vet().Text(),
		races:    exec.RaceReport(),
	}
}

// TestCacheColdWarmIdentical is the end-to-end cache-correctness check:
// for every program, a fresh compile, a cold cached compile, and a warm
// cached compile must be observationally identical — byte-identical
// execution logs, identical program output, identical vet diagnostics,
// and identical race reports.
func TestCacheColdWarmIdentical(t *testing.T) {
	t.Setenv("PPD_CACHE_DIR", "") // isolate from the environment
	dir := t.TempDir()
	for name, src := range cacheTestSources(t) {
		fresh, err := Compile(name, src)
		if err != nil {
			t.Fatalf("%s: fresh compile: %v", name, err)
		}
		want := observe(t, fresh)

		cold, err := CompileOpts(name, src, eblock.DefaultConfig(), Options{CacheDir: dir})
		if err != nil {
			t.Fatalf("%s: cold cached compile: %v", name, err)
		}
		warm, err := CompileOpts(name, src, eblock.DefaultConfig(), Options{CacheDir: dir})
		if err != nil {
			t.Fatalf("%s: warm cached compile: %v", name, err)
		}
		if warm.Artifacts().Hydrated() {
			t.Errorf("%s: warm program should start shallow", name)
		}
		for _, tc := range []struct {
			label string
			prog  *Program
		}{{"cold", cold}, {"warm", warm}} {
			got := observe(t, tc.prog)
			if !bytes.Equal(got.logBytes, want.logBytes) {
				t.Errorf("%s %s: execution log differs (%d vs %d bytes)",
					name, tc.label, len(got.logBytes), len(want.logBytes))
			}
			if got.output != want.output {
				t.Errorf("%s %s: program output differs:\n got: %q\nwant: %q",
					name, tc.label, got.output, want.output)
			}
			if got.vetText != want.vetText {
				t.Errorf("%s %s: vet text differs:\n got: %s\nwant: %s",
					name, tc.label, got.vetText, want.vetText)
			}
			if got.races != want.races {
				t.Errorf("%s %s: race report differs:\n got: %s\nwant: %s",
					name, tc.label, got.races, want.races)
			}
		}
	}
}

// TestCacheWarmDebugging drives the debugging phase off a warm (shallow)
// program: hydration must kick in transparently for breakpoints, flowback
// sessions, and what-if replay.
func TestCacheWarmDebugging(t *testing.T) {
	t.Setenv("PPD_CACHE_DIR", "")
	dir := t.TempDir()
	if _, err := CompileOpts("crash.mpl", facadeCrash, eblock.DefaultConfig(), Options{CacheDir: dir}); err != nil {
		t.Fatal(err)
	}
	warm, err := CompileOpts("crash.mpl", facadeCrash, eblock.DefaultConfig(), Options{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	exec, err := warm.RunLogged(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if exec.Failed() == nil {
		t.Fatal("expected the division-by-zero failure")
	}
	sess, err := exec.Debugger()
	if err != nil {
		t.Fatalf("debugger over warm program: %v", err)
	}
	var out bytes.Buffer
	sess.Exec(&out, "where")
	if out.Len() == 0 {
		t.Error("empty `where` output")
	}
}

// TestCacheEnvVar checks the PPD_CACHE_DIR fallback used by plain Compile.
func TestCacheEnvVar(t *testing.T) {
	dir := t.TempDir()
	t.Setenv("PPD_CACHE_DIR", dir)
	if _, err := Compile("env.mpl", `func main() { print(7); }`); err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.ppdc"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("cache entries after env-var compile = %d, want 1", len(entries))
	}
	warm, err := Compile("env.mpl", `func main() { print(7); }`)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Artifacts().Hydrated() {
		t.Error("warm env-var program should start shallow")
	}
	var out bytes.Buffer
	if err := warm.Run(Options{Output: &out}); err != nil {
		t.Fatal(err)
	}
	if out.String() != "7\n" {
		t.Errorf("warm run output = %q", out.String())
	}
}
