// Command ppd is the Parallel Program Debugger driver. It exposes the
// paper's three phases as subcommands:
//
//	ppd compile prog.mpl            preparatory phase: report the artifacts
//	ppd dump prog.mpl               program database, e-block plan, bytecode
//	ppd run prog.mpl [flags]        execution phase (optionally logged)
//	ppd debug prog.mpl [flags]      run logged, then interactive flowback
//	ppd races prog.mpl [flags]      run logged, then race detection
//	ppd watch prog.mpl [flags]      run with the online race pipeline attached
//	ppd vet prog.mpl [flags]        static analysis only: report diagnostics
//	ppd stats prog.mpl [flags]      all three phases, then the obs snapshot
//
// Example:
//
//	ppd debug examples/flowback/bug.mpl
//	ppd races testdata/racy.mpl -sweep 8
package main

import (
	"flag"
	"fmt"
	"os"

	"ppd"
	"ppd/internal/ast"
	"ppd/internal/bytecode"
	"ppd/internal/compile"
	"ppd/internal/controller"
	"ppd/internal/debugger"
	"ppd/internal/eblock"
	"ppd/internal/obs"
	"ppd/internal/parallel"
	"ppd/internal/race"
	"ppd/internal/source"
	"ppd/internal/vm"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "compile":
		err = cmdCompile(args)
	case "dump":
		err = cmdDump(args)
	case "run":
		err = cmdRun(args)
	case "debug":
		err = cmdDebug(args)
	case "races":
		err = cmdRaces(args)
	case "watch":
		err = cmdWatch(args)
	case "vet":
		err = cmdVet(args)
	case "stats":
		err = cmdStats(args)
	case "serve":
		err = cmdServe(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "ppd: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppd: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: ppd <command> [flags] file.mpl
commands:
  compile   run the preparatory phase and summarize its artifacts
            (flags: -cache-dir DIR -workers N)
  dump      print the program database, e-block plan, and bytecode
  run       execute the program (flags: -seed -quantum -mode run|log|trace
            -first-race to abort at the first online-detected race)
  debug     execute logged, then start the interactive flowback debugger
  races     execute logged, then detect races (flags: -seed -sweep N)
  watch     execute with the online analysis pipeline attached: races are
            reported while the program is still running (flags: -seed
            -quantum -first-race -batch N)
  vet       static analysis: race candidates, sync lints, uninitialized
            reads, dead stores (flags: -json -strict -timings)
  stats     run all three phases and print the observability snapshot
            (flags: -seed -quantum -json -trace -monitor -cache-dir DIR); with
            -ops, profile dispatch instead: opcode / opcode-pair /
            superinstruction execution counts (feeds the fusion table)
  serve     start the multi-session debugging daemon (flags: -addr
            -cache-dir DIR -ttl -max-sessions -workers -queue); with
            -smoke, self-test one session end-to-end and exit
`)
}

func loadFile(path string) (*source.File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return source.NewFile(path, string(data)), nil
}

func compileFile(path string) (*compile.Artifacts, error) {
	f, err := loadFile(path)
	if err != nil {
		return nil, err
	}
	return compile.Compile(f, eblock.DefaultConfig())
}

func cmdCompile(args []string) error {
	fs := flag.NewFlagSet("compile", flag.ExitOnError)
	cacheDir := fs.String("cache-dir", os.Getenv("PPD_CACHE_DIR"),
		"persistent artifact cache directory (empty disables; default $PPD_CACHE_DIR)")
	workers := fs.Int("workers", 0, "pipeline fan-out width (0 = GOMAXPROCS, 1 = sequential)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("compile: need one source file")
	}
	f, err := loadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	sink := obs.New()
	art, err := compile.CompileCached(f, eblock.DefaultConfig(), *cacheDir, *workers, sink)
	if err != nil {
		return err
	}
	// A cache hit returns a shallow artifact; the summary below needs the
	// e-block plan, so rebuild the semantic layers (codegen is skipped).
	if err := art.Hydrate(); err != nil {
		return err
	}
	fmt.Printf("compiled %s:\n", fs.Arg(0))
	fmt.Printf("  functions: %d, globals: %d, instructions: %d\n",
		len(art.Prog.Funcs), len(art.Prog.Globals), art.Prog.NumInstrs())
	fmt.Printf("  e-blocks: %d (%d inlined function(s))\n",
		len(art.Plan.Blocks), len(art.Plan.Inlined))
	units := 0
	for _, f := range art.Prog.Funcs {
		units += len(f.Units)
	}
	fmt.Printf("  shared-prelog sites: %d\n", units)
	if *cacheDir != "" {
		snap := sink.Snapshot()
		fmt.Printf("  cache: %d hit(s), %d miss(es), %d byte(s)\n",
			snap.Counters["compile.cache.hits"],
			snap.Counters["compile.cache.misses"],
			snap.Counters["compile.cache.bytes"])
	}
	return nil
}

func cmdDump(args []string) error {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	code := fs.Bool("code", false, "include bytecode disassembly")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("dump: need one source file")
	}
	art, err := compileFile(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Print(art.DB.Dump())
	if *code {
		fmt.Print(art.Prog.Disasm())
	}
	return nil
}

func vmFlags(fs *flag.FlagSet) (seed *int64, quantum *int) {
	seed = fs.Int64("seed", 0, "scheduler seed (0 = round-robin)")
	quantum = fs.Int("quantum", 40, "instructions per scheduling slice")
	return
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	seed, quantum := vmFlags(fs)
	mode := fs.String("mode", "run", "execution mode: run, log, or trace")
	firstRace := fs.Bool("first-race", false,
		"monitor the run online and cancel it at the first race (implies -mode log; exits 1 on a race)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("run: need one source file")
	}
	if *firstRace {
		return runFirstRace(fs.Arg(0), *seed, *quantum)
	}
	art, err := compileFile(fs.Arg(0))
	if err != nil {
		return err
	}
	var m vm.Mode
	switch *mode {
	case "run":
		m = vm.ModeRun
	case "log":
		m = vm.ModeLog
	case "trace":
		m = vm.ModeFullTrace
	default:
		return fmt.Errorf("run: unknown mode %q", *mode)
	}
	v := vm.New(art.Prog, vm.Options{Mode: m, Seed: *seed, Quantum: *quantum, Output: os.Stdout})
	rerr := v.Run()
	if m == vm.ModeLog {
		fmt.Fprintf(os.Stderr, "[log: %d process(es), %d bytes]\n",
			v.Log.NumProcs(), v.Log.SizeBytes())
	}
	if m == vm.ModeFullTrace {
		fmt.Fprintf(os.Stderr, "[trace: %d bytes]\n", v.Trace.SizeBytes())
	}
	if rerr != nil {
		return rerr
	}
	return nil
}

// runFirstRace is `ppd run -first-race`: the run carries the online
// pipeline and is cancelled the moment the frontier detector reports a
// race — a long racy execution terminates in a small fraction of its full
// runtime, with the triggering race(s) reported.
func runFirstRace(path string, seed int64, quantum int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	prog, err := ppd.CompileOpts(path, string(data), eblock.DefaultConfig(), ppd.Options{})
	if err != nil {
		return err
	}
	exec, err := prog.RunLogged(ppd.Options{
		Seed: seed, Quantum: quantum, Output: os.Stdout, StopAtFirstRace: true,
	})
	if err != nil {
		return err
	}
	switch {
	case exec.StoppedAtRace():
		fmt.Fprintf(os.Stderr, "[run cancelled at first race]\n")
		fmt.Fprint(os.Stderr, exec.OnlineRaceReport())
		os.Exit(1)
	case len(exec.OnlineRaces()) > 0:
		// A short run can complete before the cancellation lands; the
		// races are still the online pipeline's.
		fmt.Fprintf(os.Stderr, "[run completed before cancellation]\n")
		fmt.Fprint(os.Stderr, exec.OnlineRaceReport())
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "[run completed race-free under this schedule]\n")
	return nil
}

// cmdWatch runs the program with the online analysis pipeline attached:
// each race is printed as the frontier detector finds it — while the
// program is still producing records — and the summary reports the final
// canonical race set (byte-identical to `ppd races` on the same seed and
// quantum) plus the pipeline's frontier counters.
func cmdWatch(args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	seed, quantum := vmFlags(fs)
	firstRace := fs.Bool("first-race", false, "cancel the run at the first race")
	batch := fs.Int("batch", 0, "tee batch size in records (0 = default)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("watch: need one source file")
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	prog, err := ppd.CompileOpts(fs.Arg(0), string(data), eblock.DefaultConfig(), ppd.Options{})
	if err != nil {
		return err
	}
	exec, err := prog.RunLogged(ppd.Options{
		Seed: *seed, Quantum: *quantum, Output: os.Stdout,
		Monitor: true, StopAtFirstRace: *firstRace, StreamBatch: *batch,
		OnRace: func(ev ppd.RaceEvent) { fmt.Printf("[race] %s\n", ev.String()) },
	})
	if err != nil {
		return err
	}
	res := exec.OnlineResult()
	if exec.StoppedAtRace() {
		fmt.Println("[run cancelled at first race]")
	}
	fmt.Print(exec.OnlineRaceReport())
	fmt.Printf("[stream: %d batch(es), %d event(s), frontier highwater %d, %d retired, %d race report(s) online]\n",
		res.Batches, res.Events, res.Highwater, res.Retired, res.Online)
	return nil
}

func cmdDebug(args []string) error {
	fs := flag.NewFlagSet("debug", flag.ExitOnError)
	seed, quantum := vmFlags(fs)
	breakAt := fs.Int("break", 0, "halt all processes at statement sN (see `ppd dump`)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("debug: need one source file")
	}
	art, err := compileFile(fs.Arg(0))
	if err != nil {
		return err
	}
	v := vm.New(art.Prog, vm.Options{
		Mode: vm.ModeLog, Seed: *seed, Quantum: *quantum, Output: os.Stdout,
		BreakAt: ast.StmtID(*breakAt),
	})
	if rerr := v.Run(); rerr != nil {
		fmt.Fprintf(os.Stderr, "[execution halted: %v]\n", rerr)
	}
	if v.BreakHit {
		fmt.Fprintf(os.Stderr, "[halted at breakpoint s%d]\n", *breakAt)
	}
	sess, err := debugger.New(controller.FromRun(art, v))
	if err != nil {
		return err
	}
	return sess.Run(os.Stdin, os.Stdout)
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	seed, quantum := vmFlags(fs)
	jsonOut := fs.Bool("json", false, "emit the snapshot as JSON")
	trace := fs.Bool("trace", false, "stream phase-scope events to stderr")
	ops := fs.Bool("ops", false, "profile dispatch instead: per-opcode, opcode-pair, and superinstruction counts")
	monitor := fs.Bool("monitor", false, "attach the online analysis pipeline (adds the stream.* counters)")
	cacheDir := fs.String("cache-dir", os.Getenv("PPD_CACHE_DIR"),
		"persistent artifact cache directory (empty disables; default $PPD_CACHE_DIR)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("stats: need one source file")
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	prog, err := ppd.CompileOpts(fs.Arg(0), string(data), eblock.DefaultConfig(),
		ppd.Options{CacheDir: *cacheDir})
	if err != nil {
		return err
	}
	if *ops {
		st, err := prog.ProfileOps(ppd.Options{Seed: *seed, Quantum: *quantum})
		if err != nil {
			return err
		}
		fmt.Print(st.Text(
			func(op int) string { return bytecode.Op(op).String() },
			func(op int) string { return bytecode.SuperOp(op).String() },
		))
		fmt.Printf("fusion: %d window(s) admitted only by absint certificates\n",
			prog.CompileStats().Counters["fusion.windows.widened"])
		return nil
	}
	opts := ppd.Options{Seed: *seed, Quantum: *quantum, Monitor: *monitor}
	if *trace {
		opts.Trace = os.Stderr
	}
	exec, err := prog.RunLogged(opts)
	if err != nil {
		return err
	}
	// Exercise the debugging phase so debug.*, sched.*, and race.* report:
	// race detection plus one flowback graph build.
	_ = exec.Races()
	_, _, _ = exec.Controller().CurrentGraph(0)
	st := exec.Stats()
	if *jsonOut {
		b, err := st.JSON()
		if err != nil {
			return err
		}
		fmt.Println(string(b))
		return nil
	}
	fmt.Print(st.Text())
	return nil
}

func cmdRaces(args []string) error {
	fs := flag.NewFlagSet("races", flag.ExitOnError)
	seed, quantum := vmFlags(fs)
	sweep := fs.Int("sweep", 1, "number of scheduler seeds to try")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("races: need one source file")
	}
	art, err := compileFile(fs.Arg(0))
	if err != nil {
		return err
	}
	names := make([]string, len(art.Prog.Globals))
	for gid, def := range art.Prog.Globals {
		names[gid] = def.Name
	}
	mask := art.Vet(nil).Conflicts.Mask()
	anyRace := false
	for s := int64(0); s < int64(*sweep); s++ {
		v := vm.New(art.Prog, vm.Options{Mode: vm.ModeLog, Seed: *seed + s, Quantum: *quantum})
		if rerr := v.Run(); rerr != nil {
			fmt.Printf("seed %d: execution halted: %v\n", *seed+s, rerr)
		}
		g := parallel.Build(v.Log, len(art.Prog.Globals))
		g.VarNames = names
		races := race.IndexedMasked(g, mask, nil)
		if len(races) > 0 {
			anyRace = true
		}
		fmt.Printf("seed %d: %s", *seed+s, race.Report(races, nil))
	}
	if anyRace {
		os.Exit(1)
	}
	return nil
}
