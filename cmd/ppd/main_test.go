package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// withStdout captures os.Stdout while f runs (the subcommands write there).
func withStdout(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	defer func() {
		w.Close()
		os.Stdout = old
	}()
	f()
	w.Close()
	os.Stdout = old
	return <-done
}

func writeProgram(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.mpl")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCmdCompile(t *testing.T) {
	path := writeProgram(t, `func main() { print(1); }`)
	out := withStdout(t, func() {
		if err := cmdCompile([]string{path}); err != nil {
			t.Errorf("compile: %v", err)
		}
	})
	for _, want := range []string{"compiled", "functions: 1", "e-blocks:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if err := cmdCompile([]string{"/nonexistent.mpl"}); err == nil {
		t.Error("expected error for missing file")
	}
	if err := cmdCompile(nil); err == nil {
		t.Error("expected usage error")
	}
}

func TestCmdRunModes(t *testing.T) {
	path := writeProgram(t, `func main() { print(6 * 7); }`)
	for _, mode := range []string{"run", "log", "trace"} {
		out := withStdout(t, func() {
			if err := cmdRun([]string{"-mode", mode, path}); err != nil {
				t.Errorf("mode %s: %v", mode, err)
			}
		})
		if !strings.Contains(out, "42") {
			t.Errorf("mode %s: output %q", mode, out)
		}
	}
	if err := cmdRun([]string{"-mode", "bogus", path}); err == nil {
		t.Error("expected error for unknown mode")
	}
	crash := writeProgram(t, `func main() { print(1 / 0); }`)
	if err := cmdRun([]string{crash}); err == nil {
		t.Error("expected runtime error to propagate")
	}
}

func TestCmdDump(t *testing.T) {
	path := writeProgram(t, `
var g = 2;
func f(a int) int { return a + g; }
func main() { print(f(1)); }`)
	out := withStdout(t, func() {
		if err := cmdDump([]string{"-code", path}); err != nil {
			t.Errorf("dump: %v", err)
		}
	})
	for _, want := range []string{"program database", "USED=", "func f", "loadg"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q", want)
		}
	}
}

func TestCmdDebugScripted(t *testing.T) {
	path := writeProgram(t, `
var d = 5;
func main() {
	var x = 10 / (d - 5);
	print(x);
}`)
	oldIn := os.Stdin
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdin = r
	go func() {
		io.WriteString(w, "summary\ngraph 3\nwhatif d=6\nquit\n")
		w.Close()
	}()
	defer func() { os.Stdin = oldIn }()

	out := withStdout(t, func() {
		if err := cmdDebug([]string{path}); err != nil {
			t.Errorf("debug: %v", err)
		}
	})
	for _, want := range []string{"division by zero", "(ppd)", "DISAPPEARS"} {
		if !strings.Contains(out, want) {
			t.Errorf("debug session missing %q:\n%s", want, out)
		}
	}
}

func TestLoadFileErrors(t *testing.T) {
	if _, err := loadFile("/no/such/file.mpl"); err == nil {
		t.Error("expected error")
	}
	if _, err := compileFile(writeProgram(t, `func main() { x = ; }`)); err == nil {
		t.Error("expected compile error")
	}
}

func TestCmdStats(t *testing.T) {
	path := writeProgram(t, `
shared counter;
sem done = 0;
func w() { counter = counter + 1; V(done); }
func main() { spawn w(); spawn w(); P(done); P(done); print(counter); }`)

	out := withStdout(t, func() {
		if err := cmdStats([]string{"-quantum", "1", path}); err != nil {
			t.Errorf("stats: %v", err)
		}
	})
	for _, want := range []string{"counters:", "timers:",
		"compile.instrs", "exec.steps", "exec.log.bytes", "race.pairs", "debug.emulate"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}

	jsonOut := withStdout(t, func() {
		if err := cmdStats([]string{"-quantum", "1", "-json", path}); err != nil {
			t.Errorf("stats -json: %v", err)
		}
	})
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(jsonOut), &snap); err != nil {
		t.Fatalf("stats -json produced invalid JSON: %v\n%s", err, jsonOut)
	}
	if snap.Counters["exec.steps"] == 0 || snap.Counters["race.races"] == 0 {
		t.Errorf("JSON counters incomplete: %v", snap.Counters)
	}

	if err := cmdStats(nil); err == nil {
		t.Error("expected usage error")
	}
	if err := cmdStats([]string{"/nonexistent.mpl"}); err == nil {
		t.Error("expected error for missing file")
	}
}

func TestCmdVet(t *testing.T) {
	racy := writeProgram(t, `
shared SV;
sem done = 0;
func w() { SV = SV + 1; V(done); }
func main() { spawn w(); spawn w(); P(done); P(done); print(SV); }`)
	clean := writeProgram(t, `func main() { print(1); }`)

	var out bytes.Buffer
	failed, err := runVet([]string{racy}, &out)
	if err != nil {
		t.Fatalf("vet: %v", err)
	}
	if failed {
		t.Error("without -strict a warning must not fail the run")
	}
	for _, want := range []string{"[race-candidate]", "warning", "SV"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("vet output missing %q:\n%s", want, out.String())
		}
	}

	out.Reset()
	failed, err = runVet([]string{"-strict", racy}, &out)
	if err != nil || !failed {
		t.Errorf("-strict on a warning must fail (failed=%v err=%v)", failed, err)
	}

	out.Reset()
	failed, err = runVet([]string{"-strict", clean}, &out)
	if err != nil || failed {
		t.Errorf("-strict on a clean program must pass (failed=%v err=%v)", failed, err)
	}
	if out.String() != "no diagnostics\n" {
		t.Errorf("clean program output: %q", out.String())
	}

	out.Reset()
	if _, err := runVet([]string{"-json", racy}, &out); err != nil {
		t.Fatalf("vet -json: %v", err)
	}
	var rep struct {
		Diagnostics []struct {
			Code string `json:"code"`
			Pos  string `json:"pos"`
		} `json:"diagnostics"`
		Warnings int `json:"warnings"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("vet -json produced invalid JSON: %v\n%s", err, out.String())
	}
	if rep.Warnings == 0 || len(rep.Diagnostics) == 0 || rep.Diagnostics[0].Pos == "" {
		t.Errorf("vet -json incomplete: %s", out.String())
	}

	out.Reset()
	if _, err := runVet([]string{"-timings", racy}, &out); err != nil {
		t.Fatalf("vet -timings: %v", err)
	}
	for _, want := range []string{"pass racecand", "pass total"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("vet -timings missing %q:\n%s", want, out.String())
		}
	}

	if _, err := runVet(nil, &out); err == nil {
		t.Error("expected usage error")
	}
	if _, err := runVet([]string{"/nonexistent.mpl"}, &out); err == nil {
		t.Error("expected error for missing file")
	}
}
