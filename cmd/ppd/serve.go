package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ppd/internal/server"
)

// cmdServe runs the multi-session debugging daemon. With -smoke it
// instead starts the daemon on an ephemeral port, drives one session
// through the whole debugging surface over real HTTP (create → races →
// flowback → what-if → metrics → delete), scrapes /metrics, and shuts
// down cleanly — the CI liveness gate (`make serve-smoke`).
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "listen address")
	cacheDir := fs.String("cache-dir", os.Getenv("PPD_CACHE_DIR"),
		"persistent artifact cache shared by all sessions (empty disables; default $PPD_CACHE_DIR)")
	ttl := fs.Duration("ttl", 15*time.Minute, "idle-session eviction TTL (<= 0 disables)")
	maxSessions := fs.Int("max-sessions", 1024, "live-session cap (creation beyond it is refused)")
	workers := fs.Int("workers", 0, "concurrent heavy operations (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "admission queue bound before 429 (0 = 4x workers)")
	smoke := fs.Bool("smoke", false, "self-test: drive one session end-to-end, then exit")
	fs.Parse(args)

	cfg := server.Config{
		CacheDir:    *cacheDir,
		MaxSessions: *maxSessions,
		SessionTTL:  *ttl,
		Workers:     *workers,
		MaxQueue:    *queue,
	}
	if *smoke {
		return serveSmoke(cfg)
	}

	srv := server.New(cfg)
	srv.Start()
	defer srv.Close()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "ppd serve: listening on %s (ttl %v, max-sessions %d)\n",
		*addr, *ttl, *maxSessions)
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "ppd serve: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return httpSrv.Shutdown(shutCtx)
	}
}

// smokeProgram fails with a division by zero whose flowback and what-if
// are both interesting — the same shape as examples/flowback.
const smokeProgram = `
var g = 1;
func f(a int) int {
	g = g + a;
	return g * 2;
}
func main() {
	var r = f(20) / (g - 21);
	print(r);
}
`

func serveSmoke(cfg server.Config) error {
	srv := server.New(cfg)
	srv.Start()
	defer srv.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 30 * time.Second}

	call := func(method, path string, body any, out any) error {
		var rd io.Reader
		if body != nil {
			b, err := json.Marshal(body)
			if err != nil {
				return err
			}
			rd = bytes.NewReader(b)
		}
		req, err := http.NewRequest(method, base+path, rd)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode >= 300 {
			return fmt.Errorf("%s %s: %s: %s", method, path, resp.Status, data)
		}
		if out != nil {
			return json.Unmarshal(data, out)
		}
		return nil
	}

	// healthz
	if err := call("GET", "/healthz", nil, nil); err != nil {
		return err
	}
	// create
	var created struct {
		ID     string `json:"id"`
		Failed string `json:"failed"`
	}
	if err := call("POST", "/v1/sessions",
		map[string]any{"filename": "smoke.mpl", "source": smokeProgram}, &created); err != nil {
		return err
	}
	if created.Failed == "" {
		return fmt.Errorf("smoke: expected the program to fail, it did not")
	}
	fmt.Printf("smoke: session %s created (failure: %s)\n", created.ID, created.Failed)
	// races
	var races struct {
		Count  int    `json:"count"`
		Report string `json:"report"`
	}
	if err := call("GET", "/v1/sessions/"+created.ID+"/races", nil, &races); err != nil {
		return err
	}
	fmt.Printf("smoke: races count=%d\n", races.Count)
	// flowback
	var fb struct {
		Interval int    `json:"interval"`
		Fragment string `json:"fragment"`
	}
	if err := call("POST", "/v1/sessions/"+created.ID+"/flowback",
		map[string]any{"pid": 0, "depth": 3}, &fb); err != nil {
		return err
	}
	if fb.Fragment == "" {
		return fmt.Errorf("smoke: empty flowback fragment")
	}
	fmt.Printf("smoke: flowback interval=%d fragment=%d byte(s)\n", fb.Interval, len(fb.Fragment))
	// what-if: override g so the division no longer traps
	var wi struct {
		OriginalErr string `json:"original_err"`
		ModifiedErr string `json:"modified_err"`
	}
	if err := call("POST", "/v1/sessions/"+created.ID+"/whatif",
		map[string]any{"pid": 0, "prelog": -1, "global": "g", "value": 5}, &wi); err != nil {
		return err
	}
	if wi.OriginalErr == "" || wi.ModifiedErr != "" {
		return fmt.Errorf("smoke: what-if outcome unexpected (orig=%q mod=%q)", wi.OriginalErr, wi.ModifiedErr)
	}
	fmt.Printf("smoke: what-if ok (original reproduces %q, modified succeeds)\n", wi.OriginalErr)
	// vet + stats + list
	if err := call("GET", "/v1/sessions/"+created.ID+"/vet", nil, nil); err != nil {
		return err
	}
	if err := call("GET", "/v1/sessions/"+created.ID+"/stats", nil, nil); err != nil {
		return err
	}
	var list struct {
		Count int `json:"count"`
	}
	if err := call("GET", "/v1/sessions", nil, &list); err != nil {
		return err
	}
	if list.Count != 1 {
		return fmt.Errorf("smoke: session list count = %d, want 1", list.Count)
	}
	// metrics
	var metrics struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := call("GET", "/metrics", nil, &metrics); err != nil {
		return err
	}
	for _, key := range []string{"server.sessions.created", "exec.steps", "debug.cache.misses"} {
		if metrics.Counters[key] == 0 {
			return fmt.Errorf("smoke: /metrics counter %s = 0, want non-zero", key)
		}
	}
	fmt.Printf("smoke: /metrics ok (%d counters)\n", len(metrics.Counters))
	// delete
	if err := call("DELETE", "/v1/sessions/"+created.ID, nil, nil); err != nil {
		return err
	}
	if err := call("GET", "/v1/sessions/"+created.ID, nil, nil); err == nil {
		return fmt.Errorf("smoke: deleted session still answers")
	}
	fmt.Println("smoke: OK")
	return nil
}
