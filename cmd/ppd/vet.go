package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ppd/internal/analysis"
	"ppd/internal/compile"
	"ppd/internal/eblock"
	"ppd/internal/obs"
)

// cmdVet runs only the preparatory phase plus the static-analysis passes:
// no execution, no logs. With -strict, any warning (or error) makes the
// process exit 1 — the contract `make vet-mpl` and CI rely on.
func cmdVet(args []string) error {
	strictFailed, err := runVet(args, os.Stdout)
	if err != nil {
		return err
	}
	if strictFailed {
		os.Exit(1)
	}
	return nil
}

// runVet is cmdVet without the exit, for tests: it reports whether a
// -strict run found warnings.
func runVet(args []string, w io.Writer) (strictFailed bool, err error) {
	fs := flag.NewFlagSet("vet", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON")
	strict := fs.Bool("strict", false, "exit non-zero when any warning is reported")
	timings := fs.Bool("timings", false, "print per-pass timings after the diagnostics")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return false, fmt.Errorf("vet: need one source file")
	}
	f, err := loadFile(fs.Arg(0))
	if err != nil {
		return false, err
	}
	// Compile under the same sink so -timings can report the abstract
	// interpretation pass, which runs in the preparatory phase (its facts
	// feed fusion certificates there) and is only reused by vet.
	sink := obs.New()
	art, err := compile.CompileWithObs(f, eblock.DefaultConfig(), sink)
	if err != nil {
		return false, err
	}
	res := art.Vet(sink)
	if *jsonOut {
		data, jerr := res.JSON()
		if jerr != nil {
			return false, jerr
		}
		fmt.Fprintf(w, "%s\n", data)
	} else {
		fmt.Fprint(w, res.Text())
	}
	if *timings && !*jsonOut {
		snap := sink.Snapshot()
		// The abstract interpreter ran once in the preparatory phase
		// (compile.absint) or, on a facts-less artifact, inside Analyze
		// (analysis.absint); report whichever scope fired.
		for _, scope := range []string{"compile.absint", "analysis.absint"} {
			if ts, ok := snap.Timers[scope]; ok {
				fmt.Fprintf(w, "pass %-10s %v\n", "absint", ts.Total())
			}
		}
		for _, pass := range analysis.PassNames() {
			if ts, ok := snap.Timers["analysis."+pass]; ok {
				fmt.Fprintf(w, "pass %-10s %v\n", pass, ts.Total())
			}
		}
		if ts, ok := snap.Timers["analysis.total"]; ok {
			fmt.Fprintf(w, "pass %-10s %v\n", "total", ts.Total())
		}
	}
	warnings, _ := res.Counts()
	return *strict && warnings > 0, nil
}
