package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"ppd/internal/bytecode"
	"ppd/internal/compile"
	"ppd/internal/controller"
	"ppd/internal/eblock"
	"ppd/internal/emulation"
	"ppd/internal/logging"
	"ppd/internal/obs"
	"ppd/internal/vm"
	"ppd/internal/workloads"
)

// debugBench is E22: what the debugging-phase fast path buys. Two tables:
//
//   - per-emulation cost and allocations, pooled fast dispatch
//     (EmulateInto + shared context pool) vs the fresh-VM generic oracle —
//     the two paths are byte-identical (TestEmuDispatchByteIdentical), so
//     the delta is pure dispatch and allocation;
//   - ReplayTo restore cost across checkpoint spacings K — with
//     checkpoints a warm restore folds at most K records, without them it
//     folds the whole run prefix.
//
// `ppdbench debug -smoke` runs a tiny version for CI (no file written);
// the full run writes BENCH_debug.json.
func debugBench(w io.Writer) {
	smoke := false
	for _, a := range os.Args[2:] {
		if a == "-smoke" {
			smoke = true
		}
	}
	emuReps, jobCap, probeN := reps, 200, 24
	if smoke {
		emuReps, jobCap, probeN = 1, 20, 8
	}

	fmt.Fprintln(w, "=== E22: debugging-phase fast path — pooled emulation + checkpointed restore ===")
	fmt.Fprintf(w, "%-10s %9s %12s %12s %8s %12s %12s %8s\n",
		"workload", "intervals", "generic", "fast", "spd", "generic-a/op", "fast-a/op", "alloc-x")

	type emuRow struct {
		Workload      string  `json:"workload"`
		GoVersion     string  `json:"go_version"`
		Gomaxprocs    int     `json:"gomaxprocs"`
		Intervals     int     `json:"intervals"`
		GenericNsOp   int64   `json:"generic_ns_op"`
		FastNsOp      int64   `json:"fast_ns_op"`
		Speedup       float64 `json:"speedup"`
		GenericAllocs float64 `json:"generic_allocs_op"`
		FastAllocs    float64 `json:"fast_allocs_op"`
		AllocRatio    float64 `json:"alloc_ratio"`
	}
	var emuRows []emuRow

	type job struct{ pid, idx int }
	for _, wl := range workloads.Standard() {
		art, err := compile.CompileFusedSource(wl.Name, wl.Src, eblock.DefaultConfig(), bytecode.DefaultFusionTable())
		if err != nil {
			panic(err)
		}
		v := vm.New(art.Prog, vm.Options{Mode: vm.ModeLog, Quantum: 5})
		_ = v.Run()

		var jobs []job
		for pid, book := range v.Log.Books {
			for i, r := range book.Records {
				if r.Kind == logging.RecPrelog && len(jobs) < jobCap {
					jobs = append(jobs, job{pid, i})
				}
			}
		}
		if len(jobs) == 0 {
			continue
		}

		// sweep runs every job once through ems; per-variant construction
		// keeps the oracle free of pooled state.
		mkGeneric := func() []*emulation.Emulator {
			ems := make([]*emulation.Emulator, len(v.Log.Books))
			for pid, book := range v.Log.Books {
				ems[pid] = emulation.New(art.Prog, book)
				ems[pid].Generic = true
			}
			return ems
		}
		mkFast := func() []*emulation.Emulator {
			pool := emulation.NewPool(art.Prog, 2, nil)
			ems := make([]*emulation.Emulator, len(v.Log.Books))
			for pid, book := range v.Log.Books {
				ems[pid] = emulation.New(art.Prog, book)
				ems[pid].SetPool(pool)
			}
			return ems
		}
		measure := func(mk func() []*emulation.Emulator, reuse bool) (nsOp int64, allocsOp float64) {
			ems := mk()
			var res emulation.Result
			sweep := func() {
				for _, j := range jobs {
					if reuse {
						if err := ems[j.pid].EmulateInto(j.idx, &res); err != nil {
							panic(err)
						}
					} else if _, err := ems[j.pid].Emulate(j.idx); err != nil {
						panic(err)
					}
				}
			}
			sweep() // warm pool, caches, branch predictors
			best := bestOf(emuReps, sweep)
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			sweep()
			runtime.ReadMemStats(&m1)
			return best.Nanoseconds() / int64(len(jobs)),
				float64(m1.Mallocs-m0.Mallocs) / float64(len(jobs))
		}

		gNs, gAllocs := measure(mkGeneric, false)
		fNs, fAllocs := measure(mkFast, true)
		r := emuRow{
			Workload: wl.Name, GoVersion: runtime.Version(),
			Gomaxprocs: runtime.GOMAXPROCS(0), Intervals: len(jobs),
			GenericNsOp: gNs, FastNsOp: fNs,
			Speedup:       float64(gNs) / float64(fNs),
			GenericAllocs: gAllocs, FastAllocs: fAllocs,
			AllocRatio: gAllocs / max(fAllocs, 1),
		}
		emuRows = append(emuRows, r)
		fmt.Fprintf(w, "%-10s %9d %12v %12v %7.2fx %12.1f %12.1f %7.1fx\n",
			wl.Name, r.Intervals, time.Duration(gNs), time.Duration(fNs), r.Speedup,
			gAllocs, fAllocs, r.AllocRatio)
	}

	// ReplayTo checkpoint-spacing sweep: probe restores across the longest
	// book after one warming restore has built the checkpoints.
	fmt.Fprintf(w, "\n%-10s %9s %12s %9s\n", "ckpt-K", "records", "restore/op", "stored")
	type ckRow struct {
		K         int   `json:"checkpoint_every"`
		Records   int   `json:"records"`
		RestoreNs int64 `json:"restore_ns_op"`
		Stored    int64 `json:"checkpoints_stored"`
	}
	var ckRows []ckRow
	{
		wl := workloads.ProdCons(600)
		art, err := compile.CompileSource(wl.Name, wl.Src, eblock.DefaultConfig())
		if err != nil {
			panic(err)
		}
		v := vm.New(art.Prog, vm.Options{Mode: vm.ModeLog, Quantum: 5})
		_ = v.Run()
		pid, n := 0, 0
		for p, book := range v.Log.Books {
			if len(book.Records) > n {
				pid, n = p, len(book.Records)
			}
		}
		probes := make([]int, 0, probeN)
		for i := 1; i <= probeN; i++ {
			probes = append(probes, i*n/probeN)
		}
		for _, k := range []int{-1, 8, 32, 64, 128, 256} {
			sink := obs.New()
			c := controller.NewWithConfig(art, v.Log, controller.Config{
				Failure: v.Failure, Deadlock: v.Deadlock,
				CheckpointEvery: k, Obs: sink,
			})
			if _, err := c.ReplayTo(pid, n); err != nil { // warm the checkpoints
				panic(err)
			}
			best := bestOf(emuReps, func() {
				for _, idx := range probes {
					if _, err := c.ReplayTo(pid, idx); err != nil {
						panic(err)
					}
				}
			})
			r := ckRow{
				K: k, Records: n,
				RestoreNs: best.Nanoseconds() / int64(len(probes)),
				Stored:    sink.Counter("debug.emu.ckpt.stores").Value(),
			}
			ckRows = append(ckRows, r)
			kLabel := fmt.Sprintf("%d", k)
			if k < 0 {
				kLabel = "off"
			}
			fmt.Fprintf(w, "%-10s %9d %12v %9d\n", kLabel, r.Records, time.Duration(r.RestoreNs), r.Stored)
		}
	}

	if smoke {
		fmt.Fprintln(w, "(smoke run: BENCH_debug.json not written)")
		return
	}
	out := struct {
		Emulation []emuRow `json:"emulation"`
		ReplayTo  []ckRow  `json:"replayto"`
	}{emuRows, ckRows}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		panic(err)
	}
	if err := os.WriteFile("BENCH_debug.json", append(data, '\n'), 0o644); err != nil {
		panic(err)
	}
	fmt.Fprintln(w, "wrote BENCH_debug.json")
}
