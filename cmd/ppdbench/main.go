// Command ppdbench regenerates the paper's quantitative results (see
// DESIGN.md's experiment index and EXPERIMENTS.md for the mapping):
//
//	ppdbench overhead     E1  execution-time overhead of logging (§7: <15%)
//	ppdbench logsize      E2  log size vs. full trace size
//	ppdbench debugcost    E3  emulate one e-block vs. re-run the program
//	ppdbench eblocksweep  E4  e-block granularity tradeoff (§5.4)
//	ppdbench racescale    E8  naive vs. indexed race detection scaling
//	ppdbench setrep       E9  bit-mask vs. list set representation (§7)
//	ppdbench restore      E10 state restoration vs. re-execution (§5.7)
//	ppdbench races        E7  race detection on racy/race-free programs
//	ppdbench pardebug     E13 parallel debugging phase: sharded race
//	                      detection worker sweep + memoized emulation
//	ppdbench obsoverhead  E14 observability layer cost: obs off vs. on
//	ppdbench execlog      E15 execution hot path: ModeRun vs ModeLog vs
//	                      streamed sink (also writes BENCH_exec.json)
//	ppdbench vetprune     E16 static conflict pruning of race detection
//	                      (also writes BENCH_analysis.json)
//	ppdbench compilecache E17 parallel preparatory phase + persistent
//	                      artifact cache (also writes BENCH_compile.json)
//	ppdbench dispatch     E18 superinstruction fusion + table dispatch:
//	                      fused vs unfused interpretation under ModeRun
//	                      and ModeLog (also writes BENCH_dispatch.json)
//	ppdbench serve        E19 multi-session daemon under load: concurrent
//	                      sessions over HTTP, shared artifact cache, race-
//	                      report identity (also writes BENCH_serve.json)
//	ppdbench stream       E20 online streaming analysis: batch vs pipeline
//	                      time and retained memory, plus first-race early
//	                      abort (also writes BENCH_stream.json)
//	ppdbench debug        E22 debugging-phase fast path: pooled fast-
//	                      dispatch emulation vs the generic oracle, plus a
//	                      ReplayTo checkpoint-spacing sweep (also writes
//	                      BENCH_debug.json; -smoke for a tiny CI run)
//	ppdbench all          everything
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"time"

	"ppd/internal/analysis"
	"ppd/internal/bitset"
	"ppd/internal/bytecode"
	"ppd/internal/compile"
	"ppd/internal/controller"
	"ppd/internal/eblock"
	"ppd/internal/emulation"
	"ppd/internal/logging"
	"ppd/internal/obs"
	"ppd/internal/parallel"
	"ppd/internal/race"
	"ppd/internal/replay"
	"ppd/internal/sched"
	"ppd/internal/source"
	"ppd/internal/vm"
	"ppd/internal/workloads"
)

func main() {
	which := "all"
	if len(os.Args) > 1 {
		which = os.Args[1]
	}
	out := os.Stdout
	run := func(name string, f func(io.Writer)) {
		if which == "all" || which == name {
			f(out)
			fmt.Fprintln(out)
		}
	}
	run("overhead", overhead)
	run("logsize", logsize)
	run("debugcost", debugcost)
	run("eblocksweep", eblocksweep)
	run("racescale", racescale)
	run("setrep", setrep)
	run("restore", restoreBench)
	run("races", racesBench)
	run("shprelog", shprelogAblation)
	run("pardebug", pardebug)
	run("obsoverhead", obsOverhead)
	run("execlog", execlog)
	run("vetprune", vetprune)
	run("compilecache", compilecache)
	run("dispatch", dispatch)
	run("serve", serveBench)
	run("stream", streamBench)
	run("debug", debugBench)
}

// timeRun executes the program under the given mode and returns the best-
// of-n wall time. A large quantum keeps scheduling decisions identical
// across instrumentation variants (markers would otherwise shift quantum
// boundaries and change the interleaving of sync-bound programs).
func timeRun(prog *compile.Artifacts, mode vm.Mode, reps int) time.Duration {
	// One untimed warmup settles allocator and branch-predictor state so
	// the first-measured variant is not penalized.
	if err := vm.New(prog.Prog, vm.Options{Mode: mode, Quantum: 1000}).Run(); err != nil {
		panic(err)
	}
	best := time.Duration(1 << 62)
	for i := 0; i < reps; i++ {
		v := vm.New(prog.Prog, vm.Options{Mode: mode, Quantum: 1000})
		start := time.Now()
		if err := v.Run(); err != nil {
			panic(err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

const reps = 5

func overhead(w io.Writer) {
	fmt.Fprintln(w, "=== E1: execution-time overhead (paper §7: logging added <15%) ===")
	fmt.Fprintf(w, "%-10s %12s %12s %12s %9s %9s\n",
		"workload", "bare", "logged", "fulltrace", "log-ovh", "trace-ovh")
	for _, wl := range workloads.Standard() {
		bare, err := compile.CompileBareSource(wl.Name, wl.Src)
		if err != nil {
			panic(err)
		}
		inst, err := compile.CompileSource(wl.Name, wl.Src, eblock.DefaultConfig())
		if err != nil {
			panic(err)
		}
		tBare := timeRun(bare, vm.ModeRun, reps)
		tLog := timeRun(inst, vm.ModeLog, reps)
		tTrace := timeRun(inst, vm.ModeFullTrace, reps)
		fmt.Fprintf(w, "%-10s %12v %12v %12v %8.1f%% %8.1f%%\n",
			wl.Name, tBare, tLog, tTrace,
			100*float64(tLog-tBare)/float64(tBare),
			100*float64(tTrace-tBare)/float64(tBare))
	}
}

func logsize(w io.Writer) {
	fmt.Fprintln(w, "=== E2: log size vs. full trace size (motivation for incremental tracing) ===")
	fmt.Fprintf(w, "%-10s %12s %14s %8s\n", "workload", "log-bytes", "trace-bytes", "ratio")
	for _, wl := range workloads.Standard() {
		inst, err := compile.CompileSource(wl.Name, wl.Src, eblock.DefaultConfig())
		if err != nil {
			panic(err)
		}
		vLog := vm.New(inst.Prog, vm.Options{Mode: vm.ModeLog, Quantum: 5})
		if err := vLog.Run(); err != nil {
			panic(err)
		}
		vTr := vm.New(inst.Prog, vm.Options{Mode: vm.ModeFullTrace, Quantum: 5})
		if err := vTr.Run(); err != nil {
			panic(err)
		}
		ls, ts := vLog.Log.SizeBytes(), vTr.Trace.SizeBytes()
		fmt.Fprintf(w, "%-10s %12d %14d %7.1fx\n", wl.Name, ls, ts, float64(ts)/float64(ls))
	}
}

func debugcost(w io.Writer) {
	fmt.Fprintln(w, "=== E3: debugging-phase cost — emulate one interval vs. re-execute (§5.1-§5.3) ===")
	fmt.Fprintf(w, "%-10s %14s %14s %9s %10s\n",
		"workload", "emulate-1blk", "full-rerun", "speedup", "intervals")
	for _, wl := range workloads.Standard() {
		inst, err := compile.CompileSource(wl.Name, wl.Src, eblock.DefaultConfig())
		if err != nil {
			panic(err)
		}
		v := vm.New(inst.Prog, vm.Options{Mode: vm.ModeLog, Quantum: 5})
		if err := v.Run(); err != nil {
			panic(err)
		}
		em := emulation.New(inst.Prog, v.Log.Books[0])
		idx := em.LastPrelog()
		intervals := 0
		for _, b := range v.Log.Books {
			for _, r := range b.Records {
				if r.Kind == logging.RecPrelog {
					intervals++
				}
			}
		}
		best := time.Duration(1 << 62)
		for i := 0; i < reps; i++ {
			start := time.Now()
			if _, err := em.Emulate(idx); err != nil {
				panic(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		rerun := timeRun(inst, vm.ModeFullTrace, reps)
		fmt.Fprintf(w, "%-10s %14v %14v %8.1fx %10d\n",
			wl.Name, best, rerun, float64(rerun)/float64(best), intervals)
	}
}

func eblocksweep(w io.Writer) {
	fmt.Fprintln(w, "=== E4: e-block sizing tradeoff (§5.4): execution overhead vs. debug latency ===")
	wl := workloads.Matmul(16)
	bare, err := compile.CompileBareSource(wl.Name, wl.Src)
	if err != nil {
		panic(err)
	}
	tBare := timeRun(bare, vm.ModeRun, reps)
	fmt.Fprintf(w, "%-26s %9s %9s %12s %14s\n",
		"config", "blocks", "records", "exec-ovh", "focus-emulate")
	configs := []struct {
		name string
		cfg  eblock.Config
	}{
		{"func-blocks-only", eblock.Config{}},
		{"inline-leaves<=3", eblock.Config{LeafInlineThreshold: 3}},
		{"inline-leaves<=8", eblock.Config{LeafInlineThreshold: 8}},
		{"loops>=4", eblock.Config{LoopBlockMinStmts: 4}},
		{"default(inline8,loops8)", eblock.DefaultConfig()},
	}
	for _, c := range configs {
		inst, err := compile.CompileSource(wl.Name, wl.Src, c.cfg)
		if err != nil {
			panic(err)
		}
		tLog := timeRun(inst, vm.ModeLog, reps)
		v := vm.New(inst.Prog, vm.Options{Mode: vm.ModeLog, Quantum: 5})
		if err := v.Run(); err != nil {
			panic(err)
		}
		records := 0
		for _, b := range v.Log.Books {
			records += b.Len()
		}
		em := emulation.New(inst.Prog, v.Log.Books[0])
		idx := em.FindLastOpenPrelog()
		if idx < 0 {
			idx = em.PrelogIndices(findMainBlock(inst))[0]
		}
		best := time.Duration(1 << 62)
		for i := 0; i < reps; i++ {
			start := time.Now()
			if _, err := em.Emulate(idx); err != nil {
				panic(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		fmt.Fprintf(w, "%-26s %9d %9d %11.1f%% %14v\n",
			c.name, len(inst.Plan.Blocks), records,
			100*float64(tLog-tBare)/float64(tBare), best)
	}
}

func findMainBlock(art *compile.Artifacts) int {
	return int(art.Plan.ByFunc["main"].ID)
}

func racescale(w io.Writer) {
	fmt.Fprintln(w, "=== E8: race-detector scaling — naive all-pairs vs. variable-indexed (§7 open problem) ===")
	fmt.Fprintf(w, "%-22s %8s %12s %12s %12s %9s\n", "workload", "edges", "naive", "indexed", "parallel", "speedup")
	for _, shape := range []struct{ workers, rounds int }{
		{2, 10}, {4, 40}, {8, 80}, {8, 200},
	} {
		wl := workloads.Sharded(shape.workers, shape.rounds)
		inst, err := compile.CompileSource(wl.Name, wl.Src, eblock.Config{})
		if err != nil {
			panic(err)
		}
		v := vm.New(inst.Prog, vm.Options{Mode: vm.ModeLog, Quantum: 3})
		if err := v.Run(); err != nil {
			panic(err)
		}
		g := parallel.Build(v.Log, len(inst.Prog.Globals))
		tN := bestOf(3, func() { race.Naive(g) })
		tI := bestOf(3, func() { race.Indexed(g) })
		tP := bestOf(3, func() { race.Parallel(g, 0) })
		fmt.Fprintf(w, "%d-workers×%-10d %8d %12v %12v %12v %8.1fx\n",
			shape.workers, shape.rounds, len(g.Edges), tN, tI, tP, float64(tN)/float64(tI))
	}
}

func bestOf(n int, f func()) time.Duration {
	best := time.Duration(1 << 62)
	for i := 0; i < n; i++ {
		start := time.Now()
		f()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

func setrep(w io.Writer) {
	fmt.Fprintln(w, "=== E9: bit-mask vs. list sets (§7: 'can have a large payoff') ===")
	fmt.Fprintf(w, "%-22s %12s %12s %9s\n", "operation", "bitset", "list", "speedup")
	const universe = 512
	rng := rand.New(rand.NewSource(1))
	elems := make([]int, 96)
	for i := range elems {
		elems[i] = rng.Intn(universe)
	}
	bs1 := bitset.FromSlice(universe, elems[:48])
	bs2 := bitset.FromSlice(universe, elems[48:])
	ls1 := bitset.ListFromSlice(elems[:48])
	ls2 := bitset.ListFromSlice(elems[48:])

	const iters = 200000
	measure := func(f func()) time.Duration {
		start := time.Now()
		for i := 0; i < iters; i++ {
			f()
		}
		return time.Since(start)
	}
	tb := measure(func() { _ = bs1.Intersects(bs2) })
	tl := measure(func() { _ = ls1.Intersects(ls2) })
	fmt.Fprintf(w, "%-22s %12v %12v %8.1fx\n", "intersects×200k", tb, tl, float64(tl)/float64(tb))
	tb = measure(func() { z := bs1.Clone(); z.UnionWith(bs2) })
	tl = measure(func() { z := ls1.Clone(); z.UnionWith(ls2) })
	fmt.Fprintf(w, "%-22s %12v %12v %8.1fx\n", "clone+union×200k", tb, tl, float64(tl)/float64(tb))
}

func restoreBench(w io.Writer) {
	fmt.Fprintln(w, "=== E10: state restoration from postlogs vs. re-execution (§5.7) ===")
	wl := workloads.Divide(10)
	inst, err := compile.CompileSource(wl.Name, wl.Src, eblock.DefaultConfig())
	if err != nil {
		panic(err)
	}
	v := vm.New(inst.Prog, vm.Options{Mode: vm.ModeLog, Quantum: 5})
	if err := v.Run(); err != nil {
		panic(err)
	}
	book := v.Log.Books[0]
	nPost := 0
	for _, r := range book.Records {
		if r.Kind == logging.RecPostlog {
			nPost++
		}
	}
	rerun := timeRun(inst, vm.ModeRun, reps)
	fmt.Fprintf(w, "%-18s %12s   (re-execution from start: %v)\n", "restore point", "restore", rerun)
	for _, frac := range []int{1, 2, 4} {
		k := nPost / frac
		if k == 0 {
			k = 1
		}
		best := bestOf(reps, func() {
			if _, err := replay.RestoreAtPostlog(inst.Prog, book, k-1); err != nil {
				panic(err)
			}
		})
		fmt.Fprintf(w, "postlog %5d/%-5d %12v\n", k, nPost, best)
	}
}

// shprelogAblation quantifies the cross-write filtering of §5.5's shared
// prelogs: a literal implementation logs every shared read at every sync
// unit; the filter logs only variables other processes may write.
func shprelogAblation(w io.Writer) {
	fmt.Fprintln(w, "=== E12 (ablation): shared-prelog cross-write filtering ===")
	fmt.Fprintf(w, "%-12s %14s %14s %12s %12s\n",
		"workload", "log(filtered)", "log(literal)", "t(filtered)", "t(literal)")
	for _, wl := range []*struct {
		name string
		src  string
	}{
		{"matmul", workloads.Matmul(16).Src},
		{"tokenring", workloads.TokenRing(4, 100).Src},
		{"prodcons", workloads.ProdCons(600).Src},
	} {
		f := wl.src
		filtered, err := compile.CompileSource(wl.name, f, eblock.DefaultConfig())
		if err != nil {
			panic(err)
		}
		literal, err := compile.CompileUnfiltered(sourceFile(wl.name, f), eblock.DefaultConfig())
		if err != nil {
			panic(err)
		}
		vF := vm.New(filtered.Prog, vm.Options{Mode: vm.ModeLog, Quantum: 1000})
		if err := vF.Run(); err != nil {
			panic(err)
		}
		vL := vm.New(literal.Prog, vm.Options{Mode: vm.ModeLog, Quantum: 1000})
		if err := vL.Run(); err != nil {
			panic(err)
		}
		tF := timeRun(filtered, vm.ModeLog, reps)
		tL := timeRun(literal, vm.ModeLog, reps)
		fmt.Fprintf(w, "%-12s %13dB %13dB %12v %12v\n",
			wl.name, vF.Log.SizeBytes(), vL.Log.SizeBytes(), tF, tL)
	}
}

func sourceFile(name, src string) *source.File { return source.NewFile(name, src) }

func racesBench(w io.Writer) {
	fmt.Fprintln(w, "=== E7: race detection correctness (Defs 6.1-6.4) ===")
	fmt.Fprintf(w, "%-14s %10s %8s\n", "program", "edges", "races")
	for _, protect := range []bool{true, false} {
		wl := workloads.RacyCounter(4, 20, protect)
		inst, err := compile.CompileSource(wl.Name, wl.Src, eblock.Config{})
		if err != nil {
			panic(err)
		}
		v := vm.New(inst.Prog, vm.Options{Mode: vm.ModeLog, Quantum: 1})
		if err := v.Run(); err != nil {
			panic(err)
		}
		g := parallel.Build(v.Log, len(inst.Prog.Globals))
		rs := race.Indexed(g)
		fmt.Fprintf(w, "%-14s %10d %8d\n", wl.Name, len(g.Edges), len(rs))
	}
}

// pardebug is E13: parallel debugging-phase scaling. Table 1 sweeps the
// sharded race detector's worker count against the sequential indexed
// detector (identical output, golden-tested). Table 2 shows what the
// Controller's memoized emulation buys: the first Graph query pays a VM
// replay, the repeat is a cache hit, and PrefetchNeighbors moves the
// replay cost off the interactive path entirely.
func pardebug(w io.Writer) {
	fmt.Fprintln(w, "=== E13: parallel debugging phase (worker pool over §7's open problem) ===")
	fmt.Fprintf(w, "detector shards on %d worker(s) by default (GOMAXPROCS=%d)\n\n",
		sched.Shared().Workers(), runtime.GOMAXPROCS(0))

	fmt.Fprintf(w, "%-22s %8s %12s", "workload", "edges", "indexed")
	workerSweep := []int{1, 2, 4, 8}
	for _, k := range workerSweep {
		fmt.Fprintf(w, " %11s", fmt.Sprintf("par-w%d", k))
	}
	fmt.Fprintln(w)
	for _, shape := range []struct{ workers, rounds int }{
		{4, 40}, {8, 80}, {8, 200},
	} {
		wl := workloads.Sharded(shape.workers, shape.rounds)
		inst, err := compile.CompileSource(wl.Name, wl.Src, eblock.Config{})
		if err != nil {
			panic(err)
		}
		v := vm.New(inst.Prog, vm.Options{Mode: vm.ModeLog, Quantum: 3})
		if err := v.Run(); err != nil {
			panic(err)
		}
		g := parallel.Build(v.Log, len(inst.Prog.Globals))
		fmt.Fprintf(w, "%d-workers×%-10d %8d %12v",
			shape.workers, shape.rounds, len(g.Edges),
			bestOf(3, func() { race.Indexed(g) }))
		for _, k := range workerSweep {
			kk := k
			fmt.Fprintf(w, " %11v", bestOf(3, func() { race.Parallel(g, kk) }))
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintf(w, "\n%-10s %14s %14s %14s\n",
		"workload", "graph(cold)", "graph(cached)", "prefetched")
	for _, wl := range []*workloads.Workload{workloads.Divide(11), workloads.TokenRing(4, 100)} {
		inst, err := compile.CompileSource(wl.Name, wl.Src, eblock.DefaultConfig())
		if err != nil {
			panic(err)
		}
		v := vm.New(inst.Prog, vm.Options{Mode: vm.ModeLog, Quantum: 1000})
		if err := v.Run(); err != nil {
			panic(err)
		}
		// Cold: a fresh controller per query pays the VM replay.
		cold := bestOf(reps, func() {
			c := controller.FromRun(inst, v)
			idx, err := c.FocusInterval(0)
			if err != nil {
				panic(err)
			}
			if _, err := c.Graph(0, idx); err != nil {
				panic(err)
			}
		})
		// Cached: repeat query on a warm controller.
		c := controller.FromRun(inst, v)
		idx, err := c.FocusInterval(0)
		if err != nil {
			panic(err)
		}
		if _, err := c.Graph(0, idx); err != nil {
			panic(err)
		}
		cached := bestOf(reps, func() {
			if _, err := c.Graph(0, idx); err != nil {
				panic(err)
			}
		})
		// Prefetched: after PrefetchNeighbors, querying a neighbor is a hit.
		c.PrefetchNeighbors(0, idx)
		pre := bestOf(reps, func() {
			c.PrefetchNeighbors(0, idx) // warm: every target already cached
		})
		fmt.Fprintf(w, "%-10s %14v %14v %14v\n", wl.Name, cold, cached, pre)
	}
}

// execlog is E15: the execution hot path after the mode-specialized
// interpreter loops and allocation-free logging. For every standard workload
// it times the same instrumented bytecode under ModeRun (specialized
// uninstrumented loop), ModeLog retained, and ModeLog streaming into a
// counting sink, then writes the table to BENCH_exec.json for machine
// consumption. The overhead column — (logged-normal)/normal — is the
// reproduction's version of the paper's §7 "<15% added" claim measured on
// the optimized loops.
func execlog(w io.Writer) {
	fmt.Fprintln(w, "=== E15: execution hot path — mode-specialized loops + allocation-free logging ===")
	fmt.Fprintf(w, "%-10s %12s %12s %12s %12s %9s %11s\n",
		"workload", "normal", "logged", "logged+wr", "streamed", "log-ovh", "log-bytes")

	type row struct {
		Workload   string `json:"workload"`
		GoVersion  string `json:"go_version"`
		Gomaxprocs int    `json:"gomaxprocs"`
		NormalNs   int64  `json:"normal_ns"`
		LoggedNs   int64  `json:"logged_ns"`
		// LoggedWriteNs is logged_ns plus serializing the retained log —
		// the fair point of comparison for streamed_ns, whose timed region
		// necessarily includes serialization (records encode as they are
		// produced). See EXPERIMENTS.md E15 on the accounting.
		LoggedWriteNs int64   `json:"logged_write_ns"`
		StreamedNs    int64   `json:"streamed_ns"`
		LogOvhPct     float64 `json:"log_overhead_pct"`
		LogRatio      float64 `json:"log_ratio"`
		LogBytes      int     `json:"log_bytes"`
	}
	var rows []row
	for _, wl := range workloads.Standard() {
		inst, err := compile.CompileSource(wl.Name, wl.Src, eblock.DefaultConfig())
		if err != nil {
			panic(err)
		}
		tNorm := timeRun(inst, vm.ModeRun, reps)
		tLog := timeRun(inst, vm.ModeLog, reps)
		tLogWrite := bestOf(reps, func() {
			v := vm.New(inst.Prog, vm.Options{Mode: vm.ModeLog, Quantum: 1000})
			if err := v.Run(); err != nil {
				panic(err)
			}
			if err := v.Log.Write(&countWriter{}); err != nil {
				panic(err)
			}
		})
		var logBytes int
		tStream := bestOf(reps, func() {
			cw := &countWriter{}
			v := vm.New(inst.Prog, vm.Options{Mode: vm.ModeLog, Quantum: 1000, LogSink: cw})
			if err := v.Run(); err != nil {
				panic(err)
			}
			logBytes = cw.n
		})
		r := row{
			Workload: wl.Name, GoVersion: runtime.Version(),
			Gomaxprocs: runtime.GOMAXPROCS(0), NormalNs: tNorm.Nanoseconds(),
			LoggedNs: tLog.Nanoseconds(), LoggedWriteNs: tLogWrite.Nanoseconds(),
			StreamedNs: tStream.Nanoseconds(),
			LogOvhPct:  100 * float64(tLog-tNorm) / float64(tNorm),
			LogRatio:   float64(tLog) / float64(tNorm),
			LogBytes:   logBytes,
		}
		rows = append(rows, r)
		fmt.Fprintf(w, "%-10s %12v %12v %12v %12v %8.1f%% %11d\n",
			wl.Name, tNorm, tLog, tLogWrite, tStream, r.LogOvhPct, r.LogBytes)
	}
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		panic(err)
	}
	if err := os.WriteFile("BENCH_exec.json", append(data, '\n'), 0o644); err != nil {
		panic(err)
	}
	fmt.Fprintln(w, "wrote BENCH_exec.json")
}

// dispatch is E18: what the profile-guided superinstructions buy on top of
// the table dispatcher. For every standard workload it compiles twice from
// identical source — once with the default fusion table, once with fusion
// disabled — and times both under ModeRun (pure dispatch cost) and ModeLog
// (dispatch plus logging writes). The two programs produce byte-identical
// logs (golden-tested), so any delta is dispatch. Writes
// BENCH_dispatch.json.
func dispatch(w io.Writer) {
	fmt.Fprintln(w, "=== E18: superinstruction fusion + table dispatch ===")
	fmt.Fprintf(w, "%-10s %12s %12s %8s %12s %12s %8s %7s\n",
		"workload", "run-unfused", "run-fused", "run-spd", "log-unfused", "log-fused", "log-spd", "supers")

	type row struct {
		Workload     string  `json:"workload"`
		GoVersion    string  `json:"go_version"`
		Gomaxprocs   int     `json:"gomaxprocs"`
		Superinstrs  int     `json:"superinstrs"`
		RunUnfusedNs int64   `json:"run_unfused_ns"`
		RunFusedNs   int64   `json:"run_fused_ns"`
		RunSpeedup   float64 `json:"run_speedup"`
		LogUnfusedNs int64   `json:"log_unfused_ns"`
		LogFusedNs   int64   `json:"log_fused_ns"`
		LogSpeedup   float64 `json:"log_speedup"`
	}
	var rows []row
	for _, wl := range workloads.Standard() {
		fused, err := compile.CompileFusedSource(wl.Name, wl.Src, eblock.DefaultConfig(), bytecode.DefaultFusionTable())
		if err != nil {
			panic(err)
		}
		plain, err := compile.CompileFusedSource(wl.Name, wl.Src, eblock.DefaultConfig(), nil)
		if err != nil {
			panic(err)
		}
		tRunPlain := timeRun(plain, vm.ModeRun, reps)
		tRunFused := timeRun(fused, vm.ModeRun, reps)
		tLogPlain := timeRun(plain, vm.ModeLog, reps)
		tLogFused := timeRun(fused, vm.ModeLog, reps)
		r := row{
			Workload: wl.Name, GoVersion: runtime.Version(),
			Gomaxprocs: runtime.GOMAXPROCS(0), Superinstrs: fused.Prog.NumSuper(),
			RunUnfusedNs: tRunPlain.Nanoseconds(), RunFusedNs: tRunFused.Nanoseconds(),
			RunSpeedup:   float64(tRunPlain) / float64(tRunFused),
			LogUnfusedNs: tLogPlain.Nanoseconds(), LogFusedNs: tLogFused.Nanoseconds(),
			LogSpeedup: float64(tLogPlain) / float64(tLogFused),
		}
		rows = append(rows, r)
		fmt.Fprintf(w, "%-10s %12v %12v %7.2fx %12v %12v %7.2fx %7d\n",
			wl.Name, tRunPlain, tRunFused, r.RunSpeedup, tLogPlain, tLogFused, r.LogSpeedup, r.Superinstrs)
	}
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		panic(err)
	}
	if err := os.WriteFile("BENCH_dispatch.json", append(data, '\n'), 0o644); err != nil {
		panic(err)
	}
	fmt.Fprintln(w, "wrote BENCH_dispatch.json")
}

// countWriter counts streamed bytes without retaining them.
type countWriter struct{ n int }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += len(p)
	return len(p), nil
}

// obsOverhead is E14: the observability layer's cost contract. Column
// "obs=off" runs the instrumented code paths with a nil sink (the shipped
// default for library users who never ask for stats); "obs=on" attaches a
// live sink. The contract is that obs=off matches the pre-obs numbers and
// obs=on stays within a few percent — the hot loops carry no instrumentation
// either way (counters fold in at operation end).
func obsOverhead(w io.Writer) {
	fmt.Fprintln(w, "=== E14: observability overhead (cost contract: disabled = nil checks only) ===")
	fmt.Fprintf(w, "%-24s %12s %12s %9s\n", "path", "obs=off", "obs=on", "delta")

	// Execution phase: a compute-bound logged run.
	wl := workloads.Matmul(16)
	inst, err := compile.CompileSource(wl.Name, wl.Src, eblock.DefaultConfig())
	if err != nil {
		panic(err)
	}
	tOff := timeRun(inst, vm.ModeLog, reps)
	tOn := bestOf(reps, func() {
		v := vm.New(inst.Prog, vm.Options{Mode: vm.ModeLog, Quantum: 1000, Obs: obs.New()})
		if err := v.Run(); err != nil {
			panic(err)
		}
	})
	fmt.Fprintf(w, "%-24s %12v %12v %8.1f%%\n", "vm logged run (matmul)", tOff, tOn,
		100*float64(tOn-tOff)/float64(tOff))

	// Debugging phase: the sharded race detector.
	rwl := workloads.Sharded(8, 80)
	rinst, err := compile.CompileSource(rwl.Name, rwl.Src, eblock.Config{})
	if err != nil {
		panic(err)
	}
	rv := vm.New(rinst.Prog, vm.Options{Mode: vm.ModeLog, Quantum: 3})
	if err := rv.Run(); err != nil {
		panic(err)
	}
	g := parallel.Build(rv.Log, len(rinst.Prog.Globals))
	race.Parallel(g, 4) // warmup
	rOff := bestOf(4*reps, func() { race.Parallel(g, 4) })
	sink := obs.New()
	race.ParallelObs(g, 4, sink) // warmup
	rOn := bestOf(4*reps, func() { race.ParallelObs(g, 4, sink) })
	fmt.Fprintf(w, "%-24s %12v %12v %8.1f%%\n", "race.Parallel w=4", rOff, rOn,
		100*float64(rOn-rOff)/float64(rOff))
}

// vetprune is E16 (extended by E21): static conflict pruning of the
// dynamic race detector. The conflict-sparse sharded workload (each
// worker owns its shard, so the conflict matrix is empty) is the
// disjointness payoff case; the conflict-dense racy counter (every
// process hits one variable) bounds the cost of a mask that prunes
// nothing; and the guarded counter is the lockset payoff case — the same
// contended variable as the racy counter, but every access holds the
// mutex, so the abstract interpreter's lockset analysis empties the mask
// and the detector skips every bucket. Reports static-analysis time,
// unpruned vs pruned Indexed detection, and the pruned bucket count;
// writes BENCH_analysis.json.
func vetprune(w io.Writer) {
	fmt.Fprintln(w, "=== E16: static conflict pruning of dynamic race detection ===")
	fmt.Fprintf(w, "%-16s %12s %12s %12s %8s %8s %6s\n",
		"workload", "analysis", "unpruned", "pruned", "speedup", "skipped", "races")

	type row struct {
		Workload      string  `json:"workload"`
		GoVersion     string  `json:"go_version"`
		Gomaxprocs    int     `json:"gomaxprocs"`
		AnalysisNs    int64   `json:"analysis_ns"`
		UnprunedNs    int64   `json:"unpruned_ns"`
		PrunedNs      int64   `json:"pruned_ns"`
		Speedup       float64 `json:"speedup"`
		CandidateVars int     `json:"candidate_vars"`
		BucketsPruned int64   `json:"buckets_pruned"`
		Races         int     `json:"races"`
	}
	var rows []row
	for _, wl := range []*workloads.Workload{
		workloads.Sharded(24, 400),
		workloads.RacyCounter(8, 200, false),
		workloads.GuardedCounter(8, 200),
	} {
		inst, err := compile.CompileSource(wl.Name, wl.Src, eblock.Config{})
		if err != nil {
			panic(err)
		}
		v := vm.New(inst.Prog, vm.Options{Mode: vm.ModeLog, Quantum: 3})
		if err := v.Run(); err != nil {
			panic(err)
		}
		g := parallel.Build(v.Log, len(inst.Prog.Globals))

		var res *analysis.Result
		tAnalysis := bestOf(reps, func() { res = analysis.Analyze(inst.PDG, inst.Prog, nil) })
		mask := res.Conflicts.Mask()
		tUnpruned := bestOf(reps, func() { race.Indexed(g) })
		tPruned := bestOf(reps, func() { race.IndexedMasked(g, mask, nil) })

		sink := obs.New()
		races := race.IndexedMasked(g, mask, sink)
		// Cross-check: pruning must not change the verdict.
		if len(races) != len(race.Indexed(g)) {
			panic("pruned detector diverged from unfiltered on " + wl.Name)
		}
		pruned := sink.Snapshot().Counters["race.buckets.pruned"]

		r := row{
			Workload: wl.Name, GoVersion: runtime.Version(),
			Gomaxprocs: runtime.GOMAXPROCS(0), AnalysisNs: tAnalysis.Nanoseconds(),
			UnprunedNs: tUnpruned.Nanoseconds(), PrunedNs: tPruned.Nanoseconds(),
			Speedup:       float64(tUnpruned) / float64(tPruned),
			CandidateVars: res.Conflicts.NumCandidates(),
			BucketsPruned: pruned,
			Races:         len(races),
		}
		rows = append(rows, r)
		fmt.Fprintf(w, "%-16s %12v %12v %12v %7.2fx %8d %6d\n",
			wl.Name, tAnalysis, tUnpruned, tPruned, r.Speedup, r.BucketsPruned, r.Races)
	}
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		panic(err)
	}
	if err := os.WriteFile("BENCH_analysis.json", append(data, '\n'), 0o644); err != nil {
		panic(err)
	}
	fmt.Fprintln(w, "wrote BENCH_analysis.json")
}

// compilecache is E17: the preparatory phase after the parallel pass DAG
// and the persistent artifact cache. For each workload it times the
// sequential pipeline, the parallel pipeline (shared pool width), a cold
// cached compile (fresh directory per rep: full pipeline + vet + store),
// and a warm cached compile (decode only, no hydration). Parallel speedup
// is bounded by the machine — the reported gomaxprocs is part of the
// record, and on a single-CPU box sequential ≈ parallel is the honest
// result. Warm-over-cold is hardware-independent. Writes
// BENCH_compile.json.
func compilecache(w io.Writer) {
	fmt.Fprintln(w, "=== E17: parallel preparatory phase + persistent artifact cache ===")
	fmt.Fprintf(w, "pool=%d worker(s), GOMAXPROCS=%d\n\n",
		sched.Shared().Workers(), runtime.GOMAXPROCS(0))
	fmt.Fprintf(w, "%-14s %12s %12s %8s %12s %12s %9s %8s\n",
		"workload", "sequential", "parallel", "par-spd", "cold", "warm", "warm-spd", "bytes")

	type row struct {
		Workload        string  `json:"workload"`
		GoVersion       string  `json:"go_version"`
		Gomaxprocs      int     `json:"gomaxprocs"`
		PoolWorkers     int     `json:"pool_workers"`
		SequentialNs    int64   `json:"sequential_ns"`
		ParallelNs      int64   `json:"parallel_ns"`
		ParallelSpeedup float64 `json:"parallel_speedup"`
		ColdNs          int64   `json:"cold_ns"`
		WarmNs          int64   `json:"warm_ns"`
		WarmSpeedup     float64 `json:"warm_speedup"`
		CacheBytes      int64   `json:"cache_bytes"`
	}
	var rows []row
	cfg := eblock.DefaultConfig()
	for _, wl := range []*workloads.Workload{
		workloads.Matmul(16),
		workloads.Sharded(16, 4),
		workloads.Sharded(64, 4),
	} {
		tSeq := bestOf(reps, func() {
			if _, err := compile.CompileSequential(source.NewFile(wl.Name, wl.Src), cfg); err != nil {
				panic(err)
			}
		})
		tPar := bestOf(reps, func() {
			if _, err := compile.CompileWorkers(source.NewFile(wl.Name, wl.Src), cfg, 0, nil); err != nil {
				panic(err)
			}
		})

		root, err := os.MkdirTemp("", "ppdbench-cache")
		if err != nil {
			panic(err)
		}
		// Cold: a fresh directory every rep, so each one pays the whole
		// pipeline plus vet plus the store.
		tCold := bestOf(reps, func() {
			dir, err := os.MkdirTemp(root, "cold")
			if err != nil {
				panic(err)
			}
			if _, err := compile.CompileCached(source.NewFile(wl.Name, wl.Src), cfg, dir, 0, nil); err != nil {
				panic(err)
			}
		})
		// Warm: prime once, then every rep is a pure decode.
		warmDir := root
		if _, err := compile.CompileCached(source.NewFile(wl.Name, wl.Src), cfg, warmDir, 0, nil); err != nil {
			panic(err)
		}
		var cacheBytes int64
		tWarm := bestOf(reps, func() {
			sink := obs.New()
			art, err := compile.CompileCached(source.NewFile(wl.Name, wl.Src), cfg, warmDir, 0, sink)
			if err != nil {
				panic(err)
			}
			snap := sink.Snapshot()
			if snap.Counters["compile.cache.hits"] != 1 || art.Hydrated() {
				panic("warm compile was not a shallow cache hit on " + wl.Name)
			}
			cacheBytes = snap.Counters["compile.cache.bytes"]
		})
		if err := os.RemoveAll(root); err != nil {
			panic(err)
		}

		r := row{
			Workload: wl.Name, GoVersion: runtime.Version(),
			Gomaxprocs:   runtime.GOMAXPROCS(0),
			PoolWorkers:  sched.Shared().Workers(),
			SequentialNs: tSeq.Nanoseconds(), ParallelNs: tPar.Nanoseconds(),
			ParallelSpeedup: float64(tSeq) / float64(tPar),
			ColdNs:          tCold.Nanoseconds(), WarmNs: tWarm.Nanoseconds(),
			WarmSpeedup: float64(tCold) / float64(tWarm),
			CacheBytes:  cacheBytes,
		}
		rows = append(rows, r)
		fmt.Fprintf(w, "%-14s %12v %12v %7.2fx %12v %12v %8.1fx %8d\n",
			wl.Name, tSeq, tPar, r.ParallelSpeedup, tCold, tWarm, r.WarmSpeedup, r.CacheBytes)
	}
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		panic(err)
	}
	if err := os.WriteFile("BENCH_compile.json", append(data, '\n'), 0o644); err != nil {
		panic(err)
	}
	fmt.Fprintln(w, "wrote BENCH_compile.json")
}
