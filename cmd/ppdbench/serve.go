package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"ppd"
	"ppd/internal/server"
	"ppd/internal/workloads"
)

// serveBench is E19: the multi-session daemon under load. It starts the
// serving stack over real HTTP, opens serveSessions concurrent sessions
// round-robin over the standard workloads plus a racy counter, and drives
// each through create → races → flowback → delete, recording per-
// operation latency. Because every session compiles through one shared
// artifact cache, only the first session per distinct source pays a
// compile; /metrics is scraped afterwards to report the hit rate. The
// racy sessions' race reports are compared byte-for-byte against the
// single-process ppd.OpenSession oracle for the same (source, seed,
// quantum) — the daemon must add concurrency, not nondeterminism.
// Writes BENCH_serve.json.
const serveSessions = 120

func serveBench(w io.Writer) {
	fmt.Fprintln(w, "=== E19: multi-session serving daemon under load ===")

	cacheDir, err := os.MkdirTemp("", "ppdbench-serve")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(cacheDir)

	srv := server.New(server.Config{
		CacheDir:    cacheDir,
		MaxSessions: 2 * serveSessions,
		SessionTTL:  -1, // no janitor: the bench controls teardown
		MaxQueue:    4 * serveSessions,
	})
	srv.Start()
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := &http.Client{Timeout: 5 * time.Minute}

	call := func(method, path string, body, out any) error {
		var rd io.Reader
		if body != nil {
			b, err := json.Marshal(body)
			if err != nil {
				return err
			}
			rd = bytes.NewReader(b)
		}
		req, err := http.NewRequest(method, ts.URL+path, rd)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode >= 300 {
			return fmt.Errorf("%s %s: %s: %s", method, path, resp.Status, data)
		}
		if out != nil {
			return json.Unmarshal(data, out)
		}
		return nil
	}

	// The session mix: the four standard workloads plus a racy counter
	// whose report the oracle check pins. quantum 1 makes the racy
	// interleaving deterministic per seed and actually interleaved.
	type variant struct {
		name, src     string
		seed          int64
		quantum       int
		checkIdentity bool
	}
	var variants []variant
	for _, wl := range workloads.Standard() {
		variants = append(variants, variant{name: wl.Name, src: wl.Src})
	}
	racy := workloads.RacyCounter(4, 30, false)
	variants = append(variants, variant{
		name: racy.Name, src: racy.Src, seed: 7, quantum: 1, checkIdentity: true,
	})

	// Single-process oracle for the racy variant's race report.
	oracle := func(v variant) string {
		sess, err := ppd.OpenSession(v.name+".mpl", v.src, ppd.Options{
			Seed: v.seed, Quantum: v.quantum, CacheDir: cacheDir,
		})
		if err != nil {
			panic(err)
		}
		defer sess.Close()
		report, err := sess.RaceReport()
		if err != nil {
			panic(err)
		}
		return report
	}
	wantReport := oracle(variants[len(variants)-1])

	type opLat struct {
		mu sync.Mutex
		ds []time.Duration
	}
	rec := func(l *opLat, d time.Duration) {
		l.mu.Lock()
		l.ds = append(l.ds, d)
		l.mu.Unlock()
	}
	var latCreate, latRaces, latFlowback opLat
	var identityMismatches, failures int64
	var failMu sync.Mutex
	fail := func(err error) {
		failMu.Lock()
		failures++
		if failures <= 3 {
			fmt.Fprintf(w, "  session error: %v\n", err)
		}
		failMu.Unlock()
	}

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < serveSessions; i++ {
		v := variants[i%len(variants)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			var created struct {
				ID string `json:"id"`
			}
			t0 := time.Now()
			if err := call("POST", "/v1/sessions", map[string]any{
				"filename": v.name + ".mpl", "source": v.src,
				"seed": v.seed, "quantum": v.quantum,
			}, &created); err != nil {
				fail(err)
				return
			}
			rec(&latCreate, time.Since(t0))

			var races struct {
				Report string `json:"report"`
			}
			t0 = time.Now()
			if err := call("GET", "/v1/sessions/"+created.ID+"/races", nil, &races); err != nil {
				fail(err)
				return
			}
			rec(&latRaces, time.Since(t0))
			if v.checkIdentity && races.Report != wantReport {
				failMu.Lock()
				identityMismatches++
				failMu.Unlock()
			}

			t0 = time.Now()
			if err := call("POST", "/v1/sessions/"+created.ID+"/flowback",
				map[string]any{"pid": 0, "depth": 3}, nil); err != nil {
				fail(err)
				return
			}
			rec(&latFlowback, time.Since(t0))

			if err := call("DELETE", "/v1/sessions/"+created.ID, nil, nil); err != nil {
				fail(err)
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	var metrics struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := call("GET", "/metrics", nil, &metrics); err != nil {
		panic(err)
	}
	hits := metrics.Counters["compile.cache.hits"]
	misses := metrics.Counters["compile.cache.misses"]
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}

	pct := func(l *opLat, p float64) time.Duration {
		l.mu.Lock()
		defer l.mu.Unlock()
		if len(l.ds) == 0 {
			return 0
		}
		sorted := append([]time.Duration(nil), l.ds...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		return sorted[int(p*float64(len(sorted)-1))]
	}

	type row struct {
		GoVersion          string  `json:"go_version"`
		Gomaxprocs         int     `json:"gomaxprocs"`
		Sessions           int     `json:"sessions"`
		Failures           int64   `json:"failures"`
		IdentityMismatches int64   `json:"identity_mismatches"`
		WallNs             int64   `json:"wall_ns"`
		CreateP50Ns        int64   `json:"create_p50_ns"`
		CreateP99Ns        int64   `json:"create_p99_ns"`
		RacesP50Ns         int64   `json:"races_p50_ns"`
		RacesP99Ns         int64   `json:"races_p99_ns"`
		FlowbackP50Ns      int64   `json:"flowback_p50_ns"`
		FlowbackP99Ns      int64   `json:"flowback_p99_ns"`
		CacheHits          int64   `json:"compile_cache_hits"`
		CacheMisses        int64   `json:"compile_cache_misses"`
		CacheHitRate       float64 `json:"compile_cache_hit_rate"`
	}
	r := row{
		GoVersion: runtime.Version(), Gomaxprocs: runtime.GOMAXPROCS(0),
		Sessions: serveSessions, Failures: failures,
		IdentityMismatches: identityMismatches, WallNs: wall.Nanoseconds(),
		CreateP50Ns:   pct(&latCreate, 0.50).Nanoseconds(),
		CreateP99Ns:   pct(&latCreate, 0.99).Nanoseconds(),
		RacesP50Ns:    pct(&latRaces, 0.50).Nanoseconds(),
		RacesP99Ns:    pct(&latRaces, 0.99).Nanoseconds(),
		FlowbackP50Ns: pct(&latFlowback, 0.50).Nanoseconds(),
		FlowbackP99Ns: pct(&latFlowback, 0.99).Nanoseconds(),
		CacheHits:     hits, CacheMisses: misses, CacheHitRate: hitRate,
	}

	fmt.Fprintf(w, "%d concurrent sessions in %v (%d failure(s), %d identity mismatch(es))\n",
		serveSessions, wall, failures, identityMismatches)
	fmt.Fprintf(w, "%-10s %12s %12s\n", "operation", "p50", "p99")
	fmt.Fprintf(w, "%-10s %12v %12v\n", "create", pct(&latCreate, 0.50), pct(&latCreate, 0.99))
	fmt.Fprintf(w, "%-10s %12v %12v\n", "races", pct(&latRaces, 0.50), pct(&latRaces, 0.99))
	fmt.Fprintf(w, "%-10s %12v %12v\n", "flowback", pct(&latFlowback, 0.50), pct(&latFlowback, 0.99))
	fmt.Fprintf(w, "artifact cache: %d hit(s), %d miss(es) (%.1f%% hit rate)\n",
		hits, misses, 100*hitRate)
	if failures > 0 || identityMismatches > 0 {
		panic("serve bench: failures or race-report identity mismatches under load")
	}

	data, err := json.MarshalIndent([]row{r}, "", "  ")
	if err != nil {
		panic(err)
	}
	if err := os.WriteFile("BENCH_serve.json", append(data, '\n'), 0o644); err != nil {
		panic(err)
	}
	fmt.Fprintln(w, "wrote BENCH_serve.json")
}
