package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"

	"ppd"
	"ppd/internal/bitset"
	"ppd/internal/compile"
	"ppd/internal/eblock"
	"ppd/internal/logging"
	"ppd/internal/parallel"
	"ppd/internal/race"
	"ppd/internal/stream"
	"ppd/internal/vm"
	"ppd/internal/workloads"
)

// streamCapture is one logged execution observed the two ways the E20
// comparison needs: the retained log feeds the batch path, and the tapped
// FeedRecords are the exact stream the production tee hands the online
// pipeline. Both come from the same run, so the two analyses see
// identical records.
type streamCapture struct {
	recs  []parallel.FeedRecord
	log   *logging.ProgramLog
	n     int
	mask  *bitset.Set
	names []string
}

func captureStream(wl *workloads.Workload, seed int64, quantum int) *streamCapture {
	art, err := compile.CompileSource(wl.Name, wl.Src, eblock.DefaultConfig())
	if err != nil {
		panic(err)
	}
	c := &streamCapture{n: len(art.Prog.Globals)}
	v := vm.New(art.Prog, vm.Options{
		Mode: vm.ModeLog, Seed: seed, Quantum: quantum, Output: io.Discard,
		Tap: func(pid, idx int, r *logging.Record) {
			switch r.Kind {
			case logging.RecSync, logging.RecStart, logging.RecExit:
			default:
				return
			}
			c.recs = append(c.recs, parallel.FeedRecord{
				PID:     pid,
				RecIdx:  idx,
				Kind:    r.Kind,
				Op:      r.Op,
				Obj:     r.Obj,
				Stmt:    r.Stmt,
				Gsn:     r.Gsn,
				FromGsn: r.FromGsn,
				Reads:   append([]int(nil), r.Reads...),
				Writes:  append([]int(nil), r.Writes...),
			})
		},
	})
	if err := v.Run(); err != nil {
		panic(err)
	}
	c.log = v.Log
	c.names = make([]string, len(art.Prog.Globals))
	for i, g := range art.Prog.Globals {
		c.names[i] = g.Name
	}
	c.mask = art.Vet(nil).Conflicts.Mask()
	return c
}

func feedAll(p *stream.Pipeline, recs []parallel.FeedRecord, batch int) {
	for i := 0; i < len(recs); i += batch {
		j := i + batch
		if j > len(recs) {
			j = len(recs)
		}
		p.Feed(recs[i:j])
	}
}

// heapAfterGC returns the live heap after a full collection — the
// retained-bytes meter for the memory comparison. Retained-after-GC is
// used instead of sampling HeapAlloc peaks because it is reproducible and
// measures exactly the analysis state a debugger would have to keep.
func heapAfterGC() int64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return int64(m.HeapAlloc)
}

// streamBench is E20: the online streaming analysis pipeline. Table 1
// compares the batch debugging path (build the full parallelism graph
// from the retained log, then run the indexed detector) against the
// streaming pipeline (incremental build + frontier detection) over the
// same records at roughly 10x the golden tests' sizes: analysis time,
// ns/event, and retained analysis state (batch keeps the whole graph;
// streaming keeps the unretired frontier, whose high-water mark is the
// memory bound — except where a process that stops synchronizing pins the
// frontier open, which TokenRing/ProdCons exhibit by design). Table 2
// measures early abort through the public API: a full monitored run vs.
// Options.StopAtFirstRace, in wall time and executed VM steps. RacyTicker
// syncs every iteration so its races surface immediately; RacyCounter's
// one-long-edge workers are the honest contrast where abort can only
// trigger near the end. Writes BENCH_stream.json.
func streamBench(w io.Writer) {
	fmt.Fprintln(w, "=== E20: online streaming analysis — incremental build + frontier detection ===")
	fmt.Fprintf(w, "%-14s %8s %6s %12s %12s %9s %12s %12s %9s %9s\n",
		"workload", "events", "races", "batch", "stream", "ns/ev", "batch-mem", "stream-mem", "highwater", "retired")

	type pipeRow struct {
		Workload           string  `json:"workload"`
		GoVersion          string  `json:"go_version"`
		Gomaxprocs         int     `json:"gomaxprocs"`
		Events             int64   `json:"events"`
		Races              int     `json:"races"`
		BatchNs            int64   `json:"batch_ns"`
		StreamNs           int64   `json:"stream_ns"`
		StreamNsPerEvent   float64 `json:"stream_ns_per_event"`
		BatchRetainedBytes int64   `json:"batch_retained_bytes"`
		StreamLiveBytes    int64   `json:"stream_live_bytes"`
		LogBytes           int     `json:"log_bytes"`
		FrontierHighwater  int64   `json:"frontier_highwater"`
		Retired            int64   `json:"retired"`
	}
	var prows []pipeRow
	for _, wl := range []*workloads.Workload{
		workloads.Relay(4, 1500),
		workloads.TokenRing(4, 1000),
		workloads.ProdCons(6000),
		workloads.Sharded(8, 400),
	} {
		c := captureStream(wl, 1, 5)

		var batchRaces []*race.Race
		tBatch := bestOf(3, func() {
			g := parallel.Build(c.log, c.n)
			g.VarNames = c.names
			batchRaces = race.IndexedMasked(g, c.mask, nil)
		})
		var res *stream.Result
		tStream := bestOf(3, func() {
			p := stream.New(stream.Config{NShared: c.n, Mask: c.mask, VarNames: c.names})
			feedAll(p, c.recs, stream.DefaultBatch)
			res = p.Finish()
		})
		// The whole point of the oracle contract: any divergence here is a
		// pipeline bug, so the benchmark refuses to report numbers for it.
		if race.Report(res.Races, nil) != race.Report(batchRaces, nil) {
			panic("online detector diverged from batch oracle on " + wl.Name)
		}

		// Retained analysis state, batch: the full graph plus the race set
		// (the retained log itself is in the baseline for both sides; its
		// serialized size is reported separately as log_bytes).
		base := heapAfterGC()
		g := parallel.Build(c.log, c.n)
		g.VarNames = c.names
		rs := race.IndexedMasked(g, c.mask, nil)
		batchBytes := heapAfterGC() - base
		runtime.KeepAlive(g)
		runtime.KeepAlive(rs)
		g, rs = nil, nil
		_, _ = g, rs

		// Live pipeline state at end of stream, before Finish: the
		// unretired frontier, the builder's in-flight books, and the
		// accumulated races — what an online monitor actually holds.
		base = heapAfterGC()
		p := stream.New(stream.Config{NShared: c.n, Mask: c.mask, VarNames: c.names})
		feedAll(p, c.recs, stream.DefaultBatch)
		liveBytes := heapAfterGC() - base
		fin := p.Finish()
		runtime.KeepAlive(fin)
		if batchBytes < 0 {
			batchBytes = 0
		}
		if liveBytes < 0 {
			liveBytes = 0
		}

		r := pipeRow{
			Workload: wl.Name, GoVersion: runtime.Version(),
			Gomaxprocs: runtime.GOMAXPROCS(0),
			Events:     res.Events, Races: len(res.Races),
			BatchNs: tBatch.Nanoseconds(), StreamNs: tStream.Nanoseconds(),
			StreamNsPerEvent:   float64(tStream.Nanoseconds()) / float64(res.Events),
			BatchRetainedBytes: batchBytes, StreamLiveBytes: liveBytes,
			LogBytes:          c.log.SizeBytes(),
			FrontierHighwater: res.Highwater, Retired: res.Retired,
		}
		prows = append(prows, r)
		fmt.Fprintf(w, "%-14s %8d %6d %12v %12v %9.0f %12d %12d %9d %9d\n",
			wl.Name, r.Events, r.Races, tBatch, tStream, r.StreamNsPerEvent,
			r.BatchRetainedBytes, r.StreamLiveBytes, r.FrontierHighwater, r.Retired)
	}

	fmt.Fprintf(w, "\n%-14s %12s %12s %10s %10s %8s %7s\n",
		"workload", "full-run", "first-race", "full-stp", "abort-stp", "stopped", "races")

	type abortRow struct {
		Workload      string `json:"workload"`
		GoVersion     string `json:"go_version"`
		Gomaxprocs    int    `json:"gomaxprocs"`
		FullNs        int64  `json:"full_ns"`
		FirstRaceNs   int64  `json:"first_race_ns"`
		FullSteps     int64  `json:"full_steps"`
		AbortSteps    int64  `json:"abort_steps"`
		StoppedAtRace bool   `json:"stopped_at_race"`
		RacesAtAbort  int    `json:"races_at_abort"`
	}
	var arows []abortRow
	for _, wl := range []*workloads.Workload{
		workloads.RacyTicker(3, 2000),
		workloads.RacyCounter(3, 2000, false),
	} {
		prog, err := ppd.Compile(wl.Name+".mpl", wl.Src)
		if err != nil {
			panic(err)
		}
		var full *ppd.Execution
		tFull := bestOf(3, func() {
			e, err := prog.RunLogged(ppd.Options{Quantum: 3, Monitor: true, Output: io.Discard})
			if err != nil {
				panic(err)
			}
			full = e
		})
		var ab *ppd.Execution
		tAbort := bestOf(3, func() {
			e, err := prog.RunLogged(ppd.Options{Quantum: 3, StopAtFirstRace: true, Output: io.Discard})
			if err != nil {
				panic(err)
			}
			ab = e
		})
		r := abortRow{
			Workload: wl.Name, GoVersion: runtime.Version(),
			Gomaxprocs: runtime.GOMAXPROCS(0),
			FullNs:     tFull.Nanoseconds(), FirstRaceNs: tAbort.Nanoseconds(),
			FullSteps:     full.Stats().Counter("exec.steps"),
			AbortSteps:    ab.Stats().Counter("exec.steps"),
			StoppedAtRace: ab.StoppedAtRace(),
			RacesAtAbort:  len(ab.OnlineRaces()),
		}
		arows = append(arows, r)
		fmt.Fprintf(w, "%-14s %12v %12v %10d %10d %8t %7d\n",
			wl.Name, tFull, tAbort, r.FullSteps, r.AbortSteps, r.StoppedAtRace, r.RacesAtAbort)
	}

	out := struct {
		Pipeline  []pipeRow  `json:"pipeline"`
		FirstRace []abortRow `json:"first_race"`
	}{prows, arows}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		panic(err)
	}
	if err := os.WriteFile("BENCH_stream.json", append(data, '\n'), 0o644); err != nil {
		panic(err)
	}
	fmt.Fprintln(w, "wrote BENCH_stream.json")
}
