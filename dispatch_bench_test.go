// BenchmarkDispatch: the E18 matrix — fused vs unfused interpretation of
// every standard workload, under ModeRun (pure dispatch cost) and ModeLog
// (dispatch cost with the logging writes in the loop). `make bench-smoke`
// runs one iteration of each; `ppdbench dispatch` persists the measured
// speedups to BENCH_dispatch.json.
package ppd

import (
	"testing"

	"ppd/internal/bytecode"
	"ppd/internal/compile"
	"ppd/internal/eblock"
	"ppd/internal/vm"
	"ppd/internal/workloads"
)

func mustCompileFusion(b *testing.B, w *workloads.Workload, tab *bytecode.FusionTable) *compile.Artifacts {
	b.Helper()
	art, err := compile.CompileFusedSource(w.Name, w.Src, eblock.DefaultConfig(), tab)
	if err != nil {
		b.Fatal(err)
	}
	return art
}

func benchDispatch(b *testing.B, w *workloads.Workload) {
	fused := mustCompileFusion(b, w, bytecode.DefaultFusionTable())
	plain := mustCompileFusion(b, w, nil)
	for _, mode := range []vm.Mode{vm.ModeRun, vm.ModeLog} {
		b.Run(mode.String()+"/unfused", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runVM(b, plain, mode)
			}
		})
		b.Run(mode.String()+"/fused", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runVM(b, fused, mode)
			}
		})
	}
}

func BenchmarkDispatchMatmul(b *testing.B)    { benchDispatch(b, workloads.Matmul(16)) }
func BenchmarkDispatchProdCons(b *testing.B)  { benchDispatch(b, workloads.ProdCons(600)) }
func BenchmarkDispatchTokenRing(b *testing.B) { benchDispatch(b, workloads.TokenRing(4, 100)) }
func BenchmarkDispatchDivide(b *testing.B)    { benchDispatch(b, workloads.Divide(11)) }
