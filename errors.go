package ppd

import "errors"

// Sentinel errors of the session-centric API. Callers branch on them with
// errors.Is; every error returned by this package that falls into one of
// these classes wraps the corresponding sentinel, usually with detail
// (which option field, which session ID). internal/server maps each class
// to a stable HTTP status code — see the package doc of internal/server
// for the table.
var (
	// ErrInvalidOptions wraps every Options validation failure. The
	// message always names the offending field and its value, e.g.
	// "Options.Quantum = -3".
	ErrInvalidOptions = errors.New("ppd: invalid options")

	// ErrSessionNotFound reports a session ID that is not (or no longer)
	// live — never created, already closed, or expired by TTL eviction.
	ErrSessionNotFound = errors.New("ppd: session not found")

	// ErrSessionBusy reports a session-exclusive operation (re-run, close)
	// attempted while another operation holds the session.
	ErrSessionBusy = errors.New("ppd: session busy")

	// ErrSessionClosed reports a query on a Session after Close: its
	// emulation cache has been released and no further debugging-phase
	// work is possible.
	ErrSessionClosed = errors.New("ppd: session closed")

	// ErrServerSaturated reports admission-control backpressure: the
	// serving daemon's worker pool and its bounded queue are both full,
	// or the session table is at capacity. Clients should retry later.
	ErrServerSaturated = errors.New("ppd: server saturated")
)
