package ppd

import "errors"

// Sentinel errors of the session-centric API. Callers branch on them with
// errors.Is; every error returned by this package that falls into one of
// these classes wraps the corresponding sentinel, usually with detail
// (which option field, which session ID). internal/server maps each class
// to a stable HTTP status code — see the package doc of internal/server
// for the table.
var (
	// ErrInvalidOptions wraps every Options validation failure. The
	// message always names the offending field and its value, e.g.
	// "Options.Quantum = -3".
	ErrInvalidOptions = errors.New("ppd: invalid options")

	// ErrSessionNotFound reports a session ID that is not (or no longer)
	// live — never created, already closed, or expired by TTL eviction.
	ErrSessionNotFound = errors.New("ppd: session not found")

	// ErrSessionBusy reports a session-exclusive operation (re-run, close)
	// attempted while another operation holds the session.
	ErrSessionBusy = errors.New("ppd: session busy")

	// ErrSessionClosed reports a query on a Session after Close: its
	// emulation cache has been released and no further debugging-phase
	// work is possible.
	ErrSessionClosed = errors.New("ppd: session closed")

	// ErrServerSaturated reports admission-control backpressure: the
	// serving daemon's worker pool and its bounded queue are both full,
	// or the session table is at capacity. Clients should retry later.
	ErrServerSaturated = errors.New("ppd: server saturated")

	// ErrCompile classifies every preparatory-phase failure from
	// CompileOpts (and therefore OpenSession): the program itself is
	// wrong. Run-phase infrastructure errors (cancellation, log-sink
	// failures) never carry it, so callers can tell "fix the program"
	// apart from "the run didn't happen".
	ErrCompile = errors.New("ppd: compile failed")
)

// compileErr tags a preparatory-phase failure so errors.Is(err,
// ErrCompile) holds while the message (and the wrapped chain underneath)
// stays exactly what the compiler produced.
type compileErr struct{ err error }

func (e *compileErr) Error() string        { return e.err.Error() }
func (e *compileErr) Unwrap() error        { return e.err }
func (e *compileErr) Is(target error) bool { return target == ErrCompile }
