package ppd_test

import (
	"bytes"
	"fmt"
	"io"
	"strings"

	"ppd"
)

// ExampleExecution_Stats runs all three phases and reads selected counters
// from the merged snapshot. Counter values that depend only on the program
// (process count, race count) are deterministic; timings are not, so the
// example prints none.
func ExampleExecution_Stats() {
	prog, err := ppd.Compile("stats.mpl", `
sem done = 0;
func w() { V(done); }
func main() { spawn w(); P(done); }`)
	if err != nil {
		panic(err)
	}
	exec, err := prog.RunLogged(ppd.Options{Output: io.Discard})
	if err != nil {
		panic(err)
	}
	_ = exec.Races() // exercise the debugging phase so debug.*/race.* report

	st := exec.Stats()
	fmt.Println("processes:", st.Counter("exec.procs"))
	fmt.Println("races:", st.Counter("race.races"))
	fmt.Println("detector runs:", st.Counter("race.runs"))
	fmt.Println("log bytes recorded:", st.Counter("exec.log.bytes") > 0)
	// Output:
	// processes: 2
	// races: 0
	// detector runs: 1
	// log bytes recorded: true
}

// ExampleOpenSession bundles all three phases behind one handle: compile,
// logged run, and a what-if replay that patches a global before re-executing
// the failing region. Close releases the emulation cache.
func ExampleOpenSession() {
	sess, err := ppd.OpenSession("crash.mpl", `
var g = 1;
func f(a int) int { g = g + a; return g * 2; }
func main() { print(f(20) / (g - 21)); }`, ppd.Options{Output: io.Discard})
	if err != nil {
		panic(err)
	}
	defer sess.Close()

	fmt.Println("failed:", sess.Failed() != nil)
	wi, err := sess.WhatIf(0, -1, "g", 5)
	if err != nil {
		panic(err)
	}
	fmt.Println("original fails:", wi.Original.Err != nil)
	fmt.Println("patched g=5 succeeds:", wi.Modified.Err == nil)
	// Output:
	// failed: true
	// original fails: true
	// patched g=5 succeeds: true
}

// ExampleOptions_trace streams phase-scope events while the execution and
// debugging phases run. Each line carries an elapsed timestamp, so the
// example checks for the scope markers rather than printing the stream.
func ExampleOptions_trace() {
	prog, err := ppd.Compile("trace.mpl", `func main() { print(6 * 7); }`)
	if err != nil {
		panic(err)
	}
	var trace bytes.Buffer
	exec, err := prog.RunLogged(ppd.Options{Output: io.Discard, Trace: &trace})
	if err != nil {
		panic(err)
	}
	_ = exec.Races()

	fmt.Println(strings.Contains(trace.String(), "begin exec.run"))
	fmt.Println(strings.Contains(trace.String(), "end   debug.build"))
	// Output:
	// true
	// true
}
