// Deadlock: a classic lock-order inversion between two processes, analyzed
// with the parallel dynamic graph (§6: "The parallel dynamic graph can also
// help the user analyze the causes of deadlocks"). The report names each
// blocked process, the semaphore it waits on, and the likely holder —
// enough to read the cycle directly.
//
//	go run ./examples/deadlock
package main

import (
	"fmt"
	"log"

	"ppd/internal/compile"
	"ppd/internal/controller"
	"ppd/internal/eblock"
	"ppd/internal/vm"
)

const program = `
sem disk = 1;
sem net = 1;
sem started = 0;

func transfer() {
	P(net);             // worker takes net...
	V(started);
	P(disk);            // ...then wants disk (held by main): stuck
	V(disk);
	V(net);
}

func main() {
	P(disk);            // main takes disk...
	spawn transfer();
	P(started);         // make sure the worker holds net first
	P(net);             // ...then wants net (held by worker): stuck
	V(net);
	V(disk);
}
`

func main() {
	art, err := compile.CompileSource("deadlock.mpl", program, eblock.Config{})
	if err != nil {
		log.Fatalf("compile: %v", err)
	}
	v := vm.New(art.Prog, vm.Options{Mode: vm.ModeLog, Quantum: 1})
	runErr := v.Run()
	fmt.Printf("execution ended: %v\n\n", runErr)

	c := controller.FromRun(art, v)
	fmt.Print(c.Summary())
	fmt.Println()
	fmt.Print(c.DeadlockReport())
}
