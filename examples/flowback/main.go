// Flowback: runs the paper's Fig 4.1 program shape (d = SubD(a,b,a+b+c);
// if (d>0) sq=sqrt(d) else sq=sqrt(-d); a=a+sq) and shows incremental
// tracing at work: the top-level graph presents SubD and sqrt as sub-graph
// nodes built from postlog substitution, then the example drills into
// SubD's own interval — emulating only that e-block — exactly the
// "expand the sub-graph node" interaction of §5.3.
//
//	go run ./examples/flowback
package main

import (
	"fmt"
	"log"
	"os"

	"ppd/internal/compile"
	"ppd/internal/controller"
	"ppd/internal/dynpdg"
	"ppd/internal/eblock"
	"ppd/internal/vm"
)

const program = `
func SubD(x int, y int, z int) int {
	var scaled = z * 2;
	var base = x + y;
	return base - scaled;
}

func sqrt(v int) int {
	var r = 0;
	while ((r + 1) * (r + 1) <= v) { r = r + 1; }
	return r;
}

func main() {
	var c = 5;
	var a = 30;
	var b = 20;
	var d = SubD(a, b, a + b + c);
	var sq = 0;
	if (d > 0) { sq = sqrt(d); } else { sq = sqrt(-d); }
	a = a + sq;
	print("a=", a, " d=", d, " sq=", sq);
}
`

func main() {
	art, err := compile.CompileSource("fig41.mpl", program, eblock.Config{})
	if err != nil {
		log.Fatalf("compile: %v", err)
	}
	v := vm.New(art.Prog, vm.Options{Mode: vm.ModeLog, Output: os.Stdout})
	if err := v.Run(); err != nil {
		log.Fatalf("run: %v", err)
	}

	c := controller.FromRun(art, v)

	// Build main's dynamic graph. SubD and sqrt completed, so they appear
	// as sub-graph nodes whose effects came from their postlogs.
	mainIdx, err := c.FocusInterval(0)
	if err != nil {
		log.Fatal(err)
	}
	g, err := c.Graph(0, mainIdx)
	if err != nil {
		log.Fatal(err)
	}
	last := g.LastNode() // a = a + sq
	fmt.Println("top-level flowback at the final assignment (sub-graph nodes collapsed):")
	fmt.Print(controller.RenderFragment(g, last.ID, 2))

	// Count how much of the program the controller actually emulated.
	res := c.Result(0, mainIdx)
	fmt.Printf("\nincremental tracing: emulated %d log records; %d trace events\n",
		res.RecordsConsumed, res.Trace.Len())

	// The user asks about SubD: expand the sub-graph node by emulating
	// SubD's own interval (the nested log interval of §5.2).
	var subD *dynpdg.Node
	for _, n := range g.Nodes {
		if n.Kind == dynpdg.NodeSubGraph && n.Label == "SubD" {
			subD = n
		}
	}
	if subD == nil {
		log.Fatal("no SubD sub-graph node")
	}
	fmt.Printf("\nexpanding sub-graph node n%d [SubD]=%d:\n", subD.ID, subD.Value)

	em := c.Emulator(0)
	blk := art.Plan.ByFunc["SubD"]
	idxs := em.PrelogIndices(int(blk.ID))
	gd, err := c.Graph(0, idxs[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(controller.RenderFragment(gd, gd.LastNode().ID, 3))
}
