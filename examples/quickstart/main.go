// Quickstart: compile an MPL program, run it through PPD's three phases,
// and print the flowback fragment at the point of failure.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"ppd/internal/compile"
	"ppd/internal/controller"
	"ppd/internal/eblock"
	"ppd/internal/vm"
)

const program = `
// A classic off-by-one: average() divides by the wrong count.
shared data[5];

func fill() {
	var i = 0;
	while (i < 5) {
		data[i] = (i + 1) * 10;
		i = i + 1;
	}
}

func average(n int) int {
	var sum = 0;
	var i = 0;
	while (i < n) {
		sum = sum + data[i];
		i = i + 1;
	}
	return sum / (n - 5);    // BUG: should be sum / n
}

func main() {
	fill();
	print("avg=", average(5));
}
`

func main() {
	// Phase 1 — preparatory: the Compiler/Linker produces the object code,
	// the emulation package, the static graphs, and the program database.
	art, err := compile.CompileSource("quickstart.mpl", program, eblock.DefaultConfig())
	if err != nil {
		log.Fatalf("compile: %v", err)
	}
	fmt.Printf("preparatory phase: %d e-block(s), %d instruction(s)\n\n",
		len(art.Plan.Blocks), art.Prog.NumInstrs())

	// Phase 2 — execution: the object code runs and generates the log.
	v := vm.New(art.Prog, vm.Options{Mode: vm.ModeLog, Output: os.Stdout})
	runErr := v.Run()
	fmt.Printf("execution phase: %v (log: %d bytes)\n\n", runErr, v.Log.SizeBytes())

	// Phase 3 — debugging: the PPD Controller locates the open interval,
	// directs the emulation package to regenerate its trace, and presents
	// the dependence fragment at the failure.
	c := controller.FromRun(art, v)
	fmt.Print(c.Summary())

	g, _, err := c.CurrentGraph(0)
	if err != nil {
		log.Fatalf("debugging phase: %v", err)
	}
	focus := c.FocusNode(g, 0)
	fmt.Println("\nflowback from the failure (how the bad value was computed):")
	fmt.Print(controller.RenderFragment(g, focus.ID, 4))
}
