// Racedetect: builds the parallel dynamic graph (§6.1) for a three-process
// program in the shape of the paper's Fig 6.1 and §6.3 example — SV written
// by P1 and read by P3 under proper ordering, plus an unsynchronized write
// by P2 — and shows how ordering concurrent events exposes the race
// (Definitions 6.1–6.4).
//
//	go run ./examples/racedetect
package main

import (
	"fmt"
	"log"

	"ppd/internal/compile"
	"ppd/internal/eblock"
	"ppd/internal/parallel"
	"ppd/internal/race"
	"ppd/internal/vm"
)

const program = `
shared SV;
sem ordered = 0;
sem done = 0;

func p1() {
	SV = 10;            // write on edge e1
	V(ordered);         // orders e1 before p3's read
	V(done);
}

func p2() {
	SV = 20;            // unsynchronized write on edge e2: THE RACE
	V(done);
}

func p3() {
	P(ordered);
	print("p3 sees SV=", SV);   // read on edge e3
	V(done);
}

func main() {
	spawn p1();
	spawn p2();
	spawn p3();
	P(done);
	P(done);
	P(done);
}
`

func main() {
	art, err := compile.CompileSource("race.mpl", program, eblock.Config{})
	if err != nil {
		log.Fatalf("compile: %v", err)
	}

	fmt.Println("running with three different interleavings; the race is in the")
	fmt.Println("program, so every execution instance's graph exposes it:")
	for _, seed := range []int64{0, 7, 23} {
		v := vm.New(art.Prog, vm.Options{Mode: vm.ModeLog, Seed: seed, Quantum: 1})
		if err := v.Run(); err != nil {
			log.Fatalf("run: %v", err)
		}
		g := parallel.Build(v.Log, len(art.Prog.Globals))
		races := race.Indexed(g)

		fmt.Printf("\n--- seed %d: parallel dynamic graph ---\n", seed)
		fmt.Print(g.String())
		fmt.Print(race.Report(races, func(gid int) string {
			return art.Prog.Globals[gid].Name
		}))

		// The §6.3 ordered pair must never be reported: p1's write edge is
		// ordered before p3's read edge through the semaphore.
		for _, r := range races {
			pids := [2]int{r.E1.PID, r.E2.PID}
			if pids == [2]int{1, 3} && r.Kind != race.WriteWrite {
				// p1 is PID 1, p3 is PID 3; their write->read pair is
				// ordered, so a report would be a false positive.
				log.Fatalf("false positive: ordered p1/p3 pair reported racy")
			}
		}
	}
}
