// Restore: demonstrates §5.7 — rebuilding the program state at any postlog
// from the log alone, re-starting execution from a restored snapshot, and
// running a what-if experiment (change a value in a prelog, re-execute the
// interval, compare outcomes) to confirm a suspected bug fix before
// touching the source.
//
//	go run ./examples/restore
package main

import (
	"fmt"
	"log"
	"os"

	"ppd/internal/compile"
	"ppd/internal/eblock"
	"ppd/internal/emulation"
	"ppd/internal/replay"
	"ppd/internal/vm"
)

const program = `
var balance = 100;
var rate = 0;            // BUG: should be 5

func deposit(amount int) {
	balance = balance + amount;
}

func applyInterest() {
	balance = balance + balance * rate / 100;
}

func report() {
	print("balance=", balance);
}

func main() {
	deposit(50);
	applyInterest();
	report();
}
`

func main() {
	art, err := compile.CompileSource("bank.mpl", program, eblock.Config{})
	if err != nil {
		log.Fatalf("compile: %v", err)
	}
	v := vm.New(art.Prog, vm.Options{Mode: vm.ModeLog, Output: os.Stdout})
	if err := v.Run(); err != nil {
		log.Fatalf("run: %v", err)
	}
	book := v.Log.Books[0]
	gid := art.Info.GlobalByName("balance").GlobalID

	// 1. Restore the state after each completed interval.
	fmt.Println("\nstate restoration from postlogs (§5.7):")
	for i := 0; ; i++ {
		snap, err := replay.RestoreAtPostlog(art.Prog, book, i)
		if err != nil {
			break
		}
		fmt.Printf("  after postlog %d: balance=%d\n", i, snap.Globals[gid].Int)
	}

	// 2. Re-start execution from a restored point: re-run report() against
	// the state as of the first postlog (right after deposit).
	snap, err := replay.RestoreAtPostlog(art.Prog, book, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nre-running report() from the state after deposit():")
	fmt.Print("  ")
	if _, err := replay.ResumeFrom(art.Prog, snap, "report", nil, vm.Options{Output: os.Stdout}); err != nil {
		log.Fatal(err)
	}

	// 3. What-if: would rate=5 have produced interest? Re-execute
	// applyInterest's interval with the prelog's rate overridden.
	em := emulation.New(art.Prog, book)
	blk := art.Plan.ByFunc["applyInterest"]
	idx := em.PrelogIndices(int(blk.ID))[0]
	rateID := art.Info.GlobalByName("rate").GlobalID
	res, err := replay.WhatIf(art.Prog, book, idx,
		[]replay.Override{{Slot: -1, Global: rateID, Value: 5}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwhat-if: applyInterest with rate=5 instead of the logged 0:")
	fmt.Printf("  original  balance after interval: %d\n", res.Original.Globals[gid].Int)
	fmt.Printf("  modified  balance after interval: %d\n", res.Modified.Globals[gid].Int)
	for _, cg := range res.ChangedGlobals {
		fmt.Printf("  changed: %s\n", art.Prog.Globals[cg].Name)
	}
}
