module ppd

go 1.23
