package absint

import (
	"fmt"
	"sort"
	"strings"

	"ppd/internal/ast"
	"ppd/internal/cfg"
	"ppd/internal/pdg"
	"ppd/internal/sem"
	"ppd/internal/source"
	"ppd/internal/token"
)

// Fingerprint versions the abstract interpreter for the artifact-cache key:
// any change to the domain, transfer functions, or fixpoint order must bump
// it so stale cached facts (and the certificates derived from them) miss.
const Fingerprint = "absint-v1"

// Finding is one raw report from the engine, converted into the shared
// Diagnostic type by the vet passes (which own positions and severities'
// final rendering). Warn maps to Warning severity; otherwise Info.
type Finding struct {
	Pass    string // "divzero", "bounds", or "deadbranch"
	Code    string // diagnostic code, e.g. "div-by-zero"
	Warn    bool
	Pos     source.Pos
	Message string
}

// GuardedVar records that every access to shared variable Gid is provably
// made while holding lock-like semaphore Sem (see lockset.go).
type GuardedVar struct {
	Gid int
	Sem int
}

// Facts is the engine's full output. DivSafe/IdxSafe hold only true
// entries: statement S present means every division (resp. indexed access)
// in S is proven to never trap — the safety certificate fusion widening
// consumes. StmtIDs are program-unique, so the maps are flat.
type Facts struct {
	DivSafe map[ast.StmtID]bool
	IdxSafe map[ast.StmtID]bool

	Findings []Finding
	Guarded  []GuardedVar

	// Counters surfaced through vet -json (facts.intervals etc.): bounded
	// interval facts and nonzero facts over reachable (node, slot) states,
	// and statements analyzed under a nonempty must-held lockset.
	Intervals    int
	NonzeroFacts int
	LocksetStmts int
}

// Dump renders every fact deterministically; the fuzz target pins that two
// engine runs over the same program produce identical dumps.
func (f *Facts) Dump() string {
	var sb strings.Builder
	dumpIDs := func(label string, m map[ast.StmtID]bool) {
		ids := make([]int, 0, len(m))
		for id := range m {
			ids = append(ids, int(id))
		}
		sort.Ints(ids)
		fmt.Fprintf(&sb, "%s: %v\n", label, ids)
	}
	dumpIDs("divsafe", f.DivSafe)
	dumpIDs("idxsafe", f.IdxSafe)
	for _, fd := range f.Findings {
		fmt.Fprintf(&sb, "finding %s/%s warn=%t pos=%d %s\n", fd.Pass, fd.Code, fd.Warn, fd.Pos, fd.Message)
	}
	for _, g := range f.Guarded {
		fmt.Fprintf(&sb, "guarded g%d by s%d\n", g.Gid, g.Sem)
	}
	fmt.Fprintf(&sb, "counts: intervals=%d nonzero=%d lockset=%d\n",
		f.Intervals, f.NonzeroFacts, f.LocksetStmts)
	return sb.String()
}

// env is the per-program-point abstract state: one Val per frame slot.
// A nil env is ⊥ (the point is unreachable).
type env []Val

func envClone(e env) env {
	if e == nil {
		return nil
	}
	out := make(env, len(e))
	copy(out, e)
	return out
}

func envJoin(a, b env) env {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := make(env, len(a))
	for i := range a {
		out[i] = Join(a[i], b[i])
	}
	return out
}

func envWiden(old, new env) env {
	if old == nil {
		return new
	}
	if new == nil {
		return old
	}
	out := make(env, len(old))
	for i := range old {
		out[i] = Widen(old[i], new[i])
	}
	return out
}

func envEq(a, b env) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// recorder collects findings and per-statement certificate facts during
// the final (post-fixpoint) pass; nil while iterating to fixpoint.
type recorder struct {
	e               *engine
	divSeen, divAll bool
	idxSeen, idxAll bool
}

type engine struct {
	p    *pdg.Program
	info *sem.Info

	// globalVal abstracts each scalar global: a constant when nothing in
	// the program ever writes it (initializer value), else ⊤. elemVal is
	// the same for array elements (0 when the array is never written).
	globalVal []Val
	elemVal   []Val

	// ret maps each function to the abstract join of its return values,
	// iterated to an interprocedural fixpoint (parameters stay ⊤).
	ret map[string]Val

	facts *Facts
}

// Analyze runs the abstract interpreter over the whole program and
// returns its facts. The result is deterministic: functions are visited
// in FuncList order, nodes in CFG id order, and every fixpoint uses a
// fixed reverse-postorder schedule.
func Analyze(p *pdg.Program) *Facts {
	e := &engine{
		p:    p,
		info: p.Info,
		ret:  make(map[string]Val, len(p.Info.FuncList)),
	}
	for _, fi := range p.Info.FuncList {
		e.ret[fi.Name()] = Bottom()
	}
	e.computeGlobals()

	// Interprocedural return-value rounds: ascending from ⊥ with widening
	// after the first few rounds; the threshold chain bounds each value's
	// height, so the cap is defensive only.
	const maxRounds = 24
	stable := false
	for round := 0; round < maxRounds && !stable; round++ {
		stable = true
		for _, fi := range p.Info.FuncList {
			fp := p.Funcs[fi.Name()]
			if fp == nil {
				continue
			}
			states := e.analyzeFunc(fp)
			nv := e.returnVal(fp, states)
			old := e.ret[fi.Name()]
			merged := Join(old, nv)
			if round >= 3 {
				merged = Widen(old, merged)
			}
			if merged != old {
				e.ret[fi.Name()] = merged
				stable = false
			}
		}
	}
	if !stable {
		for name := range e.ret {
			e.ret[name] = Top()
		}
	}

	facts := &Facts{
		DivSafe: make(map[ast.StmtID]bool),
		IdxSafe: make(map[ast.StmtID]bool),
	}
	e.facts = facts
	for _, fi := range p.Info.FuncList {
		fp := p.Funcs[fi.Name()]
		if fp == nil {
			continue
		}
		e.record(fp, e.analyzeFunc(fp))
	}
	e.locksets()
	return facts
}

// computeGlobals fills globalVal/elemVal: a global no statement anywhere
// defines keeps its (constant-folded) initializer forever; anything
// written by any function — in any process — is ⊤.
func (e *engine) computeGlobals() {
	n := e.info.NumGlobals()
	e.globalVal = make([]Val, n)
	e.elemVal = make([]Val, n)
	written := make([]bool, n)
	for _, fi := range e.info.FuncList {
		if sum := e.p.Inter.Summaries[fi.Name()]; sum != nil {
			sum.DirectDefined.ForEach(func(g int) { written[g] = true })
		}
	}
	for gid, sym := range e.info.Globals {
		e.globalVal[gid] = Top()
		e.elemVal[gid] = Top()
		if sym.Kind != sem.SymGlobal || written[gid] {
			continue
		}
		if sym.Type.Kind == ast.TypeArray {
			e.elemVal[gid] = Const(0) // never-written array: all elements 0
			continue
		}
		if d := e.globalDecl(sym.Name); d != nil && d.Init != nil {
			if k, ok := constEval(d.Init); ok {
				e.globalVal[gid] = Const(k)
			}
		} else {
			e.globalVal[gid] = Const(0)
		}
	}
}

func (e *engine) globalDecl(name string) *ast.GlobalDecl {
	for _, d := range e.info.Prog.Globals {
		if d.Name.Name == name {
			return d
		}
	}
	return nil
}

// constEval folds a constant initializer expression.
func constEval(x ast.Expr) (int64, bool) {
	switch x := x.(type) {
	case *ast.IntLit:
		return x.Value, true
	case *ast.BoolLit:
		if x.Value {
			return 1, true
		}
		return 0, true
	case *ast.ParenExpr:
		return constEval(x.X)
	case *ast.UnaryExpr:
		v, ok := constEval(x.X)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case token.SUB:
			return -v, true
		case token.NOT:
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
	case *ast.BinaryExpr:
		a, ok1 := constEval(x.X)
		b, ok2 := constEval(x.Y)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch x.Op {
		case token.ADD:
			return a + b, true
		case token.SUB:
			return a - b, true
		case token.MUL:
			return a * b, true
		case token.QUO:
			if b != 0 {
				return a / b, true
			}
		case token.REM:
			if b != 0 {
				return a % b, true
			}
		}
	}
	return 0, false
}

// entryEnv is the state at function entry: parameters ⊤ (no call-site
// argument joining — the deliberate scoping cut that keeps the analysis
// cheap and context-insensitive), remaining locals 0 (the VM zero-fills
// frames, and scoping guarantees declarations dominate uses anyway).
func (e *engine) entryEnv(fp *pdg.FuncPDG) env {
	out := make(env, fp.Fn.NumSlots)
	np := len(fp.Fn.Params)
	for i := range out {
		if i < np {
			out[i] = Top()
		} else {
			out[i] = Const(0)
		}
	}
	return out
}

func rpoOrder(g *cfg.Graph) []cfg.NodeID {
	seen := make([]bool, len(g.Nodes))
	post := make([]cfg.NodeID, 0, len(g.Nodes))
	var dfs func(cfg.NodeID)
	dfs = func(u cfg.NodeID) {
		seen[u] = true
		for _, v := range g.Nodes[u].Succs {
			if !seen[v] {
				dfs(v)
			}
		}
		post = append(post, u)
	}
	dfs(cfg.EntryNode)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

func loopHeads(g *cfg.Graph) map[cfg.NodeID]bool {
	heads := make(map[cfg.NodeID]bool, len(g.Loops))
	for _, l := range g.Loops {
		heads[l.Head] = true
	}
	return heads
}

// analyzeFunc runs the intraprocedural fixpoint for one function and
// returns the entry state of every CFG node (nil = unreachable).
func (e *engine) analyzeFunc(fp *pdg.FuncPDG) []env {
	g := fp.CFG
	nn := len(g.Nodes)
	in := make([]env, nn)
	in[cfg.EntryNode] = e.entryEnv(fp)
	rpo := rpoOrder(g)
	heads := loopHeads(g)

	const maxPasses = 200
	converged := false
	for pass := 0; pass < maxPasses; pass++ {
		changed := false
		for _, id := range rpo {
			if in[id] == nil {
				continue
			}
			out := e.transfer(fp, g.Nodes[id], in[id], nil)
			e.propagate(fp, g.Nodes[id], out, func(s cfg.NodeID, delta env) {
				joined := envJoin(in[s], delta)
				if heads[s] && pass >= 2 {
					joined = envWiden(in[s], joined)
				}
				if !envEq(in[s], joined) {
					in[s] = joined
					changed = true
				}
			})
		}
		if !changed {
			converged = true
			break
		}
	}
	if !converged {
		// Defensive: the threshold widening makes this unreachable, but if
		// it ever fires, ⊤ everywhere reachable is the sound stop.
		top := make(env, fp.Fn.NumSlots)
		for i := range top {
			top[i] = Top()
		}
		for i := range in {
			if in[i] != nil {
				in[i] = top
			}
		}
		return in
	}

	// Two narrowing sweeps (Jacobi): recompute every state from its
	// predecessors without widening. From a post-fixpoint the recomputed
	// states only descend, so stopping after a fixed count is sound.
	for k := 0; k < 2; k++ {
		next := make([]env, nn)
		next[cfg.EntryNode] = e.entryEnv(fp)
		for _, id := range rpo {
			if in[id] == nil {
				continue
			}
			out := e.transfer(fp, g.Nodes[id], in[id], nil)
			e.propagate(fp, g.Nodes[id], out, func(s cfg.NodeID, delta env) {
				next[s] = envJoin(next[s], delta)
			})
		}
		in = next
	}
	return in
}

// returnVal joins the abstract values at every reachable return site; a
// reachable fall-through exit contributes the implicit 0.
func (e *engine) returnVal(fp *pdg.FuncPDG, states []env) Val {
	ret := Bottom()
	fallThrough := false
	for _, p := range fp.CFG.Exit().Preds {
		if states[p] == nil {
			continue
		}
		n := fp.CFG.Nodes[p]
		if rs, ok := n.Stmt.(*ast.ReturnStmt); ok && rs.Result != nil {
			ret = Join(ret, e.evalExpr(fp, states[p], rs.Result, nil))
		} else {
			fallThrough = true
		}
	}
	if fallThrough {
		ret = Join(ret, Const(0))
	}
	return ret
}

// transfer applies one node's statement to a state, evaluating every
// expression in it (the evaluations both compute the new state and, when
// rec is set, emit findings and certificate facts).
func (e *engine) transfer(fp *pdg.FuncPDG, n *cfg.Node, st env, rec *recorder) env {
	if n.Stmt == nil {
		return st
	}
	out := envClone(st)
	switch s := n.Stmt.(type) {
	case *ast.VarDeclStmt:
		v := Const(0)
		if s.Type.Kind == ast.TypeArray {
			v = Top() // the slot holds the array itself, not a scalar
		} else if s.Init != nil {
			v = e.evalExpr(fp, out, s.Init, rec)
		}
		if sym := e.info.Uses[s.Name]; sym != nil && sym.Slot >= 0 {
			out[sym.Slot] = v
		}
	case *ast.AssignStmt:
		if s.Index != nil {
			iv := e.evalExpr(fp, out, s.Index, rec)
			e.checkBounds(fp, rec, e.info.Uses[s.LHS], iv, s.Index.Pos())
			e.evalExpr(fp, out, s.RHS, rec)
			break
		}
		rv := e.evalExpr(fp, out, s.RHS, rec)
		if sym := e.info.Uses[s.LHS]; sym != nil && sym.Slot >= 0 {
			out[sym.Slot] = rv
		}
	case *ast.IfStmt:
		e.evalExpr(fp, out, s.Cond, rec)
	case *ast.WhileStmt:
		e.evalExpr(fp, out, s.Cond, rec)
	case *ast.ForStmt:
		if s.Cond != nil {
			e.evalExpr(fp, out, s.Cond, rec)
		}
	case *ast.ReturnStmt:
		if s.Result != nil {
			e.evalExpr(fp, out, s.Result, rec)
		}
	case *ast.SendStmt:
		e.evalExpr(fp, out, s.Value, rec)
	case *ast.SpawnStmt:
		for _, a := range s.Call.Args {
			e.evalExpr(fp, out, a, rec)
		}
	case *ast.ExprStmt:
		e.evalExpr(fp, out, s.X, rec)
	case *ast.PrintStmt:
		for _, a := range s.Args {
			e.evalExpr(fp, out, a, rec)
		}
	}
	return out
}

// evalExpr abstracts one expression under st.
func (e *engine) evalExpr(fp *pdg.FuncPDG, st env, x ast.Expr, rec *recorder) Val {
	switch x := x.(type) {
	case *ast.IntLit:
		return Const(x.Value)
	case *ast.BoolLit:
		if x.Value {
			return Const(1)
		}
		return Const(0)
	case *ast.StringLit:
		return Top()
	case *ast.ParenExpr:
		return e.evalExpr(fp, st, x.X, rec)
	case *ast.Ident:
		sym := e.info.Uses[x]
		if sym == nil {
			return Top()
		}
		if sym.Slot >= 0 {
			return st[sym.Slot]
		}
		if sym.GlobalID >= 0 {
			return e.globalVal[sym.GlobalID]
		}
		return Top()
	case *ast.UnaryExpr:
		v := e.evalExpr(fp, st, x.X, rec)
		if x.Op == token.SUB {
			return Neg(v)
		}
		return Not(v)
	case *ast.BinaryExpr:
		a := e.evalExpr(fp, st, x.X, rec)
		var b Val
		switch x.Op {
		case token.LAND:
			if a.IsZero() {
				return Const(0) // short circuit: Y never evaluated
			}
			b = e.evalExpr(fp, st, x.Y, rec)
			if a.Nonzero() {
				return truthOf(b)
			}
			return Join(truthOf(b), Const(0))
		case token.LOR:
			if a.Nonzero() {
				return Const(1)
			}
			b = e.evalExpr(fp, st, x.Y, rec)
			if a.IsZero() {
				return truthOf(b)
			}
			return Join(truthOf(b), Const(1))
		}
		b = e.evalExpr(fp, st, x.Y, rec)
		switch x.Op {
		case token.ADD:
			return Add(a, b)
		case token.SUB:
			return Sub(a, b)
		case token.MUL:
			return Mul(a, b)
		case token.QUO, token.REM:
			e.checkDiv(rec, x, b)
			if x.Op == token.QUO {
				return Quo(a, b)
			}
			return Rem(a, b)
		case token.LSS:
			return Lss(a, b)
		case token.GTR:
			return Lss(b, a)
		case token.LEQ:
			return Leq(a, b)
		case token.GEQ:
			return Leq(b, a)
		case token.EQL:
			return Eql(a, b)
		case token.NEQ:
			return Not(Eql(a, b))
		}
		return Top()
	case *ast.IndexExpr:
		iv := e.evalExpr(fp, st, x.Index, rec)
		sym := e.info.Uses[x.X]
		e.checkBounds(fp, rec, sym, iv, x.Index.Pos())
		if sym != nil && sym.GlobalID >= 0 {
			return e.elemVal[sym.GlobalID]
		}
		return Top()
	case *ast.CallExpr:
		for _, a := range x.Args {
			e.evalExpr(fp, st, a, rec)
		}
		if fi, ok := e.info.Funcs[x.Fun.Name]; ok && fi.Decl.Result.Kind != ast.TypeVoid {
			return e.ret[x.Fun.Name]
		}
		return Top()
	case *ast.RecvExpr:
		return Top()
	}
	return Top()
}

// truthOf collapses a value to its boolean truth range.
func truthOf(v Val) Val {
	if v.Bot {
		return Bottom()
	}
	if v.IsZero() {
		return Const(0)
	}
	if v.Nonzero() {
		return Const(1)
	}
	return Range(0, 1)
}

// checkDiv classifies one division/modulo by its abstract divisor: proven
// nonzero (certified), provably zero on a reachable path (warning), or
// possibly zero (info). A ⊥ divisor means the operand is never produced,
// so the operation cannot trap.
func (e *engine) checkDiv(rec *recorder, x *ast.BinaryExpr, divisor Val) {
	if rec == nil {
		return
	}
	rec.divSeen = true
	safe := divisor.Bot || divisor.Nonzero()
	if safe {
		return
	}
	rec.divAll = false
	op := "division"
	if x.Op == token.REM {
		op = "modulo"
	}
	if divisor.IsZero() {
		rec.e.addFinding(Finding{
			Pass: "divzero", Code: "div-by-zero", Warn: true, Pos: x.OpPos,
			Message: fmt.Sprintf("%s by zero: divisor is always 0", op),
		})
		return
	}
	rec.e.addFinding(Finding{
		Pass: "divzero", Code: "div-by-zero", Pos: x.OpPos,
		Message: fmt.Sprintf("possible %s by zero: divisor has range %s", op, divisor),
	})
}

// checkBounds classifies one indexed access against the array's static
// length: proven in bounds (certified), provably out on a reachable path
// (warning), or possibly out (silent — the uncertain case is the common
// one and the runtime check stays).
func (e *engine) checkBounds(fp *pdg.FuncPDG, rec *recorder, sym *sem.Symbol, iv Val, pos source.Pos) {
	if rec == nil || sym == nil || sym.Type.Kind != ast.TypeArray {
		return
	}
	rec.idxSeen = true
	ln := int64(sym.Type.Len)
	if iv.Bot || (iv.Lo >= 0 && iv.Hi < ln) {
		return // proven in bounds (or never executed)
	}
	rec.idxAll = false
	if iv.Hi < 0 || iv.Lo >= ln {
		rec.e.addFinding(Finding{
			Pass: "bounds", Code: "index-bounds", Warn: true, Pos: pos,
			Message: fmt.Sprintf("index out of range: index is %s but array '%s' has length %d",
				iv, sym.Name, sym.Type.Len),
		})
	}
}

func (e *engine) addFinding(f Finding) {
	e.facts.Findings = append(e.facts.Findings, f)
}

// String renders a value for diagnostics: [lo,hi] with ∞ spelled out.
func (v Val) String() string {
	if v.Bot {
		return "⊥"
	}
	lo, hi := "-inf", "+inf"
	if v.Lo != NegInf {
		lo = fmt.Sprint(v.Lo)
	}
	if v.Hi != PosInf {
		hi = fmt.Sprint(v.Hi)
	}
	s := "[" + lo + "," + hi + "]"
	if v.NZ {
		s += "!=0"
	}
	return s
}

// ------------------------------------------------------ branch refinement

// condOf extracts a branch node's predicate expression.
func condOf(s ast.Stmt) ast.Expr {
	switch s := s.(type) {
	case *ast.IfStmt:
		return s.Cond
	case *ast.WhileStmt:
		return s.Cond
	case *ast.ForStmt:
		return s.Cond
	}
	return nil
}

// firstExecNode finds the CFG node of the first executable statement in s,
// descending into blocks; -1 when the region is empty.
func firstExecNode(g *cfg.Graph, s ast.Stmt) cfg.NodeID {
	switch st := s.(type) {
	case *ast.BlockStmt:
		for _, x := range st.List {
			if n := firstExecNode(g, x); n >= 0 {
				return n
			}
		}
		return -1
	case *ast.ForStmt:
		if st.Init != nil {
			return g.NodeFor(st.Init.ID())
		}
		return g.NodeFor(st.ID())
	default:
		return g.NodeFor(s.ID())
	}
}

// branchEntries identifies, from the AST (successor order is NOT reliable:
// an empty then-block leaves the false edge first), the CFG nodes entered
// on the true and false sides of a branch node. -1 means unknown (the edge
// goes to a join point or the region is empty).
func branchEntries(g *cfg.Graph, n *cfg.Node) (tEntry, fEntry cfg.NodeID) {
	tEntry, fEntry = -1, -1
	switch s := n.Stmt.(type) {
	case *ast.IfStmt:
		tEntry = firstExecNode(g, s.Then)
		if s.Else != nil {
			fEntry = firstExecNode(g, s.Else)
		}
	case *ast.WhileStmt:
		tEntry = firstExecNode(g, s.Body)
		if tEntry < 0 {
			tEntry = n.ID // empty body: the true edge is the self-loop
		}
	case *ast.ForStmt:
		tEntry = firstExecNode(g, s.Body)
		if tEntry < 0 {
			if s.Post != nil {
				tEntry = g.NodeFor(s.Post.ID())
			} else {
				tEntry = n.ID
			}
		}
	}
	return tEntry, fEntry
}

// propagate delivers a node's out-state to each successor, refining along
// classified true/false edges of branches. Refinement to ⊥ kills the edge
// (precise unreachability for decided conditions).
func (e *engine) propagate(fp *pdg.FuncPDG, n *cfg.Node, out env, deliver func(cfg.NodeID, env)) {
	if !n.IsBranch || n.Stmt == nil {
		for _, s := range n.Succs {
			deliver(s, out)
		}
		return
	}
	cond := condOf(n.Stmt)
	if cond == nil { // for(;;): only the true edge exists, nothing to refine
		for _, s := range n.Succs {
			deliver(s, out)
		}
		return
	}
	tEntry, fEntry := branchEntries(fp.CFG, n)
	for _, s := range n.Succs {
		var want, known bool
		switch {
		case tEntry >= 0 && fEntry >= 0:
			if s == tEntry {
				want, known = true, true
			} else if s == fEntry {
				want, known = false, true
			}
		case tEntry >= 0:
			want, known = s == tEntry, true
		case fEntry >= 0:
			want, known = s != fEntry, true
		}
		if !known {
			deliver(s, out)
			continue
		}
		if refined := e.refineCond(fp, out, cond, want); refined != nil {
			deliver(s, refined)
		}
	}
}

// refineCond returns st narrowed by "cond is want"; nil when the branch
// side is infeasible (⊥).
func (e *engine) refineCond(fp *pdg.FuncPDG, st env, cond ast.Expr, want bool) env {
	cv := e.evalExpr(fp, st, cond, nil)
	if cv.Bot || (want && cv.IsZero()) || (!want && cv.Nonzero()) {
		return nil
	}
	switch x := cond.(type) {
	case *ast.ParenExpr:
		return e.refineCond(fp, st, x.X, want)
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			return e.refineCond(fp, st, x.X, !want)
		}
	case *ast.Ident:
		if sym := e.info.Uses[x]; sym != nil && sym.Slot >= 0 {
			con := Val{Lo: NegInf, Hi: PosInf, NZ: true}
			if !want {
				con = Const(0)
			}
			return e.tightenSlot(st, sym.Slot, con)
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			if want {
				t := e.refineCond(fp, st, x.X, true)
				if t == nil {
					return nil
				}
				return e.refineCond(fp, t, x.Y, true)
			}
			a := e.refineCond(fp, st, x.X, false)
			var b env
			if xt := e.refineCond(fp, st, x.X, true); xt != nil {
				b = e.refineCond(fp, xt, x.Y, false)
			}
			return envJoin(a, b)
		case token.LOR:
			if !want {
				f := e.refineCond(fp, st, x.X, false)
				if f == nil {
					return nil
				}
				return e.refineCond(fp, f, x.Y, false)
			}
			a := e.refineCond(fp, st, x.X, true)
			var b env
			if xf := e.refineCond(fp, st, x.X, false); xf != nil {
				b = e.refineCond(fp, xf, x.Y, true)
			}
			return envJoin(a, b)
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
			return e.refineCmp(fp, st, x, want)
		}
	}
	return st
}

// refineCmp narrows local operands of a comparison. Only frame slots are
// tightened — globals may be rewritten by other processes.
func (e *engine) refineCmp(fp *pdg.FuncPDG, st env, x *ast.BinaryExpr, want bool) env {
	op := x.Op
	if !want {
		switch op {
		case token.LSS:
			op, want = token.GEQ, true
		case token.LEQ:
			op, want = token.GTR, true
		case token.GTR:
			op, want = token.LEQ, true
		case token.GEQ:
			op, want = token.LSS, true
		case token.EQL:
			op, want = token.NEQ, true
		case token.NEQ:
			op, want = token.EQL, true
		}
	}
	lhs, rhs := x.X, x.Y
	switch op {
	case token.GTR:
		op, lhs, rhs = token.LSS, rhs, lhs
	case token.GEQ:
		op, lhs, rhs = token.LEQ, rhs, lhs
	}
	a := e.evalExpr(fp, st, lhs, nil)
	b := e.evalExpr(fp, st, rhs, nil)
	switch op {
	case token.LSS: // lhs < rhs
		st = e.tightenExpr(fp, st, lhs, Val{Lo: NegInf, Hi: addSat(b.Hi, -1)})
		if st == nil {
			return nil
		}
		return e.tightenExpr(fp, st, rhs, Val{Lo: addSat(a.Lo, 1), Hi: PosInf})
	case token.LEQ: // lhs <= rhs
		st = e.tightenExpr(fp, st, lhs, Val{Lo: NegInf, Hi: b.Hi})
		if st == nil {
			return nil
		}
		return e.tightenExpr(fp, st, rhs, Val{Lo: a.Lo, Hi: PosInf})
	case token.EQL:
		st = e.tightenExpr(fp, st, lhs, b)
		if st == nil {
			return nil
		}
		return e.tightenExpr(fp, st, rhs, a)
	case token.NEQ:
		if k, ok := b.ConstVal(); ok {
			st = e.tightenExpr(fp, st, lhs, excludeConst(a, k))
		}
		if st == nil {
			return nil
		}
		if k, ok := a.ConstVal(); ok {
			st = e.tightenExpr(fp, st, rhs, excludeConst(b, k))
		}
		return st
	}
	return st
}

// excludeConst is the constraint "value != k" expressed as a Val to meet
// with: it trims a bound equal to k, and records the nonzero fact for k=0.
func excludeConst(v Val, k int64) Val {
	out := Val{Lo: NegInf, Hi: PosInf}
	if k == 0 {
		out.NZ = true
		return out
	}
	if v.Bot {
		return out
	}
	if v.Lo == k {
		out.Lo = k + 1
	}
	if v.Hi == k {
		out.Hi = k - 1
	}
	return out
}

// tightenExpr meets a constraint into the slot behind expr, when expr is a
// direct local/parameter reference; other shapes pass through unchanged.
func (e *engine) tightenExpr(fp *pdg.FuncPDG, st env, expr ast.Expr, con Val) env {
	for {
		p, ok := expr.(*ast.ParenExpr)
		if !ok {
			break
		}
		expr = p.X
	}
	id, ok := expr.(*ast.Ident)
	if !ok {
		return st
	}
	sym := e.info.Uses[id]
	if sym == nil || sym.Slot < 0 {
		return st
	}
	return e.tightenSlot(st, sym.Slot, con)
}

func (e *engine) tightenSlot(st env, slot int, con Val) env {
	m := Meet(st[slot], con)
	if m.Bot {
		return nil // contradiction: this branch side is infeasible
	}
	if m == st[slot] {
		return st
	}
	out := envClone(st)
	out[slot] = m
	return out
}

// ------------------------------------------------------------ record pass

// record walks one function's final states in node order, emitting
// findings, certificate facts, and counters.
func (e *engine) record(fp *pdg.FuncPDG, states []env) {
	g := fp.CFG
	for _, n := range g.Nodes {
		if n.Stmt == nil {
			continue
		}
		id := n.Stmt.ID()
		if states[n.ID] == nil {
			// Unreachable: operations here never execute, so they can
			// never trap — certify them (sound), and report the leader of
			// each dead region.
			if stmtHasOp(n.Stmt, true) {
				e.facts.DivSafe[id] = true
			}
			if stmtHasOp(n.Stmt, false) {
				e.facts.IdxSafe[id] = true
			}
			if deadLeader(g, states, n) {
				e.addFinding(Finding{
					Pass: "deadbranch", Code: "dead-code", Pos: n.Stmt.Pos(),
					Message: "unreachable code",
				})
			}
			continue
		}
		rec := &recorder{e: e, divAll: true, idxAll: true}
		e.transfer(fp, n, states[n.ID], rec)
		if rec.divSeen && rec.divAll {
			e.facts.DivSafe[id] = true
		}
		if rec.idxSeen && rec.idxAll {
			e.facts.IdxSafe[id] = true
		}
		if n.IsBranch {
			e.checkConstCond(fp, n, states[n.ID])
		}
		for _, v := range states[n.ID] {
			if v.Bounded() {
				e.facts.Intervals++
			}
			if v.Nonzero() {
				e.facts.NonzeroFacts++
			}
		}
	}
}

// stmtHasOp reports whether the statement's own expressions contain a
// division/modulo (div=true) or an indexed access (div=false). Nested
// statements have their own CFG nodes and are not descended into.
func stmtHasOp(s ast.Stmt, div bool) bool {
	found := false
	inspect := func(x ast.Expr) {
		if x == nil {
			return
		}
		ast.Inspect(x, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if div && (n.Op == token.QUO || n.Op == token.REM) {
					found = true
				}
			case *ast.IndexExpr:
				if !div {
					found = true
				}
			}
			return true
		})
	}
	switch s := s.(type) {
	case *ast.VarDeclStmt:
		inspect(s.Init)
	case *ast.AssignStmt:
		if s.Index != nil {
			if !div {
				found = true
			}
			inspect(s.Index)
		}
		inspect(s.RHS)
	case *ast.IfStmt:
		inspect(s.Cond)
	case *ast.WhileStmt:
		inspect(s.Cond)
	case *ast.ForStmt:
		inspect(s.Cond)
	case *ast.ReturnStmt:
		inspect(s.Result)
	case *ast.SendStmt:
		inspect(s.Value)
	case *ast.SpawnStmt:
		for _, a := range s.Call.Args {
			inspect(a)
		}
	case *ast.ExprStmt:
		inspect(s.X)
	case *ast.PrintStmt:
		for _, a := range s.Args {
			inspect(a)
		}
	}
	return found
}

// deadLeader marks the first node of a dead region: a dead node that is
// either entered from live code (a refined-away branch side) or has no
// predecessors at all (code after return/break). Interior dead nodes are
// suppressed so one region reports once.
func deadLeader(g *cfg.Graph, states []env, n *cfg.Node) bool {
	if len(n.Preds) == 0 {
		return true
	}
	for _, p := range n.Preds {
		if states[p] != nil {
			return true
		}
	}
	return false
}

// checkConstCond reports conditions that are provably constant — unless
// they are literal (while(true) is an idiom, not a bug).
func (e *engine) checkConstCond(fp *pdg.FuncPDG, n *cfg.Node, st env) {
	cond := condOf(n.Stmt)
	if cond == nil || literalCond(cond) {
		return
	}
	cv := e.evalExpr(fp, st, cond, nil)
	if cv.Bot {
		return
	}
	var truth string
	switch {
	case cv.Nonzero():
		truth = "true"
	case cv.IsZero():
		truth = "false"
	default:
		return
	}
	e.addFinding(Finding{
		Pass: "deadbranch", Code: "const-cond", Warn: true, Pos: cond.Pos(),
		Message: fmt.Sprintf("condition is always %s", truth),
	})
}

func literalCond(x ast.Expr) bool {
	for {
		p, ok := x.(*ast.ParenExpr)
		if !ok {
			break
		}
		x = p.X
	}
	switch x.(type) {
	case *ast.BoolLit, *ast.IntLit:
		return true
	}
	return false
}
