package absint

import (
	"strings"
	"testing"

	"ppd/internal/ast"
	"ppd/internal/parser"
	"ppd/internal/pdg"
	"ppd/internal/sem"
	"ppd/internal/source"
)

func buildFacts(t *testing.T, src string) (*Facts, *pdg.Program) {
	t.Helper()
	errs := &source.ErrorList{}
	prog := parser.ParseString("test.mpl", src, errs)
	info := sem.Check(prog, errs)
	if errs.ErrCount() != 0 {
		t.Fatalf("front-end errors:\n%v", errs.Err())
	}
	p := pdg.Build(info)
	return Analyze(p), p
}

func findingsFor(f *Facts, pass string) []Finding {
	var out []Finding
	for _, fd := range f.Findings {
		if fd.Pass == pass {
			out = append(out, fd)
		}
	}
	return out
}

func TestDivzeroClassification(t *testing.T) {
	facts, _ := buildFacts(t, `
func f(k int) int {
	return 100 / k;
}
func main() {
	var d = 0;
	var x = 10 / d;
	var y = 10;
	var z = 5 / y;
	print(f(4) + x + z);
}
`)
	fs := findingsFor(facts, "divzero")
	if len(fs) != 2 {
		t.Fatalf("divzero findings = %d, want 2:\n%v", len(fs), fs)
	}
	var warns, infos int
	for _, fd := range fs {
		if fd.Warn {
			warns++
			if !strings.Contains(fd.Message, "always 0") {
				t.Errorf("warn message = %q", fd.Message)
			}
		} else {
			infos++
			if !strings.Contains(fd.Message, "possible division") {
				t.Errorf("info message = %q", fd.Message)
			}
		}
	}
	if warns != 1 || infos != 1 {
		t.Errorf("warns=%d infos=%d, want 1/1", warns, infos)
	}
	// z = 5 / y is proven safe: exactly one statement carries a div cert.
	if len(facts.DivSafe) != 1 {
		t.Errorf("DivSafe = %v, want exactly one certified statement", facts.DivSafe)
	}
}

func TestInterproceduralReturnRange(t *testing.T) {
	facts, _ := buildFacts(t, `
func ten() int { return 10; }
func main() {
	var d = ten();
	print(100 / d);
}
`)
	if fs := findingsFor(facts, "divzero"); len(fs) != 0 {
		t.Fatalf("divzero findings = %v, want none (return value is constant 10)", fs)
	}
	if len(facts.DivSafe) != 1 {
		t.Errorf("DivSafe = %v, want the division certified", facts.DivSafe)
	}
}

func TestBoundsClassification(t *testing.T) {
	facts, _ := buildFacts(t, `
var a[8];
func main() {
	var i = 0;
	while (i < 8) {
		a[i] = i;
		i = i + 1;
	}
	a[9] = 1;
	print(a[0]);
}
`)
	fs := findingsFor(facts, "bounds")
	if len(fs) != 1 || !fs[0].Warn {
		t.Fatalf("bounds findings = %v, want one warning for a[9]", fs)
	}
	if !strings.Contains(fs[0].Message, "length 8") {
		t.Errorf("message = %q", fs[0].Message)
	}
	// a[i] in the loop and a[0] in print are both proven in bounds.
	if len(facts.IdxSafe) != 2 {
		t.Errorf("IdxSafe = %v, want two certified statements", facts.IdxSafe)
	}
}

func TestDeadBranch(t *testing.T) {
	facts, _ := buildFacts(t, `
func main() {
	var x = 3;
	var y = x * 2;
	if (y < 3) {
		print(999);
	}
	print(y);
}
`)
	fs := findingsFor(facts, "deadbranch")
	if len(fs) != 2 {
		t.Fatalf("deadbranch findings = %v, want const-cond + dead-code", fs)
	}
	var sawCond, sawDead bool
	for _, fd := range fs {
		switch fd.Code {
		case "const-cond":
			sawCond = true
			if !fd.Warn || !strings.Contains(fd.Message, "always false") {
				t.Errorf("const-cond finding = %+v", fd)
			}
		case "dead-code":
			sawDead = true
			if fd.Warn {
				t.Errorf("dead-code should be info: %+v", fd)
			}
		}
	}
	if !sawCond || !sawDead {
		t.Errorf("missing finding kinds: cond=%t dead=%t", sawCond, sawDead)
	}
}

func TestLiteralLoopCondNotReported(t *testing.T) {
	facts, _ := buildFacts(t, `
func main() {
	var i = 0;
	while (true) {
		i = i + 1;
		if (i > 3) { break; }
	}
	print(i);
}
`)
	for _, fd := range findingsFor(facts, "deadbranch") {
		if fd.Code == "const-cond" {
			t.Fatalf("while(true) must not report const-cond: %+v", fd)
		}
	}
}

const guardedSrc = `
shared counter;
sem m = 1;
sem done = 0;
func w() {
	var i = 0;
	while (i < 5) {
		P(m);
		counter = counter + 1;
		V(m);
		i = i + 1;
	}
	V(done);
}
func main() {
	spawn w();
	spawn w();
	var d = 0;
	while (d < 2) { P(done); d = d + 1; }
	P(m);
	print(counter);
	V(m);
}
`

func TestLocksetGuarded(t *testing.T) {
	facts, p := buildFacts(t, guardedSrc)
	if len(facts.Guarded) != 1 {
		t.Fatalf("Guarded = %v, want exactly counter", facts.Guarded)
	}
	g := facts.Guarded[0]
	if p.Info.Globals[g.Gid].Name != "counter" || p.Info.Globals[g.Sem].Name != "m" {
		t.Errorf("guarded %s by %s, want counter by m",
			p.Info.Globals[g.Gid].Name, p.Info.Globals[g.Sem].Name)
	}
	if facts.LocksetStmts == 0 {
		t.Error("LocksetStmts = 0, want statements under a held lock")
	}
}

func TestLocksetUnguardedReader(t *testing.T) {
	// Same program but main reads counter without holding m: not guarded.
	src := strings.Replace(guardedSrc, "P(m);\n\tprint(counter);\n\tV(m);", "print(counter);", 1)
	if !strings.Contains(src, "print(counter);") || strings.Count(src, "P(m)") != 1 {
		t.Fatal("test source edit did not apply")
	}
	facts, _ := buildFacts(t, src)
	if len(facts.Guarded) != 0 {
		t.Fatalf("Guarded = %v, want none (main reads unguarded)", facts.Guarded)
	}
}

func TestLocksetSignalSemaphoreExcluded(t *testing.T) {
	// done starts at 0: ordering, not mutual exclusion. An access "under"
	// it must not count as guarded.
	facts, _ := buildFacts(t, `
shared g;
sem done = 0;
func w() {
	g = 1;
	V(done);
}
func main() {
	spawn w();
	P(done);
	print(g);
}
`)
	if len(facts.Guarded) != 0 {
		t.Fatalf("Guarded = %v, want none (done is a signal semaphore)", facts.Guarded)
	}
}

func TestVDisciplineViolationDisqualifies(t *testing.T) {
	// main V's m without holding it (count can reach 2), so m must not be
	// treated as a lock even though w's accesses sit inside P/V.
	facts, _ := buildFacts(t, `
shared counter;
sem m = 1;
sem done = 0;
func w() {
	P(m);
	counter = counter + 1;
	V(m);
	V(done);
}
func main() {
	spawn w();
	spawn w();
	V(m);
	P(done); P(done);
	P(m);
	print(counter);
	V(m);
}
`)
	if len(facts.Guarded) != 0 {
		t.Fatalf("Guarded = %v, want none (V-discipline violated)", facts.Guarded)
	}
}

func TestWideningTerminatesOnNestedLoops(t *testing.T) {
	facts, _ := buildFacts(t, `
func main() {
	var i = 0;
	var s = 0;
	while (i < 100) {
		var j = 0;
		while (j < i) {
			s = s + j;
			j = j + 1;
		}
		i = i + 1;
	}
	print(s / (i + 1));
}
`)
	// i in [0,100] at exit, so i+1 in [1,101] is a certified divisor.
	if fs := findingsFor(facts, "divzero"); len(fs) != 0 {
		t.Fatalf("divzero findings = %v, want none", fs)
	}
	if len(facts.DivSafe) != 1 {
		t.Errorf("DivSafe = %v, want the division certified", facts.DivSafe)
	}
}

func TestDeterministicDump(t *testing.T) {
	for _, src := range []string{guardedSrc, `
var a[4];
func mix(k int) int {
	if (k > 2) { return k; }
	return 7;
}
func main() {
	var i = 0;
	while (i < 4) {
		a[i] = mix(i) / 7;
		i = i + 1;
	}
	print(a[3]);
}
`} {
		errs := &source.ErrorList{}
		prog := parser.ParseString("t.mpl", src, errs)
		info := sem.Check(prog, errs)
		if errs.ErrCount() != 0 {
			t.Fatalf("front-end errors:\n%v", errs.Err())
		}
		p := pdg.Build(info)
		d1 := Analyze(p).Dump()
		d2 := Analyze(p).Dump()
		if d1 != d2 {
			t.Fatalf("nondeterministic facts:\n--- run1\n%s\n--- run2\n%s", d1, d2)
		}
	}
}

func TestCertStmtIDsMatchAST(t *testing.T) {
	facts, p := buildFacts(t, `
func main() {
	var y = 10;
	print(5 / y);
}
`)
	for id := range facts.DivSafe {
		if p.Info.Prog.StmtByID(id) == nil {
			t.Errorf("DivSafe references unknown stmt %d", id)
		}
	}
	var _ ast.StmtID // keep import if the loop body changes
}
