// Package absint is a flow-sensitive, interprocedural abstract interpreter
// over the MPL CFG/dataflow layers. Its product domain combines intervals,
// constants, and nonzero facts for scalars (plus array-length/index bounds
// derived from them) with a must-held lockset domain (lockset.go). The
// engine (absint.go) runs a deterministic fixpoint — widening at loop heads,
// two narrowing sweeps, bottom for unreachable code — so the resulting
// Facts are byte-stable across runs.
//
// Three consumers cash the facts in: the divzero/bounds/deadbranch/lockset
// vet passes (internal/analysis), the fusion safety certificate that lets
// bytecode.FuseCert fuse proven-nonzero divisions and proven-in-bounds
// indexed windows, and the conflict-matrix sharpening that drops provably
// lock-guarded variables from the dynamic race detectors' mask.
package absint

import "math"

// Infinite interval endpoints. The domain saturates into these; MinInt64
// means "no lower bound" and MaxInt64 "no upper bound".
const (
	NegInf = math.MinInt64
	PosInf = math.MaxInt64
)

// Val is one scalar's abstract value: an interval [Lo, Hi] (saturating at
// NegInf/PosInf) plus an explicit nonzero flag for values whose interval
// spans zero but which a guard proved nonzero (x != 0, bare boolean truth).
// Bot marks the unreachable value ⊥.
type Val struct {
	Bot    bool
	Lo, Hi int64
	NZ     bool
}

// Top returns the unconstrained value ⊤.
func Top() Val { return Val{Lo: NegInf, Hi: PosInf} }

// Bottom returns ⊥.
func Bottom() Val { return Val{Bot: true} }

// Const returns the singleton [k, k].
func Const(k int64) Val { return Val{Lo: k, Hi: k} }

// Range returns the interval [lo, hi].
func Range(lo, hi int64) Val { return norm(Val{Lo: lo, Hi: hi}) }

// norm canonicalizes: an empty interval is ⊥, and the NZ flag tightens a
// bound touching zero (so NZ never needs consulting once bounds exclude 0).
func norm(v Val) Val {
	if v.Bot {
		return Bottom()
	}
	if v.NZ {
		if v.Lo == 0 {
			v.Lo = 1
		}
		if v.Hi == 0 {
			v.Hi = -1
		}
		if v.Lo > 0 || v.Hi < 0 {
			v.NZ = false // bounds carry the fact now
		}
	}
	if v.Lo > v.Hi {
		return Bottom()
	}
	return v
}

// IsTop reports whether v carries no information.
func (v Val) IsTop() bool { return !v.Bot && v.Lo == NegInf && v.Hi == PosInf && !v.NZ }

// Bounded reports whether v is reachable and has at least one finite bound.
func (v Val) Bounded() bool { return !v.Bot && (v.Lo != NegInf || v.Hi != PosInf) }

// Nonzero reports whether v provably cannot be zero.
func (v Val) Nonzero() bool { return !v.Bot && (v.NZ || v.Lo > 0 || v.Hi < 0) }

// IsZero reports whether v is provably the constant 0.
func (v Val) IsZero() bool { return !v.Bot && v.Lo == 0 && v.Hi == 0 }

// ConstVal returns the singleton value, if v is one.
func (v Val) ConstVal() (int64, bool) {
	if !v.Bot && v.Lo == v.Hi {
		return v.Lo, true
	}
	return 0, false
}

// Join is the least upper bound.
func Join(a, b Val) Val {
	if a.Bot {
		return b
	}
	if b.Bot {
		return a
	}
	return norm(Val{
		Lo: minI(a.Lo, b.Lo),
		Hi: maxI(a.Hi, b.Hi),
		NZ: a.Nonzero() && b.Nonzero(),
	})
}

// Meet is the greatest lower bound (⊥ when the intervals are disjoint).
func Meet(a, b Val) Val {
	if a.Bot || b.Bot {
		return Bottom()
	}
	return norm(Val{
		Lo: maxI(a.Lo, b.Lo),
		Hi: minI(a.Hi, b.Hi),
		NZ: a.NZ || b.NZ,
	})
}

// Widen extrapolates an unstable bound through the threshold chain
// {0, ±∞}: a sinking lower bound stops at 0 if still nonnegative, else
// falls to -∞; dually for the upper bound. The chain is length 2 per
// side, so widening terminates in a handful of steps.
func Widen(old, new Val) Val {
	if old.Bot {
		return new
	}
	if new.Bot {
		return old
	}
	w := Val{Lo: old.Lo, Hi: old.Hi, NZ: old.Nonzero() && new.Nonzero()}
	if new.Lo < old.Lo {
		if new.Lo >= 0 {
			w.Lo = 0
		} else {
			w.Lo = NegInf
		}
	}
	if new.Hi > old.Hi {
		if new.Hi <= 0 {
			w.Hi = 0
		} else {
			w.Hi = PosInf
		}
	}
	return norm(w)
}

func minI(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// ---------------------------------------------------------- saturating ops

func negSat(a int64) int64 {
	switch a {
	case NegInf:
		return PosInf
	case PosInf:
		return NegInf
	}
	return -a
}

func addSat(a, b int64) int64 {
	if a == NegInf || b == NegInf {
		return NegInf
	}
	if a == PosInf || b == PosInf {
		return PosInf
	}
	s := a + b
	if a > 0 && b > 0 && s < 0 {
		return PosInf
	}
	if a < 0 && b < 0 && s >= 0 {
		return NegInf
	}
	return s
}

func mulSat(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0 // interval endpoint products: 0·±∞ = 0
	}
	neg := (a < 0) != (b < 0)
	if a == NegInf || a == PosInf || b == NegInf || b == PosInf {
		if neg {
			return NegInf
		}
		return PosInf
	}
	p := a * b
	if p/a != b || (neg && p > 0) || (!neg && p < 0) {
		if neg {
			return NegInf
		}
		return PosInf
	}
	return p
}

// quoSat is truncated division of saturated endpoints; b is never 0.
func quoSat(a, b int64) int64 {
	if b == NegInf || b == PosInf {
		if a == NegInf || a == PosInf {
			// ±∞/±∞: magnitude unknown; callers take min/max over the
			// finite divisor candidates too, so 0 is a safe midpoint.
			return 0
		}
		return 0
	}
	if a == NegInf {
		if b < 0 {
			return PosInf
		}
		return NegInf
	}
	if a == PosInf {
		if b < 0 {
			return NegInf
		}
		return PosInf
	}
	if a == math.MinInt64 && b == -1 {
		return PosInf
	}
	return a / b
}

// ------------------------------------------------------------ interval ops

// Add abstracts x + y.
func Add(a, b Val) Val {
	if a.Bot || b.Bot {
		return Bottom()
	}
	return norm(Val{Lo: addSat(a.Lo, b.Lo), Hi: addSat(a.Hi, b.Hi)})
}

// Sub abstracts x - y.
func Sub(a, b Val) Val {
	if a.Bot || b.Bot {
		return Bottom()
	}
	return norm(Val{Lo: addSat(a.Lo, negSat(b.Hi)), Hi: addSat(a.Hi, negSat(b.Lo))})
}

// Neg abstracts -x.
func Neg(a Val) Val {
	if a.Bot {
		return Bottom()
	}
	return norm(Val{Lo: negSat(a.Hi), Hi: negSat(a.Lo), NZ: a.NZ})
}

// Mul abstracts x * y via the four endpoint products.
func Mul(a, b Val) Val {
	if a.Bot || b.Bot {
		return Bottom()
	}
	p := [4]int64{
		mulSat(a.Lo, b.Lo), mulSat(a.Lo, b.Hi),
		mulSat(a.Hi, b.Lo), mulSat(a.Hi, b.Hi),
	}
	lo, hi := p[0], p[0]
	for _, x := range p[1:] {
		lo, hi = minI(lo, x), maxI(hi, x)
	}
	return norm(Val{Lo: lo, Hi: hi, NZ: a.Nonzero() && b.Nonzero()})
}

// Quo abstracts x / y (Go's truncated division) assuming y ≠ 0 at run
// time — states after a division only exist when it succeeded. Extreme
// quotients occur at numerator endpoints against divisor candidates
// {Lo, Hi, -1, 1} restricted to the divisor's interval.
func Quo(a, b Val) Val {
	if a.Bot || b.Bot {
		return Bottom()
	}
	var divs []int64
	addDiv := func(d int64) {
		if d == 0 || d < b.Lo || d > b.Hi {
			return
		}
		for _, x := range divs {
			if x == d {
				return
			}
		}
		divs = append(divs, d)
	}
	addDiv(b.Lo)
	addDiv(b.Hi)
	addDiv(-1)
	addDiv(1)
	if len(divs) == 0 {
		return Bottom() // divisor provably 0: the division never succeeds
	}
	first := true
	var lo, hi int64
	for _, d := range divs {
		for _, n := range [2]int64{a.Lo, a.Hi} {
			q := quoSat(n, d)
			if first {
				lo, hi, first = q, q, false
			} else {
				lo, hi = minI(lo, q), maxI(hi, q)
			}
		}
	}
	// Truncation pulls quotients toward 0: if the numerator spans 0 the
	// quotient range must include 0.
	if a.Lo <= 0 && a.Hi >= 0 {
		lo, hi = minI(lo, 0), maxI(hi, 0)
	}
	return norm(Val{Lo: lo, Hi: hi})
}

// Rem abstracts x % y (Go semantics: result sign follows the dividend,
// |r| < |y|) assuming y ≠ 0.
func Rem(a, b Val) Val {
	if a.Bot || b.Bot {
		return Bottom()
	}
	// Exact case: 0 <= a < min positive divisor ⇒ a unchanged.
	if a.Lo >= 0 && b.Lo > 0 && a.Hi < b.Lo {
		return a
	}
	m := maxI(absSat(b.Lo), absSat(b.Hi))
	var bound int64 = PosInf
	if m != PosInf {
		bound = m - 1
	}
	lo, hi := negSat(bound), bound
	if a.Lo >= 0 {
		lo = 0
	}
	if a.Hi <= 0 {
		hi = 0
	}
	if a.Hi != PosInf {
		hi = minI(hi, maxI(a.Hi, 0))
	}
	if a.Lo != NegInf {
		lo = maxI(lo, minI(a.Lo, 0))
	}
	return norm(Val{Lo: lo, Hi: hi})
}

func absSat(a int64) int64 {
	if a == NegInf || a == PosInf {
		return PosInf
	}
	if a < 0 {
		return -a
	}
	return a
}

// ------------------------------------------------------------- comparisons

// cmpOutcome builds a boolean result value: decided true [1,1], decided
// false [0,0], or unknown [0,1].
func boolVal(truth, decided bool) Val {
	if !decided {
		return Range(0, 1)
	}
	if truth {
		return Const(1)
	}
	return Const(0)
}

// Lss abstracts x < y.
func Lss(a, b Val) Val {
	if a.Bot || b.Bot {
		return Bottom()
	}
	if a.Hi < b.Lo {
		return boolVal(true, true)
	}
	if a.Lo >= b.Hi {
		return boolVal(false, true)
	}
	return boolVal(false, false)
}

// Leq abstracts x <= y.
func Leq(a, b Val) Val {
	if a.Bot || b.Bot {
		return Bottom()
	}
	if a.Hi <= b.Lo {
		return boolVal(true, true)
	}
	if a.Lo > b.Hi {
		return boolVal(false, true)
	}
	return boolVal(false, false)
}

// Eql abstracts x == y.
func Eql(a, b Val) Val {
	if a.Bot || b.Bot {
		return Bottom()
	}
	if ka, ok := a.ConstVal(); ok {
		if kb, ok2 := b.ConstVal(); ok2 {
			return boolVal(ka == kb, true)
		}
	}
	if a.Hi < b.Lo || b.Hi < a.Lo {
		return boolVal(false, true)
	}
	if a.IsZero() && b.Nonzero() || b.IsZero() && a.Nonzero() {
		return boolVal(false, true)
	}
	return boolVal(false, false)
}

// Not abstracts !x over 0/1-encoded booleans (any nonzero is truthy).
func Not(a Val) Val {
	if a.Bot {
		return Bottom()
	}
	if a.IsZero() {
		return Const(1)
	}
	if a.Nonzero() {
		return Const(0)
	}
	return Range(0, 1)
}
