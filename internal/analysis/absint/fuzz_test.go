package absint

import (
	"testing"

	"ppd/internal/mplgen"
	"ppd/internal/parser"
	"ppd/internal/pdg"
	"ppd/internal/sem"
	"ppd/internal/source"
	"ppd/internal/workloads"
)

// FuzzAbsint feeds arbitrary MPL through the abstract interpreter and
// checks its two load-bearing engine properties on everything that gets
// past the front end: the widening/narrowing fixpoint terminates (a
// divergent loop would hang the fuzzer, and the iteration cap would
// panic first), and the result is deterministic — two runs over the
// same PDG must produce byte-identical fact dumps, since the facts are
// hashed into fusion certificates and cache keys. The seed corpus is
// the standard workloads plus the mplgen generator's three program
// families, so the fuzzer starts from every loop/branch/sync shape the
// project exercises.
func FuzzAbsint(f *testing.F) {
	for _, wl := range workloads.Standard() {
		f.Add(wl.Src)
	}
	f.Add(workloads.GuardedCounter(2, 5).Src)
	for seed := int64(0); seed < 5; seed++ {
		f.Add(mplgen.Generate(seed, mplgen.DefaultConfig()))
		f.Add(mplgen.Generate(seed, mplgen.RacyConfig()))
		f.Add(mplgen.Generate(seed, mplgen.ParallelConfig()))
	}
	f.Add("func f(k int) int { return 1 / k; }\nfunc main() { print(f(0)); }")
	f.Add("var a[4];\nfunc main() { var i = 0; while (i < 4) { a[i] = i; i = i + 1; } }")
	f.Add("shared g;\nsem m = 1;\nfunc main() { P(m); g = 1; V(m); }")
	f.Fuzz(func(t *testing.T, src string) {
		errs := &source.ErrorList{}
		prog := parser.ParseString("fuzz.mpl", src, errs)
		info := sem.Check(prog, errs)
		if errs.ErrCount() != 0 {
			return // front-end rejection is fine; panics and hangs are not
		}
		p := pdg.Build(info)
		first := Analyze(p)
		if got := Analyze(p).Dump(); got != first.Dump() {
			t.Fatalf("fixpoint is nondeterministic:\nfirst:\n%s\nsecond:\n%s", first.Dump(), got)
		}
		if first.Intervals < 0 || first.NonzeroFacts < 0 || first.LocksetStmts < 0 {
			t.Fatalf("negative fact counters: %+v", first)
		}
	})
}
