package absint

// The lockset domain: for every program point, which mutex-like
// semaphores is the executing process guaranteed to hold? "Must-held" is
// an intersection (decreasing) dataflow over the CFG, interprocedural via
// per-function entry contexts and call-effect kills.
//
// Soundness of the pruning consumer rests on three checks, all here:
//
//  1. Candidate semaphores start at count exactly 1 (a signal semaphore
//     starting at 0 orders events, it does not exclude; one starting at
//     k>1 admits k holders).
//  2. V-discipline: every V(m) site in root-reachable code must itself
//     hold m. Then the count can never exceed 1, so at most one process
//     is inside a P(m)…V(m) region at a time, and each V→P edge the VM
//     logs orders one critical section wholly before the next.
//  3. A statement containing a call is only "holding m" if no function
//     in the callee's plain-call closure can V(m) (mayV kills) — the V
//     could execute before the access within the same statement.
//
// A shared variable whose every access in reachable code sits under a
// common such semaphore therefore cannot be accessed concurrently: its
// race-detector buckets are provably empty and the conflict mask may
// drop it without changing the reported race set.

import (
	"ppd/internal/ast"
	"ppd/internal/bitset"
	"ppd/internal/cfg"
	"ppd/internal/sem"
	"ppd/internal/token"
)

// locksets computes the must-held analysis and fills Guarded and
// LocksetStmts on e.facts.
func (e *engine) locksets() {
	info := e.info
	ng := info.NumGlobals()

	// 1. Candidates: semaphores initialized to exactly 1.
	cand := bitset.New(ng)
	for gid, sym := range info.Globals {
		if sym.Kind != sem.SymSem {
			continue
		}
		if d := e.globalDecl(sym.Name); d != nil && d.Init != nil {
			if k, ok := constEval(d.Init); ok && k == 1 {
				cand.Add(gid)
			}
		}
	}
	if cand.IsEmpty() {
		return
	}

	// 2. mayV: candidates a function's plain-call closure can release.
	mayV := make(map[string]*bitset.Set, len(info.FuncList))
	for _, fi := range info.FuncList {
		direct := bitset.New(ng)
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			if s, ok := n.(*ast.SemStmt); ok && s.Op == token.RELEASE {
				if sym := info.Uses[s.Sem]; sym != nil && sym.GlobalID >= 0 && cand.Has(sym.GlobalID) {
					direct.Add(sym.GlobalID)
				}
			}
			return true
		})
		mayV[fi.Name()] = direct
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range info.FuncList {
			sum := e.p.Inter.Summaries[fi.Name()]
			if sum == nil {
				continue
			}
			for _, c := range sum.Callees {
				if sum.SpawnedOnly[c] {
					continue // spawned code runs as its own process
				}
				if cv := mayV[c]; cv != nil && mayV[fi.Name()].UnionWith(cv) {
					changed = true
				}
			}
		}
	}

	// callKills: candidates any callee of the statement may release.
	callKills := func(fn string, id ast.StmtID, into *bitset.Set) {
		ud := e.p.Inter.UseDefs[fn][id]
		if ud == nil {
			return
		}
		for _, c := range ud.Calls {
			if cv := mayV[c]; cv != nil {
				into.DifferenceWith(cv)
			}
		}
	}

	// 3. Entry contexts: process roots start holding nothing; everything
	// else starts at the universe and is intersected down from its call
	// sites (a decreasing fixpoint, so initialization must be optimistic).
	roots := e.p.Inter.SpawnTargets()
	if info.Main != nil {
		roots[info.Main.Name()] = true
	}
	entry := make(map[string]*bitset.Set, len(info.FuncList))
	for _, fi := range info.FuncList {
		if roots[fi.Name()] {
			entry[fi.Name()] = bitset.New(ng)
		} else {
			entry[fi.Name()] = cand.Clone()
		}
	}

	// flow solves one function's intersection dataflow under its current
	// entry context, returning the in-state (pre-statement) of each node.
	flow := func(fn string, fp funcGraph) []*bitset.Set {
		g := fp.g
		in := make([]*bitset.Set, len(g.Nodes))
		for i := range in {
			in[i] = cand.Clone() // optimistic universe
		}
		in[cfg.EntryNode] = entry[fn].Clone()
		out := func(p cfg.NodeID) *bitset.Set {
			s := in[p].Clone()
			n := g.Nodes[p]
			if n.Stmt == nil {
				return s
			}
			callKills(fn, n.Stmt.ID(), s)
			if ss, ok := n.Stmt.(*ast.SemStmt); ok {
				if sym := e.info.Uses[ss.Sem]; sym != nil && sym.GlobalID >= 0 && cand.Has(sym.GlobalID) {
					if ss.Op == token.ACQUIRE {
						s.Add(sym.GlobalID)
					} else {
						s.Remove(sym.GlobalID)
					}
				}
			}
			return s
		}
		for changed := true; changed; {
			changed = false
			for id := range g.Nodes {
				if cfg.NodeID(id) == cfg.EntryNode {
					continue
				}
				n := g.Nodes[id]
				if len(n.Preds) == 0 {
					continue // unreachable: stays at universe (vacuous)
				}
				next := cand.Clone()
				for _, p := range n.Preds {
					next.IntersectWith(out(p))
				}
				if !next.Equal(in[id]) {
					in[id] = next
					changed = true
				}
			}
		}
		return in
	}

	funcs := make([]funcGraph, 0, len(info.FuncList))
	for _, fi := range info.FuncList {
		if fp := e.p.Funcs[fi.Name()]; fp != nil {
			funcs = append(funcs, funcGraph{name: fi.Name(), g: fp.CFG, fp: fi})
		}
	}

	ins := make(map[string][]*bitset.Set, len(funcs))
	for changed := true; changed; {
		changed = false
		for _, fg := range funcs {
			in := flow(fg.name, fg)
			ins[fg.name] = in
			for id, n := range fg.g.Nodes {
				if n.Stmt == nil {
					continue
				}
				ud := e.p.Inter.UseDefs[fg.name][n.Stmt.ID()]
				if ud == nil || len(ud.Calls) == 0 {
					continue
				}
				ctx := in[id].Clone()
				callKills(fg.name, n.Stmt.ID(), ctx)
				for _, c := range ud.Calls {
					if ec := entry[c]; ec != nil {
						before := ec.Clone()
						ec.IntersectWith(ctx)
						if !ec.Equal(before) {
							changed = true
						}
					}
				}
			}
		}
	}

	// Root-reachable functions: only code that can execute matters for
	// discipline violations and guarded-access certificates.
	reach := make(map[string]bool)
	var mark func(string)
	mark = func(fn string) {
		if reach[fn] {
			return
		}
		reach[fn] = true
		if sum := e.p.Inter.Summaries[fn]; sum != nil {
			for _, c := range sum.Callees {
				mark(c)
			}
		}
	}
	for r := range roots {
		mark(r)
	}

	// 4. Lock-like filter: drop candidates whose V-discipline is violated
	// anywhere reachable.
	lockLike := cand.Clone()
	for _, fg := range funcs {
		if !reach[fg.name] {
			continue
		}
		in := ins[fg.name]
		for id, n := range fg.g.Nodes {
			ss, ok := n.Stmt.(*ast.SemStmt)
			if !ok || ss.Op != token.RELEASE {
				continue
			}
			sym := e.info.Uses[ss.Sem]
			if sym == nil || sym.GlobalID < 0 || !cand.Has(sym.GlobalID) {
				continue
			}
			if !in[id].Has(sym.GlobalID) {
				lockLike.Remove(sym.GlobalID)
			}
		}
	}

	// heldAt: must-held lockset in effect for the statement's own data
	// accesses (call effects subtracted, filtered to lock-like sems).
	heldAt := func(fn string, id cfg.NodeID, sid ast.StmtID) *bitset.Set {
		h := ins[fn][id].Clone()
		callKills(fn, sid, h)
		h.IntersectWith(lockLike)
		return h
	}

	// 5. Counter + guarded-variable certificates.
	for _, fg := range funcs {
		if !reach[fg.name] {
			continue
		}
		for id, n := range fg.g.Nodes {
			if n.Stmt == nil {
				continue
			}
			if !heldAt(fg.name, cfg.NodeID(id), n.Stmt.ID()).IsEmpty() {
				e.facts.LocksetStmts++
			}
		}
	}
	for gid, sym := range info.Globals {
		if sym.Kind != sem.SymGlobal || !e.p.SharedMask.Has(gid) {
			continue
		}
		held := lockLike.Clone()
		accesses := 0
		for _, fg := range funcs {
			if !reach[fg.name] {
				continue
			}
			gidx := e.p.Funcs[fg.name].Space.GlobalIndex(gid)
			for id, n := range fg.g.Nodes {
				if n.Stmt == nil {
					continue
				}
				ud := e.p.Funcs[fg.name].UseDefs[n.Stmt.ID()]
				if ud == nil || (!ud.Use.Has(gidx) && !ud.Def.Has(gidx)) {
					continue
				}
				accesses++
				held.IntersectWith(heldAt(fg.name, cfg.NodeID(id), n.Stmt.ID()))
				if held.IsEmpty() {
					break
				}
			}
			if held.IsEmpty() {
				break
			}
		}
		if accesses > 0 && !held.IsEmpty() {
			e.facts.Guarded = append(e.facts.Guarded, GuardedVar{Gid: gid, Sem: held.Elems()[0]})
		}
	}
}

type funcGraph struct {
	name string
	g    *cfg.Graph
	fp   *sem.FuncInfo
}
