package analysis

import (
	"fmt"

	"ppd/internal/analysis/absint"
)

// The absint-backed passes. The abstract interpreter (analysis/absint)
// runs once per analysis — either handed in by the compile pipeline,
// which also feeds its safety certificates to the fusion pass, or
// computed lazily here — and these passes render its findings through
// the shared Diagnostic machinery so positions, sorting, -strict exit
// codes, and the progdb cache all treat them like any other pass.

// absfacts returns the abstract-interpretation facts, computing them on
// first use when the caller did not supply a precomputed set.
func (c *context) absfacts() *absint.Facts {
	if c.facts == nil {
		c.facts = absint.Analyze(c.p)
	}
	return c.facts
}

// findingDiags converts the engine's raw findings for one pass into
// diagnostics. The engine reports byte offsets; the context owns the
// line/column mapping.
func findingDiags(c *context, pass string) []*Diagnostic {
	var out []*Diagnostic
	for _, fd := range c.absfacts().Findings {
		if fd.Pass != pass {
			continue
		}
		sev := Info
		if fd.Warn {
			sev = Warning
		}
		out = append(out, &Diagnostic{
			Code:    fd.Code,
			Sev:     sev,
			Pos:     c.pos(fd.Pos),
			Message: fd.Message,
		})
	}
	return out
}

// divzeroPass reports divisions whose abstract divisor range contains
// zero: a warning when the divisor is provably zero, an info when zero
// is merely possible.
func divzeroPass(c *context) []*Diagnostic { return findingDiags(c, "divzero") }

// boundsPass reports indexed accesses whose abstract index range falls
// outside the array: a warning when provably out of range (in-range
// accesses earn fusion certificates instead of diagnostics).
func boundsPass(c *context) []*Diagnostic { return findingDiags(c, "bounds") }

// deadbranchPass reports conditions with a constant abstract truth value
// and the statements they render unreachable.
func deadbranchPass(c *context) []*Diagnostic { return findingDiags(c, "deadbranch") }

// locksetPass reports shared variables whose every reachable access
// provably holds a common lock-like semaphore. These are the variables
// the conflict mask drops (see buildConflicts), so the info both
// documents the discipline and explains the missing race-candidate line.
func locksetPass(c *context) []*Diagnostic {
	var out []*Diagnostic
	for _, g := range c.absfacts().Guarded {
		out = append(out, &Diagnostic{
			Code: "lock-guarded",
			Sev:  Info,
			Pos:  c.declPos(g.Gid),
			Message: fmt.Sprintf("shared variable '%s' is consistently guarded by semaphore '%s'; pruned from race candidates",
				c.globalName(g.Gid), c.globalName(g.Sem)),
			Related: []Related{{
				Pos:     c.declPos(g.Sem),
				Message: fmt.Sprintf("semaphore '%s' declared here", c.globalName(g.Sem)),
			}},
		})
	}
	return out
}
