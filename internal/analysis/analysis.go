// Package analysis is the compile-time companion to the dynamic debugger:
// a pass manager over the artifacts the §5 semantic-analysis phase already
// produces (CFGs, use/def facts, reaching definitions, interprocedural
// MOD/REF summaries, the simplified static graph with its sync units).
//
// Where the dynamic phases find the races and deadlocks that *did* happen
// in one execution instance, these passes report what *may* happen in any
// instance — static race candidates, semaphore lock-order cycles,
// unmatched P/V pairs, uninitialized shared reads, dead stores — before a
// single instruction runs. The race-candidate pass additionally emits a
// per-variable conflict matrix whose projection (Mask) lets the dynamic
// detectors skip buckets for variables no pair of processes can conflict
// on, attacking the §7 pair-enumeration cost from the static side.
package analysis

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"ppd/internal/analysis/absint"
	"ppd/internal/bytecode"
	"ppd/internal/obs"
	"ppd/internal/pdg"
	"ppd/internal/source"
)

// Severity grades a diagnostic.
type Severity int

// Severities, mildest first. Warnings (and errors) make `ppd vet -strict`
// exit non-zero; infos never do.
const (
	Info Severity = iota
	Warning
	Error
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return "?"
}

// Related is a secondary source position attached to a diagnostic — the
// "note:" lines of a compiler report.
type Related struct {
	Pos     source.Position
	Message string
}

// Diagnostic is one finding: a stable code (e.g. "race-candidate"), a
// severity, the primary source position, a human message, and any related
// positions (conflicting accesses, the edges of a lock cycle, ...).
type Diagnostic struct {
	Code    string
	Sev     Severity
	Pos     source.Position
	Message string
	Related []Related
}

// String renders the diagnostic's primary line.
func (d *Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s [%s]", d.Pos, d.Sev, d.Message, d.Code)
}

// A pass inspects the compile artifacts and reports diagnostics. Passes
// never mutate the artifacts and are independent: each sees the same
// context and their outputs are concatenated then sorted.
type pass struct {
	name string
	desc string
	run  func(*context) []*Diagnostic
}

// passes in execution order. The order does not affect output (diagnostics
// are position-sorted) but is the order of the per-pass obs timers.
var passes = []pass{
	{"racecand", "static race candidates via MHP × MOD/REF", racecandPass},
	{"synclint", "semaphore lock-order cycles and unmatched P/V", synclintPass},
	{"uninit", "uninitialized shared reads via reaching definitions", uninitPass},
	{"deadstore", "dead stores and unused shared variables", deadstorePass},
	{"divzero", "divisions whose abstract divisor range contains zero", divzeroPass},
	{"bounds", "indexed accesses outside the array's abstract bounds", boundsPass},
	{"deadbranch", "constant conditions and unreachable statements", deadbranchPass},
	{"lockset", "shared accesses provably under a common semaphore", locksetPass},
}

// PassNames lists the analysis passes in execution order.
func PassNames() []string {
	out := make([]string, len(passes))
	for i, p := range passes {
		out[i] = p.name
	}
	return out
}

// FactsCounts summarizes the abstract-interpretation facts behind the
// absint-backed passes, surfaced in -json as facts.* and persisted with
// the cached vet result.
type FactsCounts struct {
	Intervals int // bounded interval facts over reachable states
	Nonzero   int // nonzero facts over reachable states
	Locksets  int // statements analyzed under a nonempty must-held lockset
}

// Result bundles one full analysis run.
type Result struct {
	Diagnostics []*Diagnostic
	// Conflicts is the racecand pass's per-variable conflict matrix; its
	// Mask prunes the dynamic detectors.
	Conflicts *ConflictMatrix
	// PerPass counts diagnostics by pass name.
	PerPass map[string]int
	// Facts counts the abstract-interpretation facts the run computed.
	Facts FactsCounts
}

// Analyze runs every pass over a compiled program. p and bprog come from
// the same compile; sink (which may be nil) receives one
// "analysis.<pass>" scope per pass plus an "analysis.total" scope and
// "analysis.diags" counter.
func Analyze(p *pdg.Program, bprog *bytecode.Program, sink *obs.Sink) *Result {
	return AnalyzeWithFacts(p, bprog, sink, nil)
}

// AnalyzeWithFacts is Analyze with a precomputed abstract-interpretation
// result — the compile pipeline runs the engine once and shares it
// between fusion widening and the vet passes. A nil facts runs the
// engine here under its own "analysis.absint" scope.
func AnalyzeWithFacts(p *pdg.Program, bprog *bytecode.Program, sink *obs.Sink, facts *absint.Facts) *Result {
	total := sink.Scope("analysis.total")
	defer total.End()

	ctx := newContext(p, bprog)
	if facts == nil {
		sc := sink.Scope("analysis.absint")
		facts = absint.Analyze(p)
		sc.End()
	}
	ctx.facts = facts
	res := &Result{
		PerPass: make(map[string]int, len(passes)),
		Facts: FactsCounts{
			Intervals: facts.Intervals,
			Nonzero:   facts.NonzeroFacts,
			Locksets:  facts.LocksetStmts,
		},
	}
	for _, ps := range passes {
		sc := sink.Scope("analysis." + ps.name)
		ds := ps.run(ctx)
		sc.End()
		res.Diagnostics = append(res.Diagnostics, ds...)
		res.PerPass[ps.name] = len(ds)
	}
	res.Conflicts = ctx.conflicts
	sortDiagnostics(res.Diagnostics)
	sink.Counter("analysis.diags").Add(int64(len(res.Diagnostics)))
	return res
}

// sortDiagnostics orders by position, then code, then message — the
// stable order the golden tests pin.
func sortDiagnostics(ds []*Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Message < b.Message
	})
}

// Counts returns the number of warnings-or-worse and the number of infos.
func (r *Result) Counts() (warnings, infos int) {
	for _, d := range r.Diagnostics {
		if d.Sev >= Warning {
			warnings++
		} else {
			infos++
		}
	}
	return warnings, infos
}

// Clean reports whether the run produced no diagnostics at all.
func (r *Result) Clean() bool { return len(r.Diagnostics) == 0 }

// Text renders the result in the compiler-report format `ppd vet` prints
// and the golden tests pin: one line per diagnostic, indented notes for
// related positions, and a trailing summary line.
func (r *Result) Text() string {
	if r.Clean() {
		return "no diagnostics\n"
	}
	var sb strings.Builder
	for _, d := range r.Diagnostics {
		fmt.Fprintf(&sb, "%s\n", d)
		for _, rel := range d.Related {
			fmt.Fprintf(&sb, "\tnote: %s: %s\n", rel.Pos, rel.Message)
		}
	}
	w, i := r.Counts()
	fmt.Fprintf(&sb, "%d diagnostic(s): %d warning(s), %d info\n", len(r.Diagnostics), w, i)
	return sb.String()
}

// jsonDiag is the wire shape of one diagnostic.
type jsonDiag struct {
	Code     string       `json:"code"`
	Severity string       `json:"severity"`
	Pos      string       `json:"pos"`
	Line     int          `json:"line"`
	Col      int          `json:"col"`
	Message  string       `json:"message"`
	Related  []jsonRelate `json:"related,omitempty"`
}

type jsonRelate struct {
	Pos     string `json:"pos"`
	Message string `json:"message"`
}

// jsonFacts is the wire shape of the abstract-interpretation counters.
type jsonFacts struct {
	Intervals int `json:"intervals"`
	Nonzero   int `json:"nonzero"`
	Locksets  int `json:"locksets"`
}

// JSON renders the result for machine consumption (`ppd vet -json`).
func (r *Result) JSON() ([]byte, error) {
	w, i := r.Counts()
	out := struct {
		Diagnostics []jsonDiag     `json:"diagnostics"`
		Warnings    int            `json:"warnings"`
		Infos       int            `json:"infos"`
		PerPass     map[string]int `json:"per_pass"`
		Candidates  int            `json:"race_candidate_vars"`
		Facts       jsonFacts      `json:"facts"`
	}{
		Diagnostics: []jsonDiag{},
		Warnings:    w,
		Infos:       i,
		PerPass:     r.PerPass,
		Candidates:  r.Conflicts.NumCandidates(),
		Facts: jsonFacts{
			Intervals: r.Facts.Intervals,
			Nonzero:   r.Facts.Nonzero,
			Locksets:  r.Facts.Locksets,
		},
	}
	for _, d := range r.Diagnostics {
		jd := jsonDiag{
			Code:     d.Code,
			Severity: d.Sev.String(),
			Pos:      d.Pos.String(),
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Message:  d.Message,
		}
		for _, rel := range d.Related {
			jd.Related = append(jd.Related, jsonRelate{Pos: rel.Pos.String(), Message: rel.Message})
		}
		out.Diagnostics = append(out.Diagnostics, jd)
	}
	return json.MarshalIndent(out, "", "  ")
}
