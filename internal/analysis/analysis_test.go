package analysis_test

import (
	"encoding/json"
	"strings"
	"testing"

	"ppd/internal/analysis"
	"ppd/internal/compile"
	"ppd/internal/eblock"
	"ppd/internal/obs"
	"ppd/internal/workloads"
)

// analyze compiles src and runs every pass.
func analyze(t *testing.T, src string) *analysis.Result {
	t.Helper()
	art, err := compile.CompileSource("test.mpl", src, eblock.Config{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return analysis.Analyze(art.PDG, art.Prog, nil)
}

// codes extracts the diagnostic codes in report order.
func codes(r *analysis.Result) []string {
	var out []string
	for _, d := range r.Diagnostics {
		out = append(out, d.Code)
	}
	return out
}

func hasCode(r *analysis.Result, code string) bool {
	for _, d := range r.Diagnostics {
		if d.Code == code {
			return true
		}
	}
	return false
}

func TestRaceCandidateSingleSpawns(t *testing.T) {
	res := analyze(t, `
shared SV;
sem done = 0;
func p1() { SV = 1; V(done); }
func p2() { SV = 2; V(done); }
func main() { spawn p1(); spawn p2(); P(done); P(done); print(SV); }`)
	if !hasCode(res, "race-candidate") {
		t.Fatalf("two writers must be a race candidate; got %v", codes(res))
	}
	m := res.Conflicts
	if !m.MayConflict(0) {
		t.Fatalf("SV (gid 0) must be in the conflict mask: %s", m)
	}
	if m.Mask().Count() != 1 {
		t.Fatalf("only SV conflicts, mask = %s", m.Mask())
	}
}

func TestNoCandidateWithoutConcurrency(t *testing.T) {
	res := analyze(t, `
shared SV = 1;
func bump() { SV = SV + 1; }
func main() { bump(); bump(); print(SV); }`)
	if len(res.Diagnostics) != 0 {
		t.Fatalf("sequential program must be clean, got %v", codes(res))
	}
	if res.Conflicts.NumCandidates() != 0 {
		t.Fatalf("no spawn ⇒ empty conflict mask, got %s", res.Conflicts.Mask())
	}
}

// TestMultiplicity pins the at-most-once analysis: one loop-free spawn of
// a writer is a single instance (no self-conflict), while a spawn inside
// a loop is "many" and self-conflicts.
func TestMultiplicity(t *testing.T) {
	single := analyze(t, `
shared SV;
sem done = 0;
func w() { SV = SV + 1; V(done); }
func main() { spawn w(); P(done); }`)
	if hasCode(single, "race-candidate") {
		t.Fatalf("single writer instance cannot self-conflict: %v", codes(single))
	}
	looped := analyze(t, `
shared SV;
sem done = 0;
func w() { SV = SV + 1; V(done); }
func main() {
	var i = 0;
	while (i < 3) { spawn w(); i = i + 1; }
	i = 0;
	while (i < 3) { P(done); i = i + 1; }
}`)
	if !hasCode(looped, "race-candidate") {
		t.Fatalf("loop-spawned writer must self-conflict: %v", codes(looped))
	}
	if !strings.Contains(looped.Text(), "multiple instances") {
		t.Fatalf("diagnostic should mention instance multiplicity:\n%s", looped.Text())
	}
}

// TestLockCycleInterprocedural checks that held-sets flow through plain
// calls: main P(a) then calls f which P(b); a spawned worker acquires in
// the opposite order.
func TestLockCycleInterprocedural(t *testing.T) {
	res := analyze(t, `
sem a = 1;
sem b = 1;
sem done = 0;
func f() { P(b); V(b); }
func w() { P(b); P(a); V(a); V(b); V(done); }
func main() { spawn w(); P(a); f(); V(a); P(done); }`)
	if !hasCode(res, "lock-cycle") {
		t.Fatalf("inverted interprocedural lock order must be flagged: %v", codes(res))
	}
	var diag string
	for _, d := range res.Diagnostics {
		if d.Code == "lock-cycle" {
			diag = d.Message
			if len(d.Related) < 2 {
				t.Fatalf("cycle diagnostic should carry one note per edge, got %d", len(d.Related))
			}
		}
	}
	if !strings.Contains(diag, "a -> b -> a") && !strings.Contains(diag, "b -> a -> b") {
		t.Fatalf("cycle rendering unexpected: %q", diag)
	}
}

// TestSignalSemaphoresExcluded pins the P(done); P(done) join idiom:
// counting semaphores that start at 0 order events and must not enter the
// lock-order graph.
func TestSignalSemaphoresExcluded(t *testing.T) {
	res := analyze(t, `
sem done = 0;
func w() { V(done); }
func main() { spawn w(); spawn w(); P(done); P(done); }`)
	if hasCode(res, "lock-cycle") {
		t.Fatalf("join idiom on a signal semaphore is not a lock cycle: %v", codes(res))
	}
}

func TestSemPairingLints(t *testing.T) {
	res := analyze(t, `
sem never = 0;
sem ghost = 1;
sem leak = 0;
func main() { V(never); P(leak); }`)
	for _, want := range []string{"sem-never-acquired", "sem-unused", "sem-never-released"} {
		if !hasCode(res, want) {
			t.Errorf("missing %s in %v", want, codes(res))
		}
	}
	if !strings.Contains(res.Text(), "blocks forever") {
		t.Errorf("P on a never-V'd 0-semaphore should warn about blocking:\n%s", res.Text())
	}
}

func TestChanLints(t *testing.T) {
	res := analyze(t, `
chan idle[2];
chan dry[2];
func main() { var v = recv(dry); print(v); }`)
	if !hasCode(res, "chan-unused") || !hasCode(res, "chan-never-sent") {
		t.Fatalf("channel lints missing: %v", codes(res))
	}
}

func TestUninitRead(t *testing.T) {
	res := analyze(t, `
shared total;
func main() { print(total); }`)
	if !hasCode(res, "uninit-read") {
		t.Fatalf("read of never-written shared scalar must be flagged: %v", codes(res))
	}
	clean := analyze(t, `
shared total;
func fill() { total = 42; }
func main() { fill(); print(total); }`)
	if hasCode(clean, "uninit-read") {
		t.Fatalf("a call-effect write reaches the read: %v", codes(clean))
	}
}

func TestDeadStore(t *testing.T) {
	res := analyze(t, `
func main() {
	var x = 1;
	x = 2;
	print(x);
}`)
	if !hasCode(res, "dead-store") {
		t.Fatalf("overwritten initializer is a dead store: %v", codes(res))
	}
	clean := analyze(t, `
func main() {
	var x = 1;
	print(x);
	x = 2;
	print(x);
}`)
	if hasCode(clean, "dead-store") {
		t.Fatalf("both stores are read: %v", codes(clean))
	}
}

func TestUnusedShared(t *testing.T) {
	res := analyze(t, `
shared dead;
shared sink;
func main() { sink = 1; }`)
	if !hasCode(res, "unused-shared") || !hasCode(res, "write-only-shared") {
		t.Fatalf("unused-shared lints missing: %v", codes(res))
	}
}

func TestResultTextAndJSON(t *testing.T) {
	res := analyze(t, `
shared SV;
sem done = 0;
func w() { SV = 1; V(done); }
func main() { spawn w(); spawn w(); P(done); P(done); print(SV); }`)
	text := res.Text()
	if !strings.Contains(text, "warning") || !strings.Contains(text, "test.mpl:") {
		t.Fatalf("text rendering incomplete:\n%s", text)
	}
	data, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Diagnostics []struct {
			Code string `json:"code"`
			Pos  string `json:"pos"`
			Line int    `json:"line"`
		} `json:"diagnostics"`
		Warnings   int `json:"warnings"`
		Candidates int `json:"race_candidate_vars"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, data)
	}
	if decoded.Warnings == 0 || decoded.Candidates == 0 || len(decoded.Diagnostics) == 0 {
		t.Fatalf("JSON summary incomplete: %s", data)
	}
	if decoded.Diagnostics[0].Line == 0 || !strings.Contains(decoded.Diagnostics[0].Pos, "test.mpl") {
		t.Fatalf("JSON diagnostics carry no position: %s", data)
	}
}

func TestAnalyzeObsScopes(t *testing.T) {
	art, err := compile.CompileSource("obs.mpl", workloads.ProdCons(20).Src, eblock.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sink := obs.New()
	analysis.Analyze(art.PDG, art.Prog, sink)
	snap := sink.Snapshot()
	for _, pass := range analysis.PassNames() {
		if snap.Timers["analysis."+pass].Count == 0 {
			t.Errorf("missing timer for pass %s; timers: %v", pass, snap.Timers)
		}
	}
	if snap.Timers["analysis.total"].Count == 0 {
		t.Error("missing analysis.total scope")
	}
}

func BenchmarkStaticAnalysis(b *testing.B) {
	for _, wl := range workloads.Standard() {
		art, err := compile.CompileSource(wl.Name, wl.Src, eblock.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.Run(wl.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				analysis.Analyze(art.PDG, art.Prog, nil)
			}
		})
	}
}
