package analysis

import (
	"fmt"
	"sort"
	"strings"

	"ppd/internal/bitset"
)

// procClass is one may-happen-in-parallel unit: the process(es) entered at
// one spawn target (or main). Its read/write sets are the interprocedural
// MOD/REF closures of the entry function over plain calls only — exactly
// the shared variables any dynamic internal edge of such a process can
// touch, so the conflict matrix over-approximates every dynamic conflict.
type procClass struct {
	Entry string
	// Many marks classes that may have more than one instance over a run
	// (several spawn sites, a spawn in a loop, or a spawning container
	// that itself runs more than once). A Many class conflicts with
	// itself.
	Many   bool
	Reads  *bitset.Set // shared GlobalIDs possibly read
	Writes *bitset.Set // shared GlobalIDs possibly written
}

// ConflictPair records that classes A and B (indices into Classes; A==B
// for a self-conflicting Many class) may race on Vars.
type ConflictPair struct {
	A, B int
	Vars *bitset.Set
}

// LockGuard records one variable dropped from the conflict mask because
// the lockset analysis proved every reachable access holds semaphore Sem
// (both are GlobalIDs).
type LockGuard struct {
	Gid int
	Sem int
}

// ConflictMatrix is the racecand pass's product: per-variable static
// conflict facts plus the projection the dynamic detectors consume.
type ConflictMatrix struct {
	NumGlobals int
	Classes    []procClass
	Pairs      []ConflictPair
	// Guarded lists the variables the lockset analysis pruned from the
	// mask (and from Pairs), with the semaphore that guards each.
	Guarded []LockGuard

	mask *bitset.Set
}

// Mask returns the set of GlobalIDs with at least one static conflict —
// the variables whose detector buckets must be scanned. A nil matrix (no
// analysis run) returns nil, which the detectors treat as "scan all".
func (m *ConflictMatrix) Mask() *bitset.Set {
	if m == nil {
		return nil
	}
	return m.mask
}

// NumCandidates counts variables with at least one static conflict.
func (m *ConflictMatrix) NumCandidates() int {
	if m == nil {
		return 0
	}
	return m.mask.Count()
}

// MayConflict reports whether gid has any static conflict.
func (m *ConflictMatrix) MayConflict(gid int) bool {
	return m != nil && m.mask.Has(gid)
}

// String renders the matrix for dumps: one line per class, one per pair.
func (m *ConflictMatrix) String() string {
	if m == nil {
		return "no conflict matrix\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "conflict matrix: %d class(es), %d candidate variable(s)\n",
		len(m.Classes), m.NumCandidates())
	for _, cl := range m.Classes {
		multi := ""
		if cl.Many {
			multi = " (multiple instances)"
		}
		fmt.Fprintf(&sb, "  class %s%s: reads %s writes %s\n", cl.Entry, multi, cl.Reads, cl.Writes)
	}
	for _, p := range m.Pairs {
		fmt.Fprintf(&sb, "  conflict %s x %s on %s\n", m.Classes[p.A].Entry, m.Classes[p.B].Entry, p.Vars)
	}
	for _, g := range m.Guarded {
		fmt.Fprintf(&sb, "  pruned var %d (lock-guarded by sem %d)\n", g.Gid, g.Sem)
	}
	return sb.String()
}

// buildConflicts computes the process classes and their pairwise shared-
// variable conflicts.
func buildConflicts(c *context) *ConflictMatrix {
	m := &ConflictMatrix{
		NumGlobals: c.info.NumGlobals(),
		mask:       bitset.New(c.info.NumGlobals()),
	}

	// Classes: main plus every spawn target, in declaration order so the
	// matrix (and the diagnostics derived from it) are deterministic.
	targets := c.p.Inter.SpawnTargets()
	mainName := c.info.Main.Name()
	for _, fi := range c.info.FuncList {
		fn := fi.Name()
		if fn != mainName && !targets[fn] {
			continue
		}
		sum := c.p.Inter.Summaries[fn]
		m.Classes = append(m.Classes, procClass{
			Entry:  fn,
			Many:   fn != mainName && !c.singleInstance(fn),
			Reads:  c.sharedOnly(sum.Used),
			Writes: c.sharedOnly(sum.Defined),
		})
	}

	// Pairwise (and Many-self) conflicts: variable v is a candidate when
	// one side may write it and the other may access it at all —
	// Definition 6.3 lifted from dynamic edges to process classes.
	for i := range m.Classes {
		for j := i; j < len(m.Classes); j++ {
			a, b := &m.Classes[i], &m.Classes[j]
			if i == j {
				if !a.Many {
					continue
				}
				// Two instances of the same class: both may run the same
				// writes, so any written variable is a self-conflict.
				if !a.Writes.IsEmpty() {
					m.Pairs = append(m.Pairs, ConflictPair{A: i, B: i, Vars: a.Writes.Clone()})
					m.mask.UnionWith(a.Writes)
				}
				continue
			}
			vars := bitset.New(m.NumGlobals)
			if inter, ok := bitset.Intersection(a.Writes, b.Writes); ok {
				vars.UnionWith(inter)
			}
			if inter, ok := bitset.Intersection(a.Writes, b.Reads); ok {
				vars.UnionWith(inter)
			}
			if inter, ok := bitset.Intersection(a.Reads, b.Writes); ok {
				vars.UnionWith(inter)
			}
			if !vars.IsEmpty() {
				m.Pairs = append(m.Pairs, ConflictPair{A: i, B: j, Vars: vars})
				m.mask.UnionWith(vars)
			}
		}
	}

	// Lockset sharpening: a variable whose every reachable access provably
	// holds a common lock-like semaphore cannot be accessed concurrently
	// (absint/lockset.go carries the argument), so its detector buckets are
	// provably empty — drop it from the pairs and the mask. FromWire
	// rebuilds the mask as the union of pair variable sets, so pruning both
	// keeps decoded matrices consistent with fresh ones.
	for _, g := range c.absfacts().Guarded {
		if !m.mask.Has(g.Gid) {
			continue
		}
		m.Guarded = append(m.Guarded, LockGuard{Gid: g.Gid, Sem: g.Sem})
		m.mask.Remove(g.Gid)
		kept := m.Pairs[:0]
		for _, p := range m.Pairs {
			p.Vars.Remove(g.Gid)
			if !p.Vars.IsEmpty() {
				kept = append(kept, p)
			}
		}
		m.Pairs = kept
	}
	return m
}

// racecandPass reports one diagnostic per statically-conflicting shared
// variable and stows the conflict matrix on the context for Analyze (and,
// through it, the pruned dynamic detectors).
func racecandPass(c *context) []*Diagnostic {
	m := buildConflicts(c)
	c.conflicts = m

	var out []*Diagnostic
	m.mask.ForEach(func(gid int) {
		// Roles: every class that appears in some conflicting pair on gid,
		// labelled by how it can touch the variable.
		involved := make(map[int]bool)
		for _, p := range m.Pairs {
			if p.Vars.Has(gid) {
				involved[p.A] = true
				involved[p.B] = true
			}
		}
		var roles []string
		var related []Related
		for i := range m.Classes {
			if !involved[i] {
				continue
			}
			cl := &m.Classes[i]
			role := "reads"
			write := false
			if cl.Writes.Has(gid) {
				role = "writes"
				write = true
			}
			multi := ""
			if cl.Many {
				multi = " (multiple instances)"
			}
			roles = append(roles, fmt.Sprintf("%s %s%s", cl.Entry, role, multi))
			if fn, st := c.accessSite(cl.Entry, gid, write); st != nil {
				verb := "read"
				if write {
					verb = "write"
				}
				related = append(related, Related{
					Pos:     c.pos(st.Pos()),
					Message: fmt.Sprintf("%s of '%s' in %s", verb, c.globalName(gid), fn),
				})
			}
		}
		out = append(out, &Diagnostic{
			Code: "race-candidate",
			Sev:  Warning,
			Pos:  c.declPos(gid),
			Message: fmt.Sprintf("static race candidate: shared variable '%s' may be accessed by concurrent processes without ordering (%s)",
				c.globalName(gid), strings.Join(roles, "; ")),
			Related: related,
		})
	})
	sort.SliceStable(out, func(i, j int) bool { return out[i].Pos.Line < out[j].Pos.Line })
	return out
}
