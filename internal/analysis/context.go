package analysis

import (
	"sort"

	"ppd/internal/analysis/absint"
	"ppd/internal/ast"
	"ppd/internal/bitset"
	"ppd/internal/bytecode"
	"ppd/internal/cfg"
	"ppd/internal/pdg"
	"ppd/internal/sem"
	"ppd/internal/source"
)

// callSite is one static transfer of control to a function: a plain call
// (inside the caller's process) or a spawn (starting a new process).
type callSite struct {
	caller  string
	stmt    ast.Stmt
	inLoop  bool // the site sits inside a CFG natural loop of the caller
	isSpawn bool
}

// context is the shared, read-only view every pass sees. It precomputes
// the facts several passes need: call/spawn sites per target and the
// at-most-once multiplicity of each function.
type context struct {
	p    *pdg.Program
	prog *bytecode.Program
	info *sem.Info
	file *source.File

	// sites maps each function name to the plain-call and spawn sites
	// targeting it, in (caller declaration order, StmtID) order.
	sites map[string][]callSite

	// onceMemo caches execOnce results; onceStack guards against call
	// cycles (recursion ⇒ not at-most-once).
	onceMemo map[string]int // 0 unknown, 1 once, 2 many
	onceBusy map[string]bool

	// conflicts is filled by the racecand pass.
	conflicts *ConflictMatrix

	// facts holds the abstract-interpretation results; set up front by
	// AnalyzeWithFacts or computed on first use (absfacts).
	facts *absint.Facts
}

func newContext(p *pdg.Program, bprog *bytecode.Program) *context {
	c := &context{
		p:        p,
		prog:     bprog,
		info:     p.Info,
		file:     p.Info.Prog.File,
		sites:    make(map[string][]callSite),
		onceMemo: make(map[string]int),
		onceBusy: make(map[string]bool),
	}
	c.collectSites()
	return c
}

// pos resolves an AST position.
func (c *context) pos(p source.Pos) source.Position { return c.file.Position(p) }

// declPos is the declaration position of a global symbol.
func (c *context) declPos(gid int) source.Position {
	return c.pos(c.info.Globals[gid].DeclPos)
}

// globalName names a GlobalID.
func (c *context) globalName(gid int) string { return c.info.Globals[gid].Name }

// globalDecl finds the AST declaration of a global, or nil.
func (c *context) globalDecl(gid int) *ast.GlobalDecl {
	name := c.globalName(gid)
	for _, d := range c.info.Prog.Globals {
		if d.Name.Name == name {
			return d
		}
	}
	return nil
}

// collectSites records, for every function, the plain calls (from the
// interprocedural direct per-statement facts) and spawns (from the AST)
// that target it, tagging each with loop membership in the caller's CFG.
func (c *context) collectSites() {
	for _, fi := range c.info.FuncList {
		caller := fi.Name()
		fp := c.p.Funcs[caller]
		if fp == nil {
			continue
		}
		inLoop := func(id ast.StmtID) bool {
			n := fp.CFG.NodeFor(id)
			if n < 0 {
				return false
			}
			for _, l := range fp.CFG.Loops {
				for _, b := range l.Body {
					if b == n {
						return true
					}
				}
			}
			return false
		}
		// Plain calls: the direct (pre-widening) use/def facts list every
		// callee of every statement, excluding spawn targets (a SpawnStmt
		// contributes only the calls inside its argument expressions).
		ids := make([]ast.StmtID, 0, len(c.p.Inter.UseDefs[caller]))
		for id := range c.p.Inter.UseDefs[caller] {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			ud := c.p.Inter.UseDefs[caller][id]
			for _, callee := range ud.Calls {
				c.sites[callee] = append(c.sites[callee], callSite{
					caller: caller, stmt: c.info.Prog.StmtByID(id), inLoop: inLoop(id),
				})
			}
		}
		// Spawns: from the AST, which is the only place the spawn target
		// itself appears (its effects are deliberately absent from the
		// caller's local data flow).
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			if sp, ok := n.(*ast.SpawnStmt); ok {
				c.sites[sp.Call.Fun.Name] = append(c.sites[sp.Call.Fun.Name], callSite{
					caller: caller, stmt: sp, inLoop: inLoop(sp.ID()), isSpawn: true,
				})
			}
			return true
		})
	}
}

// spawnSites returns only the spawn sites targeting fn.
func (c *context) spawnSites(fn string) []callSite {
	var out []callSite
	for _, s := range c.sites[fn] {
		if s.isSpawn {
			out = append(out, s)
		}
	}
	return out
}

// execOnce reports whether function fn executes at most once in any run
// of the program, counting both plain calls and spawns. main executes
// once implicitly, so it is at-most-once iff nothing else transfers to
// it; any other function is at-most-once iff it has at most one site,
// that site is loop-free, and the containing function is itself
// at-most-once. Call cycles (recursion) are conservatively "many".
func (c *context) execOnce(fn string) bool {
	switch c.onceMemo[fn] {
	case 1:
		return true
	case 2:
		return false
	}
	if c.onceBusy[fn] {
		return false // cycle: recursion may repeat
	}
	c.onceBusy[fn] = true
	once := c.execOnceUncached(fn)
	c.onceBusy[fn] = false
	if once {
		c.onceMemo[fn] = 1
	} else {
		c.onceMemo[fn] = 2
	}
	return once
}

func (c *context) execOnceUncached(fn string) bool {
	sites := c.sites[fn]
	if fn == c.info.Main.Name() {
		return len(sites) == 0
	}
	switch len(sites) {
	case 0:
		return true // never invoked: vacuously at most once
	case 1:
		s := sites[0]
		return !s.inLoop && c.execOnce(s.caller)
	}
	return false
}

// singleInstance reports whether the process class entered at fn can have
// at most one live instance: exactly one spawn site, outside any loop, in
// a container that itself executes at most once.
func (c *context) singleInstance(fn string) bool {
	sp := c.spawnSites(fn)
	if len(sp) != 1 {
		return len(sp) == 0 // only main has no spawn sites
	}
	s := sp[0]
	return !s.inLoop && c.execOnce(s.caller)
}

// closure is the set of functions fn may execute in its own process:
// fn plus the transitive plain-call closure (spawned-only callees run in
// other processes and are excluded, mirroring the interprocedural
// summaries' Used/Defined closure).
func (c *context) closure(fn string) map[string]bool {
	out := map[string]bool{fn: true}
	work := []string{fn}
	for len(work) > 0 {
		f := work[len(work)-1]
		work = work[:len(work)-1]
		s := c.p.Inter.Summaries[f]
		if s == nil {
			continue
		}
		for _, callee := range s.Callees {
			if s.SpawnedOnly[callee] || out[callee] {
				continue
			}
			out[callee] = true
			work = append(work, callee)
		}
	}
	return out
}

// accessSite finds the first (declaration order, then StmtID) statement in
// the process class entered at entry that writes (or, with write=false,
// reads) shared global gid, using the direct per-statement facts.
func (c *context) accessSite(entry string, gid int, write bool) (string, ast.Stmt) {
	cl := c.closure(entry)
	for _, fi := range c.info.FuncList {
		fn := fi.Name()
		if !cl[fn] {
			continue
		}
		space := c.p.Inter.Spaces[fn]
		idx := space.GlobalIndex(gid)
		uds := c.p.Inter.UseDefs[fn]
		var best ast.Stmt
		for id, ud := range uds {
			hit := ud.Use.Has(idx)
			if write {
				hit = ud.Def.Has(idx)
			}
			if !hit {
				continue
			}
			st := c.info.Prog.StmtByID(id)
			if st != nil && (best == nil || st.ID() < best.ID()) {
				best = st
			}
		}
		if best != nil {
			return fn, best
		}
	}
	return "", nil
}

// sharedOnly projects a GlobalID set onto the shared variables race
// detection tracks.
func (c *context) sharedOnly(s *bitset.Set) *bitset.Set {
	out := s.Clone()
	out.IntersectWith(c.p.SharedMask)
	return out
}

var _ = cfg.EntryNode // cfg is used by passes sharing this context
