package analysis

import (
	"fmt"

	"ppd/internal/ast"
)

// deadstorePass reports two kinds of useless work the PDG already proves:
//
//   - dead stores: a strong (killing) definition of a local scalar from
//     which no data-dependence edge originates — the stored value can
//     never be observed. Restricted to scalar assignments and initialized
//     declarations; array-element writes and callee may-writes are weak
//     definitions and never flagged.
//   - unused shared state: shared variables no statement in any function
//     reads or writes, written-but-never-read shared scalars, and (from
//     the synclint data) declared-but-unused semaphores and channels.
func deadstorePass(c *context) []*Diagnostic {
	var out []*Diagnostic
	out = append(out, deadStoreDiags(c)...)
	out = append(out, unusedSharedDiags(c)...)
	return out
}

func deadStoreDiags(c *context) []*Diagnostic {
	var out []*Diagnostic
	for _, fi := range c.info.FuncList {
		fp := c.p.Funcs[fi.Name()]
		if fp == nil {
			continue
		}
		// Index the definition sites that feed at least one use.
		type defKey struct {
			node int
			v    int
		}
		live := make(map[defKey]bool, len(fp.DataDeps))
		for _, dd := range fp.DataDeps {
			live[defKey{int(dd.From), dd.Var}] = true
		}
		for _, n := range fp.CFG.Nodes {
			if n.Stmt == nil {
				continue
			}
			var idx int
			switch s := n.Stmt.(type) {
			case *ast.AssignStmt:
				if s.Index != nil {
					continue
				}
				sym := c.info.Uses[s.LHS]
				if sym == nil || sym.Slot < 0 {
					continue
				}
				idx = fp.Space.Index(sym)
			case *ast.VarDeclStmt:
				if s.Init == nil {
					continue
				}
				sym := c.info.Uses[s.Name]
				if sym == nil || sym.Slot < 0 {
					continue
				}
				idx = fp.Space.Index(sym)
			default:
				continue
			}
			ud := fp.UseDefs[n.Stmt.ID()]
			if ud == nil || !ud.Kill.Has(idx) {
				continue
			}
			if live[defKey{int(n.ID), idx}] {
				continue
			}
			out = append(out, &Diagnostic{
				Code: "dead-store",
				Sev:  Warning,
				Pos:  c.pos(n.Stmt.Pos()),
				Message: fmt.Sprintf("dead store: the value assigned to '%s' here is never used",
					fp.Space.Name(idx)),
			})
		}
	}
	return out
}

func unusedSharedDiags(c *context) []*Diagnostic {
	var out []*Diagnostic
	c.p.SharedMask.ForEach(func(gid int) {
		var used, defined bool
		for _, sum := range c.p.Inter.Summaries {
			if sum.DirectUsed.Has(gid) {
				used = true
			}
			if sum.DirectDefined.Has(gid) {
				defined = true
			}
		}
		name := c.globalName(gid)
		switch {
		case !used && !defined:
			out = append(out, &Diagnostic{
				Code: "unused-shared", Sev: Info, Pos: c.declPos(gid),
				Message: fmt.Sprintf("shared variable '%s' is never used", name),
			})
		case defined && !used:
			// Array-element writes count as uses of the array (the rest of
			// the array flows through), so this only fires for scalars.
			out = append(out, &Diagnostic{
				Code: "write-only-shared", Sev: Warning, Pos: c.declPos(gid),
				Message: fmt.Sprintf("shared variable '%s' is written but its value is never read", name),
			})
		}
	})
	return out
}
