package analysis_test

import (
	"testing"

	"ppd/internal/analysis"
	"ppd/internal/compile"
	"ppd/internal/eblock"
	"ppd/internal/workloads"
)

// FuzzVet feeds arbitrary source through the full front end
// (lexer → parser → sem → PDG) and, when it compiles, the analysis
// passes: none of it may panic on malformed MPL. The seed corpus is the
// real programs the golden tests cover.
func FuzzVet(f *testing.F) {
	for _, ex := range []string{"deadlock", "flowback", "quickstart", "racedetect", "restore"} {
		src, err := readExampleSource(ex)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(src)
	}
	for _, wl := range workloads.Standard() {
		f.Add(wl.Src)
	}
	f.Add("shared x;\nfunc main() { print(x); }")
	f.Add("sem m = 1;\nfunc main() { P(m); }")
	f.Add("func main() { spawn main(); }")
	f.Add("func f() { f(); }\nfunc main() { f(); }")
	f.Add("shared a[3];\nchan c[1];\nfunc main() { send(c, a[0]); }")
	f.Fuzz(func(t *testing.T, src string) {
		art, err := compile.CompileSource("fuzz.mpl", src, eblock.DefaultConfig())
		if err != nil {
			return // front-end rejection is fine; panics are not
		}
		res := analysis.Analyze(art.PDG, art.Prog, nil)
		_ = res.Text()
		if _, err := res.JSON(); err != nil {
			t.Fatalf("JSON rendering failed on valid program: %v", err)
		}
	})
}
