package analysis_test

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"ppd/internal/analysis"
	"ppd/internal/compile"
	"ppd/internal/eblock"
	"ppd/internal/workloads"
)

// goldenProgram is one entry of the diagnostics matrix: every example,
// every workload shape, every testdata program.
type goldenProgram struct {
	name string // golden file stem and compile filename
	src  string
}

var programRE = regexp.MustCompile("(?s)const program = `(.*?)`")

// readExampleSource extracts the MPL program embedded in an example's
// main.go.
func readExampleSource(example string) (string, error) {
	data, err := os.ReadFile(filepath.Join("..", "..", "examples", example, "main.go"))
	if err != nil {
		return "", err
	}
	m := programRE.FindSubmatch(data)
	if m == nil {
		return "", fmt.Errorf("example %s: no `const program` block", example)
	}
	return string(m[1]), nil
}

func exampleSource(t *testing.T, example string) string {
	t.Helper()
	src, err := readExampleSource(example)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func goldenPrograms(t *testing.T) []goldenProgram {
	t.Helper()
	var out []goldenProgram
	for _, ex := range []string{"deadlock", "flowback", "quickstart", "racedetect", "restore"} {
		out = append(out, goldenProgram{name: "example_" + ex, src: exampleSource(t, ex)})
	}
	wls := workloads.Standard()
	wls = append(wls,
		workloads.Sharded(4, 40),
		workloads.RacyCounter(3, 25, false),
		workloads.RacyCounter(3, 25, true),
		workloads.GuardedCounter(3, 25),
	)
	for _, wl := range wls {
		name := "workload_" + strings.NewReplacer("-", "_", "x", "x").Replace(wl.Name)
		out = append(out, goldenProgram{name: name, src: wl.Src})
	}
	for _, td := range []string{"quick", "crash", "racy",
		"absint_divzero", "absint_divsafe", "absint_bounds", "absint_guarded"} {
		data, err := os.ReadFile(filepath.Join("..", "..", "testdata", td+".mpl"))
		if err != nil {
			t.Fatalf("read testdata %s: %v", td, err)
		}
		out = append(out, goldenProgram{name: "testdata_" + td, src: string(data)})
	}
	return out
}

func vetText(t *testing.T, name, src string) string {
	t.Helper()
	art, err := compile.CompileSource(name+".mpl", src, eblock.DefaultConfig())
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	return art.Vet(nil).Text()
}

// TestVetGolden pins the exact `ppd vet` text output for every program in
// examples/, internal/workloads, and testdata/. Regenerate deliberately
// with PPD_UPDATE_GOLDEN=1.
func TestVetGolden(t *testing.T) {
	update := os.Getenv("PPD_UPDATE_GOLDEN") != ""
	for _, gp := range goldenPrograms(t) {
		gp := gp
		t.Run(gp.name, func(t *testing.T) {
			got := vetText(t, gp.name, gp.src)
			path := filepath.Join("testdata", "golden", gp.name+".vet")
			if update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with PPD_UPDATE_GOLDEN=1 to create): %v", err)
			}
			if got != string(want) {
				t.Fatalf("vet output differs from golden %s:\ngot:\n%s\nwant:\n%s", path, got, want)
			}
		})
	}
}

// TestVetAcceptance pins the behaviors the golden matrix must never
// drift away from: the deadlock example is flagged with a lock-cycle
// diagnostic carrying source positions, and quickstart stays clean under
// -strict (zero warnings; the abstract interpreter's "possible division
// by zero" info on the example's intentional bug line is allowed — and
// wanted, since it points at the very division the debugger then traces).
func TestVetAcceptance(t *testing.T) {
	dead := vetText(t, "deadlock", exampleSource(t, "deadlock"))
	if !strings.Contains(dead, "[lock-cycle]") {
		t.Errorf("deadlock example not flagged with a lock-cycle diagnostic:\n%s", dead)
	}
	if !regexp.MustCompile(`deadlock\.mpl:\d+:\d+`).MatchString(dead) {
		t.Errorf("lock-cycle diagnostic carries no source position:\n%s", dead)
	}
	if !strings.Contains(dead, "while holding") {
		t.Errorf("lock-cycle diagnostic should explain the held-acquire edges:\n%s", dead)
	}
	art, err := compile.CompileSource("quickstart.mpl", exampleSource(t, "quickstart"), eblock.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if w, _ := art.Vet(nil).Counts(); w != 0 {
		t.Errorf("quickstart must report zero warnings, got:\n%s", art.Vet(nil).Text())
	}
}

// TestVetResultPersisted checks the program-database persistence contract:
// the artifacts' Vet memoizes into DB and repeated calls share one result.
func TestVetResultPersisted(t *testing.T) {
	art, err := compile.CompileSource("racy.mpl", exampleSource(t, "racedetect"), eblock.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if art.DB.Vet() != nil {
		t.Fatal("Vet result present before any analysis ran")
	}
	r1 := art.Vet(nil)
	if art.DB.Vet() != r1 {
		t.Fatal("Vet result not persisted into the program database")
	}
	calls := 0
	r2 := art.DB.EnsureVet(func() *analysis.Result { calls++; return nil })
	if r2 != r1 || calls != 0 {
		t.Fatal("EnsureVet recomputed despite a cached result")
	}
}
