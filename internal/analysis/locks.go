package analysis

import (
	"fmt"
	"sort"
	"strings"

	"ppd/internal/ast"
	"ppd/internal/bitset"
	"ppd/internal/bytecode"
	"ppd/internal/cfg"
	"ppd/internal/source"
	"ppd/internal/token"
)

// semSite is one P or V operation in the program text.
type semSite struct {
	fn   string
	stmt *ast.SemStmt
	gid  int
}

// chanSite is one send or receive on a channel.
type chanSite struct {
	fn   string
	pos  source.Pos
	gid  int
	send bool
}

// lockEdge records "P(to) while holding from": one edge of the semaphore
// lock-order graph, with the position of the inner acquire.
type lockEdge struct {
	from, to int
	pos      source.Position
	fn       string
}

// synclintPass runs the semaphore and channel lints:
//
//   - a lock-order graph over mutex-like semaphores (initial count >= 1),
//     built by a forward may-held dataflow over each function's CFG with
//     held-sets propagated interprocedurally through plain calls; a cycle
//     in the graph is a potential deadlock (this is what flags
//     examples/deadlock). Spawned processes start with nothing held.
//     Signal semaphores (initial count 0) are excluded: P;P join idioms
//     on them are ordinary barrier waits, not lock ordering.
//   - V without any matching P, P on a semaphore that is never V'd, and
//     unused semaphores/channels.
func synclintPass(c *context) []*Diagnostic {
	semSites, chanSites := collectSyncSites(c)
	var out []*Diagnostic
	out = append(out, lockOrderDiags(c, semSites)...)
	out = append(out, pairingDiags(c, semSites, chanSites)...)
	return out
}

// collectSyncSites walks every function body for P/V statements and
// channel sends/receives, resolving operands to GlobalIDs.
func collectSyncSites(c *context) ([]semSite, []chanSite) {
	var sems []semSite
	var chans []chanSite
	for _, fi := range c.info.FuncList {
		fn := fi.Name()
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.SemStmt:
				if sym := c.info.Uses[s.Sem]; sym != nil && sym.GlobalID >= 0 {
					sems = append(sems, semSite{fn: fn, stmt: s, gid: sym.GlobalID})
				}
			case *ast.SendStmt:
				if sym := c.info.Uses[s.Chan]; sym != nil && sym.GlobalID >= 0 {
					chans = append(chans, chanSite{fn: fn, pos: s.Pos(), gid: sym.GlobalID, send: true})
				}
			case *ast.RecvExpr:
				if sym := c.info.Uses[s.Chan]; sym != nil && sym.GlobalID >= 0 {
					chans = append(chans, chanSite{fn: fn, pos: s.Pos(), gid: sym.GlobalID})
				}
			}
			return true
		})
	}
	return sems, chans
}

// mutexLike reports whether a semaphore's initial count makes it behave
// like a lock (P acquires, V releases, count returns to its resting
// value). Signal semaphores starting at 0 order events instead.
func mutexLike(def bytecode.GlobalDef) bool {
	return def.Kind == bytecode.GlobalSem && def.Init >= 1
}

// lockOrderDiags builds the lock-order graph and reports its cycles.
func lockOrderDiags(c *context, sites []semSite) []*Diagnostic {
	nG := c.info.NumGlobals()
	mutex := bitset.New(nG)
	for gid, def := range c.prog.Globals {
		if mutexLike(def) {
			mutex.Add(gid)
		}
	}
	if mutex.IsEmpty() {
		return nil
	}

	// semAt indexes P/V statements for the transfer function.
	semAt := make(map[ast.StmtID]semSite, len(sites))
	for _, s := range sites {
		semAt[s.stmt.ID()] = s
	}

	// Interprocedural fixpoint over per-function entry held-sets. Roots
	// (main and every spawn target) start holding nothing; a plain call
	// merges the caller's held-set at the call site into the callee's
	// entry. Monotone (union meet), so iteration to fixpoint terminates.
	mainName := c.info.Main.Name()
	entryHeld := map[string]*bitset.Set{mainName: bitset.New(nG)}
	for t := range c.p.Inter.SpawnTargets() {
		entryHeld[t] = bitset.New(nG)
	}
	work := make([]string, 0, len(entryHeld))
	for fn := range entryHeld {
		work = append(work, fn)
	}
	sort.Strings(work)
	inWork := make(map[string]bool, len(work))
	for _, fn := range work {
		inWork[fn] = true
	}

	var edges []lockEdge
	edgeSeen := make(map[[2]int]bool)
	record := false
	step := func(fn string) {
		fp := c.p.Funcs[fn]
		if fp == nil {
			return
		}
		in := heldDataflow(c, fn, entryHeld[fn], semAt, mutex)
		for _, n := range fp.CFG.Nodes {
			if n.Stmt == nil {
				continue
			}
			id := n.Stmt.ID()
			if record {
				if s, ok := semAt[id]; ok && s.stmt.Op == token.ACQUIRE && mutex.Has(s.gid) {
					held := in[n.ID]
					held.ForEach(func(h int) {
						k := [2]int{h, s.gid}
						if !edgeSeen[k] {
							edgeSeen[k] = true
							edges = append(edges, lockEdge{
								from: h, to: s.gid, pos: c.pos(s.stmt.OpPos), fn: fn,
							})
						}
					})
				}
			}
			// Propagate held-sets into plain callees.
			ud := c.p.Inter.UseDefs[fn][id]
			if ud == nil || len(ud.Calls) == 0 {
				continue
			}
			for _, callee := range ud.Calls {
				cur, ok := entryHeld[callee]
				if !ok {
					cur = bitset.New(nG)
					entryHeld[callee] = cur
				}
				if cur.UnionWith(in[n.ID]) && !record && !inWork[callee] {
					inWork[callee] = true
					work = append(work, callee)
				}
			}
		}
	}
	for len(work) > 0 {
		fn := work[0]
		work = work[1:]
		inWork[fn] = false
		before := entrySnapshot(entryHeld)
		step(fn)
		// Re-queue any function whose entry context grew.
		for f, s := range entryHeld {
			if prev, ok := before[f]; (!ok || !prev.Equal(s)) && !inWork[f] {
				inWork[f] = true
				work = append(work, f)
			}
		}
		sort.Strings(work)
	}
	// Converged: one recording pass over every reachable function.
	record = true
	fns := make([]string, 0, len(entryHeld))
	for fn := range entryHeld {
		fns = append(fns, fn)
	}
	sort.Strings(fns)
	for _, fn := range fns {
		step(fn)
	}

	return cycleDiags(c, edges)
}

func entrySnapshot(m map[string]*bitset.Set) map[string]*bitset.Set {
	out := make(map[string]*bitset.Set, len(m))
	for k, v := range m {
		out[k] = v.Clone()
	}
	return out
}

// heldDataflow computes, for one function, the set of mutex-like
// semaphores that may be held on entry to each CFG node: a forward
// may-analysis with GEN at P, KILL at V, and union meet.
func heldDataflow(c *context, fn string, entry *bitset.Set, semAt map[ast.StmtID]semSite, mutex *bitset.Set) map[cfg.NodeID]*bitset.Set {
	fp := c.p.Funcs[fn]
	nG := c.info.NumGlobals()
	in := make(map[cfg.NodeID]*bitset.Set, len(fp.CFG.Nodes))
	out := make(map[cfg.NodeID]*bitset.Set, len(fp.CFG.Nodes))
	for _, n := range fp.CFG.Nodes {
		in[n.ID] = bitset.New(nG)
		out[n.ID] = bitset.New(nG)
	}
	in[cfg.EntryNode].Copy(entry)
	out[cfg.EntryNode].Copy(entry)

	changed := true
	for changed {
		changed = false
		for _, n := range fp.CFG.Nodes {
			if n.ID != cfg.EntryNode {
				acc := bitset.New(nG)
				for _, p := range n.Preds {
					acc.UnionWith(out[p])
				}
				if !acc.Equal(in[n.ID]) {
					in[n.ID].Copy(acc)
					changed = true
				}
			}
			next := in[n.ID].Clone()
			if n.Stmt != nil {
				if s, ok := semAt[n.Stmt.ID()]; ok && mutex.Has(s.gid) {
					if s.stmt.Op == token.ACQUIRE {
						next.Add(s.gid)
					} else {
						next.Remove(s.gid)
					}
				}
			}
			if !next.Equal(out[n.ID]) {
				out[n.ID].Copy(next)
				changed = true
			}
		}
	}
	return in
}

// cycleDiags finds cycles in the lock-order graph (one diagnostic per
// strongly connected component) and renders them with the acquire
// positions along a representative cycle.
func cycleDiags(c *context, edges []lockEdge) []*Diagnostic {
	if len(edges) == 0 {
		return nil
	}
	adj := make(map[int][]lockEdge)
	nodes := map[int]bool{}
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e)
		nodes[e.from] = true
		nodes[e.to] = true
	}
	for _, es := range adj {
		sort.Slice(es, func(i, j int) bool { return es[i].to < es[j].to })
	}
	var gids []int
	for g := range nodes {
		gids = append(gids, g)
	}
	sort.Ints(gids)

	sccs := stronglyConnected(gids, adj)
	var out []*Diagnostic
	for _, scc := range sccs {
		inSCC := map[int]bool{}
		for _, g := range scc {
			inSCC[g] = true
		}
		cyclic := len(scc) > 1
		if !cyclic { // single node: cyclic only with a self-edge
			for _, e := range adj[scc[0]] {
				if e.to == scc[0] {
					cyclic = true
				}
			}
		}
		if !cyclic {
			continue
		}
		path := cyclePath(scc[0], inSCC, adj)
		if len(path) == 0 {
			continue
		}
		var names []string
		var related []Related
		for _, e := range path {
			names = append(names, c.globalName(e.from))
			related = append(related, Related{
				Pos: e.pos,
				Message: fmt.Sprintf("P(%s) while holding %s (in %s)",
					c.globalName(e.to), c.globalName(e.from), e.fn),
			})
		}
		names = append(names, c.globalName(path[len(path)-1].to))
		out = append(out, &Diagnostic{
			Code: "lock-cycle",
			Sev:  Warning,
			Pos:  path[0].pos,
			Message: fmt.Sprintf("potential deadlock: semaphore lock-order cycle %s",
				strings.Join(names, " -> ")),
			Related: related,
		})
	}
	return out
}

// stronglyConnected is a small iterative Tarjan over the lock graph,
// returning SCCs each sorted ascending, in ascending order of their
// minimum node (the graphs here have a handful of nodes).
func stronglyConnected(gids []int, adj map[int][]lockEdge) [][]int {
	index := map[int]int{}
	low := map[int]int{}
	onStack := map[int]bool{}
	var stack []int
	var sccs [][]int
	next := 0

	var strong func(v int)
	strong = func(v int) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, e := range adj[v] {
			w := e.to
			if _, seen := index[w]; !seen {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sort.Ints(scc)
			sccs = append(sccs, scc)
		}
	}
	for _, g := range gids {
		if _, seen := index[g]; !seen {
			strong(g)
		}
	}
	sort.Slice(sccs, func(i, j int) bool { return sccs[i][0] < sccs[j][0] })
	return sccs
}

// cyclePath finds one cycle through start inside its SCC via DFS,
// returning the edges in order.
func cyclePath(start int, inSCC map[int]bool, adj map[int][]lockEdge) []lockEdge {
	var path []lockEdge
	visited := map[int]bool{}
	var dfs func(v int) bool
	dfs = func(v int) bool {
		for _, e := range adj[v] {
			if !inSCC[e.to] {
				continue
			}
			if e.to == start {
				path = append(path, e)
				return true
			}
			if visited[e.to] {
				continue
			}
			visited[e.to] = true
			path = append(path, e)
			if dfs(e.to) {
				return true
			}
			path = path[:len(path)-1]
		}
		return false
	}
	if dfs(start) {
		return path
	}
	return nil
}

// pairingDiags reports unmatched or unused synchronization objects.
func pairingDiags(c *context, sems []semSite, chans []chanSite) []*Diagnostic {
	var out []*Diagnostic
	firstSem := func(gid int, op token.Kind) *ast.SemStmt {
		var best *ast.SemStmt
		for _, s := range sems {
			if s.gid == gid && s.stmt.Op == op && (best == nil || s.stmt.ID() < best.ID()) {
				best = s.stmt
			}
		}
		return best
	}
	for gid, def := range c.prog.Globals {
		name := c.globalName(gid)
		switch def.Kind {
		case bytecode.GlobalSem:
			p := firstSem(gid, token.ACQUIRE)
			v := firstSem(gid, token.RELEASE)
			switch {
			case p == nil && v == nil:
				out = append(out, &Diagnostic{
					Code: "sem-unused", Sev: Info, Pos: c.declPos(gid),
					Message: fmt.Sprintf("semaphore '%s' is declared but never used", name),
				})
			case p == nil:
				out = append(out, &Diagnostic{
					Code: "sem-never-acquired", Sev: Warning, Pos: c.pos(v.OpPos),
					Message: fmt.Sprintf("V(%s) without a matching P: semaphore '%s' is released but never acquired", name, name),
					Related: []Related{{Pos: c.declPos(gid), Message: fmt.Sprintf("'%s' declared here", name)}},
				})
			case v == nil:
				if def.Init == 0 {
					out = append(out, &Diagnostic{
						Code: "sem-never-released", Sev: Warning, Pos: c.pos(p.OpPos),
						Message: fmt.Sprintf("P(%s) blocks forever: semaphore '%s' starts at 0 and is never V'd", name, name),
						Related: []Related{{Pos: c.declPos(gid), Message: fmt.Sprintf("'%s' declared here with initial count 0", name)}},
					})
				} else {
					out = append(out, &Diagnostic{
						Code: "sem-never-released", Sev: Info, Pos: c.pos(p.OpPos),
						Message: fmt.Sprintf("semaphore '%s' is acquired but never released", name),
					})
				}
			}
		case bytecode.GlobalChan:
			var send, recv *chanSite
			for i := range chans {
				s := &chans[i]
				if s.gid != gid {
					continue
				}
				if s.send {
					if send == nil || s.pos < send.pos {
						send = s
					}
				} else if recv == nil || s.pos < recv.pos {
					recv = s
				}
			}
			switch {
			case send == nil && recv == nil:
				out = append(out, &Diagnostic{
					Code: "chan-unused", Sev: Info, Pos: c.declPos(gid),
					Message: fmt.Sprintf("channel '%s' is declared but never used", name),
				})
			case send == nil:
				out = append(out, &Diagnostic{
					Code: "chan-never-sent", Sev: Warning, Pos: c.pos(recv.pos),
					Message: fmt.Sprintf("recv(%s) blocks forever: channel '%s' is never sent to", name, name),
				})
			case recv == nil:
				out = append(out, &Diagnostic{
					Code: "chan-never-received", Sev: Info, Pos: c.pos(send.pos),
					Message: fmt.Sprintf("channel '%s' is sent to but never received from", name),
				})
			}
		}
	}
	return out
}
