package analysis

import (
	"fmt"

	"ppd/internal/ast"
	"ppd/internal/cfg"
	"ppd/internal/dataflow"
)

// uninitPass flags reads of shared scalar variables in main that no
// definition can reach: the variable has no declaration initializer, no
// other process writes it (so the missing value cannot arrive over a
// cross-process edge), and the reaching-definitions solution delivers
// only the synthetic ENTRY definition to the use.
//
// The check is deliberately narrow — main only, scalars only — because it
// is the one shape the existing dataflow answers exactly. Reads inside
// spawned processes are ordered by synchronization the static phase
// cannot see, and array elements are zero-initialized storage the paper's
// model hands out per-element.
func uninitPass(c *context) []*Diagnostic {
	mainName := c.info.Main.Name()
	fp := c.p.Funcs[mainName]
	if fp == nil {
		return nil
	}
	crossWritten := c.p.WrittenByOthers[mainName]

	var out []*Diagnostic
	seen := make(map[int]bool) // one report per variable
	for _, n := range fp.CFG.Nodes {
		if n.Stmt == nil {
			continue
		}
		ud := fp.UseDefs[n.Stmt.ID()]
		if ud == nil {
			continue
		}
		node := n.ID
		stmt := n.Stmt
		ud.Use.ForEach(func(idx int) {
			if !fp.Space.IsGlobal(idx) {
				return
			}
			gid := fp.Space.GlobalID(idx)
			if !c.p.SharedMask.Has(gid) || seen[gid] {
				return
			}
			sym := c.info.Globals[gid]
			if sym.Type.Kind == ast.TypeArray {
				return
			}
			// A statement that may also define the variable (a call whose
			// callee writes it, or x = x op ...) is not a pre-write read
			// site for this lint.
			if ud.Def.Has(idx) {
				return
			}
			if d := c.globalDecl(gid); d == nil || d.Init != nil {
				return
			}
			if crossWritten != nil && crossWritten.Has(gid) {
				return
			}
			if onlyEntryReaches(fp.Reaching.ReachingDefsOf(node, idx)) {
				seen[gid] = true
				out = append(out, &Diagnostic{
					Code: "uninit-read",
					Sev:  Warning,
					Pos:  c.pos(stmt.Pos()),
					Message: fmt.Sprintf("shared variable '%s' is read here but has no initializer and no write reaches this point",
						sym.Name),
					Related: []Related{{Pos: c.declPos(gid), Message: fmt.Sprintf("'%s' declared here", sym.Name)}},
				})
			}
		})
	}
	return out
}

// onlyEntryReaches reports whether every reaching definition is the
// synthetic ENTRY one.
func onlyEntryReaches(defs []dataflow.DefSite) bool {
	for _, d := range defs {
		if d.Node != cfg.EntryNode {
			return false
		}
	}
	return len(defs) > 0
}
