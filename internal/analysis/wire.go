package analysis

import "ppd/internal/bitset"

// The wire types flatten a ConflictMatrix into exported, codec-friendly
// slices so the progdb artifact cache can persist vet results without
// reaching into this package's unexported representation. FromWire rebuilds
// the matrix — including the detector mask, which is by construction the
// union of every pair's variable set — so a decoded matrix answers Mask /
// NumCandidates / MayConflict / String identically to the original.

// ConflictWire is the serializable shape of a ConflictMatrix.
type ConflictWire struct {
	NumGlobals int
	Classes    []ClassWire
	Pairs      []PairWire
	Guarded    []LockGuard
}

// ClassWire is one process class with its read/write sets as element lists.
type ClassWire struct {
	Entry  string
	Many   bool
	Reads  []int
	Writes []int
}

// PairWire is one conflicting class pair with its variable set.
type PairWire struct {
	A, B int
	Vars []int
}

// Wire flattens the matrix; a nil matrix yields nil.
func (m *ConflictMatrix) Wire() *ConflictWire {
	if m == nil {
		return nil
	}
	w := &ConflictWire{NumGlobals: m.NumGlobals}
	for _, cl := range m.Classes {
		w.Classes = append(w.Classes, ClassWire{
			Entry:  cl.Entry,
			Many:   cl.Many,
			Reads:  cl.Reads.Elems(),
			Writes: cl.Writes.Elems(),
		})
	}
	for _, p := range m.Pairs {
		w.Pairs = append(w.Pairs, PairWire{A: p.A, B: p.B, Vars: p.Vars.Elems()})
	}
	w.Guarded = append(w.Guarded, m.Guarded...)
	return w
}

// FromWire reconstructs a ConflictMatrix; a nil wire yields nil.
func FromWire(w *ConflictWire) *ConflictMatrix {
	if w == nil {
		return nil
	}
	m := &ConflictMatrix{
		NumGlobals: w.NumGlobals,
		mask:       bitset.New(w.NumGlobals),
	}
	for _, cl := range w.Classes {
		m.Classes = append(m.Classes, procClass{
			Entry:  cl.Entry,
			Many:   cl.Many,
			Reads:  bitset.FromSlice(w.NumGlobals, cl.Reads),
			Writes: bitset.FromSlice(w.NumGlobals, cl.Writes),
		})
	}
	for _, p := range w.Pairs {
		vars := bitset.FromSlice(w.NumGlobals, p.Vars)
		m.Pairs = append(m.Pairs, ConflictPair{A: p.A, B: p.B, Vars: vars})
		m.mask.UnionWith(vars)
	}
	m.Guarded = append(m.Guarded, w.Guarded...)
	return m
}
