// Package ast defines the abstract syntax tree for MPL.
//
// Every statement node carries a StmtID assigned by the parser in source
// order. These IDs are the stable currency of the whole debugger: the static
// program dependence graph, the program database, bytecode instructions,
// log records, traces, and dynamic-graph nodes all refer to statements by
// StmtID, which is what lets the PPD Controller relate a run-time event back
// to the program text (the paper's "statement number" in Fig 4.1).
package ast

import (
	"ppd/internal/source"
	"ppd/internal/token"
)

// StmtID identifies a statement in source order, starting at 1. 0 means
// "no statement".
type StmtID int

// NoStmt is the zero StmtID.
const NoStmt StmtID = 0

// Node is implemented by every AST node.
type Node interface {
	Pos() source.Pos
	End() source.Pos
}

// Expr is implemented by expression nodes.
type Expr interface {
	Node
	exprNode()
}

// Stmt is implemented by statement nodes.
type Stmt interface {
	Node
	ID() StmtID
	stmtNode()
}

// Decl is implemented by top-level declarations.
type Decl interface {
	Node
	declNode()
}

// ---------------------------------------------------------------- Types

// TypeKind enumerates MPL's value types.
type TypeKind int

// MPL type kinds.
const (
	TypeInvalid TypeKind = iota
	TypeInt
	TypeBool
	TypeString // print-only literals
	TypeArray  // fixed-size int array
	TypeSem    // semaphore
	TypeChan   // message channel
	TypeVoid   // function with no result
)

func (k TypeKind) String() string {
	switch k {
	case TypeInt:
		return "int"
	case TypeBool:
		return "bool"
	case TypeString:
		return "string"
	case TypeArray:
		return "int[]"
	case TypeSem:
		return "sem"
	case TypeChan:
		return "chan"
	case TypeVoid:
		return "void"
	}
	return "invalid"
}

// Type describes an MPL type. Arrays carry a fixed length.
type Type struct {
	Kind TypeKind
	Len  int // for TypeArray
}

// ---------------------------------------------------------------- Expressions

// Ident is a use of a name.
type Ident struct {
	Name    string
	NamePos source.Pos
}

// IntLit is an integer literal.
type IntLit struct {
	Value  int64
	LitPos source.Pos
	Text   string
}

// BoolLit is true or false.
type BoolLit struct {
	Value  bool
	LitPos source.Pos
}

// StringLit is a string literal (only valid as a print argument).
type StringLit struct {
	Value  string
	LitPos source.Pos
}

// UnaryExpr is -x or !x.
type UnaryExpr struct {
	Op    token.Kind
	OpPos source.Pos
	X     Expr
}

// BinaryExpr is x op y.
type BinaryExpr struct {
	Op    token.Kind
	OpPos source.Pos
	X, Y  Expr
}

// IndexExpr is a[i].
type IndexExpr struct {
	X      *Ident
	Lbrack source.Pos
	Index  Expr
	Rbrack source.Pos
}

// CallExpr is f(args) used as an expression (function call with a result).
type CallExpr struct {
	Fun    *Ident
	Lparen source.Pos
	Args   []Expr
	Rparen source.Pos
}

// RecvExpr is recv(ch): blocking receive yielding an int.
type RecvExpr struct {
	RecvPos source.Pos
	Chan    *Ident
	Rparen  source.Pos
}

// ParenExpr is (x).
type ParenExpr struct {
	Lparen source.Pos
	X      Expr
	Rparen source.Pos
}

func (e *Ident) Pos() source.Pos      { return e.NamePos }
func (e *Ident) End() source.Pos      { return e.NamePos + source.Pos(len(e.Name)) }
func (e *IntLit) Pos() source.Pos     { return e.LitPos }
func (e *IntLit) End() source.Pos     { return e.LitPos + source.Pos(len(e.Text)) }
func (e *BoolLit) Pos() source.Pos    { return e.LitPos }
func (e *BoolLit) End() source.Pos    { return e.LitPos + 4 }
func (e *StringLit) Pos() source.Pos  { return e.LitPos }
func (e *StringLit) End() source.Pos  { return e.LitPos + source.Pos(len(e.Value)+2) }
func (e *UnaryExpr) Pos() source.Pos  { return e.OpPos }
func (e *UnaryExpr) End() source.Pos  { return e.X.End() }
func (e *BinaryExpr) Pos() source.Pos { return e.X.Pos() }
func (e *BinaryExpr) End() source.Pos { return e.Y.End() }
func (e *IndexExpr) Pos() source.Pos  { return e.X.Pos() }
func (e *IndexExpr) End() source.Pos  { return e.Rbrack + 1 }
func (e *CallExpr) Pos() source.Pos   { return e.Fun.Pos() }
func (e *CallExpr) End() source.Pos   { return e.Rparen + 1 }
func (e *RecvExpr) Pos() source.Pos   { return e.RecvPos }
func (e *RecvExpr) End() source.Pos   { return e.Rparen + 1 }
func (e *ParenExpr) Pos() source.Pos  { return e.Lparen }
func (e *ParenExpr) End() source.Pos  { return e.Rparen + 1 }

func (*Ident) exprNode()      {}
func (*IntLit) exprNode()     {}
func (*BoolLit) exprNode()    {}
func (*StringLit) exprNode()  {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}
func (*IndexExpr) exprNode()  {}
func (*CallExpr) exprNode()   {}
func (*RecvExpr) exprNode()   {}
func (*ParenExpr) exprNode()  {}

// ---------------------------------------------------------------- Statements

type stmtBase struct {
	id StmtID
}

func (s *stmtBase) ID() StmtID { return s.id }

// SetID assigns the statement's ID; called once by the parser.
func (s *stmtBase) SetID(id StmtID) { s.id = id }

// VarDeclStmt declares a local variable, optionally initialized.
type VarDeclStmt struct {
	stmtBase
	VarPos source.Pos
	Name   *Ident
	Type   Type
	Init   Expr // may be nil
	EndPos source.Pos
}

// AssignStmt assigns to a scalar variable or an array element.
type AssignStmt struct {
	stmtBase
	LHS    *Ident
	Index  Expr // non-nil for array element assignment
	RHS    Expr
	EndPos source.Pos
}

// IfStmt is a two-way conditional.
type IfStmt struct {
	stmtBase
	IfPos  source.Pos
	Cond   Expr
	Then   *BlockStmt
	Else   Stmt // *BlockStmt, *IfStmt, or nil
	EndPos source.Pos
}

// WhileStmt is a pre-test loop.
type WhileStmt struct {
	stmtBase
	WhilePos source.Pos
	Cond     Expr
	Body     *BlockStmt
	EndPos   source.Pos
}

// ForStmt is for(init; cond; post) body; each clause may be nil.
type ForStmt struct {
	stmtBase
	ForPos source.Pos
	Init   Stmt // *AssignStmt or *VarDeclStmt or nil
	Cond   Expr // nil means true
	Post   Stmt // *AssignStmt or nil
	Body   *BlockStmt
	EndPos source.Pos
}

// ReturnStmt exits the enclosing function.
type ReturnStmt struct {
	stmtBase
	RetPos source.Pos
	Result Expr // may be nil
	EndPos source.Pos
}

// BreakStmt exits the innermost loop.
type BreakStmt struct {
	stmtBase
	KwPos  source.Pos
	EndPos source.Pos
}

// ContinueStmt jumps to the innermost loop's post/condition.
type ContinueStmt struct {
	stmtBase
	KwPos  source.Pos
	EndPos source.Pos
}

// SpawnStmt creates a new process running fn(args).
type SpawnStmt struct {
	stmtBase
	SpawnPos source.Pos
	Call     *CallExpr
	EndPos   source.Pos
}

// SemStmt is a semaphore operation: P(s) or V(s).
type SemStmt struct {
	stmtBase
	Op     token.Kind // token.ACQUIRE or token.RELEASE
	OpPos  source.Pos
	Sem    *Ident
	EndPos source.Pos
}

// SendStmt sends the value of Value on channel Chan, blocking until a
// receiver takes it (rendezvous-style when the channel is unbuffered).
type SendStmt struct {
	stmtBase
	SendPos source.Pos
	Chan    *Ident
	Value   Expr
	EndPos  source.Pos
}

// ExprStmt is a call evaluated for its effects: f(args);
type ExprStmt struct {
	stmtBase
	X      Expr // *CallExpr or *RecvExpr
	EndPos source.Pos
}

// PrintStmt writes its arguments to the program's output stream.
type PrintStmt struct {
	stmtBase
	PrintPos source.Pos
	Args     []Expr
	EndPos   source.Pos
}

// BlockStmt is { stmts... }. Blocks have no ID of their own (they are
// lexical grouping, not events).
type BlockStmt struct {
	stmtBase
	Lbrace source.Pos
	List   []Stmt
	Rbrace source.Pos
}

func (s *VarDeclStmt) Pos() source.Pos  { return s.VarPos }
func (s *VarDeclStmt) End() source.Pos  { return s.EndPos }
func (s *AssignStmt) Pos() source.Pos   { return s.LHS.Pos() }
func (s *AssignStmt) End() source.Pos   { return s.EndPos }
func (s *IfStmt) Pos() source.Pos       { return s.IfPos }
func (s *IfStmt) End() source.Pos       { return s.EndPos }
func (s *WhileStmt) Pos() source.Pos    { return s.WhilePos }
func (s *WhileStmt) End() source.Pos    { return s.EndPos }
func (s *ForStmt) Pos() source.Pos      { return s.ForPos }
func (s *ForStmt) End() source.Pos      { return s.EndPos }
func (s *ReturnStmt) Pos() source.Pos   { return s.RetPos }
func (s *ReturnStmt) End() source.Pos   { return s.EndPos }
func (s *BreakStmt) Pos() source.Pos    { return s.KwPos }
func (s *BreakStmt) End() source.Pos    { return s.EndPos }
func (s *ContinueStmt) Pos() source.Pos { return s.KwPos }
func (s *ContinueStmt) End() source.Pos { return s.EndPos }
func (s *SpawnStmt) Pos() source.Pos    { return s.SpawnPos }
func (s *SpawnStmt) End() source.Pos    { return s.EndPos }
func (s *SemStmt) Pos() source.Pos      { return s.OpPos }
func (s *SemStmt) End() source.Pos      { return s.EndPos }
func (s *SendStmt) Pos() source.Pos     { return s.SendPos }
func (s *SendStmt) End() source.Pos     { return s.EndPos }
func (s *ExprStmt) Pos() source.Pos     { return s.X.Pos() }
func (s *ExprStmt) End() source.Pos     { return s.EndPos }
func (s *PrintStmt) Pos() source.Pos    { return s.PrintPos }
func (s *PrintStmt) End() source.Pos    { return s.EndPos }
func (s *BlockStmt) Pos() source.Pos    { return s.Lbrace }
func (s *BlockStmt) End() source.Pos    { return s.Rbrace + 1 }

func (*VarDeclStmt) stmtNode()  {}
func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*SpawnStmt) stmtNode()    {}
func (*SemStmt) stmtNode()      {}
func (*SendStmt) stmtNode()     {}
func (*ExprStmt) stmtNode()     {}
func (*PrintStmt) stmtNode()    {}
func (*BlockStmt) stmtNode()    {}

// ---------------------------------------------------------------- Declarations

// Param is one function parameter.
type Param struct {
	Name *Ident
	Type Type
}

// FuncDecl declares a function.
type FuncDecl struct {
	FuncPos source.Pos
	Name    *Ident
	Params  []Param
	Result  Type // TypeVoid when absent
	Body    *BlockStmt
}

// GlobalDecl declares a global variable, shared variable, semaphore, or
// channel. Shared variables are the ones race detection tracks; in MPL all
// globals are visible to every process, but only `shared`-declared ones are
// intended for cross-process use (the checker warns on unsynchronized use of
// plain globals from spawned processes).
type GlobalDecl struct {
	KwPos  source.Pos
	Kw     token.Kind // VAR, SHARED, SEM, CHAN
	Name   *Ident
	Type   Type
	Init   Expr // optional initial value (VAR/SHARED) or capacity/initial count
	EndPos source.Pos
}

func (d *FuncDecl) Pos() source.Pos   { return d.FuncPos }
func (d *FuncDecl) End() source.Pos   { return d.Body.End() }
func (d *GlobalDecl) Pos() source.Pos { return d.KwPos }
func (d *GlobalDecl) End() source.Pos { return d.EndPos }

func (*FuncDecl) declNode()   {}
func (*GlobalDecl) declNode() {}

// Program is a parsed compilation unit.
type Program struct {
	File     *source.File
	Decls    []Decl
	Funcs    []*FuncDecl
	Globals  []*GlobalDecl
	NumStmts int // total number of StmtIDs assigned (max StmtID)

	stmtByID map[StmtID]Stmt
}

// Pos returns the start of the file.
func (p *Program) Pos() source.Pos { return 1 }

// End returns the end of the file.
func (p *Program) End() source.Pos { return source.Pos(len(p.File.Content) + 1) }

// RegisterStmt records a statement for ID lookup; called by the parser.
func (p *Program) RegisterStmt(s Stmt) {
	if p.stmtByID == nil {
		p.stmtByID = make(map[StmtID]Stmt)
	}
	p.stmtByID[s.ID()] = s
}

// StmtByID returns the statement with the given ID, or nil.
func (p *Program) StmtByID(id StmtID) Stmt { return p.stmtByID[id] }

// FuncByName returns the declared function with the given name, or nil.
func (p *Program) FuncByName(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name.Name == name {
			return f
		}
	}
	return nil
}
