package ast_test

import (
	"testing"

	"ppd/internal/ast"
	"ppd/internal/parser"
	"ppd/internal/source"
)

func parse(t *testing.T, src string) *ast.Program {
	t.Helper()
	errs := &source.ErrorList{}
	prog := parser.ParseString("t.mpl", src, errs)
	if errs.ErrCount() != 0 {
		t.Fatalf("parse: %v", errs.Err())
	}
	return prog
}

func TestInspectVisitsEveryNodeKind(t *testing.T) {
	prog := parse(t, `
var g = 1;
shared arr[3];
sem s;
chan c;
func f(a int, b bool) int {
	var x = a + 1;
	if (b) { x = -x; } else { x = x * 2; }
	while (x > 0) { x = x - 1; }
	for (var i = 0; i < 2; i = i + 1) { arr[i] = i; }
	var z = arr[0] + arr[1];
	P(s);
	V(s);
	send(c, x);
	var y = recv(c);
	print("y=", y);
	if (x == 0) { return y; }
	return 0;
}
func w() { }
func main() {
	spawn w();
	var r = f(1, true);
}`)
	kinds := map[string]bool{}
	ast.Inspect(prog, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.Ident:
			kinds["ident"] = true
		case *ast.IntLit:
			kinds["int"] = true
		case *ast.BoolLit:
			kinds["bool"] = true
		case *ast.StringLit:
			kinds["string"] = true
		case *ast.UnaryExpr:
			kinds["unary"] = true
		case *ast.BinaryExpr:
			kinds["binary"] = true
		case *ast.IndexExpr:
			kinds["index"] = true
		case *ast.CallExpr:
			kinds["call"] = true
		case *ast.RecvExpr:
			kinds["recv"] = true
		case *ast.VarDeclStmt:
			kinds["vardecl"] = true
		case *ast.AssignStmt:
			kinds["assign"] = true
		case *ast.IfStmt:
			kinds["if"] = true
		case *ast.WhileStmt:
			kinds["while"] = true
		case *ast.ForStmt:
			kinds["for"] = true
		case *ast.ReturnStmt:
			kinds["return"] = true
		case *ast.SpawnStmt:
			kinds["spawn"] = true
		case *ast.SemStmt:
			kinds["sem"] = true
		case *ast.SendStmt:
			kinds["send"] = true
		case *ast.PrintStmt:
			kinds["print"] = true
		case *ast.FuncDecl:
			kinds["func"] = true
		case *ast.GlobalDecl:
			kinds["global"] = true
		}
		return true
	})
	for _, want := range []string{
		"ident", "int", "bool", "string", "unary", "binary", "index", "call",
		"recv", "vardecl", "assign", "if", "while", "for", "return", "spawn",
		"sem", "send", "print", "func", "global",
	} {
		if !kinds[want] {
			t.Errorf("Inspect never visited %q", want)
		}
	}
}

func TestInspectPrune(t *testing.T) {
	prog := parse(t, `
func main() {
	if (1 < 2) {
		var inner = 1;
	}
}`)
	sawInner := false
	ast.Inspect(prog, func(n ast.Node) bool {
		if _, ok := n.(*ast.IfStmt); ok {
			return false // prune: skip children
		}
		if v, ok := n.(*ast.VarDeclStmt); ok && v.Name.Name == "inner" {
			sawInner = true
		}
		return true
	})
	if sawInner {
		t.Error("pruned subtree was visited")
	}
}

func TestStmtsExcludesBlocks(t *testing.T) {
	prog := parse(t, `
func main() {
	var a = 1;
	if (a > 0) { a = 2; a = 3; }
}`)
	stmts := ast.Stmts(prog.FuncByName("main").Body)
	if len(stmts) != 4 { // var, if, a=2, a=3
		t.Fatalf("stmts = %d, want 4", len(stmts))
	}
	for _, s := range stmts {
		if _, ok := s.(*ast.BlockStmt); ok {
			t.Error("Stmts must exclude BlockStmt wrappers")
		}
	}
}

func TestPositionsNonDecreasing(t *testing.T) {
	prog := parse(t, `
func f(a int) int { return a; }
func main() {
	var x = f(2);
	print(x);
}`)
	var last source.Pos
	for id := ast.StmtID(1); id <= ast.StmtID(prog.NumStmts); id++ {
		s := prog.StmtByID(id)
		if s == nil {
			t.Fatalf("missing stmt %d", id)
		}
		if s.Pos() < last {
			t.Errorf("stmt %d starts before its predecessor", id)
		}
		if s.End() < s.Pos() {
			t.Errorf("stmt %d has End before Pos", id)
		}
		last = s.Pos()
	}
}

func TestExprStringParenthesization(t *testing.T) {
	prog := parse(t, `func main() { var x = (1 + 2) * -3; }`)
	stmts := ast.Stmts(prog.FuncByName("main").Body)
	vd := stmts[0].(*ast.VarDeclStmt)
	if got := ast.ExprString(vd.Init); got != "(1+2)*-3" {
		t.Errorf("ExprString = %q", got)
	}
}

func TestProgramNodeInterface(t *testing.T) {
	prog := parse(t, `func main() {}`)
	if prog.Pos() != 1 || prog.End() <= prog.Pos() {
		t.Error("Program Pos/End wrong")
	}
	if prog.FuncByName("nosuch") != nil {
		t.Error("FuncByName should return nil for unknown")
	}
	if prog.StmtByID(ast.NoStmt) != nil {
		t.Error("StmtByID(NoStmt) should be nil")
	}
}

func TestEveryNodeHasSanePositions(t *testing.T) {
	prog := parse(t, `
var g = 1;
shared arr[3];
sem s;
chan c;
func f(a int, b bool) int {
	var x = a + 1;
	if (b) { x = -x; } else { x = x * 2; }
	while (x > 0) { x = x - 1; }
	for (var i = 0; i < 2; i = i + 1) { arr[i] = i; }
	var z = arr[0] + (arr[1]);
	P(s);
	V(s);
	send(c, x);
	var y = recv(c);
	print("y=", y, true);
	if (x == 0) { return y; }
	f(0, false);
	break_placeholder(x);
	return 0;
}
func break_placeholder(x int) {
	var i = 0;
	while (i < 1) {
		i = i + 1;
		if (i == 1) { continue; }
		break;
	}
	return;
}
func main() { spawn f(1, true); var r = 0; r = r; }`)
	count := 0
	ast.Inspect(prog, func(n ast.Node) bool {
		count++
		if !n.Pos().IsValid() {
			t.Errorf("%T has invalid Pos", n)
		}
		if n.End() < n.Pos() {
			t.Errorf("%T End %d < Pos %d", n, n.End(), n.Pos())
		}
		return true
	})
	if count < 50 {
		t.Errorf("inspect visited only %d nodes", count)
	}
}

func TestStmtStringAllForms(t *testing.T) {
	prog := parse(t, `
shared a[2];
func main() {
	var i = 0;
	for (i = 0; i < 2; i = i + 1) { a[i] = i; }
	while (i > 0) { i = i - 1; break; }
	if (i == 0) { } else { }
	return;
}`)
	var got []string
	for _, s := range ast.Stmts(prog.FuncByName("main").Body) {
		got = append(got, ast.StmtString(s))
	}
	want := map[string]bool{
		"var i = 0": true, "for (;i<2;)": true, "a[i]=i": true,
		"while (i>0)": true, "break": true, "if (i==0)": true, "return": true,
	}
	for _, g := range got {
		delete(want, g)
	}
	if len(want) > 0 {
		t.Errorf("StmtString never produced %v (got %v)", want, got)
	}
}
