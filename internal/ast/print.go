package ast

import (
	"fmt"
	"strings"

	"ppd/internal/token"
)

// ExprString renders an expression as MPL source text. It is used by the
// debugger when labelling dynamic-graph nodes and by golden tests.
func ExprString(e Expr) string {
	var b strings.Builder
	writeExpr(&b, e)
	return b.String()
}

func writeExpr(b *strings.Builder, e Expr) {
	switch e := e.(type) {
	case *Ident:
		b.WriteString(e.Name)
	case *IntLit:
		fmt.Fprintf(b, "%d", e.Value)
	case *BoolLit:
		fmt.Fprintf(b, "%t", e.Value)
	case *StringLit:
		fmt.Fprintf(b, "%q", e.Value)
	case *UnaryExpr:
		b.WriteString(e.Op.String())
		writeExpr(b, e.X)
	case *BinaryExpr:
		writeExpr(b, e.X)
		b.WriteString(e.Op.String())
		writeExpr(b, e.Y)
	case *IndexExpr:
		writeExpr(b, e.X)
		b.WriteByte('[')
		writeExpr(b, e.Index)
		b.WriteByte(']')
	case *CallExpr:
		b.WriteString(e.Fun.Name)
		b.WriteByte('(')
		for i, a := range e.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			writeExpr(b, a)
		}
		b.WriteByte(')')
	case *RecvExpr:
		b.WriteString("recv(")
		b.WriteString(e.Chan.Name)
		b.WriteByte(')')
	case *ParenExpr:
		b.WriteByte('(')
		writeExpr(b, e.X)
		b.WriteByte(')')
	default:
		b.WriteString("<?expr>")
	}
}

// StmtString renders a one-line summary of a statement, used for debugger
// listings ("s12: d=SubD(a,b,a+b+c)").
func StmtString(s Stmt) string {
	switch s := s.(type) {
	case *VarDeclStmt:
		if s.Init != nil {
			return fmt.Sprintf("var %s = %s", s.Name.Name, ExprString(s.Init))
		}
		return fmt.Sprintf("var %s", s.Name.Name)
	case *AssignStmt:
		if s.Index != nil {
			return fmt.Sprintf("%s[%s]=%s", s.LHS.Name, ExprString(s.Index), ExprString(s.RHS))
		}
		return fmt.Sprintf("%s=%s", s.LHS.Name, ExprString(s.RHS))
	case *IfStmt:
		return fmt.Sprintf("if (%s)", ExprString(s.Cond))
	case *WhileStmt:
		return fmt.Sprintf("while (%s)", ExprString(s.Cond))
	case *ForStmt:
		cond := ""
		if s.Cond != nil {
			cond = ExprString(s.Cond)
		}
		return fmt.Sprintf("for (;%s;)", cond)
	case *ReturnStmt:
		if s.Result != nil {
			return fmt.Sprintf("return %s", ExprString(s.Result))
		}
		return "return"
	case *BreakStmt:
		return "break"
	case *ContinueStmt:
		return "continue"
	case *SpawnStmt:
		return fmt.Sprintf("spawn %s", ExprString(s.Call))
	case *SemStmt:
		if s.Op == token.ACQUIRE {
			return fmt.Sprintf("P(%s)", s.Sem.Name)
		}
		return fmt.Sprintf("V(%s)", s.Sem.Name)
	case *SendStmt:
		return fmt.Sprintf("send(%s,%s)", s.Chan.Name, ExprString(s.Value))
	case *ExprStmt:
		return ExprString(s.X)
	case *PrintStmt:
		parts := make([]string, len(s.Args))
		for i, a := range s.Args {
			parts[i] = ExprString(a)
		}
		return "print(" + strings.Join(parts, ",") + ")"
	case *BlockStmt:
		return "{...}"
	}
	return "<?stmt>"
}
