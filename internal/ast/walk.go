package ast

// Inspect traverses the subtree rooted at node in depth-first order, calling
// f for each node. If f returns false, children of the node are skipped.
// Nil children are not visited.
func Inspect(node Node, f func(Node) bool) {
	if node == nil || !f(node) {
		return
	}
	switch n := node.(type) {
	case *Ident, *IntLit, *BoolLit, *StringLit:
		// leaves
	case *UnaryExpr:
		Inspect(n.X, f)
	case *BinaryExpr:
		Inspect(n.X, f)
		Inspect(n.Y, f)
	case *IndexExpr:
		Inspect(n.X, f)
		Inspect(n.Index, f)
	case *CallExpr:
		Inspect(n.Fun, f)
		for _, a := range n.Args {
			Inspect(a, f)
		}
	case *RecvExpr:
		Inspect(n.Chan, f)
	case *ParenExpr:
		Inspect(n.X, f)

	case *VarDeclStmt:
		Inspect(n.Name, f)
		if n.Init != nil {
			Inspect(n.Init, f)
		}
	case *AssignStmt:
		Inspect(n.LHS, f)
		if n.Index != nil {
			Inspect(n.Index, f)
		}
		Inspect(n.RHS, f)
	case *IfStmt:
		Inspect(n.Cond, f)
		Inspect(n.Then, f)
		if n.Else != nil {
			Inspect(n.Else, f)
		}
	case *WhileStmt:
		Inspect(n.Cond, f)
		Inspect(n.Body, f)
	case *ForStmt:
		if n.Init != nil {
			Inspect(n.Init, f)
		}
		if n.Cond != nil {
			Inspect(n.Cond, f)
		}
		if n.Post != nil {
			Inspect(n.Post, f)
		}
		Inspect(n.Body, f)
	case *ReturnStmt:
		if n.Result != nil {
			Inspect(n.Result, f)
		}
	case *BreakStmt, *ContinueStmt:
		// leaves
	case *SpawnStmt:
		Inspect(n.Call, f)
	case *SemStmt:
		Inspect(n.Sem, f)
	case *SendStmt:
		Inspect(n.Chan, f)
		Inspect(n.Value, f)
	case *ExprStmt:
		Inspect(n.X, f)
	case *PrintStmt:
		for _, a := range n.Args {
			Inspect(a, f)
		}
	case *BlockStmt:
		for _, s := range n.List {
			Inspect(s, f)
		}

	case *FuncDecl:
		Inspect(n.Name, f)
		for _, p := range n.Params {
			Inspect(p.Name, f)
		}
		Inspect(n.Body, f)
	case *GlobalDecl:
		Inspect(n.Name, f)
		if n.Init != nil {
			Inspect(n.Init, f)
		}
	case *Program:
		for _, d := range n.Decls {
			Inspect(d, f)
		}
	}
}

// Stmts collects, in source order, every statement in the subtree rooted at
// node (including nested blocks but excluding BlockStmt wrappers).
func Stmts(node Node) []Stmt {
	var out []Stmt
	Inspect(node, func(n Node) bool {
		if s, ok := n.(Stmt); ok {
			if _, isBlock := s.(*BlockStmt); !isBlock {
				out = append(out, s)
			}
		}
		return true
	})
	return out
}
