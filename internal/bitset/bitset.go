// Package bitset provides dense bit sets over small integer universes.
//
// The paper's conclusion singles out set representation as a practical
// concern: "using bit-mask representations for sets of variables (as opposed
// to a list structure) can have a large payoff". Set is that bit-mask
// representation; ListSet (in listset.go) is the sorted-list baseline kept
// only so the payoff can be benchmarked (experiment E9).
package bitset

import (
	"math/bits"
	"strconv"
	"strings"
)

const wordBits = 64

// Set is a dense bitset. The zero value is an empty set of capacity 0;
// use New for a set sized to a universe.
type Set struct {
	words []uint64
	n     int // universe size
}

// New returns an empty set over the universe [0, n).
func New(n int) *Set {
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// FromSlice returns a set over [0, n) containing the given elements.
func FromSlice(n int, elems []int) *Set {
	s := New(n)
	for _, e := range elems {
		s.Add(e)
	}
	return s
}

// Len returns the universe size.
func (s *Set) Len() int { return s.n }

// Add inserts i.
func (s *Set) Add(i int) { s.words[i/wordBits] |= 1 << (uint(i) % wordBits) }

// Remove deletes i.
func (s *Set) Remove(i int) { s.words[i/wordBits] &^= 1 << (uint(i) % wordBits) }

// Has reports whether i is a member.
func (s *Set) Has(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Clear empties the set in place.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Count returns the number of members.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// IsEmpty reports whether the set has no members.
func (s *Set) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// Copy overwrites s with o (universes must match).
func (s *Set) Copy(o *Set) {
	copy(s.words, o.words)
}

// UnionWith adds every member of o to s and reports whether s changed.
func (s *Set) UnionWith(o *Set) bool {
	changed := false
	for i, w := range o.words {
		nw := s.words[i] | w
		if nw != s.words[i] {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// IntersectWith removes from s every element not in o.
func (s *Set) IntersectWith(o *Set) {
	for i := range s.words {
		s.words[i] &= o.words[i]
	}
}

// DifferenceWith removes from s every element of o.
func (s *Set) DifferenceWith(o *Set) {
	for i := range s.words {
		s.words[i] &^= o.words[i]
	}
}

// Intersects reports whether s and o share any element. This is the inner
// loop of race detection (Def 6.3: conflict = non-empty intersection of
// READ/WRITE sets), so it must not allocate.
func (s *Set) Intersects(o *Set) bool {
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// Intersection returns a ∩ b and whether it is non-empty, in one pass over
// the words. Race detection's checkPair previously probed with Intersects
// and then recomputed the same AND via Clone+IntersectWith; this fuses the
// two, and allocates nothing when the intersection is empty (the common
// case on race-free executions).
func Intersection(a, b *Set) (*Set, bool) {
	n := len(a.words)
	if len(b.words) < n {
		n = len(b.words)
	}
	var out *Set
	for i := 0; i < n; i++ {
		w := a.words[i] & b.words[i]
		if w == 0 {
			continue
		}
		if out == nil {
			universe := a.n
			if b.n < universe {
				universe = b.n
			}
			out = New(universe)
		}
		out.words[i] = w
	}
	return out, out != nil
}

// Equal reports whether s and o have identical membership.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	for i := range s.words {
		if s.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// Elems returns the members in increasing order.
func (s *Set) Elems() []int {
	var out []int
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*wordBits+b)
			w &= w - 1
		}
	}
	return out
}

// AppendTo appends the members in increasing order to dst[:0] and returns
// the result, letting hot callers reuse one slice's capacity across calls
// instead of allocating per Elems call.
func (s *Set) AppendTo(dst []int) []int {
	dst = dst[:0]
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			dst = append(dst, wi*wordBits+b)
			w &= w - 1
		}
	}
	return dst
}

// ForEach calls f for each member in increasing order.
func (s *Set) ForEach(f func(int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			f(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// String renders the set as "{1,5,9}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(strconv.Itoa(i))
	})
	b.WriteByte('}')
	return b.String()
}
