package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetBasics(t *testing.T) {
	s := New(130)
	if !s.IsEmpty() {
		t.Fatal("new set not empty")
	}
	s.Add(0)
	s.Add(63)
	s.Add(64)
	s.Add(129)
	for _, i := range []int{0, 63, 64, 129} {
		if !s.Has(i) {
			t.Errorf("Has(%d) = false, want true", i)
		}
	}
	if s.Has(1) || s.Has(128) {
		t.Error("spurious membership")
	}
	if got := s.Count(); got != 4 {
		t.Errorf("Count = %d, want 4", got)
	}
	s.Remove(63)
	if s.Has(63) {
		t.Error("Remove(63) failed")
	}
	if got, want := s.String(), "{0,64,129}"; got != want {
		t.Errorf("String = %s, want %s", got, want)
	}
}

func TestSetOutOfRangeHas(t *testing.T) {
	s := New(10)
	if s.Has(-1) || s.Has(10) || s.Has(1000) {
		t.Error("out-of-range Has must be false")
	}
}

func TestSetUnionIntersectDifference(t *testing.T) {
	a := FromSlice(100, []int{1, 2, 3, 64})
	b := FromSlice(100, []int{3, 4, 64, 99})

	u := a.Clone()
	if changed := u.UnionWith(b); !changed {
		t.Error("union should report change")
	}
	if got := u.Count(); got != 6 {
		t.Errorf("union count = %d, want 6", got)
	}
	if changed := u.UnionWith(b); changed {
		t.Error("second union should not change")
	}

	i := a.Clone()
	i.IntersectWith(b)
	if got, want := i.String(), "{3,64}"; got != want {
		t.Errorf("intersect = %s, want %s", got, want)
	}

	d := a.Clone()
	d.DifferenceWith(b)
	if got, want := d.String(), "{1,2}"; got != want {
		t.Errorf("difference = %s, want %s", got, want)
	}
}

func TestSetIntersects(t *testing.T) {
	a := FromSlice(200, []int{10, 150})
	b := FromSlice(200, []int{11, 151})
	if a.Intersects(b) {
		t.Error("disjoint sets reported intersecting")
	}
	b.Add(150)
	if !a.Intersects(b) {
		t.Error("intersecting sets reported disjoint")
	}
}

func TestSetElemsAndForEach(t *testing.T) {
	want := []int{0, 5, 63, 64, 65, 127}
	s := FromSlice(128, want)
	got := s.Elems()
	if len(got) != len(want) {
		t.Fatalf("Elems = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Elems = %v, want %v", got, want)
		}
	}
	var fe []int
	s.ForEach(func(i int) { fe = append(fe, i) })
	for i := range want {
		if fe[i] != want[i] {
			t.Fatalf("ForEach = %v, want %v", fe, want)
		}
	}
}

func TestSetEqualClone(t *testing.T) {
	a := FromSlice(70, []int{1, 69})
	b := a.Clone()
	if !a.Equal(b) {
		t.Error("clone not equal")
	}
	b.Add(2)
	if a.Equal(b) {
		t.Error("mutated clone still equal")
	}
	if a.Has(2) {
		t.Error("clone shares storage with original")
	}
}

// Property: Set and ListSet agree on membership, union, and intersection
// for arbitrary inputs — the two representations must be semantically
// interchangeable for the E9 ablation to be meaningful.
func TestSetMatchesListSetProperty(t *testing.T) {
	const universe = 256
	f := func(xs, ys []uint8) bool {
		ax, ay := make([]int, len(xs)), make([]int, len(ys))
		for i, v := range xs {
			ax[i] = int(v)
		}
		for i, v := range ys {
			ay[i] = int(v)
		}
		bs1, bs2 := FromSlice(universe, ax), FromSlice(universe, ay)
		ls1, ls2 := ListFromSlice(ax), ListFromSlice(ay)

		if bs1.Intersects(bs2) != ls1.Intersects(ls2) {
			return false
		}
		if bs1.Count() != ls1.Count() {
			return false
		}
		u1 := bs1.Clone()
		u1.UnionWith(bs2)
		u2 := ls1.Clone()
		u2.UnionWith(ls2)
		if u1.Count() != u2.Count() {
			return false
		}
		for _, e := range u2.Elems() {
			if !u1.Has(e) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestListSetBasics(t *testing.T) {
	s := NewList()
	for _, v := range []int{5, 1, 5, 3} {
		s.Add(v)
	}
	if got := s.Count(); got != 3 {
		t.Errorf("Count = %d, want 3", got)
	}
	e := s.Elems()
	for i, want := range []int{1, 3, 5} {
		if e[i] != want {
			t.Fatalf("Elems = %v", e)
		}
	}
	if !s.Has(3) || s.Has(2) {
		t.Error("membership wrong")
	}
}

func BenchmarkBitsetVsListUnion(b *testing.B) {
	const universe = 512
	rng := rand.New(rand.NewSource(1))
	elems := make([]int, 64)
	for i := range elems {
		elems[i] = rng.Intn(universe)
	}
	b.Run("bitset", func(b *testing.B) {
		x := FromSlice(universe, elems[:32])
		y := FromSlice(universe, elems[32:])
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			z := x.Clone()
			z.UnionWith(y)
		}
	})
	b.Run("list", func(b *testing.B) {
		x := ListFromSlice(elems[:32])
		y := ListFromSlice(elems[32:])
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			z := x.Clone()
			z.UnionWith(y)
		}
	})
}

func BenchmarkBitsetVsListIntersects(b *testing.B) {
	const universe = 512
	rng := rand.New(rand.NewSource(2))
	mk := func(n int) ([]int, []int) {
		a := make([]int, n)
		c := make([]int, n)
		for i := range a {
			a[i] = rng.Intn(universe / 2) // low half
			c[i] = universe/2 + rng.Intn(universe/2)
		}
		return a, c
	}
	ea, eb := mk(48)
	b.Run("bitset", func(b *testing.B) {
		x := FromSlice(universe, ea)
		y := FromSlice(universe, eb)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if x.Intersects(y) {
				b.Fatal("unexpected intersection")
			}
		}
	})
	b.Run("list", func(b *testing.B) {
		x := ListFromSlice(ea)
		y := ListFromSlice(eb)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if x.Intersects(y) {
				b.Fatal("unexpected intersection")
			}
		}
	})
}

func TestIntersection(t *testing.T) {
	a := FromSlice(200, []int{1, 64, 65, 130, 199})
	b := FromSlice(200, []int{0, 64, 130, 131})
	inter, ok := Intersection(a, b)
	if !ok {
		t.Fatal("intersection reported empty")
	}
	if got := inter.Elems(); len(got) != 2 || got[0] != 64 || got[1] != 130 {
		t.Errorf("Intersection elems = %v, want [64 130]", got)
	}
	// Must agree with the two-step Clone+IntersectWith it replaces.
	ref := a.Clone()
	ref.IntersectWith(b)
	if !inter.Equal(ref) {
		t.Errorf("Intersection = %v, reference = %v", inter, ref)
	}

	// Disjoint sets: reported empty, nothing allocated.
	d := FromSlice(200, []int{2, 66, 132})
	if inter, ok := Intersection(a, d); ok || inter != nil {
		t.Errorf("disjoint Intersection = %v, %v; want nil, false", inter, ok)
	}

	// Mismatched universes take the smaller one.
	small := FromSlice(70, []int{64, 65})
	inter, ok = Intersection(a, small)
	if !ok || inter.Len() != 70 {
		t.Fatalf("mixed-universe Intersection = %v (len %d), ok=%v", inter, inter.Len(), ok)
	}
	if got := inter.Elems(); len(got) != 2 || got[0] != 64 || got[1] != 65 {
		t.Errorf("mixed-universe elems = %v, want [64 65]", got)
	}
}
