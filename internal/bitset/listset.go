package bitset

import "sort"

// ListSet is a sorted-slice set of ints: the representation the paper's §7
// warns against. It exists solely as the baseline for experiment E9
// (bit-mask vs. list structure); production code paths use Set.
type ListSet struct {
	elems []int
}

// NewList returns an empty list set.
func NewList() *ListSet { return &ListSet{} }

// ListFromSlice builds a list set from arbitrary (possibly unsorted,
// possibly duplicated) elements.
func ListFromSlice(elems []int) *ListSet {
	s := &ListSet{}
	for _, e := range elems {
		s.Add(e)
	}
	return s
}

func (s *ListSet) find(i int) (int, bool) {
	k := sort.SearchInts(s.elems, i)
	return k, k < len(s.elems) && s.elems[k] == i
}

// Add inserts i, keeping the slice sorted.
func (s *ListSet) Add(i int) {
	k, ok := s.find(i)
	if ok {
		return
	}
	s.elems = append(s.elems, 0)
	copy(s.elems[k+1:], s.elems[k:])
	s.elems[k] = i
}

// Has reports membership.
func (s *ListSet) Has(i int) bool {
	_, ok := s.find(i)
	return ok
}

// Count returns the number of members.
func (s *ListSet) Count() int { return len(s.elems) }

// Clone returns an independent copy.
func (s *ListSet) Clone() *ListSet {
	c := &ListSet{elems: make([]int, len(s.elems))}
	copy(c.elems, s.elems)
	return c
}

// UnionWith merges o into s and reports whether s changed.
func (s *ListSet) UnionWith(o *ListSet) bool {
	changed := false
	for _, e := range o.elems {
		k, ok := s.find(e)
		if !ok {
			s.elems = append(s.elems, 0)
			copy(s.elems[k+1:], s.elems[k:])
			s.elems[k] = e
			changed = true
		}
	}
	return changed
}

// Intersects reports whether s and o share an element (merge-style scan).
func (s *ListSet) Intersects(o *ListSet) bool {
	i, j := 0, 0
	for i < len(s.elems) && j < len(o.elems) {
		switch {
		case s.elems[i] == o.elems[j]:
			return true
		case s.elems[i] < o.elems[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// Elems returns the members in increasing order (shared backing array).
func (s *ListSet) Elems() []int { return s.elems }
