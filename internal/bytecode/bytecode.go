// Package bytecode defines PPD's executable representation: a stack-machine
// instruction set produced by the Compiler/Linker (§3.2.1).
//
// The same code serves as both the paper's "object code" and its "emulation
// package": instrumentation points (prelog/postlog/shared-prelog markers and
// statement tags) are compiled in once, and the VM's execution mode decides
// what each point does — write a log record (execution phase), emit a trace
// event (debugging-phase emulation), or nothing (uninstrumented runs used as
// the overhead baseline).
package bytecode

import (
	"fmt"
	"strings"

	"ppd/internal/ast"
)

// Op is an opcode.
type Op uint8

// Instruction set.
const (
	OpNop Op = iota

	// Values and variables.
	OpConst         // push A
	OpPop           // discard TOS
	OpLoadLocal     // push slots[A]
	OpStoreLocal    // slots[A] = pop
	OpLoadGlobal    // push globals[A]
	OpStoreGlobal   // globals[A] = pop
	OpLoadIndexedL  // i=pop; push slots[A].arr[i]
	OpStoreIndexedL // v=pop; i=pop; slots[A].arr[i]=v
	OpLoadIndexedG  // i=pop; push globals[A].arr[i]
	OpStoreIndexedG // v=pop; i=pop; globals[A].arr[i]=v

	// Arithmetic and logic (operate on the int64 stack; booleans are 0/1).
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpNeg
	OpNot
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe

	// Control flow. For OpJmpFalse, B==1 marks the statement's main
	// predicate (trace emits the outcome); B==0 marks internal
	// short-circuit jumps.
	OpJmp      // pc = A
	OpJmpFalse // if pop==0 pc = A
	OpJmpTrue  // if pop!=0 pc = A

	// Calls and processes.
	OpCall     // call function A with B args (popped; leftmost deepest)
	OpRet      // return void
	OpRetValue // return pop
	OpSpawn    // spawn function A with B args

	// Synchronization.
	OpSemP // P(globals[A])
	OpSemV // V(globals[A])
	OpSend // send(chan A, pop)
	OpRecv // push recv(chan A)

	// Output.
	OpPrintStr // print Strings[A]
	OpPrintVal // print pop
	OpPrintNl  // newline

	// Instrumentation markers.
	OpPrelog   // e-block A entry
	OpPostlog  // e-block A exit; B==1: return value is on TOS
	OpShPrelog // shared prelog for unit table entry A

	// NumOps bounds the opcode space (profiling histograms, dispatch
	// tables). Keep it last.
	NumOps
)

var opNames = [...]string{
	OpNop: "nop", OpConst: "const", OpPop: "pop",
	OpLoadLocal: "loadl", OpStoreLocal: "storel",
	OpLoadGlobal: "loadg", OpStoreGlobal: "storeg",
	OpLoadIndexedL: "loadxl", OpStoreIndexedL: "storexl",
	OpLoadIndexedG: "loadxg", OpStoreIndexedG: "storexg",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpMod: "mod",
	OpNeg: "neg", OpNot: "not",
	OpEq: "eq", OpNe: "ne", OpLt: "lt", OpLe: "le", OpGt: "gt", OpGe: "ge",
	OpJmp: "jmp", OpJmpFalse: "jmpf", OpJmpTrue: "jmpt",
	OpCall: "call", OpRet: "ret", OpRetValue: "retv", OpSpawn: "spawn",
	OpSemP: "semp", OpSemV: "semv", OpSend: "send", OpRecv: "recv",
	OpPrintStr: "prstr", OpPrintVal: "prval", OpPrintNl: "prnl",
	OpPrelog: "prelog", OpPostlog: "postlog", OpShPrelog: "shprelog",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Instr is one instruction. Stmt tags the source statement for logs,
// traces, and the debugger.
type Instr struct {
	Op   Op
	A, B int
	Stmt ast.StmtID
}

// UnitLog is a shared-prelog site: the shared globals (GlobalIDs) that may
// be read in the synchronization unit starting at Stmt.
type UnitLog struct {
	Stmt    ast.StmtID
	Globals []int
}

// Func is one compiled function.
type Func struct {
	Idx       int
	Name      string
	NumParams int
	NumSlots  int
	HasResult bool
	Code      []Instr
	Units     []UnitLog

	// BlockID is the function's e-block, or -1 when inlined into callers.
	BlockID int

	// ParamSlots lists the frame slots of the parameters in order.
	ParamSlots []int

	// ArraySlots maps local slots to array lengths for frame setup.
	ArraySlots map[int]int

	// PrelogAt maps an e-block ID to the PC of its OpPrelog in Code,
	// precomputed at compile time (and persisted by the artifact codec) so
	// emulation finds an interval's start PC with a map hit instead of a
	// code scan — inlined callees put prelogs at arbitrary PCs. nil when
	// the function carries no prelogs (bare compilation).
	PrelogAt map[int]int

	// Super is the superinstruction side table produced by Fuse: parallel
	// to Code, Super[pc].Op != SuperNone means the fused sequence of
	// Super[pc].W instructions starts at pc. Code itself is never
	// rewritten, so all PC-based metadata stays valid; nil when the
	// function has no fused sites (or fusion is disabled).
	Super []SuperInstr
}

// GlobalKind classifies runtime globals.
type GlobalKind uint8

// Global kinds.
const (
	GlobalVar GlobalKind = iota
	GlobalSem
	GlobalChan
)

// GlobalDef describes one global's runtime shape.
type GlobalDef struct {
	Name    string
	Kind    GlobalKind
	IsArray bool
	Len     int   // array length or channel capacity
	Init    int64 // initial value / semaphore count
	HasInit bool
	// InitFunc: when the initializer is a non-constant expression, it is
	// compiled into the program's init function and this is false.
	Shared bool // participates in race detection (vars only)
}

// BlockKind mirrors eblock.Kind without importing it (bytecode stays a leaf
// package the VM can depend on cheaply).
type BlockKind uint8

// E-block kinds as seen by the runtime.
const (
	BlockFunc BlockKind = iota
	BlockLoop
)

// BlockMeta is the runtime view of one e-block: exactly what the VM must
// snapshot at its prelog and postlog points.
type BlockMeta struct {
	ID       int
	Kind     BlockKind
	FuncIdx  int
	LoopStmt ast.StmtID // BlockLoop only

	UsedLocals     []int // frame slots to record in the prelog
	UsedGlobals    []int // GlobalIDs to record in the prelog
	DefinedLocals  []int // frame slots to record in the postlog (loops)
	DefinedGlobals []int // GlobalIDs to record in the postlog
	HasRet         bool  // function blocks with a result

	// PrelogPC is the instruction index of the block's OpPrelog; PostPC is
	// the index of its OpPostlog (loop blocks have exactly one — emulation
	// jumps past it when substituting the loop's postlog; function blocks
	// may have several and leave PostPC at -1).
	PrelogPC int
	PostPC   int
}

// Program is a complete compiled MPL program.
type Program struct {
	Funcs   []*Func
	FuncIdx map[string]int
	Globals []GlobalDef
	Strings []string
	Blocks  []*BlockMeta // indexed by e-block ID
	MainIdx int

	// WidenedSuper counts fused sites admitted only by an absint safety
	// certificate (set by FuseCert, persisted by the artifact codec so a
	// warm cache load reports the same fusion.windows.widened counter).
	WidenedSuper int
}

// PrelogPCAt returns the PC of block blockID's OpPrelog in f.Code, or -1
// when the function has no prelog for that block. Compiled programs carry
// the precomputed index; hand-built Funcs (tests) fall back to a scan.
func (f *Func) PrelogPCAt(blockID int) int {
	if f.PrelogAt != nil {
		if pc, ok := f.PrelogAt[blockID]; ok {
			return pc
		}
		return -1
	}
	for pc, in := range f.Code {
		if in.Op == OpPrelog && in.A == blockID {
			return pc
		}
	}
	return -1
}

// BuildPrelogIndex computes PrelogAt from Code (first OpPrelog per block
// ID, matching the scan's first-match semantics). The compiler calls it
// once per function at the end of code generation.
func (f *Func) BuildPrelogIndex() {
	var idx map[int]int
	for pc, in := range f.Code {
		if in.Op != OpPrelog {
			continue
		}
		if idx == nil {
			idx = make(map[int]int)
		}
		if _, ok := idx[in.A]; !ok {
			idx[in.A] = pc
		}
	}
	f.PrelogAt = idx
}

// FuncByName returns the compiled function, or nil.
func (p *Program) FuncByName(name string) *Func {
	if i, ok := p.FuncIdx[name]; ok {
		return p.Funcs[i]
	}
	return nil
}

// NumInstrs returns the total instruction count (a code-size metric).
func (p *Program) NumInstrs() int {
	n := 0
	for _, f := range p.Funcs {
		n += len(f.Code)
	}
	return n
}

// Disasm renders a function's code for tests and `ppd dump`.
func (f *Func) Disasm() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s (params=%d slots=%d block=%d):\n",
		f.Name, f.NumParams, f.NumSlots, f.BlockID)
	for pc, in := range f.Code {
		fmt.Fprintf(&b, "  %4d  %-8s", pc, in.Op)
		switch in.Op {
		case OpConst, OpLoadLocal, OpStoreLocal, OpLoadGlobal, OpStoreGlobal,
			OpLoadIndexedL, OpStoreIndexedL, OpLoadIndexedG, OpStoreIndexedG,
			OpJmp, OpSemP, OpSemV, OpSend, OpRecv, OpPrintStr,
			OpPrelog, OpShPrelog:
			fmt.Fprintf(&b, " %d", in.A)
		case OpJmpFalse, OpJmpTrue, OpCall, OpSpawn, OpPostlog:
			fmt.Fprintf(&b, " %d %d", in.A, in.B)
		}
		if in.Stmt != ast.NoStmt {
			fmt.Fprintf(&b, "\t; s%d", in.Stmt)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Disasm renders the whole program.
func (p *Program) Disasm() string {
	var b strings.Builder
	for _, g := range p.Globals {
		fmt.Fprintf(&b, "global %s kind=%d array=%t len=%d init=%d\n",
			g.Name, g.Kind, g.IsArray, g.Len, g.Init)
	}
	for _, f := range p.Funcs {
		b.WriteString(f.Disasm())
	}
	return b.String()
}
