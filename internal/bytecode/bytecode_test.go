package bytecode

import (
	"strings"
	"testing"

	"ppd/internal/ast"
)

func TestOpStrings(t *testing.T) {
	wants := map[Op]string{
		OpNop: "nop", OpConst: "const", OpPop: "pop",
		OpLoadLocal: "loadl", OpStoreGlobal: "storeg",
		OpLoadIndexedG: "loadxg", OpStoreIndexedL: "storexl",
		OpAdd: "add", OpGe: "ge", OpJmpFalse: "jmpf",
		OpCall: "call", OpSpawn: "spawn",
		OpSemP: "semp", OpSend: "send", OpRecv: "recv",
		OpPrintNl: "prnl",
		OpPrelog:  "prelog", OpPostlog: "postlog", OpShPrelog: "shprelog",
	}
	for op, want := range wants {
		if op.String() != want {
			t.Errorf("%d = %q, want %q", op, op.String(), want)
		}
	}
	if !strings.HasPrefix(Op(200).String(), "op(") {
		t.Error("unknown op should render op(N)")
	}
}

func TestProgramLookupAndMetrics(t *testing.T) {
	p := &Program{
		FuncIdx: map[string]int{"main": 0, "f": 1},
		Funcs: []*Func{
			{Idx: 0, Name: "main", Code: []Instr{{Op: OpConst, A: 1}, {Op: OpRet}}},
			{Idx: 1, Name: "f", Code: []Instr{{Op: OpRet}}},
		},
	}
	if p.FuncByName("f") != p.Funcs[1] {
		t.Error("FuncByName wrong")
	}
	if p.FuncByName("nosuch") != nil {
		t.Error("unknown func should be nil")
	}
	if p.NumInstrs() != 3 {
		t.Errorf("NumInstrs = %d, want 3", p.NumInstrs())
	}
}

func TestDisasmFormats(t *testing.T) {
	f := &Func{
		Name:      "demo",
		NumParams: 1,
		NumSlots:  2,
		BlockID:   0,
		Code: []Instr{
			{Op: OpPrelog, A: 0},
			{Op: OpConst, A: 42, Stmt: ast.StmtID(1)},
			{Op: OpStoreLocal, A: 1, Stmt: ast.StmtID(1)},
			{Op: OpJmpFalse, A: 5, B: 1, Stmt: ast.StmtID(2)},
			{Op: OpCall, A: 3, B: 2, Stmt: ast.StmtID(3)},
			{Op: OpPostlog, A: 0, B: 1},
			{Op: OpRetValue},
		},
	}
	d := f.Disasm()
	for _, want := range []string{
		"func demo (params=1 slots=2 block=0)",
		"const    42",
		"jmpf     5 1",
		"call     3 2",
		"; s3",
	} {
		if !strings.Contains(d, want) {
			t.Errorf("disasm missing %q:\n%s", want, d)
		}
	}
	p := &Program{
		Funcs:   []*Func{f},
		Globals: []GlobalDef{{Name: "g", Kind: GlobalVar, Init: 7, HasInit: true}},
	}
	pd := p.Disasm()
	if !strings.Contains(pd, "global g") || !strings.Contains(pd, "init=7") {
		t.Errorf("program disasm:\n%s", pd)
	}
}
