// Superinstruction fusion: the peephole pass of the preparatory phase.
//
// The profile-guided op-pair histogram (internal/obs.OpStats, exposed by
// `ppd stats -ops`) shows that a handful of short sequences dominate the
// interpreter's dynamic dispatch: load/binop/store triples from assignments
// like `k = k + 1`, compare-and-branch pairs from loop conditions, and
// immediate stores from initializers. Fuse recognizes those sequences and
// records a superinstruction for each match in a *side table* parallel to
// Func.Code — the original instructions are never rewritten, so jump
// targets, PC-keyed metadata (BlockMeta.PrelogPC/PostPC), breakpoints, and
// the emulation machinery all keep their meaning. The VM's table-driven
// dispatch (internal/vm) consults the side table at each pc and executes
// the whole sequence in one dispatch when the scheduling quantum and the
// instruction budget allow; otherwise it falls back to single-op dispatch,
// which keeps step counts, e-block boundaries, and ModeLog output
// byte-identical with fusion on or off.
//
// Only sequences that cannot fail are fused unconditionally: local and
// scalar-global loads, local stores, constants, the non-trapping binops,
// compares, and JmpFalse. Div and Mod are admitted in their
// constant-operand forms when the constant is non-zero (checked at fusion
// time). Beyond that, FuseCert accepts a SafetyCert — per-statement
// proofs from the abstract interpreter (internal/analysis/absint) that a
// division's divisor is nonzero or an indexed access is in bounds — which
// widens fusion to the certified div/mod and indexed-window shapes
// (SuperLLDivS…SuperIdxStoreG). Certified windows still carry the full
// single-op failure protocol as defense in depth: if a certificate is
// ever wrong, the handler reconstructs the exact single-op failure state
// (pc, step count, stack) instead of trapping, so failure reports stay
// byte-identical either way.
package bytecode

import (
	"fmt"
	"sort"
	"strings"

	"ppd/internal/ast"
)

// SuperOp identifies a superinstruction shape. The Bin field of the
// SuperInstr carries the constituent binop/compare opcode.
type SuperOp uint8

// Superinstruction shapes. Naming: L = LoadLocal, C = Const, G =
// LoadGlobal (scalar), Bin = arithmetic/compare binop, S = StoreLocal,
// CmpJf = compare + JmpFalse.
const (
	SuperNone SuperOp = iota

	SuperLLBinS      // loadl A; loadl B; bin; storel C   → slots[C] = slots[A] ∘ slots[B]
	SuperLCBinS      // loadl A; const K; bin; storel C   → slots[C] = slots[A] ∘ K
	SuperLLCmpJf     // loadl A; loadl B; cmp; jmpf T
	SuperLCCmpJf     // loadl A; const K; cmp; jmpf T
	SuperLGCmpJf     // loadl A; loadg B; cmp; jmpf T
	SuperLLBin       // loadl A; loadl B; bin             → push slots[A] ∘ slots[B]
	SuperLCBin       // loadl A; const K; bin             → push slots[A] ∘ K
	SuperLGBin       // loadl A; loadg B; bin             → push slots[A] ∘ globals[B]
	SuperLBin        // loadl A; bin                      → tos = tos ∘ slots[A]
	SuperCBin        // const K; bin                      → tos = tos ∘ K
	SuperConstStoreL // const K; storel A                 → slots[A] = K
	SuperCmpJf       // cmp; jmpf T                       → pops both operands

	// Certificate-gated shapes: emitted only when a SafetyCert proves the
	// trapping constituent (div/mod, indexed access) cannot fail.
	SuperLLDivS    // loadl A; loadl B; div|mod; storel C → slots[C] = slots[A] ∘ slots[B]
	SuperLLDiv     // loadl A; loadl B; div|mod           → push slots[A] ∘ slots[B]
	SuperLGDiv     // loadl A; loadg B; div|mod           → push slots[A] ∘ globals[B]
	SuperLDiv      // loadl A; div|mod                    → tos = tos ∘ slots[A]
	SuperIdxLoadL  // loadl B; loadxl A                   → push slots[A].arr[slots[B]]
	SuperIdxLoadG  // loadl B; loadxg A                   → push globals[A].arr[slots[B]]
	SuperIdxStoreL // loadl B; loadl C; storexl A        → slots[A].arr[slots[B]] = slots[C]
	SuperIdxStoreG // loadl B; loadl C; storexg A        → globals[A].arr[slots[B]] = slots[C]

	NumSuperOps
)

var superNames = [NumSuperOps]string{
	SuperNone:        "none",
	SuperLLBinS:      "llbins",
	SuperLCBinS:      "lcbins",
	SuperLLCmpJf:     "llcmpjf",
	SuperLCCmpJf:     "lccmpjf",
	SuperLGCmpJf:     "lgcmpjf",
	SuperLLBin:       "llbin",
	SuperLCBin:       "lcbin",
	SuperLGBin:       "lgbin",
	SuperLBin:        "lbin",
	SuperCBin:        "cbin",
	SuperConstStoreL: "conststorel",
	SuperCmpJf:       "cmpjf",
	SuperLLDivS:      "lldivs",
	SuperLLDiv:       "lldiv",
	SuperLGDiv:       "lgdiv",
	SuperLDiv:        "ldiv",
	SuperIdxLoadL:    "idxloadl",
	SuperIdxLoadG:    "idxloadg",
	SuperIdxStoreL:   "idxstorel",
	SuperIdxStoreG:   "idxstoreg",
}

// superGoNames are the exported identifiers, for generated source.
var superGoNames = [NumSuperOps]string{
	SuperNone:        "SuperNone",
	SuperLLBinS:      "SuperLLBinS",
	SuperLCBinS:      "SuperLCBinS",
	SuperLLCmpJf:     "SuperLLCmpJf",
	SuperLCCmpJf:     "SuperLCCmpJf",
	SuperLGCmpJf:     "SuperLGCmpJf",
	SuperLLBin:       "SuperLLBin",
	SuperLCBin:       "SuperLCBin",
	SuperLGBin:       "SuperLGBin",
	SuperLBin:        "SuperLBin",
	SuperCBin:        "SuperCBin",
	SuperConstStoreL: "SuperConstStoreL",
	SuperCmpJf:       "SuperCmpJf",
	SuperLLDivS:      "SuperLLDivS",
	SuperLLDiv:       "SuperLLDiv",
	SuperLGDiv:       "SuperLGDiv",
	SuperLDiv:        "SuperLDiv",
	SuperIdxLoadL:    "SuperIdxLoadL",
	SuperIdxLoadG:    "SuperIdxLoadG",
	SuperIdxStoreL:   "SuperIdxStoreL",
	SuperIdxStoreG:   "SuperIdxStoreG",
}

func (o SuperOp) String() string {
	if o < NumSuperOps {
		return superNames[o]
	}
	return fmt.Sprintf("super(%d)", int(o))
}

// SuperInstr is one fused sequence, recorded at the pc of its first
// constituent instruction. W is the number of instructions covered; the
// dispatcher advances the pc (and the step counter) by W in one go.
type SuperInstr struct {
	Op   SuperOp
	W    uint8
	Bin  Op    // constituent binop/compare
	A, B int   // slot / global operands
	C    int   // destination slot (…S shapes)
	K    int64 // constant operand (…C shapes)
	T    int   // branch target (…CmpJf shapes)
}

// FusionPattern is one enabled superinstruction shape with the dynamic
// dispatch count measured when the table was profiled (the count is
// documentation; only Op affects compilation).
type FusionPattern struct {
	Op   SuperOp
	Hits int64
}

// FusionTable is the set of superinstruction shapes the fusion pass may
// emit. The checked-in default (fusiontable_gen.go) is profile-guided:
// regenerated from the op-pair counters over the standard workloads by
// TestFusionTableFresh (PPD_UPDATE_FUSION=1).
type FusionTable struct {
	Patterns []FusionPattern
}

// DefaultFusionTable returns the checked-in profile-guided table.
func DefaultFusionTable() *FusionTable {
	return &FusionTable{Patterns: defaultFusionPatterns}
}

// AllPatterns returns a table with every candidate shape enabled — what
// the profiler compiles with, so measured hit counts do not depend on the
// previously checked-in table (the generation is a one-step fixed point).
func AllPatterns() *FusionTable {
	pats := make([]FusionPattern, 0, NumSuperOps-1)
	for op := SuperNone + 1; op < NumSuperOps; op++ {
		pats = append(pats, FusionPattern{Op: op})
	}
	return &FusionTable{Patterns: pats}
}

// Fingerprint identifies the enabled shape set for cache keys: compiled
// artifacts fused under different tables must not collide in the artifact
// cache. A nil or empty table (fusion disabled) reports "off".
func (t *FusionTable) Fingerprint() string {
	if t == nil || len(t.Patterns) == 0 {
		return "off"
	}
	en := t.enabled()
	var names []string
	for op := SuperNone + 1; op < NumSuperOps; op++ {
		if en[op] {
			names = append(names, superNames[op])
		}
	}
	if len(names) == 0 {
		return "off"
	}
	return strings.Join(names, "+")
}

func (t *FusionTable) enabled() (en [NumSuperOps]bool) {
	if t == nil {
		return en
	}
	for _, p := range t.Patterns {
		if p.Op > SuperNone && p.Op < NumSuperOps {
			en[p.Op] = true
		}
	}
	return en
}

// SafetyCert carries the abstract interpreter's per-statement proofs that
// widen fusion beyond the syntactically infallible shapes. Div[id] means
// every division/modulo in statement id has a provably nonzero divisor;
// Idx[id] means every indexed access in it is provably in bounds. The
// statement granularity is sound for fused windows because within one MPL
// statement the operand slots a window reads cannot change between the
// statement's entry (where the facts hold) and the trapping instruction:
// locals are only written by the statement's trailing store, and a
// certified global divisor is by construction never written anywhere in
// the program.
type SafetyCert struct {
	Div map[ast.StmtID]bool
	Idx map[ast.StmtID]bool
}

func (c *SafetyCert) divOK(in *Instr) bool { return c != nil && c.Div[in.Stmt] }
func (c *SafetyCert) idxOK(in *Instr) bool { return c != nil && c.Idx[in.Stmt] }

// divBin reports a trapping division opcode.
func divBin(op Op) bool { return op == OpDiv || op == OpMod }

// CertOnly reports whether the shape requires a safety certificate.
func (o SuperOp) CertOnly() bool { return o >= SuperLLDivS && o < NumSuperOps }

// Fuse populates each function's Super side table with the enabled
// superinstructions, matching greedily (longest shape first) at every pc —
// every pc gets its best match independently, so a sequence entered from
// the middle (a jump target) or resumed after a quantum boundary still
// finds whatever shorter match starts there. Returns the number of fused
// sites. A nil table clears the side tables (fusion off). Without a
// certificate only the infallible shapes match; use FuseCert to widen.
func Fuse(p *Program, t *FusionTable) int {
	total, _ := FuseCert(p, t, nil)
	return total
}

// FuseCert is Fuse with a safety certificate admitting the proven-safe
// div/mod and indexed-window shapes. It returns the total fused sites and
// how many of them exist only because of the certificate (the widening's
// reach, surfaced as the fusion.windows.widened counter); the latter is
// also recorded on the program for cache round-trips.
func FuseCert(p *Program, t *FusionTable, cert *SafetyCert) (total, widened int) {
	en := t.enabled()
	any := false
	for op := SuperNone + 1; op < NumSuperOps; op++ {
		any = any || en[op]
	}
	for _, f := range p.Funcs {
		f.Super = nil
		if !any {
			continue
		}
		for pc := range f.Code {
			s := matchAt(f.Code, pc, &en, cert)
			if s.Op == SuperNone {
				continue
			}
			if f.Super == nil {
				f.Super = make([]SuperInstr, len(f.Code))
			}
			f.Super[pc] = s
			total++
			if s.Op.CertOnly() {
				widened++
			}
		}
	}
	p.WidenedSuper = widened
	return total, widened
}

// infallibleBin reports whether op is a binop/compare that can never fail
// (everything except the trapping Div/Mod).
func infallibleBin(op Op) bool {
	switch op {
	case OpAdd, OpSub, OpMul, OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return true
	}
	return false
}

// constBin reports whether op may be fused with constant right operand k:
// Div/Mod are admitted only when k is non-zero, so the fused form cannot
// trap.
func constBin(op Op, k int64) bool {
	if infallibleBin(op) {
		return true
	}
	return (op == OpDiv || op == OpMod) && k != 0
}

func cmpOp(op Op) bool {
	switch op {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return true
	}
	return false
}

// matchAt finds the longest enabled superinstruction starting at pc. cert
// (nilable) admits the proven-safe div/mod and indexed shapes.
func matchAt(code []Instr, pc int, en *[NumSuperOps]bool, cert *SafetyCert) SuperInstr {
	n := len(code)
	in0 := &code[pc]
	switch in0.Op {
	case OpLoadLocal:
		if pc+1 >= n {
			break
		}
		in1 := &code[pc+1]
		switch in1.Op {
		case OpLoadLocal:
			if pc+2 >= n {
				break
			}
			in2 := &code[pc+2]
			bin := in2.Op
			if pc+3 < n {
				in3 := &code[pc+3]
				if en[SuperLLBinS] && infallibleBin(bin) && in3.Op == OpStoreLocal {
					return SuperInstr{Op: SuperLLBinS, W: 4, Bin: bin, A: in0.A, B: in1.A, C: in3.A}
				}
				if en[SuperLLDivS] && divBin(bin) && cert.divOK(in2) && in3.Op == OpStoreLocal {
					return SuperInstr{Op: SuperLLDivS, W: 4, Bin: bin, A: in0.A, B: in1.A, C: in3.A}
				}
				if en[SuperLLCmpJf] && cmpOp(bin) && in3.Op == OpJmpFalse {
					return SuperInstr{Op: SuperLLCmpJf, W: 4, Bin: bin, A: in0.A, B: in1.A, T: in3.A}
				}
			}
			if en[SuperLLBin] && infallibleBin(bin) {
				return SuperInstr{Op: SuperLLBin, W: 3, Bin: bin, A: in0.A, B: in1.A}
			}
			if en[SuperLLDiv] && divBin(bin) && cert.divOK(in2) {
				return SuperInstr{Op: SuperLLDiv, W: 3, Bin: bin, A: in0.A, B: in1.A}
			}
			if en[SuperIdxStoreL] && bin == OpStoreIndexedL && cert.idxOK(in2) {
				return SuperInstr{Op: SuperIdxStoreL, W: 3, A: in2.A, B: in0.A, C: in1.A}
			}
			if en[SuperIdxStoreG] && bin == OpStoreIndexedG && cert.idxOK(in2) {
				return SuperInstr{Op: SuperIdxStoreG, W: 3, A: in2.A, B: in0.A, C: in1.A}
			}
		case OpConst:
			if pc+2 >= n {
				break
			}
			k := int64(in1.A)
			bin := code[pc+2].Op
			if pc+3 < n {
				in3 := &code[pc+3]
				if en[SuperLCBinS] && constBin(bin, k) && in3.Op == OpStoreLocal {
					return SuperInstr{Op: SuperLCBinS, W: 4, Bin: bin, A: in0.A, K: k, C: in3.A}
				}
				if en[SuperLCCmpJf] && cmpOp(bin) && in3.Op == OpJmpFalse {
					return SuperInstr{Op: SuperLCCmpJf, W: 4, Bin: bin, A: in0.A, K: k, T: in3.A}
				}
			}
			if en[SuperLCBin] && constBin(bin, k) {
				return SuperInstr{Op: SuperLCBin, W: 3, Bin: bin, A: in0.A, K: k}
			}
		case OpLoadGlobal:
			if pc+2 >= n {
				break
			}
			in2 := &code[pc+2]
			bin := in2.Op
			if pc+3 < n && en[SuperLGCmpJf] && cmpOp(bin) && code[pc+3].Op == OpJmpFalse {
				return SuperInstr{Op: SuperLGCmpJf, W: 4, Bin: bin, A: in0.A, B: in1.A, T: code[pc+3].A}
			}
			if en[SuperLGBin] && infallibleBin(bin) {
				return SuperInstr{Op: SuperLGBin, W: 3, Bin: bin, A: in0.A, B: in1.A}
			}
			if en[SuperLGDiv] && divBin(bin) && cert.divOK(in2) {
				return SuperInstr{Op: SuperLGDiv, W: 3, Bin: bin, A: in0.A, B: in1.A}
			}
		case OpLoadIndexedL:
			if en[SuperIdxLoadL] && cert.idxOK(in1) {
				return SuperInstr{Op: SuperIdxLoadL, W: 2, A: in1.A, B: in0.A}
			}
		case OpLoadIndexedG:
			if en[SuperIdxLoadG] && cert.idxOK(in1) {
				return SuperInstr{Op: SuperIdxLoadG, W: 2, A: in1.A, B: in0.A}
			}
		default:
			if en[SuperLBin] && infallibleBin(in1.Op) {
				return SuperInstr{Op: SuperLBin, W: 2, Bin: in1.Op, A: in0.A}
			}
			if en[SuperLDiv] && divBin(in1.Op) && cert.divOK(in1) {
				return SuperInstr{Op: SuperLDiv, W: 2, Bin: in1.Op, A: in0.A}
			}
		}
	case OpConst:
		if pc+1 >= n {
			break
		}
		in1 := &code[pc+1]
		k := int64(in0.A)
		if en[SuperConstStoreL] && in1.Op == OpStoreLocal {
			return SuperInstr{Op: SuperConstStoreL, W: 2, A: in1.A, K: k}
		}
		if en[SuperCBin] && constBin(in1.Op, k) {
			return SuperInstr{Op: SuperCBin, W: 2, Bin: in1.Op, K: k}
		}
	default:
		if en[SuperCmpJf] && cmpOp(in0.Op) && pc+1 < n && code[pc+1].Op == OpJmpFalse {
			return SuperInstr{Op: SuperCmpJf, W: 2, Bin: in0.Op, T: code[pc+1].A}
		}
	}
	return SuperInstr{}
}

// NumSuper counts fused sites across the program (a code-size metric).
func (p *Program) NumSuper() int {
	n := 0
	for _, f := range p.Funcs {
		for i := range f.Super {
			if f.Super[i].Op != SuperNone {
				n++
			}
		}
	}
	return n
}

// FormatFusionTableSource renders fusiontable_gen.go from per-shape hit
// counts (indexed by SuperOp): shapes that fired while profiling the
// standard workloads, ordered by dynamic dispatch count. The output is
// deterministic so CI can diff the checked-in file against a regeneration.
func FormatFusionTableSource(hits []int64) string {
	type row struct {
		op   SuperOp
		hits int64
	}
	var rows []row
	for op := SuperNone + 1; op < NumSuperOps; op++ {
		if int(op) < len(hits) && hits[op] > 0 {
			rows = append(rows, row{op, hits[op]})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].hits != rows[j].hits {
			return rows[i].hits > rows[j].hits
		}
		return rows[i].op < rows[j].op
	})
	var b strings.Builder
	b.WriteString(`// Code generated by TestFusionTableFresh; DO NOT EDIT.
// Regenerate: PPD_UPDATE_FUSION=1 go test ./internal/vm -run TestFusionTableFresh

package bytecode

// defaultFusionPatterns is the profile-guided superinstruction set: every
// candidate shape that fired at least once while profiling the standard
// workloads (seeds 0 and 3) under ModeRun with all shapes enabled, ordered
// by dynamic dispatch count.
var defaultFusionPatterns = []FusionPattern{
`)
	for _, r := range rows {
		fmt.Fprintf(&b, "\t{Op: %s, Hits: %d},\n", superGoNames[r.op], r.hits)
	}
	b.WriteString("}\n")
	return b.String()
}
