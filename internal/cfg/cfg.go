// Package cfg builds statement-level control-flow graphs for MPL functions
// and computes dominators, postdominators, control dependence (per
// Ferrante/Ottenstein/Warren, which the paper's static PDG builds on), and
// natural loops (which e-block construction uses for §5.4's loop e-blocks).
//
// Each executable statement is one CFG node; synthetic ENTRY and EXIT nodes
// bracket the function, mirroring the ENTRY/EXIT nodes of the paper's
// dependence graphs (§4.2).
package cfg

import (
	"fmt"
	"strings"

	"ppd/internal/ast"
	"ppd/internal/sem"
)

// NodeID indexes a node within one function's Graph.
type NodeID int

// Synthetic node positions: Entry is always node 0, Exit node 1.
const (
	EntryNode NodeID = 0
	ExitNode  NodeID = 1
)

// Node is one CFG node.
type Node struct {
	ID    NodeID
	Stmt  ast.Stmt // nil for ENTRY/EXIT
	Succs []NodeID
	Preds []NodeID

	// IsBranch marks predicate nodes (if/while/for conditions) whose
	// outgoing edges are labelled true/false in order.
	IsBranch bool
}

// StmtID returns the AST statement ID of the node, or ast.NoStmt for
// synthetic nodes.
func (n *Node) StmtID() ast.StmtID {
	if n.Stmt == nil {
		return ast.NoStmt
	}
	return n.Stmt.ID()
}

// Graph is the CFG of one function.
type Graph struct {
	Fn    *sem.FuncInfo
	Nodes []*Node

	byStmt map[ast.StmtID]NodeID

	idom  []NodeID // immediate dominator per node; -1 for entry/unreachable
	ipdom []NodeID // immediate postdominator per node; -1 for exit/unreachable

	// CtrlDeps[y] lists the branch nodes y is control dependent on.
	CtrlDeps [][]NodeID

	// Loops lists natural loops, outermost first.
	Loops []*Loop
}

// Loop is a natural loop discovered from a back edge.
type Loop struct {
	Head NodeID
	Body []NodeID // includes Head
}

// NodeFor returns the CFG node for a statement ID, or -1.
func (g *Graph) NodeFor(id ast.StmtID) NodeID {
	if n, ok := g.byStmt[id]; ok {
		return n
	}
	return -1
}

// Entry and Exit accessors.
func (g *Graph) Entry() *Node { return g.Nodes[EntryNode] }

// Exit returns the synthetic EXIT node.
func (g *Graph) Exit() *Node { return g.Nodes[ExitNode] }

// Idom returns the immediate dominator of n (-1 for the entry node).
func (g *Graph) Idom(n NodeID) NodeID { return g.idom[n] }

// Ipdom returns the immediate postdominator of n (-1 for the exit node).
func (g *Graph) Ipdom(n NodeID) NodeID { return g.ipdom[n] }

// Dominates reports whether a dominates b.
func (g *Graph) Dominates(a, b NodeID) bool {
	for b != -1 {
		if a == b {
			return true
		}
		b = g.idom[b]
	}
	return false
}

// PostDominates reports whether a postdominates b.
func (g *Graph) PostDominates(a, b NodeID) bool {
	for b != -1 {
		if a == b {
			return true
		}
		b = g.ipdom[b]
	}
	return false
}

type builder struct {
	g *Graph

	// Loop stacks: continueTargets holds the node a continue jumps to;
	// breakTargets only tracks depth (break edges are collected per loop in
	// pendingBreaks and wired to the loop's exit frontier by the caller).
	breakTargets    []NodeID
	continueTargets []NodeID
	pendingBreaks   map[int][]NodeID
}

// Build constructs the CFG for fn and runs all analyses.
func Build(fn *sem.FuncInfo) *Graph {
	g := &Graph{Fn: fn, byStmt: make(map[ast.StmtID]NodeID)}
	b := &builder{g: g}
	b.newNode(nil, false) // entry
	b.newNode(nil, false) // exit

	ends := b.buildBlock(fn.Decl.Body, []NodeID{EntryNode})
	for _, e := range ends {
		b.edge(e, ExitNode)
	}
	// A function whose entry can't reach any statement (empty body) still
	// needs entry→exit.
	if len(g.Nodes[EntryNode].Succs) == 0 {
		b.edge(EntryNode, ExitNode)
	}

	g.computeDominators()
	g.computePostdominators()
	g.computeControlDeps()
	g.findLoops()
	return g
}

func (b *builder) newNode(s ast.Stmt, branch bool) NodeID {
	id := NodeID(len(b.g.Nodes))
	n := &Node{ID: id, Stmt: s, IsBranch: branch}
	b.g.Nodes = append(b.g.Nodes, n)
	if s != nil && s.ID() != ast.NoStmt {
		b.g.byStmt[s.ID()] = id
	}
	return id
}

func (b *builder) edge(from, to NodeID) {
	b.g.Nodes[from].Succs = append(b.g.Nodes[from].Succs, to)
	b.g.Nodes[to].Preds = append(b.g.Nodes[to].Preds, from)
}

// buildBlock threads the statements of blk after the given predecessor
// frontier and returns the new frontier (nodes whose control falls out the
// end). An empty frontier means control never reaches that point.
func (b *builder) buildBlock(blk *ast.BlockStmt, preds []NodeID) []NodeID {
	cur := preds
	for _, s := range blk.List {
		cur = b.buildStmt(s, cur)
	}
	return cur
}

func (b *builder) link(preds []NodeID, n NodeID) {
	for _, p := range preds {
		b.edge(p, n)
	}
}

func (b *builder) buildStmt(s ast.Stmt, preds []NodeID) []NodeID {
	if len(preds) == 0 {
		// Unreachable code still gets nodes so every StmtID maps somewhere,
		// but has no predecessors.
		preds = nil
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.buildBlock(s, preds)

	case *ast.IfStmt:
		n := b.newNode(s, true)
		b.link(preds, n)
		thenEnds := b.buildBlock(s.Then, []NodeID{n})
		var elseEnds []NodeID
		if s.Else != nil {
			elseEnds = b.buildStmt(s.Else, []NodeID{n})
		} else {
			elseEnds = []NodeID{n}
		}
		return append(thenEnds, elseEnds...)

	case *ast.WhileStmt:
		n := b.newNode(s, true)
		b.link(preds, n)
		b.breakTargets = append(b.breakTargets, -1) // sentinel replaced below
		b.continueTargets = append(b.continueTargets, n)
		breakIdx := len(b.breakTargets) - 1
		bodyEnds, breaks := b.buildLoopBody(s.Body, n, breakIdx)
		for _, e := range bodyEnds {
			b.edge(e, n) // back edge
		}
		b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
		b.continueTargets = b.continueTargets[:len(b.continueTargets)-1]
		return append([]NodeID{n}, breaks...)

	case *ast.ForStmt:
		cur := preds
		if s.Init != nil {
			cur = b.buildStmt(s.Init, cur)
		}
		n := b.newNode(s, true) // the for's condition node
		b.link(cur, n)
		var postNode NodeID = -1
		if s.Post != nil {
			postNode = b.newNode(s.Post, false)
			b.edge(postNode, n)
		}
		contTarget := n
		if postNode != -1 {
			contTarget = postNode
		}
		b.breakTargets = append(b.breakTargets, -1)
		b.continueTargets = append(b.continueTargets, contTarget)
		breakIdx := len(b.breakTargets) - 1
		bodyEnds, breaks := b.buildLoopBody(s.Body, n, breakIdx)
		for _, e := range bodyEnds {
			if postNode != -1 {
				b.edge(e, postNode)
			} else {
				b.edge(e, n)
			}
		}
		b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
		b.continueTargets = b.continueTargets[:len(b.continueTargets)-1]
		return append([]NodeID{n}, breaks...)

	case *ast.ReturnStmt:
		n := b.newNode(s, false)
		b.link(preds, n)
		b.edge(n, ExitNode)
		return nil

	case *ast.BreakStmt:
		n := b.newNode(s, false)
		b.link(preds, n)
		b.pendingBreaks[len(b.breakTargets)-1] = append(b.pendingBreaks[len(b.breakTargets)-1], n)
		return nil

	case *ast.ContinueStmt:
		n := b.newNode(s, false)
		b.link(preds, n)
		b.edge(n, b.continueTargets[len(b.continueTargets)-1])
		return nil

	default:
		n := b.newNode(s, false)
		b.link(preds, n)
		return []NodeID{n}
	}
}

func (b *builder) buildLoopBody(body *ast.BlockStmt, head NodeID, breakIdx int) (bodyEnds, breaks []NodeID) {
	if b.pendingBreaks == nil {
		b.pendingBreaks = make(map[int][]NodeID)
	}
	b.pendingBreaks[breakIdx] = nil
	bodyEnds = b.buildBlock(body, []NodeID{head})
	breaks = b.pendingBreaks[breakIdx]
	delete(b.pendingBreaks, breakIdx)
	return bodyEnds, breaks
}

// ------------------------------------------------------------- dominators

// computeDominators runs the iterative dataflow algorithm (Cooper/Harvey/
// Kennedy style, on reverse postorder).
func (g *Graph) computeDominators() {
	g.idom = computeIdom(len(g.Nodes), int(EntryNode),
		func(n int) []NodeID { return g.Nodes[n].Preds },
		func(n int) []NodeID { return g.Nodes[n].Succs })
}

func (g *Graph) computePostdominators() {
	g.ipdom = computeIdom(len(g.Nodes), int(ExitNode),
		func(n int) []NodeID { return g.Nodes[n].Succs },
		func(n int) []NodeID { return g.Nodes[n].Preds })
}

// computeIdom computes immediate dominators of a graph presented by its
// pred/succ accessors, rooted at root. Unreachable nodes get -1.
func computeIdom(n, root int, preds, succs func(int) []NodeID) []NodeID {
	// Reverse postorder from root following succs.
	order := make([]int, 0, n)
	visited := make([]bool, n)
	var dfs func(int)
	dfs = func(u int) {
		visited[u] = true
		for _, v := range succs(u) {
			if !visited[v] {
				dfs(int(v))
			}
		}
		order = append(order, u)
	}
	dfs(root)
	// order is postorder; reverse for RPO.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	rpoNum := make([]int, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, u := range order {
		rpoNum[u] = i
	}

	idom := make([]NodeID, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[root] = NodeID(root)

	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = int(idom[a])
			}
			for rpoNum[b] > rpoNum[a] {
				b = int(idom[b])
			}
		}
		return a
	}

	changed := true
	for changed {
		changed = false
		for _, u := range order {
			if u == root {
				continue
			}
			newIdom := -1
			for _, p := range preds(u) {
				if idom[p] == -1 {
					continue // predecessor not yet processed or unreachable
				}
				if newIdom == -1 {
					newIdom = int(p)
				} else {
					newIdom = intersect(newIdom, int(p))
				}
			}
			if newIdom != -1 && idom[u] != NodeID(newIdom) {
				idom[u] = NodeID(newIdom)
				changed = true
			}
		}
	}
	idom[root] = -1 // root has no immediate dominator
	return idom
}

// computeControlDeps computes, for every node, the set of branch nodes it is
// control dependent on (FOW algorithm over the postdominator tree).
func (g *Graph) computeControlDeps() {
	g.CtrlDeps = make([][]NodeID, len(g.Nodes))
	seen := make(map[[2]NodeID]bool)
	for _, x := range g.Nodes {
		if len(x.Succs) < 2 {
			continue
		}
		for _, y := range x.Succs {
			// Walk up the postdominator tree from y to ipdom(x), exclusive.
			stop := g.ipdom[x.ID]
			cur := y
			for cur != -1 && cur != stop {
				key := [2]NodeID{cur, x.ID}
				if !seen[key] {
					seen[key] = true
					g.CtrlDeps[cur] = append(g.CtrlDeps[cur], x.ID)
				}
				cur = g.ipdom[cur]
			}
		}
	}
}

// ------------------------------------------------------------- loops

// findLoops locates natural loops via back edges (u→h where h dominates u).
func (g *Graph) findLoops() {
	for _, u := range g.Nodes {
		for _, h := range u.Succs {
			if !g.Dominates(h, u.ID) {
				continue
			}
			// Natural loop of back edge u→h.
			inLoop := map[NodeID]bool{h: true}
			stack := []NodeID{}
			if !inLoop[u.ID] {
				inLoop[u.ID] = true
				stack = append(stack, u.ID)
			}
			for len(stack) > 0 {
				v := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, p := range g.Nodes[v].Preds {
					if !inLoop[p] {
						inLoop[p] = true
						stack = append(stack, p)
					}
				}
			}
			body := make([]NodeID, 0, len(inLoop))
			for v := range inLoop {
				body = append(body, v)
			}
			g.Loops = append(g.Loops, &Loop{Head: h, Body: body})
		}
	}
}

// String renders the CFG for debugging and golden tests.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cfg %s:\n", g.Fn.Name())
	for _, n := range g.Nodes {
		label := "ENTRY"
		switch {
		case n.ID == ExitNode:
			label = "EXIT"
		case n.Stmt != nil:
			label = fmt.Sprintf("s%d %s", n.Stmt.ID(), ast.StmtString(n.Stmt))
		}
		fmt.Fprintf(&b, "  n%d [%s] ->", n.ID, label)
		for _, s := range n.Succs {
			fmt.Fprintf(&b, " n%d", s)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
