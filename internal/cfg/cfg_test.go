package cfg

import (
	"testing"

	"ppd/internal/ast"
	"ppd/internal/parser"
	"ppd/internal/sem"
	"ppd/internal/source"
)

func buildFor(t *testing.T, src, fn string) (*Graph, *sem.Info) {
	t.Helper()
	errs := &source.ErrorList{}
	prog := parser.ParseString("test.mpl", src, errs)
	info := sem.Check(prog, errs)
	if errs.ErrCount() != 0 {
		t.Fatalf("front-end errors:\n%v", errs.Err())
	}
	fi, ok := info.Funcs[fn]
	if !ok {
		t.Fatalf("no function %q", fn)
	}
	return Build(fi), info
}

// stmtNode finds the CFG node whose statement renders as the given summary.
func stmtNode(t *testing.T, g *Graph, summary string) *Node {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Stmt != nil && ast.StmtString(n.Stmt) == summary {
			return n
		}
	}
	t.Fatalf("no node %q in:\n%s", summary, g.String())
	return nil
}

func TestStraightLine(t *testing.T) {
	g, _ := buildFor(t, `func main() { var a = 1; var b = 2; var c = a+b; }`, "main")
	// entry -> a -> b -> c -> exit
	if len(g.Nodes) != 5 {
		t.Fatalf("nodes = %d, want 5\n%s", len(g.Nodes), g.String())
	}
	n := g.Entry()
	order := []string{"var a = 1", "var b = 2", "var c = a+b"}
	for _, want := range order {
		if len(n.Succs) != 1 {
			t.Fatalf("node %d succs = %v", n.ID, n.Succs)
		}
		n = g.Nodes[n.Succs[0]]
		if got := ast.StmtString(n.Stmt); got != want {
			t.Fatalf("got %q, want %q", got, want)
		}
	}
	if n.Succs[0] != ExitNode {
		t.Error("last stmt does not reach exit")
	}
}

func TestIfElseDiamond(t *testing.T) {
	g, _ := buildFor(t, `
func main() {
	var a = 1;
	if (a > 0) { a = 2; } else { a = 3; }
	a = 4;
}`, "main")
	cond := stmtNode(t, g, "if (a>0)")
	if !cond.IsBranch || len(cond.Succs) != 2 {
		t.Fatalf("cond not a 2-way branch: %+v", cond)
	}
	join := stmtNode(t, g, "a=4")
	if len(join.Preds) != 2 {
		t.Errorf("join preds = %v, want 2", join.Preds)
	}
	// Both arms control dependent on cond; join is not.
	a2 := stmtNode(t, g, "a=2")
	a3 := stmtNode(t, g, "a=3")
	depOn := func(n *Node, on NodeID) bool {
		for _, d := range g.CtrlDeps[n.ID] {
			if d == on {
				return true
			}
		}
		return false
	}
	if !depOn(a2, cond.ID) || !depOn(a3, cond.ID) {
		t.Error("branch arms not control dependent on condition")
	}
	if depOn(join, cond.ID) {
		t.Error("join spuriously control dependent on condition")
	}
}

func TestWhileLoop(t *testing.T) {
	g, _ := buildFor(t, `
func main() {
	var i = 0;
	while (i < 10) { i = i + 1; }
	print(i);
}`, "main")
	cond := stmtNode(t, g, "while (i<10)")
	body := stmtNode(t, g, "i=i+1")
	// Back edge body -> cond.
	found := false
	for _, s := range body.Succs {
		if s == cond.ID {
			found = true
		}
	}
	if !found {
		t.Error("missing back edge")
	}
	if len(g.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(g.Loops))
	}
	if g.Loops[0].Head != cond.ID {
		t.Errorf("loop head = %d, want %d", g.Loops[0].Head, cond.ID)
	}
	// Loop condition is control dependent on itself (it runs again only if
	// it took the true edge).
	self := false
	for _, d := range g.CtrlDeps[cond.ID] {
		if d == cond.ID {
			self = true
		}
	}
	if !self {
		t.Error("while condition not control dependent on itself")
	}
}

func TestForLoopWithPost(t *testing.T) {
	g, _ := buildFor(t, `
func main() {
	var s = 0;
	for (var i = 0; i < 4; i = i + 1) { s = s + i; }
	print(s);
}`, "main")
	cond := stmtNode(t, g, "for (;i<4;)")
	post := stmtNode(t, g, "i=i+1")
	body := stmtNode(t, g, "s=s+i")
	// body -> post -> cond
	if body.Succs[0] != post.ID {
		t.Errorf("body succ = %v, want post %d", body.Succs, post.ID)
	}
	if post.Succs[0] != cond.ID {
		t.Errorf("post succ = %v, want cond %d", post.Succs, cond.ID)
	}
	if len(g.Loops) != 1 {
		t.Errorf("loops = %d, want 1", len(g.Loops))
	}
}

func TestBreakContinue(t *testing.T) {
	g, _ := buildFor(t, `
func main() {
	var i = 0;
	while (i < 10) {
		i = i + 1;
		if (i == 3) { continue; }
		if (i == 7) { break; }
		print(i);
	}
	print(99);
}`, "main")
	cond := stmtNode(t, g, "while (i<10)")
	cont := stmtNode(t, g, "continue")
	brk := stmtNode(t, g, "break")
	after := stmtNode(t, g, "print(99)")
	if cont.Succs[0] != cond.ID {
		t.Errorf("continue goes to %v, want loop head %d", cont.Succs, cond.ID)
	}
	if brk.Succs[0] != after.ID {
		t.Errorf("break goes to %v, want after-loop %d", brk.Succs, after.ID)
	}
}

func TestReturnEdges(t *testing.T) {
	g, _ := buildFor(t, `
func f(a int) int {
	if (a > 0) { return 1; }
	return 0;
}
func main() { var x = f(1); }`, "f")
	r1 := stmtNode(t, g, "return 1")
	r0 := stmtNode(t, g, "return 0")
	if r1.Succs[0] != ExitNode || r0.Succs[0] != ExitNode {
		t.Error("returns must edge to EXIT")
	}
	// r0 is NOT control dependent on the if: it executes either way... no -
	// actually r0 only executes if the condition was false, so it IS control
	// dependent in a CFG where return 1 leaves the function.
	dep := false
	cond := stmtNode(t, g, "if (a>0)")
	for _, d := range g.CtrlDeps[r0.ID] {
		if d == cond.ID {
			dep = true
		}
	}
	if !dep {
		t.Error("return 0 should be control dependent on the early-return condition")
	}
}

func TestDominators(t *testing.T) {
	g, _ := buildFor(t, `
func main() {
	var a = 1;
	if (a > 0) { a = 2; } else { a = 3; }
	a = 4;
}`, "main")
	cond := stmtNode(t, g, "if (a>0)")
	a2 := stmtNode(t, g, "a=2")
	join := stmtNode(t, g, "a=4")
	if !g.Dominates(cond.ID, a2.ID) {
		t.Error("cond should dominate then-arm")
	}
	if !g.Dominates(cond.ID, join.ID) {
		t.Error("cond should dominate join")
	}
	if g.Dominates(a2.ID, join.ID) {
		t.Error("then-arm must not dominate join")
	}
	if !g.PostDominates(join.ID, cond.ID) {
		t.Error("join should postdominate cond")
	}
	if g.PostDominates(a2.ID, cond.ID) {
		t.Error("then-arm must not postdominate cond")
	}
}

func TestEmptyFunction(t *testing.T) {
	g, _ := buildFor(t, `func f() {}
func main() { f(); }`, "f")
	if len(g.Entry().Succs) != 1 || g.Entry().Succs[0] != ExitNode {
		t.Errorf("empty fn: entry succs = %v, want [exit]", g.Entry().Succs)
	}
}

func TestInfiniteLoopStillHasExitPath(t *testing.T) {
	// for(;;) with a break is the only exit.
	g, _ := buildFor(t, `
func main() {
	var i = 0;
	for (;;) {
		i = i + 1;
		if (i > 3) { break; }
	}
	print(i);
}`, "main")
	after := stmtNode(t, g, "print(i)")
	if len(after.Preds) == 0 {
		t.Error("after-loop unreachable; break edge missing")
	}
}

func TestNestedLoops(t *testing.T) {
	g, _ := buildFor(t, `
func main() {
	var s = 0;
	var i = 0;
	while (i < 3) {
		var j = 0;
		while (j < 3) {
			s = s + 1;
			j = j + 1;
		}
		i = i + 1;
	}
}`, "main")
	if len(g.Loops) != 2 {
		t.Fatalf("loops = %d, want 2\n%s", len(g.Loops), g.String())
	}
	// Inner loop body ⊂ outer loop body.
	sizes := []int{len(g.Loops[0].Body), len(g.Loops[1].Body)}
	if sizes[0] == sizes[1] {
		t.Errorf("expected nested loops of different size, got %v", sizes)
	}
}

func TestEveryStmtHasNode(t *testing.T) {
	src := `
func work(n int) int {
	var s = 0;
	for (var i = 0; i < n; i = i + 1) {
		if (i % 2 == 0) { s = s + i; } else { s = s - 1; }
	}
	return s;
}
func main() { var r = work(5); print(r); }`
	g, info := buildFor(t, src, "work")
	for _, s := range ast.Stmts(info.Funcs["work"].Decl.Body) {
		if g.NodeFor(s.ID()) < 0 {
			t.Errorf("stmt s%d %q has no CFG node", s.ID(), ast.StmtString(s))
		}
	}
}
