// Package compile is PPD's Compiler/Linker (§3.2.1): it runs the full
// front-end and static-analysis pipeline, then lowers MPL to instrumented
// bytecode. Its Artifacts bundle is exactly the preparatory phase's output:
// the object code / emulation package (one code body, mode-switched), the
// static program dependence graph, and the program database.
package compile

import (
	"sync"

	"ppd/internal/analysis"
	"ppd/internal/analysis/absint"
	"ppd/internal/ast"
	"ppd/internal/bytecode"
	"ppd/internal/eblock"
	"ppd/internal/interproc"
	"ppd/internal/obs"
	"ppd/internal/parser"
	"ppd/internal/pdg"
	"ppd/internal/progdb"
	"ppd/internal/sched"
	"ppd/internal/sem"
	"ppd/internal/source"
	"ppd/internal/token"
)

// Artifacts is everything the preparatory phase produces. An artifact
// loaded from the persistent cache starts shallow — File, Prog, and the
// persisted vet result only; Info/PDG/Plan/DB are nil until Hydrate —
// because the execution phase needs nothing but the bytecode, and the
// semantic layers are cheap to rebuild on the first debugging-phase query.
type Artifacts struct {
	File *source.File
	Prog *bytecode.Program
	Info *sem.Info
	PDG  *pdg.Program
	Plan *eblock.Plan
	DB   *progdb.DB

	// Facts is the abstract-interpretation result (analysis/absint),
	// computed once per pipeline run and shared by the fusion pass (safety
	// certificates) and the vet passes. Nil on cache-loaded artifacts until
	// Hydrate rebuilds the semantic layers.
	Facts *absint.Facts

	cfg    eblock.Config    // for Hydrate
	preVet *analysis.Result // vet result restored from the cache

	hydrateOnce sync.Once
	hydrateErr  error
}

// Hydrate ensures the semantic layers (Info, PDG, Plan, DB) are present,
// rebuilding them from source for cache-loaded artifacts. It is a no-op on
// artifacts from a full compile. The rebuild runs the front-end passes
// only — codegen is skipped since Prog came from the cache — and seeds the
// database's vet slot with the persisted result so no analysis pass reruns.
func (a *Artifacts) Hydrate() error {
	a.hydrateOnce.Do(func() {
		if a.DB != nil {
			return
		}
		full, err := compilePipeline(a.File, a.cfg, pipelineOpts{
			crossWriteFilter: true,
			pool:             poolFor(0, nil),
			skipCodegen:      true,
		})
		if err != nil {
			a.hydrateErr = err
			return
		}
		a.Info, a.PDG, a.Plan, a.DB, a.Facts = full.Info, full.PDG, full.Plan, full.DB, full.Facts
		if a.preVet != nil {
			pre := a.preVet
			a.DB.EnsureVet(func() *analysis.Result { return pre })
		}
	})
	return a.hydrateErr
}

// Hydrated reports whether the semantic layers are available.
func (a *Artifacts) Hydrated() bool { return a.DB != nil }

// Compile runs parse → check → static analysis → e-block planning →
// code generation. On front-end errors it returns the error list's error.
// The per-function passes fan out across the shared worker pool; the
// output is byte-identical to CompileSequential.
func Compile(file *source.File, cfg eblock.Config) (*Artifacts, error) {
	return CompileWithObs(file, cfg, nil)
}

// CompileWithObs is Compile reporting preparatory-phase metrics to sink:
// one "compile.<pass>" scope per pipeline pass and the artifact-size
// counters (functions, globals, instructions, PDG units and data
// dependences, e-blocks, shared-prelog sites). A nil sink disables
// observation.
func CompileWithObs(file *source.File, cfg eblock.Config, sink *obs.Sink) (*Artifacts, error) {
	return compilePipeline(file, cfg, pipelineOpts{crossWriteFilter: true, sink: sink, pool: poolFor(0, sink)})
}

// CompileSequential runs the identical pipeline with every pass on the
// calling goroutine — the byte-identity baseline for the parallel pipeline
// and the `cold sequential` bar of E17.
func CompileSequential(file *source.File, cfg eblock.Config) (*Artifacts, error) {
	return compilePipeline(file, cfg, pipelineOpts{crossWriteFilter: true})
}

// CompileWorkers is Compile with an explicit per-function fan-out width:
// workers == 1 compiles sequentially, workers <= 0 uses the shared
// GOMAXPROCS pool, anything else gets a dedicated pool of that size.
func CompileWorkers(file *source.File, cfg eblock.Config, workers int, sink *obs.Sink) (*Artifacts, error) {
	return compilePipeline(file, cfg, pipelineOpts{crossWriteFilter: true, sink: sink, pool: poolFor(workers, sink)})
}

// poolFor maps a workers knob to a sched pool: 1 means sequential (nil
// pool), <= 0 the shared GOMAXPROCS pool (or an observed pool of the same
// width when a sink wants sched.* metrics), else a dedicated pool.
func poolFor(workers int, sink *obs.Sink) *sched.Pool {
	switch {
	case workers == 1:
		return nil
	case workers <= 0 && sink == nil:
		return sched.Shared()
	default:
		return sched.NewObs(workers, sink)
	}
}

// CompileSource is a convenience wrapper over Compile for tests and tools.
func CompileSource(name, src string, cfg eblock.Config) (*Artifacts, error) {
	return Compile(source.NewFile(name, src), cfg)
}

// CompileFused compiles with an explicit superinstruction fusion table. A
// nil table disables the fusion pass entirely — the unfused baseline of
// the dispatch experiments; every other entry point fuses with
// bytecode.DefaultFusionTable.
func CompileFused(file *source.File, cfg eblock.Config, tab *bytecode.FusionTable) (*Artifacts, error) {
	return compilePipeline(file, cfg, pipelineOpts{
		crossWriteFilter: true,
		pool:             poolFor(0, nil),
		fusion:           tab,
		noFusion:         tab == nil,
	})
}

// CompileFusedSource is the string-input variant of CompileFused.
func CompileFusedSource(name, src string, cfg eblock.Config, tab *bytecode.FusionTable) (*Artifacts, error) {
	return CompileFused(source.NewFile(name, src), cfg, tab)
}

// Vet runs the static-analysis passes over the compiled program and
// persists the result in the program database: repeated calls (from the
// CLI, the controller's detector pruning, or the public API) share one
// computation. sink receives the per-pass "analysis.<pass>" scopes on the
// run that actually computes.
func (a *Artifacts) Vet(sink *obs.Sink) *analysis.Result {
	if a.preVet != nil {
		// Cache-loaded artifacts carry the persisted result; no pass reruns
		// even before hydration.
		return a.preVet
	}
	return a.DB.EnsureVet(func() *analysis.Result {
		return analysis.AnalyzeWithFacts(a.PDG, a.Prog, sink, a.Facts)
	})
}

// CompileCached is CompileWorkers backed by a persistent artifact cache in
// cacheDir (no caching when empty). The key is a content hash over the
// source bytes, the e-block config, and the codec version, so any change
// to either input or format misses cleanly. On a hit the whole pipeline is
// skipped and a shallow artifact (bytecode + persisted vet) is returned —
// call Hydrate before debugging-phase queries. On a miss the program is
// compiled, vetted, and stored. sink receives compile.cache.{hits,misses,
// bytes} counters alongside the usual pipeline metrics.
func CompileCached(file *source.File, cfg eblock.Config, cacheDir string, workers int, sink *obs.Sink) (*Artifacts, error) {
	return CompileCachedFused(file, cfg, cacheDir, workers, bytecode.DefaultFusionTable(), sink)
}

// CompileCachedFused is CompileCached with an explicit fusion table (nil
// disables fusion). The table's fingerprint is part of the cache key, so
// artifacts fused under different tables — or not fused at all — never
// collide: changing the checked-in table turns stale entries into clean
// misses.
func CompileCachedFused(file *source.File, cfg eblock.Config, cacheDir string, workers int, tab *bytecode.FusionTable, sink *obs.Sink) (*Artifacts, error) {
	po := pipelineOpts{
		crossWriteFilter: true,
		sink:             sink,
		pool:             poolFor(workers, sink),
		fusion:           tab,
		noFusion:         tab == nil,
	}
	if cacheDir == "" {
		return compilePipeline(file, cfg, po)
	}
	cache := &progdb.Cache{Dir: cacheDir}
	key := progdb.CacheKey(file.Name, file.Content, cfg, tab.Fingerprint(), absint.Fingerprint)
	if cp, size, err := cache.Load(key); err == nil && cp != nil {
		if sink != nil {
			sink.Counter("compile.cache.hits").Add(1)
			sink.Counter("compile.cache.bytes").Add(int64(size))
		}
		return &Artifacts{File: file, Prog: cp.Prog, cfg: cfg, preVet: cp.Vet}, nil
	}
	art, err := compilePipeline(file, cfg, po)
	if err != nil {
		return nil, err
	}
	// Vet eagerly so the cached entry always carries the analysis result:
	// a warm run must answer vet queries without rerunning any pass.
	vet := art.Vet(sink)
	size, err := cache.Store(key, &progdb.CachedProgram{
		SourceName: file.Name,
		Source:     file.Content,
		Config:     cfg,
		Prog:       art.Prog,
		Vet:        vet,
	})
	if err != nil {
		return nil, err
	}
	if sink != nil {
		sink.Counter("compile.cache.misses").Add(1)
		sink.Counter("compile.cache.bytes").Add(int64(size))
	}
	return art, nil
}

// CompileUnfiltered compiles with the literal-§5.5 shared prelogs (no
// cross-write filtering) — the baseline of the shared-prelog ablation.
func CompileUnfiltered(file *source.File, cfg eblock.Config) (*Artifacts, error) {
	return compilePipeline(file, cfg, pipelineOpts{pool: poolFor(0, nil)})
}

// CompileBare compiles without any instrumentation markers: no prelog,
// postlog, or shared-prelog instructions are emitted. This is the paper's
// true uninstrumented baseline for the §7 overhead measurement (E1) —
// comparing against ModeRun over instrumented code would hide the marker
// dispatch cost.
func CompileBare(file *source.File) (*Artifacts, error) {
	return compilePipeline(file, eblock.Config{}, pipelineOpts{crossWriteFilter: true, noInstr: true, pool: poolFor(0, nil)})
}

// pipelineOpts selects the pipeline variant; the passes themselves are
// identical across Compile / CompileUnfiltered / CompileBare.
type pipelineOpts struct {
	crossWriteFilter bool
	noInstr          bool
	skipCodegen      bool // Hydrate: bytecode already loaded from the cache
	sink             *obs.Sink
	pool             *sched.Pool // nil: run every pass sequentially

	// fusion selects the superinstruction table for the peephole pass that
	// runs after codegen; nil means bytecode.DefaultFusionTable() unless
	// noFusion is set (CompileFused with an explicit nil disables fusion —
	// the unfused baseline of the dispatch experiments).
	fusion   *bytecode.FusionTable
	noFusion bool
}

// compilePipeline is the preparatory phase's pass DAG. The global stages —
// parsing, checking, the interprocedural MOD/REF fixpoint, e-block
// numbering — run sequentially in dependency order; the per-function
// stages (direct dataflow inside interproc, PDG construction, database
// indexing, code generation) fan out across po.pool with deterministic
// index-order merges, so the artifacts are byte-identical to a nil-pool
// run.
func compilePipeline(file *source.File, cfg eblock.Config, po pipelineOpts) (*Artifacts, error) {
	total := po.sink.Scope("compile.total")
	defer total.End()

	pass := func(name string) obs.Scope { return po.sink.Scope("compile." + name) }

	sc := pass("parse")
	errs := &source.ErrorList{}
	prog := parser.Parse(file, errs)
	sc.End()

	sc = pass("check")
	info := sem.Check(prog, errs)
	sc.End()
	if err := errs.Err(); err != nil {
		return nil, err
	}

	sc = pass("interproc")
	inter := interproc.AnalyzeWith(info, po.pool)
	sc.End()

	sc = pass("pdg")
	p := pdg.BuildFromInter(inter, po.crossWriteFilter, po.pool)
	sc.End()

	sc = pass("eblock")
	plan := eblock.Build(p, cfg)
	sc.End()

	sc = pass("progdb")
	db := progdb.BuildWith(p, plan, po.pool)
	sc.End()

	// Abstract interpretation over the finished PDG: the value-range and
	// lockset facts feed both the fusion pass below (safety certificates
	// for trapping constituents) and the vet passes (Artifacts.Vet).
	sc = pass("absint")
	facts := absint.Analyze(p)
	sc.End()

	if po.skipCodegen {
		return &Artifacts{File: file, Info: info, PDG: p, Plan: plan, DB: db, Facts: facts, cfg: cfg}, nil
	}

	sc = pass("codegen")
	c := &compiler{
		info:    info,
		pdg:     p,
		plan:    plan,
		noInstr: po.noInstr,
		out: &bytecode.Program{
			FuncIdx: make(map[string]int),
			MainIdx: -1,
		},
	}
	err := c.run(po.pool)
	sc.End()
	if err != nil {
		return nil, err
	}

	// Superinstruction fusion: a cheap sequential peephole over the merged
	// code that fills each function's Super side table (bytecode.Fuse). It
	// runs last so it sees the final instruction layout; Code itself is
	// never rewritten, so every PC-based artifact above stays valid.
	if !po.noFusion {
		sc = pass("fuse")
		tab := po.fusion
		if tab == nil {
			tab = bytecode.DefaultFusionTable()
		}
		bytecode.FuseCert(c.out, tab, &bytecode.SafetyCert{Div: facts.DivSafe, Idx: facts.IdxSafe})
		sc.End()
	}

	art := &Artifacts{File: file, Prog: c.out, Info: info, PDG: p, Plan: plan, DB: db, Facts: facts, cfg: cfg}
	foldArtifactSizes(po.sink, art)
	return art, nil
}

// foldArtifactSizes publishes the preparatory phase's static sizes — the
// quantities E4/E6 reason about — as counters.
func foldArtifactSizes(sink *obs.Sink, art *Artifacts) {
	if sink == nil {
		return
	}
	sink.Counter("compile.funcs").Add(int64(len(art.Prog.Funcs)))
	sink.Counter("compile.globals").Add(int64(len(art.Prog.Globals)))
	sink.Counter("compile.instrs").Add(int64(art.Prog.NumInstrs()))
	sink.Counter("compile.superinstrs").Add(int64(art.Prog.NumSuper()))
	sink.Counter("fusion.windows.widened").Add(int64(art.Prog.WidenedSuper))
	sink.Counter("compile.eblocks").Add(int64(len(art.Plan.Blocks)))
	sink.Counter("compile.eblocks.inlined").Add(int64(len(art.Plan.Inlined)))
	var units, edges, deps, sites int
	for _, f := range art.PDG.Funcs {
		units += len(f.Simple.Units)
		edges += len(f.Simple.Edges)
		deps += len(f.DataDeps)
	}
	for _, f := range art.Prog.Funcs {
		sites += len(f.Units)
	}
	sink.Counter("compile.pdg.units").Add(int64(units))
	sink.Counter("compile.pdg.edges").Add(int64(edges))
	sink.Counter("compile.pdg.datadeps").Add(int64(deps))
	sink.Counter("compile.shprelog.sites").Add(int64(sites))
}

// CompileBareSource is the string-input variant of CompileBare.
func CompileBareSource(name, src string) (*Artifacts, error) {
	return CompileBare(source.NewFile(name, src))
}

type compiler struct {
	info    *sem.Info
	pdg     *pdg.Program
	plan    *eblock.Plan
	out     *bytecode.Program
	noInstr bool // CompileBare: emit no instrumentation markers

	strIdx map[string]int
}

func (c *compiler) run(pool *sched.Pool) error {
	c.strIdx = make(map[string]int)

	// Globals.
	for _, g := range c.info.Globals {
		def := bytecode.GlobalDef{Name: g.Name}
		switch g.Kind {
		case sem.SymGlobal:
			def.Kind = bytecode.GlobalVar
			def.Shared = true
			if g.Type.Kind == ast.TypeArray {
				def.IsArray = true
				def.Len = g.Type.Len
			}
		case sem.SymSem:
			def.Kind = bytecode.GlobalSem
		case sem.SymChan:
			def.Kind = bytecode.GlobalChan
			def.Len = g.Type.Len
		}
		// Constant initializer, if any.
		for _, gd := range c.info.Prog.Globals {
			if gd.Name.Name == g.Name && gd.Init != nil {
				if v, ok := constEval(gd.Init); ok {
					def.Init = v
					def.HasInit = true
				} else {
					errs := &source.ErrorList{}
					errs.Errorf(c.info.Prog.File.Position(gd.Init.Pos()),
						"global initializer for %q must be a constant expression", g.Name)
					return errs.Err()
				}
			}
		}
		c.out.Globals = append(c.out.Globals, def)
	}

	// Function indices first (calls may be forward).
	for i, fn := range c.info.FuncList {
		f := &bytecode.Func{
			Idx:        i,
			Name:       fn.Name(),
			NumParams:  len(fn.Params),
			NumSlots:   fn.NumSlots,
			HasResult:  fn.Decl.Result.Kind != ast.TypeVoid,
			BlockID:    -1,
			ArraySlots: map[int]int{},
		}
		for _, prm := range fn.Params {
			f.ParamSlots = append(f.ParamSlots, prm.Slot)
		}
		for _, l := range fn.Locals {
			if l.Type.Kind == ast.TypeArray {
				f.ArraySlots[l.Slot] = l.Type.Len
			}
		}
		c.out.Funcs = append(c.out.Funcs, f)
		c.out.FuncIdx[fn.Name()] = i
		if fn.Name() == "main" {
			c.out.MainIdx = i
		}
	}

	// E-block metadata table.
	for _, b := range c.plan.Blocks {
		meta := &bytecode.BlockMeta{
			ID:      int(b.ID),
			FuncIdx: c.out.FuncIdx[b.Fn.Name()],
		}
		space := c.pdg.Funcs[b.Fn.Name()].Space
		split := func(set interface{ ForEach(func(int)) }, locals, globals *[]int) {
			set.ForEach(func(i int) {
				if space.IsGlobal(i) {
					sym := space.Symbol(i)
					if sym.Kind == sem.SymGlobal { // only data globals logged
						*globals = append(*globals, space.GlobalID(i))
					}
				} else {
					*locals = append(*locals, i)
				}
			})
		}
		switch b.Kind {
		case eblock.FuncBlock:
			meta.Kind = bytecode.BlockFunc
			split(b.Used, &meta.UsedLocals, &meta.UsedGlobals)
			var dl []int
			split(b.Defined, &dl, &meta.DefinedGlobals)
			// Function blocks never log defined locals (frame dies at exit).
			meta.HasRet = b.Fn.Decl.Result.Kind != ast.TypeVoid
			meta.PrelogPC = 0
			meta.PostPC = -1
		case eblock.LoopBlock:
			meta.Kind = bytecode.BlockLoop
			meta.LoopStmt = b.Loop.ID()
			split(b.Used, &meta.UsedLocals, &meta.UsedGlobals)
			split(b.Defined, &meta.DefinedLocals, &meta.DefinedGlobals)
		}
		c.out.Blocks = append(c.out.Blocks, meta)
	}

	// Code generation: each function body lowers independently. String
	// literals intern into a per-function table first (OpPrintStr operands
	// are local indices during this stage); the sequential merge below
	// re-interns them into the program table in function order, which is
	// exactly the order the sequential pipeline would have encountered them
	// at emit time — so the program's string table and every rewritten
	// operand are byte-identical to a sequential compile.
	locals := make([]localStrings, len(c.info.FuncList))
	genFunc := func(i int) {
		fc := &fnCompiler{
			c:    c,
			fn:   c.info.FuncList[i],
			f:    c.out.Funcs[i],
			strs: &locals[i],
		}
		fc.compile()
	}
	if pool == nil {
		for i := range c.info.FuncList {
			genFunc(i)
		}
	} else {
		pool.ForEach(len(c.info.FuncList), genFunc)
	}

	// Deterministic string-table merge + operand rewrite.
	for i, f := range c.out.Funcs {
		ls := &locals[i]
		if len(ls.strs) == 0 {
			continue
		}
		remap := make([]int, len(ls.strs))
		for j, s := range ls.strs {
			remap[j] = c.internString(s)
		}
		for pc := range f.Code {
			if f.Code[pc].Op == bytecode.OpPrintStr {
				f.Code[pc].A = remap[f.Code[pc].A]
			}
		}
	}

	// Per-function prelog-PC index: emulation resolves an interval's start
	// PC with a map hit instead of scanning the code for its OpPrelog.
	for _, f := range c.out.Funcs {
		f.BuildPrelogIndex()
	}
	return nil
}

// localStrings is one function's private string-literal table, merged into
// the program table after parallel code generation.
type localStrings struct {
	strs []string
	idx  map[string]int
}

func (ls *localStrings) intern(s string) int {
	if i, ok := ls.idx[s]; ok {
		return i
	}
	if ls.idx == nil {
		ls.idx = make(map[string]int)
	}
	i := len(ls.strs)
	ls.strs = append(ls.strs, s)
	ls.idx[s] = i
	return i
}

func (c *compiler) internString(s string) int {
	if i, ok := c.strIdx[s]; ok {
		return i
	}
	i := len(c.out.Strings)
	c.out.Strings = append(c.out.Strings, s)
	c.strIdx[s] = i
	return i
}

// constEval evaluates compile-time constant expressions (for global
// initializers).
func constEval(e ast.Expr) (int64, bool) {
	switch e := e.(type) {
	case *ast.IntLit:
		return e.Value, true
	case *ast.BoolLit:
		if e.Value {
			return 1, true
		}
		return 0, true
	case *ast.ParenExpr:
		return constEval(e.X)
	case *ast.UnaryExpr:
		v, ok := constEval(e.X)
		if !ok {
			return 0, false
		}
		switch e.Op {
		case token.SUB:
			return -v, true
		case token.NOT:
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
	case *ast.BinaryExpr:
		x, ok1 := constEval(e.X)
		y, ok2 := constEval(e.Y)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch e.Op {
		case token.ADD:
			return x + y, true
		case token.SUB:
			return x - y, true
		case token.MUL:
			return x * y, true
		case token.QUO:
			if y != 0 {
				return x / y, true
			}
		case token.REM:
			if y != 0 {
				return x % y, true
			}
		}
	}
	return 0, false
}

// fnCompiler generates code for one function. It writes only to f, strs,
// and the BlockMeta entries of this function's own loops, so distinct
// functions compile concurrently.
type fnCompiler struct {
	c    *compiler
	fn   *sem.FuncInfo
	f    *bytecode.Func
	strs *localStrings

	curStmt ast.StmtID

	// loop stack
	loops []*loopCtx

	// unit table: StmtID -> index into f.Units (built on demand)
	unitIdx map[ast.StmtID]int
}

type loopCtx struct {
	contTarget  int   // pc to jump to on continue (head or post)
	breakPatch  []int // OpJmp indices to patch to the exit
	contPatch   []int // OpJmp indices to patch to contTarget (when unknown yet)
	postlogInst int   // pc of the loop's OpPostlog, or -1
}

func (fc *fnCompiler) emit(op bytecode.Op, a, b int) int {
	if fc.c.noInstr {
		switch op {
		case bytecode.OpPrelog, bytecode.OpPostlog, bytecode.OpShPrelog:
			// CompileBare: markers suppressed. Return the index the marker
			// would have had; callers only use it for jump patching, which
			// never targets markers.
			return len(fc.f.Code) - 1
		}
	}
	fc.f.Code = append(fc.f.Code, bytecode.Instr{Op: op, A: a, B: b, Stmt: fc.curStmt})
	return len(fc.f.Code) - 1
}

func (fc *fnCompiler) patch(idx, target int) { fc.f.Code[idx].A = target }

func (fc *fnCompiler) here() int { return len(fc.f.Code) }

func (fc *fnCompiler) compile() {
	blk := fc.c.plan.ByFunc[fc.fn.Name()]
	fc.unitIdx = make(map[ast.StmtID]int)

	if blk != nil {
		fc.f.BlockID = int(blk.ID)
		fc.emit(bytecode.OpPrelog, int(blk.ID), 0)
	}
	// The entry synchronization unit needs no shared prelog of its own: the
	// block prelog captures the same values at the same moment, and for
	// inlined functions the caller's prelog inherits them (§5.4). Units
	// starting at sync operations and call returns get markers below.

	fc.block(fc.fn.Decl.Body)

	// Implicit return at fall-off.
	fc.curStmt = ast.NoStmt
	if fc.f.HasResult {
		fc.emit(bytecode.OpConst, 0, 0)
		if blk != nil {
			fc.emit(bytecode.OpPostlog, int(blk.ID), 1)
		}
		fc.emit(bytecode.OpRetValue, 0, 0)
	} else {
		if blk != nil {
			fc.emit(bytecode.OpPostlog, int(blk.ID), 0)
		}
		fc.emit(bytecode.OpRet, 0, 0)
	}
}

// emitShPrelog interns the unit's read set and emits the marker.
func (fc *fnCompiler) emitShPrelog(stmt ast.StmtID, u *pdg.SyncUnit) {
	idx, ok := fc.unitIdx[stmt]
	if !ok {
		idx = len(fc.f.Units)
		fc.f.Units = append(fc.f.Units, bytecode.UnitLog{
			Stmt:    stmt,
			Globals: u.CrossReads.Elems(),
		})
		fc.unitIdx[stmt] = idx
	}
	saved := fc.curStmt
	fc.curStmt = stmt
	fc.emit(bytecode.OpShPrelog, idx, 0)
	fc.curStmt = saved
}

// unitFor looks up the sync unit starting at statement s, returning nil for
// units with no shared reads (paper §5.5: no log entry then).
func (fc *fnCompiler) unitFor(s ast.Stmt) *pdg.SyncUnit {
	fpdg := fc.c.pdg.Funcs[fc.fn.Name()]
	node := fpdg.CFG.NodeFor(s.ID())
	if node < 0 {
		return nil
	}
	u := fpdg.Simple.UnitAt(node)
	if u == nil || u.CrossReads.IsEmpty() {
		return nil
	}
	return u
}

func (fc *fnCompiler) block(b *ast.BlockStmt) {
	for _, s := range b.List {
		fc.stmt(s)
	}
}

func (fc *fnCompiler) stmt(s ast.Stmt) {
	if s == nil {
		return
	}
	fc.curStmt = s.ID()
	switch s := s.(type) {
	case *ast.BlockStmt:
		fc.block(s)

	case *ast.VarDeclStmt:
		sym := fc.c.info.Uses[s.Name]
		if s.Type.Kind == ast.TypeArray {
			// Arrays are allocated (zeroed) at frame setup; the declaration
			// itself has no runtime effect.
			return
		}
		if s.Init != nil {
			fc.expr(s.Init)
		} else {
			fc.emit(bytecode.OpConst, 0, 0)
		}
		fc.emit(bytecode.OpStoreLocal, sym.Slot, 0)
		fc.maybeUnitAfterCalls(s)

	case *ast.AssignStmt:
		sym := fc.c.info.Uses[s.LHS]
		if s.Index != nil {
			fc.expr(s.Index)
			fc.expr(s.RHS)
			if sym.GlobalID >= 0 {
				fc.emit(bytecode.OpStoreIndexedG, sym.GlobalID, 0)
			} else {
				fc.emit(bytecode.OpStoreIndexedL, sym.Slot, 0)
			}
		} else {
			fc.expr(s.RHS)
			if sym.GlobalID >= 0 {
				fc.emit(bytecode.OpStoreGlobal, sym.GlobalID, 0)
			} else {
				fc.emit(bytecode.OpStoreLocal, sym.Slot, 0)
			}
		}
		fc.maybeUnitAfterCalls(s)

	case *ast.IfStmt:
		fc.expr(s.Cond)
		jf := fc.emit(bytecode.OpJmpFalse, -1, 1)
		fc.block(s.Then)
		if s.Else != nil {
			jend := fc.emit(bytecode.OpJmp, -1, 0)
			fc.patch(jf, fc.here())
			fc.stmt(s.Else)
			fc.patch(jend, fc.here())
		} else {
			fc.patch(jf, fc.here())
		}

	case *ast.WhileStmt:
		fc.compileLoop(s, nil, s.Cond, nil, s.Body)

	case *ast.ForStmt:
		fc.compileLoop(s, s.Init, s.Cond, s.Post, s.Body)

	case *ast.ReturnStmt:
		blk := fc.c.plan.ByFunc[fc.fn.Name()]
		if s.Result != nil {
			fc.expr(s.Result)
			if blk != nil {
				fc.emit(bytecode.OpPostlog, int(blk.ID), 1)
			}
			fc.emit(bytecode.OpRetValue, 0, 0)
		} else {
			if blk != nil {
				fc.emit(bytecode.OpPostlog, int(blk.ID), 0)
			}
			fc.emit(bytecode.OpRet, 0, 0)
		}

	case *ast.BreakStmt:
		l := fc.loops[len(fc.loops)-1]
		l.breakPatch = append(l.breakPatch, fc.emit(bytecode.OpJmp, -1, 0))

	case *ast.ContinueStmt:
		l := fc.loops[len(fc.loops)-1]
		if l.contTarget >= 0 {
			fc.emit(bytecode.OpJmp, l.contTarget, 0)
		} else {
			l.contPatch = append(l.contPatch, fc.emit(bytecode.OpJmp, -1, 0))
		}

	case *ast.SpawnStmt:
		for _, a := range s.Call.Args {
			fc.expr(a)
		}
		fidx := fc.c.out.FuncIdx[s.Call.Fun.Name]
		fc.emit(bytecode.OpSpawn, fidx, len(s.Call.Args))
		if u := fc.unitFor(s); u != nil {
			fc.emitShPrelog(s.ID(), u)
		}

	case *ast.SemStmt:
		sym := fc.c.info.Uses[s.Sem]
		if s.Op == token.ACQUIRE {
			fc.emit(bytecode.OpSemP, sym.GlobalID, 0)
		} else {
			fc.emit(bytecode.OpSemV, sym.GlobalID, 0)
		}
		if u := fc.unitFor(s); u != nil {
			fc.emitShPrelog(s.ID(), u)
		}

	case *ast.SendStmt:
		fc.expr(s.Value)
		sym := fc.c.info.Uses[s.Chan]
		fc.emit(bytecode.OpSend, sym.GlobalID, 0)
		if u := fc.unitFor(s); u != nil {
			fc.emitShPrelog(s.ID(), u)
		}

	case *ast.ExprStmt:
		switch x := s.X.(type) {
		case *ast.CallExpr:
			fc.expr(x)
			// Discard the result if any.
			if fc.c.out.Funcs[fc.c.out.FuncIdx[x.Fun.Name]].HasResult {
				fc.emit(bytecode.OpPop, 0, 0)
			}
		case *ast.RecvExpr:
			fc.expr(x)
			fc.emit(bytecode.OpPop, 0, 0)
		}
		fc.maybeUnitAfterCalls(s)

	case *ast.PrintStmt:
		for _, a := range s.Args {
			if str, ok := a.(*ast.StringLit); ok {
				fc.emit(bytecode.OpPrintStr, fc.strs.intern(str.Value), 0)
				continue
			}
			fc.expr(a)
			fc.emit(bytecode.OpPrintVal, 0, 0)
		}
		fc.emit(bytecode.OpPrintNl, 0, 0)
		fc.maybeUnitAfterCalls(s)
	}
}

// maybeUnitAfterCalls emits the shared prelog for statements that are unit
// starts because they contain calls or a recv (the unit covers the code
// *after* the statement completes).
func (fc *fnCompiler) maybeUnitAfterCalls(s ast.Stmt) {
	fpdg := fc.c.pdg.Funcs[fc.fn.Name()]
	node := fpdg.CFG.NodeFor(s.ID())
	if node < 0 {
		return
	}
	kind, ok := fpdg.Simple.Kinds[node]
	if !ok || kind.Branching() || kind == pdg.SimpleEntry || kind == pdg.SimpleExit {
		return
	}
	if kind == pdg.SimpleSync {
		return // handled at the sync-op emit sites
	}
	if u := fc.unitFor(s); u != nil {
		fc.emitShPrelog(s.ID(), u)
	}
}

// compileLoop generates while/for loops, with optional loop e-block
// instrumentation (§5.4).
func (fc *fnCompiler) compileLoop(loop ast.Stmt, init ast.Stmt, cond ast.Expr, post ast.Stmt, body *ast.BlockStmt) {
	if init != nil {
		fc.stmt(init)
	}
	fc.curStmt = loop.ID()

	blk := fc.c.plan.ByLoop[loop.ID()]
	if blk != nil {
		fc.emit(bytecode.OpPrelog, int(blk.ID), 0)
	}

	head := fc.here()
	if cond != nil {
		fc.curStmt = loop.ID()
		fc.expr(cond)
	} else {
		fc.emit(bytecode.OpConst, 1, 0)
	}
	jf := fc.emit(bytecode.OpJmpFalse, -1, 1)

	l := &loopCtx{contTarget: -1, postlogInst: -1}
	fc.loops = append(fc.loops, l)
	if post == nil {
		l.contTarget = head
	}

	fc.block(body)

	if post != nil {
		postPC := fc.here()
		fc.stmt(post)
		for _, idx := range l.contPatch {
			fc.patch(idx, postPC)
		}
	}
	fc.curStmt = loop.ID()
	fc.emit(bytecode.OpJmp, head, 0)

	exit := fc.here()
	fc.patch(jf, exit)
	for _, idx := range l.breakPatch {
		fc.patch(idx, exit)
	}
	if blk != nil {
		fc.curStmt = loop.ID()
		pc := fc.emit(bytecode.OpPostlog, int(blk.ID), 0)
		l.postlogInst = pc
		// Record the substitution jump target on the block metadata.
		fc.c.out.Blocks[blk.ID].PrelogPC = headPrelogPC(fc.f, int(blk.ID))
		fc.c.out.Blocks[blk.ID].PostPC = pc
	}
	fc.loops = fc.loops[:len(fc.loops)-1]
}

// headPrelogPC finds the OpPrelog instruction for a block id in f.
func headPrelogPC(f *bytecode.Func, blockID int) int {
	for pc, in := range f.Code {
		if in.Op == bytecode.OpPrelog && in.A == blockID {
			return pc
		}
	}
	return -1
}

// ------------------------------------------------------------ expressions

func (fc *fnCompiler) expr(e ast.Expr) {
	switch e := e.(type) {
	case *ast.IntLit:
		fc.emit(bytecode.OpConst, int(e.Value), 0)
	case *ast.BoolLit:
		v := 0
		if e.Value {
			v = 1
		}
		fc.emit(bytecode.OpConst, v, 0)
	case *ast.StringLit:
		// Only reachable through malformed programs; checker rejects
		// strings outside print.
		fc.emit(bytecode.OpConst, 0, 0)
	case *ast.Ident:
		sym := fc.c.info.Uses[e]
		if sym.GlobalID >= 0 {
			fc.emit(bytecode.OpLoadGlobal, sym.GlobalID, 0)
		} else {
			fc.emit(bytecode.OpLoadLocal, sym.Slot, 0)
		}
	case *ast.IndexExpr:
		fc.expr(e.Index)
		sym := fc.c.info.Uses[e.X]
		if sym.GlobalID >= 0 {
			fc.emit(bytecode.OpLoadIndexedG, sym.GlobalID, 0)
		} else {
			fc.emit(bytecode.OpLoadIndexedL, sym.Slot, 0)
		}
	case *ast.ParenExpr:
		fc.expr(e.X)
	case *ast.UnaryExpr:
		fc.expr(e.X)
		if e.Op == token.SUB {
			fc.emit(bytecode.OpNeg, 0, 0)
		} else {
			fc.emit(bytecode.OpNot, 0, 0)
		}
	case *ast.BinaryExpr:
		fc.binary(e)
	case *ast.CallExpr:
		for _, a := range e.Args {
			fc.expr(a)
		}
		fc.emit(bytecode.OpCall, fc.c.out.FuncIdx[e.Fun.Name], len(e.Args))
	case *ast.RecvExpr:
		sym := fc.c.info.Uses[e.Chan]
		fc.emit(bytecode.OpRecv, sym.GlobalID, 0)
	}
}

func (fc *fnCompiler) binary(e *ast.BinaryExpr) {
	switch e.Op {
	case token.LAND:
		// a && b  =>  a ? b : 0, short-circuit.
		fc.expr(e.X)
		jf := fc.emit(bytecode.OpJmpFalse, -1, 0)
		fc.expr(e.Y)
		jend := fc.emit(bytecode.OpJmp, -1, 0)
		fc.patch(jf, fc.here())
		fc.emit(bytecode.OpConst, 0, 0)
		fc.patch(jend, fc.here())
		return
	case token.LOR:
		fc.expr(e.X)
		jt := fc.emit(bytecode.OpJmpTrue, -1, 0)
		fc.expr(e.Y)
		jend := fc.emit(bytecode.OpJmp, -1, 0)
		fc.patch(jt, fc.here())
		fc.emit(bytecode.OpConst, 1, 0)
		fc.patch(jend, fc.here())
		return
	}
	fc.expr(e.X)
	fc.expr(e.Y)
	var op bytecode.Op
	switch e.Op {
	case token.ADD:
		op = bytecode.OpAdd
	case token.SUB:
		op = bytecode.OpSub
	case token.MUL:
		op = bytecode.OpMul
	case token.QUO:
		op = bytecode.OpDiv
	case token.REM:
		op = bytecode.OpMod
	case token.EQL:
		op = bytecode.OpEq
	case token.NEQ:
		op = bytecode.OpNe
	case token.LSS:
		op = bytecode.OpLt
	case token.LEQ:
		op = bytecode.OpLe
	case token.GTR:
		op = bytecode.OpGt
	case token.GEQ:
		op = bytecode.OpGe
	default:
		op = bytecode.OpNop
	}
	fc.emit(op, 0, 0)
}
