package compile

import (
	"strings"
	"testing"

	"ppd/internal/ast"
	"ppd/internal/bytecode"
	"ppd/internal/eblock"
	"ppd/internal/obs"
	"ppd/internal/source"
)

func mustCompile(t *testing.T, src string, cfg eblock.Config) *Artifacts {
	t.Helper()
	art, err := CompileSource("test.mpl", src, cfg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return art
}

func TestFrontEndErrorsPropagate(t *testing.T) {
	cases := []string{
		`func main() { x = ; }`,      // parse error
		`func main() { y = 1; }`,     // undeclared
		`func f() {}`,                // no main
		"var g = h;\nfunc main() {}", // undeclared in initializer
	}
	for _, src := range cases {
		if _, err := CompileSource("bad.mpl", src, eblock.Config{}); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestNonConstGlobalInitializerRejected(t *testing.T) {
	_, err := CompileSource("nc.mpl", `
var a = 1;
var b = a + 1;
func main() {}`, eblock.Config{})
	if err == nil || !strings.Contains(err.Error(), "constant expression") {
		t.Errorf("err = %v", err)
	}
}

func TestConstEval(t *testing.T) {
	art := mustCompile(t, `
var a = 2 + 3 * 4;
var b = -(10 / 2);
var c = 17 % 5;
sem s = (1 + 1);
func main() {}`, eblock.Config{})
	wants := map[string]int64{"a": 14, "b": -5, "c": 2, "s": 2}
	for _, g := range art.Prog.Globals {
		if want, ok := wants[g.Name]; ok {
			if g.Init != want {
				t.Errorf("%s init = %d, want %d", g.Name, g.Init, want)
			}
		}
	}
}

func TestMarkerPlacementFunctions(t *testing.T) {
	art := mustCompile(t, `
func f(a int) int { return a * 2; }
func main() { print(f(1)); }`, eblock.Config{})
	f := art.Prog.FuncByName("f")
	if f.Code[0].Op != bytecode.OpPrelog {
		t.Errorf("f must start with prelog, got %v", f.Code[0].Op)
	}
	// Postlog immediately before the RetValue.
	foundPost := false
	for i, in := range f.Code {
		if in.Op == bytecode.OpRetValue {
			if i > 0 && f.Code[i-1].Op == bytecode.OpPostlog && f.Code[i-1].B == 1 {
				foundPost = true
			}
		}
	}
	if !foundPost {
		t.Errorf("f's return lacks a postlog with ret-on-stack:\n%s", f.Disasm())
	}
}

func TestMarkerPlacementLoopBlocks(t *testing.T) {
	art := mustCompile(t, `
func main() {
	var s = 0;
	for (var i = 0; i < 50; i = i + 1) {
		var a = i; var b = a; var c = b; var d = c;
		s = s + d;
	}
	print(s);
}`, eblock.Config{LoopBlockMinStmts: 4})
	if len(art.Plan.ByLoop) != 1 {
		t.Fatalf("no loop block:\n%s", art.Plan)
	}
	m := art.Prog.FuncByName("main")
	var loopMeta *bytecode.BlockMeta
	for _, b := range art.Prog.Blocks {
		if b.Kind == bytecode.BlockLoop {
			loopMeta = b
		}
	}
	if loopMeta == nil {
		t.Fatal("no loop block meta")
	}
	if m.Code[loopMeta.PrelogPC].Op != bytecode.OpPrelog {
		t.Errorf("PrelogPC %d is %v", loopMeta.PrelogPC, m.Code[loopMeta.PrelogPC].Op)
	}
	if m.Code[loopMeta.PostPC].Op != bytecode.OpPostlog {
		t.Errorf("PostPC %d is %v", loopMeta.PostPC, m.Code[loopMeta.PostPC].Op)
	}
	if loopMeta.PrelogPC >= loopMeta.PostPC {
		t.Error("prelog must precede postlog")
	}
}

func TestBareHasNoMarkers(t *testing.T) {
	src := `
sem s = 1;
shared sv;
func w() { P(s); sv = sv + 1; V(s); }
func main() { spawn w(); }`
	bare, err := CompileBareSource("b.mpl", src)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range bare.Prog.Funcs {
		for _, in := range f.Code {
			switch in.Op {
			case bytecode.OpPrelog, bytecode.OpPostlog, bytecode.OpShPrelog:
				t.Fatalf("bare code contains marker %v in %s", in.Op, f.Name)
			}
		}
	}
}

func TestUnitTablesForCrossWrites(t *testing.T) {
	art := mustCompile(t, `
shared sv;
sem done = 0;
func w() { sv = 1; V(done); }
func main() {
	spawn w();
	P(done);
	print(sv);
}`, eblock.Config{})
	m := art.Prog.FuncByName("main")
	// Main's unit after P(done) reads sv (written by the worker): one unit
	// entry containing sv's GlobalID.
	found := false
	svID := art.Info.GlobalByName("sv").GlobalID
	for _, u := range m.Units {
		for _, gid := range u.Globals {
			if gid == svID {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("main's unit table lacks sv: %+v", m.Units)
	}
	// The worker's own writes don't need unit entries for sv unless it
	// reads sv... it does (sv = 1 is write-only), so w should have no
	// cross-read unit with sv.
	w := art.Prog.FuncByName("w")
	for _, u := range w.Units {
		for _, gid := range u.Globals {
			if gid == svID {
				t.Errorf("w logs sv it never reads: %+v", w.Units)
			}
		}
	}
}

func TestStringInterning(t *testing.T) {
	art := mustCompile(t, `
func main() {
	print("hi");
	print("hi");
	print("bye");
}`, eblock.Config{})
	if len(art.Prog.Strings) != 2 {
		t.Errorf("strings = %v, want deduplicated [hi bye]", art.Prog.Strings)
	}
}

func TestShortCircuitJumpShape(t *testing.T) {
	art := mustCompile(t, `
func main() {
	var a = 1;
	if (a > 0 && a < 10) { print(a); }
}`, eblock.Config{})
	m := art.Prog.FuncByName("main")
	// Exactly one predicate-tagged JmpFalse (B=1), the if's main test;
	// the && uses an internal B=0 jump.
	pred, internal := 0, 0
	for _, in := range m.Code {
		if in.Op == bytecode.OpJmpFalse {
			if in.B == 1 {
				pred++
			} else {
				internal++
			}
		}
	}
	if pred != 1 || internal != 1 {
		t.Errorf("jmpf pred=%d internal=%d, want 1/1:\n%s", pred, internal, m.Disasm())
	}
}

func TestDisasmReadable(t *testing.T) {
	art := mustCompile(t, `
func main() { var x = 1 + 2; print(x); }`, eblock.Config{})
	d := art.Prog.Disasm()
	for _, want := range []string{"func main", "const", "add", "storel", "prval", "; s"} {
		if !strings.Contains(d, want) {
			t.Errorf("disasm missing %q:\n%s", want, d)
		}
	}
}

func TestStmtTagsCoverCode(t *testing.T) {
	art := mustCompile(t, `
func f(n int) int {
	var s = 0;
	while (s < n) { s = s + 1; }
	return s;
}
func main() { print(f(3)); }`, eblock.Config{})
	for _, f := range art.Prog.Funcs {
		for pc, in := range f.Code {
			switch in.Op {
			case bytecode.OpPrelog, bytecode.OpPostlog, bytecode.OpRet, bytecode.OpRetValue, bytecode.OpConst:
				continue // epilogue/prologue instructions may be untagged
			}
			if in.Stmt == ast.NoStmt {
				t.Errorf("%s pc %d (%v) untagged", f.Name, pc, in.Op)
			}
		}
	}
}

func TestUnfilteredSharedPrelogsSuperset(t *testing.T) {
	// The literal-§5.5 variant must log at least everything the filtered
	// build logs, and strictly more for single-process shared access.
	src := `
shared sv;
sem s = 1;
func main() {
	P(s);
	sv = sv + 1;
	var x = sv;
	V(s);
	print(x);
}`
	filtered := mustCompile(t, src, eblock.Config{})
	lit, err := CompileUnfiltered(filtered.File, eblock.Config{})
	if err != nil {
		t.Fatal(err)
	}
	count := func(a *Artifacts) int {
		n := 0
		for _, f := range a.Prog.Funcs {
			for _, u := range f.Units {
				n += len(u.Globals)
			}
		}
		return n
	}
	if count(filtered) != 0 {
		t.Errorf("single-process program should need no shared prelogs, got %d entries", count(filtered))
	}
	if count(lit) == 0 {
		t.Error("literal variant should log the unit reads")
	}
}

func TestCompileWithObsReportsArtifactSizes(t *testing.T) {
	sink := obs.New()
	src := `
shared sv;
sem done = 0;
func w() { sv = sv + 1; V(done); }
func main() { spawn w(); spawn w(); P(done); P(done); print(sv); }`
	art, err := CompileWithObs(source.NewFile("obs.mpl", src), eblock.DefaultConfig(), sink)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	snap := sink.Snapshot()
	if got := snap.Counter("compile.funcs"); got != int64(len(art.Prog.Funcs)) {
		t.Errorf("compile.funcs = %d, want %d", got, len(art.Prog.Funcs))
	}
	if got := snap.Counter("compile.instrs"); got != int64(art.Prog.NumInstrs()) {
		t.Errorf("compile.instrs = %d, want %d", got, art.Prog.NumInstrs())
	}
	if got := snap.Counter("compile.eblocks"); got != int64(len(art.Plan.Blocks)) {
		t.Errorf("compile.eblocks = %d, want %d", got, len(art.Plan.Blocks))
	}
	if snap.Counter("compile.pdg.units") == 0 || snap.Counter("compile.pdg.edges") == 0 {
		t.Error("static PDG sizes not reported")
	}
	if snap.Counter("compile.shprelog.sites") == 0 {
		t.Error("shared-prelog sites not reported (program has a shared variable)")
	}
	// Every pass reported a timing, and the passes nest inside the total.
	for _, name := range []string{"compile.parse", "compile.check", "compile.pdg",
		"compile.eblock", "compile.progdb", "compile.codegen", "compile.total"} {
		if snap.Timer(name).Count != 1 {
			t.Errorf("timer %s observed %d times, want 1", name, snap.Timer(name).Count)
		}
	}
}

func TestCompileWithObsNilSinkMatchesCompile(t *testing.T) {
	src := `func main() { print(2); }`
	a, err := CompileSource("a.mpl", src, eblock.Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := CompileWithObs(source.NewFile("a.mpl", src), eblock.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Prog.Disasm() != b.Prog.Disasm() {
		t.Error("CompileWithObs(nil sink) produced different bytecode than Compile")
	}
}
