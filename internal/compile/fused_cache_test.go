package compile

import (
	"testing"

	"ppd/internal/bytecode"
	"ppd/internal/eblock"
	"ppd/internal/source"
	"ppd/internal/workloads"
)

// TestCompileCachedWarmReturnsFused pins the cache ↔ fusion contract: a
// warm hit hands back the same superinstruction side tables a cold fused
// compile produced, and fused/unfused compiles of the same source never
// share an entry (the fusion fingerprint is part of the key).
func TestCompileCachedWarmReturnsFused(t *testing.T) {
	dir := t.TempDir()
	cfg := eblock.DefaultConfig()
	wl := workloads.TokenRing(4, 100)
	file := source.NewFile(wl.Name+".mpl", wl.Src)
	tab := bytecode.DefaultFusionTable()

	cold, err := CompileCachedFused(file, cfg, dir, 0, tab, nil)
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	want := cold.Prog.NumSuper()
	if want == 0 {
		t.Fatal("cold fused compile produced no superinstructions")
	}
	warm, err := CompileCachedFused(file, cfg, dir, 0, tab, nil)
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if got := warm.Prog.NumSuper(); got != want {
		t.Errorf("warm hit returned %d superinstructions, cold compile had %d", got, want)
	}

	// Same directory, fusion off: must miss the fused entry and produce a
	// clean program, not serve fused bytecode from the shared cache.
	plain, err := CompileCachedFused(file, cfg, dir, 0, nil, nil)
	if err != nil {
		t.Fatalf("unfused: %v", err)
	}
	if got := plain.Prog.NumSuper(); got != 0 {
		t.Errorf("unfused compile returned %d superinstructions from a shared cache dir", got)
	}
	warmPlain, err := CompileCachedFused(file, cfg, dir, 0, nil, nil)
	if err != nil {
		t.Fatalf("warm unfused: %v", err)
	}
	if got := warmPlain.Prog.NumSuper(); got != 0 {
		t.Errorf("warm unfused hit returned %d superinstructions", got)
	}
}
