package compile

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"ppd/internal/eblock"
	"ppd/internal/obs"
	"ppd/internal/progdb"
	"ppd/internal/source"
	"ppd/internal/workloads"
)

// identitySources gathers every MPL program the repo ships: the benchmark
// workloads (including the wide Sharded program, one function per worker)
// and the testdata corpus.
func identitySources(t testing.TB) map[string]string {
	t.Helper()
	srcs := make(map[string]string)
	for _, w := range workloads.Standard() {
		srcs[w.Name+".mpl"] = w.Src
	}
	w := workloads.Sharded(8, 4)
	srcs[w.Name+".mpl"] = w.Src
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.mpl"))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		srcs[filepath.Base(p)] = string(data)
	}
	return srcs
}

// progBytes serializes an artifact's bytecode through the cache codec —
// the strictest equality available: every instruction, operand, string
// table index, and block metadata field participates.
func progBytes(t testing.TB, name, src string, cfg eblock.Config, art *Artifacts) []byte {
	t.Helper()
	return progdb.Encode(&progdb.CachedProgram{
		SourceName: name, Source: src, Config: cfg, Prog: art.Prog,
	})
}

// TestParallelByteIdentical pins the tentpole invariant: the parallel
// pipeline — at any fan-out width — produces bytecode byte-identical to
// the sequential pipeline, and identical vet output too.
func TestParallelByteIdentical(t *testing.T) {
	cfg := eblock.DefaultConfig()
	for name, src := range identitySources(t) {
		file := source.NewFile(name, src)
		seq, err := CompileSequential(file, cfg)
		if err != nil {
			t.Fatalf("%s: sequential: %v", name, err)
		}
		want := progBytes(t, name, src, cfg, seq)
		wantVet := seq.Vet(nil).Text()
		for _, workers := range []int{0, 2, 4, 8} {
			par, err := CompileWorkers(source.NewFile(name, src), cfg, workers, nil)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			got := progBytes(t, name, src, cfg, par)
			if !bytes.Equal(got, want) {
				t.Errorf("%s workers=%d: bytecode differs from sequential (%d vs %d bytes)",
					name, workers, len(got), len(want))
			}
			if gotVet := par.Vet(nil).Text(); gotVet != wantVet {
				t.Errorf("%s workers=%d: vet differs:\n got: %s\nwant: %s",
					name, workers, gotVet, wantVet)
			}
		}
	}
}

// TestCompileCachedColdWarm checks the persistent cache end to end inside
// the compile layer: a cold compile stores, a warm compile hits, and both
// hand back byte-identical bytecode and vet output — warm even before and
// after hydration.
func TestCompileCachedColdWarm(t *testing.T) {
	dir := t.TempDir()
	cfg := eblock.DefaultConfig()
	for name, src := range identitySources(t) {
		coldSink := obs.New()
		cold, err := CompileCached(source.NewFile(name, src), cfg, dir, 0, coldSink)
		if err != nil {
			t.Fatalf("%s cold: %v", name, err)
		}
		if got := coldSink.Snapshot().Counters["compile.cache.misses"]; got != 1 {
			t.Errorf("%s cold: misses = %d, want 1", name, got)
		}
		warmSink := obs.New()
		warm, err := CompileCached(source.NewFile(name, src), cfg, dir, 0, warmSink)
		if err != nil {
			t.Fatalf("%s warm: %v", name, err)
		}
		snap := warmSink.Snapshot()
		if got := snap.Counters["compile.cache.hits"]; got != 1 {
			t.Errorf("%s warm: hits = %d, want 1", name, got)
		}
		if got := snap.Counters["compile.cache.bytes"]; got <= 0 {
			t.Errorf("%s warm: bytes = %d, want > 0", name, got)
		}
		if warm.Hydrated() {
			t.Errorf("%s warm: artifact should start shallow", name)
		}
		if !bytes.Equal(progBytes(t, name, src, cfg, warm), progBytes(t, name, src, cfg, cold)) {
			t.Errorf("%s: warm bytecode differs from cold", name)
		}
		if got, want := warm.Vet(nil).Text(), cold.Vet(nil).Text(); got != want {
			t.Errorf("%s: warm vet differs:\n got: %s\nwant: %s", name, got, want)
		}
		if err := warm.Hydrate(); err != nil {
			t.Fatalf("%s: hydrate: %v", name, err)
		}
		if warm.DB == nil || warm.PDG == nil || warm.Info == nil || warm.Plan == nil {
			t.Fatalf("%s: hydrate left semantic layers nil", name)
		}
		// The hydrated database must serve the persisted vet result, not
		// recompute one.
		if warm.DB.Vet() == nil {
			t.Errorf("%s: hydrated DB has no vet result seeded", name)
		}
		if got, want := warm.Vet(nil).Text(), cold.Vet(nil).Text(); got != want {
			t.Errorf("%s: post-hydrate vet differs", name)
		}
	}
}
