// Package controller implements the PPD Controller (§3.2.3): the debugging
// phase's orchestrator. It owns the preparatory-phase artifacts and the
// execution-phase logs, and answers flowback queries by locating the log
// interval that covers the requested events, directing the emulation
// package to regenerate that interval's traces, and building or extending
// dynamic program dependence graphs — the paper's incremental tracing.
//
// Cross-process queries (§5.6, §6.3) go through the parallel dynamic graph:
// a shared-variable value that flowed into an interval from outside is
// resolved to the last ordered writer edge in another process, whose own
// interval can then be emulated and grafted into the user's view.
package controller

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"ppd/internal/analysis"
	"ppd/internal/ast"
	"ppd/internal/bitset"
	"ppd/internal/compile"
	"ppd/internal/dynpdg"
	"ppd/internal/emulation"
	"ppd/internal/logging"
	"ppd/internal/obs"
	"ppd/internal/parallel"
	"ppd/internal/race"
	"ppd/internal/sched"
	"ppd/internal/vm"
)

// DefaultCacheBound is the default LRU capacity of the per-interval
// graph/result cache: enough that an interactive session never thrashes,
// small enough that a sweep across thousands of intervals cannot hold
// every full trace alive.
const DefaultCacheBound = 128

// Controller is the debugging-phase coordinator. All query methods are
// safe for concurrent use; PrefetchNeighbors exploits that by warming the
// interval cache on the shared worker pool while the user inspects a node.
type Controller struct {
	Art *compile.Artifacts
	Log *logging.ProgramLog

	// Failure is the error that halted execution, if any.
	Failure *vm.RuntimeError

	// Deadlock reports whether execution ended blocked.
	Deadlock bool

	pgraph *parallel.Graph
	emus   []*emulation.Emulator
	pool   *sched.Pool
	// epool is the replay-context pool shared by every per-process
	// emulator (and the prefetcher behind them), bounded by the worker
	// count so concurrent sessions cannot hoard a VM per in-flight query.
	epool *emulation.Pool

	// Observability (nil / no-op when disabled). The counters are resolved
	// once at construction so query paths never do name lookups.
	obs       *obs.Sink
	cHits     *obs.Counter
	cMisses   *obs.Counter
	cEvicts   *obs.Counter
	cCkHits   *obs.Counter
	cCkStores *obs.Counter
	tEmu      *obs.Timer

	// Checkpointed state restoration (ReplayTo): every ckEvery-th record
	// boundary's fold state is snapshotted per process, bounding a later
	// restore to folding at most ckEvery records past the nearest
	// checkpoint instead of the whole run prefix.
	ckEvery int
	ckMu    sync.Mutex
	ckpts   [][]ckpt

	// mu guards cache and races. Emulation itself runs outside the lock
	// so concurrent misses on different intervals proceed in parallel.
	mu sync.Mutex
	// cache memoizes (pid, prelogIdx) → (dynamic graph, emulation result)
	// under an LRU bound: the log is immutable post-run, so entries never
	// invalidate, only age out.
	cache *intervalLRU
	// races memoizes Races(): the graph never changes, so the detector
	// runs at most once per controller.
	races     []*race.Race
	racesDone bool
	noPrune   bool
}

// Config tunes a controller. The zero value reproduces the defaults the
// positional constructor used to hard-code: a clean-exit execution, the
// shared GOMAXPROCS pool, DefaultCacheBound, no observation.
type Config struct {
	// Failure is the runtime error that halted execution, if any.
	Failure *vm.RuntimeError
	// Deadlock reports whether execution ended with blocked processes.
	Deadlock bool
	// Workers bounds the debugging phase's fan-out for this controller.
	// <= 0 uses the process-wide shared pool (GOMAXPROCS workers).
	Workers int
	// CacheBound caps the interval LRU: 0 means DefaultCacheBound, < 0
	// removes the bound, > 0 is the bound itself.
	CacheBound int
	// Obs receives debugging-phase metrics (debug.*, sched.*, race.*).
	// nil disables observation at the cost of one nil check per query.
	Obs *obs.Sink
	// NoStaticPrune disables the static conflict-mask filter in Races():
	// the detector scans every per-variable bucket, as it did before the
	// analysis package existed. The race set is identical either way (the
	// mask over-approximates dynamic conflicts); the switch exists for
	// ablation and benchmarking.
	NoStaticPrune bool
	// CheckpointEvery is the record spacing K between ReplayTo state
	// checkpoints: 0 means DefaultCheckpointEvery, < 0 disables
	// checkpointing (every restore folds from the run's start). Smaller K
	// trades memory (more snapshots) for a tighter O(K) restore bound.
	CheckpointEvery int
}

// NewWithConfig builds a controller from the compiled artifacts and an
// execution's logs. Per-process work (emulator construction, the parallel
// graph's pass 1) fans out across the configured worker pool.
func NewWithConfig(art *compile.Artifacts, pl *logging.ProgramLog, cfg Config) *Controller {
	bound := cfg.CacheBound
	if bound == 0 {
		bound = DefaultCacheBound
	}
	ckEvery := cfg.CheckpointEvery
	if ckEvery == 0 {
		ckEvery = DefaultCheckpointEvery
	}
	c := &Controller{
		Art:      art,
		Log:      pl,
		Failure:  cfg.Failure,
		Deadlock: cfg.Deadlock,
		noPrune:  cfg.NoStaticPrune,
		cache:    newIntervalLRU(bound),
		ckEvery:  ckEvery,
		ckpts:    make([][]ckpt, len(pl.Books)),
	}
	switch {
	case cfg.Workers > 0 || cfg.Obs != nil:
		// A private pool: either the caller bounded the fan-out, or pool
		// utilization must be observable (the shared pool is unobserved).
		c.pool = sched.NewObs(cfg.Workers, cfg.Obs)
	default:
		c.pool = sched.Shared()
	}
	if cfg.Obs != nil {
		c.obs = cfg.Obs
		c.cHits = cfg.Obs.Counter("debug.cache.hits")
		c.cMisses = cfg.Obs.Counter("debug.cache.misses")
		c.cEvicts = cfg.Obs.Counter("debug.cache.evictions")
		c.cCkHits = cfg.Obs.Counter("debug.emu.ckpt.hits")
		c.cCkStores = cfg.Obs.Counter("debug.emu.ckpt.stores")
		c.tEmu = cfg.Obs.Timer("debug.emulate")
	}
	sc := c.obs.Scope("debug.build")
	c.emus = sched.Map(c.pool, len(pl.Books), func(pid int) *emulation.Emulator {
		return emulation.New(art.Prog, pl.Books[pid])
	})
	// One replay-context pool for every emulator, sized to the worker
	// count: the prefetcher's concurrent emulations each get a context,
	// but an idle controller retains at most this many pooled VMs.
	c.epool = emulation.NewPool(art.Prog, max(2, c.pool.Workers()), cfg.Obs)
	for _, em := range c.emus {
		em.SetPool(c.epool)
	}
	c.pgraph = parallel.BuildWithPool(pl, len(art.Prog.Globals), c.pool)
	names := make([]string, len(art.Prog.Globals))
	for gid, def := range art.Prog.Globals {
		names[gid] = def.Name
	}
	c.pgraph.VarNames = names
	sc.End()
	return c
}

// New is the thin compatibility constructor predating Config: failure and
// deadlock describe how the execution ended, everything else defaults.
func New(art *compile.Artifacts, pl *logging.ProgramLog, failure *vm.RuntimeError, deadlock bool) *Controller {
	return NewWithConfig(art, pl, Config{Failure: failure, Deadlock: deadlock})
}

// SetCacheBound resizes the interval cache (entries beyond the new bound
// are evicted oldest-first). n <= 0 removes the bound.
func (c *Controller) SetCacheBound(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cEvicts.Add(int64(c.cache.setCap(n)))
}

// DropCache empties the interval cache, releasing every cached emulation
// trace and dynamic graph, and returns the number of entries released.
// The releases are reported as debug.cache.evictions. Session teardown
// (Close, the serving daemon's TTL eviction) uses this to free the
// debugging phase's memory without discarding the controller itself:
// later queries still work, they just re-emulate.
func (c *Controller) DropCache() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.cache.drop()
	c.cEvicts.Add(int64(n))
	return n
}

// Emulations returns the total number of VM re-executions performed across
// all processes — the observable that proves cache hits skip the VM.
func (c *Controller) Emulations() int64 {
	var n int64
	for _, em := range c.emus {
		n += em.Emulations()
	}
	return n
}

// FromRun is a convenience constructor from a finished ModeLog VM.
func FromRun(art *compile.Artifacts, v *vm.VM) *Controller {
	return New(art, v.Log, v.Failure, v.Deadlock)
}

// FromRunConfig builds a controller from a finished ModeLog VM, taking the
// execution outcome from the VM and everything else from cfg (whose Failure
// and Deadlock fields are overwritten).
func FromRunConfig(art *compile.Artifacts, v *vm.VM, cfg Config) *Controller {
	cfg.Failure = v.Failure
	cfg.Deadlock = v.Deadlock
	return NewWithConfig(art, v.Log, cfg)
}

// NumProcs returns the number of processes in the execution.
func (c *Controller) NumProcs() int { return c.Log.NumProcs() }

// Parallel returns the parallel dynamic graph.
func (c *Controller) Parallel() *parallel.Graph { return c.pgraph }

// Emulator returns the per-process emulator.
func (c *Controller) Emulator(pid int) *emulation.Emulator { return c.emus[pid] }

// Races runs the race detector over the execution (§6.4), sharded across
// the worker pool, and memoizes the result: the parallel graph is immutable
// post-run, so the detector runs at most once per controller. The race set
// is identical to race.Indexed's (the detectors are golden-equivalent).
//
// Unless Config.NoStaticPrune is set, the detector is filtered by the
// static conflict matrix from the program database (computed on first
// need): buckets of variables no pair of processes can statically
// conflict on are skipped. The filter cannot change the result — the
// matrix over-approximates every dynamic conflict — it only removes work.
func (c *Controller) Races() []*race.Race {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.racesDone {
		var mask *bitset.Set
		if !c.noPrune {
			vet := c.Art.DB.EnsureVet(func() *analysis.Result {
				return analysis.Analyze(c.Art.PDG, c.Art.Prog, c.obs)
			})
			mask = vet.Conflicts.Mask()
		}
		c.races = race.ParallelMasked(c.pgraph, c.pool.Workers(), mask, c.obs)
		c.racesDone = true
	}
	return c.races
}

// DeadlockReport analyzes blocked processes (§6's deadlock-cause help).
func (c *Controller) DeadlockReport() string {
	info := c.pgraph.AnalyzeDeadlock()
	return info.Report(
		func(gid int) string {
			if gid >= 0 && gid < len(c.Art.Prog.Globals) {
				return c.Art.Prog.Globals[gid].Name
			}
			return fmt.Sprintf("global%d", gid)
		},
		func(id ast.StmtID) string {
			if si := c.Art.DB.Stmt(id); si != nil {
				return fmt.Sprintf("%s line %d: %s", si.Func, si.Pos.Line, si.Text)
			}
			return fmt.Sprintf("s%d", id)
		})
}

// RaceReport renders the race list with variable names.
func (c *Controller) RaceReport() string {
	return race.Report(c.Races(), func(gid int) string {
		return c.Art.Prog.Globals[gid].Name
	})
}

// FocusInterval selects the interval a debugging session starts from for a
// process: the last open prelog when the process halted mid-interval,
// otherwise the last interval executed.
func (c *Controller) FocusInterval(pid int) (int, error) {
	if pid < 0 || pid >= len(c.emus) {
		return -1, fmt.Errorf("controller: no process %d", pid)
	}
	em := c.emus[pid]
	if idx := em.FindLastOpenPrelog(); idx >= 0 {
		return idx, nil
	}
	// Every interval completed: focus on the outermost one (the process's
	// entry function), which contains the last statement executed.
	if idx := em.FirstPrelog(); idx >= 0 {
		return idx, nil
	}
	return -1, fmt.Errorf("controller: process %d logged no intervals", pid)
}

// Graph returns (building and caching on demand) the dynamic graph of the
// interval whose prelog is at record index prelogIdx of process pid. This
// is the incremental step: only the requested interval is ever emulated,
// and a repeated query is served from the LRU cache without touching the
// VM at all.
func (c *Controller) Graph(pid, prelogIdx int) (*dynpdg.Graph, error) {
	ent, err := c.interval(pid, prelogIdx)
	if err != nil {
		return nil, err
	}
	return ent.graph, nil
}

// interval is the memoized emulate-and-build step behind Graph, Result,
// and the prefetcher. Emulation runs outside the lock so cache misses on
// different intervals overlap; if two goroutines race on the same miss,
// the first insertion wins and both observe the same entry (pointer
// stability for cached graphs).
func (c *Controller) interval(pid, prelogIdx int) (*intervalEntry, error) {
	if pid < 0 || pid >= len(c.emus) {
		return nil, fmt.Errorf("controller: no process %d", pid)
	}
	key := [2]int{pid, prelogIdx}
	c.mu.Lock()
	if ent, ok := c.cache.get(key); ok {
		c.mu.Unlock()
		c.cHits.Inc()
		return ent, nil
	}
	c.mu.Unlock()
	c.cMisses.Inc()

	sw := c.tEmu.Start()
	res, err := c.emus[pid].Emulate(prelogIdx)
	sw.Stop()
	if err != nil {
		return nil, err
	}
	rec := c.Log.Books[pid].Records[prelogIdx]
	fn := c.Art.Prog.Funcs[c.Art.Prog.Blocks[rec.Block].FuncIdx]
	ent := &intervalEntry{graph: dynpdg.Build(c.Art, res.Trace, fn.Name), res: res}

	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.cache.get(key); ok {
		return prev, nil // lost a concurrent miss: keep the first entry
	}
	c.cEvicts.Add(int64(c.cache.add(key, ent)))
	return ent, nil
}

// Result returns the cached emulation result for an interval (after Graph).
// It returns nil when the interval was never emulated or its entry has
// aged out of the LRU bound.
func (c *Controller) Result(pid, prelogIdx int) *emulation.Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ent, ok := c.cache.get([2]int{pid, prelogIdx}); ok {
		return ent.res
	}
	return nil
}

// FocusNode picks the node a debugging session roots at: the last instance
// of the failing statement when the process failed, otherwise the last
// event of the interval.
func (c *Controller) FocusNode(g *dynpdg.Graph, pid int) *dynpdg.Node {
	if c.Failure != nil && c.Failure.PID == pid {
		// Prefer the statement's own singular node over the %n and
		// sub-graph nodes that share its statement ID.
		var singular, other *dynpdg.Node
		for _, n := range g.NodesForStmt(c.Failure.Stmt) {
			switch n.Kind {
			case dynpdg.NodeSingular:
				singular = n
			case dynpdg.NodeSubGraph, dynpdg.NodeSync:
				other = n
			}
		}
		if singular != nil {
			return singular
		}
		if other != nil {
			return other
		}
	}
	return g.LastNode()
}

// CurrentGraph builds the graph for the focus interval of pid.
func (c *Controller) CurrentGraph(pid int) (*dynpdg.Graph, int, error) {
	idx, err := c.FocusInterval(pid)
	if err != nil {
		return nil, -1, err
	}
	g, err := c.Graph(pid, idx)
	return g, idx, err
}

// IntervalContaining returns the record index of the innermost prelog whose
// interval covers record index ri in pid's book, or -1.
func (c *Controller) IntervalContaining(pid, ri int) int {
	var stack []int
	innermost := -1
	for i, r := range c.Log.Books[pid].Records {
		if i > ri {
			break
		}
		switch r.Kind {
		case logging.RecPrelog:
			stack = append(stack, i)
		case logging.RecPostlog:
			if len(stack) > 0 {
				stack = stack[:len(stack)-1]
			}
		}
		if i == ri && len(stack) > 0 {
			innermost = stack[len(stack)-1]
		}
	}
	if innermost == -1 && len(stack) > 0 {
		innermost = stack[len(stack)-1]
	}
	return innermost
}

// CrossRef is the answer to a cross-process flowback query: the writer
// process, its internal edge, and the interval to emulate for detail.
type CrossRef struct {
	PID       int
	Edge      *parallel.InternalEdge
	PrelogIdx int // interval containing the write; -1 if outside any
	Racy      bool
	// RacyWith lists other unordered writer edges (the value's provenance
	// is ambiguous — a race, §5.5/§6.3).
	RacyWith []*parallel.InternalEdge
}

// ResolveInitial resolves an @pre initial node for shared global gid in the
// interval (pid, prelogIdx): which other process's edge supplied the value
// (§6.3's cross-process data dependence). Returns nil when the value came
// from initialization (no prior writer).
func (c *Controller) ResolveInitial(pid, prelogIdx, gid int) *CrossRef {
	// Find this interval's record span (cached emulation result if the
	// interval was already emulated; the whole book otherwise).
	res := c.Result(pid, prelogIdx)
	span := len(c.Log.Books[pid].Records)
	if res != nil {
		span = prelogIdx + res.RecordsConsumed
	}
	// The reading edges of this process overlapping the interval.
	var readEdge *parallel.InternalEdge
	for _, e := range c.pgraph.EdgesOf(pid) {
		if e.EndRec < prelogIdx || e.StartRec > span {
			continue
		}
		if e.Reads.Has(gid) {
			readEdge = e
			break
		}
	}
	if readEdge == nil {
		// The read may predate any sync op; use the process's first edge
		// overlapping the interval.
		for _, e := range c.pgraph.EdgesOf(pid) {
			if e.EndRec >= prelogIdx && e.StartRec <= span {
				readEdge = e
				break
			}
		}
	}
	if readEdge == nil {
		return nil
	}
	writer := c.pgraph.LastWriterBefore(readEdge, gid)

	// Collect unordered (racy) writers too.
	var racy []*parallel.InternalEdge
	for _, cand := range c.pgraph.Edges {
		if cand.PID == pid || !cand.Writes.Has(gid) {
			continue
		}
		if c.pgraph.Simultaneous(cand, readEdge) {
			racy = append(racy, cand)
		}
	}

	if writer == nil && len(racy) == 0 {
		return nil
	}
	ref := &CrossRef{Racy: len(racy) > 0, RacyWith: racy}
	if writer != nil {
		ref.PID = writer.PID
		ref.Edge = writer
		ref.PrelogIdx = c.IntervalContaining(writer.PID, writer.EndRec)
	} else {
		ref.PID = racy[0].PID
		ref.Edge = racy[0]
		ref.PrelogIdx = c.IntervalContaining(racy[0].PID, racy[0].EndRec)
	}
	return ref
}

// PrefetchNeighbors warms the interval cache around (pid, prelogIdx): the
// preceding and following sibling intervals in the process's book, the
// innermost enclosing interval, and the cross-process writer intervals
// supplying shared values the focus interval reads — the intervals a user
// inspecting a node is most likely to query next. The emulations fan out
// across the shared worker pool and the call blocks until the cache is
// warm; queries racing with the warm-up are safe and see each entry at
// most once. Errors are swallowed — prefetch is purely advisory.
func (c *Controller) PrefetchNeighbors(pid, prelogIdx int) {
	targets := c.neighborIntervals(pid, prelogIdx)
	c.pool.ForEach(len(targets), func(i int) {
		_, _ = c.interval(targets[i][0], targets[i][1])
	})
}

// maxPrefetch bounds one prefetch fan-out; beyond it the speculative work
// would evict more cache than it warms.
const maxPrefetch = 16

// neighborIntervals computes the prefetch target list for an interval, in
// deterministic priority order, capped at maxPrefetch and excluding the
// focus interval itself.
func (c *Controller) neighborIntervals(pid, prelogIdx int) [][2]int {
	if pid < 0 || pid >= len(c.Log.Books) {
		return nil
	}
	var out [][2]int
	seen := map[[2]int]bool{{pid, prelogIdx}: true}
	add := func(p, idx int) {
		k := [2]int{p, idx}
		if idx >= 0 && p >= 0 && !seen[k] && len(out) < maxPrefetch {
			seen[k] = true
			out = append(out, k)
		}
	}

	// Sibling intervals: the prelogs immediately before and after.
	prev, next := -1, -1
	for i, r := range c.Log.Books[pid].Records {
		if r.Kind != logging.RecPrelog {
			continue
		}
		switch {
		case i < prelogIdx:
			prev = i
		case i > prelogIdx && next < 0:
			next = i
		}
	}
	add(pid, prev)
	add(pid, next)

	// The innermost interval enclosing this one (the caller's e-block).
	add(pid, c.enclosingInterval(pid, prelogIdx))

	// Cross-process writers: for each shared variable read by this
	// process's edges overlapping the interval, the interval of the edge
	// that supplied the value (§6.3's likely next hop).
	res := c.Result(pid, prelogIdx)
	span := len(c.Log.Books[pid].Records)
	if res != nil {
		span = prelogIdx + res.RecordsConsumed
	}
	for _, e := range c.pgraph.EdgesOf(pid) {
		if e.EndRec < prelogIdx || e.StartRec > span {
			continue
		}
		e.Reads.ForEach(func(gid int) {
			if ref := c.ResolveInitial(pid, prelogIdx, gid); ref != nil {
				add(ref.PID, ref.PrelogIdx)
			}
		})
	}
	return out
}

// enclosingInterval returns the record index of the innermost prelog whose
// interval strictly contains the prelog at prelogIdx, or -1 for an
// outermost interval.
func (c *Controller) enclosingInterval(pid, prelogIdx int) int {
	var stack []int
	for i, r := range c.Log.Books[pid].Records {
		if i == prelogIdx {
			if len(stack) > 0 {
				return stack[len(stack)-1]
			}
			return -1
		}
		switch r.Kind {
		case logging.RecPrelog:
			stack = append(stack, i)
		case logging.RecPostlog:
			if len(stack) > 0 {
				stack = stack[:len(stack)-1]
			}
		}
	}
	return -1
}

// Flowback walks backward from a node through data/control/sync edges up to
// the given depth, returning the reachable slice of the graph in
// breadth-first order — the fragment the debugger presents (§3.2.3's
// "portion of the dynamic graph").
func Flowback(g *dynpdg.Graph, from dynpdg.NodeID, depth int) []*dynpdg.Node {
	type item struct {
		id dynpdg.NodeID
		d  int
	}
	seen := map[dynpdg.NodeID]bool{from: true}
	queue := []item{{from, 0}}
	var out []*dynpdg.Node
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		out = append(out, g.Nodes[it.id])
		if it.d == depth {
			continue
		}
		var deps []dynpdg.NodeID
		for _, e := range g.Incoming(it.id) {
			if e.Kind == dynpdg.EdgeFlow {
				continue
			}
			deps = append(deps, e.From)
		}
		sort.Slice(deps, func(i, j int) bool { return deps[i] < deps[j] })
		for _, d := range deps {
			if !seen[d] {
				seen[d] = true
				queue = append(queue, item{d, it.d + 1})
			}
		}
	}
	return out
}

// RenderFragment prints a flowback fragment as an indented dependence tree
// rooted at the node, the textual analogue of the paper's inverted-tree
// display.
func RenderFragment(g *dynpdg.Graph, root dynpdg.NodeID, depth int) string {
	var sb strings.Builder
	var walk func(id dynpdg.NodeID, d int, via string, seen map[dynpdg.NodeID]bool)
	walk = func(id dynpdg.NodeID, d int, via string, seen map[dynpdg.NodeID]bool) {
		n := g.Nodes[id]
		fmt.Fprintf(&sb, "%s", strings.Repeat("  ", d))
		if via != "" {
			fmt.Fprintf(&sb, "<-%s- ", via)
		}
		fmt.Fprintf(&sb, "n%d [%s]", n.ID, n.Label)
		if n.Stmt != ast.NoStmt {
			fmt.Fprintf(&sb, " s%d", n.Stmt)
		}
		if n.HasValue {
			fmt.Fprintf(&sb, " = %d", n.Value)
		}
		sb.WriteByte('\n')
		if d == depth || seen[id] {
			return
		}
		seen[id] = true
		for _, e := range g.Incoming(id) {
			if e.Kind == dynpdg.EdgeFlow {
				continue
			}
			walk(e.From, d+1, e.Kind.String(), seen)
		}
	}
	walk(root, 0, "", map[dynpdg.NodeID]bool{})
	return sb.String()
}

// Summary describes the halted execution for the debugger's banner.
func (c *Controller) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "execution: %d process(es), %d log record(s)\n",
		c.NumProcs(), totalRecords(c.Log))
	switch {
	case c.Failure != nil:
		st := c.Art.DB.Stmt(c.Failure.Stmt)
		loc := "?"
		if st != nil {
			loc = fmt.Sprintf("%s line %d: %s", st.Func, st.Pos.Line, st.Text)
		}
		fmt.Fprintf(&sb, "halted: process %d failed at s%d (%s): %s\n",
			c.Failure.PID, c.Failure.Stmt, loc, c.Failure.Msg)
	case c.Deadlock:
		sb.WriteString("halted: deadlock\n")
	default:
		sb.WriteString("completed normally\n")
	}
	return sb.String()
}

func totalRecords(pl *logging.ProgramLog) int {
	n := 0
	for _, b := range pl.Books {
		n += b.Len()
	}
	return n
}
