package controller

import (
	"strings"
	"testing"

	"ppd/internal/compile"
	"ppd/internal/dynpdg"
	"ppd/internal/eblock"
	"ppd/internal/vm"
)

func session(t *testing.T, src string, opts vm.Options) *Controller {
	t.Helper()
	art, err := compile.CompileSource("test.mpl", src, eblock.Config{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	opts.Mode = vm.ModeLog
	v := vm.New(art.Prog, opts)
	_ = v.Run()
	return FromRun(art, v)
}

func TestThreePhasePipeline(t *testing.T) {
	// E11: preparatory -> execution -> debugging, asserting each artifact.
	src := `
var g = 1;
func f(a int) int {
	g = g + a;
	return g * 2;
}
func main() {
	var r = f(20) / (g - 21);
	print(r);
}`
	art, err := compile.CompileSource("pipeline.mpl", src, eblock.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Preparatory artifacts.
	if art.Prog == nil || art.PDG == nil || art.Plan == nil || art.DB == nil {
		t.Fatal("missing preparatory artifacts")
	}
	if art.Prog.NumInstrs() == 0 || len(art.Plan.Blocks) == 0 {
		t.Fatal("empty object code or e-block plan")
	}

	// Execution phase: g becomes 21, division by (21-21) fails at main.
	v := vm.New(art.Prog, vm.Options{Mode: vm.ModeLog})
	rerr := v.Run()
	if rerr == nil {
		t.Fatal("expected division by zero")
	}
	if v.Log == nil || v.Log.NumProcs() != 1 {
		t.Fatal("no logs")
	}

	// Debugging phase.
	c := FromRun(art, v)
	if c.Failure == nil {
		t.Fatal("controller lost the failure")
	}
	sum := c.Summary()
	if !strings.Contains(sum, "division by zero") {
		t.Errorf("summary = %s", sum)
	}
	g, idx, err := c.CurrentGraph(0)
	if err != nil {
		t.Fatalf("current graph: %v", err)
	}
	if idx < 0 || g.LastNode() == nil {
		t.Fatal("no focus graph")
	}
	// The failing statement's node exists and flowback from it reaches the
	// f sub-graph node.
	last := c.FocusNode(g, 0)
	if last.Stmt != c.Failure.Stmt {
		t.Errorf("focus node stmt = %d, want failing stmt %d", last.Stmt, c.Failure.Stmt)
	}
	frag := Flowback(g, last.ID, 5)
	foundF := false
	for _, n := range frag {
		if n.Kind == dynpdg.NodeSubGraph && n.Label == "f" {
			foundF = true
		}
	}
	if !foundF {
		t.Errorf("flowback from failure should reach f's sub-graph node:\n%s",
			RenderFragment(g, last.ID, 5))
	}
}

func TestFocusIntervalPrefersOpen(t *testing.T) {
	c := session(t, `
func ok() { print(1); }
func crash() { print(1 / 0); }
func main() {
	ok();
	crash();
}`, vm.Options{})
	idx, err := c.FocusInterval(0)
	if err != nil {
		t.Fatal(err)
	}
	rec := c.Log.Books[0].Records[idx]
	fn := c.Art.Prog.Funcs[c.Art.Prog.Blocks[rec.Block].FuncIdx]
	if fn.Name != "crash" {
		t.Errorf("focus = %s, want crash (the open interval)", fn.Name)
	}
}

func TestFocusIntervalCompletedRun(t *testing.T) {
	c := session(t, `
func f() { print(1); }
func main() { f(); }`, vm.Options{})
	idx, err := c.FocusInterval(0)
	if err != nil {
		t.Fatal(err)
	}
	if idx < 0 {
		t.Fatal("no focus for completed run")
	}
	if _, err := c.FocusInterval(5); err == nil {
		t.Error("expected error for bad pid")
	}
}

func TestGraphCaching(t *testing.T) {
	c := session(t, `func main() { var a = 1; var b = a + 1; }`, vm.Options{})
	g1, idx, err := c.CurrentGraph(0)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := c.Graph(0, idx)
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Error("graphs should be cached per interval")
	}
	if c.Result(0, idx) == nil {
		t.Error("emulation result should be cached")
	}
}

func TestCrossProcessResolution(t *testing.T) {
	// Main reads sv written by the worker; resolving the @pre node must
	// point at the worker's writing edge and its interval.
	src := `
shared sv;
sem done = 0;
func w() {
	sv = 77;
	V(done);
}
func main() {
	spawn w();
	P(done);
	var x = sv + 1;
	print(x);
}`
	c := session(t, src, vm.Options{Quantum: 1})
	g, idx, err := c.CurrentGraph(0)
	if err != nil {
		t.Fatal(err)
	}
	// Find the sv@pre node.
	var pre *dynpdg.Node
	for _, n := range g.Nodes {
		if n.Kind == dynpdg.NodeInitial && strings.HasPrefix(n.Label, "sv") {
			pre = n
		}
	}
	if pre == nil {
		t.Fatalf("no sv@pre node:\n%s", g)
	}
	gid := c.Art.Info.GlobalByName("sv").GlobalID
	ref := c.ResolveInitial(0, idx, gid)
	if ref == nil {
		t.Fatal("cross-process resolution failed")
	}
	if ref.PID != 1 {
		t.Errorf("writer pid = %d, want 1", ref.PID)
	}
	if ref.Racy {
		t.Error("ordered write reported racy")
	}
	if ref.PrelogIdx < 0 {
		t.Fatal("no writer interval")
	}
	// Emulate the writer's interval and confirm the write is there.
	wg, err := c.Graph(ref.PID, ref.PrelogIdx)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range wg.Nodes {
		if n.Label == "sv" && n.Value == 77 {
			found = true
		}
	}
	if !found {
		t.Errorf("writer graph lacks sv=77:\n%s", wg)
	}
}

func TestCrossProcessRacyResolution(t *testing.T) {
	src := `
shared sv;
sem done = 0;
func w1() { sv = 1; V(done); }
func w2() { sv = 2; V(done); }
func main() {
	spawn w1();
	spawn w2();
	P(done);
	P(done);
	print(sv);
}`
	c := session(t, src, vm.Options{Quantum: 1})
	_, idx, err := c.CurrentGraph(0)
	if err != nil {
		t.Fatal(err)
	}
	gid := c.Art.Info.GlobalByName("sv").GlobalID
	ref := c.ResolveInitial(0, idx, gid)
	if ref == nil {
		t.Fatal("no resolution")
	}
	// Hmm: both writes precede main's read *through the semaphore*, so the
	// read itself is ordered; but the two writers race with each other.
	// The races query must report it.
	if len(c.Races()) == 0 {
		t.Error("w1/w2 write/write race not detected")
	}
}

func TestRaceReportNames(t *testing.T) {
	c := session(t, `
shared counter;
sem done = 0;
func w() { counter = counter + 1; V(done); }
func main() { spawn w(); spawn w(); P(done); P(done); }`, vm.Options{Quantum: 1})
	rep := c.RaceReport()
	if !strings.Contains(rep, "counter") {
		t.Errorf("report must name the variable:\n%s", rep)
	}
}

func TestRenderFragment(t *testing.T) {
	c := session(t, `
func main() {
	var a = 2;
	var b = a * 3;
	var d = b - 6;
	var x = 10 / d;
}`, vm.Options{})
	g, _, err := c.CurrentGraph(0)
	if err != nil {
		t.Fatal(err)
	}
	last := g.LastNode()
	out := RenderFragment(g, last.ID, 3)
	for _, want := range []string{"[d]", "[b]", "[a]", "data"} {
		if !strings.Contains(out, want) {
			t.Errorf("fragment missing %q:\n%s", want, out)
		}
	}
}

func TestDeadlockSummary(t *testing.T) {
	c := session(t, `
sem s = 0;
func main() { P(s); }`, vm.Options{})
	if !c.Deadlock {
		t.Fatal("deadlock not recorded")
	}
	if !strings.Contains(c.Summary(), "deadlock") {
		t.Error("summary must mention deadlock")
	}
}
