package controller

import (
	"strings"
	"sync"
	"testing"

	"ppd/internal/compile"
	"ppd/internal/dynpdg"
	"ppd/internal/eblock"
	"ppd/internal/logging"
	"ppd/internal/obs"
	"ppd/internal/sched"
	"ppd/internal/vm"
)

func session(t *testing.T, src string, opts vm.Options) *Controller {
	t.Helper()
	art, err := compile.CompileSource("test.mpl", src, eblock.Config{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	opts.Mode = vm.ModeLog
	v := vm.New(art.Prog, opts)
	_ = v.Run()
	return FromRun(art, v)
}

func TestThreePhasePipeline(t *testing.T) {
	// E11: preparatory -> execution -> debugging, asserting each artifact.
	src := `
var g = 1;
func f(a int) int {
	g = g + a;
	return g * 2;
}
func main() {
	var r = f(20) / (g - 21);
	print(r);
}`
	art, err := compile.CompileSource("pipeline.mpl", src, eblock.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Preparatory artifacts.
	if art.Prog == nil || art.PDG == nil || art.Plan == nil || art.DB == nil {
		t.Fatal("missing preparatory artifacts")
	}
	if art.Prog.NumInstrs() == 0 || len(art.Plan.Blocks) == 0 {
		t.Fatal("empty object code or e-block plan")
	}

	// Execution phase: g becomes 21, division by (21-21) fails at main.
	v := vm.New(art.Prog, vm.Options{Mode: vm.ModeLog})
	rerr := v.Run()
	if rerr == nil {
		t.Fatal("expected division by zero")
	}
	if v.Log == nil || v.Log.NumProcs() != 1 {
		t.Fatal("no logs")
	}

	// Debugging phase.
	c := FromRun(art, v)
	if c.Failure == nil {
		t.Fatal("controller lost the failure")
	}
	sum := c.Summary()
	if !strings.Contains(sum, "division by zero") {
		t.Errorf("summary = %s", sum)
	}
	g, idx, err := c.CurrentGraph(0)
	if err != nil {
		t.Fatalf("current graph: %v", err)
	}
	if idx < 0 || g.LastNode() == nil {
		t.Fatal("no focus graph")
	}
	// The failing statement's node exists and flowback from it reaches the
	// f sub-graph node.
	last := c.FocusNode(g, 0)
	if last.Stmt != c.Failure.Stmt {
		t.Errorf("focus node stmt = %d, want failing stmt %d", last.Stmt, c.Failure.Stmt)
	}
	frag := Flowback(g, last.ID, 5)
	foundF := false
	for _, n := range frag {
		if n.Kind == dynpdg.NodeSubGraph && n.Label == "f" {
			foundF = true
		}
	}
	if !foundF {
		t.Errorf("flowback from failure should reach f's sub-graph node:\n%s",
			RenderFragment(g, last.ID, 5))
	}
}

func TestFocusIntervalPrefersOpen(t *testing.T) {
	c := session(t, `
func ok() { print(1); }
func crash() { print(1 / 0); }
func main() {
	ok();
	crash();
}`, vm.Options{})
	idx, err := c.FocusInterval(0)
	if err != nil {
		t.Fatal(err)
	}
	rec := c.Log.Books[0].Records[idx]
	fn := c.Art.Prog.Funcs[c.Art.Prog.Blocks[rec.Block].FuncIdx]
	if fn.Name != "crash" {
		t.Errorf("focus = %s, want crash (the open interval)", fn.Name)
	}
}

func TestFocusIntervalCompletedRun(t *testing.T) {
	c := session(t, `
func f() { print(1); }
func main() { f(); }`, vm.Options{})
	idx, err := c.FocusInterval(0)
	if err != nil {
		t.Fatal(err)
	}
	if idx < 0 {
		t.Fatal("no focus for completed run")
	}
	if _, err := c.FocusInterval(5); err == nil {
		t.Error("expected error for bad pid")
	}
}

func TestGraphCaching(t *testing.T) {
	c := session(t, `func main() { var a = 1; var b = a + 1; }`, vm.Options{})
	g1, idx, err := c.CurrentGraph(0)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := c.Graph(0, idx)
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Error("graphs should be cached per interval")
	}
	if c.Result(0, idx) == nil {
		t.Error("emulation result should be cached")
	}
}

func TestCrossProcessResolution(t *testing.T) {
	// Main reads sv written by the worker; resolving the @pre node must
	// point at the worker's writing edge and its interval.
	src := `
shared sv;
sem done = 0;
func w() {
	sv = 77;
	V(done);
}
func main() {
	spawn w();
	P(done);
	var x = sv + 1;
	print(x);
}`
	c := session(t, src, vm.Options{Quantum: 1})
	g, idx, err := c.CurrentGraph(0)
	if err != nil {
		t.Fatal(err)
	}
	// Find the sv@pre node.
	var pre *dynpdg.Node
	for _, n := range g.Nodes {
		if n.Kind == dynpdg.NodeInitial && strings.HasPrefix(n.Label, "sv") {
			pre = n
		}
	}
	if pre == nil {
		t.Fatalf("no sv@pre node:\n%s", g)
	}
	gid := c.Art.Info.GlobalByName("sv").GlobalID
	ref := c.ResolveInitial(0, idx, gid)
	if ref == nil {
		t.Fatal("cross-process resolution failed")
	}
	if ref.PID != 1 {
		t.Errorf("writer pid = %d, want 1", ref.PID)
	}
	if ref.Racy {
		t.Error("ordered write reported racy")
	}
	if ref.PrelogIdx < 0 {
		t.Fatal("no writer interval")
	}
	// Emulate the writer's interval and confirm the write is there.
	wg, err := c.Graph(ref.PID, ref.PrelogIdx)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range wg.Nodes {
		if n.Label == "sv" && n.Value == 77 {
			found = true
		}
	}
	if !found {
		t.Errorf("writer graph lacks sv=77:\n%s", wg)
	}
}

func TestCrossProcessRacyResolution(t *testing.T) {
	src := `
shared sv;
sem done = 0;
func w1() { sv = 1; V(done); }
func w2() { sv = 2; V(done); }
func main() {
	spawn w1();
	spawn w2();
	P(done);
	P(done);
	print(sv);
}`
	c := session(t, src, vm.Options{Quantum: 1})
	_, idx, err := c.CurrentGraph(0)
	if err != nil {
		t.Fatal(err)
	}
	gid := c.Art.Info.GlobalByName("sv").GlobalID
	ref := c.ResolveInitial(0, idx, gid)
	if ref == nil {
		t.Fatal("no resolution")
	}
	// Hmm: both writes precede main's read *through the semaphore*, so the
	// read itself is ordered; but the two writers race with each other.
	// The races query must report it.
	if len(c.Races()) == 0 {
		t.Error("w1/w2 write/write race not detected")
	}
}

func TestRaceReportNames(t *testing.T) {
	c := session(t, `
shared counter;
sem done = 0;
func w() { counter = counter + 1; V(done); }
func main() { spawn w(); spawn w(); P(done); P(done); }`, vm.Options{Quantum: 1})
	rep := c.RaceReport()
	if !strings.Contains(rep, "counter") {
		t.Errorf("report must name the variable:\n%s", rep)
	}
}

func TestRenderFragment(t *testing.T) {
	c := session(t, `
func main() {
	var a = 2;
	var b = a * 3;
	var d = b - 6;
	var x = 10 / d;
}`, vm.Options{})
	g, _, err := c.CurrentGraph(0)
	if err != nil {
		t.Fatal(err)
	}
	last := g.LastNode()
	out := RenderFragment(g, last.ID, 3)
	for _, want := range []string{"[d]", "[b]", "[a]", "data"} {
		if !strings.Contains(out, want) {
			t.Errorf("fragment missing %q:\n%s", want, out)
		}
	}
}

func TestDeadlockSummary(t *testing.T) {
	c := session(t, `
sem s = 0;
func main() { P(s); }`, vm.Options{})
	if !c.Deadlock {
		t.Fatal("deadlock not recorded")
	}
	if !strings.Contains(c.Summary(), "deadlock") {
		t.Error("summary must mention deadlock")
	}
}

// prelogs enumerates every prelog record index of a process's book.
func prelogs(c *Controller, pid int) []int {
	var out []int
	for i, r := range c.Log.Books[pid].Records {
		if r.Kind == logging.RecPrelog {
			out = append(out, i)
		}
	}
	return out
}

// TestGraphCacheSkipsReemulation proves the memoization contract: the
// second identical Graph query is served from the cache with zero VM
// re-executions, observed through the emulation hook counter.
func TestGraphCacheSkipsReemulation(t *testing.T) {
	c := session(t, `
func f(a int) int { return a * 2; }
func main() { print(f(21)); }`, vm.Options{})
	if c.Emulations() != 0 {
		t.Fatalf("fresh controller already emulated %d times", c.Emulations())
	}
	_, idx, err := c.CurrentGraph(0)
	if err != nil {
		t.Fatal(err)
	}
	after1 := c.Emulations()
	if after1 == 0 {
		t.Fatal("first Graph call must emulate")
	}
	g2, err := c.Graph(0, idx)
	if err != nil {
		t.Fatal(err)
	}
	if g2 == nil {
		t.Fatal("cached graph missing")
	}
	if got := c.Emulations(); got != after1 {
		t.Errorf("second Graph call re-emulated: counter %d -> %d", after1, got)
	}
	// Result and ResolveInitial ride the same cache: still no re-emulation.
	if c.Result(0, idx) == nil {
		t.Error("Result must hit the cache")
	}
	if got := c.Emulations(); got != after1 {
		t.Errorf("Result re-emulated: counter %d -> %d", after1, got)
	}
}

// TestCacheLRUEviction bounds the cache at one entry and alternates between
// two intervals: each switch must evict the other entry and re-emulate,
// while repeated queries of the resident entry must not.
func TestCacheLRUEviction(t *testing.T) {
	c := session(t, `
func f() { print(1); }
func g() { print(2); }
func main() { f(); g(); }`, vm.Options{})
	idxs := prelogs(c, 0)
	if len(idxs) < 3 {
		t.Fatalf("want >=3 intervals (main, f, g), got %d", len(idxs))
	}
	c.SetCacheBound(1)

	a, b := idxs[1], idxs[2]
	if _, err := c.Graph(0, a); err != nil {
		t.Fatal(err)
	}
	n1 := c.Emulations()
	if _, err := c.Graph(0, a); err != nil {
		t.Fatal(err)
	}
	if c.Emulations() != n1 {
		t.Fatal("resident entry re-emulated")
	}
	if _, err := c.Graph(0, b); err != nil { // evicts a
		t.Fatal(err)
	}
	n2 := c.Emulations()
	if n2 == n1 {
		t.Fatal("miss on b did not emulate")
	}
	if c.Result(0, a) != nil {
		t.Error("a should have been evicted by the bound of 1")
	}
	if _, err := c.Graph(0, a); err != nil { // a must be rebuilt
		t.Fatal(err)
	}
	if c.Emulations() == n2 {
		t.Error("evicted entry served without re-emulation")
	}

	// Raising the bound keeps both resident again.
	c.SetCacheBound(8)
	if _, err := c.Graph(0, a); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Graph(0, b); err != nil {
		t.Fatal(err)
	}
	n3 := c.Emulations()
	if _, err := c.Graph(0, a); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Graph(0, b); err != nil {
		t.Fatal(err)
	}
	if c.Emulations() != n3 {
		t.Error("bound of 8 must hold both intervals")
	}
}

// TestPrefetchNeighborsWarmsCache prefetches around the focus interval and
// then checks the sibling/cross-process queries are all cache hits.
func TestPrefetchNeighborsWarmsCache(t *testing.T) {
	src := `
shared sv;
sem done = 0;
func w() {
	sv = 77;
	V(done);
}
func main() {
	spawn w();
	P(done);
	var x = sv + 1;
	print(x);
}`
	c := session(t, src, vm.Options{Quantum: 1})
	_, idx, err := c.CurrentGraph(0)
	if err != nil {
		t.Fatal(err)
	}
	c.PrefetchNeighbors(0, idx)
	warm := c.Emulations()

	// The cross-process writer interval must now be resident: resolving and
	// fetching its graph re-emulates nothing.
	gid := c.Art.Info.GlobalByName("sv").GlobalID
	ref := c.ResolveInitial(0, idx, gid)
	if ref == nil {
		t.Fatal("cross-process resolution failed")
	}
	if _, err := c.Graph(ref.PID, ref.PrelogIdx); err != nil {
		t.Fatal(err)
	}
	if got := c.Emulations(); got != warm {
		t.Errorf("writer interval not prefetched: counter %d -> %d", warm, got)
	}
}

// TestRacesMemoized proves the detector runs once per controller.
func TestRacesMemoized(t *testing.T) {
	c := session(t, `
shared counter;
sem done = 0;
func w() { counter = counter + 1; V(done); }
func main() { spawn w(); spawn w(); P(done); P(done); }`, vm.Options{Quantum: 1})
	r1 := c.Races()
	if len(r1) == 0 {
		t.Fatal("expected races")
	}
	r2 := c.Races()
	if len(r1) != len(r2) {
		t.Fatalf("memoized race set changed size: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatal("memoized Races must return the same race objects")
		}
	}
}

// TestConcurrentQueriesAreSafe hammers the controller from several
// goroutines (run under -race in CI's check target).
func TestConcurrentQueriesAreSafe(t *testing.T) {
	src := `
shared sv;
sem done = 0;
func w() { sv = 5; V(done); }
func main() {
	spawn w();
	P(done);
	print(sv);
}`
	c := session(t, src, vm.Options{Quantum: 1})
	idxs0 := prelogs(c, 0)
	var wg sync.WaitGroup
	for k := 0; k < 8; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				idx := idxs0[(k+rep)%len(idxs0)]
				if _, err := c.Graph(0, idx); err != nil {
					t.Errorf("Graph: %v", err)
				}
				c.PrefetchNeighbors(0, idx)
				c.Races()
				c.Result(0, idx)
			}
		}(k)
	}
	wg.Wait()
}

// sessionConfig is session with an explicit Config.
func sessionConfig(t *testing.T, src string, opts vm.Options, cfg Config) *Controller {
	t.Helper()
	art, err := compile.CompileSource("test.mpl", src, eblock.Config{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	opts.Mode = vm.ModeLog
	v := vm.New(art.Prog, opts)
	_ = v.Run()
	return FromRunConfig(art, v, cfg)
}

// prelogIndices lists the record indices of every prelog in pid's book.
func prelogIndices(c *Controller, pid int) []int {
	var out []int
	for i, r := range c.Log.Books[pid].Records {
		if r.Kind == logging.RecPrelog {
			out = append(out, i)
		}
	}
	return out
}

const multiIntervalSrc = `
var g;
func f() { g = g + 1; }
func main() { f(); f(); f(); print(g); }`

func TestConfigCacheCountersAndEvictions(t *testing.T) {
	sink := obs.New()
	c := sessionConfig(t, multiIntervalSrc, vm.Options{}, Config{CacheBound: 1, Obs: sink})
	idxs := prelogIndices(c, 0)
	if len(idxs) < 3 {
		t.Fatalf("need >= 3 intervals, got %d", len(idxs))
	}
	// Bound 1: each distinct interval misses and evicts its predecessor.
	for _, idx := range idxs[:3] {
		if _, err := c.Graph(0, idx); err != nil {
			t.Fatal(err)
		}
	}
	// Re-querying the most recent interval hits; an older one misses again.
	if _, err := c.Graph(0, idxs[2]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Graph(0, idxs[0]); err != nil {
		t.Fatal(err)
	}
	snap := sink.Snapshot()
	if got := snap.Counter("debug.cache.hits"); got != 1 {
		t.Errorf("debug.cache.hits = %d, want 1", got)
	}
	if got := snap.Counter("debug.cache.misses"); got != 4 {
		t.Errorf("debug.cache.misses = %d, want 4", got)
	}
	if got := snap.Counter("debug.cache.evictions"); got != 3 {
		t.Errorf("debug.cache.evictions = %d, want 3", got)
	}
	if got, want := snap.Timer("debug.emulate").Count, snap.Counter("debug.cache.misses"); got != want {
		t.Errorf("debug.emulate count = %d, want one per miss (%d)", got, want)
	}
	if snap.Timer("debug.build").Count != 1 {
		t.Error("debug.build scope not observed")
	}
}

func TestConfigUnboundedCacheNeverEvicts(t *testing.T) {
	sink := obs.New()
	c := sessionConfig(t, multiIntervalSrc, vm.Options{}, Config{CacheBound: -1, Obs: sink})
	for _, idx := range prelogIndices(c, 0) {
		if _, err := c.Graph(0, idx); err != nil {
			t.Fatal(err)
		}
	}
	if got := sink.Snapshot().Counter("debug.cache.evictions"); got != 0 {
		t.Errorf("debug.cache.evictions = %d, want 0 (unbounded)", got)
	}
	if c.cache.len() != len(prelogIndices(c, 0)) {
		t.Errorf("cache len = %d, want every interval retained", c.cache.len())
	}
}

func TestSetCacheBoundCountsEvictions(t *testing.T) {
	sink := obs.New()
	c := sessionConfig(t, multiIntervalSrc, vm.Options{}, Config{CacheBound: -1, Obs: sink})
	idxs := prelogIndices(c, 0)
	for _, idx := range idxs {
		if _, err := c.Graph(0, idx); err != nil {
			t.Fatal(err)
		}
	}
	c.SetCacheBound(1)
	if got, want := sink.Snapshot().Counter("debug.cache.evictions"), int64(len(idxs)-1); got != want {
		t.Errorf("debug.cache.evictions after SetCacheBound(1) = %d, want %d", got, want)
	}
}

func TestConfigWorkersSelectsPrivatePool(t *testing.T) {
	c := sessionConfig(t, multiIntervalSrc, vm.Options{}, Config{Workers: 3})
	if c.pool == sched.Shared() {
		t.Error("Workers > 0 must not use the shared pool")
	}
	if c.pool.Workers() != 3 {
		t.Errorf("pool workers = %d, want 3", c.pool.Workers())
	}
	// Zero config uses the shared pool (the historical default).
	c2 := sessionConfig(t, multiIntervalSrc, vm.Options{}, Config{})
	if c2.pool != sched.Shared() {
		t.Error("zero Config must keep the shared pool")
	}
}

func TestNewCompatEqualsZeroConfig(t *testing.T) {
	src := multiIntervalSrc
	art, err := compile.CompileSource("test.mpl", src, eblock.Config{})
	if err != nil {
		t.Fatal(err)
	}
	v := vm.New(art.Prog, vm.Options{Mode: vm.ModeLog})
	_ = v.Run()
	a := New(art, v.Log, v.Failure, v.Deadlock)
	b := NewWithConfig(art, v.Log, Config{Failure: v.Failure, Deadlock: v.Deadlock})
	if a.Summary() != b.Summary() {
		t.Errorf("summaries diverge:\n%s\nvs\n%s", a.Summary(), b.Summary())
	}
	if a.RaceReport() != b.RaceReport() {
		t.Errorf("race reports diverge")
	}
}

func TestRacesRunsDetectorOnce(t *testing.T) {
	src := `
shared counter;
sem done = 0;
func w() { counter = counter + 1; V(done); }
func main() { spawn w(); spawn w(); P(done); P(done); }`
	sink := obs.New()
	c := sessionConfig(t, src, vm.Options{Quantum: 1}, Config{Obs: sink})
	r1 := c.Races()
	r2 := c.Races()
	if len(r1) == 0 {
		t.Fatal("expected races")
	}
	if &r1[0] != &r2[0] {
		t.Error("repeated Races() returned a different slice (not memoized)")
	}
	if got := sink.Snapshot().Counter("race.runs"); got != 1 {
		t.Errorf("race.runs = %d, want 1 (detector must run once)", got)
	}
}
