package controller

import (
	"container/list"

	"ppd/internal/dynpdg"
	"ppd/internal/emulation"
)

// intervalEntry is everything the controller memoizes per emulated
// interval: the dynamic graph and the emulation result it was built from.
type intervalEntry struct {
	graph *dynpdg.Graph
	res   *emulation.Result
}

// intervalLRU is a bounded least-recently-used cache of interval entries
// keyed by (pid, prelogIdx). The log is immutable after the run, so there
// is no invalidation — the bound exists only to cap memory when a session
// wanders across many intervals (each entry holds a full trace and graph).
// Callers synchronize externally (the controller holds its mutex).
type intervalLRU struct {
	cap   int        // <= 0 means unbounded
	order *list.List // front = most recently used
	items map[[2]int]*list.Element
}

type lruSlot struct {
	key [2]int
	ent *intervalEntry
}

func newIntervalLRU(capacity int) *intervalLRU {
	return &intervalLRU{cap: capacity, order: list.New(), items: make(map[[2]int]*list.Element)}
}

// get returns the entry for key, promoting it to most-recently-used.
func (c *intervalLRU) get(key [2]int) (*intervalEntry, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruSlot).ent, true
}

// add inserts an entry, evicting the least-recently-used entries beyond
// the capacity bound. It returns how many entries were evicted.
func (c *intervalLRU) add(key [2]int, ent *intervalEntry) int {
	if el, ok := c.items[key]; ok {
		el.Value.(*lruSlot).ent = ent
		c.order.MoveToFront(el)
		return 0
	}
	c.items[key] = c.order.PushFront(&lruSlot{key: key, ent: ent})
	return c.evict()
}

func (c *intervalLRU) evict() int {
	if c.cap <= 0 {
		return 0
	}
	n := 0
	for c.order.Len() > c.cap {
		el := c.order.Back()
		delete(c.items, el.Value.(*lruSlot).key)
		c.order.Remove(el)
		n++
	}
	return n
}

// setCap changes the bound, evicting immediately if the cache is over it.
// It returns how many entries were evicted.
func (c *intervalLRU) setCap(capacity int) int {
	c.cap = capacity
	return c.evict()
}

// drop empties the cache unconditionally (the bound is unchanged) and
// returns how many entries were released.
func (c *intervalLRU) drop() int {
	n := c.order.Len()
	c.order.Init()
	clear(c.items)
	return n
}

func (c *intervalLRU) len() int { return c.order.Len() }
