package controller

import (
	"fmt"
	"sort"

	"ppd/internal/logging"
	"ppd/internal/replay"
)

// DefaultCheckpointEvery is the default record spacing between ReplayTo
// state checkpoints. At K = 64 a checkpoint costs one shallow copy of the
// global fold state per 64 records, and any restore folds at most 63
// records past its seed — the sweet spot in the E22 sweep (BENCH_debug).
const DefaultCheckpointEvery = 64

// ckpt is one restoration checkpoint: the postlog fold state as of record
// index upTo (exclusive). The value elements alias the log's records —
// records are immutable post-run, and both the fold and the final snapshot
// assign whole elements, so sharing is safe; only the snapshot handed to
// the caller is cloned (same contract as replay.RestoreAt).
type ckpt struct {
	upTo    int
	globals []logging.Value
}

// ReplayTo rebuilds process pid's global state as of record index idx
// (exclusive), like replay.RestoreAt, but seeded from the nearest
// checkpoint at or below idx: once a prefix has been folded, any restore
// into it costs O(CheckpointEvery) record folds instead of O(idx).
// Checkpoints encountered while folding are stored for later queries, so a
// drive-to-fault scan (restore at 1, 2, 3, ...) is linear in the log, not
// quadratic. idx is clamped to [0, len(records)].
func (c *Controller) ReplayTo(pid, idx int) (*replay.Snapshot, error) {
	if pid < 0 || pid >= len(c.Log.Books) {
		return nil, fmt.Errorf("controller: no process %d", pid)
	}
	book := c.Log.Books[pid]
	if idx < 0 {
		idx = 0
	}
	if idx > len(book.Records) {
		idx = len(book.Records)
	}
	if c.ckEvery <= 0 {
		return replay.RestoreAt(c.Art.Prog, book, idx), nil
	}

	// Seed from the greatest stored checkpoint at or below idx.
	var globals []logging.Value
	start := 0
	c.ckMu.Lock()
	cks := c.ckpts[pid]
	if j := sort.Search(len(cks), func(i int) bool { return cks[i].upTo > idx }) - 1; j >= 0 {
		globals = append([]logging.Value(nil), cks[j].globals...)
		start = cks[j].upTo
	}
	c.ckMu.Unlock()
	if globals == nil {
		globals = replay.InitialGlobals(c.Art.Prog)
	} else {
		c.cCkHits.Inc()
	}

	// Fold the remaining records exactly as replay.RestoreAt does (by
	// reference; the final snapshot clones), snapshotting the fold state
	// at each checkpoint boundary crossed.
	var fresh []ckpt
	for i, r := range book.Records[start:idx] {
		switch r.Kind {
		case logging.RecPostlog, logging.RecShPrelog, logging.RecPrelog:
			for gid, val := range r.Globals.All() {
				globals[gid] = val
			}
		}
		if b := start + i + 1; b%c.ckEvery == 0 {
			fresh = append(fresh, ckpt{upTo: b, globals: append([]logging.Value(nil), globals...)})
		}
	}
	if len(fresh) > 0 {
		c.ckMu.Lock()
		cks := c.ckpts[pid]
		for _, ck := range fresh {
			pos := sort.Search(len(cks), func(i int) bool { return cks[i].upTo >= ck.upTo })
			if pos < len(cks) && cks[pos].upTo == ck.upTo {
				continue // another query got here first
			}
			cks = append(cks, ckpt{})
			copy(cks[pos+1:], cks[pos:])
			cks[pos] = ck
			c.cCkStores.Inc()
		}
		c.ckpts[pid] = cks
		c.ckMu.Unlock()
	}

	s := &replay.Snapshot{Globals: globals, UpTo: idx}
	for gid := range s.Globals {
		s.Globals[gid] = s.Globals[gid].Clone()
	}
	return s, nil
}
