package controller

import (
	"fmt"
	"testing"

	"ppd/internal/compile"
	"ppd/internal/eblock"
	"ppd/internal/obs"
	"ppd/internal/replay"
	"ppd/internal/vm"
	"ppd/internal/workloads"
)

func replayToFixture(t *testing.T, cfg Config) (*Controller, *compile.Artifacts, *vm.VM) {
	t.Helper()
	wl := workloads.ProdCons(60)
	art, err := compile.CompileSource(wl.Name, wl.Src, eblock.DefaultConfig())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	v := vm.New(art.Prog, vm.Options{Mode: vm.ModeLog, Seed: 1, Quantum: 7})
	_ = v.Run()
	cfg.Failure = v.Failure
	cfg.Deadlock = v.Deadlock
	return NewWithConfig(art, v.Log, cfg), art, v
}

func diffSnapshots(t *testing.T, ctx string, got, want *replay.Snapshot) {
	t.Helper()
	if got.UpTo != want.UpTo {
		t.Errorf("%s: UpTo = %d, want %d", ctx, got.UpTo, want.UpTo)
	}
	if g, w := fmt.Sprintf("%v", got.Globals), fmt.Sprintf("%v", want.Globals); g != w {
		t.Errorf("%s: globals diverge\ngot:  %s\nwant: %s", ctx, g, w)
	}
}

// TestReplayToMatchesRestoreAt sweeps every record boundary of every
// process, ascending, with a tiny checkpoint spacing: the checkpointed
// restore must equal the from-scratch fold at each one.
func TestReplayToMatchesRestoreAt(t *testing.T) {
	c, art, v := replayToFixture(t, Config{CheckpointEvery: 3})
	for pid, book := range v.Log.Books {
		for idx := 0; idx <= len(book.Records); idx++ {
			got, err := c.ReplayTo(pid, idx)
			if err != nil {
				t.Fatalf("pid %d idx %d: %v", pid, idx, err)
			}
			diffSnapshots(t, fmt.Sprintf("pid %d idx %d", pid, idx),
				got, replay.RestoreAt(art.Prog, book, idx))
		}
	}
}

// TestReplayToOutOfOrder queries boundaries in descending and scattered
// order on a fresh controller, so restores hit cold, partially warm, and
// fully warm checkpoint states.
func TestReplayToOutOfOrder(t *testing.T) {
	c, art, v := replayToFixture(t, Config{CheckpointEvery: 4})
	for pid, book := range v.Log.Books {
		n := len(book.Records)
		order := []int{n, n / 2, n - 1, 1, n / 3, n / 2, 0, n}
		for _, idx := range order {
			if idx < 0 {
				continue
			}
			got, err := c.ReplayTo(pid, idx)
			if err != nil {
				t.Fatalf("pid %d idx %d: %v", pid, idx, err)
			}
			diffSnapshots(t, fmt.Sprintf("pid %d idx %d", pid, idx),
				got, replay.RestoreAt(art.Prog, book, idx))
		}
	}
}

// TestReplayToEdges pins clamping, the disabled mode, and bad pids.
func TestReplayToEdges(t *testing.T) {
	c, art, v := replayToFixture(t, Config{CheckpointEvery: -1}) // disabled
	book := v.Log.Books[0]
	got, err := c.ReplayTo(0, len(book.Records)+5) // clamped
	if err != nil {
		t.Fatal(err)
	}
	diffSnapshots(t, "clamped", got, replay.RestoreAt(art.Prog, book, len(book.Records)))
	got, err = c.ReplayTo(0, -3) // clamped to 0
	if err != nil {
		t.Fatal(err)
	}
	diffSnapshots(t, "negative", got, replay.RestoreAt(art.Prog, book, 0))
	if _, err := c.ReplayTo(99, 0); err == nil {
		t.Error("bad pid accepted")
	}
}

// TestReplayToCounters proves checkpoints are actually stored and hit, and
// that the emulation pool's counters reach the controller's sink.
func TestReplayToCounters(t *testing.T) {
	sink := obs.New()
	c, _, v := replayToFixture(t, Config{CheckpointEvery: 4, Obs: sink})
	book := v.Log.Books[0]
	n := len(book.Records)
	for idx := 0; idx <= n; idx++ {
		if _, err := c.ReplayTo(0, idx); err != nil {
			t.Fatal(err)
		}
	}
	if got := sink.Counter("debug.emu.ckpt.stores").Value(); got != int64(n/4) {
		t.Errorf("ckpt stores = %d, want %d", got, n/4)
	}
	if got := sink.Counter("debug.emu.ckpt.hits").Value(); got == 0 {
		t.Error("no checkpoint hits in an ascending sweep")
	}

	// An interval query routes through the shared pool: dispatch counters
	// must land in the same sink.
	if idx, err := c.FocusInterval(0); err == nil {
		if _, err := c.Graph(0, idx); err != nil {
			t.Fatal(err)
		}
	}
	if got := sink.Counter("debug.emu.dispatch.fast").Value(); got == 0 {
		t.Error("no fast dispatches recorded through the controller's pool")
	}
}
