package dataflow

import (
	"testing"

	"ppd/internal/ast"
	"ppd/internal/bitset"
	"ppd/internal/cfg"
	"ppd/internal/parser"
	"ppd/internal/sem"
	"ppd/internal/source"
)

func setup(t *testing.T, src, fn string) (*Space, *cfg.Graph, map[ast.StmtID]*UseDef, *sem.Info) {
	t.Helper()
	errs := &source.ErrorList{}
	prog := parser.ParseString("test.mpl", src, errs)
	info := sem.Check(prog, errs)
	if errs.ErrCount() != 0 {
		t.Fatalf("front-end errors:\n%v", errs.Err())
	}
	fi := info.Funcs[fn]
	space := NewSpace(info, fi)
	uds := ComputeUseDef(space)
	g := cfg.Build(fi)
	return space, g, uds, info
}

// names converts a space-set to sorted variable names for assertions.
func names(space *Space, ud interface{ Elems() []int }) []string {
	var out []string
	for _, i := range ud.Elems() {
		out = append(out, space.Name(i))
	}
	return out
}

func eqStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func findStmt(t *testing.T, info *sem.Info, fn, summary string) ast.StmtID {
	t.Helper()
	for _, s := range ast.Stmts(info.Funcs[fn].Decl.Body) {
		if ast.StmtString(s) == summary {
			return s.ID()
		}
	}
	t.Fatalf("no stmt %q in %s", summary, fn)
	return ast.NoStmt
}

func TestUseDefAssign(t *testing.T) {
	src := `
var g;
func main() {
	var a = 1;
	var b = a + g;
	a = b * 2;
}`
	space, _, uds, info := setup(t, src, "main")
	id := findStmt(t, info, "main", "var b = a+g")
	ud := uds[id]
	if got := names(space, ud.Use); !eqStrings(got, []string{"a", "g"}) {
		t.Errorf("use = %v, want [a g]", got)
	}
	if got := names(space, ud.Def); !eqStrings(got, []string{"b"}) {
		t.Errorf("def = %v, want [b]", got)
	}
	if !ud.Kill.Equal(ud.Def) {
		t.Error("scalar assignment must kill")
	}
}

func TestUseDefArray(t *testing.T) {
	src := `
shared arr[4];
func main() {
	var i = 1;
	arr[i] = i + 1;
	var x = arr[0];
}`
	space, _, uds, info := setup(t, src, "main")
	id := findStmt(t, info, "main", "arr[i]=i+1")
	ud := uds[id]
	if got := names(space, ud.Use); !eqStrings(got, []string{"i", "arr"}) {
		t.Errorf("use = %v, want [i arr]", got)
	}
	if got := names(space, ud.Def); !eqStrings(got, []string{"arr"}) {
		t.Errorf("def = %v, want [arr]", got)
	}
	if !ud.Kill.IsEmpty() {
		t.Error("array element write must not kill the array")
	}
}

func TestUseDefControlPredicates(t *testing.T) {
	src := `
func main() {
	var a = 1;
	if (a > 0) { a = 2; }
	while (a < 5) { a = a + 1; }
}`
	space, _, uds, info := setup(t, src, "main")
	ifID := findStmt(t, info, "main", "if (a>0)")
	if got := names(space, uds[ifID].Use); !eqStrings(got, []string{"a"}) {
		t.Errorf("if use = %v", got)
	}
	if !uds[ifID].Def.IsEmpty() {
		t.Error("if must not define")
	}
}

func TestUseDefCallsRecorded(t *testing.T) {
	src := `
func f(x int) int { return x; }
func main() {
	var a = f(1) + f(2);
}`
	_, _, uds, info := setup(t, src, "main")
	id := findStmt(t, info, "main", "var a = f(1)+f(2)")
	if got := len(uds[id].Calls); got != 2 {
		t.Errorf("calls = %d, want 2", got)
	}
}

func TestRecvHasNoLocalUse(t *testing.T) {
	src := `
chan c;
func main() {
	var v = recv(c);
}`
	_, _, uds, info := setup(t, src, "main")
	id := findStmt(t, info, "main", "var v = recv(c)")
	if !uds[id].Use.IsEmpty() {
		t.Error("recv should contribute no intra-process use")
	}
}

func TestReachingStraightLine(t *testing.T) {
	src := `
func main() {
	var a = 1;
	var b = a;
	a = 2;
	var c = a;
}`
	space, g, uds, info := setup(t, src, "main")
	r := ComputeReaching(space, g, uds)

	aIdx := -1
	for i := 0; i < space.Size(); i++ {
		if space.Name(i) == "a" {
			aIdx = i
		}
	}
	if aIdx < 0 {
		t.Fatal("no variable a")
	}
	// At "var c = a", only the def at "a = 2" reaches.
	cNode := g.NodeFor(findStmt(t, info, "main", "var c = a"))
	defs := r.ReachingDefsOf(cNode, aIdx)
	if len(defs) != 1 {
		t.Fatalf("reaching defs of a = %v, want 1", defs)
	}
	defNode := g.Nodes[defs[0].Node]
	if got := ast.StmtString(defNode.Stmt); got != "a=2" {
		t.Errorf("reaching def = %q, want a=2", got)
	}
	// At "var b = a", the def at "var a = 1" reaches.
	bNode := g.NodeFor(findStmt(t, info, "main", "var b = a"))
	defs = r.ReachingDefsOf(bNode, aIdx)
	if len(defs) != 1 || ast.StmtString(g.Nodes[defs[0].Node].Stmt) != "var a = 1" {
		t.Errorf("reaching def at b = %v", defs)
	}
}

func TestReachingThroughBranch(t *testing.T) {
	src := `
func main() {
	var a = 1;
	if (a > 0) { a = 2; } else { a = 3; }
	var c = a;
}`
	space, g, uds, info := setup(t, src, "main")
	r := ComputeReaching(space, g, uds)
	aIdx := 0 // slot 0 is 'a' (first local)
	if space.Name(aIdx) != "a" {
		t.Fatal("slot 0 not a")
	}
	cNode := g.NodeFor(findStmt(t, info, "main", "var c = a"))
	defs := r.ReachingDefsOf(cNode, aIdx)
	got := map[string]bool{}
	for _, d := range defs {
		got[ast.StmtString(g.Nodes[d.Node].Stmt)] = true
	}
	if len(defs) != 2 || !got["a=2"] || !got["a=3"] {
		t.Errorf("reaching defs = %v, want {a=2, a=3}", got)
	}
}

func TestReachingLoopCarried(t *testing.T) {
	src := `
func main() {
	var s = 0;
	var i = 0;
	while (i < 3) {
		s = s + i;
		i = i + 1;
	}
	print(s);
}`
	space, g, uds, info := setup(t, src, "main")
	r := ComputeReaching(space, g, uds)
	sIdx := 0
	if space.Name(sIdx) != "s" {
		t.Fatal("slot 0 not s")
	}
	// Inside the loop, "s = s + i" sees both the initial def and its own
	// loop-carried def.
	bodyNode := g.NodeFor(findStmt(t, info, "main", "s=s+i"))
	defs := r.ReachingDefsOf(bodyNode, sIdx)
	if len(defs) != 2 {
		t.Errorf("loop-carried reaching defs = %d, want 2 (%v)", len(defs), defs)
	}
}

func TestEntryDefinesParamsAndGlobals(t *testing.T) {
	src := `
var g = 5;
func f(p int) int {
	return p + g;
}
func main() { var x = f(1); }`
	space, g1, uds, info := setup(t, src, "f")
	r := ComputeReaching(space, g1, uds)
	retNode := g1.NodeFor(findStmt(t, info, "f", "return p+g"))
	for _, name := range []string{"p", "g"} {
		idx := -1
		for i := 0; i < space.Size(); i++ {
			if space.Name(i) == name {
				idx = i
			}
		}
		defs := r.ReachingDefsOf(retNode, idx)
		if len(defs) != 1 || defs[0].Node != cfg.EntryNode {
			t.Errorf("%s: defs = %v, want [ENTRY]", name, defs)
		}
	}
}

func TestCallEffectsWiden(t *testing.T) {
	src := `
var g;
func setg(v int) { g = v; }
func main() {
	setg(3);
	var x = g;
}`
	errs := &source.ErrorList{}
	prog := parser.ParseString("t.mpl", src, errs)
	info := sem.Check(prog, errs)
	if errs.ErrCount() != 0 {
		t.Fatal(errs.Err())
	}
	space := NewSpace(info, info.Funcs["main"])
	uds := ComputeUseDef(space)

	gid := info.GlobalByName("g").GlobalID
	callID := findStmt(t, info, "main", "setg(3)")
	if uds[callID].Def.Has(space.GlobalIndex(gid)) {
		t.Fatal("direct def should not include callee effect yet")
	}
	defined := bitset.New(info.NumGlobals())
	defined.Add(gid)
	ApplyCallEffects(space, uds, func(callee string) (*bitset.Set, *bitset.Set) {
		if callee == "setg" {
			return bitset.New(info.NumGlobals()), defined
		}
		return nil, nil
	})
	if !uds[callID].Def.Has(space.GlobalIndex(gid)) {
		t.Error("call effect not folded into def set")
	}
	if uds[callID].Kill.Has(space.GlobalIndex(gid)) {
		t.Error("callee may-def must not kill")
	}
}

func TestDefUseChains(t *testing.T) {
	src := `
func main() {
	var a = 1;
	var b = a + a;
}`
	space, g, uds, _ := setup(t, src, "main")
	r := ComputeReaching(space, g, uds)
	chains := r.DefUseChains()
	// b's node uses a exactly once in the chain list (dedup by def site).
	count := 0
	for _, c := range chains {
		if space.Name(c.Var) == "a" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("a def-use edges = %d, want 1", count)
	}
}

func TestLivenessStraightLine(t *testing.T) {
	src := `
func main() {
	var a = 1;
	var b = a + 1;
	print(b);
	var c = 5;
}`
	space, g, uds, info := setup(t, src, "main")
	lv := ComputeLiveness(space, g, uds)
	aIdx, bIdx, cIdx := 0, 1, 2
	if space.Name(aIdx) != "a" || space.Name(bIdx) != "b" || space.Name(cIdx) != "c" {
		t.Fatal("slot layout unexpected")
	}
	// After "var a = 1", a is live (b reads it).
	aNode := g.NodeFor(findStmt(t, info, "main", "var a = 1"))
	if !lv.LiveAfter(aNode).Has(aIdx) {
		t.Error("a should be live after its definition")
	}
	// After "print(b)", b is dead.
	pNode := g.NodeFor(findStmt(t, info, "main", "print(b)"))
	if lv.LiveAfter(pNode).Has(bIdx) {
		t.Error("b should be dead after its last use")
	}
	// c is never read: dead even right after its def.
	cNode := g.NodeFor(findStmt(t, info, "main", "var c = 5"))
	if lv.LiveAfter(cNode).Has(cIdx) {
		t.Error("unused c should be dead")
	}
}

func TestLivenessLoopCarried(t *testing.T) {
	src := `
func main() {
	var s = 0;
	var i = 0;
	while (i < 3) {
		s = s + i;
		i = i + 1;
	}
	print(s);
}`
	space, g, uds, info := setup(t, src, "main")
	lv := ComputeLiveness(space, g, uds)
	sIdx, iIdx := 0, 1
	_ = space
	// Inside the loop, both s and i are live at the body statement.
	body := g.NodeFor(findStmt(t, info, "main", "s=s+i"))
	if !lv.LiveBefore(body).Has(sIdx) || !lv.LiveBefore(body).Has(iIdx) {
		t.Error("loop-carried variables should be live in the body")
	}
	// After the loop (at print), i is dead, s live.
	pNode := g.NodeFor(findStmt(t, info, "main", "print(s)"))
	if lv.LiveBefore(pNode).Has(iIdx) {
		t.Error("i should be dead after the loop")
	}
	if !lv.LiveBefore(pNode).Has(sIdx) {
		t.Error("s should be live at print")
	}
}
