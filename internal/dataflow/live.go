package dataflow

import (
	"ppd/internal/ast"
	"ppd/internal/bitset"
	"ppd/internal/cfg"
)

// Liveness is the result of live-variable analysis: for each CFG node, the
// variables whose current values may still be read on some path onward.
//
// PPD uses it to trim loop e-block postlogs (§5.4's sizing concern): a
// local the loop defines but nothing reads afterwards need not be logged —
// substitution of the loop's postlog only has to restore values the
// continuation can observe.
type Liveness struct {
	Space *Space
	Graph *cfg.Graph

	// In[n] = live before n executes; Out[n] = live after.
	In  []*bitset.Set
	Out []*bitset.Set
}

// ComputeLiveness runs the standard backward may-analysis over the
// statement-level CFG with the given UseDef facts.
func ComputeLiveness(space *Space, g *cfg.Graph, uds map[ast.StmtID]*UseDef) *Liveness {
	n := len(g.Nodes)
	lv := &Liveness{
		Space: space,
		Graph: g,
		In:    make([]*bitset.Set, n),
		Out:   make([]*bitset.Set, n),
	}
	for i := 0; i < n; i++ {
		lv.In[i] = space.NewSet()
		lv.Out[i] = space.NewSet()
	}

	use := func(id cfg.NodeID) *bitset.Set {
		if st := g.Nodes[id].Stmt; st != nil {
			if ud, ok := uds[st.ID()]; ok {
				return ud.Use
			}
		}
		return nil
	}
	// A node's strong kills: only definite (killing) defs remove liveness;
	// may-defs (array element writes, callee effects) do not.
	kill := func(id cfg.NodeID) *bitset.Set {
		if st := g.Nodes[id].Stmt; st != nil {
			if ud, ok := uds[st.ID()]; ok {
				return ud.Kill
			}
		}
		return nil
	}

	changed := true
	tmp := space.NewSet()
	for changed {
		changed = false
		// Reverse iteration converges faster for a backward analysis.
		for i := n - 1; i >= 0; i-- {
			node := g.Nodes[i]
			out := lv.Out[i]
			for _, s := range node.Succs {
				out.UnionWith(lv.In[s])
			}
			tmp.Copy(out)
			if k := kill(node.ID); k != nil {
				tmp.DifferenceWith(k)
			}
			if u := use(node.ID); u != nil {
				tmp.UnionWith(u)
			}
			if !tmp.Equal(lv.In[i]) {
				lv.In[i].Copy(tmp)
				changed = true
			}
		}
	}
	return lv
}

// LiveAfter returns the variables live immediately after node n.
func (lv *Liveness) LiveAfter(n cfg.NodeID) *bitset.Set { return lv.Out[n] }

// LiveBefore returns the variables live immediately before node n.
func (lv *Liveness) LiveBefore(n cfg.NodeID) *bitset.Set { return lv.In[n] }
