package dataflow

import (
	"ppd/internal/ast"
	"ppd/internal/bitset"
	"ppd/internal/cfg"
)

// DefSite is one definition point: CFG node n defining variable v (space
// index). The ENTRY node defines every parameter and every global,
// representing the values flowing in at function entry — exactly what the
// paper's prelog captures.
type DefSite struct {
	Node cfg.NodeID
	Var  int
}

// Reaching is the result of reaching-definition analysis for one function.
type Reaching struct {
	Space *Space
	Graph *cfg.Graph
	Sites []DefSite // dense site numbering

	siteOf map[DefSite]int
	// defsOfVar[v] = bitset over sites that define v (used for kills).
	defsOfVar []*bitset.Set

	In  []*bitset.Set // per node, over sites
	Out []*bitset.Set

	UD map[ast.StmtID]*UseDef
}

// ComputeReaching runs reaching definitions over the function's CFG, with
// the given per-statement UseDef facts (already widened by call effects if
// interprocedural precision is wanted).
func ComputeReaching(space *Space, g *cfg.Graph, uds map[ast.StmtID]*UseDef) *Reaching {
	r := &Reaching{
		Space:  space,
		Graph:  g,
		siteOf: make(map[DefSite]int),
		UD:     uds,
	}

	// Enumerate def sites. ENTRY defines params and globals.
	addSite := func(n cfg.NodeID, v int) {
		ds := DefSite{Node: n, Var: v}
		if _, ok := r.siteOf[ds]; ok {
			return
		}
		r.siteOf[ds] = len(r.Sites)
		r.Sites = append(r.Sites, ds)
	}
	for _, p := range space.Fn.Params {
		addSite(cfg.EntryNode, space.Index(p))
	}
	for gid := 0; gid < space.Info.NumGlobals(); gid++ {
		addSite(cfg.EntryNode, space.GlobalIndex(gid))
	}
	for _, n := range g.Nodes {
		if n.Stmt == nil {
			continue
		}
		ud := uds[n.Stmt.ID()]
		if ud == nil {
			continue
		}
		ud.Def.ForEach(func(v int) { addSite(n.ID, v) })
	}

	nSites := len(r.Sites)
	r.defsOfVar = make([]*bitset.Set, space.Size())
	for v := range r.defsOfVar {
		r.defsOfVar[v] = bitset.New(nSites)
	}
	for i, ds := range r.Sites {
		r.defsOfVar[ds.Var].Add(i)
	}

	// GEN and KILL per node.
	gen := make([]*bitset.Set, len(g.Nodes))
	kill := make([]*bitset.Set, len(g.Nodes))
	for i := range g.Nodes {
		gen[i] = bitset.New(nSites)
		kill[i] = bitset.New(nSites)
	}
	// ENTRY generates its sites.
	for _, p := range space.Fn.Params {
		gen[cfg.EntryNode].Add(r.siteOf[DefSite{cfg.EntryNode, space.Index(p)}])
	}
	for gid := 0; gid < space.Info.NumGlobals(); gid++ {
		gen[cfg.EntryNode].Add(r.siteOf[DefSite{cfg.EntryNode, space.GlobalIndex(gid)}])
	}
	for _, n := range g.Nodes {
		if n.Stmt == nil {
			continue
		}
		ud := uds[n.Stmt.ID()]
		if ud == nil {
			continue
		}
		ud.Def.ForEach(func(v int) {
			gen[n.ID].Add(r.siteOf[DefSite{n.ID, v}])
		})
		ud.Kill.ForEach(func(v int) {
			k := kill[n.ID]
			k.UnionWith(r.defsOfVar[v])
			// A statement does not kill its own definition.
			k.Remove(r.siteOf[DefSite{n.ID, v}])
		})
	}

	// Iterative fixpoint, forward, union confluence.
	r.In = make([]*bitset.Set, len(g.Nodes))
	r.Out = make([]*bitset.Set, len(g.Nodes))
	for i := range g.Nodes {
		r.In[i] = bitset.New(nSites)
		r.Out[i] = bitset.New(nSites)
	}
	changed := true
	tmp := bitset.New(nSites)
	for changed {
		changed = false
		for _, n := range g.Nodes {
			in := r.In[n.ID]
			for _, p := range n.Preds {
				in.UnionWith(r.Out[p])
			}
			tmp.Copy(in)
			tmp.DifferenceWith(kill[n.ID])
			tmp.UnionWith(gen[n.ID])
			if !tmp.Equal(r.Out[n.ID]) {
				r.Out[n.ID].Copy(tmp)
				changed = true
			}
		}
	}
	return r
}

// ReachingDefsOf returns the definition sites of variable v that reach node
// n (i.e. may supply the value a use of v at n observes).
func (r *Reaching) ReachingDefsOf(n cfg.NodeID, v int) []DefSite {
	var out []DefSite
	in := r.In[n]
	r.defsOfVar[v].ForEach(func(site int) {
		if in.Has(site) {
			out = append(out, r.Sites[site])
		}
	})
	return out
}

// DUEdge is one def-use chain link: the definition at Def reaches the use of
// Var at the Use node.
type DUEdge struct {
	Def DefSite
	Use cfg.NodeID
	Var int
}

// DefUseChains materializes all def-use edges of the function. These become
// the data-dependence edges of the static PDG.
func (r *Reaching) DefUseChains() []DUEdge {
	var out []DUEdge
	for _, n := range r.Graph.Nodes {
		if n.Stmt == nil {
			continue
		}
		ud := r.UD[n.Stmt.ID()]
		if ud == nil {
			continue
		}
		ud.Use.ForEach(func(v int) {
			for _, ds := range r.ReachingDefsOf(n.ID, v) {
				out = append(out, DUEdge{Def: ds, Use: n.ID, Var: v})
			}
		})
	}
	return out
}
