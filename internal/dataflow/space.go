// Package dataflow implements the classic analyses the paper leans on
// (§1: "data flow analysis commonly used in optimizing compilers"):
// per-statement USE/DEF sets, reaching definitions, and def-use chains,
// all over bitsets.
//
// Each function gets a variable Space combining its frame slots with the
// program's globals, so one bitset index identifies any variable the
// function can touch. Array elements are folded into their array (the
// standard conservative treatment; the paper's §7 leaves finer aliasing to
// future work).
package dataflow

import (
	"ppd/internal/bitset"
	"ppd/internal/sem"
)

// Space is the variable index space of one function: local slots first
// (0..NumSlots-1), then all globals (NumSlots..NumSlots+NumGlobals-1).
// Semaphores and channels occupy global indices but never appear in USE/DEF
// sets; keeping the numbering uniform lets every analysis share one space.
type Space struct {
	Fn   *sem.FuncInfo
	Info *sem.Info
}

// NewSpace returns the variable space of fn.
func NewSpace(info *sem.Info, fn *sem.FuncInfo) *Space {
	return &Space{Fn: fn, Info: info}
}

// Size returns the number of variable indices.
func (s *Space) Size() int { return s.Fn.NumSlots + s.Info.NumGlobals() }

// Index returns the space index of a resolved symbol, or -1 if the symbol is
// not a variable in this function's space.
func (s *Space) Index(sym *sem.Symbol) int {
	switch sym.Kind {
	case sem.SymParam, sem.SymLocal:
		return sym.Slot
	case sem.SymGlobal, sem.SymSem, sem.SymChan:
		return s.Fn.NumSlots + sym.GlobalID
	}
	return -1
}

// GlobalIndex returns the space index of the global with the given ID.
func (s *Space) GlobalIndex(globalID int) int { return s.Fn.NumSlots + globalID }

// IsGlobal reports whether idx refers to a global.
func (s *Space) IsGlobal(idx int) bool { return idx >= s.Fn.NumSlots }

// GlobalID returns the GlobalID for a global index (panics semantics-free:
// callers must check IsGlobal first).
func (s *Space) GlobalID(idx int) int { return idx - s.Fn.NumSlots }

// Symbol returns the symbol at a space index.
func (s *Space) Symbol(idx int) *sem.Symbol {
	if s.IsGlobal(idx) {
		return s.Info.Globals[s.GlobalID(idx)]
	}
	return s.Fn.Locals[idx]
}

// Name returns the variable name at a space index.
func (s *Space) Name(idx int) string { return s.Symbol(idx).Name }

// NewSet returns an empty bitset sized to the space.
func (s *Space) NewSet() *bitset.Set { return bitset.New(s.Size()) }

// GlobalsOnly extracts the global portion of a space-set as a set over
// GlobalIDs (used when publishing USED/DEFINED sets interprocedurally).
func (s *Space) GlobalsOnly(set *bitset.Set) *bitset.Set {
	out := bitset.New(s.Info.NumGlobals())
	set.ForEach(func(i int) {
		if s.IsGlobal(i) {
			out.Add(s.GlobalID(i))
		}
	})
	return out
}

// InjectGlobals adds a GlobalID-set into a space-set.
func (s *Space) InjectGlobals(dst *bitset.Set, globals *bitset.Set) {
	globals.ForEach(func(g int) { dst.Add(s.GlobalIndex(g)) })
}
