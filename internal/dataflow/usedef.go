package dataflow

import (
	"ppd/internal/ast"
	"ppd/internal/bitset"
	"ppd/internal/sem"
	"ppd/internal/token"
)

// UseDef holds the per-statement variable effects used by reaching
// definitions and by the static PDG.
type UseDef struct {
	Use *bitset.Set // variables whose value may be read
	Def *bitset.Set // variables that may be written
	// Kill marks definite (strong) definitions: a scalar assignment kills
	// prior definitions of the same variable; array-element writes and
	// callee may-writes do not.
	Kill *bitset.Set
	// Calls lists the functions invoked anywhere in the statement, in
	// evaluation order. Their interprocedural effects are folded in by
	// ApplyCallEffects.
	Calls []string
}

// CallEffects supplies the interprocedural USED/DEFINED global sets of a
// callee (over GlobalIDs). Provided by package interproc; nil means calls
// are treated as having no global effects.
type CallEffects func(callee string) (used, defined *bitset.Set)

// ComputeUseDef builds the direct (intraprocedural) UseDef for every
// statement of the function, keyed by StmtID.
func ComputeUseDef(space *Space) map[ast.StmtID]*UseDef {
	out := make(map[ast.StmtID]*UseDef)
	c := &udCollector{space: space, out: out}
	c.block(space.Fn.Decl.Body)
	return out
}

type udCollector struct {
	space *Space
	out   map[ast.StmtID]*UseDef
}

func (c *udCollector) fresh(id ast.StmtID) *UseDef {
	ud := &UseDef{
		Use:  c.space.NewSet(),
		Def:  c.space.NewSet(),
		Kill: c.space.NewSet(),
	}
	c.out[id] = ud
	return ud
}

func (c *udCollector) block(b *ast.BlockStmt) {
	for _, s := range b.List {
		c.stmt(s)
	}
}

func (c *udCollector) stmt(s ast.Stmt) {
	if s == nil {
		return
	}
	switch s := s.(type) {
	case *ast.VarDeclStmt:
		ud := c.fresh(s.ID())
		if s.Init != nil {
			c.expr(ud, s.Init)
		}
		if sym := c.space.Info.Uses[s.Name]; sym != nil {
			idx := c.space.Index(sym)
			ud.Def.Add(idx)
			ud.Kill.Add(idx)
		}

	case *ast.AssignStmt:
		ud := c.fresh(s.ID())
		c.expr(ud, s.RHS)
		sym := c.space.Info.Uses[s.LHS]
		if sym == nil {
			return
		}
		idx := c.space.Index(sym)
		if s.Index != nil {
			c.expr(ud, s.Index)
			// a[i] = x: may-def of a, no kill, and the untouched elements
			// survive, so the array is also a use.
			ud.Def.Add(idx)
			ud.Use.Add(idx)
		} else {
			ud.Def.Add(idx)
			ud.Kill.Add(idx)
		}

	case *ast.IfStmt:
		ud := c.fresh(s.ID())
		c.expr(ud, s.Cond)
		c.block(s.Then)
		if s.Else != nil {
			c.stmt(s.Else)
		}

	case *ast.WhileStmt:
		ud := c.fresh(s.ID())
		c.expr(ud, s.Cond)
		c.block(s.Body)

	case *ast.ForStmt:
		ud := c.fresh(s.ID())
		if s.Init != nil {
			c.stmt(s.Init)
		}
		if s.Cond != nil {
			c.expr(ud, s.Cond)
		}
		if s.Post != nil {
			c.stmt(s.Post)
		}
		c.block(s.Body)

	case *ast.ReturnStmt:
		ud := c.fresh(s.ID())
		if s.Result != nil {
			c.expr(ud, s.Result)
		}

	case *ast.BreakStmt:
		c.fresh(s.ID())
	case *ast.ContinueStmt:
		c.fresh(s.ID())

	case *ast.SpawnStmt:
		ud := c.fresh(s.ID())
		for _, a := range s.Call.Args {
			c.expr(ud, a)
		}
		// The spawned function runs in another process; its effects are not
		// local data flow. (Cross-process flow is the parallel graph's job.)

	case *ast.SemStmt:
		c.fresh(s.ID())

	case *ast.SendStmt:
		ud := c.fresh(s.ID())
		c.expr(ud, s.Value)

	case *ast.ExprStmt:
		ud := c.fresh(s.ID())
		c.expr(ud, s.X)

	case *ast.PrintStmt:
		ud := c.fresh(s.ID())
		for _, a := range s.Args {
			c.expr(ud, a)
		}

	case *ast.BlockStmt:
		c.block(s)
	}
}

func (c *udCollector) expr(ud *UseDef, e ast.Expr) {
	switch e := e.(type) {
	case *ast.Ident:
		if sym := c.space.Info.Uses[e]; sym != nil {
			if idx := c.space.Index(sym); idx >= 0 && sym.Kind != sem.SymFunc &&
				sym.Kind != sem.SymSem && sym.Kind != sem.SymChan {
				ud.Use.Add(idx)
			}
		}
	case *ast.IndexExpr:
		if sym := c.space.Info.Uses[e.X]; sym != nil {
			if idx := c.space.Index(sym); idx >= 0 {
				ud.Use.Add(idx)
			}
		}
		c.expr(ud, e.Index)
	case *ast.UnaryExpr:
		c.expr(ud, e.X)
	case *ast.BinaryExpr:
		c.expr(ud, e.X)
		c.expr(ud, e.Y)
	case *ast.CallExpr:
		for _, a := range e.Args {
			c.expr(ud, a)
		}
		ud.Calls = append(ud.Calls, e.Fun.Name)
	case *ast.RecvExpr:
		// The received value arrives from another process; no local use.
	case *ast.ParenExpr:
		c.expr(ud, e.X)
	case *ast.IntLit, *ast.BoolLit, *ast.StringLit:
	}
}

// unaryOK silences the unused-import guard for token in case the switch
// above changes; SemStmt ops are not data effects.
var _ = token.ACQUIRE

// ApplyCallEffects folds each callee's interprocedural USED/DEFINED global
// sets into the direct UseDef sets. Callee may-writes define but do not
// kill.
func ApplyCallEffects(space *Space, uds map[ast.StmtID]*UseDef, effects CallEffects) {
	if effects == nil {
		return
	}
	for _, ud := range uds {
		for _, callee := range ud.Calls {
			used, defined := effects(callee)
			if used != nil {
				space.InjectGlobals(ud.Use, used)
			}
			if defined != nil {
				space.InjectGlobals(ud.Def, defined)
			}
		}
	}
}
