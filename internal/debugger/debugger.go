// Package debugger provides PPD's interactive debugging-phase front end: a
// textual REPL over the Controller. It is the stand-in for the graphical
// interface the paper defers to future work (§7) — the mechanism underneath
// (incremental tracing, flowback navigation, race queries, what-if
// restarts) is the paper's.
package debugger

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"ppd/internal/ast"
	"ppd/internal/bytecode"
	"ppd/internal/controller"
	"ppd/internal/dynpdg"
	"ppd/internal/logging"
	"ppd/internal/replay"
)

// Session is one interactive debugging session.
type Session struct {
	C *controller.Controller

	pid      int
	interval int // current prelog record index
	graph    *dynpdg.Graph
	focus    dynpdg.NodeID
}

// New starts a session focused on the halted process (or process 0).
func New(c *controller.Controller) (*Session, error) {
	s := &Session{C: c}
	if c.Failure != nil {
		s.pid = c.Failure.PID
	}
	if err := s.refocus(s.pid); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Session) refocus(pid int) error {
	g, idx, err := s.C.CurrentGraph(pid)
	if err != nil {
		return err
	}
	s.pid = pid
	s.interval = idx
	s.graph = g
	if n := s.C.FocusNode(g, pid); n != nil {
		s.focus = n.ID
	}
	return nil
}

// Run reads commands from in and writes responses to out until quit/EOF.
func (s *Session) Run(in io.Reader, out io.Writer) error {
	fmt.Fprint(out, s.C.Summary())
	fmt.Fprintf(out, "focused on process %d; type 'help' for commands\n", s.pid)
	sc := bufio.NewScanner(in)
	for {
		fmt.Fprintf(out, "(ppd) ")
		if !sc.Scan() {
			fmt.Fprintln(out)
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		cmd, args := fields[0], fields[1:]
		if cmd == "quit" || cmd == "q" || cmd == "exit" {
			return nil
		}
		s.dispatch(out, cmd, args)
	}
}

// Exec runs a single command (used by tests and scripting).
func (s *Session) Exec(out io.Writer, line string) {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) == 0 {
		return
	}
	s.dispatch(out, fields[0], fields[1:])
}

func (s *Session) dispatch(out io.Writer, cmd string, args []string) {
	switch cmd {
	case "help", "h":
		s.cmdHelp(out)
	case "summary":
		fmt.Fprint(out, s.C.Summary())
	case "procs":
		s.cmdProcs(out)
	case "where":
		s.cmdWhere(out)
	case "focus":
		s.cmdFocus(out, args)
	case "graph", "g":
		s.cmdGraph(out, args)
	case "flowback", "fb":
		s.cmdFlowback(out, args)
	case "node", "n":
		s.cmdNode(out, args)
	case "intervals":
		s.cmdIntervals(out, args)
	case "emulate":
		s.cmdEmulate(out, args)
	case "stmt":
		s.cmdStmt(out, args)
	case "defs":
		s.cmdDefs(out, args)
	case "races":
		fmt.Fprint(out, s.C.RaceReport())
	case "deadlock":
		fmt.Fprint(out, s.C.DeadlockReport())
	case "resolve":
		s.cmdResolve(out, args)
	case "whatif":
		s.cmdWhatIf(out, args)
	case "log":
		s.cmdLog(out, args)
	case "dot":
		fmt.Fprint(out, s.graph.DOT(len(args) > 0 && args[0] == "flow"))
	default:
		fmt.Fprintf(out, "unknown command %q; try 'help'\n", cmd)
	}
}

func (s *Session) cmdHelp(out io.Writer) {
	fmt.Fprint(out, `commands:
  summary              how the execution ended
  procs                list processes
  where                how and where each process stopped
  focus <pid>          switch to another process
  graph [depth]        show the dependence fragment at the focus node
  flowback <node> [d]  walk dependences backward from a node
  node <id>            node details with all incident edges
  intervals [func]     list e-block intervals of the focused process
  emulate <recidx>     switch focus to another interval (incremental tracing)
  stmt <id>            statement info from the program database
  defs <name>          statements that may define a variable
  races                run race detection (Def 6.4)
  deadlock             analyze blocked processes (§6)
  resolve <global>     cross-process origin of a shared value (§6.3)
  whatif <var>=<val>   re-run the interval with a changed value (§5.7)
  log [pid]            dump log records
  dot [flow]           emit the current graph as Graphviz DOT
  quit
`)
}

func (s *Session) cmdWhere(out io.Writer) {
	for pid, book := range s.C.Log.Books {
		fmt.Fprintf(out, "P%d: ", pid)
		if book.Len() == 0 {
			fmt.Fprintln(out, "no records")
			continue
		}
		last := book.Records[book.Len()-1]
		if last.Kind != logging.RecExit {
			fmt.Fprintln(out, "still inside an interval (no exit record)")
			continue
		}
		where := ""
		if si := s.C.Art.DB.Stmt(last.Stmt); si != nil {
			where = fmt.Sprintf(" at %s line %d: %s", si.Func, si.Pos.Line, si.Text)
		}
		switch last.Value {
		case logging.ExitClean:
			fmt.Fprintf(out, "exited cleanly\n")
		case logging.ExitBlockedSem:
			fmt.Fprintf(out, "blocked on P(%s)%s\n", s.C.Art.Prog.Globals[last.Obj].Name, where)
		case logging.ExitBlockedSend:
			fmt.Fprintf(out, "blocked sending on %s%s\n", s.C.Art.Prog.Globals[last.Obj].Name, where)
		case logging.ExitBlockedRecv:
			fmt.Fprintf(out, "blocked receiving on %s%s\n", s.C.Art.Prog.Globals[last.Obj].Name, where)
		case logging.ExitBreak:
			fmt.Fprintf(out, "halted at breakpoint%s\n", where)
		case logging.ExitFailed:
			fmt.Fprintf(out, "failed%s\n", where)
		}
	}
}

func (s *Session) cmdProcs(out io.Writer) {
	for pid, book := range s.C.Log.Books {
		n := 0
		for _, r := range book.Records {
			if r.Kind == logging.RecPrelog {
				n++
			}
		}
		marker := " "
		if pid == s.pid {
			marker = "*"
		}
		fail := ""
		if s.C.Failure != nil && s.C.Failure.PID == pid {
			fail = "  [failed]"
		}
		fmt.Fprintf(out, "%s P%d: %d record(s), %d interval(s)%s\n",
			marker, pid, book.Len(), n, fail)
	}
}

func (s *Session) cmdFocus(out io.Writer, args []string) {
	if len(args) != 1 {
		fmt.Fprintln(out, "usage: focus <pid>")
		return
	}
	pid, err := strconv.Atoi(args[0])
	if err != nil || pid < 0 || pid >= s.C.NumProcs() {
		fmt.Fprintf(out, "no process %q\n", args[0])
		return
	}
	if err := s.refocus(pid); err != nil {
		fmt.Fprintf(out, "focus: %v\n", err)
		return
	}
	fmt.Fprintf(out, "focused on process %d, interval at record %d\n", s.pid, s.interval)
}

func (s *Session) cmdGraph(out io.Writer, args []string) {
	depth := 3
	if len(args) > 0 {
		if d, err := strconv.Atoi(args[0]); err == nil {
			depth = d
		}
	}
	fmt.Fprint(out, controller.RenderFragment(s.graph, s.focus, depth))
}

func (s *Session) cmdFlowback(out io.Writer, args []string) {
	if len(args) < 1 {
		fmt.Fprintln(out, "usage: flowback <node> [depth]")
		return
	}
	id, err := s.parseNode(args[0])
	if err != nil {
		fmt.Fprintln(out, err)
		return
	}
	depth := 3
	if len(args) > 1 {
		if d, err := strconv.Atoi(args[1]); err == nil {
			depth = d
		}
	}
	fmt.Fprint(out, controller.RenderFragment(s.graph, id, depth))
}

func (s *Session) parseNode(arg string) (dynpdg.NodeID, error) {
	arg = strings.TrimPrefix(arg, "n")
	id, err := strconv.Atoi(arg)
	if err != nil || id < 0 || id >= len(s.graph.Nodes) {
		return 0, fmt.Errorf("no node %q (graph has %d nodes)", arg, len(s.graph.Nodes))
	}
	return dynpdg.NodeID(id), nil
}

func (s *Session) cmdNode(out io.Writer, args []string) {
	if len(args) != 1 {
		fmt.Fprintln(out, "usage: node <id>")
		return
	}
	id, err := s.parseNode(args[0])
	if err != nil {
		fmt.Fprintln(out, err)
		return
	}
	n := s.graph.Nodes[id]
	fmt.Fprintf(out, "n%d kind=%s label=%s", n.ID, n.Kind, n.Label)
	if n.Stmt != ast.NoStmt {
		if si := s.C.Art.DB.Stmt(n.Stmt); si != nil {
			fmt.Fprintf(out, " at %s line %d: %s", si.Func, si.Pos.Line, si.Text)
		}
	}
	if n.HasValue {
		fmt.Fprintf(out, " value=%d", n.Value)
	}
	fmt.Fprintln(out)
	for _, e := range s.graph.Incoming(id) {
		fmt.Fprintf(out, "  <- %s from n%d [%s]\n", e.Kind, e.From, s.graph.Nodes[e.From].Label)
	}
	for _, e := range s.graph.Outgoing(id) {
		fmt.Fprintf(out, "  -> %s to n%d [%s]\n", e.Kind, e.To, s.graph.Nodes[e.To].Label)
	}
}

func (s *Session) cmdIntervals(out io.Writer, args []string) {
	book := s.C.Log.Books[s.pid]
	for ri, r := range book.Records {
		if r.Kind != logging.RecPrelog {
			continue
		}
		meta := s.C.Art.Prog.Blocks[r.Block]
		fn := s.C.Art.Prog.Funcs[meta.FuncIdx]
		if len(args) > 0 && fn.Name != args[0] {
			continue
		}
		kind := "func"
		if meta.Kind == bytecode.BlockLoop {
			kind = "loop"
		}
		marker := " "
		if ri == s.interval {
			marker = "*"
		}
		fmt.Fprintf(out, "%s record %d: %s e-block of %s\n", marker, ri, kind, fn.Name)
	}
}

func (s *Session) cmdEmulate(out io.Writer, args []string) {
	if len(args) != 1 {
		fmt.Fprintln(out, "usage: emulate <record-index>")
		return
	}
	idx, err := strconv.Atoi(args[0])
	if err != nil {
		fmt.Fprintf(out, "bad index %q\n", args[0])
		return
	}
	g, err := s.C.Graph(s.pid, idx)
	if err != nil {
		fmt.Fprintf(out, "emulate: %v\n", err)
		return
	}
	s.interval = idx
	s.graph = g
	if n := s.C.FocusNode(g, s.pid); n != nil {
		s.focus = n.ID
	}
	fmt.Fprintf(out, "emulated interval at record %d (%d nodes)\n", idx, len(g.Nodes))
}

func (s *Session) cmdStmt(out io.Writer, args []string) {
	if len(args) != 1 {
		fmt.Fprintln(out, "usage: stmt <id>")
		return
	}
	id, err := strconv.Atoi(strings.TrimPrefix(args[0], "s"))
	if err != nil {
		fmt.Fprintf(out, "bad statement id %q\n", args[0])
		return
	}
	si := s.C.Art.DB.Stmt(ast.StmtID(id))
	if si == nil {
		fmt.Fprintf(out, "no statement s%d\n", id)
		return
	}
	fmt.Fprintf(out, "s%d in %s at line %d: %s\n", si.ID, si.Func, si.Pos.Line, si.Text)
	if len(si.Calls) > 0 {
		fmt.Fprintf(out, "  calls: %s\n", strings.Join(si.Calls, ", "))
	}
	for _, n := range s.graph.NodesForStmt(ast.StmtID(id)) {
		fmt.Fprintf(out, "  instance n%d [%s]\n", n.ID, n.Label)
	}
}

func (s *Session) cmdDefs(out io.Writer, args []string) {
	if len(args) != 1 {
		fmt.Fprintln(out, "usage: defs <name>")
		return
	}
	fnName := s.graph.Fn
	ids := s.C.Art.DB.DefsOf(fnName, args[0])
	if len(ids) == 0 {
		fmt.Fprintf(out, "no definitions of %q\n", args[0])
		return
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		si := s.C.Art.DB.Stmt(id)
		fmt.Fprintf(out, "  s%d %s line %d: %s\n", id, si.Func, si.Pos.Line, si.Text)
	}
}

func (s *Session) cmdResolve(out io.Writer, args []string) {
	if len(args) != 1 {
		fmt.Fprintln(out, "usage: resolve <global-name>")
		return
	}
	sym := s.C.Art.Info.GlobalByName(args[0])
	if sym == nil {
		fmt.Fprintf(out, "no global %q\n", args[0])
		return
	}
	ref := s.C.ResolveInitial(s.pid, s.interval, sym.GlobalID)
	if ref == nil {
		fmt.Fprintf(out, "%s's value predates the interval: initialization or own writes only\n", args[0])
		return
	}
	fmt.Fprintf(out, "%s was last written by process %d (events %d..%d)\n",
		args[0], ref.PID, ref.Edge.Start, ref.Edge.End)
	if ref.Racy {
		fmt.Fprintf(out, "WARNING: %d unordered writer(s) exist — the value is racy\n", len(ref.RacyWith))
	}
	if ref.PrelogIdx >= 0 {
		fmt.Fprintf(out, "inspect with: focus %d; emulate %d\n", ref.PID, ref.PrelogIdx)
	}
}

func (s *Session) cmdWhatIf(out io.Writer, args []string) {
	if len(args) != 1 || !strings.Contains(args[0], "=") {
		fmt.Fprintln(out, "usage: whatif <global>=<value>")
		return
	}
	parts := strings.SplitN(args[0], "=", 2)
	name := parts[0]
	val, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		fmt.Fprintf(out, "bad value %q\n", parts[1])
		return
	}
	sym := s.C.Art.Info.GlobalByName(name)
	if sym == nil {
		fmt.Fprintf(out, "no global %q (what-if currently targets globals)\n", name)
		return
	}
	res, err := replay.WhatIf(s.C.Art.Prog, s.C.Log.Books[s.pid], s.interval,
		[]replay.Override{{Slot: -1, Global: sym.GlobalID, Value: val}})
	if err != nil {
		fmt.Fprintf(out, "whatif: %v\n", err)
		return
	}
	if len(res.ChangedGlobals) == 0 {
		fmt.Fprintln(out, "no change in the interval's final global state")
	} else {
		for _, gid := range res.ChangedGlobals {
			fmt.Fprintf(out, "%s: %s -> %s\n", s.C.Art.Prog.Globals[gid].Name,
				res.Original.Globals[gid], res.Modified.Globals[gid])
		}
	}
	switch {
	case res.Original.Err != nil && res.Modified.Err == nil:
		fmt.Fprintln(out, "the original failure DISAPPEARS with this change")
	case res.Original.Err == nil && res.Modified.Err != nil:
		fmt.Fprintf(out, "the change introduces a failure: %v\n", res.Modified.Err)
	}
}

func (s *Session) cmdLog(out io.Writer, args []string) {
	pid := s.pid
	if len(args) > 0 {
		if p, err := strconv.Atoi(args[0]); err == nil && p >= 0 && p < s.C.NumProcs() {
			pid = p
		}
	}
	for ri, r := range s.C.Log.Books[pid].Records {
		fmt.Fprintf(out, "%4d: %s\n", ri, r)
	}
}
