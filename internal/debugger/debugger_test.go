package debugger

import (
	"bytes"
	"strings"
	"testing"

	"ppd/internal/compile"
	"ppd/internal/controller"
	"ppd/internal/eblock"
	"ppd/internal/vm"
)

func startSession(t *testing.T, src string, opts vm.Options) *Session {
	t.Helper()
	art, err := compile.CompileSource("test.mpl", src, eblock.Config{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	opts.Mode = vm.ModeLog
	v := vm.New(art.Prog, opts)
	_ = v.Run()
	s, err := New(controller.FromRun(art, v))
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	return s
}

const crashSrc = `
var g = 1;
func f(a int) int {
	g = g + a;
	return g * 2;
}
func main() {
	var r = f(20) / (g - 21);
	print(r);
}`

func exec(s *Session, cmd string) string {
	var out bytes.Buffer
	s.Exec(&out, cmd)
	return out.String()
}

func TestSessionBasicCommands(t *testing.T) {
	s := startSession(t, crashSrc, vm.Options{})

	if got := exec(s, "summary"); !strings.Contains(got, "division by zero") {
		t.Errorf("summary = %s", got)
	}
	if got := exec(s, "procs"); !strings.Contains(got, "P0") || !strings.Contains(got, "[failed]") {
		t.Errorf("procs = %s", got)
	}
	if got := exec(s, "graph 4"); !strings.Contains(got, "data") {
		t.Errorf("graph = %s", got)
	}
	if got := exec(s, "help"); !strings.Contains(got, "flowback") {
		t.Errorf("help = %s", got)
	}
	if got := exec(s, "races"); !strings.Contains(got, "race-free") {
		t.Errorf("races = %s", got)
	}
	if got := exec(s, "bogus"); !strings.Contains(got, "unknown command") {
		t.Errorf("bogus = %s", got)
	}
}

func TestSessionIntervalNavigation(t *testing.T) {
	s := startSession(t, crashSrc, vm.Options{})
	got := exec(s, "intervals")
	if !strings.Contains(got, "func e-block of main") || !strings.Contains(got, "func e-block of f") {
		t.Errorf("intervals = %s", got)
	}
	// Find f's record index from the listing and emulate it.
	var fIdx string
	for _, line := range strings.Split(got, "\n") {
		if strings.Contains(line, "of f") {
			fields := strings.Fields(line)
			for i, fld := range fields {
				if fld == "record" {
					fIdx = strings.TrimSuffix(fields[i+1], ":")
				}
			}
		}
	}
	if fIdx == "" {
		t.Fatalf("no f interval in %s", got)
	}
	got = exec(s, "emulate "+fIdx)
	if !strings.Contains(got, "emulated interval") {
		t.Errorf("emulate = %s", got)
	}
	got = exec(s, "graph 3")
	if !strings.Contains(got, "[g]") {
		t.Errorf("f's graph should show g's assignment: %s", got)
	}
}

func TestSessionStmtAndDefs(t *testing.T) {
	s := startSession(t, crashSrc, vm.Options{})
	got := exec(s, "stmt 1")
	if !strings.Contains(got, "g=g+a") {
		t.Errorf("stmt = %s", got)
	}
	got = exec(s, "defs g")
	if !strings.Contains(got, "g=g+a") {
		t.Errorf("defs = %s", got)
	}
	if got := exec(s, "defs nosuch"); !strings.Contains(got, "no definitions") {
		t.Errorf("defs nosuch = %s", got)
	}
}

func TestSessionWhatIf(t *testing.T) {
	s := startSession(t, crashSrc, vm.Options{})
	// Focus interval is main's (open). Overriding g to 100 avoids the zero
	// divisor: 121-21=100... wait g starts 1, f makes it 21, divisor 0.
	// Override the *prelog* g to 5: f makes it 25, divisor 4 -> no failure.
	got := exec(s, "whatif g=5")
	if !strings.Contains(got, "DISAPPEARS") {
		t.Errorf("whatif = %s", got)
	}
	if got := exec(s, "whatif nosuch=1"); !strings.Contains(got, "no global") {
		t.Errorf("whatif nosuch = %s", got)
	}
}

func TestSessionResolveCrossProcess(t *testing.T) {
	s := startSession(t, `
shared sv;
sem done = 0;
func w() { sv = 9; V(done); }
func main() {
	spawn w();
	P(done);
	print(sv / (sv - 9));
}`, vm.Options{Quantum: 1})
	got := exec(s, "resolve sv")
	if !strings.Contains(got, "written by process 1") {
		t.Errorf("resolve = %s", got)
	}
	// Follow the hint: focus 1.
	got = exec(s, "focus 1")
	if !strings.Contains(got, "focused on process 1") {
		t.Errorf("focus = %s", got)
	}
	if got = exec(s, "intervals"); !strings.Contains(got, "of w") {
		t.Errorf("intervals = %s", got)
	}
	// The writer's log shows its postlog carrying sv's new value.
	if got = exec(s, "log"); !strings.Contains(got, "postlog") || !strings.Contains(got, "globals={0:9}") {
		t.Errorf("writer log = %s", got)
	}
	// defs finds the writing statement.
	if got = exec(s, "defs sv"); !strings.Contains(got, "sv=9") {
		t.Errorf("defs sv = %s", got)
	}
}

func TestSessionLogDump(t *testing.T) {
	s := startSession(t, crashSrc, vm.Options{})
	got := exec(s, "log")
	for _, want := range []string{"start", "prelog", "postlog"} {
		if !strings.Contains(got, want) {
			t.Errorf("log missing %q:\n%s", want, got)
		}
	}
}

func TestSessionNodeDetails(t *testing.T) {
	s := startSession(t, crashSrc, vm.Options{})
	graph := exec(s, "graph 1")
	// Extract the root node id "nNN".
	idx := strings.Index(graph, "n")
	if idx < 0 {
		t.Fatalf("graph = %s", graph)
	}
	end := idx + 1
	for end < len(graph) && graph[end] >= '0' && graph[end] <= '9' {
		end++
	}
	got := exec(s, "node "+graph[idx+1:end])
	if !strings.Contains(got, "kind=") {
		t.Errorf("node = %s", got)
	}
	if got := exec(s, "node 99999"); !strings.Contains(got, "no node") {
		t.Errorf("bad node = %s", got)
	}
}

func TestSessionRunLoop(t *testing.T) {
	art, err := compile.CompileSource("t.mpl", `func main() { var a = 1 / 0; }`, eblock.Config{})
	if err != nil {
		t.Fatal(err)
	}
	v := vm.New(art.Prog, vm.Options{Mode: vm.ModeLog})
	_ = v.Run()
	s, err := New(controller.FromRun(art, v))
	if err != nil {
		t.Fatal(err)
	}
	in := strings.NewReader("summary\ngraph\nquit\n")
	var out bytes.Buffer
	if err := s.Run(in, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "division by zero") {
		t.Errorf("run output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "(ppd)") {
		t.Error("missing prompt")
	}
}

func TestSessionDeadlockCommand(t *testing.T) {
	s := startSession(t, `
sem a = 1;
sem b = 1;
sem started = 0;
func w() { P(b); V(started); P(a); }
func main() {
	P(a);
	spawn w();
	P(started);
	P(b);
}`, vm.Options{Quantum: 1})
	got := exec(s, "deadlock")
	if !strings.Contains(got, "blocked in P(b)") || !strings.Contains(got, "blocked in P(a)") {
		t.Errorf("deadlock report = %s", got)
	}
	if !strings.Contains(got, "last acquired by") {
		t.Errorf("deadlock report missing holders: %s", got)
	}
}

func TestSessionWhere(t *testing.T) {
	s := startSession(t, crashSrc, vm.Options{})
	got := exec(s, "where")
	if !strings.Contains(got, "P0: failed") {
		t.Errorf("where = %s", got)
	}
	s2 := startSession(t, `
sem never = 0;
func main() { P(never); }`, vm.Options{})
	if got := exec(s2, "where"); !strings.Contains(got, "blocked on P(never)") {
		t.Errorf("where = %s", got)
	}
}

func TestSessionFlowbackCommand(t *testing.T) {
	s := startSession(t, crashSrc, vm.Options{})
	graph := exec(s, "graph 1")
	idx := strings.Index(graph, "n")
	end := idx + 1
	for end < len(graph) && graph[end] >= '0' && graph[end] <= '9' {
		end++
	}
	got := exec(s, "flowback "+graph[idx+1:end]+" 2")
	if !strings.Contains(got, "data") {
		t.Errorf("flowback = %s", got)
	}
	if got := exec(s, "flowback"); !strings.Contains(got, "usage") {
		t.Errorf("flowback usage = %s", got)
	}
	if got := exec(s, "flowback 9999"); !strings.Contains(got, "no node") {
		t.Errorf("flowback bad = %s", got)
	}
}

func TestSessionDotCommand(t *testing.T) {
	s := startSession(t, crashSrc, vm.Options{})
	got := exec(s, "dot")
	if !strings.Contains(got, "digraph ppd") {
		t.Errorf("dot = %s", got)
	}
}

func TestSessionBadFocusAndEmulate(t *testing.T) {
	s := startSession(t, crashSrc, vm.Options{})
	if got := exec(s, "focus 9"); !strings.Contains(got, "no process") {
		t.Errorf("focus 9 = %s", got)
	}
	if got := exec(s, "focus"); !strings.Contains(got, "usage") {
		t.Errorf("focus = %s", got)
	}
	if got := exec(s, "emulate notanumber"); !strings.Contains(got, "bad index") {
		t.Errorf("emulate = %s", got)
	}
	if got := exec(s, "emulate 0"); !strings.Contains(got, "emulate:") {
		t.Errorf("emulate 0 (start record) = %s", got)
	}
	if got := exec(s, "stmt 9999"); !strings.Contains(got, "no statement") {
		t.Errorf("stmt = %s", got)
	}
	if got := exec(s, "stmt"); !strings.Contains(got, "usage") {
		t.Errorf("stmt usage = %s", got)
	}
}
