package dynpdg

import (
	"fmt"
	"strings"

	"ppd/internal/ast"
)

// DOT renders the dynamic graph in Graphviz format — a stand-in for the
// graphical display the paper defers to future work (§7: "the graphical
// information produced by the debugging must be presented in a form that is
// easily understood"). Node shapes follow Fig 4.1's conventions: ellipses
// for singular nodes, boxes for sub-graph nodes; data-dependence edges are
// solid, control-dependence edges dashed, flow edges dotted (and omitted by
// default for readability).
func (g *Graph) DOT(includeFlow bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph ppd {\n")
	fmt.Fprintf(&b, "  rankdir=BT;\n") // flowback reads bottom-up like Fig 4.1
	for _, n := range g.Nodes {
		shape := "ellipse"
		style := ""
		switch n.Kind {
		case NodeSubGraph:
			shape = "box"
		case NodeEntry, NodeExit:
			shape = "diamond"
		case NodeParam:
			shape = "ellipse"
			style = `, style=dashed`
		case NodeInitial:
			shape = "plaintext"
		case NodeSync:
			shape = "hexagon"
		}
		label := n.Label
		if n.Stmt != ast.NoStmt {
			label = fmt.Sprintf("%s\\ns%d", label, n.Stmt)
		}
		if n.HasValue {
			label = fmt.Sprintf("%s = %d", label, n.Value)
		}
		fmt.Fprintf(&b, "  n%d [label=%q, shape=%s%s];\n", n.ID, label, shape, style)
	}
	for _, e := range g.Edges {
		switch e.Kind {
		case EdgeData:
			fmt.Fprintf(&b, "  n%d -> n%d;\n", e.From, e.To)
		case EdgeControl:
			fmt.Fprintf(&b, "  n%d -> n%d [style=dashed];\n", e.From, e.To)
		case EdgeSync:
			fmt.Fprintf(&b, "  n%d -> n%d [style=bold];\n", e.From, e.To)
		case EdgeFlow:
			if includeFlow {
				fmt.Fprintf(&b, "  n%d -> n%d [style=dotted, arrowhead=open];\n", e.From, e.To)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}
