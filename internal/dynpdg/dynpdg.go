// Package dynpdg builds dynamic program dependence graphs (§4.2) from
// traces: the run-time counterpart of the static PDG, with one node per
// executed event and edges for the flow, data, control, and synchronization
// relations the user navigates during flowback analysis.
//
// Node kinds follow Fig 4.1: ENTRY/EXIT, singular nodes (one per executed
// assignment or predicate, labelled with the assigned variable or predicate
// expression and its run-time value), and sub-graph nodes encapsulating a
// call (or a substituted loop). Parameter bindings appear as %1..%n nodes
// and a function's return value as %0; an argument that is an expression
// rather than a single variable gets a fictional singular node (the paper's
// "%3" in Fig 4.1).
package dynpdg

import (
	"fmt"
	"strings"

	"ppd/internal/ast"
	"ppd/internal/compile"
	"ppd/internal/logging"
	"ppd/internal/trace"
)

// NodeKind classifies dynamic-graph nodes.
type NodeKind int

// Dynamic graph node kinds.
const (
	NodeEntry NodeKind = iota
	NodeExit
	NodeSingular // assignment instance or predicate instance
	NodeSubGraph // call (or substituted loop) instance
	NodeParam    // %n parameter binding (including fictional expression args)
	NodeInitial  // value flowing in from the prelog (pre-interval state)
	NodeSync     // synchronization event instance
)

func (k NodeKind) String() string {
	switch k {
	case NodeEntry:
		return "ENTRY"
	case NodeExit:
		return "EXIT"
	case NodeSingular:
		return "singular"
	case NodeSubGraph:
		return "subgraph"
	case NodeParam:
		return "param"
	case NodeInitial:
		return "initial"
	case NodeSync:
		return "sync"
	}
	return "?"
}

// EdgeKind classifies dynamic-graph edges (§4.2's four types; flow edges are
// implicit in node order and also materialized for completeness).
type EdgeKind int

// Dynamic graph edge kinds.
const (
	EdgeFlow EdgeKind = iota
	EdgeData
	EdgeControl
	EdgeSync
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeFlow:
		return "flow"
	case EdgeData:
		return "data"
	case EdgeControl:
		return "ctrl"
	case EdgeSync:
		return "sync"
	}
	return "?"
}

// NodeID indexes nodes within one Graph.
type NodeID int

// Node is one dynamic-graph node.
type Node struct {
	ID       NodeID
	Kind     NodeKind
	Stmt     ast.StmtID // source statement (NoStmt for ENTRY/EXIT/initial)
	Label    string     // "d", "d>0", "SubD", "%3", ...
	Value    int64      // assigned value / predicate outcome / return value
	HasValue bool

	// Var is the function-space variable index the node defines, or -1.
	Var int

	// Seq is the node's position in execution order.
	Seq int
}

// Edge is one dependence edge.
type Edge struct {
	Kind EdgeKind
	From NodeID
	To   NodeID
	Var  int // data edges: the variable carried; else -1
}

// Graph is the dynamic PDG of one emulated interval (or one full-trace
// process).
type Graph struct {
	Art   *compile.Artifacts
	Fn    string // root function of the interval
	Nodes []*Node
	Edges []*Edge

	// incoming indexes edges by target for flowback navigation.
	incoming map[NodeID][]*Edge
	outgoing map[NodeID][]*Edge
}

// NewNode appends a node.
func (g *Graph) newNode(n *Node) *Node {
	n.ID = NodeID(len(g.Nodes))
	n.Seq = len(g.Nodes)
	g.Nodes = append(g.Nodes, n)
	return n
}

func (g *Graph) addEdge(kind EdgeKind, from, to NodeID, v int) {
	e := &Edge{Kind: kind, From: from, To: to, Var: v}
	g.Edges = append(g.Edges, e)
	g.incoming[to] = append(g.incoming[to], e)
	g.outgoing[from] = append(g.outgoing[from], e)
}

// Incoming returns the edges arriving at n (the flowback direction).
func (g *Graph) Incoming(n NodeID) []*Edge { return g.incoming[n] }

// Outgoing returns the edges leaving n.
func (g *Graph) Outgoing(n NodeID) []*Edge { return g.outgoing[n] }

// LastNode returns the most recently created non-exit node, or nil. It is
// the root the debugger presents first ("the last statement executed").
func (g *Graph) LastNode() *Node {
	for i := len(g.Nodes) - 1; i >= 0; i-- {
		if g.Nodes[i].Kind == NodeSingular || g.Nodes[i].Kind == NodeSubGraph || g.Nodes[i].Kind == NodeSync {
			return g.Nodes[i]
		}
	}
	return nil
}

// NodesForStmt returns all instances of a statement, in execution order.
func (g *Graph) NodesForStmt(id ast.StmtID) []*Node {
	var out []*Node
	for _, n := range g.Nodes {
		if n.Stmt == id {
			out = append(out, n)
		}
	}
	return out
}

// builder state for one activation (function instance) being walked.
type activation struct {
	fnIdx    int
	fnName   string
	numSlots int
	// lastWrite maps function-space var index -> defining node.
	lastWrite map[int]NodeID
	// ctrlStack holds the predicate nodes currently governing execution
	// (approximation: the static control dependences resolve which apply;
	// we use the static PDG to attach control edges precisely).
	callNode NodeID // the sub-graph node in the caller, or -1 for the root
}

// Build constructs the dynamic graph from an emulated interval's trace.
// rootFn names the function the interval belongs to.
func Build(art *compile.Artifacts, buf *trace.Buffer, rootFn string) *Graph {
	g := &Graph{
		Art:      art,
		Fn:       rootFn,
		incoming: make(map[NodeID][]*Edge),
		outgoing: make(map[NodeID][]*Edge),
	}
	b := &gbuilder{g: g, art: art}
	b.run(buf, rootFn)
	return g
}

type gbuilder struct {
	g   *Graph
	art *compile.Artifacts

	acts []*activation

	// lastWriteGlobal maps GlobalID -> defining node (globals are shared
	// across activations).
	lastWriteGlobal map[int]NodeID

	// current statement instance node per activation depth
	curStmtNode NodeID
	prevNode    NodeID // for flow edges

	// pending reads of the current statement instance: nodes feeding it.
	pendingDeps map[NodeID]int // node -> var

	// callSaves holds, per in-flight call, the caller's open statement node
	// and its unconsumed pending reads, so the statement instance resumes
	// when the call returns.
	callSaves []callSave

	// resume, when set, continues the saved statement instance at the next
	// EvStmt instead of opening a duplicate node.
	resume *callSave

	argVarsCache map[argVarsKey][][]int
}

type callSave struct {
	stmtNode NodeID
	pending  map[NodeID]int
}

type argVarsKey struct {
	fn     string
	stmt   ast.StmtID
	callee int
}

func (b *gbuilder) top() *activation { return b.acts[len(b.acts)-1] }

func (b *gbuilder) run(buf *trace.Buffer, rootFn string) {
	fn := b.art.Prog.FuncByName(rootFn)
	b.lastWriteGlobal = make(map[int]NodeID)
	entry := b.g.newNode(&Node{Kind: NodeEntry, Label: "ENTRY:" + rootFn, Var: -1})
	b.prevNode = entry.ID
	b.acts = []*activation{{
		fnIdx:     fn.Idx,
		fnName:    rootFn,
		numSlots:  fn.NumSlots,
		lastWrite: make(map[int]NodeID),
		callNode:  -1,
	}}
	b.pendingDeps = make(map[NodeID]int)
	b.curStmtNode = -1

	for i := range buf.Events {
		b.event(&buf.Events[i])
	}
	if b.curStmtNode >= 0 && len(b.pendingDeps) > 0 {
		b.flushDeps(b.curStmtNode)
	}
	exit := b.g.newNode(&Node{Kind: NodeExit, Label: "EXIT:" + rootFn, Var: -1})
	b.g.addEdge(EdgeFlow, b.prevNode, exit.ID, -1)
}

// defNodeFor returns (creating on demand) the node that defined var v as
// seen by the current activation. Unknown definitions become NodeInitial
// nodes: values that flowed in from the prelog (pre-interval state or
// another process — the controller resolves those across the parallel
// graph).
func (b *gbuilder) defNodeFor(v int) NodeID {
	act := b.top()
	if v >= act.numSlots { // global
		gid := v - act.numSlots
		if n, ok := b.lastWriteGlobal[gid]; ok {
			return n
		}
		name := b.art.Prog.Globals[gid].Name
		n := b.g.newNode(&Node{
			Kind: NodeInitial, Label: name + "@pre", Var: v,
		})
		b.lastWriteGlobal[gid] = n.ID
		return n.ID
	}
	if n, ok := act.lastWrite[v]; ok {
		return n
	}
	// A local read before any traced write: a parameter (bound at entry)
	// or prelog-restored loop local.
	label := fmt.Sprintf("%s@pre", b.localName(act, v))
	n := b.g.newNode(&Node{Kind: NodeInitial, Label: label, Var: v})
	act.lastWrite[v] = n.ID
	return n.ID
}

func (b *gbuilder) localName(act *activation, slot int) string {
	fi := b.art.Info.Funcs[act.fnName]
	if fi != nil && slot < len(fi.Locals) {
		return fi.Locals[slot].Name
	}
	return fmt.Sprintf("slot%d", slot)
}

func (b *gbuilder) varName(act *activation, v int) string {
	if v < 0 {
		return "?"
	}
	if v >= act.numSlots {
		return b.art.Prog.Globals[v-act.numSlots].Name
	}
	return b.localName(act, v)
}

// openStmt starts a node for a new statement instance, first flushing any
// reads still pending on the previous one (statements without writes or
// predicate outcomes — returns, prints, sends — keep their reads this way).
func (b *gbuilder) openStmt(kind NodeKind, stmt ast.StmtID, label string) *Node {
	if b.curStmtNode >= 0 && len(b.pendingDeps) > 0 {
		b.flushDeps(b.curStmtNode)
	}
	n := b.g.newNode(&Node{Kind: kind, Stmt: stmt, Label: label, Var: -1})
	b.g.addEdge(EdgeFlow, b.prevNode, n.ID, -1)
	b.prevNode = n.ID
	b.curStmtNode = n.ID
	b.attachControl(n)
	return n
}

// attachControl adds the control-dependence edge from the most recent
// instance of the statement's static controlling predicate.
func (b *gbuilder) attachControl(n *Node) {
	if n.Stmt == ast.NoStmt {
		return
	}
	act := b.top()
	fpdg := b.art.PDG.Funcs[act.fnName]
	if fpdg == nil {
		return
	}
	cfgNode := fpdg.CFG.NodeFor(n.Stmt)
	if cfgNode < 0 {
		return
	}
	for _, dep := range fpdg.CtrlDepsOf(cfgNode) {
		depStmt := fpdg.CFG.Nodes[dep].Stmt
		if depStmt == nil {
			continue
		}
		// Find the most recent instance of that predicate in this graph.
		for i := len(b.g.Nodes) - 1; i >= 0; i-- {
			cand := b.g.Nodes[i]
			if cand.Stmt == depStmt.ID() && cand.ID != n.ID {
				b.g.addEdge(EdgeControl, cand.ID, n.ID, -1)
				break
			}
		}
	}
}

func (b *gbuilder) event(e *trace.Event) {
	act := b.top()
	switch e.Kind {
	case trace.EvStmt:
		if r := b.resume; r != nil {
			b.resume = nil
			if r.stmtNode >= 0 && b.g.Nodes[r.stmtNode].Stmt == e.Stmt {
				// Continuation of the statement instance that contained the
				// just-returned call: keep its node and restored reads.
				b.curStmtNode = r.stmtNode
				b.pendingDeps = r.pending
				return
			}
		}
		label := "s?"
		if st := b.art.Info.Prog.StmtByID(e.Stmt); st != nil {
			label = ast.StmtString(st)
		}
		b.openStmt(NodeSingular, e.Stmt, label)
		b.pendingDeps = make(map[NodeID]int)

	case trace.EvRead:
		def := b.defNodeFor(e.Var)
		if b.curStmtNode >= 0 {
			b.pendingDeps[def] = e.Var
		}

	case trace.EvWrite:
		if b.curStmtNode < 0 {
			return
		}
		n := b.g.Nodes[b.curStmtNode]
		if n.Kind == NodeSubGraph {
			// A substituted interval's postlog values: the sub-graph node
			// becomes the definition site of everything it wrote.
			if e.Var >= act.numSlots {
				b.lastWriteGlobal[e.Var-act.numSlots] = n.ID
			} else {
				act.lastWrite[e.Var] = n.ID
			}
			return
		}
		n.Label = b.varName(act, e.Var)
		n.Value = e.Value
		n.HasValue = true
		n.Var = e.Var
		b.flushDeps(n.ID)
		if e.Var >= act.numSlots {
			b.lastWriteGlobal[e.Var-act.numSlots] = n.ID
		} else {
			act.lastWrite[e.Var] = n.ID
		}

	case trace.EvPred:
		if b.curStmtNode < 0 {
			return
		}
		n := b.g.Nodes[b.curStmtNode]
		n.Value = e.Value
		n.HasValue = true
		b.flushDeps(n.ID)

	case trace.EvCallBegin:
		callee := b.art.Prog.Funcs[e.FuncIdx]
		sub := b.g.newNode(&Node{
			Kind: NodeSubGraph, Stmt: e.Stmt, Label: callee.Name, Var: -1,
		})
		b.g.addEdge(EdgeFlow, b.prevNode, sub.ID, -1)
		b.prevNode = sub.ID
		b.attachControl(b.g.Nodes[sub.ID])
		newAct := &activation{
			fnIdx:     e.FuncIdx,
			fnName:    callee.Name,
			numSlots:  callee.NumSlots,
			lastWrite: make(map[int]NodeID),
			callNode:  sub.ID,
		}
		remaining := b.bindParams(e, sub, func(i int, pn NodeID) {
			if i < len(callee.ParamSlots) {
				newAct.lastWrite[callee.ParamSlots[i]] = pn
			}
		})
		b.callSaves = append(b.callSaves, callSave{stmtNode: b.curStmtNode, pending: remaining})
		b.pendingDeps = make(map[NodeID]int)
		b.acts = append(b.acts, newAct)
		b.curStmtNode = -1

	case trace.EvCallEnd:
		finished := b.acts[len(b.acts)-1]
		b.acts = b.acts[:len(b.acts)-1]
		if finished.callNode >= 0 {
			sub := b.g.Nodes[finished.callNode]
			if e.HasValue {
				sub.Value = e.Value
				sub.HasValue = true
			}
			// Resume the caller's statement instance: the call's result
			// (%0) feeds whatever consumes it, alongside the reads that
			// preceded the call.
			save := callSave{stmtNode: -1, pending: map[NodeID]int{}}
			if n := len(b.callSaves); n > 0 {
				save = b.callSaves[n-1]
				b.callSaves = b.callSaves[:n-1]
			}
			save.pending[sub.ID] = -1
			b.resume = &save
			b.curStmtNode = -1
			b.pendingDeps = map[NodeID]int{sub.ID: -1}
			b.prevNode = sub.ID
		}

	case trace.EvCallSkipped:
		label := "loop"
		if e.FuncIdx >= 0 {
			label = b.art.Prog.Funcs[e.FuncIdx].Name
		}
		sub := b.g.newNode(&Node{
			Kind: NodeSubGraph, Stmt: e.Stmt, Label: label,
			Value: e.Value, HasValue: e.HasValue, Var: -1,
		})
		b.g.addEdge(EdgeFlow, b.prevNode, sub.ID, -1)
		b.prevNode = sub.ID
		b.attachControl(b.g.Nodes[sub.ID])
		remaining := b.bindParams(e, sub, nil)
		remaining[sub.ID] = -1
		b.resume = &callSave{stmtNode: b.curStmtNode, pending: remaining}
		b.pendingDeps = map[NodeID]int{sub.ID: -1}
		// The substituted postlog's EvWrite events follow; route them
		// through the sub-graph node by making it current.
		b.curStmtNode = sub.ID

	case trace.EvSync:
		st := b.art.Info.Prog.StmtByID(e.Stmt)
		stLabel := e.Op.String()
		if st != nil {
			stLabel = ast.StmtString(st)
		}
		// Pure synchronization statements (P, V, send, spawn) become a
		// single sync node: convert the statement's open singular node
		// rather than adding a second one.
		pureSync := false
		switch st.(type) {
		case *ast.SemStmt, *ast.SendStmt, *ast.SpawnStmt:
			pureSync = true
		}
		if pureSync && b.curStmtNode >= 0 && b.g.Nodes[b.curStmtNode].Stmt == e.Stmt {
			n := b.g.Nodes[b.curStmtNode]
			n.Kind = NodeSync
			b.flushDeps(n.ID) // send values / spawn arguments feed the event
			b.curStmtNode = -1
			return
		}
		n := b.g.newNode(&Node{Kind: NodeSync, Stmt: e.Stmt, Label: stLabel, Var: -1})
		b.g.addEdge(EdgeFlow, b.prevNode, n.ID, -1)
		b.prevNode = n.ID
		b.attachControl(b.g.Nodes[n.ID])
		if e.Op == logging.OpRecv {
			// The received value flows into whatever consumes it; the
			// enclosing statement (var v = recv(c)) stays current so its
			// store lands on its own node.
			b.pendingDeps[n.ID] = -1
		}

	case trace.EvEnd:
		// handled by run's EXIT node
	}
}

func (b *gbuilder) flushDeps(to NodeID) {
	for dep, v := range b.pendingDeps {
		if dep == to {
			continue
		}
		b.g.addEdge(EdgeData, dep, to, v)
	}
	b.pendingDeps = make(map[NodeID]int)
}

// String renders the graph compactly for golden tests: one line per node
// with its incoming data/control edges.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, n := range g.Nodes {
		fmt.Fprintf(&sb, "n%d %s", n.ID, n.Kind)
		if n.Stmt != ast.NoStmt {
			fmt.Fprintf(&sb, " s%d", n.Stmt)
		}
		fmt.Fprintf(&sb, " [%s]", n.Label)
		if n.HasValue {
			fmt.Fprintf(&sb, "=%d", n.Value)
		}
		var deps []string
		for _, e := range g.incoming[n.ID] {
			if e.Kind == EdgeFlow {
				continue
			}
			deps = append(deps, fmt.Sprintf("%s:n%d", e.Kind, e.From))
		}
		if len(deps) > 0 {
			fmt.Fprintf(&sb, " <- %s", strings.Join(deps, ","))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// bindParams creates the %1..%n parameter nodes of a call, attaching to
// each the pending reads that statically belong to that argument's
// expression (Fig 4.1's fictional nodes for expression arguments). It
// returns the pending reads no argument consumed, and invokes bound for
// each created node so callees can map them to parameter slots.
func (b *gbuilder) bindParams(e *trace.Event, sub *Node, bound func(i int, pn NodeID)) map[NodeID]int {
	argVars := b.argVars(b.top().fnName, e.Stmt, e.FuncIdx)
	consumed := make(map[NodeID]bool)
	for i, argv := range e.Args {
		pn := b.g.newNode(&Node{
			Kind: NodeParam, Stmt: e.Stmt,
			Label: fmt.Sprintf("%%%d", i+1), Value: argv, HasValue: true, Var: -1,
		})
		for dep, v := range b.pendingDeps {
			attach := false
			switch {
			case v == -1:
				// A nested call's or recv's result: it fed some argument;
				// without finer structure, attach to every parameter node.
				attach = true
			case i < len(argVars):
				for _, av := range argVars[i] {
					if av == v {
						attach = true
						break
					}
				}
			default:
				attach = true // no static info: attach conservatively
			}
			if attach {
				b.g.addEdge(EdgeData, dep, pn.ID, v)
				consumed[dep] = true
			}
		}
		b.g.addEdge(EdgeData, pn.ID, sub.ID, -1)
		if bound != nil {
			bound(i, pn.ID)
		}
	}
	remaining := make(map[NodeID]int)
	for dep, v := range b.pendingDeps {
		if !consumed[dep] {
			remaining[dep] = v
		}
	}
	return remaining
}

// argVars resolves, per argument position, the variable space indices the
// argument expression reads, using the AST (cached per call site).
func (b *gbuilder) argVars(fnName string, stmt ast.StmtID, calleeIdx int) [][]int {
	if b.argVarsCache == nil {
		b.argVarsCache = make(map[argVarsKey][][]int)
	}
	key := argVarsKey{fn: fnName, stmt: stmt, callee: calleeIdx}
	if v, ok := b.argVarsCache[key]; ok {
		return v
	}
	var out [][]int
	st := b.art.Info.Prog.StmtByID(stmt)
	fi := b.art.Info.Funcs[fnName]
	if st != nil && fi != nil && calleeIdx >= 0 && calleeIdx < len(b.art.Prog.Funcs) {
		calleeName := b.art.Prog.Funcs[calleeIdx].Name
		space := b.art.PDG.Funcs[fnName].Space
		var call *ast.CallExpr
		ast.Inspect(st, func(n ast.Node) bool {
			if call != nil {
				return false
			}
			// Do not descend into nested statements: they are separate
			// trace events.
			switch n.(type) {
			case *ast.BlockStmt:
				return false
			}
			if ce, ok := n.(*ast.CallExpr); ok && ce.Fun.Name == calleeName {
				call = ce
				return false
			}
			return true
		})
		if call != nil {
			for _, arg := range call.Args {
				var vars []int
				ast.Inspect(arg, func(n ast.Node) bool {
					if id, ok := n.(*ast.Ident); ok {
						if sym := b.art.Info.Uses[id]; sym != nil {
							if idx := space.Index(sym); idx >= 0 {
								vars = append(vars, idx)
							}
						}
					}
					return true
				})
				out = append(out, vars)
			}
		}
	}
	b.argVarsCache[key] = out
	return out
}
