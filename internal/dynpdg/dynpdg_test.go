package dynpdg

import (
	"strings"
	"testing"

	"ppd/internal/ast"
	"ppd/internal/compile"
	"ppd/internal/eblock"
	"ppd/internal/emulation"
	"ppd/internal/vm"
)

// buildGraph compiles src, runs it logged, emulates fn's first interval,
// and builds the dynamic graph.
func buildGraph(t *testing.T, src, fn string, cfg eblock.Config) (*Graph, *compile.Artifacts) {
	t.Helper()
	art, err := compile.CompileSource("test.mpl", src, cfg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	v := vm.New(art.Prog, vm.Options{Mode: vm.ModeLog})
	_ = v.Run()
	em := emulation.New(art.Prog, v.Log.Books[0])
	blk := art.Plan.ByFunc[fn]
	if blk == nil {
		t.Fatalf("no block for %s", fn)
	}
	idxs := em.PrelogIndices(int(blk.ID))
	if len(idxs) == 0 {
		t.Fatalf("no intervals for %s", fn)
	}
	res, err := em.Emulate(idxs[0])
	if err != nil {
		t.Fatalf("emulate: %v", err)
	}
	return Build(art, res.Trace, fn), art
}

// nodeByLabel finds the last node with the given label.
func nodeByLabel(t *testing.T, g *Graph, label string) *Node {
	t.Helper()
	var found *Node
	for _, n := range g.Nodes {
		if n.Label == label {
			found = n
		}
	}
	if found == nil {
		t.Fatalf("no node labelled %q in:\n%s", label, g)
	}
	return found
}

// hasDataEdge reports a data edge from -> to.
func hasDataEdge(g *Graph, from, to NodeID) bool {
	for _, e := range g.Incoming(to) {
		if e.Kind == EdgeData && e.From == from {
			return true
		}
	}
	return false
}

func hasCtrlEdge(g *Graph, from, to NodeID) bool {
	for _, e := range g.Incoming(to) {
		if e.Kind == EdgeControl && e.From == from {
			return true
		}
	}
	return false
}

// TestFigure41DynamicGraph reproduces the paper's Fig 4.1: the program
//
//	s1 a=...; s2 b=...; s3 d=SubD(a,b,a+b+c);
//	s4 if (d>0) s5 sq=sqrt(d); else sq=sqrt(-d);
//	s6 a=a+sq;
//
// and checks the graph's shape node-for-node: the SubD sub-graph node with
// %1, %2 and the fictional %3 parameter nodes; sq's dependence on the sqrt
// sub-graph; sq's control dependence on the d>0 predicate; and s6's data
// dependences on a and sq.
func TestFigure41DynamicGraph(t *testing.T) {
	src := `
func SubD(x int, y int, z int) int {
	return x + y - z;
}
func sqrt(v int) int {
	var r = 0;
	while ((r + 1) * (r + 1) <= v) { r = r + 1; }
	return r;
}
func main() {
	var c = 5;
	var a = 30;
	var b = 20;
	var d = SubD(a, b, a + b + c);
	var sq = 0;
	if (d > 0) { sq = sqrt(d); } else { sq = sqrt(-d); }
	a = a + sq;
}`
	g, art := buildGraph(t, src, "main", eblock.Config{})

	// The SubD call appears as a sub-graph node whose value is the returned
	// d (30+20-55 = -5).
	subD := nodeByLabel(t, g, "SubD")
	if subD.Kind != NodeSubGraph || !subD.HasValue || subD.Value != -5 {
		t.Errorf("SubD node = %+v, want subgraph with value -5", subD)
	}

	// %1, %2, %3 parameter nodes feed SubD; %3 is the fictional node for
	// the expression argument with deps on a, b, and c.
	var params []*Node
	for _, e := range g.Incoming(subD.ID) {
		if e.Kind == EdgeData && g.Nodes[e.From].Kind == NodeParam {
			params = append(params, g.Nodes[e.From])
		}
	}
	if len(params) != 3 {
		t.Fatalf("SubD param nodes = %d, want 3\n%s", len(params), g)
	}
	aDef := nodeByLabel(t, g, "a") // var a = 30 (the later a=a+sq relabels; nodeByLabel takes last)
	// Find the *first* 'a' node (s2 in the paper's numbering).
	var aInit *Node
	for _, n := range g.Nodes {
		if n.Label == "a" && n.Kind == NodeSingular {
			aInit = n
			break
		}
	}
	bInit := nodeByLabel(t, g, "b")
	cInit := nodeByLabel(t, g, "c")

	byLabel := map[string]*Node{}
	for _, p := range params {
		byLabel[p.Label] = p
	}
	p1, p2, p3 := byLabel["%1"], byLabel["%2"], byLabel["%3"]
	if p1 == nil || p2 == nil || p3 == nil {
		t.Fatalf("missing param nodes: %v", byLabel)
	}
	if p1.Value != 30 || p2.Value != 20 || p3.Value != 55 {
		t.Errorf("param values = %d,%d,%d want 30,20,55", p1.Value, p2.Value, p3.Value)
	}
	if !hasDataEdge(g, aInit.ID, p1.ID) {
		t.Error("%1 must depend on a")
	}
	if hasDataEdge(g, bInit.ID, p1.ID) {
		t.Error("%1 must NOT depend on b (per-argument precision)")
	}
	if !hasDataEdge(g, bInit.ID, p2.ID) {
		t.Error("%2 must depend on b")
	}
	// The fictional %3 = a+b+c depends on all three.
	for name, def := range map[string]*Node{"a": aInit, "b": bInit, "c": cInit} {
		if !hasDataEdge(g, def.ID, p3.ID) {
			t.Errorf("%%3 must depend on %s", name)
		}
	}

	// d's node: singular, value -5, fed by the SubD sub-graph node.
	dDef := nodeByLabel(t, g, "d")
	if dDef.Value != -5 || !hasDataEdge(g, subD.ID, dDef.ID) {
		t.Errorf("d node = %+v; must carry -5 and depend on SubD", dDef)
	}

	// The predicate instance (d>0) is false and depends on d.
	pred := nodeByLabel(t, g, "if (d>0)")
	if !pred.HasValue || pred.Value != 0 {
		t.Errorf("predicate value = %+v, want 0 (false)", pred)
	}
	if !hasDataEdge(g, dDef.ID, pred.ID) {
		t.Error("predicate must depend on d")
	}

	// sq = sqrt(-d) executed (else branch): its node is control dependent
	// on the predicate and fed by the sqrt sub-graph.
	var sqrtSub *Node
	for _, n := range g.Nodes {
		if n.Label == "sqrt" && n.Kind == NodeSubGraph {
			sqrtSub = n
		}
	}
	if sqrtSub == nil {
		t.Fatalf("no sqrt sub-graph node\n%s", g)
	}
	if sqrtSub.Value != 2 { // floor(sqrt(5)) = 2
		t.Errorf("sqrt value = %d, want 2", sqrtSub.Value)
	}
	sq := nodeByLabel(t, g, "sq")
	if !hasDataEdge(g, sqrtSub.ID, sq.ID) {
		t.Error("sq must depend on the sqrt sub-graph node")
	}
	if !hasCtrlEdge(g, pred.ID, sq.ID) {
		t.Error("sq must be control dependent on (d>0)")
	}

	// s6: a = a + sq depends on a's original def and on sq.
	if aDef == aInit {
		t.Fatal("expected a second 'a' node for s6")
	}
	if !hasDataEdge(g, aInit.ID, aDef.ID) || !hasDataEdge(g, sq.ID, aDef.ID) {
		t.Errorf("s6 'a' deps wrong:\n%s", g)
	}
	if aDef.Value != 30+2 {
		t.Errorf("final a = %d, want 32", aDef.Value)
	}
	_ = art
}

func TestParamsAsInitialNodes(t *testing.T) {
	// Emulating a callee's interval: parameter reads resolve to @pre
	// initial nodes (values from the prelog).
	g, _ := buildGraph(t, `
func f(p int) int { return p * 2; }
func main() { print(f(21)); }`, "f", eblock.Config{})
	pre := nodeByLabel(t, g, "p@pre")
	if pre.Kind != NodeInitial {
		t.Errorf("p@pre kind = %v", pre.Kind)
	}
	ret := nodeByLabel(t, g, "return p*2")
	if !hasDataEdge(g, pre.ID, ret.ID) {
		t.Errorf("return must depend on p@pre:\n%s", g)
	}
}

func TestGlobalsAsInitialNodes(t *testing.T) {
	g, _ := buildGraph(t, `
var gv = 9;
func main() { var x = gv + 1; }`, "main", eblock.Config{})
	pre := nodeByLabel(t, g, "gv@pre")
	x := nodeByLabel(t, g, "x")
	if !hasDataEdge(g, pre.ID, x.ID) {
		t.Errorf("x must depend on gv@pre:\n%s", g)
	}
	if x.Value != 10 {
		t.Errorf("x = %d, want 10", x.Value)
	}
}

func TestLoopInstancesDistinct(t *testing.T) {
	g, _ := buildGraph(t, `
func main() {
	var s = 0;
	var i = 0;
	while (i < 3) {
		s = s + i;
		i = i + 1;
	}
}`, "main", eblock.Config{})
	// Three instances of "s=s+i", chained by data deps.
	body := g.NodesForStmt(findStmtID(t, g, "s=s+i"))
	var singulars []*Node
	for _, n := range body {
		if n.Kind == NodeSingular {
			singulars = append(singulars, n)
		}
	}
	if len(singulars) != 3 {
		t.Fatalf("s=s+i instances = %d, want 3", len(singulars))
	}
	if !hasDataEdge(g, singulars[0].ID, singulars[1].ID) ||
		!hasDataEdge(g, singulars[1].ID, singulars[2].ID) {
		t.Error("loop-carried data deps missing between instances")
	}
	// Values accumulate 0, 1, 3.
	wants := []int64{0, 1, 3}
	for i, n := range singulars {
		if n.Value != wants[i] {
			t.Errorf("instance %d value = %d, want %d", i, n.Value, wants[i])
		}
	}
	// Each body instance is control dependent on a while-predicate instance.
	for i, n := range singulars {
		ok := false
		for _, e := range g.Incoming(n.ID) {
			if e.Kind == EdgeControl && strings.HasPrefix(g.Nodes[e.From].Label, "while") {
				ok = true
			}
		}
		if !ok {
			t.Errorf("instance %d missing control dep on while predicate", i)
		}
	}
}

func findStmtID(t *testing.T, g *Graph, summary string) ast.StmtID {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Label == summary && n.Stmt != ast.NoStmt {
			return n.Stmt
		}
	}
	// fall back to searching the program
	for id := ast.StmtID(1); id <= ast.StmtID(g.Art.Info.Prog.NumStmts); id++ {
		if st := g.Art.Info.Prog.StmtByID(id); st != nil && ast.StmtString(st) == summary {
			return id
		}
	}
	t.Fatalf("no statement %q", summary)
	return ast.NoStmt
}

func TestSkippedCallDefinesGlobals(t *testing.T) {
	// When a callee is substituted by its postlog, later reads of globals
	// it wrote must resolve to the sub-graph node.
	g, _ := buildGraph(t, `
var gv;
func setg(v int) { gv = v * 3; }
func main() {
	setg(7);
	var x = gv;
}`, "main", eblock.Config{})
	var sub *Node
	for _, n := range g.Nodes {
		if n.Kind == NodeSubGraph && n.Label == "setg" {
			sub = n
		}
	}
	if sub == nil {
		t.Fatalf("no setg sub-graph node:\n%s", g)
	}
	x := nodeByLabel(t, g, "x")
	if !hasDataEdge(g, sub.ID, x.ID) {
		t.Errorf("x must depend on the substituted setg node:\n%s", g)
	}
	if x.Value != 21 {
		t.Errorf("x = %d, want 21", x.Value)
	}
}

func TestCallResultFeedsConsumer(t *testing.T) {
	g, _ := buildGraph(t, `
var gv = 5;
func main() {
	var x = gv + double(4);
}
func double(v int) int { return v * 2; }`, "main", eblock.Config{})
	x := nodeByLabel(t, g, "x")
	var sub *Node
	for _, n := range g.Nodes {
		if n.Kind == NodeSubGraph && n.Label == "double" {
			sub = n
		}
	}
	if sub == nil {
		t.Fatal("no double node")
	}
	if !hasDataEdge(g, sub.ID, x.ID) {
		t.Errorf("x must depend on double's result:\n%s", g)
	}
	// And the pre-call read of gv must survive the call boundary.
	pre := nodeByLabel(t, g, "gv@pre")
	if !hasDataEdge(g, pre.ID, x.ID) {
		t.Errorf("x must also depend on gv@pre (read before the call):\n%s", g)
	}
	if x.Value != 13 {
		t.Errorf("x = %d, want 13", x.Value)
	}
}

func TestRecvFeedsConsumer(t *testing.T) {
	src := `
chan c;
func producer() { send(c, 11); }
func main() {
	spawn producer();
	var v = recv(c);
	var w = v + 1;
}`
	g, _ := buildGraph(t, src, "main", eblock.Config{})
	var recvNode *Node
	for _, n := range g.Nodes {
		if n.Kind == NodeSync && strings.Contains(n.Label, "recv") {
			recvNode = n
		}
	}
	if recvNode == nil {
		t.Fatalf("no recv sync node:\n%s", g)
	}
	v := nodeByLabel(t, g, "v")
	if !hasDataEdge(g, recvNode.ID, v.ID) {
		t.Errorf("v must depend on the recv sync node:\n%s", g)
	}
	w := nodeByLabel(t, g, "w")
	if !hasDataEdge(g, v.ID, w.ID) {
		t.Error("w must depend on v")
	}
}

func TestLastNodeAndFlowback(t *testing.T) {
	g, _ := buildGraph(t, `
func main() {
	var a = 1;
	var b = a + 1;
	var c = b * 2;
}`, "main", eblock.Config{})
	last := g.LastNode()
	if last == nil || last.Label != "c" {
		t.Fatalf("last node = %+v, want c", last)
	}
	// Flowback: c <- b <- a.
	var b *Node
	for _, e := range g.Incoming(last.ID) {
		if e.Kind == EdgeData {
			b = g.Nodes[e.From]
		}
	}
	if b == nil || b.Label != "b" {
		t.Fatalf("c's dep = %+v, want b", b)
	}
	var a *Node
	for _, e := range g.Incoming(b.ID) {
		if e.Kind == EdgeData {
			a = g.Nodes[e.From]
		}
	}
	if a == nil || a.Label != "a" {
		t.Fatalf("b's dep = %+v, want a", a)
	}
}

func TestNestedIfControlChain(t *testing.T) {
	g, _ := buildGraph(t, `
func main() {
	var p = 1;
	var q = 1;
	if (p == 1) {
		if (q == 1) {
			var z = 9;
		}
	}
}`, "main", eblock.Config{})
	z := nodeByLabel(t, g, "z")
	inner := nodeByLabel(t, g, "if (q==1)")
	outer := nodeByLabel(t, g, "if (p==1)")
	if !hasCtrlEdge(g, inner.ID, z.ID) {
		t.Error("z must be control dependent on inner if")
	}
	if !hasCtrlEdge(g, outer.ID, inner.ID) {
		t.Error("inner if must be control dependent on outer if")
	}
}

func TestDOTExport(t *testing.T) {
	g, _ := buildGraph(t, `
func double(v int) int { return v * 2; }
func main() {
	var a = 3;
	var b = double(a);
	if (b > 5) { print(b); }
}`, "main", eblock.Config{})
	dot := g.DOT(false)
	for _, want := range []string{
		"digraph ppd", "rankdir=BT", "shape=box", // the sub-graph node
		"style=dashed];", // a control edge
		"->",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	if strings.Contains(dot, "dotted") {
		t.Error("flow edges must be omitted by default")
	}
	withFlow := g.DOT(true)
	if !strings.Contains(withFlow, "dotted") {
		t.Error("flow edges requested but absent")
	}
}
