// Package eblock partitions an MPL program into emulation blocks (§5.1,
// §5.4): the units of incremental tracing. Each e-block starts with code to
// generate a prelog (the variables it may read) and ends with code to
// generate a postlog (the variables it may have written), and is the unit
// the emulation package re-executes during the debugging phase.
//
// Following §5.4:
//   - every subroutine is a natural e-block;
//   - small leaf subroutines below a threshold are *inlined*: they get no
//     e-block of their own, and their direct ancestors inherit their USED
//     and DEFINED sets and perform the logging for them;
//   - loops whose bodies exceed a threshold become nested e-blocks, so the
//     debugging phase can skip re-executing a long loop (substituting its
//     postlog) unless the user asks for its details.
package eblock

import (
	"fmt"
	"sort"
	"strings"

	"ppd/internal/ast"
	"ppd/internal/bitset"
	"ppd/internal/cfg"
	"ppd/internal/dataflow"
	"ppd/internal/pdg"
	"ppd/internal/sem"
)

// Kind distinguishes e-block flavors.
type Kind int

// E-block kinds.
const (
	FuncBlock Kind = iota
	LoopBlock
)

func (k Kind) String() string {
	if k == FuncBlock {
		return "func"
	}
	return "loop"
}

// ID identifies an e-block program-wide.
type ID int

// EBlock is one emulation block.
type EBlock struct {
	ID   ID
	Kind Kind
	Fn   *sem.FuncInfo

	// Loop is the while/for statement for LoopBlock kind; nil otherwise.
	Loop ast.Stmt

	// Used/Defined are over the enclosing function's variable space
	// (local slots then globals). For FuncBlocks the local part of Used is
	// the parameters; for LoopBlocks it is the locals the loop body reads.
	Used    *bitset.Set
	Defined *bitset.Set

	// UsedGlobals/DefinedGlobals are the same facts projected to GlobalIDs
	// (what the prelog/postlog records for shared state).
	UsedGlobals    *bitset.Set
	DefinedGlobals *bitset.Set
}

// Config tunes e-block construction. The zero value is the paper's default
// posture: subroutines are e-blocks, nothing is inlined, loops are not
// split out.
type Config struct {
	// LeafInlineThreshold: leaf functions with at most this many statements
	// and no synchronization are inlined into their callers (0 disables).
	LeafInlineThreshold int

	// LoopBlockMinStmts: loops whose bodies contain at least this many
	// statements become nested e-blocks (0 disables).
	LoopBlockMinStmts int
}

// DefaultConfig matches the paper's practical recommendation: inline tiny
// leaves, give big loops their own e-blocks.
func DefaultConfig() Config {
	return Config{LeafInlineThreshold: 8, LoopBlockMinStmts: 8}
}

// Plan is the complete e-block partition of a program.
type Plan struct {
	Config Config
	PDG    *pdg.Program

	Blocks []*EBlock

	// ByFunc maps function name to its e-block; inlined functions are
	// absent.
	ByFunc map[string]*EBlock

	// ByLoop maps a loop statement's ID to its e-block.
	ByLoop map[ast.StmtID]*EBlock

	// Inlined marks functions folded into their callers.
	Inlined map[string]bool
}

// Build computes the partition.
func Build(p *pdg.Program, cfg Config) *Plan {
	plan := &Plan{
		Config:  cfg,
		PDG:     p,
		ByFunc:  make(map[string]*EBlock),
		ByLoop:  make(map[ast.StmtID]*EBlock),
		Inlined: make(map[string]bool),
	}

	// Decide inlining. A function is inlined when it is small, has no
	// synchronization, is not a process entry point (spawn targets must
	// log: each process needs at least its entry e-block), is not main,
	// and every function it calls is itself inlined — so inlining
	// propagates up chains of small helpers (a fixpoint generalization of
	// §5.4's leaf rule; the direct ancestors inherit the USED/DEFINED sets
	// either way).
	spawned := p.Inter.SpawnTargets()
	if cfg.LeafInlineThreshold > 0 {
		// effSize is a function's own statement count plus the effective
		// sizes of its inlined callees — inlining a helper makes its caller
		// effectively bigger, which keeps whole programs from folding into
		// main under a generous threshold.
		effSize := make(map[string]int)
		for _, fn := range p.Info.FuncList {
			effSize[fn.Name()] = p.Inter.Summaries[fn.Name()].NumStmts
		}
		for changed := true; changed; {
			changed = false
			for _, fn := range p.Info.FuncList {
				name := fn.Name()
				if plan.Inlined[name] {
					continue
				}
				s := p.Inter.Summaries[name]
				if s.UsesSync || spawned[name] || name == "main" {
					continue
				}
				size := s.NumStmts
				ok := true
				for _, callee := range s.Callees {
					if s.SpawnedOnly[callee] {
						continue
					}
					if callee == name || !plan.Inlined[callee] {
						ok = false
						break
					}
					size += effSize[callee]
				}
				if ok && size <= cfg.LeafInlineThreshold {
					plan.Inlined[name] = true
					effSize[name] = size
					changed = true
				}
			}
		}
	}

	for _, fn := range p.Info.FuncList {
		if plan.Inlined[fn.Name()] {
			continue
		}
		plan.addFuncBlock(fn)
	}
	// Loop blocks, after all function blocks exist.
	if cfg.LoopBlockMinStmts > 0 {
		for _, fn := range p.Info.FuncList {
			if plan.Inlined[fn.Name()] {
				continue
			}
			plan.addLoopBlocks(fn)
		}
	}
	return plan
}

func (plan *Plan) newBlock(kind Kind, fn *sem.FuncInfo) *EBlock {
	b := &EBlock{ID: ID(len(plan.Blocks)), Kind: kind, Fn: fn}
	plan.Blocks = append(plan.Blocks, b)
	return b
}

func (plan *Plan) addFuncBlock(fn *sem.FuncInfo) {
	p := plan.PDG
	f := p.Funcs[fn.Name()]
	space := f.Space
	b := plan.newBlock(FuncBlock, fn)
	b.Used = space.NewSet()
	b.Defined = space.NewSet()

	// Parameters are read at entry (they are the %n bindings the prelog
	// must capture for re-execution).
	for _, prm := range fn.Params {
		b.Used.Add(space.Index(prm))
	}

	// Globals possibly read by the function's own code plus any *inlined*
	// callee (functions with their own e-blocks log for themselves; §5.2's
	// postlog substitution covers them during emulation).
	used := bitset.New(p.Info.NumGlobals())
	sum := p.Inter.Summaries[fn.Name()]
	used.UnionWith(sum.DirectUsed)
	plan.addInlinedEffects(fn.Name(), used, nil, make(map[string]bool))

	// Globals possibly written during the whole interval, including nested
	// e-blocks: the postlog restores state across the interval (§5.7), so
	// it must cover transitive writes.
	defined := sum.Defined.Clone()

	space.InjectGlobals(b.Used, used)
	space.InjectGlobals(b.Defined, defined)
	b.UsedGlobals = used
	b.DefinedGlobals = defined
	plan.ByFunc[fn.Name()] = b
}

// addInlinedEffects accumulates the USED (and optionally DEFINED) global
// sets of inlined callees, transitively through chains of inlined leaves.
func (plan *Plan) addInlinedEffects(fn string, used, defined *bitset.Set, seen map[string]bool) {
	if seen[fn] {
		return
	}
	seen[fn] = true
	s := plan.PDG.Inter.Summaries[fn]
	for _, callee := range s.Callees {
		if s.SpawnedOnly[callee] || !plan.Inlined[callee] {
			continue
		}
		cs := plan.PDG.Inter.Summaries[callee]
		if used != nil {
			used.UnionWith(cs.DirectUsed)
		}
		if defined != nil {
			defined.UnionWith(cs.DirectDefined)
		}
		plan.addInlinedEffects(callee, used, defined, seen)
	}
}

func (plan *Plan) addLoopBlocks(fn *sem.FuncInfo) {
	p := plan.PDG
	f := p.Funcs[fn.Name()]
	space := f.Space
	live := dataflow.ComputeLiveness(space, f.CFG, f.UseDefs)

	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		var loopStmt ast.Stmt
		switch s := n.(type) {
		case *ast.WhileStmt:
			body, loopStmt = s.Body, s
		case *ast.ForStmt:
			body, loopStmt = s.Body, s
		default:
			return true
		}
		if len(ast.Stmts(body)) < plan.Config.LoopBlockMinStmts {
			return true
		}
		// A loop containing synchronization must not be an e-block: its
		// iterations interleave with other processes, so skipping it with a
		// postlog would skip sync events the parallel graph needs.
		syncy := false
		ast.Inspect(body, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.SemStmt, *ast.SendStmt, *ast.SpawnStmt, *ast.RecvExpr:
				syncy = true
			case *ast.CallExpr:
				if cs, ok := p.Inter.Summaries[x.Fun.Name]; ok && cs.UsesSync {
					syncy = true
				}
			}
			return true
		})
		if syncy {
			return true // still recurse: an inner loop might qualify
		}

		b := plan.newBlock(LoopBlock, fn)
		b.Loop = loopStmt
		b.Used = space.NewSet()
		b.Defined = space.NewSet()

		// Union the widened UseDef of every statement in the loop,
		// including the loop predicate itself and (for for-loops) the post
		// statement. The init statement runs before the loop head, outside
		// the block.
		collect := func(id ast.StmtID) {
			if ud, ok := f.UseDefs[id]; ok {
				b.Used.UnionWith(ud.Use)
				b.Defined.UnionWith(ud.Def)
			}
		}
		collect(loopStmt.ID())
		for _, s := range ast.Stmts(body) {
			collect(s.ID())
		}
		if fs, ok := loopStmt.(*ast.ForStmt); ok && fs.Post != nil {
			collect(fs.Post.ID())
		}

		// Trim dead locals from the postlog set: substitution only has to
		// restore values the continuation can observe (live-variable
		// analysis; the paper's §5.4 log-size concern).
		trimDeadLocals(f, space, live, loopStmt, b.Defined)

		b.UsedGlobals = space.GlobalsOnly(b.Used)
		b.DefinedGlobals = space.GlobalsOnly(b.Defined)
		plan.ByLoop[loopStmt.ID()] = b
		// Do not create blocks for loops nested inside this one: the outer
		// block already skips them.
		return false
	})
}

// trimDeadLocals removes from the loop block's defined set every local that
// is not live at any of the loop's exit targets.
func trimDeadLocals(f *pdg.FuncPDG, space *dataflow.Space, live *dataflow.Liveness, loopStmt ast.Stmt, defined *bitset.Set) {
	head := f.CFG.NodeFor(loopStmt.ID())
	if head < 0 {
		return
	}
	inBody := map[cfg.NodeID]bool{head: true}
	for _, l := range f.CFG.Loops {
		if l.Head != head {
			continue
		}
		for _, n := range l.Body {
			inBody[n] = true
		}
	}
	liveAfter := space.NewSet()
	for n := range inBody {
		for _, succ := range f.CFG.Nodes[n].Succs {
			if !inBody[succ] {
				liveAfter.UnionWith(live.LiveBefore(succ))
			}
		}
	}
	defined.ForEach(func(idx int) {
		if !space.IsGlobal(idx) && !liveAfter.Has(idx) {
			defined.Remove(idx)
		}
	})
}

// BlockFor returns the e-block for a function, or nil when inlined.
func (plan *Plan) BlockFor(fn string) *EBlock { return plan.ByFunc[fn] }

// String summarizes the plan for diagnostics and the program database dump.
func (plan *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "e-block plan (%d blocks):\n", len(plan.Blocks))
	for _, blk := range plan.Blocks {
		switch blk.Kind {
		case FuncBlock:
			fmt.Fprintf(&b, "  #%d func %s used=%s defined=%s\n",
				blk.ID, blk.Fn.Name(), blk.UsedGlobals, blk.DefinedGlobals)
		case LoopBlock:
			fmt.Fprintf(&b, "  #%d loop s%d in %s used=%s defined=%s\n",
				blk.ID, blk.Loop.ID(), blk.Fn.Name(), blk.UsedGlobals, blk.DefinedGlobals)
		}
	}
	var inl []string
	for name := range plan.Inlined {
		inl = append(inl, name)
	}
	sort.Strings(inl)
	if len(inl) > 0 {
		fmt.Fprintf(&b, "  inlined: %s\n", strings.Join(inl, ", "))
	}
	return b.String()
}
