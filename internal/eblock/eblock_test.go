package eblock

import (
	"testing"

	"ppd/internal/parser"
	"ppd/internal/pdg"
	"ppd/internal/sem"
	"ppd/internal/source"
)

func buildPlan(t *testing.T, src string, cfg Config) *Plan {
	t.Helper()
	errs := &source.ErrorList{}
	prog := parser.ParseString("test.mpl", src, errs)
	info := sem.Check(prog, errs)
	if errs.ErrCount() != 0 {
		t.Fatalf("front-end errors:\n%v", errs.Err())
	}
	return Build(pdg.Build(info), cfg)
}

func globalNames(p *Plan, set interface{ Elems() []int }) map[string]bool {
	out := map[string]bool{}
	for _, id := range set.Elems() {
		out[p.PDG.Info.Globals[id].Name] = true
	}
	return out
}

func TestEveryFunctionGetsBlockByDefault(t *testing.T) {
	plan := buildPlan(t, `
func tiny() int { return 1; }
func main() { var x = tiny(); }`, Config{})
	if len(plan.Blocks) != 2 {
		t.Fatalf("blocks = %d, want 2:\n%s", len(plan.Blocks), plan)
	}
	if plan.Inlined["tiny"] {
		t.Error("nothing should inline with zero config")
	}
}

func TestLeafInlining(t *testing.T) {
	plan := buildPlan(t, `
var g;
func tiny() int { return g; }
func big(n int) int {
	var a = n; var b = a; var c = b; var d = c;
	return d;
}
func main() {
	var x = tiny() + big(2);
}`, Config{LeafInlineThreshold: 3})
	if !plan.Inlined["tiny"] {
		t.Error("tiny should inline (1 stmt, leaf, no sync)")
	}
	if plan.Inlined["big"] {
		t.Error("big exceeds the threshold")
	}
	if plan.ByFunc["tiny"] != nil {
		t.Error("inlined function must not have an e-block")
	}
	// main inherits tiny's USED set (reads g).
	mb := plan.ByFunc["main"]
	if !globalNames(plan, mb.UsedGlobals)["g"] {
		t.Errorf("main must inherit g from inlined tiny; used=%s", mb.UsedGlobals)
	}
}

func TestSyncLeafNeverInlines(t *testing.T) {
	plan := buildPlan(t, `
sem s;
func lock() { P(s); }
func main() { lock(); }`, Config{LeafInlineThreshold: 10})
	if plan.Inlined["lock"] {
		t.Error("synchronizing functions must keep their e-blocks")
	}
}

func TestSpawnTargetNeverInlines(t *testing.T) {
	plan := buildPlan(t, `
func w() { print(1); }
func main() { spawn w(); }`, Config{LeafInlineThreshold: 10})
	if plan.Inlined["w"] {
		t.Error("spawn targets must keep their e-blocks (each process logs)")
	}
}

func TestMainNeverInlines(t *testing.T) {
	plan := buildPlan(t, `func main() { print(1); }`, Config{LeafInlineThreshold: 10})
	if plan.Inlined["main"] {
		t.Error("main must never inline")
	}
}

func TestChainOfInlinedLeaves(t *testing.T) {
	// mid calls tiny; both are small and sync-free, so the inlining
	// fixpoint folds the whole chain and main inherits g transitively.
	plan := buildPlan(t, `
var g;
func tiny() int { return g; }
func mid() int { return tiny() + 1; }
func main() { var x = mid(); }`, Config{LeafInlineThreshold: 3})
	if !plan.Inlined["tiny"] || !plan.Inlined["mid"] {
		t.Fatalf("tiny and mid should both inline (fixpoint): %v", plan.Inlined)
	}
	mainB := plan.ByFunc["main"]
	if !globalNames(plan, mainB.UsedGlobals)["g"] {
		t.Errorf("main must inherit g through the inlined chain; used=%s", mainB.UsedGlobals)
	}
}

func TestMediumCalleeBlocksInheritance(t *testing.T) {
	// big keeps its own e-block, so main must NOT claim big's reads in its
	// prelog — big logs for itself.
	plan := buildPlan(t, `
var g;
func big() int {
	var a = g; var b = a; var c = b; var d = c; var e = d;
	return e;
}
func main() { var x = big(); }`, Config{LeafInlineThreshold: 3})
	if plan.Inlined["big"] {
		t.Fatal("big exceeds the threshold; must not inline")
	}
	mainB := plan.ByFunc["main"]
	if globalNames(plan, mainB.UsedGlobals)["g"] {
		t.Errorf("main must not inherit g through non-inlined big; used=%s", mainB.UsedGlobals)
	}
}

func TestRecursiveFunctionNeverInlines(t *testing.T) {
	plan := buildPlan(t, `
func rec(n int) int {
	if (n <= 0) { return 0; }
	return rec(n - 1);
}
func main() { var x = rec(3); }`, Config{LeafInlineThreshold: 10})
	if plan.Inlined["rec"] {
		t.Error("self-recursive functions must keep their e-blocks")
	}
}

func TestPostlogCoversTransitiveWrites(t *testing.T) {
	plan := buildPlan(t, `
var g;
func setg(v int) { g = v; }
func main() { setg(1); }`, Config{})
	mainB := plan.ByFunc["main"]
	if !globalNames(plan, mainB.DefinedGlobals)["g"] {
		t.Errorf("main's DEFINED must include callee writes (postlog restores the interval); got %s",
			mainB.DefinedGlobals)
	}
	// But main's USED must not include g: setg logs its own reads.
	if globalNames(plan, mainB.UsedGlobals)["g"] {
		t.Errorf("main's USED must not include callee-private reads; got %s", mainB.UsedGlobals)
	}
}

func TestParamsInUsedSet(t *testing.T) {
	plan := buildPlan(t, `
func f(a int, b int) int { return a + b; }
func main() { var x = f(1, 2); }`, Config{})
	fb := plan.ByFunc["f"]
	count := 0
	fb.Used.ForEach(func(i int) {
		if !plan.PDG.Funcs["f"].Space.IsGlobal(i) {
			count++
		}
	})
	if count != 2 {
		t.Errorf("f's used locals = %d, want 2 params", count)
	}
}

func TestLoopBlocks(t *testing.T) {
	src := `
var g;
func main() {
	var s = 0;
	for (var i = 0; i < 100; i = i + 1) {
		var a = i * 2;
		var b = a + 1;
		var c = b * b;
		var d = c - a;
		s = s + d;
		g = g + s;
	}
	print(s);
}`
	plan := buildPlan(t, src, Config{LoopBlockMinStmts: 5})
	if len(plan.ByLoop) != 1 {
		t.Fatalf("loop blocks = %d, want 1:\n%s", len(plan.ByLoop), plan)
	}
	var lb *EBlock
	for _, b := range plan.ByLoop {
		lb = b
	}
	if lb.Kind != LoopBlock {
		t.Error("wrong kind")
	}
	if !globalNames(plan, lb.UsedGlobals)["g"] || !globalNames(plan, lb.DefinedGlobals)["g"] {
		t.Errorf("loop block must track g: used=%s defined=%s", lb.UsedGlobals, lb.DefinedGlobals)
	}
	// The loop reads and writes local s (accumulator) — check the local
	// part of the space-set is nonempty.
	hasLocal := false
	lb.Used.ForEach(func(i int) {
		if !plan.PDG.Funcs["main"].Space.IsGlobal(i) {
			hasLocal = true
		}
	})
	if !hasLocal {
		t.Error("loop block must record used locals")
	}

	// Disabled config: no loop blocks.
	plan2 := buildPlan(t, src, Config{})
	if len(plan2.ByLoop) != 0 {
		t.Error("loop blocks created with disabled config")
	}
}

func TestSyncLoopNotABlock(t *testing.T) {
	plan := buildPlan(t, `
sem s;
func main() {
	for (var i = 0; i < 100; i = i + 1) {
		P(s);
		var a = i; var b = a; var c = b; var d = c;
		print(d);
		V(s);
	}
}`, Config{LoopBlockMinStmts: 3})
	if len(plan.ByLoop) != 0 {
		t.Error("loops containing synchronization must not become e-blocks")
	}
}

func TestInnerLoopQualifiesWhenOuterSyncs(t *testing.T) {
	plan := buildPlan(t, `
sem s;
func main() {
	for (var i = 0; i < 10; i = i + 1) {
		P(s);
		V(s);
		for (var j = 0; j < 10; j = j + 1) {
			var a = j; var b = a; var c = b; var d = c;
			print(d);
		}
	}
}`, Config{LoopBlockMinStmts: 3})
	if len(plan.ByLoop) != 1 {
		t.Errorf("inner sync-free loop should still become a block:\n%s", plan)
	}
}

func TestDefaultConfigSane(t *testing.T) {
	c := DefaultConfig()
	if c.LeafInlineThreshold <= 0 || c.LoopBlockMinStmts <= 0 {
		t.Error("default config should enable both heuristics")
	}
}

func TestLoopBlockPostlogTrimsDeadLocals(t *testing.T) {
	// s survives the loop (printed); scratch locals die inside it. Only s
	// (and the loop counter read by nothing afterwards) should need
	// logging — the dead body temporaries must be trimmed.
	src := `
func main() {
	var s = 0;
	for (var i = 0; i < 100; i = i + 1) {
		var a = i * 2;
		var b = a + 1;
		var c = b * b;
		var d = c - a;
		s = s + d;
	}
	print(s);
}`
	plan := buildPlan(t, src, Config{LoopBlockMinStmts: 5})
	if len(plan.ByLoop) != 1 {
		t.Fatalf("no loop block:\n%s", plan)
	}
	var lb *EBlock
	for _, b := range plan.ByLoop {
		lb = b
	}
	space := plan.PDG.Funcs["main"].Space
	var definedLocals []string
	lb.Defined.ForEach(func(i int) {
		if !space.IsGlobal(i) {
			definedLocals = append(definedLocals, space.Name(i))
		}
	})
	if len(definedLocals) != 1 || definedLocals[0] != "s" {
		t.Errorf("postlog locals = %v, want [s] only", definedLocals)
	}
}
