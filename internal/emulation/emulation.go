// Package emulation implements the debugging phase's re-execution machinery
// (§5.1–§5.3): given a process's log and the index of a prelog record, it
// re-executes that e-block instance in isolation and produces the full trace
// the execution phase deliberately did not generate.
//
// Replay rules:
//
//   - the root prelog initializes the frame (parameters / used locals) and
//     the used globals;
//   - shared prelogs (§5.5) re-supply shared-variable values at sync-unit
//     starts, reproducing other processes' interleaved writes;
//   - synchronization operations perform no real synchronization; recv
//     returns the logged value;
//   - calls to functions with their own e-blocks are substituted by their
//     postlogs (§5.2's nested log intervals) — unless the callee's postlog
//     is missing (the program halted inside it), in which case the callee
//     is re-executed from its own records;
//   - nested loop e-blocks are likewise substituted by their postlogs, with
//     the PC jumped past the loop.
//
// The result is an exact replay of the interval's local events at a small
// fraction of the cost of re-running the program.
package emulation

import (
	"fmt"
	"sync/atomic"

	"ppd/internal/bytecode"
	"ppd/internal/logging"
	"ppd/internal/trace"
	"ppd/internal/vm"
)

// Result is the outcome of emulating one e-block instance.
type Result struct {
	Trace *trace.Buffer
	// Globals is the global state at the end of the emulated interval.
	Globals []vm.Value
	// RecordsConsumed is how many log records the interval covered
	// (including the root prelog and postlog).
	RecordsConsumed int
	// Completed reports whether the interval's own postlog was reached
	// (false when the program originally halted inside the interval).
	Completed bool
	// Err is the runtime failure reproduced during replay, if any (the
	// original failure the user is debugging).
	Err error
}

// Emulator re-executes e-block instances of one process. Prog and Book are
// read-only during emulation, so one Emulator may run any number of
// Emulate/EmulateFresh calls concurrently (each checks a replay context
// out of the pool, or builds a fresh VM) — the Controller's prefetcher
// relies on this.
type Emulator struct {
	Prog *bytecode.Program
	Book *logging.Book

	// Generic forces every Emulate through a fresh VM driven by the
	// generic instruction loop — the byte-identity oracle the pooled
	// fast-dispatch path is pinned against in tests and benchmarks.
	Generic bool

	// pool supplies reusable replay contexts. New installs a private
	// bounded pool; the controller replaces it with one shared across all
	// per-process emulators (SetPool).
	pool *Pool

	// runs counts VM re-executions performed (Emulate + EmulateFresh) —
	// the hook the Controller's cache tests and benchmarks observe to
	// prove a query was served memoized.
	runs atomic.Int64
}

// New returns an emulator over a process's log book.
func New(prog *bytecode.Program, book *logging.Book) *Emulator {
	return &Emulator{Prog: prog, Book: book, pool: NewPool(prog, DefaultPoolBound, nil)}
}

// SetPool installs a shared replay-context pool. The controller points
// every process's emulator (and the prefetcher behind them) at one bounded
// pool so concurrent sessions cannot hoard a VM per in-flight query.
func (e *Emulator) SetPool(p *Pool) {
	if p != nil {
		e.pool = p
	}
}

// Emulations returns how many VM re-executions this emulator has performed.
// A cached query leaves the counter untouched.
func (e *Emulator) Emulations() int64 { return e.runs.Load() }

// FindLastOpenPrelog locates "the last prelog whose corresponding postlog
// has not yet been generated" (§5.3) — the interval the program halted in.
// It returns the record index, or -1 when every interval completed.
func (e *Emulator) FindLastOpenPrelog() int {
	var stack []int
	for i, r := range e.Book.Records {
		switch r.Kind {
		case logging.RecPrelog:
			stack = append(stack, i)
		case logging.RecPostlog:
			if len(stack) > 0 {
				stack = stack[:len(stack)-1]
			}
		}
	}
	if len(stack) == 0 {
		return -1
	}
	return stack[len(stack)-1]
}

// PrelogIndices returns the record indices of every prelog of the given
// e-block, in execution order (a block executed n times has n intervals).
func (e *Emulator) PrelogIndices(blockID int) []int {
	var out []int
	for i, r := range e.Book.Records {
		if r.Kind == logging.RecPrelog && int(r.Block) == blockID {
			out = append(out, i)
		}
	}
	return out
}

// LastPrelog returns the record index of the final prelog in the book, or
// -1 for an empty book.
func (e *Emulator) LastPrelog() int {
	for i := len(e.Book.Records) - 1; i >= 0; i-- {
		if e.Book.Records[i].Kind == logging.RecPrelog {
			return i
		}
	}
	return -1
}

// FirstPrelog returns the record index of the process's outermost interval
// (its entry function), or -1 for an empty book.
func (e *Emulator) FirstPrelog() int {
	for i, r := range e.Book.Records {
		if r.Kind == logging.RecPrelog {
			return i
		}
	}
	return -1
}

// Emulate re-executes the e-block instance whose prelog is at record index
// prelogIdx. The Result (and its trace buffer) are freshly allocated and
// owned by the caller — the controller's cache retains them indefinitely.
func (e *Emulator) Emulate(prelogIdx int) (*Result, error) {
	res := &Result{}
	if err := e.EmulateInto(prelogIdx, res); err != nil {
		return nil, err
	}
	return res, nil
}

// EmulateInto is Emulate writing into a caller-recycled Result: res.Trace
// (if non-nil) and res.Globals are reused as scratch, so a caller that
// consumes each result before the next call — the benchmark loop, a
// drive-to-fault scan — replays with near-zero steady-state allocation.
// Validation errors are returned; reproduced runtime failures land in
// res.Err exactly as in Emulate.
func (e *Emulator) EmulateInto(prelogIdx int, res *Result) error {
	if prelogIdx < 0 || prelogIdx >= len(e.Book.Records) {
		return fmt.Errorf("emulation: prelog index %d out of range", prelogIdx)
	}
	pre := e.Book.Records[prelogIdx]
	if pre.Kind != logging.RecPrelog {
		return fmt.Errorf("emulation: record %d is %s, not a prelog", prelogIdx, pre.Kind)
	}
	e.runs.Add(1)
	if e.Generic {
		return e.emulateGeneric(prelogIdx, pre, res)
	}
	meta := e.Prog.Blocks[pre.Block]
	fn := e.Prog.Funcs[meta.FuncIdx]

	ctx := e.pool.get()
	machine := ctx.machine
	machine.ResetEmu()
	ctx.h = hooks{
		em:      e,
		machine: machine,
		cursor:  prelogIdx + 1,
		root:    int(pre.Block),
	}
	machine.SetHooks(&ctx.h)

	// Build the initial frame from the prelog in the context's slot
	// scratch. Slots the prelog does not cover must come out as zero
	// Values — StartEmuProc's overlay clones every caller slot, zeros
	// included, so the fresh-VM path never sees frame-setup arrays either.
	slots := ctx.slots
	if cap(slots) < fn.NumSlots {
		slots = make([]vm.Value, fn.NumSlots)
	}
	slots = slots[:fn.NumSlots]
	cover := ctx.cover
	if cap(cover) < fn.NumSlots {
		cover = make([]bool, fn.NumSlots)
	}
	cover = cover[:fn.NumSlots]
	clear(cover)
	for slot, val := range pre.Locals.All() {
		if slot < len(slots) {
			slots[slot] = cloneInto(slots[slot], val)
			cover[slot] = true
		}
	}
	for i := range slots {
		if !cover[i] {
			slots[i] = vm.Value{}
		}
	}
	startPC := meta.PrelogPC + 1
	if meta.Kind == bytecode.BlockFunc {
		startPC = fn.PrelogPCAt(int(pre.Block)) + 1
	}
	tb := res.Trace
	if tb == nil {
		tb = &trace.Buffer{}
	}
	tb.Reset(0)
	proc := machine.StartEmuProcOwned(fn, slots, startPC, tb)

	// Used globals from the prelog (ResetEmu restored initial values,
	// recycling array backing where lengths match).
	for gid, val := range pre.Globals.All() {
		machine.Globals[gid] = cloneInto(machine.Globals[gid], val)
	}

	runErr := machine.RunEmu(proc)
	e.pool.note(machine.EmuDispatchStats())

	res.Trace = proc.Tbuf
	res.Globals = machine.SnapshotInto(res.Globals)
	res.RecordsConsumed = ctx.h.cursor - prelogIdx
	res.Completed = ctx.h.sawRootPostlog
	res.Err = runErr

	ctx.slots = slots
	ctx.cover = cover
	e.pool.put(ctx)
	return nil
}

// emulateGeneric is the original Emulate body, kept as the oracle: a fresh
// VM per call, generic single-step dispatch, no pooled state anywhere.
func (e *Emulator) emulateGeneric(prelogIdx int, pre *logging.Record, res *Result) error {
	meta := e.Prog.Blocks[pre.Block]
	fn := e.Prog.Funcs[meta.FuncIdx]

	machine := vm.New(e.Prog, vm.Options{Mode: vm.ModeEmulate, EmuGeneric: true})
	h := &hooks{
		em:      e,
		machine: machine,
		cursor:  prelogIdx + 1,
		root:    int(pre.Block),
	}
	machine.SetHooks(h)

	// Build the initial frame from the prelog.
	slots := make([]vm.Value, fn.NumSlots)
	for slot, val := range pre.Locals.All() {
		if slot < len(slots) {
			slots[slot] = val.Clone()
		}
	}
	startPC := meta.PrelogPC + 1
	if meta.Kind == bytecode.BlockFunc {
		startPC = fn.PrelogPCAt(int(pre.Block)) + 1
	}
	proc := machine.StartEmuProc(fn, slots, startPC)

	// Used globals from the prelog.
	for gid, val := range pre.Globals.All() {
		machine.Globals[gid] = val.Clone()
	}

	runErr := machine.RunEmu(proc)
	res.Trace = proc.Tbuf
	res.Globals = machine.Snapshot()
	res.RecordsConsumed = h.cursor - prelogIdx
	res.Completed = h.sawRootPostlog
	res.Err = runErr
	return nil
}

// cloneInto is val.Clone() that recycles dst's array backing when the
// lengths line up. Log records are immutable by contract, so copying the
// elements (never aliasing val.Arr) preserves the same isolation Clone
// gives the fresh-VM path.
func cloneInto(dst, val vm.Value) vm.Value {
	if val.Arr == nil {
		return vm.Value{Int: val.Int}
	}
	if len(dst.Arr) == len(val.Arr) {
		copy(dst.Arr, val.Arr)
		return vm.Value{Int: val.Int, Arr: dst.Arr}
	}
	return val.Clone()
}

// hooks implements vm.Hooks by replaying the log from a cursor.
type hooks struct {
	em      *Emulator
	machine *vm.VM
	cursor  int
	root    int
	// depth counts re-executed nested blocks (callee re-execution when a
	// postlog was missing), so we know which postlog is the root's.
	reexecDepth    int
	sawRootPostlog bool
}

func (h *hooks) next() *logging.Record {
	if h.cursor >= len(h.em.Book.Records) {
		return nil
	}
	r := h.em.Book.Records[h.cursor]
	h.cursor++
	return r
}

// peek returns the next record without consuming it.
func (h *hooks) peek() *logging.Record {
	if h.cursor >= len(h.em.Book.Records) {
		return nil
	}
	return h.em.Book.Records[h.cursor]
}

func (h *hooks) OnSync(p *vm.Proc, op logging.SyncOp, obj int) (int64, error) {
	r := h.next()
	if r == nil {
		return 0, fmt.Errorf("log exhausted replaying %s", op)
	}
	if r.Kind != logging.RecSync || r.Op != op {
		return 0, fmt.Errorf("log divergence: replaying %s found %s", op, r)
	}
	return r.Value, nil
}

func (h *hooks) OnShPrelog(p *vm.Proc, unit bytecode.UnitLog) error {
	r := h.next()
	if r == nil {
		return fmt.Errorf("log exhausted replaying shared prelog")
	}
	if r.Kind != logging.RecShPrelog {
		return fmt.Errorf("log divergence: expected shared prelog, found %s", r)
	}
	// Re-supply shared values as of execution time (§5.5).
	for gid, val := range r.Globals.All() {
		h.machine.Globals[gid] = val.Clone()
	}
	return nil
}

func (h *hooks) OnCall(p *vm.Proc, callee *bytecode.Func, args []int64) (bool, int64, bool, error) {
	if callee.BlockID < 0 {
		return false, 0, false, nil // inlined: re-execute
	}
	// The next record must be the callee's prelog; find its matching
	// postlog by depth counting (§5.2).
	r := h.peek()
	if r == nil || r.Kind != logging.RecPrelog || int(r.Block) != callee.BlockID {
		return false, 0, false, fmt.Errorf(
			"log divergence: call of %s expected its prelog, found %v", callee.Name, r)
	}
	depth := 0
	for j := h.cursor; j < len(h.em.Book.Records); j++ {
		switch h.em.Book.Records[j].Kind {
		case logging.RecPrelog:
			depth++
		case logging.RecPostlog:
			depth--
			if depth == 0 {
				post := h.em.Book.Records[j]
				for gid, val := range post.Globals.All() {
					h.machine.Globals[gid] = val.Clone()
				}
				h.cursor = j + 1
				// Record the substitution for the dynamic graph: a
				// sub-graph node for the skipped callee, then the applied
				// postlog values as writes attributed to the call site.
				caller := p.Frames[len(p.Frames)-1]
				stmt := caller.Fn.Code[caller.PC-1].Stmt
				var ret int64
				hasRet := false
				if post.Ret != nil {
					ret, hasRet = post.Ret.Int, true
				}
				p.Tbuf.Append(trace.Event{
					Kind: trace.EvCallSkipped, Stmt: stmt,
					FuncIdx: callee.Idx, Args: args, Value: ret, HasValue: hasRet,
				})
				for gid, val := range post.Globals.All() {
					if !val.IsArray() {
						p.Tbuf.Append(trace.Event{
							Kind: trace.EvWrite, Stmt: stmt,
							Var: caller.Fn.NumSlots + gid, Idx: -1, Value: val.Int,
						})
					} else {
						p.Tbuf.Append(trace.Event{
							Kind: trace.EvWrite, Stmt: stmt,
							Var: caller.Fn.NumSlots + gid, Idx: -1,
						})
					}
				}
				return true, ret, hasRet, nil
			}
		}
	}
	// No matching postlog: the program halted inside this callee. Fall back
	// to re-executing it; its prelog will be consumed by OnPrelog.
	h.reexecDepth++
	return false, 0, false, nil
}

func (h *hooks) OnPrelog(p *vm.Proc, blockID int) (bool, error) {
	meta := h.em.Prog.Blocks[blockID]
	switch meta.Kind {
	case bytecode.BlockFunc:
		// A re-executed callee's prelog: consume and apply (healing any
		// divergence in globals the callee is about to read).
		r := h.next()
		if r == nil {
			return false, fmt.Errorf("log exhausted at %s's prelog", h.em.Prog.Funcs[meta.FuncIdx].Name)
		}
		if r.Kind != logging.RecPrelog || int(r.Block) != blockID {
			return false, fmt.Errorf("log divergence: expected prelog of block %d, found %s", blockID, r)
		}
		for gid, val := range r.Globals.All() {
			h.machine.Globals[gid] = val.Clone()
		}
		f := p.Frames[len(p.Frames)-1]
		for slot, val := range r.Locals.All() {
			if slot < len(f.Slots) {
				f.Slots[slot] = val.Clone()
			}
		}
		return false, nil

	case bytecode.BlockLoop:
		// Nested loop block: substitute its postlog and jump past the loop.
		r := h.peek()
		if r == nil || r.Kind != logging.RecPrelog || int(r.Block) != blockID {
			return false, fmt.Errorf("log divergence: expected loop prelog of block %d, found %v", blockID, r)
		}
		depth := 0
		for j := h.cursor; j < len(h.em.Book.Records); j++ {
			switch h.em.Book.Records[j].Kind {
			case logging.RecPrelog:
				depth++
			case logging.RecPostlog:
				depth--
				if depth == 0 {
					post := h.em.Book.Records[j]
					for gid, val := range post.Globals.All() {
						h.machine.Globals[gid] = val.Clone()
					}
					f := p.Frames[len(p.Frames)-1]
					for slot, val := range post.Locals.All() {
						if slot < len(f.Slots) {
							f.Slots[slot] = val.Clone()
						}
					}
					h.cursor = j + 1
					f.PC = meta.PostPC + 1
					// Record the substitution in the trace so the dynamic
					// graph shows a sub-graph node for the skipped loop.
					p.Tbuf.Append(trace.Event{
						Kind: trace.EvCallSkipped, Stmt: meta.LoopStmt,
						FuncIdx: -1 - blockID,
					})
					for slot, val := range post.Locals.All() {
						p.Tbuf.Append(trace.Event{
							Kind: trace.EvWrite, Stmt: meta.LoopStmt,
							Var: slot, Idx: -1, Value: val.Int,
						})
					}
					fn := h.em.Prog.Funcs[meta.FuncIdx]
					for gid, val := range post.Globals.All() {
						if !val.IsArray() {
							p.Tbuf.Append(trace.Event{
								Kind: trace.EvWrite, Stmt: meta.LoopStmt,
								Var: fn.NumSlots + gid, Idx: -1, Value: val.Int,
							})
						}
					}
					return true, nil
				}
			}
		}
		// Halted inside the loop: re-execute it. Consume the prelog.
		h.next()
		return false, nil
	}
	return false, nil
}

func (h *hooks) OnPostlog(p *vm.Proc, blockID int, hasRet bool) (bool, error) {
	if blockID == h.root && h.reexecDepth == 0 {
		r := h.next()
		if r == nil {
			// The original execution never completed this interval; replay
			// running past it means the replay diverged.
			return false, fmt.Errorf("log divergence: replay reached postlog of block %d past the log's end", blockID)
		}
		if r.Kind != logging.RecPostlog || int(r.Block) != blockID {
			return false, fmt.Errorf("log divergence: expected postlog of block %d, found %s", blockID, r)
		}
		h.sawRootPostlog = true
		return true, nil
	}
	// Only blocks whose postlog was missing from the log are ever
	// re-executed (OnCall/OnPrelog fall back exactly then), so replay
	// reaching such a block's postlog means it diverged from the original.
	return false, fmt.Errorf("log divergence: unexpected postlog of block %d during replay", blockID)
}

// EmulateFresh re-executes the interval at prelogIdx with *no* postlog
// substitution and *no* state re-imposition: nested callees re-run, shared
// prelogs are ignored, and only received message values are replayed from
// the log. This is the §5.7 what-if mode — changes to the prelog propagate
// through the whole interval instead of being overwritten by logged values.
func (e *Emulator) EmulateFresh(prelogIdx int) (*Result, error) {
	if prelogIdx < 0 || prelogIdx >= len(e.Book.Records) {
		return nil, fmt.Errorf("emulation: prelog index %d out of range", prelogIdx)
	}
	pre := e.Book.Records[prelogIdx]
	if pre.Kind != logging.RecPrelog {
		return nil, fmt.Errorf("emulation: record %d is %s, not a prelog", prelogIdx, pre.Kind)
	}
	e.runs.Add(1)
	meta := e.Prog.Blocks[pre.Block]
	fn := e.Prog.Funcs[meta.FuncIdx]

	machine := vm.New(e.Prog, vm.Options{Mode: vm.ModeEmulate})
	h := &freshHooks{em: e, cursor: prelogIdx + 1, root: int(pre.Block)}
	machine.SetHooks(h)

	slots := make([]vm.Value, fn.NumSlots)
	for slot, val := range pre.Locals.All() {
		if slot < len(slots) {
			slots[slot] = val.Clone()
		}
	}
	startPC := meta.PrelogPC + 1
	if meta.Kind == bytecode.BlockFunc {
		startPC = fn.PrelogPCAt(int(pre.Block)) + 1
	}
	proc := machine.StartEmuProc(fn, slots, startPC)
	for gid, val := range pre.Globals.All() {
		machine.Globals[gid] = val.Clone()
	}

	runErr := machine.RunEmu(proc)
	res := &Result{
		Trace:     proc.Tbuf,
		Globals:   machine.Snapshot(),
		Completed: h.sawRootPostlog,
	}
	if runErr != nil {
		res.Err = runErr
	}
	return res, nil
}

// freshHooks implement the what-if replay: re-execute everything, replaying
// only message values (scanned forward, tolerant of control-flow changes).
type freshHooks struct {
	em             *Emulator
	cursor         int
	root           int
	depth          int // nesting of re-executed blocks of the root's kind
	sawRootPostlog bool
}

func (h *freshHooks) OnSync(p *vm.Proc, op logging.SyncOp, obj int) (int64, error) {
	if op != logging.OpRecv {
		return 0, nil
	}
	// Scan forward for the next recv on this channel; the what-if run may
	// have skipped or added other operations.
	for j := h.cursor; j < len(h.em.Book.Records); j++ {
		r := h.em.Book.Records[j]
		if r.Kind == logging.RecSync && r.Op == logging.OpRecv && r.Obj == obj {
			h.cursor = j + 1
			return r.Value, nil
		}
	}
	return 0, fmt.Errorf("what-if: no logged recv value remains for channel %d", obj)
}

func (h *freshHooks) OnShPrelog(p *vm.Proc, unit bytecode.UnitLog) error { return nil }

func (h *freshHooks) OnCall(p *vm.Proc, callee *bytecode.Func, args []int64) (bool, int64, bool, error) {
	return false, 0, false, nil // always re-execute
}

func (h *freshHooks) OnPrelog(p *vm.Proc, blockID int) (bool, error) {
	if blockID != h.root {
		return false, nil
	}
	h.depth++ // recursive re-entry of the root block
	return false, nil
}

func (h *freshHooks) OnPostlog(p *vm.Proc, blockID int, hasRet bool) (bool, error) {
	if blockID == h.root {
		if h.depth > 0 {
			h.depth--
			return false, nil
		}
		h.sawRootPostlog = true
		return true, nil
	}
	return false, nil
}
