package emulation

import (
	"strings"
	"testing"

	"ppd/internal/compile"
	"ppd/internal/eblock"
	"ppd/internal/logging"
	"ppd/internal/trace"
	"ppd/internal/vm"
)

// logRun compiles src, runs it in ModeLog, and returns the artifacts + VM.
func logRun(t *testing.T, src string, cfg eblock.Config, opts vm.Options) (*compile.Artifacts, *vm.VM) {
	t.Helper()
	art, err := compile.CompileSource("test.mpl", src, cfg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	opts.Mode = vm.ModeLog
	v := vm.New(art.Prog, opts)
	_ = v.Run() // failures are part of some tests
	return art, v
}

func blockIDOf(t *testing.T, art *compile.Artifacts, fn string) int {
	t.Helper()
	b := art.Plan.ByFunc[fn]
	if b == nil {
		t.Fatalf("no e-block for %s", fn)
	}
	return int(b.ID)
}

func TestEmulateSimpleFunction(t *testing.T) {
	art, v := logRun(t, `
var g = 10;
func f(a int, b int) int {
	var s = a + b;
	g = g + s;
	return s * 2;
}
func main() {
	print(f(3, 4));
}`, eblock.Config{}, vm.Options{})
	em := New(art.Prog, v.Log.Books[0])
	idxs := em.PrelogIndices(blockIDOf(t, art, "f"))
	if len(idxs) != 1 {
		t.Fatalf("f intervals = %d, want 1", len(idxs))
	}
	res, err := em.Emulate(idxs[0])
	if err != nil || res.Err != nil {
		t.Fatalf("emulate: %v / %v", err, res.Err)
	}
	if !res.Completed {
		t.Error("interval should complete")
	}
	ts := res.Trace.String()
	for _, want := range []string{"write", "read"} {
		if !strings.Contains(ts, want) {
			t.Errorf("trace missing %q:\n%s", want, ts)
		}
	}
	// Final global state must reflect g = 10 + 7.
	if res.Globals[0].Int != 17 {
		t.Errorf("g after emulation = %d, want 17", res.Globals[0].Int)
	}
}

func TestEmulationMatchesFullTrace(t *testing.T) {
	// The paper's core equivalence: emulating an e-block must produce the
	// same local events a full execution trace would contain.
	src := `
var g = 2;
func work(n int) int {
	var s = 0;
	var i = 0;
	while (i < n) {
		s = s + i * g;
		i = i + 1;
	}
	return s;
}
func main() { print(work(4)); }`
	art, v := logRun(t, src, eblock.Config{}, vm.Options{})

	em := New(art.Prog, v.Log.Books[0])
	idxs := em.PrelogIndices(blockIDOf(t, art, "work"))
	res, err := em.Emulate(idxs[0])
	if err != nil || res.Err != nil {
		t.Fatalf("emulate: %v / %v", err, res.Err)
	}

	// Reference: full-trace execution, extract the work() segment.
	vt := vm.New(art.Prog, vm.Options{Mode: vm.ModeFullTrace})
	if err := vt.Run(); err != nil {
		t.Fatal(err)
	}
	full := vt.Trace.Buffers[0]
	var seg []trace.Event
	depth := 0
	for _, e := range full.Events {
		switch e.Kind {
		case trace.EvCallBegin:
			depth++
			continue
		case trace.EvCallEnd:
			depth--
			continue
		}
		if depth == 1 {
			seg = append(seg, e)
		}
	}
	// Compare the emulated trace's non-end events against the segment.
	var emu []trace.Event
	for _, e := range res.Trace.Events {
		if e.Kind != trace.EvEnd {
			emu = append(emu, e)
		}
	}
	if len(emu) != len(seg) {
		t.Fatalf("emulated %d events, full trace segment has %d\nemu:\n%s",
			len(emu), len(seg), res.Trace)
	}
	for i := range emu {
		a, b := emu[i], seg[i]
		if a.Kind != b.Kind || a.Stmt != b.Stmt || a.Var != b.Var || a.Value != b.Value {
			t.Errorf("event %d: emu=%+v full=%+v", i, a, b)
		}
	}
}

func TestNestedIntervalSubstitution(t *testing.T) {
	// §5.2: emulating the caller must substitute the callee's postlog, not
	// re-execute it.
	src := `
var g;
func subK(v int) int {
	g = g + v;
	return g * 10;
}
func subJ(a int) int {
	var x = a + 1;
	var y = subK(x);
	return y + g;
}
func main() { print(subJ(5)); }`
	art, v := logRun(t, src, eblock.Config{}, vm.Options{})
	em := New(art.Prog, v.Log.Books[0])

	res, err := em.Emulate(em.PrelogIndices(blockIDOf(t, art, "subJ"))[0])
	if err != nil || res.Err != nil {
		t.Fatalf("emulate: %v / %v", err, res.Err)
	}
	ts := res.Trace.String()
	if !strings.Contains(ts, "call-skipped") {
		t.Errorf("callee must be substituted, not re-executed:\n%s", ts)
	}
	// The result must still be correct: g=6, subK returns 60, subJ=66.
	// Verify via the traced write of y.
	if !res.Completed {
		t.Error("interval should complete")
	}
	if res.Globals[0].Int != 6 {
		t.Errorf("g = %d, want 6", res.Globals[0].Int)
	}
}

func TestEmulateCalleeDetail(t *testing.T) {
	// After substitution, the user can still drill into the callee by
	// emulating the callee's own interval (the paper's sub-graph node
	// expansion).
	src := `
var g;
func subK(v int) int {
	g = g + v;
	return g * 10;
}
func main() {
	var a = subK(3);
	var b = subK(4);
	print(a + b);
}`
	art, v := logRun(t, src, eblock.Config{}, vm.Options{})
	em := New(art.Prog, v.Log.Books[0])
	idxs := em.PrelogIndices(blockIDOf(t, art, "subK"))
	if len(idxs) != 2 {
		t.Fatalf("subK intervals = %d, want 2", len(idxs))
	}
	// Second instance: g was 3 at entry, becomes 7, returns 70.
	res, err := em.Emulate(idxs[1])
	if err != nil || res.Err != nil {
		t.Fatalf("emulate: %v / %v", err, res.Err)
	}
	if res.Globals[0].Int != 7 {
		t.Errorf("g = %d, want 7", res.Globals[0].Int)
	}
}

func TestRecvReplaysLoggedValue(t *testing.T) {
	src := `
chan c;
func producer() { send(c, 99); }
func main() {
	spawn producer();
	var v = recv(c);
	print(v * 2);
}`
	art, v := logRun(t, src, eblock.Config{}, vm.Options{Quantum: 1})
	em := New(art.Prog, v.Log.Books[0])
	res, err := em.Emulate(em.PrelogIndices(blockIDOf(t, art, "main"))[0])
	if err != nil || res.Err != nil {
		t.Fatalf("emulate: %v / %v", err, res.Err)
	}
	if !strings.Contains(res.Trace.String(), "=99") {
		t.Errorf("recv value not replayed:\n%s", res.Trace)
	}
}

func TestSharedPrelogHealsDivergence(t *testing.T) {
	// Two processes increment sv under a semaphore. Emulating one process's
	// interval must see the other's writes via the shared prelogs, ending
	// with the same sv value the real execution produced.
	src := `
shared sv;
sem m = 1;
sem done = 0;
func w(k int) {
	var i = 0;
	while (i < 3) {
		P(m);
		sv = sv + k;
		V(m);
		i = i + 1;
	}
	V(done);
}
func main() {
	spawn w(1);
	spawn w(100);
	P(done);
	P(done);
	print(sv);
}`
	art, v := logRun(t, src, eblock.Config{}, vm.Options{Quantum: 1, Seed: 3})
	if v.Failure != nil {
		t.Fatalf("run failed: %v", v.Failure)
	}
	// Emulate worker 1's whole interval.
	em := New(art.Prog, v.Log.Books[1])
	res, err := em.Emulate(em.PrelogIndices(blockIDOf(t, art, "w"))[0])
	if err != nil || res.Err != nil {
		t.Fatalf("emulate: %v / %v", err, res.Err)
	}
	if !res.Completed {
		t.Fatal("worker interval should complete")
	}
	// After the worker's final V(m), its view of sv came from its last
	// shared prelog + its own updates; the emulated final sv must equal
	// what the worker observed, which is consistent only if shared prelogs
	// were applied. Without healing, sv would be at most 3.
	if res.Globals[0].Int < 100 {
		t.Errorf("sv = %d; shared prelogs were not applied", res.Globals[0].Int)
	}
}

func TestFindLastOpenPrelog(t *testing.T) {
	src := `
var g;
func crash(v int) int {
	g = v;
	return v / (v - v);
}
func main() {
	var x = crash(7);
	print(x);
}`
	art, v := logRun(t, src, eblock.Config{}, vm.Options{})
	if v.Failure == nil {
		t.Fatal("expected a failure")
	}
	em := New(art.Prog, v.Log.Books[0])
	open := em.FindLastOpenPrelog()
	if open < 0 {
		t.Fatal("no open prelog found")
	}
	rec := v.Log.Books[0].Records[open]
	if int(rec.Block) != blockIDOf(t, art, "crash") {
		t.Errorf("open prelog block = %d, want crash's", rec.Block)
	}
	// Emulating the open interval must reproduce the failure.
	res, err := em.Emulate(open)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Error("interval must not complete")
	}
	if res.Err == nil || !strings.Contains(res.Err.Error(), "division by zero") {
		t.Errorf("emulation should reproduce the failure, got %v", res.Err)
	}
}

func TestReexecuteOpenCallee(t *testing.T) {
	// Emulating the CALLER of a halted callee: substitution is impossible
	// (no postlog), so the callee re-executes and the failure reproduces.
	src := `
var g;
func crash(v int) int {
	g = v;
	return v / 0;
}
func main() {
	var x = crash(7);
	print(x);
}`
	art, v := logRun(t, src, eblock.Config{}, vm.Options{})
	em := New(art.Prog, v.Log.Books[0])
	res, err := em.Emulate(em.PrelogIndices(blockIDOf(t, art, "main"))[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Err == nil || !strings.Contains(res.Err.Error(), "division by zero") {
		t.Errorf("re-execution should reproduce the failure, got %v", res.Err)
	}
	if !strings.Contains(res.Trace.String(), "call f") && !strings.Contains(res.Trace.String(), "call s") {
		// EvCallBegin renders as "call s<id> f<idx>".
		t.Logf("trace:\n%s", res.Trace)
	}
}

func TestLoopBlockSubstitution(t *testing.T) {
	src := `
var g;
func main() {
	var s = 0;
	for (var i = 0; i < 50; i = i + 1) {
		var a = i * 2;
		var b = a + 1;
		var c = b * b;
		var d = c - a;
		s = s + d;
		g = g + 1;
	}
	print(s);
}`
	art, v := logRun(t, src, eblock.Config{LoopBlockMinStmts: 5}, vm.Options{})
	if len(art.Plan.ByLoop) != 1 {
		t.Fatalf("expected a loop block:\n%s", art.Plan)
	}
	em := New(art.Prog, v.Log.Books[0])

	// Emulating main must skip the loop via postlog substitution.
	res, err := em.Emulate(em.PrelogIndices(blockIDOf(t, art, "main"))[0])
	if err != nil || res.Err != nil {
		t.Fatalf("emulate main: %v / %v", err, res.Err)
	}
	ts := res.Trace.String()
	if !strings.Contains(ts, "call-skipped") {
		t.Errorf("loop should be substituted:\n%s", ts)
	}
	if res.Globals[0].Int != 50 {
		t.Errorf("g = %d, want 50 (from loop postlog)", res.Globals[0].Int)
	}
	// The emulated trace must NOT contain the loop body's per-iteration
	// events.
	if strings.Count(ts, "write") > 20 {
		t.Errorf("loop body appears to have re-executed:\n%s", ts)
	}

	// Drilling into the loop: emulate the loop block itself.
	var loopBlock int
	for _, b := range art.Plan.ByLoop {
		loopBlock = int(b.ID)
	}
	idxs := em.PrelogIndices(loopBlock)
	if len(idxs) != 1 {
		t.Fatalf("loop intervals = %d, want 1", len(idxs))
	}
	res2, err := em.Emulate(idxs[0])
	if err != nil || res2.Err != nil {
		t.Fatalf("emulate loop: %v / %v", err, res2.Err)
	}
	if !res2.Completed {
		t.Error("loop interval should complete")
	}
	// Now the iterations ARE re-executed.
	if got := strings.Count(res2.Trace.String(), "pred"); got != 51 {
		t.Errorf("loop emulation predicates = %d, want 51", got)
	}
}

func TestEmulationConsumedRecordCount(t *testing.T) {
	src := `
var g;
func f() { g = g + 1; }
func main() { f(); f(); }`
	art, v := logRun(t, src, eblock.Config{}, vm.Options{})
	em := New(art.Prog, v.Log.Books[0])
	res, err := em.Emulate(em.PrelogIndices(blockIDOf(t, art, "main"))[0])
	if err != nil || res.Err != nil {
		t.Fatal(err)
	}
	// main's interval: its prelog + 2×(f prelog,f postlog) + main postlog.
	if res.RecordsConsumed != 6 {
		t.Errorf("records consumed = %d, want 6", res.RecordsConsumed)
	}
}

func TestEmulateInvalidIndex(t *testing.T) {
	art, v := logRun(t, `func main() { print(1); }`, eblock.Config{}, vm.Options{})
	em := New(art.Prog, v.Log.Books[0])
	if _, err := em.Emulate(-1); err == nil {
		t.Error("want error for negative index")
	}
	if _, err := em.Emulate(0); err == nil {
		t.Error("want error for non-prelog record (start)")
	}
	_ = logging.RecStart
}

func TestEmulateFreshMatchesFaithfulWithoutOverrides(t *testing.T) {
	src := `
var g = 3;
func helper(v int) int { g = g + v; return g * 2; }
func main() {
	var a = helper(4);
	var b = helper(a);
	print(b);
}`
	art, v := logRun(t, src, eblock.Config{}, vm.Options{})
	em := New(art.Prog, v.Log.Books[0])
	idx := em.PrelogIndices(blockIDOf(t, art, "main"))[0]

	faithful, err := em.Emulate(idx)
	if err != nil || faithful.Err != nil {
		t.Fatalf("faithful: %v/%v", err, faithful.Err)
	}
	fresh, err := em.EmulateFresh(idx)
	if err != nil || fresh.Err != nil {
		t.Fatalf("fresh: %v/%v", err, fresh.Err)
	}
	if !fresh.Completed {
		t.Error("fresh replay should complete")
	}
	// Same final globals either way when nothing is overridden.
	for gid := range faithful.Globals {
		fv, gv := faithful.Globals[gid], fresh.Globals[gid]
		if !fv.IsArray() && fv.Int != gv.Int {
			t.Errorf("global %d: faithful=%d fresh=%d", gid, fv.Int, gv.Int)
		}
	}
	// The fresh trace is longer: callees re-execute instead of being
	// substituted.
	if fresh.Trace.Len() <= faithful.Trace.Len() {
		t.Errorf("fresh trace (%d events) should exceed faithful (%d)",
			fresh.Trace.Len(), faithful.Trace.Len())
	}
}

func TestEmulateFreshRecursiveRoot(t *testing.T) {
	src := `
func fact(n int) int {
	if (n <= 1) { return 1; }
	return n * fact(n - 1);
}
func main() { print(fact(5)); }`
	art, v := logRun(t, src, eblock.Config{}, vm.Options{})
	em := New(art.Prog, v.Log.Books[0])
	// Fresh-emulate the OUTERMOST fact interval: the recursion re-executes
	// entirely (depth counting on the root block id).
	idx := em.PrelogIndices(blockIDOf(t, art, "fact"))[0]
	res, err := em.EmulateFresh(idx)
	if err != nil || res.Err != nil {
		t.Fatalf("fresh: %v/%v", err, res.Err)
	}
	if !res.Completed {
		t.Error("recursive fresh replay should complete")
	}
}

func TestEmulateFreshRecvReplay(t *testing.T) {
	src := `
chan c;
func producer() { send(c, 5); send(c, 7); }
func main() {
	spawn producer();
	var a = recv(c);
	var b = recv(c);
	print(a * b);
}`
	art, v := logRun(t, src, eblock.Config{}, vm.Options{Quantum: 1})
	em := New(art.Prog, v.Log.Books[0])
	idx := em.PrelogIndices(blockIDOf(t, art, "main"))[0]
	res, err := em.EmulateFresh(idx)
	if err != nil || res.Err != nil {
		t.Fatalf("fresh: %v/%v", err, res.Err)
	}
	ts := res.Trace.String()
	if !strings.Contains(ts, "=5") || !strings.Contains(ts, "=7") {
		t.Errorf("recv values not replayed in order:\n%s", ts)
	}
}

func TestEmulateFreshErrors(t *testing.T) {
	art, v := logRun(t, `func main() { print(1); }`, eblock.Config{}, vm.Options{})
	em := New(art.Prog, v.Log.Books[0])
	if _, err := em.EmulateFresh(-1); err == nil {
		t.Error("negative index should fail")
	}
	if _, err := em.EmulateFresh(0); err == nil {
		t.Error("non-prelog record should fail")
	}
}

func TestFirstPrelog(t *testing.T) {
	art, v := logRun(t, `
func f() { print(1); }
func main() { f(); }`, eblock.Config{}, vm.Options{})
	em := New(art.Prog, v.Log.Books[0])
	first := em.FirstPrelog()
	if first < 0 {
		t.Fatal("no first prelog")
	}
	rec := v.Log.Books[0].Records[first]
	if int(rec.Block) != blockIDOf(t, art, "main") {
		t.Errorf("first prelog block = %d, want main's", rec.Block)
	}
	empty := New(art.Prog, &logging.Book{})
	if empty.FirstPrelog() != -1 || empty.LastPrelog() != -1 {
		t.Error("empty book should report -1")
	}
}
