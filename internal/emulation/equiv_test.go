package emulation

import (
	"fmt"
	"sync"
	"testing"

	"ppd/internal/bytecode"
	"ppd/internal/compile"
	"ppd/internal/eblock"
	"ppd/internal/logging"
	"ppd/internal/mplgen"
	"ppd/internal/obs"
	"ppd/internal/vm"
	"ppd/internal/workloads"
)

// equivCases mirrors the vm package's golden matrix: every standard
// workload plus the sync-heavy sharded shape, across seeds and quanta that
// change the interleaving. The emulation fast path must be byte-identical
// to the generic oracle on every interval of every one of these logs.
func equivCases() []struct {
	name    string
	wl      *workloads.Workload
	cfg     eblock.Config
	seed    int64
	quantum int
} {
	return []struct {
		name    string
		wl      *workloads.Workload
		cfg     eblock.Config
		seed    int64
		quantum int
	}{
		{"matmul_s0_q5", workloads.Matmul(16), eblock.DefaultConfig(), 0, 5},
		{"matmul_s3_q40", workloads.Matmul(16), eblock.DefaultConfig(), 3, 40},
		{"prodcons_s0_q5", workloads.ProdCons(600), eblock.DefaultConfig(), 0, 5},
		{"prodcons_s3_q40", workloads.ProdCons(600), eblock.DefaultConfig(), 3, 40},
		{"tokenring_s0_q5", workloads.TokenRing(4, 100), eblock.DefaultConfig(), 0, 5},
		{"tokenring_s3_q40", workloads.TokenRing(4, 100), eblock.DefaultConfig(), 3, 40},
		{"divide_s0_q5", workloads.Divide(11), eblock.DefaultConfig(), 0, 5},
		{"divide_s3_q40", workloads.Divide(11), eblock.DefaultConfig(), 3, 40},
		{"sharded_s0_q3", workloads.Sharded(4, 40), eblock.Config{}, 0, 3},
	}
}

// prelogIdxs returns up to limit prelog record indices of the book, evenly
// strided (keeping the first and last) so long books stay cheap to sweep.
func prelogIdxs(book *logging.Book, limit int) []int {
	var all []int
	for i, r := range book.Records {
		if r.Kind == logging.RecPrelog {
			all = append(all, i)
		}
	}
	if len(all) <= limit {
		return all
	}
	out := make([]int, 0, limit)
	for k := 0; k < limit; k++ {
		out = append(out, all[k*(len(all)-1)/(limit-1)])
	}
	return out
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// diffResults fails the test unless fast and oracle agree on every
// observable of an emulation: the full trace, the end-of-interval globals,
// the reproduced failure, the records consumed, and completion.
func diffResults(t *testing.T, ctx string, fast, oracle *Result) {
	t.Helper()
	if got, want := fast.Trace.String(), oracle.Trace.String(); got != want {
		t.Errorf("%s: trace diverges\nfast:\n%s\noracle:\n%s", ctx, got, want)
	}
	if got, want := fmt.Sprintf("%v", fast.Globals), fmt.Sprintf("%v", oracle.Globals); got != want {
		t.Errorf("%s: globals diverge\nfast:   %s\noracle: %s", ctx, got, want)
	}
	if got, want := errString(fast.Err), errString(oracle.Err); got != want {
		t.Errorf("%s: error diverges: fast %q, oracle %q", ctx, got, want)
	}
	if fast.RecordsConsumed != oracle.RecordsConsumed {
		t.Errorf("%s: records consumed: fast %d, oracle %d", ctx, fast.RecordsConsumed, oracle.RecordsConsumed)
	}
	if fast.Completed != oracle.Completed {
		t.Errorf("%s: completed: fast %t, oracle %t", ctx, fast.Completed, oracle.Completed)
	}
}

// TestEmuDispatchByteIdentical is the fast path's differential gate: across
// the golden workload × seed × quantum matrix, with and without fused
// superinstructions, every interval's pooled fast-dispatch emulation must
// match the fresh-VM generic oracle on every observable.
func TestEmuDispatchByteIdentical(t *testing.T) {
	for _, tc := range equivCases() {
		for _, fused := range []bool{false, true} {
			name := tc.name + "_unfused"
			var tab *bytecode.FusionTable
			if fused {
				name = tc.name + "_fused"
				tab = bytecode.DefaultFusionTable()
			}
			t.Run(name, func(t *testing.T) {
				art, err := compile.CompileFusedSource(tc.wl.Name, tc.wl.Src, tc.cfg, tab)
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				v := vm.New(art.Prog, vm.Options{Mode: vm.ModeLog, Seed: tc.seed, Quantum: tc.quantum})
				_ = v.Run()
				for pid, book := range v.Log.Books {
					fast := New(art.Prog, book)
					oracle := New(art.Prog, book)
					oracle.Generic = true
					for _, idx := range prelogIdxs(book, 64) {
						fres, ferr := fast.Emulate(idx)
						ores, oerr := oracle.Emulate(idx)
						if errString(ferr) != errString(oerr) {
							t.Fatalf("pid %d idx %d: call error diverges: fast %v, oracle %v", pid, idx, ferr, oerr)
						}
						if ferr != nil {
							continue
						}
						diffResults(t, fmt.Sprintf("pid %d idx %d", pid, idx), fres, ores)
					}
				}
			})
		}
	}
}

// FuzzEmuEquivalence fuzzes the same property over generated programs: any
// MPL program's logged intervals must emulate identically through the
// pooled fast path and the generic oracle. Seeded like the vm package's
// fusion fuzz so the corpus covers every sync/branch shape.
func FuzzEmuEquivalence(f *testing.F) {
	for _, wl := range workloads.Standard() {
		f.Add(wl.Src, int64(0), 7)
	}
	for seed := int64(0); seed < 15; seed++ {
		f.Add(mplgen.Generate(seed, mplgen.RacyConfig()), seed, 5)
	}
	for seed := int64(0); seed < 5; seed++ {
		f.Add(mplgen.Generate(seed, mplgen.DefaultConfig()), seed, 11)
		f.Add(mplgen.Generate(seed, mplgen.ParallelConfig()), seed, 3)
	}
	f.Fuzz(func(t *testing.T, src string, seed int64, quantum int) {
		if quantum < 1 || quantum > 1000 {
			return
		}
		art, err := compile.CompileFusedSource("fuzz.mpl", src, eblock.DefaultConfig(), bytecode.DefaultFusionTable())
		if err != nil {
			return // not a valid program; nothing to compare
		}
		const maxSteps = 2_000_000 // bound runaway loops
		v := vm.New(art.Prog, vm.Options{Mode: vm.ModeLog, Seed: seed, Quantum: quantum, MaxSteps: maxSteps})
		_ = v.Run()
		for pid, book := range v.Log.Books {
			fast := New(art.Prog, book)
			oracle := New(art.Prog, book)
			oracle.Generic = true
			for _, idx := range prelogIdxs(book, 16) {
				fres, ferr := fast.Emulate(idx)
				ores, oerr := oracle.Emulate(idx)
				if errString(ferr) != errString(oerr) {
					t.Fatalf("pid %d idx %d: call error diverges: fast %v, oracle %v", pid, idx, ferr, oerr)
				}
				if ferr != nil {
					continue
				}
				diffResults(t, fmt.Sprintf("pid %d idx %d", pid, idx), fres, ores)
			}
		}
	})
}

// TestPoolReuseObservable proves the pool actually recycles contexts and
// reports it: the second emulation on the same pool is a pool hit, the
// fast path's dispatches land in debug.emu.dispatch.fast, and repeated
// results stay identical to the first.
func TestPoolReuseObservable(t *testing.T) {
	tc := equivCases()[2] // prodcons: multiple procs and sync records
	art, err := compile.CompileFusedSource(tc.wl.Name, tc.wl.Src, tc.cfg, bytecode.DefaultFusionTable())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	v := vm.New(art.Prog, vm.Options{Mode: vm.ModeLog, Seed: tc.seed, Quantum: tc.quantum})
	_ = v.Run()

	sink := obs.New()
	em := New(art.Prog, v.Log.Books[0])
	em.SetPool(NewPool(art.Prog, 2, sink))
	idx := em.FirstPrelog()
	if idx < 0 {
		t.Fatal("no prelog")
	}
	first, err := em.Emulate(idx)
	if err != nil {
		t.Fatal(err)
	}
	second, err := em.Emulate(idx)
	if err != nil {
		t.Fatal(err)
	}
	diffResults(t, "repeat", second, first)

	if got := sink.Counter("debug.emu.pool.misses").Value(); got != 1 {
		t.Errorf("pool misses = %d, want 1", got)
	}
	if got := sink.Counter("debug.emu.pool.hits").Value(); got != 1 {
		t.Errorf("pool hits = %d, want 1", got)
	}
	if got := sink.Counter("debug.emu.dispatch.fast").Value(); got == 0 {
		t.Error("no fast dispatches recorded")
	}
}

// TestEmulateIntoRecycles drives one recycled Result through every
// interval of a log and checks each against a fresh oracle emulation: the
// scratch reuse (trace buffer, globals) must never leak one interval's
// state into the next.
func TestEmulateIntoRecycles(t *testing.T) {
	tc := equivCases()[0] // matmul: arrays in globals and locals
	art, err := compile.CompileFusedSource(tc.wl.Name, tc.wl.Src, tc.cfg, bytecode.DefaultFusionTable())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	v := vm.New(art.Prog, vm.Options{Mode: vm.ModeLog, Seed: tc.seed, Quantum: tc.quantum})
	_ = v.Run()

	book := v.Log.Books[0]
	em := New(art.Prog, book)
	oracle := New(art.Prog, book)
	oracle.Generic = true
	res := &Result{}
	for _, idx := range prelogIdxs(book, 32) {
		if err := em.EmulateInto(idx, res); err != nil {
			t.Fatalf("idx %d: %v", idx, err)
		}
		want, err := oracle.Emulate(idx)
		if err != nil {
			t.Fatalf("idx %d oracle: %v", idx, err)
		}
		diffResults(t, fmt.Sprintf("idx %d", idx), res, want)
	}
}

// TestEmulateConcurrentWidths fans concurrent emulations over one shared
// bounded pool at several widths (width 0 = serial baseline) and checks
// every result against the oracle. Under `make race` this doubles as the
// pool's race gate.
func TestEmulateConcurrentWidths(t *testing.T) {
	tc := equivCases()[4] // tokenring: 5 processes, sync-heavy
	art, err := compile.CompileFusedSource(tc.wl.Name, tc.wl.Src, tc.cfg, bytecode.DefaultFusionTable())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	v := vm.New(art.Prog, vm.Options{Mode: vm.ModeLog, Seed: tc.seed, Quantum: tc.quantum})
	_ = v.Run()

	type job struct{ pid, idx int }
	var jobs []job
	oracle := make(map[job]*Result)
	for pid, book := range v.Log.Books {
		og := New(art.Prog, book)
		og.Generic = true
		for _, idx := range prelogIdxs(book, 8) {
			j := job{pid, idx}
			want, err := og.Emulate(idx)
			if err != nil {
				t.Fatalf("oracle pid %d idx %d: %v", pid, idx, err)
			}
			jobs = append(jobs, j)
			oracle[j] = want
		}
	}

	for _, width := range []int{0, 2, 4, 8} {
		t.Run(fmt.Sprintf("w%d", width), func(t *testing.T) {
			pool := NewPool(art.Prog, 4, nil)
			emus := make([]*Emulator, len(v.Log.Books))
			for pid, book := range v.Log.Books {
				emus[pid] = New(art.Prog, book)
				emus[pid].SetPool(pool)
			}
			run := func(j job) {
				got, err := emus[j.pid].Emulate(j.idx)
				if err != nil {
					t.Errorf("pid %d idx %d: %v", j.pid, j.idx, err)
					return
				}
				diffResults(t, fmt.Sprintf("w%d pid %d idx %d", width, j.pid, j.idx), got, oracle[j])
			}
			if width == 0 {
				for _, j := range jobs {
					run(j)
				}
				return
			}
			ch := make(chan job)
			var wg sync.WaitGroup
			for w := 0; w < width; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for j := range ch {
						run(j)
					}
				}()
			}
			for _, j := range jobs {
				ch <- j
			}
			close(ch)
			wg.Wait()
		})
	}
}
