package emulation

import (
	"sync"

	"ppd/internal/bytecode"
	"ppd/internal/obs"
	"ppd/internal/vm"
)

// DefaultPoolBound is the per-pool cap on idle replay contexts. The
// controller replaces the default pool with a shared one sized to its
// worker count, so this only governs emulators used standalone.
const DefaultPoolBound = 4

// Context is one reusable replay context: a ModeEmulate VM plus the
// scratch buffers an emulation needs (frame slots, coverage marks, hook
// state). A context is checked out of a Pool for exactly one EmulateInto
// call at a time; across calls the VM's globals, process, root frame, and
// slot arrays are recycled, so steady-state replay allocates only what the
// interval itself demands (trace growth, re-executed callee frames).
type Context struct {
	machine *vm.VM
	h       hooks
	slots   []vm.Value
	cover   []bool
}

// Pool hands out replay contexts for one program. It is bounded: at most
// `bound` idle contexts are retained, so a server holding many sessions
// does not hoard a VM per past query — excess contexts are dropped for the
// GC. All methods are safe for concurrent use (the controller's prefetcher
// emulates neighbor intervals in parallel).
type Pool struct {
	prog *bytecode.Program

	mu   sync.Mutex
	free []*Context

	bound int

	// Resolved once at construction (nil counters are no-ops).
	cHits, cMisses *obs.Counter
	cFast, cCold   *obs.Counter
}

// NewPool returns a bounded context pool for prog, registering its
// debug.emu.* counters on sink (nil sink disables them).
func NewPool(prog *bytecode.Program, bound int, sink *obs.Sink) *Pool {
	if bound <= 0 {
		bound = DefaultPoolBound
	}
	return &Pool{
		prog:    prog,
		bound:   bound,
		cHits:   sink.Counter("debug.emu.pool.hits"),
		cMisses: sink.Counter("debug.emu.pool.misses"),
		cFast:   sink.Counter("debug.emu.dispatch.fast"),
		cCold:   sink.Counter("debug.emu.dispatch.cold"),
	}
}

// get checks out a context, building a fresh one on pool miss.
func (p *Pool) get() *Context {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		c := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		p.cHits.Inc()
		return c
	}
	p.mu.Unlock()
	p.cMisses.Inc()
	return &Context{machine: vm.New(p.prog, vm.Options{Mode: vm.ModeEmulate})}
}

// put returns a context; beyond the bound it is dropped.
func (p *Pool) put(c *Context) {
	p.mu.Lock()
	if len(p.free) < p.bound {
		p.free = append(p.free, c)
	}
	p.mu.Unlock()
}

// note folds one run's dispatch-path split into the pool's counters.
func (p *Pool) note(fast, cold int64) {
	p.cFast.Add(fast)
	p.cCold.Add(cold)
}
