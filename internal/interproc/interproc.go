// Package interproc computes the call graph and interprocedural summaries
// of MPL programs: for every function, the sets of globals it may read
// (USED) and may write (DEFINED), transitively through calls.
//
// These are the paper's §5.1 USED/DEFINED sets "obtained by applying data
// flow analysis" and the §2 "inter-procedural analysis commonly used in
// optimizing compilers" (Cooper/Kennedy-style MOD/REF). They size the
// prelogs and postlogs, and they let e-block construction inline the
// effects of small leaf subroutines into their callers (§5.4).
package interproc

import (
	"ppd/internal/ast"
	"ppd/internal/bitset"
	"ppd/internal/dataflow"
	"ppd/internal/sched"
	"ppd/internal/sem"
)

// FuncSummary holds the interprocedural facts for one function.
type FuncSummary struct {
	Fn *sem.FuncInfo

	// DirectUsed/DirectDefined cover only this function's own statements
	// (no callees), over GlobalIDs.
	DirectUsed    *bitset.Set
	DirectDefined *bitset.Set

	// Used/Defined are the transitive closures over the call graph.
	Used    *bitset.Set
	Defined *bitset.Set

	// Callees lists functions called (statically) from this function,
	// deduplicated, in first-call order. Spawned functions are included:
	// a spawn transfers control (in a new process), and the paper's
	// program database tracks it the same way.
	Callees []string

	// SpawnedOnly marks callees reached only via spawn, whose effects run
	// in a different process and therefore do NOT contribute to this
	// function's USED/DEFINED sets.
	SpawnedOnly map[string]bool

	// IsLeaf reports whether the function calls nothing (spawns allowed).
	IsLeaf bool

	// NumStmts is the number of executable statements, used by e-block
	// sizing heuristics.
	NumStmts int

	// UsesSync reports whether the function contains any synchronization
	// operation (P/V, send/recv, spawn).
	UsesSync bool
}

// Result is the full interprocedural analysis output.
type Result struct {
	Info      *sem.Info
	Summaries map[string]*FuncSummary

	// UseDefs holds, for each function, the direct per-statement UseDef
	// facts (before call-effect widening), so later phases don't recompute.
	UseDefs map[string]map[ast.StmtID]*dataflow.UseDef

	// Spaces holds each function's variable space.
	Spaces map[string]*dataflow.Space
}

// Effects returns a dataflow.CallEffects callback backed by the summaries.
func (r *Result) Effects() dataflow.CallEffects {
	return func(callee string) (*bitset.Set, *bitset.Set) {
		s, ok := r.Summaries[callee]
		if !ok {
			return nil, nil
		}
		return s.Used, s.Defined
	}
}

// Analyze computes summaries for every function with a fixpoint over the
// call graph (sound for recursion and mutual recursion).
func Analyze(info *sem.Info) *Result {
	return AnalyzeWith(info, nil)
}

// funcFacts is one function's pass-1 output: the per-function direct facts
// are independent of every other function, so AnalyzeWith can compute them
// in parallel and merge in FuncList order.
type funcFacts struct {
	space *dataflow.Space
	uds   map[ast.StmtID]*dataflow.UseDef
	sum   *FuncSummary
}

// directFacts computes pass 1 (local dataflow, call-graph edges, sync
// markers) for one function. It reads only the AST and the checker's
// read-only symbol tables, never another function's facts.
func directFacts(info *sem.Info, fn *sem.FuncInfo) funcFacts {
	nGlobals := info.NumGlobals()
	space := dataflow.NewSpace(info, fn)
	uds := dataflow.ComputeUseDef(space)

	s := &FuncSummary{
		Fn:            fn,
		DirectUsed:    bitset.New(nGlobals),
		DirectDefined: bitset.New(nGlobals),
		SpawnedOnly:   make(map[string]bool),
	}
	for _, ud := range uds {
		s.DirectUsed.UnionWith(space.GlobalsOnly(ud.Use))
		s.DirectDefined.UnionWith(space.GlobalsOnly(ud.Def))
	}

	seen := make(map[string]bool)
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case ast.Stmt:
			if _, isBlock := n.(*ast.BlockStmt); !isBlock {
				s.NumStmts++
			}
			switch st := n.(type) {
			case *ast.SemStmt, *ast.SendStmt:
				s.UsesSync = true
			case *ast.SpawnStmt:
				s.UsesSync = true
				name := st.Call.Fun.Name
				if !seen[name] {
					seen[name] = true
					s.Callees = append(s.Callees, name)
				}
			}
		case *ast.RecvExpr:
			s.UsesSync = true
		case *ast.CallExpr:
			name := n.Fun.Name
			if !seen[name] {
				seen[name] = true
				s.Callees = append(s.Callees, name)
			}
		}
		return true
	})
	// Spawn targets inside CallExpr of SpawnStmt were visited as
	// CallExpr too; distinguish: spawned-only = in Callees but never a
	// plain call. SpawnStmt.Call is itself a *ast.CallExpr node, so we
	// must subtract those occurrences.
	spawnCalls := make(map[*ast.CallExpr]bool)
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		if sp, ok := n.(*ast.SpawnStmt); ok {
			spawnCalls[sp.Call] = true
		}
		return true
	})
	plain := make(map[string]bool)
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		if ce, ok := n.(*ast.CallExpr); ok && !spawnCalls[ce] {
			plain[ce.Fun.Name] = true
		}
		return true
	})
	for _, callee := range s.Callees {
		if !plain[callee] {
			s.SpawnedOnly[callee] = true
		}
	}
	s.IsLeaf = len(plain) == 0
	return funcFacts{space: space, uds: uds, sum: s}
}

// AnalyzeWith is Analyze with pass 1 (per-function direct facts) fanned out
// across pool; a nil pool keeps every pass on the calling goroutine. The
// fixpoint passes stay sequential — they converge to the least fixpoint
// regardless of visit order, so the result is identical either way.
func AnalyzeWith(info *sem.Info, pool *sched.Pool) *Result {
	r := &Result{
		Info:      info,
		Summaries: make(map[string]*FuncSummary),
		UseDefs:   make(map[string]map[ast.StmtID]*dataflow.UseDef),
		Spaces:    make(map[string]*dataflow.Space),
	}

	// Pass 1: direct facts, one independent unit per function.
	n := len(info.FuncList)
	var facts []funcFacts
	if pool == nil {
		facts = make([]funcFacts, n)
		for i, fn := range info.FuncList {
			facts[i] = directFacts(info, fn)
		}
	} else {
		facts = sched.Map(pool, n, func(i int) funcFacts {
			return directFacts(info, info.FuncList[i])
		})
	}
	for i, fn := range info.FuncList {
		r.Spaces[fn.Name()] = facts[i].space
		r.UseDefs[fn.Name()] = facts[i].uds
		r.Summaries[fn.Name()] = facts[i].sum
	}

	// Pass 2: transitive closure (only through plain calls; spawned code
	// runs in another process).
	for _, s := range r.Summaries {
		s.Used = s.DirectUsed.Clone()
		s.Defined = s.DirectDefined.Clone()
	}
	changed := true
	for changed {
		changed = false
		for _, s := range r.Summaries {
			for _, callee := range s.Callees {
				if s.SpawnedOnly[callee] {
					continue
				}
				cs, ok := r.Summaries[callee]
				if !ok {
					continue
				}
				if s.Used.UnionWith(cs.Used) {
					changed = true
				}
				if s.Defined.UnionWith(cs.Defined) {
					changed = true
				}
			}
		}
	}

	// Pass 3: sync-through-calls (a function that calls a syncing function
	// synchronizes too).
	changed = true
	for changed {
		changed = false
		for _, s := range r.Summaries {
			if s.UsesSync {
				continue
			}
			for _, callee := range s.Callees {
				if s.SpawnedOnly[callee] {
					continue
				}
				if cs, ok := r.Summaries[callee]; ok && cs.UsesSync {
					s.UsesSync = true
					changed = true
					break
				}
			}
		}
	}
	return r
}

// SpawnTargets returns the set of functions that are ever spawned anywhere
// in the program; each is a process entry point.
func (r *Result) SpawnTargets() map[string]bool {
	out := make(map[string]bool)
	for _, fn := range r.Info.FuncList {
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			if sp, ok := n.(*ast.SpawnStmt); ok {
				out[sp.Call.Fun.Name] = true
			}
			return true
		})
	}
	return out
}
