package interproc

import (
	"testing"

	"ppd/internal/parser"
	"ppd/internal/sem"
	"ppd/internal/source"
)

func analyze(t *testing.T, src string) *Result {
	t.Helper()
	errs := &source.ErrorList{}
	prog := parser.ParseString("test.mpl", src, errs)
	info := sem.Check(prog, errs)
	if errs.ErrCount() != 0 {
		t.Fatalf("front-end errors:\n%v", errs.Err())
	}
	return Analyze(info)
}

func globalNames(r *Result, set interface{ Elems() []int }) []string {
	var out []string
	for _, id := range set.Elems() {
		out = append(out, r.Info.Globals[id].Name)
	}
	return out
}

func has(names []string, want string) bool {
	for _, n := range names {
		if n == want {
			return true
		}
	}
	return false
}

func TestDirectModRef(t *testing.T) {
	r := analyze(t, `
var g1;
var g2;
func reader() int { return g1; }
func writer(v int) { g2 = v; }
func main() { writer(reader()); }
`)
	rd := r.Summaries["reader"]
	if !has(globalNames(r, rd.DirectUsed), "g1") || has(globalNames(r, rd.DirectUsed), "g2") {
		t.Errorf("reader used = %v", globalNames(r, rd.DirectUsed))
	}
	if !rd.DirectDefined.IsEmpty() {
		t.Errorf("reader defined = %v", globalNames(r, rd.DirectDefined))
	}
	wr := r.Summaries["writer"]
	if !has(globalNames(r, wr.DirectDefined), "g2") {
		t.Errorf("writer defined = %v", globalNames(r, wr.DirectDefined))
	}
}

func TestTransitiveClosure(t *testing.T) {
	r := analyze(t, `
var a; var b; var c;
func leaf() { c = 1; }
func mid() int { leaf(); return b; }
func top() { a = mid(); }
func main() { top(); }
`)
	top := r.Summaries["top"]
	def := globalNames(r, top.Defined)
	use := globalNames(r, top.Used)
	if !has(def, "a") || !has(def, "c") {
		t.Errorf("top defined = %v, want a and c", def)
	}
	if !has(use, "b") {
		t.Errorf("top used = %v, want b", use)
	}
	m := r.Summaries["main"]
	if !has(globalNames(r, m.Defined), "c") {
		t.Errorf("main defined = %v, want c (via top->mid->leaf)", globalNames(r, m.Defined))
	}
}

func TestRecursionConverges(t *testing.T) {
	r := analyze(t, `
var g;
func even(n int) int { if (n == 0) { return 1; } return odd(n - 1); }
func odd(n int) int { if (n == 0) { return 0; } g = n; return even(n - 1); }
func main() { var x = even(10); }
`)
	ev := r.Summaries["even"]
	if !has(globalNames(r, ev.Defined), "g") {
		t.Errorf("even defined = %v, want g via mutual recursion", globalNames(r, ev.Defined))
	}
	if !has(globalNames(r, r.Summaries["main"].Defined), "g") {
		t.Error("main should transitively define g")
	}
}

func TestSpawnDoesNotLeakEffects(t *testing.T) {
	r := analyze(t, `
var g;
func worker() { g = 1; }
func main() { spawn worker(); }
`)
	m := r.Summaries["main"]
	if has(globalNames(r, m.Defined), "g") {
		t.Error("spawned callee's writes must not count as the spawner's writes")
	}
	if !m.SpawnedOnly["worker"] {
		t.Error("worker should be marked spawned-only")
	}
	if !m.UsesSync {
		t.Error("spawn is a synchronization operation")
	}
	targets := r.SpawnTargets()
	if !targets["worker"] {
		t.Error("worker missing from spawn targets")
	}
}

func TestLeafDetection(t *testing.T) {
	r := analyze(t, `
func leaf(x int) int { return x * 2; }
func caller() int { return leaf(3); }
func main() { var v = caller(); }
`)
	if !r.Summaries["leaf"].IsLeaf {
		t.Error("leaf should be a leaf")
	}
	if r.Summaries["caller"].IsLeaf {
		t.Error("caller is not a leaf")
	}
}

func TestSyncPropagation(t *testing.T) {
	r := analyze(t, `
sem s;
func locks() { P(s); V(s); }
func indirect() { locks(); }
func pure(x int) int { return x; }
func main() { indirect(); var v = pure(1); }
`)
	if !r.Summaries["locks"].UsesSync {
		t.Error("locks uses sync")
	}
	if !r.Summaries["indirect"].UsesSync {
		t.Error("sync must propagate through calls")
	}
	if r.Summaries["pure"].UsesSync {
		t.Error("pure must not be marked syncing")
	}
	if !r.Summaries["main"].UsesSync {
		t.Error("main calls syncing code")
	}
}

func TestStmtCount(t *testing.T) {
	r := analyze(t, `
func f() {
	var a = 1;
	var b = 2;
	if (a < b) { a = b; }
}
func main() { f(); }
`)
	if got := r.Summaries["f"].NumStmts; got != 4 {
		t.Errorf("f NumStmts = %d, want 4", got)
	}
}

func TestArrayGlobalsInSets(t *testing.T) {
	r := analyze(t, `
shared buf[8];
func fill(i int, v int) { buf[i] = v; }
func sum() int { return buf[0] + buf[1]; }
func main() { fill(0, 1); var s = sum(); }
`)
	if !has(globalNames(r, r.Summaries["fill"].Defined), "buf") {
		t.Error("fill should define buf")
	}
	// a[i]=v also uses buf (partial write).
	if !has(globalNames(r, r.Summaries["sum"].Used), "buf") {
		t.Error("sum should use buf")
	}
}
