// Package lexer implements the hand-written scanner for MPL source text.
// It produces token streams consumed by the parser and records diagnostics
// for malformed input rather than aborting, so the parser can recover.
package lexer

import (
	"ppd/internal/source"
	"ppd/internal/token"
)

// Token is one scanned token: kind, literal text, and position.
type Token struct {
	Kind token.Kind
	Lit  string
	Pos  source.Pos
}

// Lexer scans an MPL source file.
type Lexer struct {
	file *source.File
	errs *source.ErrorList

	src    string
	offset int // current reading offset
	ch     byte
	atEOF  bool
}

// New returns a lexer over file, reporting problems to errs.
func New(file *source.File, errs *source.ErrorList) *Lexer {
	l := &Lexer{file: file, errs: errs, src: file.Content}
	l.advance()
	return l
}

func (l *Lexer) advance() {
	if l.offset >= len(l.src) {
		l.atEOF = true
		l.ch = 0
		return
	}
	l.ch = l.src[l.offset]
	l.offset++
}

// peek returns the next byte without consuming it, or 0 at EOF.
func (l *Lexer) peek() byte {
	if l.offset >= len(l.src) {
		return 0
	}
	return l.src[l.offset]
}

func (l *Lexer) errorf(pos source.Pos, format string, args ...any) {
	l.errs.Errorf(l.file.Position(pos), format, args...)
}

func isLetter(ch byte) bool {
	return 'a' <= ch && ch <= 'z' || 'A' <= ch && ch <= 'Z' || ch == '_'
}

func isDigit(ch byte) bool { return '0' <= ch && ch <= '9' }

// Next scans and returns the next token, skipping whitespace and comments.
func (l *Lexer) Next() Token {
	for !l.atEOF && (l.ch == ' ' || l.ch == '\t' || l.ch == '\n' || l.ch == '\r') {
		l.advance()
	}
	pos := l.file.Pos(l.offset - 1)
	if l.atEOF {
		return Token{Kind: token.EOF, Pos: l.file.Pos(len(l.src))}
	}

	ch := l.ch
	switch {
	case isLetter(ch):
		start := l.offset - 1
		for !l.atEOF && (isLetter(l.ch) || isDigit(l.ch)) {
			l.advance()
		}
		end := l.offset - 1
		if l.atEOF {
			end = len(l.src)
		}
		lit := l.src[start:end]
		return Token{Kind: token.Lookup(lit), Lit: lit, Pos: pos}

	case isDigit(ch):
		start := l.offset - 1
		for !l.atEOF && isDigit(l.ch) {
			l.advance()
		}
		end := l.offset - 1
		if l.atEOF {
			end = len(l.src)
		}
		return Token{Kind: token.INT, Lit: l.src[start:end], Pos: pos}

	case ch == '"':
		return l.scanString(pos)
	}

	l.advance() // consume ch
	mk := func(k token.Kind) Token { return Token{Kind: k, Lit: k.String(), Pos: pos} }

	switch ch {
	case '+':
		return mk(token.ADD)
	case '-':
		return mk(token.SUB)
	case '*':
		return mk(token.MUL)
	case '/':
		if !l.atEOF && l.ch == '/' {
			start := l.offset - 1
			for !l.atEOF && l.ch != '\n' {
				l.advance()
			}
			end := l.offset - 1
			if l.atEOF {
				end = len(l.src)
			}
			_ = l.src[start:end] // comments are skipped, not returned
			return l.Next()
		}
		if !l.atEOF && l.ch == '*' {
			l.scanBlockComment(pos)
			return l.Next()
		}
		return mk(token.QUO)
	case '%':
		return mk(token.REM)
	case '&':
		if !l.atEOF && l.ch == '&' {
			l.advance()
			return mk(token.LAND)
		}
		l.errorf(pos, "unexpected character %q (did you mean &&?)", ch)
		return Token{Kind: token.ILLEGAL, Lit: string(ch), Pos: pos}
	case '|':
		if !l.atEOF && l.ch == '|' {
			l.advance()
			return mk(token.LOR)
		}
		l.errorf(pos, "unexpected character %q (did you mean ||?)", ch)
		return Token{Kind: token.ILLEGAL, Lit: string(ch), Pos: pos}
	case '!':
		if !l.atEOF && l.ch == '=' {
			l.advance()
			return mk(token.NEQ)
		}
		return mk(token.NOT)
	case '=':
		if !l.atEOF && l.ch == '=' {
			l.advance()
			return mk(token.EQL)
		}
		return mk(token.ASSIGN)
	case '<':
		if !l.atEOF && l.ch == '=' {
			l.advance()
			return mk(token.LEQ)
		}
		return mk(token.LSS)
	case '>':
		if !l.atEOF && l.ch == '=' {
			l.advance()
			return mk(token.GEQ)
		}
		return mk(token.GTR)
	case '(':
		return mk(token.LPAREN)
	case ')':
		return mk(token.RPAREN)
	case '{':
		return mk(token.LBRACE)
	case '}':
		return mk(token.RBRACE)
	case '[':
		return mk(token.LBRACK)
	case ']':
		return mk(token.RBRACK)
	case ',':
		return mk(token.COMMA)
	case ';':
		return mk(token.SEMICOLON)
	}

	l.errorf(pos, "unexpected character %q", ch)
	return Token{Kind: token.ILLEGAL, Lit: string(ch), Pos: pos}
}

func (l *Lexer) scanString(pos source.Pos) Token {
	l.advance() // consume opening quote
	var buf []byte
	for {
		if l.atEOF || l.ch == '\n' {
			l.errorf(pos, "unterminated string literal")
			return Token{Kind: token.STRING, Lit: string(buf), Pos: pos}
		}
		if l.ch == '"' {
			l.advance()
			return Token{Kind: token.STRING, Lit: string(buf), Pos: pos}
		}
		if l.ch == '\\' {
			l.advance()
			if l.atEOF {
				l.errorf(pos, "unterminated string literal")
				return Token{Kind: token.STRING, Lit: string(buf), Pos: pos}
			}
			switch l.ch {
			case 'n':
				buf = append(buf, '\n')
			case 't':
				buf = append(buf, '\t')
			case '\\':
				buf = append(buf, '\\')
			case '"':
				buf = append(buf, '"')
			default:
				l.errorf(pos, "unknown escape \\%c", l.ch)
				buf = append(buf, l.ch)
			}
			l.advance()
			continue
		}
		buf = append(buf, l.ch)
		l.advance()
	}
}

func (l *Lexer) scanBlockComment(pos source.Pos) {
	l.advance() // consume '*'
	for {
		if l.atEOF {
			l.errorf(pos, "unterminated block comment")
			return
		}
		if l.ch == '*' && l.peek() == '/' {
			l.advance()
			l.advance()
			return
		}
		l.advance()
	}
}

// ScanAll scans the whole file into a slice ending with EOF. Convenient for
// tests and for the parser's lookahead buffer.
func ScanAll(file *source.File, errs *source.ErrorList) []Token {
	l := New(file, errs)
	var toks []Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks
		}
	}
}
