package lexer

import (
	"testing"

	"ppd/internal/source"
	"ppd/internal/token"
)

func scan(t *testing.T, src string) ([]Token, *source.ErrorList) {
	t.Helper()
	errs := &source.ErrorList{}
	toks := ScanAll(source.NewFile("test.mpl", src), errs)
	return toks, errs
}

func kinds(toks []Token) []token.Kind {
	out := make([]token.Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestScanOperatorsAndKeywords(t *testing.T) {
	toks, errs := scan(t, `func main() { x = a + b*2; if (x >= 10 && !done) { P(s); V(s); } }`)
	if errs.Len() != 0 {
		t.Fatalf("unexpected errors: %v", errs.Err())
	}
	want := []token.Kind{
		token.FUNC, token.IDENT, token.LPAREN, token.RPAREN, token.LBRACE,
		token.IDENT, token.ASSIGN, token.IDENT, token.ADD, token.IDENT, token.MUL, token.INT, token.SEMICOLON,
		token.IF, token.LPAREN, token.IDENT, token.GEQ, token.INT, token.LAND, token.NOT, token.IDENT, token.RPAREN,
		token.LBRACE, token.ACQUIRE, token.LPAREN, token.IDENT, token.RPAREN, token.SEMICOLON,
		token.RELEASE, token.LPAREN, token.IDENT, token.RPAREN, token.SEMICOLON, token.RBRACE,
		token.RBRACE, token.EOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestScanComments(t *testing.T) {
	toks, errs := scan(t, "x = 1; // line comment\n/* block\ncomment */ y = 2;")
	if errs.Len() != 0 {
		t.Fatalf("unexpected errors: %v", errs.Err())
	}
	want := []token.Kind{
		token.IDENT, token.ASSIGN, token.INT, token.SEMICOLON,
		token.IDENT, token.ASSIGN, token.INT, token.SEMICOLON, token.EOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestScanString(t *testing.T) {
	toks, errs := scan(t, `print("hi\n\t\"x\"");`)
	if errs.Len() != 0 {
		t.Fatalf("unexpected errors: %v", errs.Err())
	}
	if toks[2].Kind != token.STRING {
		t.Fatalf("token 2 = %v, want STRING", toks[2].Kind)
	}
	if got, want := toks[2].Lit, "hi\n\t\"x\""; got != want {
		t.Errorf("string lit = %q, want %q", got, want)
	}
}

func TestScanErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`x = 1 & 2;`, "did you mean &&"},
		{`x = 1 | 2;`, "did you mean ||"},
		{`s = "unterminated`, "unterminated string"},
		{`/* never closed`, "unterminated block comment"},
		{"x = $;", "unexpected character"},
	}
	for _, c := range cases {
		_, errs := scan(t, c.src)
		if errs.ErrCount() == 0 {
			t.Errorf("%q: expected an error containing %q", c.src, c.want)
		}
	}
}

func TestScanPositions(t *testing.T) {
	file := source.NewFile("p.mpl", "ab = 1;\ncd = 2;\n")
	errs := &source.ErrorList{}
	toks := ScanAll(file, errs)
	// Token "cd" should be at line 2, column 1.
	pos := file.Position(toks[4].Pos)
	if pos.Line != 2 || pos.Column != 1 {
		t.Errorf("cd at %d:%d, want 2:1", pos.Line, pos.Column)
	}
}

func TestIdentAtEOF(t *testing.T) {
	toks, errs := scan(t, "abc")
	if errs.Len() != 0 {
		t.Fatalf("unexpected errors: %v", errs.Err())
	}
	if toks[0].Kind != token.IDENT || toks[0].Lit != "abc" {
		t.Errorf("got %v %q, want IDENT abc", toks[0].Kind, toks[0].Lit)
	}
	if toks[0+1].Kind != token.EOF {
		t.Error("missing EOF")
	}
}

func TestNumberAtEOF(t *testing.T) {
	toks, _ := scan(t, "42")
	if toks[0].Kind != token.INT || toks[0].Lit != "42" {
		t.Errorf("got %v %q, want INT 42", toks[0].Kind, toks[0].Lit)
	}
}
