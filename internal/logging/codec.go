package logging

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"ppd/internal/ast"
	"ppd/internal/eblock"
)

// Binary log format: a small header, then per book a record count followed
// by length-prefixed records. All integers are varints except the magic.
// The format exists so the execution and debugging phases can be separate
// OS processes (the paper's structure), exchanging logs through files.
//
// The record codec is append-based: appendRecord grows a []byte directly,
// so both the batch path (Write, through a per-log scratch buffer) and the
// streaming path (Book.Append into the per-book encode buffer) produce the
// same bytes without per-field interface dispatch or writer bookkeeping on
// the execution hot path.

const magic = 0x50504431 // "PPD1"

// Write encodes the program log. A streamed log cannot be written again:
// its records were encoded to the sink as they were produced and the
// structures were recycled through the freelist — the *structures* still
// exist (NewRecord reuses them) but they no longer hold those records'
// fields, so there is nothing left to re-encode. Use CloseStream (or
// re-read the sink's bytes). A tap (SetTap) does not change this: it
// observes each record inside Append, before the recycling, and copies
// what it keeps.
func (pl *ProgramLog) Write(w io.Writer) error {
	if pl.stream != nil {
		return fmt.Errorf("logging: Write on a streamed log (records were sent to the sink; use the sink's bytes)")
	}
	bw := bufio.NewWriter(w)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], magic)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	putUvarint(bw, uint64(len(pl.Books)))
	var scratch []byte
	for _, b := range pl.Books {
		putUvarint(bw, uint64(b.PID))
		putUvarint(bw, uint64(len(b.Records)))
		for _, r := range b.Records {
			scratch = appendRecord(scratch[:0], r)
			if _, err := bw.Write(scratch); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Read decodes a program log written by Write (or streamed through
// CloseStream). Malformed or truncated input returns an error — never a
// panic, and never an allocation proportional to a corrupt length prefix
// (slices grow incrementally, so a lying header costs at most the bytes
// actually present).
func Read(r io.Reader) (*ProgramLog, error) {
	br := bufio.NewReader(r)
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("logging: short header: %w", err)
	}
	if binary.BigEndian.Uint32(hdr[:]) != magic {
		return nil, fmt.Errorf("logging: bad magic %x", hdr)
	}
	nBooks, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	pl := NewProgramLog()
	for i := uint64(0); i < nBooks; i++ {
		pid, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		// Write emits books in slice order with PID == index; anything else
		// is corruption (and unchecked it would let a forged PID force a
		// huge BookFor allocation).
		if pid != i {
			return nil, fmt.Errorf("logging: book %d has pid %d (books must be dense and ordered)", i, pid)
		}
		book := pl.BookFor(int(pid))
		nRecs, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		for j := uint64(0); j < nRecs; j++ {
			rec, err := readRecord(br)
			if err != nil {
				return nil, fmt.Errorf("logging: book %d record %d: %w", pid, j, err)
			}
			book.Append(rec)
		}
	}
	return pl, nil
}

func putUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func appendValue(b []byte, v Value) []byte {
	if v.Arr == nil {
		b = append(b, 0)
		return binary.AppendVarint(b, v.Int)
	}
	b = append(b, 1)
	b = binary.AppendUvarint(b, uint64(len(v.Arr)))
	for _, x := range v.Arr {
		b = binary.AppendVarint(b, x)
	}
	return b
}

// readCap bounds the initial capacity handed to make() while decoding: a
// corrupt length prefix may claim 2^60 elements, but each claimed element
// still has to be present in the input, so growing incrementally from a
// bounded capacity turns an over-allocation attack into a plain
// truncation error.
const readCap = 1024

func readValue(r *bufio.Reader) (Value, error) {
	tag, err := r.ReadByte()
	if err != nil {
		return Value{}, err
	}
	if tag == 0 {
		x, err := binary.ReadVarint(r)
		return Value{Int: x}, err
	}
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return Value{}, err
	}
	arr := make([]int64, 0, min(n, readCap))
	for i := uint64(0); i < n; i++ {
		x, err := binary.ReadVarint(r)
		if err != nil {
			return Value{}, err
		}
		arr = append(arr, x)
	}
	return Value{Arr: arr}, nil
}

func appendValMap(b []byte, p Pairs) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	for i := range p {
		b = binary.AppendUvarint(b, uint64(p[i].Idx))
		b = appendValue(b, p[i].Val)
	}
	return b
}

func readValMap(r *bufio.Reader) (Pairs, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	p := make(Pairs, 0, min(n, readCap))
	for i := uint64(0); i < n; i++ {
		k, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		v, err := readValue(r)
		if err != nil {
			return nil, err
		}
		p = append(p, VarVal{Idx: int(k), Val: v})
	}
	return p, nil
}

func appendIntSlice(b []byte, s []int) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	for _, x := range s {
		b = binary.AppendUvarint(b, uint64(x))
	}
	return b
}

func readIntSlice(r *bufio.Reader) ([]int, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	s := make([]int, 0, min(n, readCap))
	for i := uint64(0); i < n; i++ {
		x, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		s = append(s, int(x))
	}
	return s, nil
}

// appendRecord encodes r onto b and returns the extended slice. It is the
// single record encoder: Write routes retained records through it, and the
// streaming path appends into the per-book buffer with no intermediate
// writer. EncodedLen mirrors its arithmetic exactly.
func appendRecord(b []byte, r *Record) []byte {
	b = append(b, byte(r.Kind))
	b = binary.AppendUvarint(b, uint64(r.Block))
	b = binary.AppendUvarint(b, uint64(r.Stmt))
	b = append(b, byte(r.Op))
	b = binary.AppendVarint(b, int64(r.Obj))
	b = binary.AppendUvarint(b, r.Gsn)
	b = binary.AppendUvarint(b, r.FromGsn)
	b = binary.AppendVarint(b, r.Value)
	b = appendValMap(b, r.Locals)
	b = appendValMap(b, r.Globals)
	if r.Ret != nil {
		b = append(b, 1)
		b = appendValue(b, *r.Ret)
	} else {
		b = append(b, 0)
	}
	b = appendIntSlice(b, r.Reads)
	b = appendIntSlice(b, r.Writes)
	return b
}

func readRecord(br *bufio.Reader) (*Record, error) {
	r := &Record{}
	kind, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	r.Kind = Kind(kind)
	blk, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	r.Block = eblock.ID(blk)
	stmt, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	r.Stmt = ast.StmtID(stmt)
	op, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	r.Op = SyncOp(op)
	obj, err := binary.ReadVarint(br)
	if err != nil {
		return nil, err
	}
	r.Obj = int(obj)
	if r.Gsn, err = binary.ReadUvarint(br); err != nil {
		return nil, err
	}
	if r.FromGsn, err = binary.ReadUvarint(br); err != nil {
		return nil, err
	}
	if r.Value, err = binary.ReadVarint(br); err != nil {
		return nil, err
	}
	if r.Locals, err = readValMap(br); err != nil {
		return nil, err
	}
	if r.Globals, err = readValMap(br); err != nil {
		return nil, err
	}
	hasRet, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if hasRet == 1 {
		v, err := readValue(br)
		if err != nil {
			return nil, err
		}
		r.Ret = &v
	}
	if r.Reads, err = readIntSlice(br); err != nil {
		return nil, err
	}
	if r.Writes, err = readIntSlice(br); err != nil {
		return nil, err
	}
	return r, nil
}
