package logging

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"ppd/internal/ast"
	"ppd/internal/eblock"
)

// Binary log format: a small header, then per book a record count followed
// by length-prefixed records. All integers are varints except the magic.
// The format exists so the execution and debugging phases can be separate
// OS processes (the paper's structure), exchanging logs through files.
//
// The encoder writes through encWriter so the same record codec serves
// both the batch path (Write, through a bufio.Writer) and the streaming
// path (Book.Append under a sink, through a bytes.Buffer) — the bytes are
// identical by construction.

const magic = 0x50504431 // "PPD1"

// encWriter is the codec's output: satisfied by *bufio.Writer (batch) and
// *bytes.Buffer (streaming).
type encWriter interface {
	io.Writer
	io.ByteWriter
}

// Write encodes the program log. A streamed log cannot be written again —
// its records were encoded to the sink as they were produced and are no
// longer retained; use CloseStream (or re-read the sink's bytes).
func (pl *ProgramLog) Write(w io.Writer) error {
	if pl.stream != nil {
		return fmt.Errorf("logging: Write on a streamed log (records were sent to the sink; use the sink's bytes)")
	}
	bw := bufio.NewWriter(w)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], magic)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	putUvarint(bw, uint64(len(pl.Books)))
	for _, b := range pl.Books {
		putUvarint(bw, uint64(b.PID))
		putUvarint(bw, uint64(len(b.Records)))
		for _, r := range b.Records {
			writeRecord(bw, r)
		}
	}
	return bw.Flush()
}

// Read decodes a program log written by Write (or streamed through
// CloseStream). Malformed or truncated input returns an error — never a
// panic, and never an allocation proportional to a corrupt length prefix
// (slices grow incrementally, so a lying header costs at most the bytes
// actually present).
func Read(r io.Reader) (*ProgramLog, error) {
	br := bufio.NewReader(r)
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("logging: short header: %w", err)
	}
	if binary.BigEndian.Uint32(hdr[:]) != magic {
		return nil, fmt.Errorf("logging: bad magic %x", hdr)
	}
	nBooks, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	pl := NewProgramLog()
	for i := uint64(0); i < nBooks; i++ {
		pid, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		// Write emits books in slice order with PID == index; anything else
		// is corruption (and unchecked it would let a forged PID force a
		// huge BookFor allocation).
		if pid != i {
			return nil, fmt.Errorf("logging: book %d has pid %d (books must be dense and ordered)", i, pid)
		}
		book := pl.BookFor(int(pid))
		nRecs, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		for j := uint64(0); j < nRecs; j++ {
			rec, err := readRecord(br)
			if err != nil {
				return nil, fmt.Errorf("logging: book %d record %d: %w", pid, j, err)
			}
			book.Append(rec)
		}
	}
	return pl, nil
}

func putUvarint(w encWriter, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func putVarint(w encWriter, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	w.Write(buf[:n])
}

func writeValue(w encWriter, v Value) {
	if v.Arr == nil {
		w.WriteByte(0)
		putVarint(w, v.Int)
		return
	}
	w.WriteByte(1)
	putUvarint(w, uint64(len(v.Arr)))
	for _, x := range v.Arr {
		putVarint(w, x)
	}
}

// readCap bounds the initial capacity handed to make() while decoding: a
// corrupt length prefix may claim 2^60 elements, but each claimed element
// still has to be present in the input, so growing incrementally from a
// bounded capacity turns an over-allocation attack into a plain
// truncation error.
const readCap = 1024

func readValue(r *bufio.Reader) (Value, error) {
	tag, err := r.ReadByte()
	if err != nil {
		return Value{}, err
	}
	if tag == 0 {
		x, err := binary.ReadVarint(r)
		return Value{Int: x}, err
	}
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return Value{}, err
	}
	arr := make([]int64, 0, min(n, readCap))
	for i := uint64(0); i < n; i++ {
		x, err := binary.ReadVarint(r)
		if err != nil {
			return Value{}, err
		}
		arr = append(arr, x)
	}
	return Value{Arr: arr}, nil
}

func writeValMap(w encWriter, p Pairs) {
	putUvarint(w, uint64(len(p)))
	for i := range p {
		putUvarint(w, uint64(p[i].Idx))
		writeValue(w, p[i].Val)
	}
}

func readValMap(r *bufio.Reader) (Pairs, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	p := make(Pairs, 0, min(n, readCap))
	for i := uint64(0); i < n; i++ {
		k, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		v, err := readValue(r)
		if err != nil {
			return nil, err
		}
		p = append(p, VarVal{Idx: int(k), Val: v})
	}
	return p, nil
}

func writeIntSlice(w encWriter, s []int) {
	putUvarint(w, uint64(len(s)))
	for _, x := range s {
		putUvarint(w, uint64(x))
	}
}

func readIntSlice(r *bufio.Reader) ([]int, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	s := make([]int, 0, min(n, readCap))
	for i := uint64(0); i < n; i++ {
		x, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		s = append(s, int(x))
	}
	return s, nil
}

func writeRecord(w encWriter, r *Record) {
	w.WriteByte(byte(r.Kind))
	putUvarint(w, uint64(r.Block))
	putUvarint(w, uint64(r.Stmt))
	w.WriteByte(byte(r.Op))
	putVarint(w, int64(r.Obj))
	putUvarint(w, r.Gsn)
	putUvarint(w, r.FromGsn)
	putVarint(w, r.Value)
	writeValMap(w, r.Locals)
	writeValMap(w, r.Globals)
	if r.Ret != nil {
		w.WriteByte(1)
		writeValue(w, *r.Ret)
	} else {
		w.WriteByte(0)
	}
	writeIntSlice(w, r.Reads)
	writeIntSlice(w, r.Writes)
}

func readRecord(br *bufio.Reader) (*Record, error) {
	r := &Record{}
	kind, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	r.Kind = Kind(kind)
	blk, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	r.Block = eblock.ID(blk)
	stmt, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	r.Stmt = ast.StmtID(stmt)
	op, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	r.Op = SyncOp(op)
	obj, err := binary.ReadVarint(br)
	if err != nil {
		return nil, err
	}
	r.Obj = int(obj)
	if r.Gsn, err = binary.ReadUvarint(br); err != nil {
		return nil, err
	}
	if r.FromGsn, err = binary.ReadUvarint(br); err != nil {
		return nil, err
	}
	if r.Value, err = binary.ReadVarint(br); err != nil {
		return nil, err
	}
	if r.Locals, err = readValMap(br); err != nil {
		return nil, err
	}
	if r.Globals, err = readValMap(br); err != nil {
		return nil, err
	}
	hasRet, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if hasRet == 1 {
		v, err := readValue(br)
		if err != nil {
			return nil, err
		}
		r.Ret = &v
	}
	if r.Reads, err = readIntSlice(br); err != nil {
		return nil, err
	}
	if r.Writes, err = readIntSlice(br); err != nil {
		return nil, err
	}
	return r, nil
}
