package logging

import (
	"bytes"
	"testing"
)

// FuzzRead fuzzes the binary log decoder. The contract under arbitrary
// input: Read returns an error or a valid ProgramLog — it never panics, and
// a corrupt length prefix must not force a giant allocation (decode slices
// grow incrementally from a bounded capacity, so a lying header degrades
// into a truncation error). A successfully decoded log must round-trip:
// Write produces bytes that decode to the same log again.
func FuzzRead(f *testing.F) {
	// Seed with a well-formed log exercising every record kind and field
	// family, plus a few deliberately broken variants.
	pl := NewProgramLog()
	for _, rec := range statsFixtures() {
		pl.BookFor(0).Append(rec)
	}
	pl.BookFor(1).Append(&Record{Kind: RecStart})
	var valid bytes.Buffer
	if err := pl.Write(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:len(valid.Bytes())/2]) // truncated mid-record
	f.Add(valid.Bytes()[:4])                    // header only
	f.Add([]byte{})                             // empty
	f.Add([]byte("PPD1"))                       // wrong magic bytes
	// Valid header claiming 2^60 books: must error, not allocate.
	f.Add([]byte{0x50, 0x50, 0x44, 0x31, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x0f})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Success implies a self-consistent log: re-encoding must work and
		// decode back to the same bytes.
		var out bytes.Buffer
		if err := got.Write(&out); err != nil {
			t.Fatalf("re-encoding a successfully decoded log failed: %v", err)
		}
		again, err := Read(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding re-encoded log failed: %v", err)
		}
		var out2 bytes.Buffer
		if err := again.Write(&out2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), out2.Bytes()) {
			t.Fatal("Write/Read round trip is not a fixed point")
		}
	})
}
