// Package logging defines the execution-phase log (§3.2.2, §5.1): prelogs,
// postlogs, the extra shared-variable prelogs of §5.5, and synchronization
// records. There is one log book per process (§5.6); the books are the only
// runtime artifact the debugging phase needs besides the static files.
//
// Log records are small by design — that is the paper's whole point. A
// prelog holds the values of the variables the e-block may read; a postlog
// holds the variables it may have written plus the return value; sync
// records hold the pairing information (global sequence numbers) from which
// the parallel dynamic graph reconstructs synchronization edges, plus the
// per-internal-edge shared READ/WRITE sets race detection consumes.
package logging

import (
	"fmt"
	"iter"
	"strings"

	"ppd/internal/ast"
	"ppd/internal/eblock"
)

// Value is a logged variable value: a scalar or an array snapshot.
type Value struct {
	Int int64
	Arr []int64 // non-nil for arrays (cloned at logging time)
}

// IsArray reports whether the value is an array snapshot.
func (v Value) IsArray() bool { return v.Arr != nil }

// Clone deep-copies the value.
func (v Value) Clone() Value {
	if v.Arr == nil {
		return v
	}
	arr := make([]int64, len(v.Arr))
	copy(arr, v.Arr)
	return Value{Arr: arr}
}

func (v Value) String() string {
	if v.Arr != nil {
		parts := make([]string, len(v.Arr))
		for i, x := range v.Arr {
			parts[i] = fmt.Sprintf("%d", x)
		}
		return "[" + strings.Join(parts, " ") + "]"
	}
	return fmt.Sprintf("%d", v.Int)
}

// VarVal is one logged (variable, value) binding.
type VarVal struct {
	Idx int // frame slot or GlobalID
	Val Value
}

// Pairs is a compact ordered list of variable bindings. Prelogs and
// postlogs are written on every e-block boundary, so their representation
// is a slice rather than a map: one allocation per record, cache-friendly
// iteration, and the keys are small dense integers anyway.
type Pairs []VarVal

// Len returns the number of bindings.
func (p Pairs) Len() int { return len(p) }

// Get looks up the value bound to idx.
func (p Pairs) Get(idx int) (Value, bool) {
	for i := range p {
		if p[i].Idx == idx {
			return p[i].Val, true
		}
	}
	return Value{}, false
}

// Set binds idx to v, replacing any existing binding.
func (p *Pairs) Set(idx int, v Value) {
	for i := range *p {
		if (*p)[i].Idx == idx {
			(*p)[i].Val = v
			return
		}
	}
	*p = append(*p, VarVal{Idx: idx, Val: v})
}

// All iterates the bindings in insertion order.
func (p Pairs) All() iter.Seq2[int, Value] {
	return func(yield func(int, Value) bool) {
		for i := range p {
			if !yield(p[i].Idx, p[i].Val) {
				return
			}
		}
	}
}

// Clone deep-copies the bindings.
func (p Pairs) Clone() Pairs {
	out := make(Pairs, len(p))
	for i := range p {
		out[i] = VarVal{Idx: p[i].Idx, Val: p[i].Val.Clone()}
	}
	return out
}

// Kind discriminates log records.
type Kind uint8

// Log record kinds.
const (
	RecPrelog   Kind = iota // e-block entry: USED values
	RecPostlog              // e-block exit: DEFINED globals + return value
	RecShPrelog             // sync-unit start: shared values that may be read
	RecSync                 // synchronization event
	RecStart                // process start (fromGsn = spawner's sync gsn)
	RecExit                 // process exit (flushes the last internal edge)
)

// NumKinds is the number of record kinds (for per-kind accounting arrays).
const NumKinds = 6

func (k Kind) String() string {
	switch k {
	case RecPrelog:
		return "prelog"
	case RecPostlog:
		return "postlog"
	case RecShPrelog:
		return "shprelog"
	case RecSync:
		return "sync"
	case RecStart:
		return "start"
	case RecExit:
		return "exit"
	}
	return "?"
}

// Exit statuses recorded in RecExit's Value field, so the debugging phase
// can tell how each process ended without the VM present.
const (
	ExitClean       int64 = 0
	ExitBlockedSem  int64 = 1
	ExitBlockedSend int64 = 2
	ExitBlockedRecv int64 = 3
	ExitFailed      int64 = 4
	ExitBreak       int64 = 5 // halted at a breakpoint while runnable
)

// SyncOp identifies the operation of a RecSync record.
type SyncOp uint8

// Synchronization operations.
const (
	OpP SyncOp = iota + 1
	OpV
	OpSend
	OpRecv
	OpUnblock // sender unblocked by a receiver taking its message
	OpSpawn
)

func (o SyncOp) String() string {
	switch o {
	case OpP:
		return "P"
	case OpV:
		return "V"
	case OpSend:
		return "send"
	case OpRecv:
		return "recv"
	case OpUnblock:
		return "unblock"
	case OpSpawn:
		return "spawn"
	}
	return "?"
}

// Record is one log entry. Which fields are meaningful depends on Kind.
type Record struct {
	Kind Kind

	// Block identifies the e-block for prelog/postlog records.
	Block eblock.ID

	// Stmt is the statement at which the record was generated (the sync
	// operation, the call site of a loop header, ...). ast.NoStmt for
	// function-entry prelogs.
	Stmt ast.StmtID

	// Locals binds frame slots to values (prelogs: parameters and, for loop
	// blocks, used locals; postlogs of loop blocks: defined locals).
	Locals Pairs

	// Globals binds GlobalIDs to values.
	Globals Pairs

	// Ret is the e-block's return value (function postlogs only).
	Ret *Value

	// --- RecSync / RecStart fields ---

	Op      SyncOp
	Obj     int    // GlobalID of the semaphore/channel; spawn: child PID
	Gsn     uint64 // global sequence number of this event
	FromGsn uint64 // causal source event (V for an unblocked/enabled P,
	// send for recv, recv for sender-unblock, spawn for child start)
	Value int64 // transferred value (send/recv), semaphore count after op,
	// or spawned function index (OpSpawn)

	// Reads/Writes are the shared variables (GlobalIDs) read/written on the
	// internal edge that this sync event terminates (§6.3-§6.4 READ_SET /
	// WRITE_SET). Present on RecSync, RecStart (empty) and RecExit.
	Reads  []int
	Writes []int
}

// Book is one process's log, in generation order.
type Book struct {
	PID     int
	Records []*Record
}

// Append adds a record.
func (b *Book) Append(r *Record) { b.Records = append(b.Records, r) }

// Len returns the number of records.
func (b *Book) Len() int { return len(b.Records) }

// ProgramLog is the set of per-process books for one execution.
type ProgramLog struct {
	Books []*Book // indexed by PID
}

// NewProgramLog returns an empty program log.
func NewProgramLog() *ProgramLog { return &ProgramLog{} }

// BookFor returns (creating if needed) the book for a PID.
func (pl *ProgramLog) BookFor(pid int) *Book {
	for len(pl.Books) <= pid {
		pl.Books = append(pl.Books, &Book{PID: len(pl.Books)})
	}
	return pl.Books[pid]
}

// NumProcs returns the number of processes that logged.
func (pl *ProgramLog) NumProcs() int { return len(pl.Books) }

// SizeBytes estimates the log's size as encoded (the E2 metric).
func (pl *ProgramLog) SizeBytes() int {
	total := 0
	for _, b := range pl.Books {
		for _, r := range b.Records {
			total += r.sizeBytes()
		}
	}
	return total
}

// Stats is the log's per-record-kind accounting: how many records of each
// kind the execution phase generated and their encoded size. It is
// computed by walking the retained log after the run — the paper's "small
// log" claim is measured without adding a single instruction to the
// logging hot path.
type Stats struct {
	Records [NumKinds]int // record count per Kind
	Bytes   [NumKinds]int // encoded bytes per Kind
}

// TotalRecords sums the per-kind record counts.
func (s Stats) TotalRecords() int {
	n := 0
	for _, c := range s.Records {
		n += c
	}
	return n
}

// TotalBytes sums the per-kind encoded sizes (equals SizeBytes).
func (s Stats) TotalBytes() int {
	n := 0
	for _, c := range s.Bytes {
		n += c
	}
	return n
}

// Stats accounts the whole log by record kind.
func (pl *ProgramLog) Stats() Stats {
	var s Stats
	for _, b := range pl.Books {
		bs := b.Stats()
		for k := 0; k < NumKinds; k++ {
			s.Records[k] += bs.Records[k]
			s.Bytes[k] += bs.Bytes[k]
		}
	}
	return s
}

// Stats accounts one book by record kind.
func (b *Book) Stats() Stats {
	var s Stats
	for _, r := range b.Records {
		if int(r.Kind) < NumKinds {
			s.Records[r.Kind]++
			s.Bytes[r.Kind] += r.sizeBytes()
		}
	}
	return s
}

func (r *Record) sizeBytes() int {
	// Fixed header: kind, block, stmt, op, obj, gsn, fromGsn, value.
	n := 1 + 4 + 4 + 1 + 4 + 8 + 8 + 8
	for i := range r.Locals {
		n += 4 + valSize(r.Locals[i].Val)
	}
	for i := range r.Globals {
		n += 4 + valSize(r.Globals[i].Val)
	}
	if r.Ret != nil {
		n += valSize(*r.Ret)
	}
	n += 4 * (len(r.Reads) + len(r.Writes))
	return n
}

func valSize(v Value) int {
	if v.Arr != nil {
		return 4 + 8*len(v.Arr)
	}
	return 8
}

// String renders a record compactly for debugging and golden tests.
func (r *Record) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", r.Kind)
	switch r.Kind {
	case RecPrelog, RecPostlog:
		fmt.Fprintf(&b, " blk=%d", r.Block)
	case RecShPrelog:
		fmt.Fprintf(&b, " s%d", r.Stmt)
	case RecSync:
		fmt.Fprintf(&b, " %s obj=%d gsn=%d", r.Op, r.Obj, r.Gsn)
		if r.FromGsn != 0 {
			fmt.Fprintf(&b, " from=%d", r.FromGsn)
		}
	case RecStart:
		fmt.Fprintf(&b, " from=%d", r.FromGsn)
	}
	if r.Locals.Len() > 0 {
		fmt.Fprintf(&b, " locals=%s", pairsString(r.Locals))
	}
	if r.Globals.Len() > 0 {
		fmt.Fprintf(&b, " globals=%s", pairsString(r.Globals))
	}
	if r.Ret != nil {
		fmt.Fprintf(&b, " ret=%s", r.Ret)
	}
	return b.String()
}

func pairsString(p Pairs) string {
	parts := make([]string, len(p))
	for i := range p {
		parts[i] = fmt.Sprintf("%d:%s", p[i].Idx, p[i].Val)
	}
	return "{" + strings.Join(parts, ",") + "}"
}
