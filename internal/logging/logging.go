// Package logging defines the execution-phase log (§3.2.2, §5.1): prelogs,
// postlogs, the extra shared-variable prelogs of §5.5, and synchronization
// records. There is one log book per process (§5.6); the books are the only
// runtime artifact the debugging phase needs besides the static files.
//
// Log records are small by design — that is the paper's whole point. A
// prelog holds the values of the variables the e-block may read; a postlog
// holds the variables it may have written plus the return value; sync
// records hold the pairing information (global sequence numbers) from which
// the parallel dynamic graph reconstructs synchronization edges, plus the
// per-internal-edge shared READ/WRITE sets race detection consumes.
package logging

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"iter"
	"strings"

	"ppd/internal/ast"
	"ppd/internal/eblock"
)

// Value is a logged variable value: a scalar or an array snapshot.
type Value struct {
	Int int64
	Arr []int64 // non-nil for arrays (cloned at logging time)
}

// IsArray reports whether the value is an array snapshot.
func (v Value) IsArray() bool { return v.Arr != nil }

// Clone deep-copies the value.
func (v Value) Clone() Value {
	if v.Arr == nil {
		return v
	}
	arr := make([]int64, len(v.Arr))
	copy(arr, v.Arr)
	return Value{Arr: arr}
}

func (v Value) String() string {
	if v.Arr != nil {
		parts := make([]string, len(v.Arr))
		for i, x := range v.Arr {
			parts[i] = fmt.Sprintf("%d", x)
		}
		return "[" + strings.Join(parts, " ") + "]"
	}
	return fmt.Sprintf("%d", v.Int)
}

// VarVal is one logged (variable, value) binding.
type VarVal struct {
	Idx int // frame slot or GlobalID
	Val Value
}

// Pairs is a compact ordered list of variable bindings. Prelogs and
// postlogs are written on every e-block boundary, so their representation
// is a slice rather than a map: one allocation per record, cache-friendly
// iteration, and the keys are small dense integers anyway.
type Pairs []VarVal

// Len returns the number of bindings.
func (p Pairs) Len() int { return len(p) }

// Get looks up the value bound to idx.
func (p Pairs) Get(idx int) (Value, bool) {
	for i := range p {
		if p[i].Idx == idx {
			return p[i].Val, true
		}
	}
	return Value{}, false
}

// Set binds idx to v, replacing any existing binding.
func (p *Pairs) Set(idx int, v Value) {
	for i := range *p {
		if (*p)[i].Idx == idx {
			(*p)[i].Val = v
			return
		}
	}
	*p = append(*p, VarVal{Idx: idx, Val: v})
}

// All iterates the bindings in insertion order.
func (p Pairs) All() iter.Seq2[int, Value] {
	return func(yield func(int, Value) bool) {
		for i := range p {
			if !yield(p[i].Idx, p[i].Val) {
				return
			}
		}
	}
}

// Clone deep-copies the bindings.
func (p Pairs) Clone() Pairs {
	out := make(Pairs, len(p))
	for i := range p {
		out[i] = VarVal{Idx: p[i].Idx, Val: p[i].Val.Clone()}
	}
	return out
}

// Kind discriminates log records.
type Kind uint8

// Log record kinds.
const (
	RecPrelog   Kind = iota // e-block entry: USED values
	RecPostlog              // e-block exit: DEFINED globals + return value
	RecShPrelog             // sync-unit start: shared values that may be read
	RecSync                 // synchronization event
	RecStart                // process start (fromGsn = spawner's sync gsn)
	RecExit                 // process exit (flushes the last internal edge)
)

// NumKinds is the number of record kinds (for per-kind accounting arrays).
const NumKinds = 6

func (k Kind) String() string {
	switch k {
	case RecPrelog:
		return "prelog"
	case RecPostlog:
		return "postlog"
	case RecShPrelog:
		return "shprelog"
	case RecSync:
		return "sync"
	case RecStart:
		return "start"
	case RecExit:
		return "exit"
	}
	return "?"
}

// Exit statuses recorded in RecExit's Value field, so the debugging phase
// can tell how each process ended without the VM present.
const (
	ExitClean       int64 = 0
	ExitBlockedSem  int64 = 1
	ExitBlockedSend int64 = 2
	ExitBlockedRecv int64 = 3
	ExitFailed      int64 = 4
	ExitBreak       int64 = 5 // halted at a breakpoint while runnable
)

// SyncOp identifies the operation of a RecSync record.
type SyncOp uint8

// Synchronization operations.
const (
	OpP SyncOp = iota + 1
	OpV
	OpSend
	OpRecv
	OpUnblock // sender unblocked by a receiver taking its message
	OpSpawn
)

func (o SyncOp) String() string {
	switch o {
	case OpP:
		return "P"
	case OpV:
		return "V"
	case OpSend:
		return "send"
	case OpRecv:
		return "recv"
	case OpUnblock:
		return "unblock"
	case OpSpawn:
		return "spawn"
	}
	return "?"
}

// Record is one log entry. Which fields are meaningful depends on Kind.
// Records on the execution hot path are allocated through Book.NewRecord
// (arena-backed, recycled under a streaming sink); the zero value is a
// valid empty record either way.
type Record struct {
	Kind Kind

	// Block identifies the e-block for prelog/postlog records.
	Block eblock.ID

	// Stmt is the statement at which the record was generated (the sync
	// operation, the call site of a loop header, ...). ast.NoStmt for
	// function-entry prelogs.
	Stmt ast.StmtID

	// Locals binds frame slots to values (prelogs: parameters and, for loop
	// blocks, used locals; postlogs of loop blocks: defined locals).
	Locals Pairs

	// Globals binds GlobalIDs to values.
	Globals Pairs

	// Ret is the e-block's return value (function postlogs only).
	Ret *Value

	// --- RecSync / RecStart fields ---

	Op      SyncOp
	Obj     int    // GlobalID of the semaphore/channel; spawn: child PID
	Gsn     uint64 // global sequence number of this event
	FromGsn uint64 // causal source event (V for an unblocked/enabled P,
	// send for recv, recv for sender-unblock, spawn for child start)
	Value int64 // transferred value (send/recv), semaphore count after op,
	// or spawned function index (OpSpawn)

	// Reads/Writes are the shared variables (GlobalIDs) read/written on the
	// internal edge that this sync event terminates (§6.3-§6.4 READ_SET /
	// WRITE_SET). Present on RecSync, RecStart (empty) and RecExit.
	Reads  []int
	Writes []int

	// retBuf backs SetRet so postlog return values need no separate heap
	// allocation; Ret points at it when set through SetRet.
	retBuf Value
}

// SetRet records the return value in the record's inline buffer, avoiding
// the per-postlog *Value allocation of `r.Ret = &v`.
func (r *Record) SetRet(v Value) {
	r.retBuf = v
	r.Ret = &r.retBuf
}

// reset clears the record for reuse, keeping the capacity of its slice
// fields so a recycled record logs without allocating.
func (r *Record) reset() {
	locals, globals := r.Locals[:0], r.Globals[:0]
	reads, writes := r.Reads[:0], r.Writes[:0]
	*r = Record{Locals: locals, Globals: globals, Reads: reads, Writes: writes}
}

// Arena chunk sizes: records and pair bindings are carved from fixed-cap
// chunks so pointers into them stay valid for the log's lifetime (a chunk
// is never grown, only replaced when full).
const (
	recordChunk = 128
	pairChunk   = 512
)

// Book is one process's log, in generation order.
type Book struct {
	PID     int
	Records []*Record

	// arena is the current fixed-capacity allocation chunk for records;
	// pairArena is the same for Pairs backing storage. Both exist so the
	// execution phase performs one allocation per chunk instead of one (or
	// more) per e-block boundary.
	arena     []Record
	pairArena []VarVal

	// Streaming state: when stream is non-nil, Append encodes the record
	// into the per-book buffer immediately and recycles it via free, so a
	// long run retains encoded bytes instead of record structures. The
	// buffer is a plain append-grown []byte: one amortized append per
	// record, no per-field writer dispatch on the hot path.
	stream      *Stream
	enc         []byte
	streamed    int // records encoded so far
	streamStats Stats
	free        []*Record

	tap Tap // observes every record at Append time (may be nil)
}

// Tap observes every record the moment it is appended, before the book
// retains or recycles it — the hook the online analysis pipeline tees off
// of. idx is the record's index within the process's book. The record is
// only valid for the duration of the call: under a streaming sink it goes
// straight back on the freelist when Append returns (see SetStream), so a
// tap must copy any field it needs and must not hold the pointer.
type Tap func(pid, idx int, r *Record)

// NewRecord returns a zeroed record for this book, recycled from the
// freelist under a streaming sink or carved from the record arena.
func (b *Book) NewRecord() *Record {
	if n := len(b.free); n > 0 {
		r := b.free[n-1]
		b.free = b.free[:n-1]
		r.reset()
		return r
	}
	if len(b.arena) == cap(b.arena) {
		b.arena = make([]Record, 0, recordChunk)
	}
	b.arena = b.arena[:len(b.arena)+1]
	return &b.arena[len(b.arena)-1]
}

// TakePairs returns an empty Pairs with capacity for exactly n bindings:
// the caller's previous slice when it is large enough (recycled records),
// otherwise a carve from the pair arena. The capacity cap means an append
// beyond n falls back to a normal heap grow rather than corrupting the
// arena.
func (b *Book) TakePairs(old Pairs, n int) Pairs {
	if cap(old) >= n {
		return old[:0]
	}
	if cap(b.pairArena)-len(b.pairArena) < n {
		c := pairChunk
		if n > c {
			c = n
		}
		b.pairArena = make([]VarVal, 0, c)
	}
	off := len(b.pairArena)
	b.pairArena = b.pairArena[:off+n]
	return Pairs(b.pairArena[off : off : off+n])
}

// Append adds a record. Under a streaming sink the record is encoded and
// recycled instead of retained. The tap, when set, sees the record first —
// before it is retained or recycled — so taps compose with the freelist:
// the tap call and the recycling are both inside Append, and the record is
// never on the freelist while a tap can still see it.
func (b *Book) Append(r *Record) {
	if b.tap != nil {
		b.tap(b.PID, b.Len(), r)
	}
	if b.stream == nil {
		b.Records = append(b.Records, r)
		return
	}
	before := len(b.enc)
	b.enc = appendRecord(b.enc, r)
	if int(r.Kind) < NumKinds {
		b.streamStats.Records[r.Kind]++
		b.streamStats.Bytes[r.Kind] += len(b.enc) - before
	}
	b.streamed++
	b.free = append(b.free, r)
}

// Len returns the number of records generated (retained or streamed).
func (b *Book) Len() int { return len(b.Records) + b.streamed }

// ProgramLog is the set of per-process books for one execution.
type ProgramLog struct {
	Books []*Book // indexed by PID

	stream *Stream // non-nil when records are streamed instead of retained
	tap    Tap     // inherited by every book (may be nil)
}

// NewProgramLog returns an empty program log.
func NewProgramLog() *ProgramLog { return &ProgramLog{} }

// Stream is an incremental log encoder: each record is encoded through the
// same varint codec as Write the moment it is produced, into a per-book
// buffer, so the execution phase retains compact encoded bytes instead of
// record structures (and can recycle the structures). CloseStream stitches
// the buffers into a byte stream identical to Write's output.
type Stream struct {
	w io.Writer
}

// SetStream switches the log into streaming mode over w. It must be called
// before any record is appended; books created afterwards inherit it.
//
// Retention rule: under a streaming sink a record survives only for the
// duration of its Append call — it is encoded into the per-book buffer and
// immediately recycled onto the freelist (NewRecord reuses the structure,
// including its Pairs and read/write slices, for a later record). Any
// consumer that needs the record beyond Append — the online analysis tee in
// particular — must attach via SetTap, which runs before the recycling, and
// must copy what it keeps. Arena recycling therefore stays safe with a tap
// attached: the freelist never holds a record a tap can still observe.
func (pl *ProgramLog) SetStream(w io.Writer) {
	pl.stream = &Stream{w: w}
	for _, b := range pl.Books {
		b.attachStream(pl.stream)
	}
}

// SetTap attaches a record tap to every book, current and future. Like
// SetStream it must be called before any record is appended. See Tap for
// the (non-)retention contract.
func (pl *ProgramLog) SetTap(t Tap) {
	pl.tap = t
	for _, b := range pl.Books {
		b.tap = t
	}
}

// Streamed reports whether records are being streamed rather than retained.
func (pl *ProgramLog) Streamed() bool { return pl.stream != nil }

func (b *Book) attachStream(s *Stream) {
	b.stream = s
}

// CloseStream writes the streamed log to the sink in Write's exact format
// (magic, book count, then each book's PID, record count, and records) and
// flushes. The resulting bytes equal what Write would have produced for
// the same records.
func (pl *ProgramLog) CloseStream() error {
	if pl.stream == nil {
		return fmt.Errorf("logging: CloseStream on a non-streamed log")
	}
	bw := bufio.NewWriter(pl.stream.w)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], magic)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	putUvarint(bw, uint64(len(pl.Books)))
	for _, b := range pl.Books {
		putUvarint(bw, uint64(b.PID))
		putUvarint(bw, uint64(b.streamed))
		if _, err := bw.Write(b.enc); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// BookFor returns (creating if needed) the book for a PID.
func (pl *ProgramLog) BookFor(pid int) *Book {
	for len(pl.Books) <= pid {
		b := &Book{PID: len(pl.Books), tap: pl.tap}
		if pl.stream != nil {
			b.attachStream(pl.stream)
		}
		pl.Books = append(pl.Books, b)
	}
	return pl.Books[pid]
}

// NumProcs returns the number of processes that logged.
func (pl *ProgramLog) NumProcs() int { return len(pl.Books) }

// SizeBytes is the log's exact encoded record size (the E2 metric): the
// sum of every record's length under the binary codec, whether retained or
// already streamed. The Write/CloseStream output adds only the fixed
// header and per-book framing on top.
func (pl *ProgramLog) SizeBytes() int {
	return pl.Stats().TotalBytes()
}

// Stats is the log's per-record-kind accounting: how many records of each
// kind the execution phase generated and their encoded size. For a
// retained log it is computed by walking the records after the run — the
// paper's "small log" claim is measured without adding a single
// instruction to the logging hot path. For a streamed log it is the bytes
// actually encoded, folded in as each record passes through the codec.
type Stats struct {
	Records [NumKinds]int // record count per Kind
	Bytes   [NumKinds]int // encoded bytes per Kind
}

// TotalRecords sums the per-kind record counts.
func (s Stats) TotalRecords() int {
	n := 0
	for _, c := range s.Records {
		n += c
	}
	return n
}

// TotalBytes sums the per-kind encoded sizes (equals SizeBytes).
func (s Stats) TotalBytes() int {
	n := 0
	for _, c := range s.Bytes {
		n += c
	}
	return n
}

// Stats accounts the whole log by record kind.
func (pl *ProgramLog) Stats() Stats {
	var s Stats
	for _, b := range pl.Books {
		bs := b.Stats()
		for k := 0; k < NumKinds; k++ {
			s.Records[k] += bs.Records[k]
			s.Bytes[k] += bs.Bytes[k]
		}
	}
	return s
}

// Stats accounts one book by record kind. Retained records are measured
// through EncodedLen (the codec's exact arithmetic); streamed records were
// measured as they passed through the codec itself.
func (b *Book) Stats() Stats {
	s := b.streamStats
	for _, r := range b.Records {
		if int(r.Kind) < NumKinds {
			s.Records[r.Kind]++
			s.Bytes[r.Kind] += r.EncodedLen()
		}
	}
	return s
}

// EncodedLen is the record's exact size under the binary codec: the same
// varint arithmetic as writeRecord, so Stats never drifts from the bytes
// Write produces (pinned by TestStatsMatchEncodedBytes).
func (r *Record) EncodedLen() int {
	n := 1 + // kind byte
		uvarintLen(uint64(r.Block)) +
		uvarintLen(uint64(r.Stmt)) +
		1 + // op byte
		varintLen(int64(r.Obj)) +
		uvarintLen(r.Gsn) +
		uvarintLen(r.FromGsn) +
		varintLen(r.Value)
	n += pairsLen(r.Locals)
	n += pairsLen(r.Globals)
	n++ // has-ret byte
	if r.Ret != nil {
		n += valueLen(*r.Ret)
	}
	n += intSliceLen(r.Reads)
	n += intSliceLen(r.Writes)
	return n
}

func pairsLen(p Pairs) int {
	n := uvarintLen(uint64(len(p)))
	for i := range p {
		n += uvarintLen(uint64(p[i].Idx)) + valueLen(p[i].Val)
	}
	return n
}

func valueLen(v Value) int {
	if v.Arr == nil {
		return 1 + varintLen(v.Int)
	}
	n := 1 + uvarintLen(uint64(len(v.Arr)))
	for _, x := range v.Arr {
		n += varintLen(x)
	}
	return n
}

func intSliceLen(s []int) int {
	n := uvarintLen(uint64(len(s)))
	for _, x := range s {
		n += uvarintLen(uint64(x))
	}
	return n
}

// uvarintLen is the encoded size of binary.PutUvarint(v).
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// varintLen is the encoded size of binary.PutVarint(v) (zig-zag).
func varintLen(v int64) int {
	uv := uint64(v) << 1
	if v < 0 {
		uv = ^uv
	}
	return uvarintLen(uv)
}

// String renders a record compactly for debugging and golden tests.
func (r *Record) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", r.Kind)
	switch r.Kind {
	case RecPrelog, RecPostlog:
		fmt.Fprintf(&b, " blk=%d", r.Block)
	case RecShPrelog:
		fmt.Fprintf(&b, " s%d", r.Stmt)
	case RecSync:
		fmt.Fprintf(&b, " %s obj=%d gsn=%d", r.Op, r.Obj, r.Gsn)
		if r.FromGsn != 0 {
			fmt.Fprintf(&b, " from=%d", r.FromGsn)
		}
	case RecStart:
		fmt.Fprintf(&b, " from=%d", r.FromGsn)
	}
	if r.Locals.Len() > 0 {
		fmt.Fprintf(&b, " locals=%s", pairsString(r.Locals))
	}
	if r.Globals.Len() > 0 {
		fmt.Fprintf(&b, " globals=%s", pairsString(r.Globals))
	}
	if r.Ret != nil {
		fmt.Fprintf(&b, " ret=%s", r.Ret)
	}
	return b.String()
}

func pairsString(p Pairs) string {
	parts := make([]string, len(p))
	for i := range p {
		parts[i] = fmt.Sprintf("%d:%s", p[i].Idx, p[i].Val)
	}
	return "{" + strings.Join(parts, ",") + "}"
}
