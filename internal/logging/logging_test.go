package logging

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"ppd/internal/ast"
	"ppd/internal/eblock"
)

func sampleLog() *ProgramLog {
	ret := Value{Int: 99}
	pl := NewProgramLog()
	b0 := pl.BookFor(0)
	b0.Append(&Record{Kind: RecStart})
	b0.Append(&Record{
		Kind:  RecPrelog,
		Block: 2,
		Locals: Pairs{
			{Idx: 0, Val: Value{Int: 7}},
			{Idx: 3, Val: Value{Arr: []int64{1, -2, 3}}},
		},
		Globals: Pairs{{Idx: 1, Val: Value{Int: -5}}},
	})
	b0.Append(&Record{
		Kind: RecSync, Op: OpSend, Obj: 4, Stmt: ast.StmtID(9),
		Gsn: 12, FromGsn: 3, Value: -77,
		Reads: []int{0, 2}, Writes: []int{2},
	})
	b0.Append(&Record{Kind: RecShPrelog, Stmt: 5, Globals: Pairs{{Idx: 0, Val: Value{Int: 1}}}})
	b0.Append(&Record{Kind: RecPostlog, Block: 2, Ret: &ret,
		Globals: Pairs{{Idx: 1, Val: Value{Int: 6}}}})
	b0.Append(&Record{Kind: RecExit, Reads: []int{1}})

	b1 := pl.BookFor(1)
	b1.Append(&Record{Kind: RecStart, FromGsn: 2})
	b1.Append(&Record{Kind: RecSync, Op: OpRecv, Obj: 4, Gsn: 13, FromGsn: 12, Value: -77})
	b1.Append(&Record{Kind: RecExit})
	return pl
}

func TestCodecRoundTrip(t *testing.T) {
	pl := sampleLog()
	var buf bytes.Buffer
	if err := pl.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumProcs() != pl.NumProcs() {
		t.Fatalf("procs = %d, want %d", got.NumProcs(), pl.NumProcs())
	}
	for pid := range pl.Books {
		want, have := pl.Books[pid], got.Books[pid]
		if len(want.Records) != len(have.Records) {
			t.Fatalf("book %d: %d records, want %d", pid, len(have.Records), len(want.Records))
		}
		for i := range want.Records {
			if !reflect.DeepEqual(want.Records[i], have.Records[i]) {
				t.Errorf("book %d record %d:\n got %+v\nwant %+v", pid, i, have.Records[i], want.Records[i])
			}
		}
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := Read(strings.NewReader("not a ppd log at all")); err == nil {
		t.Error("bad magic should fail")
	}
	// Truncated valid stream.
	var buf bytes.Buffer
	if err := sampleLog().Write(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated input should fail")
	}
}

// Property: encode→decode is the identity on randomly generated records.
func TestCodecRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	genValue := func() Value {
		if rng.Intn(3) == 0 {
			arr := make([]int64, 1+rng.Intn(4)) // decode yields nil for len-0; Value{Arr:[]}≡array semantics need ≥1

			for i := range arr {
				arr[i] = rng.Int63n(1000) - 500
			}
			return Value{Arr: arr}
		}
		return Value{Int: rng.Int63n(1<<40) - (1 << 39)}
	}
	genPairs := func() Pairs {
		n := rng.Intn(4)
		if n == 0 {
			return nil // decode yields nil for empty sets
		}
		p := make(Pairs, 0, n)
		for i := 0; i < n; i++ {
			p = append(p, VarVal{Idx: i * 2, Val: genValue()})
		}
		return p
	}
	prop := func(seed uint8) bool {
		pl := NewProgramLog()
		nBooks := 1 + int(seed)%3
		for pid := 0; pid < nBooks; pid++ {
			b := pl.BookFor(pid)
			nRecs := rng.Intn(6)
			for i := 0; i < nRecs; i++ {
				r := &Record{
					Kind:    Kind(rng.Intn(6)),
					Block:   eblock.ID(rng.Intn(8)),
					Stmt:    ast.StmtID(rng.Intn(100)),
					Op:      SyncOp(rng.Intn(7)),
					Obj:     rng.Intn(10) - 1,
					Gsn:     uint64(rng.Intn(1000)),
					FromGsn: uint64(rng.Intn(1000)),
					Value:   rng.Int63n(2000) - 1000,
					Locals:  genPairs(),
					Globals: genPairs(),
				}
				if rng.Intn(2) == 0 {
					v := genValue()
					r.Ret = &v
				}
				if rng.Intn(2) == 0 {
					r.Reads = []int{rng.Intn(5), 5 + rng.Intn(5)}
					r.Writes = []int{rng.Intn(5)}
				}
				b.Append(r)
			}
		}
		var buf bytes.Buffer
		if err := pl.Write(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(pl, got)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPairsSemantics(t *testing.T) {
	var p Pairs
	if _, ok := p.Get(0); ok {
		t.Error("empty Get should miss")
	}
	p.Set(3, Value{Int: 1})
	p.Set(1, Value{Int: 2})
	p.Set(3, Value{Int: 9}) // replace
	if p.Len() != 2 {
		t.Fatalf("len = %d, want 2", p.Len())
	}
	v, ok := p.Get(3)
	if !ok || v.Int != 9 {
		t.Errorf("Get(3) = %v,%t", v, ok)
	}
	// All preserves insertion order.
	var order []int
	for idx := range p.All() {
		order = append(order, idx)
	}
	if order[0] != 3 || order[1] != 1 {
		t.Errorf("order = %v", order)
	}
	// Clone is deep for arrays.
	p.Set(5, Value{Arr: []int64{1, 2}})
	c := p.Clone()
	cv, _ := c.Get(5)
	cv.Arr[0] = 42
	orig, _ := p.Get(5)
	if orig.Arr[0] == 42 {
		t.Error("Clone shares array storage")
	}
}

func TestValueCloneAndString(t *testing.T) {
	v := Value{Arr: []int64{4, 5}}
	c := v.Clone()
	c.Arr[0] = 9
	if v.Arr[0] == 9 {
		t.Error("Clone shares storage")
	}
	if v.String() != "[4 5]" {
		t.Errorf("array String = %q", v.String())
	}
	if (Value{Int: -3}).String() != "-3" {
		t.Error("scalar String wrong")
	}
	if !v.IsArray() || (Value{}).IsArray() {
		t.Error("IsArray wrong")
	}
}

func TestRecordString(t *testing.T) {
	pl := sampleLog()
	got := pl.Books[0].Records[1].String()
	for _, want := range []string{"prelog", "blk=2", "locals={0:7,3:[1 -2 3]}", "globals={1:-5}"} {
		if !strings.Contains(got, want) {
			t.Errorf("record string %q missing %q", got, want)
		}
	}
	sync := pl.Books[0].Records[2].String()
	for _, want := range []string{"sync send", "obj=4", "gsn=12", "from=3"} {
		if !strings.Contains(sync, want) {
			t.Errorf("sync string %q missing %q", sync, want)
		}
	}
}

func TestSizeBytesAccounting(t *testing.T) {
	pl := sampleLog()
	total := pl.SizeBytes()
	if total <= 0 {
		t.Fatal("size must be positive")
	}
	// Adding a record strictly increases size.
	pl.Books[0].Append(&Record{Kind: RecExit})
	if pl.SizeBytes() <= total {
		t.Error("size must grow with records")
	}
}

func TestBookForGrowsSparsely(t *testing.T) {
	pl := NewProgramLog()
	b := pl.BookFor(3)
	if b.PID != 3 || pl.NumProcs() != 4 {
		t.Errorf("BookFor(3): pid=%d procs=%d", b.PID, pl.NumProcs())
	}
	if pl.BookFor(1).PID != 1 {
		t.Error("intermediate book wrong")
	}
}

func TestStatsAccountsEveryKind(t *testing.T) {
	pl := sampleLog()
	st := pl.Stats()
	if got, want := st.TotalBytes(), pl.SizeBytes(); got != want {
		t.Errorf("Stats().TotalBytes() = %d, SizeBytes() = %d", got, want)
	}
	total := 0
	for _, b := range pl.Books {
		total += b.Len()
	}
	if got := st.TotalRecords(); got != total {
		t.Errorf("Stats().TotalRecords() = %d, want %d", got, total)
	}
	// Per-kind counts match a manual walk.
	var records [NumKinds]int
	for _, b := range pl.Books {
		for _, r := range b.Records {
			records[r.Kind]++
		}
	}
	if st.Records != records {
		t.Errorf("per-kind records = %v, want %v", st.Records, records)
	}
	// Book stats sum to program stats.
	var sum Stats
	for _, b := range pl.Books {
		bs := b.Stats()
		for k := 0; k < NumKinds; k++ {
			sum.Records[k] += bs.Records[k]
			sum.Bytes[k] += bs.Bytes[k]
		}
	}
	if sum != st {
		t.Errorf("sum of Book stats = %v, want %v", sum, st)
	}
}

func TestStatsEmptyLog(t *testing.T) {
	st := NewProgramLog().Stats()
	if st.TotalRecords() != 0 || st.TotalBytes() != 0 {
		t.Errorf("empty log stats = %v", st)
	}
}

// TestTapSeesRecordsBeforeRecycling pins the tap's retention contract
// under a streaming sink: the tap observes every record — in generation
// order, with its fields intact — strictly before Append recycles the
// structure onto the freelist, and the structures really are reused (so a
// tap that held the pointer instead of copying would observe corruption).
// The copies the tap takes must match what CloseStream's bytes decode to.
func TestTapSeesRecordsBeforeRecycling(t *testing.T) {
	var sink bytes.Buffer
	pl := NewProgramLog()
	pl.SetStream(&sink)

	type seen struct {
		pid, idx int
		rec      Record // deep-enough copy of the tapped fields
	}
	var taps []seen
	ptrs := map[*Record]int{}
	pl.SetTap(func(pid, idx int, r *Record) {
		ptrs[r]++
		taps = append(taps, seen{pid: pid, idx: idx, rec: Record{
			Kind: r.Kind, Op: r.Op, Obj: r.Obj, Stmt: r.Stmt,
			Gsn: r.Gsn, FromGsn: r.FromGsn, Value: r.Value,
			Reads:  append([]int(nil), r.Reads...),
			Writes: append([]int(nil), r.Writes...),
		}})
	})

	b := pl.BookFor(0)
	const n = 8
	for i := 0; i < n; i++ {
		r := b.NewRecord()
		r.Kind, r.Op, r.Obj = RecSync, OpV, i
		r.Gsn, r.FromGsn = uint64(i+1), uint64(i)
		r.Reads = append(r.Reads[:0], i, i+1)
		r.Writes = append(r.Writes[:0], i)
		b.Append(r)
	}

	if len(taps) != n {
		t.Fatalf("tap saw %d records, appended %d", len(taps), n)
	}
	reused := false
	for _, count := range ptrs {
		if count > 1 {
			reused = true
		}
	}
	if !reused {
		t.Fatalf("no record structure was recycled across %d appends; the test is not exercising the freelist", n)
	}
	for i, s := range taps {
		if s.pid != 0 || s.idx != i {
			t.Errorf("tap %d: got pid=%d idx=%d", i, s.pid, s.idx)
		}
		if s.rec.Obj != i || s.rec.Gsn != uint64(i+1) || len(s.rec.Reads) != 2 || s.rec.Reads[0] != i {
			t.Errorf("tap %d observed stale fields: %+v", i, s.rec)
		}
	}

	// The streamed bytes must decode to exactly what the tap copied:
	// tapping does not perturb the log.
	if err := pl.CloseStream(); err != nil {
		t.Fatalf("CloseStream: %v", err)
	}
	got, err := Read(&sink)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	recs := got.Books[0].Records
	if len(recs) != n {
		t.Fatalf("decoded %d records, want %d", len(recs), n)
	}
	for i, r := range recs {
		s := taps[i].rec
		if r.Kind != s.Kind || r.Op != s.Op || r.Obj != s.Obj || r.Gsn != s.Gsn ||
			r.FromGsn != s.FromGsn || !reflect.DeepEqual(r.Reads, s.Reads) ||
			!reflect.DeepEqual(r.Writes, s.Writes) {
			t.Errorf("record %d: decoded %v != tapped %v", i, r, &s)
		}
	}
}

// TestTapOnRetainedLog pins the other half of the contract: without a
// streaming sink the tap still fires at Append time (before retention),
// and the retained records are the same ones the tap saw.
func TestTapOnRetainedLog(t *testing.T) {
	pl := NewProgramLog()
	var order []int
	pl.SetTap(func(pid, idx int, r *Record) { order = append(order, r.Obj) })
	b := pl.BookFor(0)
	for i := 0; i < 4; i++ {
		b.Append(&Record{Kind: RecSync, Op: OpP, Obj: i})
	}
	if len(order) != 4 {
		t.Fatalf("tap saw %d records, want 4", len(order))
	}
	for i, obj := range order {
		if obj != i {
			t.Errorf("tap order[%d] = %d", i, obj)
		}
	}
	if len(pl.Books[0].Records) != 4 {
		t.Errorf("retained %d records, want 4", len(pl.Books[0].Records))
	}
}
