package logging

import (
	"bytes"
	"testing"

	"ppd/internal/ast"
	"ppd/internal/eblock"
)

// statsFixtures is one representative record per kind, with every field
// family populated (scalars, arrays, pairs, return value, edge sets) so the
// size arithmetic is exercised end to end, including multi-byte varints.
func statsFixtures() []*Record {
	retArr := Value{Arr: []int64{7, -9, 1 << 40}}
	retInt := Value{Int: -1}
	return []*Record{
		{Kind: RecStart, FromGsn: 300},
		{Kind: RecPrelog, Block: eblock.ID(5), Stmt: ast.StmtID(130),
			Locals:  Pairs{{Idx: 0, Val: Value{Int: 42}}, {Idx: 3, Val: Value{Arr: []int64{1, 2, 3, -4, 1 << 33}}}},
			Globals: Pairs{{Idx: 200, Val: Value{Int: -70000}}}},
		{Kind: RecPostlog, Block: eblock.ID(1000), Stmt: ast.StmtID(2),
			Globals: Pairs{{Idx: 1, Val: Value{Arr: []int64{}}}},
			Ret:     &retArr},
		{Kind: RecShPrelog, Stmt: ast.StmtID(7),
			Globals: Pairs{{Idx: 0, Val: Value{Int: 0}}, {Idx: 130, Val: Value{Int: 1 << 50}}}},
		{Kind: RecSync, Op: OpP, Obj: -1, Stmt: ast.StmtID(90), Gsn: 1 << 21, FromGsn: 127,
			Value: -128, Reads: []int{0, 64, 129}, Writes: []int{5}},
		{Kind: RecExit, Stmt: ast.StmtID(40), Value: ExitClean, Obj: 3,
			Reads: []int{}, Writes: []int{200}, Ret: &retInt},
	}
}

// TestStatsMatchEncodedBytes pins EncodedLen (and therefore Stats().Bytes)
// to the codec: for each record kind, the accounted size must equal the
// number of bytes appendRecord actually produces. This is the drift guard —
// the old hand-rolled sizeBytes silently disagreed with the codec.
func TestStatsMatchEncodedBytes(t *testing.T) {
	for _, rec := range statsFixtures() {
		enc := appendRecord(nil, rec)
		if got, want := rec.EncodedLen(), len(enc); got != want {
			t.Errorf("%v: EncodedLen = %d, codec wrote %d bytes", rec.Kind, got, want)
		}
	}

	// And through the public accounting: per-kind Stats().Bytes must equal
	// the real encoded length of that kind's records.
	pl := NewProgramLog()
	book := pl.BookFor(0)
	wantBytes := map[Kind]int{}
	for _, rec := range statsFixtures() {
		wantBytes[rec.Kind] += len(appendRecord(nil, rec))
		book.Append(rec)
	}
	st := pl.Stats()
	for k := 0; k < NumKinds; k++ {
		if st.Records[k] != 1 {
			t.Errorf("kind %v: Records = %d, want 1", Kind(k), st.Records[k])
		}
		if st.Bytes[k] != wantBytes[Kind(k)] {
			t.Errorf("kind %v: Stats().Bytes = %d, want %d", Kind(k), st.Bytes[k], wantBytes[Kind(k)])
		}
	}
}

// TestStatsRoundTripThroughWrite cross-checks TotalBytes against the full
// artifact: Write's output is exactly the records plus the fixed framing
// (magic, book count, and per-book pid + record count).
func TestStatsRoundTripThroughWrite(t *testing.T) {
	pl := NewProgramLog()
	book := pl.BookFor(0)
	for _, rec := range statsFixtures() {
		book.Append(rec)
	}
	var buf bytes.Buffer
	if err := pl.Write(&buf); err != nil {
		t.Fatal(err)
	}
	framing := 4 /* magic */ + 1 /* nbooks */ + 1 /* pid */ + 1 /* record count */
	if got, want := pl.SizeBytes()+framing, buf.Len(); got != want {
		t.Fatalf("SizeBytes+framing = %d, Write produced %d bytes", got, want)
	}
}
