package mplgen

import (
	"bytes"
	"testing"

	"ppd/internal/compile"
	"ppd/internal/eblock"
	"ppd/internal/emulation"
	"ppd/internal/logging"
	"ppd/internal/parallel"
	"ppd/internal/race"
	"ppd/internal/replay"
	"ppd/internal/vm"
)

// TestGeneratedProgramsDifferential is the repo's broadest property test:
// for a sweep of generated programs it checks that
//
//  1. bare, logged, and full-trace executions print identical output
//     (instrumentation must never change behaviour);
//  2. every completed interval in the log emulates to completion without
//     divergence (the §5 machinery is total over reachable logs);
//  3. folding the postlogs reproduces the VM's final global state (§5.7);
//  4. the binary log codec round-trips the real log;
//  5. both race detectors agree (parallel programs).
func TestGeneratedProgramsDifferential(t *testing.T) {
	type scenario struct {
		name string
		cfg  Config
		n    int
	}
	scenarios := []scenario{
		{"sequential", DefaultConfig(), 40},
		{"deep", Config{Funcs: 4, Globals: 4, MaxStmts: 6, MaxDepth: 3, MaxExprDepth: 3}, 25},
		{"parallel", ParallelConfig(), 25},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			for seed := int64(0); seed < int64(sc.n); seed++ {
				src := Generate(seed, sc.cfg)
				checkProgram(t, seed, src, sc.cfg.Parallel)
				if t.Failed() {
					t.Logf("seed %d program:\n%s", seed, src)
					return
				}
			}
		})
	}
}

func checkProgram(t *testing.T, seed int64, src string, parallelMode bool) {
	t.Helper()
	inst, err := compile.CompileSource("gen.mpl", src, eblock.DefaultConfig())
	if err != nil {
		t.Errorf("seed %d: compile: %v", seed, err)
		return
	}
	bare, err := compile.CompileBareSource("gen.mpl", src)
	if err != nil {
		t.Errorf("seed %d: compile bare: %v", seed, err)
		return
	}

	runOut := func(art *compile.Artifacts, mode vm.Mode) (string, *vm.VM) {
		var out bytes.Buffer
		v := vm.New(art.Prog, vm.Options{Mode: mode, Quantum: 3, Output: &out})
		if err := v.Run(); err != nil {
			t.Errorf("seed %d mode %v: %v", seed, mode, err)
			return "", nil
		}
		return out.String(), v
	}

	// 1. Output equivalence across instrumentation.
	bareOut, _ := runOut(bare, vm.ModeRun)
	logOut, vLog := runOut(inst, vm.ModeLog)
	traceOut, _ := runOut(inst, vm.ModeFullTrace)
	if t.Failed() || vLog == nil {
		return
	}
	if bareOut != logOut || logOut != traceOut {
		t.Errorf("seed %d: outputs differ:\nbare:  %q\nlog:   %q\ntrace: %q",
			seed, bareOut, logOut, traceOut)
		return
	}

	// 2. Every interval of every process emulates to completion.
	for pid, book := range vLog.Log.Books {
		em := emulation.New(inst.Prog, book)
		for ri, r := range book.Records {
			if r.Kind != logging.RecPrelog {
				continue
			}
			res, err := em.Emulate(ri)
			if err != nil {
				t.Errorf("seed %d P%d interval@%d: %v", seed, pid, ri, err)
				return
			}
			if res.Err != nil || !res.Completed {
				t.Errorf("seed %d P%d interval@%d: err=%v completed=%t",
					seed, pid, ri, res.Err, res.Completed)
				return
			}
		}
	}

	// 3. Restoration equals the live final state (fold every book: each
	// process's view of shared state converges at exit for these
	// synchronized programs; use process 0 whose main sees the final join).
	snap := replay.RestoreAt(inst.Prog, vLog.Log.Books[0], vLog.Log.Books[0].Len())
	for gid, want := range vLog.Globals {
		if inst.Prog.Globals[gid].Kind != 0 { // only data globals
			continue
		}
		got := snap.Globals[gid]
		if want.IsArray() {
			for i := range want.Arr {
				if got.Arr[i] != want.Arr[i] {
					t.Errorf("seed %d: restored %s[%d]=%d, want %d",
						seed, inst.Prog.Globals[gid].Name, i, got.Arr[i], want.Arr[i])
					return
				}
			}
		} else if got.Int != want.Int {
			// In parallel mode a worker's final write can postdate main's
			// last shared prelog only if unsynchronized — generated
			// programs join before reading, so mismatch is a real bug.
			t.Errorf("seed %d: restored %s=%d, want %d",
				seed, inst.Prog.Globals[gid].Name, got.Int, want.Int)
			return
		}
	}

	// 4. Codec round trip.
	var buf bytes.Buffer
	if err := vLog.Log.Write(&buf); err != nil {
		t.Errorf("seed %d: write log: %v", seed, err)
		return
	}
	loaded, err := logging.Read(&buf)
	if err != nil {
		t.Errorf("seed %d: read log: %v", seed, err)
		return
	}
	if loaded.NumProcs() != vLog.Log.NumProcs() {
		t.Errorf("seed %d: round trip lost books", seed)
		return
	}

	// 5. Race detectors agree.
	if parallelMode {
		g := parallel.Build(vLog.Log, len(inst.Prog.Globals))
		naive, indexed := race.Naive(g), race.Indexed(g)
		if len(naive) != len(indexed) {
			t.Errorf("seed %d: naive=%d indexed=%d races", seed, len(naive), len(indexed))
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		a := Generate(seed, DefaultConfig())
		b := Generate(seed, DefaultConfig())
		if a != b {
			t.Fatalf("seed %d: generation is nondeterministic", seed)
		}
	}
	if Generate(1, DefaultConfig()) == Generate(2, DefaultConfig()) {
		t.Error("different seeds should differ")
	}
}

// TestGeneratedRacyPrograms seeds real data races (workers without the
// mutex) and checks that both detectors find them and agree exactly.
func TestGeneratedRacyPrograms(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		src := Generate(seed, RacyConfig())
		art, err := compile.CompileSource("racy.mpl", src, eblock.DefaultConfig())
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		v := vm.New(art.Prog, vm.Options{Mode: vm.ModeLog, Quantum: 1})
		if err := v.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		g := parallel.Build(v.Log, len(art.Prog.Globals))
		naive, indexed := race.Naive(g), race.Indexed(g)
		if len(indexed) == 0 {
			t.Errorf("seed %d: unsynchronized workers must race\n%s", seed, src)
			continue
		}
		if len(naive) != len(indexed) {
			t.Errorf("seed %d: naive=%d indexed=%d", seed, len(naive), len(indexed))
			continue
		}
		for i := range naive {
			if naive[i].Kind != indexed[i].Kind ||
				naive[i].E1.ID != indexed[i].E1.ID || naive[i].E2.ID != indexed[i].E2.ID {
				t.Errorf("seed %d: race %d differs", seed, i)
			}
		}
	}
}
