// Package mplgen generates random, well-formed, terminating MPL programs
// for differential testing: the same program must behave identically under
// bare execution, incremental logging, and full tracing; every logged
// interval must emulate back to the same events; restoration must
// reconstruct the final state; and the two race detectors must agree.
//
// Generated programs are failure-free by construction (division and modulo
// only by non-zero constants, array indices reduced into range, loops over
// fresh bounded counters, call graphs acyclic) and — in parallel mode —
// deadlock-free by construction (balanced P/V on a mutex, one V(done) per
// spawned worker matched by main's joins, channel sends paired with
// receives).
package mplgen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config bounds the generated program.
type Config struct {
	Funcs        int // helper functions (call DAG, acyclic)
	Globals      int // scalar globals
	MaxStmts     int // statements per block
	MaxDepth     int // nesting depth of if/while
	MaxExprDepth int
	Parallel     bool // spawn workers with semaphores and a channel
	Workers      int  // spawned workers when Parallel
	Racy         bool // omit the workers' mutex: seeded data races
}

// DefaultConfig is a moderate program shape.
func DefaultConfig() Config {
	return Config{
		Funcs: 3, Globals: 3, MaxStmts: 5, MaxDepth: 2, MaxExprDepth: 3,
		Parallel: false, Workers: 0,
	}
}

// ParallelConfig adds processes, a mutex, and a channel.
func ParallelConfig() Config {
	c := DefaultConfig()
	c.Parallel = true
	c.Workers = 3
	return c
}

// RacyConfig is ParallelConfig without the mutex: every generated program
// contains real data races for the detectors to find.
func RacyConfig() Config {
	c := ParallelConfig()
	c.Racy = true
	return c
}

const arrLen = 8

type gen struct {
	rng *rand.Rand
	cfg Config
	b   strings.Builder

	arity      []int    // parameter count per helper, fixed up front
	locals     []string // in scope at the current point (readable)
	assignable []string // locals that statements may overwrite (loop
	// counters are excluded so bounded loops stay bounded)
	nextLocal int
	curFunc   int // index; helpers may call only strictly larger indices
	indent    int
}

// Generate produces the program text for a seed and config. The same
// (seed, config) always yields the same program.
func Generate(seed int64, cfg Config) string {
	g := &gen{rng: rand.New(rand.NewSource(seed)), cfg: cfg}
	g.program()
	return g.b.String()
}

func (g *gen) w(format string, args ...any) {
	g.b.WriteString(strings.Repeat("\t", g.indent))
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteByte('\n')
}

func (g *gen) program() {
	g.arity = make([]int, g.cfg.Funcs)
	for i := range g.arity {
		g.arity[i] = g.rng.Intn(3)
	}
	for i := 0; i < g.cfg.Globals; i++ {
		g.w("shared g%d = %d;", i, g.rng.Intn(20))
	}
	g.w("shared arr[%d];", arrLen)
	if g.cfg.Parallel {
		g.w("sem mtx = 1;")
		g.w("sem done = 0;")
		g.w("chan ch[%d];", 2+g.rng.Intn(3))
	}
	g.b.WriteByte('\n')

	// Helper functions: f(i) may call f(j) for j > i only.
	for i := 0; i < g.cfg.Funcs; i++ {
		g.fn(i)
	}
	if g.cfg.Parallel {
		g.worker()
	}
	g.mainFn()
}

func (g *gen) fresh() string {
	name := fmt.Sprintf("x%d", g.nextLocal)
	g.nextLocal++
	g.locals = append(g.locals, name)
	g.assignable = append(g.assignable, name)
	return name
}

// freshCounter declares a loop counter: readable but never a random
// assignment target, so generated loops always terminate.
func (g *gen) freshCounter() string {
	name := fmt.Sprintf("x%d", g.nextLocal)
	g.nextLocal++
	g.locals = append(g.locals, name)
	return name
}

// scoped runs body with block scoping: locals declared inside disappear
// afterwards, matching MPL's lexical scope.
func (g *gen) scoped(body func()) {
	nl, na := len(g.locals), len(g.assignable)
	body()
	g.locals = g.locals[:nl]
	g.assignable = g.assignable[:na]
}

func (g *gen) fn(idx int) {
	g.curFunc = idx
	g.locals, g.assignable = nil, nil
	g.nextLocal = 0
	nParams := g.arity[idx]
	params := make([]string, nParams)
	for i := range params {
		p := fmt.Sprintf("p%d", i)
		params[i] = p + " int"
		g.locals = append(g.locals, p)
		g.assignable = append(g.assignable, p)
	}
	g.w("func f%d(%s) int {", idx, strings.Join(params, ", "))
	g.indent++
	g.block(g.cfg.MaxDepth)
	g.w("return %s;", g.expr(g.cfg.MaxExprDepth))
	g.indent--
	g.w("}")
	g.b.WriteByte('\n')
}

func (g *gen) worker() {
	g.curFunc = -1 // workers may call any helper
	g.locals, g.assignable = []string{"id"}, nil
	g.nextLocal = 0
	g.w("func worker(id int) {")
	g.indent++
	cnt := g.freshCounter()
	g.w("var %s = 0;", cnt)
	g.w("while (%s < %d) {", cnt, 2+g.rng.Intn(3))
	g.indent++
	// Updates are commutative (sums of per-worker constants) so the final
	// state is schedule-invariant: differential runs with different
	// instruction counts take different interleavings, and only
	// order-independent results can be compared across them. The mutex is
	// still load-bearing — without it the read-modify-write would lose
	// updates nondeterministically.
	if !g.cfg.Racy {
		g.w("P(mtx);")
	}
	g.w("g0 = g0 + id;")
	if g.cfg.Globals > 1 {
		g.w("g1 = g1 + id * 3;")
	}
	if !g.cfg.Racy {
		g.w("V(mtx);")
	}
	g.w("%s = %s + 1;", cnt, cnt)
	g.indent--
	g.w("}")
	g.w("send(ch, id * 10);")
	g.w("V(done);")
	g.indent--
	g.w("}")
	g.b.WriteByte('\n')
}

func (g *gen) mainFn() {
	g.curFunc = -1
	g.locals, g.assignable = nil, nil
	g.nextLocal = 0
	g.w("func main() {")
	g.indent++
	g.block(g.cfg.MaxDepth)
	if g.cfg.Parallel {
		for i := 0; i < g.cfg.Workers; i++ {
			g.w("spawn worker(%d);", i+1)
		}
		sum := g.fresh()
		g.w("var %s = 0;", sum)
		i := g.freshCounter()
		g.w("var %s = 0;", i)
		g.w("while (%s < %d) {", i, g.cfg.Workers)
		g.indent++
		g.w("%s = %s + recv(ch);", sum, sum)
		g.w("P(done);")
		g.w("%s = %s + 1;", i, i)
		g.indent--
		g.w("}")
		g.w("print(\"join=\", %s);", sum)
	}
	g.block(g.cfg.MaxDepth)
	for i := 0; i < g.cfg.Globals; i++ {
		g.w("print(\"g%d=\", g%d);", i, i)
	}
	g.w("print(\"a=\", arr[0], arr[%d]);", arrLen-1)
	g.indent--
	g.w("}")
}

func (g *gen) block(depth int) {
	n := 1 + g.rng.Intn(g.cfg.MaxStmts)
	for i := 0; i < n; i++ {
		g.stmt(depth)
	}
}

func (g *gen) stmt(depth int) {
	choice := g.rng.Intn(10)
	switch {
	case choice < 3: // declare a local (initializer generated first so it
		// cannot reference the variable being declared)
		init := g.exprPre(g.cfg.MaxExprDepth)
		g.w("var %s = %s;", g.fresh(), init)
	case choice < 5 && len(g.assignable) > 0: // assign a local
		g.w("%s = %s;", g.pick(g.assignable), g.expr(g.cfg.MaxExprDepth))
	case choice < 6: // assign a global
		g.w("g%d = %s;", g.rng.Intn(g.cfg.Globals), g.expr(g.cfg.MaxExprDepth))
	case choice < 7: // array element write, index reduced into range
		g.w("arr[(%s %% %d + %d) %% %d] = %s;",
			g.expr(1), arrLen, arrLen, arrLen, g.expr(g.cfg.MaxExprDepth))
	case choice < 8 && depth > 0: // conditional
		g.w("if (%s) {", g.boolExpr(2))
		g.indent++
		g.scoped(func() { g.block(depth - 1) })
		g.indent--
		if g.rng.Intn(2) == 0 {
			g.w("} else {")
			g.indent++
			g.scoped(func() { g.block(depth - 1) })
			g.indent--
		}
		g.w("}")
	case choice < 9 && depth > 0: // bounded loop over a fresh counter
		cnt := g.freshCounter()
		g.w("var %s = 0;", cnt)
		g.w("while (%s < %d) {", cnt, 1+g.rng.Intn(6))
		g.indent++
		g.scoped(func() { g.block(depth - 1) })
		g.w("%s = %s + 1;", cnt, cnt)
		g.indent--
		g.w("}")
	default:
		g.w("print(%s);", g.expr(2))
	}
}

func (g *gen) pick(xs []string) string { return xs[g.rng.Intn(len(xs))] }

// exprPre is like expr but used in declarations, where a call is a common
// and interesting initializer.
func (g *gen) exprPre(depth int) string {
	if depth > 0 && g.callTarget() >= 0 && g.rng.Intn(3) == 0 {
		return g.call(depth)
	}
	return g.expr(depth)
}

// callTarget returns a callable helper index, or -1.
func (g *gen) callTarget() int {
	lo := g.curFunc + 1 // helpers call strictly later helpers; -1 means any
	if lo < 0 {
		lo = 0
	}
	if lo >= g.cfg.Funcs {
		return -1
	}
	return lo + g.rng.Intn(g.cfg.Funcs-lo)
}

func (g *gen) call(depth int) string {
	t := g.callTarget()
	args := make([]string, g.arity[t])
	for i := range args {
		args[i] = g.expr(depth - 1)
	}
	return fmt.Sprintf("f%d(%s)", t, strings.Join(args, ", "))
}

func (g *gen) expr(depth int) string {
	if depth <= 0 {
		return g.atom()
	}
	switch g.rng.Intn(7) {
	case 0:
		return g.atom()
	case 1:
		return fmt.Sprintf("(%s + %s)", g.expr(depth-1), g.expr(depth-1))
	case 2:
		return fmt.Sprintf("(%s - %s)", g.expr(depth-1), g.expr(depth-1))
	case 3:
		return fmt.Sprintf("(%s * %s)", g.expr(depth-1), g.expr(depth-1))
	case 4: // division by a non-zero constant only
		return fmt.Sprintf("(%s / %d)", g.expr(depth-1), 1+g.rng.Intn(9))
	case 5: // modulo by a non-zero constant only
		return fmt.Sprintf("(%s %% %d)", g.expr(depth-1), 1+g.rng.Intn(9))
	default:
		return fmt.Sprintf("(-%s)", g.atom())
	}
}

func (g *gen) atom() string {
	switch g.rng.Intn(4) {
	case 0:
		if len(g.locals) > 0 {
			return g.pick(g.locals)
		}
		return fmt.Sprintf("%d", g.rng.Intn(50))
	case 1:
		return fmt.Sprintf("g%d", g.rng.Intn(g.cfg.Globals))
	case 2:
		return fmt.Sprintf("arr[%d]", g.rng.Intn(arrLen))
	default:
		return fmt.Sprintf("%d", g.rng.Intn(50))
	}
}

func (g *gen) boolExpr(depth int) string {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		ops := []string{"<", "<=", ">", ">=", "==", "!="}
		return fmt.Sprintf("%s %s %s", g.expr(1), ops[g.rng.Intn(len(ops))], g.expr(1))
	}
	if g.rng.Intn(2) == 0 {
		return fmt.Sprintf("(%s && %s)", g.boolExpr(depth-1), g.boolExpr(depth-1))
	}
	return fmt.Sprintf("(%s || %s)", g.boolExpr(depth-1), g.boolExpr(depth-1))
}
