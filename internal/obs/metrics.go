package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The nil *Counter is
// valid and all its methods are no-ops — instrumented code holds whatever
// Sink.Counter returned and never branches on whether observation is on.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// timerBuckets is the number of log2 duration buckets a Timer keeps:
// bucket i counts observations with duration < 2^(i+1) ns that did not fit
// an earlier bucket, so the histogram spans 1ns to ~2s with the final
// bucket absorbing everything longer.
const timerBuckets = 31

// Timer accumulates durations: count, total, min, max, and a log2-bucket
// histogram. The nil *Timer is valid and all its methods are no-ops.
// Timers are created by Sink.Timer (the zero value has a wrong min
// sentinel; do not construct Timers directly).
type Timer struct {
	count   atomic.Int64
	total   atomic.Int64 // nanoseconds
	min     atomic.Int64 // nanoseconds; -1 = no observation yet
	max     atomic.Int64 // nanoseconds
	buckets [timerBuckets]atomic.Int64
}

func newTimer() *Timer {
	t := &Timer{}
	t.min.Store(-1)
	return t
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	t.count.Add(1)
	t.total.Add(ns)
	for {
		cur := t.max.Load()
		if ns <= cur || t.max.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := t.min.Load()
		if (cur >= 0 && ns >= cur) || t.min.CompareAndSwap(cur, ns) {
			break
		}
	}
	b := bits.Len64(uint64(ns)) // 0 for 0ns, k for [2^(k-1), 2^k)
	if b >= timerBuckets {
		b = timerBuckets - 1
	}
	t.buckets[b].Add(1)
}

// Count returns how many durations were observed.
func (t *Timer) Count() int64 {
	if t == nil {
		return 0
	}
	return t.count.Load()
}

// Total returns the accumulated duration.
func (t *Timer) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.total.Load())
}

// Start begins timing an operation; call Stop on the returned Stopwatch.
// On a nil Timer no clock is read and Stop is a no-op — this is the
// disabled fast path.
func (t *Timer) Start() Stopwatch {
	if t == nil {
		return Stopwatch{}
	}
	return Stopwatch{t: t, t0: time.Now()}
}

// Stopwatch is one in-flight timing started by Timer.Start.
type Stopwatch struct {
	t  *Timer
	t0 time.Time
}

// Stop observes the elapsed time and returns it (0 when the watch came
// from a nil Timer).
func (sw Stopwatch) Stop() time.Duration {
	if sw.t == nil {
		return 0
	}
	d := time.Since(sw.t0)
	sw.t.Observe(d)
	return d
}
