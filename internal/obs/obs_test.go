package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilReceiversAreNoOps(t *testing.T) {
	var s *Sink
	c := s.Counter("x")
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Errorf("nil counter value = %d", c.Value())
	}
	tm := s.Timer("y")
	tm.Observe(time.Second)
	if tm.Count() != 0 || tm.Total() != 0 {
		t.Errorf("nil timer recorded: count=%d total=%v", tm.Count(), tm.Total())
	}
	if d := tm.Start().Stop(); d != 0 {
		t.Errorf("nil stopwatch elapsed = %v", d)
	}
	sc := s.Scope("z")
	sc.End() // must not panic
	s.SetTrace(&bytes.Buffer{})
	snap := s.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Timers) != 0 {
		t.Errorf("nil sink snapshot not empty: %+v", snap)
	}
	if got := snap.Text(); got != "(no observations)\n" {
		t.Errorf("empty snapshot text = %q", got)
	}
}

func TestCounter(t *testing.T) {
	s := New()
	c := s.Counter("hits")
	if c2 := s.Counter("hits"); c2 != c {
		t.Error("Counter not idempotent per name")
	}
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Errorf("counter = %d, want 42", c.Value())
	}
	if got := s.Snapshot().Counter("hits"); got != 42 {
		t.Errorf("snapshot counter = %d", got)
	}
	if got := s.Snapshot().Counter("absent"); got != 0 {
		t.Errorf("absent counter = %d", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	s := New()
	c := s.Counter("n")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("concurrent counter = %d, want 8000", c.Value())
	}
}

func TestTimer(t *testing.T) {
	s := New()
	tm := s.Timer("op")
	tm.Observe(3 * time.Millisecond)
	tm.Observe(1 * time.Millisecond)
	tm.Observe(2 * time.Millisecond)
	tm.Observe(-time.Second) // clamped to 0
	if tm.Count() != 4 {
		t.Errorf("count = %d", tm.Count())
	}
	if tm.Total() != 6*time.Millisecond {
		t.Errorf("total = %v", tm.Total())
	}
	ts := s.Snapshot().Timer("op")
	if ts.MinNS != 0 {
		t.Errorf("min = %d, want 0 (clamped negative)", ts.MinNS)
	}
	if ts.MaxNS != int64(3*time.Millisecond) {
		t.Errorf("max = %d", ts.MaxNS)
	}
	if ts.Mean() != 1500*time.Microsecond {
		t.Errorf("mean = %v", ts.Mean())
	}
	if len(ts.Buckets) == 0 {
		t.Fatal("no histogram buckets")
	}
	var n int64
	for _, b := range ts.Buckets {
		n += b.Count
	}
	if n != 4 {
		t.Errorf("bucket counts sum to %d, want 4", n)
	}
}

func TestTimerMinTracksSmallest(t *testing.T) {
	s := New()
	tm := s.Timer("op")
	tm.Observe(5 * time.Millisecond)
	tm.Observe(2 * time.Millisecond)
	tm.Observe(9 * time.Millisecond)
	ts := s.Snapshot().Timer("op")
	if ts.MinNS != int64(2*time.Millisecond) {
		t.Errorf("min = %v", time.Duration(ts.MinNS))
	}
}

func TestStopwatch(t *testing.T) {
	s := New()
	tm := s.Timer("op")
	sw := tm.Start()
	time.Sleep(time.Millisecond)
	if d := sw.Stop(); d < time.Millisecond {
		t.Errorf("elapsed = %v, want >= 1ms", d)
	}
	if tm.Count() != 1 {
		t.Errorf("count = %d", tm.Count())
	}
}

func TestScopeAndTrace(t *testing.T) {
	s := New()
	var buf bytes.Buffer
	s.SetTrace(&buf)
	sc := s.Scope("exec.run")
	sc.End()
	out := buf.String()
	if !strings.Contains(out, "begin exec.run") || !strings.Contains(out, "end   exec.run") {
		t.Errorf("trace output = %q", out)
	}
	if ts := s.Snapshot().Timer("exec.run"); ts.Count != 1 {
		t.Errorf("scope timer count = %d", ts.Count)
	}
	// Disabling tracing stops the stream but keeps timing.
	s.SetTrace(nil)
	buf.Reset()
	s.Scope("quiet").End()
	if buf.Len() != 0 {
		t.Errorf("trace after disable = %q", buf.String())
	}
	if ts := s.Snapshot().Timer("quiet"); ts.Count != 1 {
		t.Errorf("quiet timer count = %d", ts.Count)
	}
}

func TestSnapshotTextAndJSON(t *testing.T) {
	s := New()
	s.Counter("exec.steps").Add(1234)
	s.Counter("debug.cache.hits").Add(7)
	s.Timer("compile.parse").Observe(time.Millisecond)
	snap := s.Snapshot()

	text := snap.Text()
	for _, want := range []string{"counters:", "exec.steps", "1234", "timers:", "compile.parse", "n=1"} {
		if !strings.Contains(text, want) {
			t.Errorf("text missing %q:\n%s", want, text)
		}
	}

	data, err := snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if back.Counters["exec.steps"] != 1234 {
		t.Errorf("json counters = %+v", back.Counters)
	}
	if back.Timers["compile.parse"].Count != 1 {
		t.Errorf("json timers = %+v", back.Timers)
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := New()
	a.Counter("n").Add(1)
	a.Timer("t").Observe(2 * time.Millisecond)
	b := New()
	b.Counter("n").Add(2)
	b.Counter("only-b").Add(5)
	b.Timer("t").Observe(4 * time.Millisecond)
	b.Timer("t2").Observe(time.Millisecond)

	snap := a.Snapshot()
	snap.Merge(b.Snapshot())
	snap.Merge(nil)
	if snap.Counter("n") != 3 || snap.Counter("only-b") != 5 {
		t.Errorf("merged counters = %+v", snap.Counters)
	}
	ts := snap.Timer("t")
	if ts.Count != 2 || ts.TotalNS != int64(6*time.Millisecond) {
		t.Errorf("merged timer = %+v", ts)
	}
	if ts.MinNS != int64(2*time.Millisecond) || ts.MaxNS != int64(4*time.Millisecond) {
		t.Errorf("merged min/max = %+v", ts)
	}
	if snap.Timer("t2").Count != 1 {
		t.Errorf("timer t2 lost in merge")
	}
	var n int64
	for _, bk := range ts.Buckets {
		n += bk.Count
	}
	if n != 2 {
		t.Errorf("merged buckets sum = %d", n)
	}
}

func TestScopesConcurrent(t *testing.T) {
	s := New()
	var buf bytes.Buffer
	s.SetTrace(&buf)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				s.Scope("par").End()
				s.Counter("c").Inc()
			}
		}()
	}
	wg.Wait()
	snap := s.Snapshot()
	if snap.Timer("par").Count != 400 || snap.Counter("c") != 400 {
		t.Errorf("concurrent scopes: %+v", snap)
	}
}
