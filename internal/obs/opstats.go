package obs

import (
	"fmt"
	"sort"
	"strings"
)

// OpStats is the per-opcode dispatch profile the VM fills when
// vm.Options.OpProfile is set: dynamic execution counts per opcode, per
// adjacent opcode pair, and per dispatched superinstruction. It is what
// feeds the profile-guided fusion table (internal/bytecode) and what
// `ppd stats -ops` renders.
//
// Unlike Counter, the slices are plain (non-atomic) int64: a VM executes
// on a single goroutine and the profiled interpreter loop increments them
// directly; an OpStats must not be shared between concurrently running
// VMs. Superinstruction dispatches also count their constituent opcodes
// and pairs, so the op/pair histograms are invariants of the program's
// execution, not of the fusion configuration that ran it.
type OpStats struct {
	numOps int
	Ops    []int64 // executions per opcode
	Pairs  []int64 // executions per adjacent pair, Pairs[prev*numOps+cur]
	Super  []int64 // dispatches per superinstruction shape
}

// NewOpStats sizes a profile for numOps opcodes and numSuper
// superinstruction shapes.
func NewOpStats(numOps, numSuper int) *OpStats {
	return &OpStats{
		numOps: numOps,
		Ops:    make([]int64, numOps),
		Pairs:  make([]int64, numOps*numOps),
		Super:  make([]int64, numSuper),
	}
}

// NumOps returns the opcode-space size the profile was built for.
func (s *OpStats) NumOps() int { return s.numOps }

// Count records one execution of opcode cur whose dynamic predecessor was
// prev (prev < 0: none, e.g. the first instruction of a slice).
func (s *OpStats) Count(prev, cur int) {
	s.Ops[cur]++
	if prev >= 0 {
		s.Pairs[prev*s.numOps+cur]++
	}
}

// CountSuper records one dispatched superinstruction.
func (s *OpStats) CountSuper(op int) { s.Super[op]++ }

// Total returns the number of opcode executions recorded.
func (s *OpStats) Total() int64 {
	var t int64
	for _, n := range s.Ops {
		t += n
	}
	return t
}

// PairCount is one adjacent-pair tally.
type PairCount struct {
	Prev, Cur int
	N         int64
}

// TopPairs returns the n most frequent adjacent pairs, most frequent
// first (ties by pair index, so the order is deterministic).
func (s *OpStats) TopPairs(n int) []PairCount {
	var out []PairCount
	for i, c := range s.Pairs {
		if c > 0 {
			out = append(out, PairCount{Prev: i / s.numOps, Cur: i % s.numOps, N: c})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].N != out[j].N {
			return out[i].N > out[j].N
		}
		if out[i].Prev != out[j].Prev {
			return out[i].Prev < out[j].Prev
		}
		return out[i].Cur < out[j].Cur
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Text renders the histogram. opName and superName translate opcode /
// superinstruction indices (obs cannot import bytecode: it must stay a
// leaf package).
func (s *OpStats) Text(opName, superName func(int) string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "ops (total %d):\n", s.Total())
	type row struct {
		i int
		n int64
	}
	var rows []row
	for i, n := range s.Ops {
		if n > 0 {
			rows = append(rows, row{i, n})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].i < rows[j].i
	})
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-10s %12d\n", opName(r.i), r.n)
	}
	if pairs := s.TopPairs(16); len(pairs) > 0 {
		b.WriteString("pairs (top 16):\n")
		for _, pc := range pairs {
			fmt.Fprintf(&b, "  %-21s %12d\n", opName(pc.Prev)+"+"+opName(pc.Cur), pc.N)
		}
	}
	rows = rows[:0]
	for i, n := range s.Super {
		if n > 0 {
			rows = append(rows, row{i, n})
		}
	}
	if len(rows) > 0 {
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].n != rows[j].n {
				return rows[i].n > rows[j].n
			}
			return rows[i].i < rows[j].i
		})
		b.WriteString("superinstructions:\n")
		for _, r := range rows {
			fmt.Fprintf(&b, "  %-12s %12d\n", superName(r.i), r.n)
		}
	}
	return b.String()
}
