package obs

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestOpStatsCounting(t *testing.T) {
	s := NewOpStats(4, 2)
	if s.NumOps() != 4 {
		t.Fatalf("NumOps = %d, want 4", s.NumOps())
	}
	// Simulate a dispatch sequence 1,2,1,2,3 with no predecessor for the
	// first instruction of the slice.
	s.Count(-1, 1)
	s.Count(1, 2)
	s.Count(2, 1)
	s.Count(1, 2)
	s.Count(2, 3)
	s.CountSuper(0)
	s.CountSuper(0)
	s.CountSuper(1)

	if got := s.Total(); got != 5 {
		t.Errorf("Total = %d, want 5", got)
	}
	if s.Ops[1] != 2 || s.Ops[2] != 2 || s.Ops[3] != 1 {
		t.Errorf("Ops histogram = %v", s.Ops)
	}
	if s.Pairs[1*4+2] != 2 {
		t.Errorf("pair 1->2 counted %d times, want 2", s.Pairs[1*4+2])
	}
	if s.Super[0] != 2 || s.Super[1] != 1 {
		t.Errorf("Super histogram = %v", s.Super)
	}
}

func TestOpStatsTopPairs(t *testing.T) {
	s := NewOpStats(3, 0)
	s.Count(-1, 0)
	s.Count(0, 1) // 0->1 ×1
	s.Count(1, 2) // 1->2 ×3
	s.Count(2, 1)
	s.Count(1, 2)
	s.Count(2, 1)
	s.Count(1, 2)

	pairs := s.TopPairs(0)
	if len(pairs) != 3 {
		t.Fatalf("TopPairs(0) returned %d pairs, want 3 (all)", len(pairs))
	}
	if pairs[0].Prev != 1 || pairs[0].Cur != 2 || pairs[0].N != 3 {
		t.Errorf("most frequent pair = %+v, want 1->2 x3", pairs[0])
	}
	// Deterministic tie order: 0->1 and 2->1 both count 2... here 2->1 is
	// x2 and 0->1 x1, so frequency alone orders them.
	if pairs[1].Prev != 2 || pairs[1].Cur != 1 {
		t.Errorf("second pair = %+v, want 2->1", pairs[1])
	}
	if top := s.TopPairs(1); len(top) != 1 || top[0].N != 3 {
		t.Errorf("TopPairs(1) = %+v", top)
	}
}

func TestOpStatsText(t *testing.T) {
	s := NewOpStats(3, 2)
	s.Count(-1, 0)
	s.Count(0, 1)
	s.Count(1, 1)
	s.CountSuper(1)
	opName := func(i int) string { return fmt.Sprintf("op%d", i) }
	superName := func(i int) string { return fmt.Sprintf("super%d", i) }

	out := s.Text(opName, superName)
	for _, want := range []string{
		"ops (total 3):", "op1", "pairs (top 16):", "op0+op1",
		"superinstructions:", "super1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Text output missing %q:\n%s", want, out)
		}
	}
	// No superinstruction section when nothing was dispatched.
	empty := NewOpStats(3, 2)
	empty.Count(-1, 0)
	if out := empty.Text(opName, superName); strings.Contains(out, "superinstructions") {
		t.Errorf("Text lists superinstructions with zero dispatches:\n%s", out)
	}
}

func TestTimerStatTotalAndMean(t *testing.T) {
	ts := TimerStat{Count: 4, TotalNS: int64(2 * time.Second)}
	if ts.Total() != 2*time.Second {
		t.Errorf("Total = %v", ts.Total())
	}
	if ts.Mean() != 500*time.Millisecond {
		t.Errorf("Mean = %v", ts.Mean())
	}
	if (TimerStat{}).Mean() != 0 {
		t.Error("zero-value Mean should be 0")
	}
}
