// Package obs is PPD's observability layer: named atomic counters,
// duration histograms, and span-style phase scopes, collected into a Sink
// and read out as a Snapshot renderable as text or JSON.
//
// The paper's central claim is *efficiency* — small logs during execution,
// bounded re-emulation during debugging — and obs exists to make that
// measurable at runtime rather than only in ad-hoc benchmarks: every phase
// (compile, execution, debugging) reports what it did through the same
// vocabulary, and `ppd stats` or Execution.Stats renders the result.
//
// Cost contract (see DESIGN.md "Observability"):
//
//   - the package depends only on the standard library;
//   - a nil *Sink, nil *Counter, and nil *Timer are valid receivers whose
//     methods do nothing, so the disabled path in instrumented code is one
//     predictable nil check — no time.Now calls, no allocation, no locks;
//   - hot loops never look metrics up by name: components resolve their
//     counters once at construction (or accumulate in plain locals and
//     fold into the sink when the operation completes);
//   - trace streaming (SetTrace) emits one line per phase scope, never per
//     instruction or per record.
package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Sink collects metrics for one program/execution. All methods are safe
// for concurrent use, and the nil *Sink is a valid no-op receiver.
type Sink struct {
	mu       sync.Mutex
	counters map[string]*Counter
	timers   map[string]*Timer

	traceMu sync.Mutex
	trace   io.Writer
	epoch   time.Time
}

// New returns an empty sink.
func New() *Sink {
	return &Sink{
		counters: make(map[string]*Counter),
		timers:   make(map[string]*Timer),
		epoch:    time.Now(),
	}
}

// SetTrace streams phase-scope events (begin/end lines with elapsed time)
// to w. nil disables streaming. Counters and timers are unaffected.
func (s *Sink) SetTrace(w io.Writer) {
	if s == nil {
		return
	}
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	s.trace = w
}

// Counter returns (creating if needed) the named counter. A nil sink
// returns a nil counter, whose methods are no-ops.
func (s *Sink) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.counters[name]
	if !ok {
		c = &Counter{}
		s.counters[name] = c
	}
	return c
}

// Timer returns (creating if needed) the named timer. A nil sink returns
// a nil timer, whose methods are no-ops.
func (s *Sink) Timer(name string) *Timer {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.timers[name]
	if !ok {
		t = newTimer()
		s.timers[name] = t
	}
	return t
}

// event writes one trace line if streaming is enabled.
func (s *Sink) event(format string, args ...any) {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	if s.trace == nil {
		return
	}
	elapsed := time.Since(s.epoch).Round(time.Microsecond)
	fmt.Fprintf(s.trace, "obs +%-10v %s\n", elapsed, fmt.Sprintf(format, args...))
}

// Scope is one span-style phase scope: Sink.Scope marks its beginning,
// End observes its duration into the timer of the same name and emits the
// matching trace event. The zero Scope (from a nil sink) is a no-op.
type Scope struct {
	s    *Sink
	name string
	t0   time.Time
}

// Scope opens a phase scope. On a nil sink no clock is read.
func (s *Sink) Scope(name string) Scope {
	if s == nil {
		return Scope{}
	}
	s.event("begin %s", name)
	return Scope{s: s, name: name, t0: time.Now()}
}

// End closes the scope.
func (sc Scope) End() {
	if sc.s == nil {
		return
	}
	d := time.Since(sc.t0)
	sc.s.Timer(sc.name).Observe(d)
	sc.s.event("end   %s (%v)", sc.name, d.Round(time.Microsecond))
}
