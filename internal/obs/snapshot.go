package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Bucket is one non-empty histogram bucket: Count observations with
// duration < UpToNS nanoseconds (and >= the previous bucket's bound).
type Bucket struct {
	UpToNS int64 `json:"up_to_ns"`
	Count  int64 `json:"count"`
}

// TimerStat is the read-out of one Timer.
type TimerStat struct {
	Count   int64    `json:"count"`
	TotalNS int64    `json:"total_ns"`
	MinNS   int64    `json:"min_ns"`
	MaxNS   int64    `json:"max_ns"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Total returns the accumulated duration.
func (ts TimerStat) Total() time.Duration { return time.Duration(ts.TotalNS) }

// Mean returns the mean observed duration (0 when nothing was observed).
func (ts TimerStat) Mean() time.Duration {
	if ts.Count == 0 {
		return 0
	}
	return time.Duration(ts.TotalNS / ts.Count)
}

// Snapshot is a point-in-time read-out of a sink, suitable for rendering,
// merging with other phases' snapshots, and JSON encoding. Callers may add
// computed gauges directly to the maps (Execution.Stats does this for log
// sizes, which are derived from the retained log rather than counted on
// the hot path).
type Snapshot struct {
	Counters map[string]int64     `json:"counters"`
	Timers   map[string]TimerStat `json:"timers"`
}

// Snapshot reads the sink's current state. A nil sink yields an empty
// (but usable) snapshot.
func (s *Sink) Snapshot() *Snapshot {
	snap := &Snapshot{
		Counters: make(map[string]int64),
		Timers:   make(map[string]TimerStat),
	}
	if s == nil {
		return snap
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, c := range s.counters {
		snap.Counters[name] = c.Value()
	}
	for name, t := range s.timers {
		ts := TimerStat{
			Count:   t.count.Load(),
			TotalNS: t.total.Load(),
			MaxNS:   t.max.Load(),
		}
		if m := t.min.Load(); m >= 0 {
			ts.MinNS = m
		}
		for i := range t.buckets {
			if n := t.buckets[i].Load(); n > 0 {
				ts.Buckets = append(ts.Buckets, Bucket{UpToNS: 1 << i, Count: n})
			}
		}
		snap.Timers[name] = ts
	}
	return snap
}

// Counter returns the named counter's value (0 when absent).
func (sn *Snapshot) Counter(name string) int64 { return sn.Counters[name] }

// Timer returns the named timer's stats (zero when absent).
func (sn *Snapshot) Timer(name string) TimerStat { return sn.Timers[name] }

// Merge folds another snapshot into this one: counters add, timers
// combine (count/total sum, min/max widen, buckets add).
func (sn *Snapshot) Merge(other *Snapshot) {
	if other == nil {
		return
	}
	for name, v := range other.Counters {
		sn.Counters[name] += v
	}
	for name, ts := range other.Timers {
		cur, ok := sn.Timers[name]
		if !ok {
			sn.Timers[name] = ts
			continue
		}
		if ts.Count > 0 {
			if cur.Count == 0 || ts.MinNS < cur.MinNS {
				cur.MinNS = ts.MinNS
			}
			if ts.MaxNS > cur.MaxNS {
				cur.MaxNS = ts.MaxNS
			}
		}
		cur.Count += ts.Count
		cur.TotalNS += ts.TotalNS
		cur.Buckets = mergeBuckets(cur.Buckets, ts.Buckets)
		sn.Timers[name] = cur
	}
}

func mergeBuckets(a, b []Bucket) []Bucket {
	byBound := make(map[int64]int64, len(a)+len(b))
	for _, bk := range a {
		byBound[bk.UpToNS] += bk.Count
	}
	for _, bk := range b {
		byBound[bk.UpToNS] += bk.Count
	}
	out := make([]Bucket, 0, len(byBound))
	for bound, n := range byBound {
		out = append(out, Bucket{UpToNS: bound, Count: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].UpToNS < out[j].UpToNS })
	return out
}

// Text renders the snapshot as aligned, name-sorted text.
func (sn *Snapshot) Text() string {
	var sb strings.Builder
	if len(sn.Counters) > 0 {
		sb.WriteString("counters:\n")
		names := sortedKeys(sn.Counters)
		width := maxLen(names)
		for _, name := range names {
			fmt.Fprintf(&sb, "  %-*s %d\n", width, name, sn.Counters[name])
		}
	}
	if len(sn.Timers) > 0 {
		sb.WriteString("timers:\n")
		names := sortedKeys(sn.Timers)
		width := maxLen(names)
		for _, name := range names {
			ts := sn.Timers[name]
			fmt.Fprintf(&sb, "  %-*s n=%d total=%v mean=%v min=%v max=%v\n",
				width, name, ts.Count,
				time.Duration(ts.TotalNS).Round(time.Microsecond),
				ts.Mean().Round(time.Microsecond),
				time.Duration(ts.MinNS).Round(time.Microsecond),
				time.Duration(ts.MaxNS).Round(time.Microsecond))
		}
	}
	if sb.Len() == 0 {
		return "(no observations)\n"
	}
	return sb.String()
}

// JSON renders the snapshot as indented JSON.
func (sn *Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(sn, "", "  ")
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func maxLen(names []string) int {
	w := 0
	for _, n := range names {
		if len(n) > w {
			w = len(n)
		}
	}
	return w
}
