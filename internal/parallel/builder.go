package parallel

import (
	"ppd/internal/ast"
	"ppd/internal/bitset"
	"ppd/internal/logging"
)

// FeedRecord is the streamable projection of one log record: the fields
// the graph builder needs, detached from the logging arena so the record
// itself may be recycled the moment the tap returns (see
// logging.Book.SetTap). RecIdx is the record's index within its process's
// book, counting every record kind — the builder uses it for the
// StartRec/EndRec interval bounds, so callers must number prelog records
// too, not just the sync-relevant kinds they forward.
type FeedRecord struct {
	PID     int
	RecIdx  int
	Kind    logging.Kind
	Op      logging.SyncOp
	Obj     int
	Stmt    ast.StmtID
	Gsn     uint64
	FromGsn uint64
	Reads   []int
	Writes  []int

	// Prebuilt read/write bitsets (optional): when non-nil they are used
	// instead of Reads/Writes, letting a batch caller hoist the bitset
	// construction into a parallel pass. The builder takes ownership.
	rset, wset *bitset.Set
}

// Observer receives the builder's output as a stream, in causal
// (clock-assignment) order: one callback per synchronization node, fired
// the moment the node's vector clock is final. ev and edge carry
// process-local IDs (ev.ID == ev.Idx, edge.ID == the process's edge
// index); global renumbering only happens if the graph is materialized by
// Finish. start is the edge's start node (nil for a process's first
// edge). The callee must not retain FeedRecord-derived slices beyond the
// call; the Event/InternalEdge pointers are stable and may be kept.
type Observer interface {
	OnSync(ev *Event, edge *InternalEdge, start *Event)
}

// pendingEv is a synchronization node whose vector clock is not yet
// computable: its in-process predecessor or its causal source (From) is
// still missing. Nodes arrive in process order, so each process's pending
// nodes form a FIFO and only the head can ever become assignable.
type pendingEv struct {
	ev   *Event
	prev *Event // in-process predecessor (nil for the first node)
	edge *InternalEdge

	// fromGsn is the unresolved causal source (0 = resolved or absent);
	// fromEv is the resolved source node once known.
	fromGsn uint64
	fromEv  *Event
}

// builderProc is one process's build state.
type builderProc struct {
	pid      int
	events   []*Event        // retained nodes (retain mode only)
	edges    []*InternalEdge // retained edges (retain mode only)
	fromEv   []*Event        // per retained node: resolved causal source
	nEvents  int
	nEdges   int
	last     *Event // most recently created node (clocked or not)
	startRec int    // record index where the open internal edge began

	unclocked []*pendingEv
	queued    bool // already on the builder's drain queue
}

// Builder constructs the parallel dynamic graph incrementally from a
// stream of per-process record batches — the §6.1 build refactored into
// an online event-stream module. Two modes:
//
//   - Retain mode (NewBuilder): every node and edge is kept and Finish
//     stitches them into a *Graph identical to the batch Build's —
//     Build itself is a thin wrapper over this mode.
//   - Stream mode (NewStreamBuilder): nodes and edges are handed to an
//     Observer as soon as their vector clocks are final and are not
//     retained; memory is bounded by the synchronization frontier, not
//     the run length. Stream mode requires the feed to be in generation
//     order (the order records were appended across all books — exactly
//     what a logging tap observes); the only forward reference the VM
//     ever emits is a spawned process's start node arriving one record
//     before its OpSpawn source, which the builder holds briefly.
//
// Clocks are assigned by the same recurrence the batch pass used
// (clock = join(predecessor, source) + own tick), so the incremental
// fixpoint is the batch fixpoint: feeding the same records in any
// order that respects per-process sequencing yields identical clocks.
type Builder struct {
	nShared int
	retain  bool
	obs     Observer

	procs []*builderProc
	queue []*builderProc // procs with potentially-assignable pending heads

	// byGsn maps a source event's gsn to its node. Retain mode keeps every
	// gsn (pass 2 of the batch build resolved against the complete map).
	// Stream mode keeps only gsns a future record can still reference —
	// see retireSources for the per-op consumption rules.
	byGsn map[uint64]*Event

	// waiting holds nodes whose FromGsn has no source yet, keyed by that
	// gsn. In stream mode only a spawn's start node ever waits, and only
	// for one record.
	waiting map[uint64][]*pendingEv

	// clockWaiters maps an unclocked source node to processes whose
	// pending head needs its clock.
	clockWaiters map[*Event][]*builderProc

	// semPending tracks, per semaphore object, the byGsn entry of its
	// remembered 0→1 V (stream mode): the VM clears or consumes it at the
	// next operation on the same semaphore, so the previous entry dies
	// when a new P or V on the object arrives.
	semPending map[int]uint64

	// ephemeral is the byGsn entry (a recv's gsn) that only the
	// immediately following record can reference (the unblock edge the VM
	// appends in the same step); it is dropped unconsumed otherwise.
	ephemeral uint64

	clockLen int // preallocated clock length (0 = grow as processes appear)
	finished bool
}

// NewBuilder returns a retain-mode builder: Feed it per-process record
// batches (whole books in pid order, or any interleaving that preserves
// per-process order), then Finish to materialize the graph.
func NewBuilder(nShared int) *Builder {
	return &Builder{
		nShared:      nShared,
		retain:       true,
		byGsn:        make(map[uint64]*Event),
		waiting:      make(map[uint64][]*pendingEv),
		clockWaiters: make(map[*Event][]*builderProc),
	}
}

// NewStreamBuilder returns a stream-mode builder reporting to obs; see
// the Builder doc for the feed-order requirement and memory bound.
func NewStreamBuilder(nShared int, obs Observer) *Builder {
	return &Builder{
		nShared:      nShared,
		byGsn:        make(map[uint64]*Event),
		waiting:      make(map[uint64][]*pendingEv),
		clockWaiters: make(map[*Event][]*builderProc),
		semPending:   make(map[int]uint64),
		obs:          obs,
	}
}

// SetNumProcs hints the final process count so vector clocks can be
// allocated at full length up front (the batch wrapper knows it from the
// log; a live stream does not and lets clocks grow).
func (b *Builder) SetNumProcs(n int) {
	if n > b.clockLen {
		b.clockLen = n
	}
}

// proc returns (creating if needed) the state for pid.
func (b *Builder) proc(pid int) *builderProc {
	for pid >= len(b.procs) {
		b.procs = append(b.procs, &builderProc{pid: len(b.procs)})
	}
	return b.procs[pid]
}

// Feed consumes one batch of records. Batch boundaries are free: the
// builder's output is determined by the record sequence alone.
func (b *Builder) Feed(batch []FeedRecord) {
	for i := range batch {
		b.add(&batch[i])
	}
}

// add ingests one record: sync-relevant kinds become nodes and edges,
// everything else only advances the record index (via RecIdx, which the
// caller carries for every record).
func (b *Builder) add(fr *FeedRecord) {
	switch fr.Kind {
	case logging.RecSync, logging.RecStart, logging.RecExit:
	default:
		return
	}
	p := b.proc(fr.PID)
	ev := &Event{
		ID:   EventID(p.nEvents),
		PID:  fr.PID,
		Idx:  p.nEvents,
		Op:   fr.Op,
		Kind: fr.Kind,
		Obj:  fr.Obj,
		Stmt: fr.Stmt,
		Gsn:  fr.Gsn,
		From: -1,
	}
	rset, wset := fr.rset, fr.wset
	if rset == nil {
		rset = bitset.FromSlice(b.nShared, fr.Reads)
	}
	if wset == nil {
		wset = bitset.FromSlice(b.nShared, fr.Writes)
	}
	var prevEnd EventID = -1
	if p.last != nil {
		prevEnd = p.last.ID
	}
	edge := &InternalEdge{
		ID:       p.nEdges,
		PID:      fr.PID,
		Start:    prevEnd,
		End:      ev.ID,
		Reads:    rset,
		Writes:   wset,
		StartRec: p.startRec,
		EndRec:   fr.RecIdx,
	}
	pe := &pendingEv{ev: ev, prev: p.last, edge: edge}
	p.nEvents++
	p.nEdges++
	p.startRec = fr.RecIdx + 1
	p.last = ev
	if b.retain {
		p.events = append(p.events, ev)
		p.edges = append(p.edges, edge)
		p.fromEv = append(p.fromEv, nil)
	}

	// In stream mode, the previous recv-gsn entry is only referenceable by
	// this very record (the unblock the VM appends in the same step).
	eph := b.ephemeral
	b.ephemeral = 0

	// Register this node as a causal source.
	if fr.Gsn != 0 {
		if ws, ok := b.waiting[fr.Gsn]; ok {
			// Forward reference (a spawn's start node arrived first):
			// resolve it now; the gsn is consumed and never enters byGsn.
			delete(b.waiting, fr.Gsn)
			for _, w := range ws {
				w.fromGsn = 0
				w.fromEv = ev
				b.enqueue(b.procs[w.ev.PID])
			}
			if b.retain {
				b.byGsn[fr.Gsn] = ev
			}
		} else if b.retain || sourceOp(fr) {
			b.byGsn[fr.Gsn] = ev
		}
	}

	// Resolve this node's causal source.
	if fr.FromGsn != 0 {
		if src, ok := b.byGsn[fr.FromGsn]; ok {
			pe.fromEv = src
			if !b.retain {
				delete(b.byGsn, fr.FromGsn)
				if fr.FromGsn == eph {
					eph = 0
				}
			}
		} else {
			pe.fromGsn = fr.FromGsn
			b.waiting[fr.FromGsn] = append(b.waiting[fr.FromGsn], pe)
		}
	}

	if !b.retain {
		b.retireSources(fr, eph)
	}

	p.unclocked = append(p.unclocked, pe)
	b.enqueue(p)
	b.drain()
}

// sourceOp reports whether a record's gsn can appear as a later record's
// FromGsn (stream mode only inserts those into byGsn): a V (the §6.2.1
// pendingV pairing and the direct handoff), a send (consumed by the
// matching recv), a recv (consumed by the unblock record the VM appends in
// the same step), and a spawn (consumed by the child's start node, which
// in generation order actually precedes it and is handled by the waiting
// map). P and unblock gsns are never referenced.
func sourceOp(fr *FeedRecord) bool {
	if fr.Kind != logging.RecSync {
		return false
	}
	switch fr.Op {
	case logging.OpV, logging.OpSend, logging.OpRecv, logging.OpSpawn:
		return true
	}
	return false
}

// retireSources drops byGsn entries no future record can reference,
// keeping the map bounded by live synchronization state (per-semaphore
// pending Vs, in-flight channel messages) instead of run length. eph is
// the previous record's ephemeral entry if this record did not consume it.
func (b *Builder) retireSources(fr *FeedRecord, eph uint64) {
	if eph != 0 {
		delete(b.byGsn, eph)
	}
	if fr.Kind != logging.RecSync {
		return
	}
	switch fr.Op {
	case logging.OpV:
		// The VM remembers at most one pending V per semaphore; a new V on
		// the same object replaces or clears it.
		if old := b.semPending[fr.Obj]; old != 0 && old != fr.Gsn {
			delete(b.byGsn, old)
		}
		b.semPending[fr.Obj] = fr.Gsn
	case logging.OpP:
		// Any completed P on the object consumed or cleared the pending V.
		if old := b.semPending[fr.Obj]; old != 0 {
			delete(b.byGsn, old)
			delete(b.semPending, fr.Obj)
		}
	case logging.OpRecv, logging.OpSpawn:
		// Referenceable only by the immediately following record (unblock)
		// or an already-arrived start node (spawn, removed on use above).
		if _, ok := b.byGsn[fr.Gsn]; ok {
			b.ephemeral = fr.Gsn
		}
	}
}

// enqueue schedules a process for clock assignment.
func (b *Builder) enqueue(p *builderProc) {
	if !p.queued && len(p.unclocked) > 0 {
		p.queued = true
		b.queue = append(b.queue, p)
	}
}

// drain assigns clocks to every currently-assignable pending node,
// cascading through processes a fresh clock unblocks.
func (b *Builder) drain() {
	for len(b.queue) > 0 {
		p := b.queue[len(b.queue)-1]
		b.queue = b.queue[:len(b.queue)-1]
		p.queued = false
		for len(p.unclocked) > 0 {
			pe := p.unclocked[0]
			if pe.fromGsn != 0 {
				break // source node not seen yet
			}
			if pe.fromEv != nil && pe.fromEv.Clock == nil {
				// Source seen but not clocked: wake when it is.
				b.clockWaiters[pe.fromEv] = append(b.clockWaiters[pe.fromEv], p)
				break
			}
			p.unclocked = p.unclocked[1:]
			b.assign(pe)
		}
	}
}

// assign computes pe's vector clock (the batch recurrence: join of the
// in-process predecessor and the causal source, plus the process's own
// tick) and publishes the node.
func (b *Builder) assign(pe *pendingEv) {
	pid := pe.ev.PID
	n := b.clockLen
	if pid+1 > n {
		n = pid + 1
	}
	if pe.prev != nil && len(pe.prev.Clock) > n {
		n = len(pe.prev.Clock)
	}
	if pe.fromEv != nil && len(pe.fromEv.Clock) > n {
		n = len(pe.fromEv.Clock)
	}
	clock := make([]int, n)
	if pe.prev != nil {
		copy(clock, pe.prev.Clock)
	}
	if pe.fromEv != nil {
		join(clock, pe.fromEv.Clock)
	}
	clock[pid]++
	pe.ev.Clock = clock
	if b.retain {
		b.procs[pid].fromEv[pe.ev.Idx] = pe.fromEv
	}
	if ws, ok := b.clockWaiters[pe.ev]; ok {
		delete(b.clockWaiters, pe.ev)
		for _, q := range ws {
			b.enqueue(q)
		}
	}
	if b.obs != nil {
		b.obs.OnSync(pe.ev, pe.edge, pe.prev)
	}
}

// Counts returns the per-process node and edge counts so far — the
// renumbering base a streaming consumer needs to map process-local IDs to
// the global ID space the batch build would have assigned (global IDs are
// contiguous per process in pid order).
func (b *Builder) Counts() (events, edges []int) {
	events = make([]int, len(b.procs))
	edges = make([]int, len(b.procs))
	for i, p := range b.procs {
		events[i] = p.nEvents
		edges[i] = p.nEdges
	}
	return events, edges
}

// Flush resolves every node still resolvable: FromGsn references with no
// matching source are dropped (exactly as the batch build's pass 2
// silently skipped them), and any nodes still unclocked afterwards sit on
// a causal cycle (corrupt log) and get zero clocks, matching the batch
// fallback. Stream-mode observers see the stragglers now.
func (b *Builder) Flush() {
	for _, p := range b.procs {
		for _, pe := range p.unclocked {
			if pe.fromGsn != 0 {
				pe.fromGsn = 0 // unmatched source: no sync edge
			}
		}
		b.enqueue(p)
	}
	b.drain()
	for _, p := range b.procs {
		for _, pe := range p.unclocked {
			pe.ev.Clock = make([]int, b.clockLen)
			if b.retain {
				p.fromEv[pe.ev.Idx] = pe.fromEv
			}
			if b.obs != nil {
				b.obs.OnSync(pe.ev, pe.edge, pe.prev)
			}
		}
		p.unclocked = nil
	}
	for k := range b.waiting {
		delete(b.waiting, k)
	}
}

// Finish flushes the builder and materializes the graph (retain mode
// only): process-local IDs are renumbered into the contiguous global ID
// space, sync edges are listed in the batch build's pid-then-record
// order, and clocks are padded to the final process count — the result is
// field-for-field identical to Build over the same records.
func (b *Builder) Finish(pl *logging.ProgramLog) *Graph {
	if !b.retain {
		panic("parallel: Finish on a stream-mode Builder; use Flush")
	}
	if b.finished {
		panic("parallel: Finish called twice")
	}
	b.finished = true
	b.Flush()

	nProcs := len(b.procs)
	if pl != nil && pl.NumProcs() > nProcs {
		nProcs = pl.NumProcs()
	}
	g := &Graph{
		Log:     pl,
		byGsn:   make(map[uint64]EventID),
		nProcs:  nProcs,
		nShared: b.nShared,
	}
	g.byProc = make([][]EventID, nProcs)
	g.edgesOf = make([][]*InternalEdge, nProcs)
	for pid := 0; pid < len(b.procs); pid++ {
		p := b.procs[pid]
		evOff := EventID(len(g.Events))
		edgeOff := len(g.Edges)
		for _, ev := range p.events {
			ev.ID += evOff
			g.Events = append(g.Events, ev)
			g.byProc[pid] = append(g.byProc[pid], ev.ID)
			if ev.Gsn != 0 {
				g.byGsn[ev.Gsn] = ev.ID
			}
		}
		for _, e := range p.edges {
			e.ID += edgeOff
			if e.Start >= 0 {
				e.Start += evOff
			}
			e.End += evOff
			g.Edges = append(g.Edges, e)
		}
		g.edgesOf[pid] = p.edges
	}
	// Sync edges in pid-then-record order, after renumbering so both
	// endpoints carry global IDs.
	for _, p := range b.procs {
		for idx, ev := range p.events {
			if src := p.fromEv[idx]; src != nil {
				ev.From = src.ID
				g.SyncEdges = append(g.SyncEdges, [2]EventID{src.ID, ev.ID})
			}
		}
	}
	for _, ev := range g.Events {
		if len(ev.Clock) < nProcs {
			c := make([]int, nProcs)
			copy(c, ev.Clock)
			ev.Clock = c
		}
	}
	return g
}

// feedOf converts one retained book into the builder's feed, aliasing the
// records' read/write slices (safe: retained logs are immutable) and
// prebuilding the bitsets so a pooled caller hoists that work into the
// parallel pass.
func feedOf(pid int, book *logging.Book, nShared int) []FeedRecord {
	var out []FeedRecord
	for ri, r := range book.Records {
		switch r.Kind {
		case logging.RecSync, logging.RecStart, logging.RecExit:
			out = append(out, FeedRecord{
				PID:     pid,
				RecIdx:  ri,
				Kind:    r.Kind,
				Op:      r.Op,
				Obj:     r.Obj,
				Stmt:    r.Stmt,
				Gsn:     r.Gsn,
				FromGsn: r.FromGsn,
				Reads:   r.Reads,
				Writes:  r.Writes,
				rset:    bitset.FromSlice(nShared, r.Reads),
				wset:    bitset.FromSlice(nShared, r.Writes),
			})
		}
	}
	return out
}
