package parallel

import (
	"fmt"
	"strings"

	"ppd/internal/ast"
	"ppd/internal/logging"
)

// Deadlock-cause analysis (§6: "The parallel dynamic graph can also help
// the user analyze the causes of deadlocks"). When execution ends with
// blocked processes, each blocked process's last logged state tells what it
// was waiting for; chaining "waits-for" dependencies through the objects'
// last-known holders exposes the cycle or the missing signal.

// BlockedProc describes one process that ended blocked.
type BlockedProc struct {
	PID    int
	Stmt   ast.StmtID // the blocking operation's site (from the exit record)
	Status int64      // logging.ExitBlocked* code
	Obj    int        // the semaphore/channel being waited on
	// LastOp is the last synchronization operation the process completed.
	LastOp  logging.SyncOp
	LastObj int
}

// DeadlockInfo summarizes a deadlocked (or failed-and-blocked) execution.
type DeadlockInfo struct {
	Blocked []BlockedProc
	// Holders maps a semaphore GlobalID to the PID that performed the most
	// recent P on it without a later V (a likely holder), or -1.
	Holders map[int]int
}

// AnalyzeDeadlock inspects the logs for processes that ended blocked (their
// final record is a RecExit flushed at halt rather than after a clean
// return — distinguished by the process's last sync op leaving it waiting).
// The analysis is heuristic in the way the paper intends: it presents the
// evidence (who blocked where, who last held what) for the user to read.
func (g *Graph) AnalyzeDeadlock() *DeadlockInfo {
	info := &DeadlockInfo{Holders: make(map[int]int)}

	// Track likely semaphore holders: last P without a subsequent V per
	// object, program-order per process, merged by Gsn order.
	type ev struct {
		gsn uint64
		pid int
		op  logging.SyncOp
		obj int
	}
	var evs []ev
	for pid, book := range g.Log.Books {
		for _, r := range book.Records {
			if r.Kind == logging.RecSync && (r.Op == logging.OpP || r.Op == logging.OpV) {
				evs = append(evs, ev{gsn: r.Gsn, pid: pid, op: r.Op, obj: r.Obj})
			}
		}
	}
	// Gsn order is the execution order.
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && evs[j].gsn < evs[j-1].gsn; j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
	held := make(map[int]int) // obj -> holder pid (-1 none)
	for _, e := range evs {
		switch e.op {
		case logging.OpP:
			held[e.obj] = e.pid
		case logging.OpV:
			if held[e.obj] == e.pid {
				held[e.obj] = -1
			}
		}
	}
	for obj, pid := range held {
		info.Holders[obj] = pid
	}

	for pid, book := range g.Log.Books {
		if book.Len() == 0 {
			continue
		}
		last := book.Records[book.Len()-1]
		if last.Kind != logging.RecExit ||
			last.Value < logging.ExitBlockedSem || last.Value > logging.ExitBlockedRecv {
			continue
		}
		bp := BlockedProc{PID: pid, Stmt: last.Stmt, Status: last.Value, Obj: last.Obj}
		for i := book.Len() - 1; i >= 0; i-- {
			if r := book.Records[i]; r.Kind == logging.RecSync {
				bp.LastOp = r.Op
				bp.LastObj = r.Obj
				break
			}
		}
		info.Blocked = append(info.Blocked, bp)
	}
	return info
}

// Report renders the analysis with resolved names.
func (d *DeadlockInfo) Report(globalName func(int) string, stmtText func(ast.StmtID) string) string {
	if len(d.Blocked) == 0 {
		return "no blocked processes\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d process(es) blocked at halt:\n", len(d.Blocked))
	for _, b := range d.Blocked {
		what := "?"
		switch b.Status {
		case logging.ExitBlockedSem:
			what = "P(" + globalName(b.Obj) + ")"
		case logging.ExitBlockedSend:
			what = "send on " + globalName(b.Obj)
		case logging.ExitBlockedRecv:
			what = "recv on " + globalName(b.Obj)
		}
		fmt.Fprintf(&sb, "  P%d blocked in %s", b.PID, what)
		if b.Stmt != ast.NoStmt {
			fmt.Fprintf(&sb, " at %s", stmtText(b.Stmt))
		}
		if b.LastOp != 0 {
			fmt.Fprintf(&sb, " (last completed sync: %s on %s)", b.LastOp, globalName(b.LastObj))
		}
		sb.WriteByte('\n')
	}
	holders := false
	for obj, pid := range d.Holders {
		if pid >= 0 {
			if !holders {
				sb.WriteString("likely held semaphores:\n")
				holders = true
			}
			fmt.Fprintf(&sb, "  %s last acquired by P%d and never released\n", globalName(obj), pid)
		}
	}
	return sb.String()
}
