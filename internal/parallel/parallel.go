// Package parallel builds the parallel dynamic program dependence graph
// (§6.1) from per-process logs: synchronization nodes, synchronization
// edges (§6.2), and internal edges — one per executed synchronization unit,
// carrying the shared-variable READ/WRITE sets recorded at run time.
//
// It implements Lamport's happened-before partial order (§6's "→" operator)
// with vector clocks, giving O(P) comparisons between events, and exposes
// the ordering queries race detection (package race) and the controller's
// cross-process flowback need.
package parallel

import (
	"fmt"
	"sort"
	"strings"

	"ppd/internal/ast"
	"ppd/internal/bitset"
	"ppd/internal/logging"
	"ppd/internal/sched"
)

// EventID identifies a synchronization node globally.
type EventID int

// Event is one synchronization node of the parallel dynamic graph.
type Event struct {
	ID   EventID
	PID  int
	Idx  int // position among the process's sync events
	Op   logging.SyncOp
	Kind logging.Kind // RecSync, RecStart, or RecExit
	Obj  int
	Stmt ast.StmtID
	Gsn  uint64

	// From is the causal source event (synchronization edge tail), or -1.
	From EventID

	// Clock is the event's vector clock (len = number of processes).
	Clock []int
}

// InternalEdge is one internal edge: the events of a process between two
// consecutive synchronization nodes, with the shared variables read and
// written during it (§6.3's READ_SET/WRITE_SET).
type InternalEdge struct {
	ID       int
	PID      int
	Start    EventID // the sync node the edge begins at (-1 before RecStart)
	End      EventID // the sync node that terminated the edge
	Reads    *bitset.Set
	Writes   *bitset.Set
	StartRec int // record index in the process's book where the edge begins
	EndRec   int
}

// Graph is the parallel dynamic graph of one execution.
type Graph struct {
	Log    *logging.ProgramLog
	Events []*Event
	Edges  []*InternalEdge

	// VarNames optionally names each shared variable (indexed by
	// GlobalID); when set, race reports print names instead of raw IDs.
	VarNames []string

	// SyncEdges lists (from, to) event pairs (§6.2).
	SyncEdges [][2]EventID

	byGsn   map[uint64]EventID
	byProc  [][]EventID // events per process, in order
	edgesOf [][]*InternalEdge
	nProcs  int
	nShared int
}

// Build constructs the graph from an execution's logs. nShared is the size
// of the GlobalID space (for the read/write bitsets). Build is a thin
// wrapper over the incremental Builder: each book is converted to the
// builder's feed on the shared worker pool (the read/write bitsets — the
// heavy part of extraction — are built there), then fed in pid order. The
// result is identical to the fully-sequential build — the builder numbers
// each process's events and edges contiguously and Finish renumbers by
// per-process offsets in pid order, reproducing the exact global IDs.
func Build(pl *logging.ProgramLog, nShared int) *Graph {
	return build(pl, nShared, sched.Shared())
}

// BuildWithPool is Build fanning out on the caller's pool instead of the
// shared one — the Controller uses it so its configured worker bound (and
// pool observability) covers graph construction too.
func BuildWithPool(pl *logging.ProgramLog, nShared int, pool *sched.Pool) *Graph {
	return build(pl, nShared, pool)
}

func build(pl *logging.ProgramLog, nShared int, pool *sched.Pool) *Graph {
	nProcs := pl.NumProcs()
	feeds := sched.Map(pool, nProcs, func(pid int) []FeedRecord {
		return feedOf(pid, pl.Books[pid], nShared)
	})
	b := NewBuilder(nShared)
	b.SetNumProcs(nProcs)
	for _, feed := range feeds {
		b.Feed(feed)
	}
	return b.Finish(pl)
}

func join(dst, src []int) {
	for i, v := range src {
		if v > dst[i] {
			dst[i] = v
		}
	}
}

// HappensBefore reports whether event a happened before event b (§6.1's
// n1 → n2 via vector clocks).
func (g *Graph) HappensBefore(a, b EventID) bool {
	if a == b {
		return false
	}
	ea, eb := g.Events[a], g.Events[b]
	return ea.Clock[ea.PID] <= eb.Clock[ea.PID] && !clockEqual(ea.Clock, eb.Clock)
}

func clockEqual(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// EdgeHB implements §6.1's edge ordering: e1 → e2 iff n1 → n2 where n1 is
// e1's end node and n2 is e2's start node. A process's first edge has no
// start node; its events are ordered only through the process's own chain.
func (g *Graph) EdgeHB(e1, e2 *InternalEdge) bool {
	if e2.Start < 0 {
		return false // nothing precedes a process's initial edge
	}
	if e1.End == e2.Start {
		return true // same node: e1 flows directly into e2
	}
	return g.HappensBefore(e1.End, e2.Start)
}

// Simultaneous implements Definition 6.1: neither edge ordered before the
// other.
func (g *Graph) Simultaneous(e1, e2 *InternalEdge) bool {
	return !g.EdgeHB(e1, e2) && !g.EdgeHB(e2, e1)
}

// EdgesOf returns the internal edges of one process, in order. The
// per-process index is built during Build, so this is O(1) — it sits on
// the controller's cross-process resolution path.
func (g *Graph) EdgesOf(pid int) []*InternalEdge {
	if pid < 0 || pid >= len(g.edgesOf) {
		return nil
	}
	return g.edgesOf[pid]
}

// NumProcs returns the number of processes.
func (g *Graph) NumProcs() int { return g.nProcs }

// NumShared returns the shared-variable universe size.
func (g *Graph) NumShared() int { return g.nShared }

// LastWriterBefore finds, for a read of shared variable gid on edge e, the
// most recent internal edge of another process that wrote gid and happened
// before e — the §6.3 cross-process data dependence. Returns nil when no
// ordered writer exists (the value came from initialization or a race).
func (g *Graph) LastWriterBefore(e *InternalEdge, gid int) *InternalEdge {
	var best *InternalEdge
	for _, cand := range g.Edges {
		if cand.ID == e.ID || !cand.Writes.Has(gid) {
			continue
		}
		if !g.EdgeHB(cand, e) {
			continue
		}
		if best == nil || g.EdgeHB(best, cand) {
			best = cand
		}
	}
	return best
}

// String renders the graph in the style of Fig 6.1 for golden tests.
func (g *Graph) String() string {
	var sb strings.Builder
	for pid := 0; pid < g.nProcs; pid++ {
		fmt.Fprintf(&sb, "P%d:", pid+1)
		for _, eid := range g.byProc[pid] {
			ev := g.Events[eid]
			switch ev.Kind {
			case logging.RecStart:
				fmt.Fprintf(&sb, " start")
			case logging.RecExit:
				fmt.Fprintf(&sb, " exit")
			default:
				fmt.Fprintf(&sb, " %s", ev.Op)
			}
			if ev.From >= 0 {
				fmt.Fprintf(&sb, "(<-n%d)", ev.From)
			}
		}
		sb.WriteByte('\n')
	}
	edges := append([][2]EventID(nil), g.SyncEdges...)
	sort.Slice(edges, func(i, j int) bool { return edges[i][0] < edges[j][0] })
	for _, e := range edges {
		a, b := g.Events[e[0]], g.Events[e[1]]
		fmt.Fprintf(&sb, "sync: P%d.%s -> P%d.%s\n", a.PID+1, a.Op, b.PID+1, opOrKind(b))
	}
	return sb.String()
}

func opOrKind(e *Event) string {
	if e.Kind == logging.RecStart {
		return "start"
	}
	return e.Op.String()
}
