package parallel

import (
	"strings"
	"testing"

	"ppd/internal/ast"
	"ppd/internal/compile"
	"ppd/internal/eblock"
	"ppd/internal/logging"
	"ppd/internal/sched"
	"ppd/internal/vm"
)

// execGraph compiles src, runs it logged with the given scheduling, and
// builds the parallel dynamic graph.
func execGraph(t *testing.T, src string, opts vm.Options) (*Graph, *compile.Artifacts, *vm.VM) {
	t.Helper()
	art, err := compile.CompileSource("test.mpl", src, eblock.Config{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	opts.Mode = vm.ModeLog
	v := vm.New(art.Prog, opts)
	if err := v.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return Build(v.Log, len(art.Prog.Globals)), art, v
}

// TestFigure61ParallelGraph mirrors the paper's Fig 6.1: three processes
// with a blocking send (n3) received by another process (n4), unblocking
// the sender (n5) — the internal edge between send and unblock contains
// zero events (e4 in the figure).
func TestFigure61ParallelGraph(t *testing.T) {
	src := `
chan c;
sem done = 0;
func p2() {
	var v = recv(c);
	print(v);
	V(done);
}
func p3() {
	V(done);
}
func main() {
	spawn p2();
	spawn p3();
	send(c, 7);
	P(done);
	P(done);
}`
	g, _, _ := execGraph(t, src, vm.Options{Quantum: 1})
	if g.NumProcs() != 3 {
		t.Fatalf("procs = %d, want 3", g.NumProcs())
	}

	// Find the send (P1), recv (P2), unblock (P1) events.
	var send, recv, unblock *Event
	for _, ev := range g.Events {
		switch {
		case ev.Op == logging.OpSend:
			send = ev
		case ev.Op == logging.OpRecv:
			recv = ev
		case ev.Op == logging.OpUnblock:
			unblock = ev
		}
	}
	if send == nil || recv == nil || unblock == nil {
		t.Fatalf("missing events:\n%s", g)
	}
	// n3 -> n4: the recv's causal source is the send.
	if recv.From != send.ID {
		t.Errorf("recv.From = %d, want send %d", recv.From, send.ID)
	}
	// n4 -> n5: the sender's unblock comes from the recv.
	if unblock.From != recv.ID {
		t.Errorf("unblock.From = %d, want recv %d", unblock.From, recv.ID)
	}
	// The internal edge send→unblock on P1 contains zero events: its
	// read/write sets are empty (e4 in the figure).
	for _, e := range g.Edges {
		if e.Start == send.ID && e.End == unblock.ID {
			if !e.Reads.IsEmpty() || !e.Writes.IsEmpty() {
				t.Errorf("edge e4 should be empty, got reads=%s writes=%s", e.Reads, e.Writes)
			}
		}
	}
	// Happened-before: send → recv's successor events, and transitively to
	// everything after the unblock.
	if !g.HappensBefore(send.ID, recv.ID) {
		t.Error("send must happen before recv")
	}
	if !g.HappensBefore(send.ID, unblock.ID) {
		t.Error("send must happen before unblock (transitively)")
	}
	if g.HappensBefore(recv.ID, send.ID) {
		t.Error("recv must not happen before send")
	}
}

func TestSpawnOrdersChildAfterParent(t *testing.T) {
	g, _, _ := execGraph(t, `
func child() { print(1); }
func main() { spawn child(); }`, vm.Options{})
	var spawn, start *Event
	for _, ev := range g.Events {
		if ev.Op == logging.OpSpawn {
			spawn = ev
		}
		if ev.Kind == logging.RecStart && ev.PID == 1 {
			start = ev
		}
	}
	if spawn == nil || start == nil {
		t.Fatalf("missing events:\n%s", g)
	}
	if start.From != spawn.ID {
		t.Errorf("child start.From = %d, want spawn %d", start.From, spawn.ID)
	}
	if !g.HappensBefore(spawn.ID, start.ID) {
		t.Error("spawn must happen before child start")
	}
}

func TestSemaphoreOrdering(t *testing.T) {
	// Worker V(done) must happen before main's post-P(done) events.
	g, _, _ := execGraph(t, `
shared sv;
sem done = 0;
func w() {
	sv = 1;
	V(done);
}
func main() {
	spawn w();
	P(done);
	sv = 2;
}`, vm.Options{Quantum: 1})
	var vEv, pEv *Event
	for _, ev := range g.Events {
		if ev.Op == logging.OpV {
			vEv = ev
		}
		if ev.Op == logging.OpP {
			pEv = ev
		}
	}
	if vEv == nil || pEv == nil {
		t.Fatal("missing sem events")
	}
	if !g.HappensBefore(vEv.ID, pEv.ID) {
		t.Errorf("V must happen before the P it enables:\n%s", g)
	}
	// The edges: worker's write edge (terminated by V) must be ordered
	// before main's post-P edge (terminated by exit).
	var writeEdge, postPEdge *InternalEdge
	for _, e := range g.Edges {
		if e.PID == 1 && e.Writes.Has(0) {
			writeEdge = e
		}
		if e.PID == 0 && e.Start == pEv.ID {
			postPEdge = e
		}
	}
	if writeEdge == nil || postPEdge == nil {
		t.Fatalf("missing edges:\n%s", g)
	}
	if !g.EdgeHB(writeEdge, postPEdge) {
		t.Error("worker's write edge must precede main's post-P edge")
	}
	if g.Simultaneous(writeEdge, postPEdge) {
		t.Error("ordered edges must not be simultaneous")
	}
}

func TestConcurrentEdgesAreSimultaneous(t *testing.T) {
	// Two workers with no synchronization between them.
	g, _, _ := execGraph(t, `
shared a;
shared b;
sem done = 0;
func w1() { a = 1; V(done); }
func w2() { b = 2; V(done); }
func main() {
	spawn w1();
	spawn w2();
	P(done);
	P(done);
}`, vm.Options{Quantum: 1})
	var e1, e2 *InternalEdge
	for _, e := range g.Edges {
		if e.PID == 1 && e.Writes.Has(0) {
			e1 = e
		}
		if e.PID == 2 && e.Writes.Has(1) {
			e2 = e
		}
	}
	if e1 == nil || e2 == nil {
		t.Fatalf("missing edges:\n%s", g)
	}
	if !g.Simultaneous(e1, e2) {
		t.Error("unsynchronized edges of different processes must be simultaneous")
	}
}

func TestVZeroToOnePairing(t *testing.T) {
	// §6.2.1 second rule: V takes sem 0→1, next op is another process's P.
	g, _, _ := execGraph(t, `
sem s = 0;
sem done = 0;
func w() {
	V(s);
	V(done);
}
func main() {
	spawn w();
	P(done);
	P(s);
}`, vm.Options{Quantum: 1})
	var vS, pS *Event
	for _, ev := range g.Events {
		if ev.Op == logging.OpV && ev.Obj == 0 {
			vS = ev
		}
		if ev.Op == logging.OpP && ev.Obj == 0 {
			pS = ev
		}
	}
	if vS == nil || pS == nil {
		t.Fatalf("missing events:\n%s", g)
	}
	if pS.From != vS.ID {
		t.Errorf("P(s).From = %d, want V(s) %d (0->1 pairing)", pS.From, vS.ID)
	}
}

func TestLastWriterBefore(t *testing.T) {
	g, art, _ := execGraph(t, `
shared sv;
sem done = 0;
func w() {
	sv = 42;
	V(done);
}
func main() {
	spawn w();
	P(done);
	print(sv);
}`, vm.Options{Quantum: 1})
	gid := art.Info.GlobalByName("sv").GlobalID
	// Main's post-P edge reads sv.
	var readEdge *InternalEdge
	for _, e := range g.Edges {
		if e.PID == 0 && e.Reads.Has(gid) {
			readEdge = e
		}
	}
	if readEdge == nil {
		t.Fatalf("no reading edge:\n%s", g)
	}
	w := g.LastWriterBefore(readEdge, gid)
	if w == nil || w.PID != 1 {
		t.Errorf("last writer = %+v, want worker's edge", w)
	}
}

func TestClocksAreMonotonicPerProcess(t *testing.T) {
	g, _, _ := execGraph(t, `
sem done = 0;
func w() { V(done); V(done); }
func main() {
	spawn w();
	P(done);
	P(done);
}`, vm.Options{Quantum: 1})
	for pid := 0; pid < g.NumProcs(); pid++ {
		edges := g.EdgesOf(pid)
		for i := 1; i < len(edges); i++ {
			if !g.EdgeHB(edges[i-1], edges[i]) {
				t.Errorf("P%d: edge %d must precede edge %d", pid, i-1, i)
			}
		}
	}
}

func TestGraphString(t *testing.T) {
	g, _, _ := execGraph(t, `
func w() { print(1); }
func main() { spawn w(); }`, vm.Options{})
	s := g.String()
	if !strings.Contains(s, "P1:") || !strings.Contains(s, "P2:") {
		t.Errorf("render missing processes:\n%s", s)
	}
	if !strings.Contains(s, "sync: P1.spawn -> P2.start") {
		t.Errorf("render missing spawn edge:\n%s", s)
	}
}

func TestDeadlockAnalysis(t *testing.T) {
	// Classic lock-order inversion: main holds a and wants b; worker holds
	// b and wants a.
	src := `
sem a = 1;
sem b = 1;
sem started = 0;
func w() {
	P(b);
	V(started);
	P(a);
	V(a);
	V(b);
}
func main() {
	P(a);
	spawn w();
	P(started);
	P(b);
	V(b);
	V(a);
}`
	art, err := compile.CompileSource("dl.mpl", src, eblock.Config{})
	if err != nil {
		t.Fatal(err)
	}
	v := vm.New(art.Prog, vm.Options{Mode: vm.ModeLog, Quantum: 1})
	rerr := v.Run()
	if rerr == nil || !v.Deadlock {
		t.Fatalf("expected deadlock, got %v", rerr)
	}
	g := Build(v.Log, len(art.Prog.Globals))
	info := g.AnalyzeDeadlock()
	if len(info.Blocked) != 2 {
		t.Fatalf("blocked = %d, want 2: %+v", len(info.Blocked), info.Blocked)
	}
	// Main (P0) waits on b; worker (P1) waits on a.
	waits := map[int]string{}
	for _, bp := range info.Blocked {
		waits[bp.PID] = art.Prog.Globals[bp.Obj].Name
	}
	if waits[0] != "b" || waits[1] != "a" {
		t.Errorf("waits = %v, want P0->b P1->a", waits)
	}
	// Holders: a held by P0, b held by P1.
	if info.Holders[0] != 0 || info.Holders[1] != 1 {
		t.Errorf("holders = %v", info.Holders)
	}
	rep := info.Report(
		func(gid int) string { return art.Prog.Globals[gid].Name },
		func(id ast.StmtID) string { return "stmt" })
	for _, want := range []string{"P0 blocked in P(b)", "P1 blocked in P(a)",
		"a last acquired by P0", "b last acquired by P1"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestNoDeadlockInCleanRun(t *testing.T) {
	g, _, _ := execGraph(t, `
sem done = 0;
func w() { V(done); }
func main() { spawn w(); P(done); }`, vm.Options{Quantum: 1})
	info := g.AnalyzeDeadlock()
	if len(info.Blocked) != 0 {
		t.Errorf("clean run reported blocked procs: %+v", info.Blocked)
	}
}

// TestRPCPattern verifies §6.2.3's treatment of RPC/rendezvous: "we can
// treat the remote procedure call in a similar way as we do the rendezvous
// using two synchronization edges, one for calling to, and another for
// returning from the RPC". In MPL the pattern is a request channel and a
// reply channel; the graph must contain both edges and order the client's
// post-call code after the server's handler.
func TestRPCPattern(t *testing.T) {
	src := `
shared handled;
chan req;
chan rep;
func server() {
	var arg = recv(req);
	handled = arg * 2;
	send(rep, handled);
}
func main() {
	spawn server();
	send(req, 21);
	var result = recv(rep);
	print(result);
}`
	g, art, _ := execGraph(t, src, vm.Options{Quantum: 1})

	var callSend, callRecv, retSend, retRecv *Event
	reqID := art.Info.GlobalByName("req").GlobalID
	repID := art.Info.GlobalByName("rep").GlobalID
	for _, ev := range g.Events {
		switch {
		case ev.Op == logging.OpSend && ev.Obj == reqID:
			callSend = ev
		case ev.Op == logging.OpRecv && ev.Obj == reqID:
			callRecv = ev
		case ev.Op == logging.OpSend && ev.Obj == repID:
			retSend = ev
		case ev.Op == logging.OpRecv && ev.Obj == repID:
			retRecv = ev
		}
	}
	if callSend == nil || callRecv == nil || retSend == nil || retRecv == nil {
		t.Fatalf("missing RPC events:\n%s", g)
	}
	// Edge 1: calling to the RPC.
	if callRecv.From != callSend.ID {
		t.Errorf("call edge: recv.From = %d, want %d", callRecv.From, callSend.ID)
	}
	// Edge 2: returning from the RPC.
	if retRecv.From != retSend.ID {
		t.Errorf("return edge: recv.From = %d, want %d", retRecv.From, retSend.ID)
	}
	// The client's resume point is ordered after the server's handler.
	if !g.HappensBefore(callSend.ID, retRecv.ID) {
		t.Error("client call must happen before client resume")
	}
	if !g.HappensBefore(callRecv.ID, retRecv.ID) {
		t.Error("server handling must happen before client resume")
	}
	// The server's write to `handled` is ordered before the client's
	// post-RPC edge: no race despite no explicit mutex.
	hID := art.Info.GlobalByName("handled").GlobalID
	var writeEdge, clientTail *InternalEdge
	for _, e := range g.Edges {
		if e.PID == 1 && e.Writes.Has(hID) {
			writeEdge = e
		}
		if e.PID == 0 && e.Start == retRecv.ID {
			clientTail = e
		}
	}
	if writeEdge == nil || clientTail == nil {
		t.Fatalf("missing edges:\n%s", g)
	}
	if !g.EdgeHB(writeEdge, clientTail) {
		t.Error("server's write edge must precede client's post-RPC edge")
	}
}

// TestHappensBeforeIsStrictPartialOrder checks the algebraic laws of the
// "+"-operator (§6.1) over real executions: irreflexivity, asymmetry, and
// transitivity of the event ordering, and asymmetry of the edge ordering.
func TestHappensBeforeIsStrictPartialOrder(t *testing.T) {
	srcs := []string{
		`
sem done = 0;
chan c;
func a() { send(c, 1); V(done); }
func b() { var x = recv(c); print(x); V(done); }
func main() { spawn a(); spawn b(); P(done); P(done); }`,
		`
sem m = 1;
sem done = 0;
shared g;
func w(k int) {
	var i = 0;
	while (i < 3) { P(m); g = g + k; V(m); i = i + 1; }
	V(done);
}
func main() { spawn w(1); spawn w(2); spawn w(3); P(done); P(done); P(done); }`,
	}
	for si, src := range srcs {
		for _, seed := range []int64{0, 5, 11} {
			g, _, _ := execGraph(t, src, vm.Options{Quantum: 1, Seed: seed})
			n := len(g.Events)
			for i := 0; i < n; i++ {
				if g.HappensBefore(EventID(i), EventID(i)) {
					t.Fatalf("src %d seed %d: event %d before itself", si, seed, i)
				}
				for j := 0; j < n; j++ {
					if i != j && g.HappensBefore(EventID(i), EventID(j)) &&
						g.HappensBefore(EventID(j), EventID(i)) {
						t.Fatalf("src %d seed %d: %d and %d mutually ordered", si, seed, i, j)
					}
					for k := 0; k < n; k++ {
						if g.HappensBefore(EventID(i), EventID(j)) &&
							g.HappensBefore(EventID(j), EventID(k)) &&
							!g.HappensBefore(EventID(i), EventID(k)) {
							t.Fatalf("src %d seed %d: transitivity violated %d->%d->%d", si, seed, i, j, k)
						}
					}
				}
			}
			// Edge ordering is asymmetric and consistent with Simultaneous.
			for _, e1 := range g.Edges {
				for _, e2 := range g.Edges {
					hb12, hb21 := g.EdgeHB(e1, e2), g.EdgeHB(e2, e1)
					if e1 != e2 && hb12 && hb21 {
						t.Fatalf("src %d seed %d: edges %d,%d mutually ordered", si, seed, e1.ID, e2.ID)
					}
					if g.Simultaneous(e1, e2) != (!hb12 && !hb21) {
						t.Fatalf("src %d seed %d: Simultaneous inconsistent", si, seed)
					}
				}
			}
		}
	}
}

// TestSyncEdgesRespectGsnOrder: a causal source always has a smaller global
// sequence number than its target.
func TestSyncEdgesRespectGsnOrder(t *testing.T) {
	g, _, _ := execGraph(t, `
sem done = 0;
chan c;
func w() { send(c, 1); V(done); }
func main() { spawn w(); var x = recv(c); P(done); print(x); }`,
		vm.Options{Quantum: 1})
	for _, pair := range g.SyncEdges {
		from, to := g.Events[pair[0]], g.Events[pair[1]]
		if from.Gsn != 0 && to.Gsn != 0 && from.Gsn >= to.Gsn {
			t.Errorf("edge %d->%d violates gsn order (%d >= %d)",
				pair[0], pair[1], from.Gsn, to.Gsn)
		}
	}
}

// TestBuildParallelMatchesSequential pins the determinism contract of the
// pooled pass 1: whatever the worker count, the stitched graph must be
// byte-identical to a one-worker (sequential) build — same event and edge
// IDs, same clocks, same rendering.
func TestBuildParallelMatchesSequential(t *testing.T) {
	src := `
shared a; shared b;
sem m = 1;
sem done = 0;
func w1() { P(m); a = a + 1; V(m); b = 9; V(done); }
func w2() { P(m); a = a * 2; V(m); V(done); }
func w3() { b = b + a; V(done); }
func main() {
	spawn w1();
	spawn w2();
	spawn w3();
	P(done); P(done); P(done);
	print(a + b);
}`
	art, err := compile.CompileSource("det.mpl", src, eblock.Config{})
	if err != nil {
		t.Fatal(err)
	}
	v := vm.New(art.Prog, vm.Options{Mode: vm.ModeLog, Quantum: 1})
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	ref := build(v.Log, len(art.Prog.Globals), sched.New(1))
	for _, workers := range []int{2, 3, 8} {
		g := build(v.Log, len(art.Prog.Globals), sched.New(workers))
		if got, want := g.String(), ref.String(); got != want {
			t.Fatalf("workers=%d: graph rendering differs\ngot:\n%s\nwant:\n%s", workers, got, want)
		}
		if len(g.Events) != len(ref.Events) || len(g.Edges) != len(ref.Edges) {
			t.Fatalf("workers=%d: %d events/%d edges, want %d/%d",
				workers, len(g.Events), len(g.Edges), len(ref.Events), len(ref.Edges))
		}
		for i, ev := range g.Events {
			re := ref.Events[i]
			if ev.ID != re.ID || ev.PID != re.PID || ev.Idx != re.Idx ||
				ev.Gsn != re.Gsn || ev.From != re.From || !clockEqual(ev.Clock, re.Clock) {
				t.Fatalf("workers=%d: event %d differs: %+v vs %+v", workers, i, ev, re)
			}
		}
		for i, e := range g.Edges {
			re := ref.Edges[i]
			if e.ID != re.ID || e.PID != re.PID || e.Start != re.Start || e.End != re.End ||
				e.StartRec != re.StartRec || e.EndRec != re.EndRec ||
				!e.Reads.Equal(re.Reads) || !e.Writes.Equal(re.Writes) {
				t.Fatalf("workers=%d: edge %d differs: %+v vs %+v", workers, i, e, re)
			}
		}
	}
}

func TestEdgesOfIndexed(t *testing.T) {
	g, _, _ := execGraph(t, `
sem done = 0;
func w() { V(done); }
func main() { spawn w(); P(done); }`, vm.Options{Quantum: 1})
	for pid := 0; pid < g.NumProcs(); pid++ {
		edges := g.EdgesOf(pid)
		prev := -1
		for _, e := range edges {
			if e.PID != pid {
				t.Fatalf("EdgesOf(%d) returned edge of P%d", pid, e.PID)
			}
			if e.ID <= prev {
				t.Fatalf("EdgesOf(%d) out of order: %d after %d", pid, e.ID, prev)
			}
			prev = e.ID
		}
	}
	if g.EdgesOf(-1) != nil || g.EdgesOf(99) != nil {
		t.Error("out-of-range pid must return nil")
	}
}
