// Package parser implements a recursive-descent parser for MPL with basic
// error recovery (synchronize on ';' and '}'). It assigns every statement a
// StmtID in source order; downstream analyses, bytecode, logs, and graphs
// all key on those IDs.
package parser

import (
	"ppd/internal/ast"
	"ppd/internal/lexer"
	"ppd/internal/source"
	"ppd/internal/token"
)

// Parser holds parsing state for one file.
type Parser struct {
	file *source.File
	errs *source.ErrorList
	toks []lexer.Token
	pos  int

	prog   *ast.Program
	nextID ast.StmtID
}

// Parse scans and parses the file, returning the Program. Syntax errors are
// recorded in errs; the returned Program contains whatever was recoverable.
func Parse(file *source.File, errs *source.ErrorList) *ast.Program {
	p := &Parser{
		file:   file,
		errs:   errs,
		toks:   lexer.ScanAll(file, errs),
		prog:   &ast.Program{File: file},
		nextID: 1,
	}
	p.parseProgram()
	p.prog.NumStmts = int(p.nextID) - 1
	return p.prog
}

// ParseString is a convenience wrapper for tests: parse source text directly.
func ParseString(name, src string, errs *source.ErrorList) *ast.Program {
	return Parse(source.NewFile(name, src), errs)
}

func (p *Parser) cur() lexer.Token { return p.toks[p.pos] }
func (p *Parser) peek() lexer.Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *Parser) next() lexer.Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *Parser) at(k token.Kind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k token.Kind) (lexer.Token, bool) {
	if p.at(k) {
		return p.next(), true
	}
	return lexer.Token{}, false
}

func (p *Parser) expect(k token.Kind) lexer.Token {
	if p.at(k) {
		return p.next()
	}
	p.errorf(p.cur().Pos, "expected %q, found %q", k.String(), p.cur().Lit)
	return lexer.Token{Kind: k, Pos: p.cur().Pos}
}

func (p *Parser) errorf(pos source.Pos, format string, args ...any) {
	p.errs.Errorf(p.file.Position(pos), format, args...)
}

// synchronize skips tokens until after the next ';' or before '}' so one
// syntax error does not cascade.
func (p *Parser) synchronize() {
	for !p.at(token.EOF) {
		if p.at(token.SEMICOLON) {
			p.next()
			return
		}
		if p.at(token.RBRACE) || p.at(token.FUNC) {
			return
		}
		p.next()
	}
}

func (p *Parser) assignID(s interface{ SetID(ast.StmtID) }) {
	s.SetID(p.nextID)
	p.nextID++
	if st, ok := s.(ast.Stmt); ok {
		p.prog.RegisterStmt(st)
	}
}

// ---------------------------------------------------------------- top level

func (p *Parser) parseProgram() {
	for !p.at(token.EOF) {
		switch p.cur().Kind {
		case token.FUNC:
			f := p.parseFuncDecl()
			if f != nil {
				p.prog.Decls = append(p.prog.Decls, f)
				p.prog.Funcs = append(p.prog.Funcs, f)
			}
		case token.VAR, token.SHARED, token.SEM, token.CHAN:
			g := p.parseGlobalDecl()
			if g != nil {
				p.prog.Decls = append(p.prog.Decls, g)
				p.prog.Globals = append(p.prog.Globals, g)
			}
		default:
			p.errorf(p.cur().Pos, "expected declaration, found %q", p.cur().Lit)
			before := p.pos
			p.synchronize()
			if p.pos == before {
				// synchronize stops before '}' for statement recovery; at
				// top level that token can never start a declaration, so
				// skip it or we would loop forever.
				p.next()
			}
		}
	}
}

func (p *Parser) parseGlobalDecl() *ast.GlobalDecl {
	kw := p.next()
	nameTok := p.expect(token.IDENT)
	g := &ast.GlobalDecl{
		KwPos: kw.Pos,
		Kw:    kw.Kind,
		Name:  &ast.Ident{Name: nameTok.Lit, NamePos: nameTok.Pos},
	}
	switch kw.Kind {
	case token.VAR, token.SHARED:
		g.Type = ast.Type{Kind: ast.TypeInt}
		if _, ok := p.accept(token.LBRACK); ok {
			sz := p.expect(token.INT)
			p.expect(token.RBRACK)
			g.Type = ast.Type{Kind: ast.TypeArray, Len: atoi(sz.Lit)}
		}
		if _, ok := p.accept(token.ASSIGN); ok {
			g.Init = p.parseExpr()
		}
	case token.SEM:
		g.Type = ast.Type{Kind: ast.TypeSem}
		if _, ok := p.accept(token.ASSIGN); ok {
			g.Init = p.parseExpr()
		}
	case token.CHAN:
		g.Type = ast.Type{Kind: ast.TypeChan}
		if _, ok := p.accept(token.LBRACK); ok {
			sz := p.expect(token.INT)
			p.expect(token.RBRACK)
			g.Type.Len = atoi(sz.Lit)
		}
	}
	semi := p.expect(token.SEMICOLON)
	g.EndPos = semi.Pos + 1
	return g
}

func atoi(s string) int {
	n := 0
	for i := 0; i < len(s); i++ {
		n = n*10 + int(s[i]-'0')
	}
	return n
}

func (p *Parser) parseType() ast.Type {
	switch p.cur().Kind {
	case token.INTTYPE:
		p.next()
		if _, ok := p.accept(token.LBRACK); ok {
			sz := p.expect(token.INT)
			p.expect(token.RBRACK)
			return ast.Type{Kind: ast.TypeArray, Len: atoi(sz.Lit)}
		}
		return ast.Type{Kind: ast.TypeInt}
	case token.BOOLTYPE:
		p.next()
		return ast.Type{Kind: ast.TypeBool}
	}
	p.errorf(p.cur().Pos, "expected type, found %q", p.cur().Lit)
	p.next()
	return ast.Type{Kind: ast.TypeInvalid}
}

func (p *Parser) parseFuncDecl() *ast.FuncDecl {
	kw := p.expect(token.FUNC)
	nameTok := p.expect(token.IDENT)
	f := &ast.FuncDecl{
		FuncPos: kw.Pos,
		Name:    &ast.Ident{Name: nameTok.Lit, NamePos: nameTok.Pos},
		Result:  ast.Type{Kind: ast.TypeVoid},
	}
	p.expect(token.LPAREN)
	for !p.at(token.RPAREN) && !p.at(token.EOF) {
		pn := p.expect(token.IDENT)
		pt := p.parseType()
		f.Params = append(f.Params, ast.Param{
			Name: &ast.Ident{Name: pn.Lit, NamePos: pn.Pos},
			Type: pt,
		})
		if _, ok := p.accept(token.COMMA); !ok {
			break
		}
	}
	p.expect(token.RPAREN)
	if p.at(token.INTTYPE) || p.at(token.BOOLTYPE) {
		f.Result = p.parseType()
	}
	f.Body = p.parseBlock()
	return f
}

// ---------------------------------------------------------------- statements

func (p *Parser) parseBlock() *ast.BlockStmt {
	lb := p.expect(token.LBRACE)
	blk := &ast.BlockStmt{Lbrace: lb.Pos}
	for !p.at(token.RBRACE) && !p.at(token.EOF) {
		before := p.pos
		s := p.parseStmt()
		if s != nil {
			blk.List = append(blk.List, s)
		}
		if p.pos == before { // no progress: skip a token to avoid livelock
			p.next()
		}
	}
	rb := p.expect(token.RBRACE)
	blk.Rbrace = rb.Pos
	return blk
}

func (p *Parser) parseStmt() ast.Stmt {
	switch p.cur().Kind {
	case token.VAR:
		return p.parseVarDeclStmt()
	case token.IF:
		return p.parseIfStmt()
	case token.WHILE:
		return p.parseWhileStmt()
	case token.FOR:
		return p.parseForStmt()
	case token.RETURN:
		return p.parseReturnStmt()
	case token.BREAK:
		kw := p.next()
		semi := p.expect(token.SEMICOLON)
		s := &ast.BreakStmt{KwPos: kw.Pos, EndPos: semi.Pos + 1}
		p.assignID(s)
		return s
	case token.CONTINUE:
		kw := p.next()
		semi := p.expect(token.SEMICOLON)
		s := &ast.ContinueStmt{KwPos: kw.Pos, EndPos: semi.Pos + 1}
		p.assignID(s)
		return s
	case token.SPAWN:
		return p.parseSpawnStmt()
	case token.ACQUIRE, token.RELEASE:
		return p.parseSemStmt()
	case token.SEND:
		return p.parseSendStmt()
	case token.PRINT:
		return p.parsePrintStmt()
	case token.LBRACE:
		return p.parseBlock()
	case token.IDENT:
		return p.parseAssignOrCall()
	case token.SEMICOLON:
		p.next() // empty statement
		return nil
	}
	p.errorf(p.cur().Pos, "expected statement, found %q", p.cur().Lit)
	p.synchronize()
	return nil
}

func (p *Parser) parseVarDeclStmt() ast.Stmt {
	kw := p.expect(token.VAR)
	nameTok := p.expect(token.IDENT)
	s := &ast.VarDeclStmt{
		VarPos: kw.Pos,
		Name:   &ast.Ident{Name: nameTok.Lit, NamePos: nameTok.Pos},
		Type:   ast.Type{Kind: ast.TypeInt},
	}
	if _, ok := p.accept(token.LBRACK); ok {
		sz := p.expect(token.INT)
		p.expect(token.RBRACK)
		s.Type = ast.Type{Kind: ast.TypeArray, Len: atoi(sz.Lit)}
	}
	if _, ok := p.accept(token.ASSIGN); ok {
		s.Init = p.parseExpr()
	}
	semi := p.expect(token.SEMICOLON)
	s.EndPos = semi.Pos + 1
	p.assignID(s)
	return s
}

func (p *Parser) parseIfStmt() ast.Stmt {
	kw := p.expect(token.IF)
	s := &ast.IfStmt{IfPos: kw.Pos}
	p.assignID(s) // predicate gets the ID before the branches
	p.expect(token.LPAREN)
	s.Cond = p.parseExpr()
	p.expect(token.RPAREN)
	s.Then = p.parseBlock()
	if _, ok := p.accept(token.ELSE); ok {
		if p.at(token.IF) {
			s.Else = p.parseIfStmt()
		} else {
			s.Else = p.parseBlock()
		}
	}
	s.EndPos = p.cur().Pos
	return s
}

func (p *Parser) parseWhileStmt() ast.Stmt {
	kw := p.expect(token.WHILE)
	s := &ast.WhileStmt{WhilePos: kw.Pos}
	p.assignID(s)
	p.expect(token.LPAREN)
	s.Cond = p.parseExpr()
	p.expect(token.RPAREN)
	s.Body = p.parseBlock()
	s.EndPos = p.cur().Pos
	return s
}

func (p *Parser) parseForStmt() ast.Stmt {
	kw := p.expect(token.FOR)
	s := &ast.ForStmt{ForPos: kw.Pos}
	p.assignID(s)
	p.expect(token.LPAREN)
	if !p.at(token.SEMICOLON) {
		if p.at(token.VAR) {
			s.Init = p.parseVarDeclStmt() // consumes its own ';'
		} else {
			s.Init = p.parseSimpleAssign()
			p.expect(token.SEMICOLON)
		}
	} else {
		p.expect(token.SEMICOLON)
	}
	if !p.at(token.SEMICOLON) {
		s.Cond = p.parseExpr()
	}
	p.expect(token.SEMICOLON)
	if !p.at(token.RPAREN) {
		s.Post = p.parseSimpleAssign()
	}
	p.expect(token.RPAREN)
	s.Body = p.parseBlock()
	s.EndPos = p.cur().Pos
	return s
}

// parseSimpleAssign parses `x = e` or `a[i] = e` without the trailing ';'.
func (p *Parser) parseSimpleAssign() ast.Stmt {
	nameTok := p.expect(token.IDENT)
	s := &ast.AssignStmt{LHS: &ast.Ident{Name: nameTok.Lit, NamePos: nameTok.Pos}}
	if _, ok := p.accept(token.LBRACK); ok {
		s.Index = p.parseExpr()
		p.expect(token.RBRACK)
	}
	p.expect(token.ASSIGN)
	s.RHS = p.parseExpr()
	s.EndPos = p.cur().Pos
	p.assignID(s)
	return s
}

func (p *Parser) parseReturnStmt() ast.Stmt {
	kw := p.expect(token.RETURN)
	s := &ast.ReturnStmt{RetPos: kw.Pos}
	if !p.at(token.SEMICOLON) {
		s.Result = p.parseExpr()
	}
	semi := p.expect(token.SEMICOLON)
	s.EndPos = semi.Pos + 1
	p.assignID(s)
	return s
}

func (p *Parser) parseSpawnStmt() ast.Stmt {
	kw := p.expect(token.SPAWN)
	nameTok := p.expect(token.IDENT)
	call := p.parseCallAfterName(&ast.Ident{Name: nameTok.Lit, NamePos: nameTok.Pos})
	semi := p.expect(token.SEMICOLON)
	s := &ast.SpawnStmt{SpawnPos: kw.Pos, Call: call, EndPos: semi.Pos + 1}
	p.assignID(s)
	return s
}

func (p *Parser) parseSemStmt() ast.Stmt {
	op := p.next() // P or V
	p.expect(token.LPAREN)
	nameTok := p.expect(token.IDENT)
	p.expect(token.RPAREN)
	semi := p.expect(token.SEMICOLON)
	s := &ast.SemStmt{
		Op:     op.Kind,
		OpPos:  op.Pos,
		Sem:    &ast.Ident{Name: nameTok.Lit, NamePos: nameTok.Pos},
		EndPos: semi.Pos + 1,
	}
	p.assignID(s)
	return s
}

func (p *Parser) parseSendStmt() ast.Stmt {
	kw := p.expect(token.SEND)
	p.expect(token.LPAREN)
	nameTok := p.expect(token.IDENT)
	p.expect(token.COMMA)
	val := p.parseExpr()
	p.expect(token.RPAREN)
	semi := p.expect(token.SEMICOLON)
	s := &ast.SendStmt{
		SendPos: kw.Pos,
		Chan:    &ast.Ident{Name: nameTok.Lit, NamePos: nameTok.Pos},
		Value:   val,
		EndPos:  semi.Pos + 1,
	}
	p.assignID(s)
	return s
}

func (p *Parser) parsePrintStmt() ast.Stmt {
	kw := p.expect(token.PRINT)
	p.expect(token.LPAREN)
	s := &ast.PrintStmt{PrintPos: kw.Pos}
	for !p.at(token.RPAREN) && !p.at(token.EOF) {
		s.Args = append(s.Args, p.parseExpr())
		if _, ok := p.accept(token.COMMA); !ok {
			break
		}
	}
	p.expect(token.RPAREN)
	semi := p.expect(token.SEMICOLON)
	s.EndPos = semi.Pos + 1
	p.assignID(s)
	return s
}

func (p *Parser) parseAssignOrCall() ast.Stmt {
	nameTok := p.expect(token.IDENT)
	id := &ast.Ident{Name: nameTok.Lit, NamePos: nameTok.Pos}
	if p.at(token.LPAREN) {
		call := p.parseCallAfterName(id)
		semi := p.expect(token.SEMICOLON)
		s := &ast.ExprStmt{X: call, EndPos: semi.Pos + 1}
		p.assignID(s)
		return s
	}
	s := &ast.AssignStmt{LHS: id}
	if _, ok := p.accept(token.LBRACK); ok {
		s.Index = p.parseExpr()
		p.expect(token.RBRACK)
	}
	p.expect(token.ASSIGN)
	s.RHS = p.parseExpr()
	semi := p.expect(token.SEMICOLON)
	s.EndPos = semi.Pos + 1
	p.assignID(s)
	return s
}

func (p *Parser) parseCallAfterName(fun *ast.Ident) *ast.CallExpr {
	lp := p.expect(token.LPAREN)
	call := &ast.CallExpr{Fun: fun, Lparen: lp.Pos}
	for !p.at(token.RPAREN) && !p.at(token.EOF) {
		call.Args = append(call.Args, p.parseExpr())
		if _, ok := p.accept(token.COMMA); !ok {
			break
		}
	}
	rp := p.expect(token.RPAREN)
	call.Rparen = rp.Pos
	return call
}

// ---------------------------------------------------------------- expressions

func (p *Parser) parseExpr() ast.Expr { return p.parseBinary(1) }

func (p *Parser) parseBinary(minPrec int) ast.Expr {
	x := p.parseUnary()
	for {
		op := p.cur()
		prec := op.Kind.Precedence()
		if prec < minPrec {
			return x
		}
		p.next()
		y := p.parseBinary(prec + 1)
		x = &ast.BinaryExpr{Op: op.Kind, OpPos: op.Pos, X: x, Y: y}
	}
}

func (p *Parser) parseUnary() ast.Expr {
	switch p.cur().Kind {
	case token.SUB, token.NOT:
		op := p.next()
		x := p.parseUnary()
		return &ast.UnaryExpr{Op: op.Kind, OpPos: op.Pos, X: x}
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() ast.Expr {
	switch p.cur().Kind {
	case token.INT:
		t := p.next()
		return &ast.IntLit{Value: int64(atoi(t.Lit)), LitPos: t.Pos, Text: t.Lit}
	case token.TRUE:
		t := p.next()
		return &ast.BoolLit{Value: true, LitPos: t.Pos}
	case token.FALSE:
		t := p.next()
		return &ast.BoolLit{Value: false, LitPos: t.Pos}
	case token.STRING:
		t := p.next()
		return &ast.StringLit{Value: t.Lit, LitPos: t.Pos}
	case token.RECV:
		kw := p.next()
		p.expect(token.LPAREN)
		nameTok := p.expect(token.IDENT)
		rp := p.expect(token.RPAREN)
		return &ast.RecvExpr{
			RecvPos: kw.Pos,
			Chan:    &ast.Ident{Name: nameTok.Lit, NamePos: nameTok.Pos},
			Rparen:  rp.Pos,
		}
	case token.LPAREN:
		lp := p.next()
		x := p.parseExpr()
		rp := p.expect(token.RPAREN)
		return &ast.ParenExpr{Lparen: lp.Pos, X: x, Rparen: rp.Pos}
	case token.IDENT:
		nameTok := p.next()
		id := &ast.Ident{Name: nameTok.Lit, NamePos: nameTok.Pos}
		switch p.cur().Kind {
		case token.LPAREN:
			return p.parseCallAfterName(id)
		case token.LBRACK:
			p.next()
			idx := p.parseExpr()
			rb := p.expect(token.RBRACK)
			return &ast.IndexExpr{X: id, Lbrack: nameTok.Pos, Index: idx, Rbrack: rb.Pos}
		}
		return id
	}
	p.errorf(p.cur().Pos, "expected expression, found %q", p.cur().Lit)
	t := p.next()
	return &ast.IntLit{Value: 0, LitPos: t.Pos, Text: "0"}
}
