package parser

import (
	"strings"
	"testing"

	"ppd/internal/ast"
	"ppd/internal/source"
)

func parseOK(t *testing.T, src string) *ast.Program {
	t.Helper()
	errs := &source.ErrorList{}
	prog := ParseString("test.mpl", src, errs)
	if errs.ErrCount() != 0 {
		t.Fatalf("unexpected parse errors:\n%v", errs.Err())
	}
	return prog
}

func TestParseGlobals(t *testing.T) {
	prog := parseOK(t, `
var x = 10;
shared sv;
shared arr[8];
sem mutex = 1;
chan c;
chan buf[4];
func main() {}
`)
	if len(prog.Globals) != 6 {
		t.Fatalf("globals = %d, want 6", len(prog.Globals))
	}
	g := prog.Globals
	if g[2].Type.Kind != ast.TypeArray || g[2].Type.Len != 8 {
		t.Errorf("arr type = %+v", g[2].Type)
	}
	if g[5].Type.Kind != ast.TypeChan || g[5].Type.Len != 4 {
		t.Errorf("buf type = %+v", g[5].Type)
	}
	if g[3].Init == nil {
		t.Error("sem mutex missing init")
	}
}

func TestParseFuncAndStmts(t *testing.T) {
	prog := parseOK(t, `
func add(a int, b int) int {
	return a + b;
}
func main() {
	var x = add(1, 2);
	var i;
	for (i = 0; i < 10; i = i + 1) {
		x = x * 2;
		if (x > 100) { break; } else { continue; }
	}
	while (x > 0) { x = x - 1; }
	print("x=", x);
}
`)
	if len(prog.Funcs) != 2 {
		t.Fatalf("funcs = %d, want 2", len(prog.Funcs))
	}
	add := prog.FuncByName("add")
	if add == nil || len(add.Params) != 2 || add.Result.Kind != ast.TypeInt {
		t.Fatalf("add decl wrong: %+v", add)
	}
	if prog.NumStmts == 0 {
		t.Fatal("no statements numbered")
	}
	// Statement IDs must be dense 1..NumStmts and all registered.
	for id := ast.StmtID(1); id <= ast.StmtID(prog.NumStmts); id++ {
		if prog.StmtByID(id) == nil {
			t.Errorf("StmtByID(%d) = nil", id)
		}
	}
}

func TestParseParallelConstructs(t *testing.T) {
	prog := parseOK(t, `
sem s = 0;
chan ch;
func worker(id int) {
	P(s);
	send(ch, id * 2);
	V(s);
}
func main() {
	spawn worker(1);
	spawn worker(2);
	var v = recv(ch);
	print(v);
}
`)
	worker := prog.FuncByName("worker")
	stmts := ast.Stmts(worker.Body)
	if len(stmts) != 3 {
		t.Fatalf("worker stmts = %d, want 3", len(stmts))
	}
	if _, ok := stmts[0].(*ast.SemStmt); !ok {
		t.Errorf("stmt 0 = %T, want SemStmt", stmts[0])
	}
	if _, ok := stmts[1].(*ast.SendStmt); !ok {
		t.Errorf("stmt 1 = %T, want SendStmt", stmts[1])
	}
	mainFn := prog.FuncByName("main")
	mstmts := ast.Stmts(mainFn.Body)
	if _, ok := mstmts[0].(*ast.SpawnStmt); !ok {
		t.Errorf("main stmt 0 = %T, want SpawnStmt", mstmts[0])
	}
	vd, ok := mstmts[2].(*ast.VarDeclStmt)
	if !ok {
		t.Fatalf("main stmt 2 = %T, want VarDeclStmt", mstmts[2])
	}
	if _, ok := vd.Init.(*ast.RecvExpr); !ok {
		t.Errorf("init = %T, want RecvExpr", vd.Init)
	}
}

func TestParsePrecedence(t *testing.T) {
	prog := parseOK(t, `func main() { var x = 1 + 2 * 3 - 4 / 2; var b = 1 < 2 && 3 == 3 || false; }`)
	stmts := ast.Stmts(prog.FuncByName("main").Body)
	x := stmts[0].(*ast.VarDeclStmt)
	if got, want := ast.ExprString(x.Init), "1+2*3-4/2"; got != want {
		t.Errorf("expr = %s, want %s", got, want)
	}
	// Structure check: top of x's init must be '-'.
	bin := x.Init.(*ast.BinaryExpr)
	if bin.Op.String() != "-" {
		t.Errorf("top op = %s, want -", bin.Op)
	}
	b := stmts[1].(*ast.VarDeclStmt)
	top := b.Init.(*ast.BinaryExpr)
	if top.Op.String() != "||" {
		t.Errorf("bool top op = %s, want ||", top.Op)
	}
}

func TestParseNestedIfElseChain(t *testing.T) {
	prog := parseOK(t, `
func classify(v int) int {
	if (v > 10) { return 2; }
	else if (v > 0) { return 1; }
	else { return 0; }
}
func main() { var x = classify(5); }
`)
	f := prog.FuncByName("classify")
	ifs := f.Body.List[0].(*ast.IfStmt)
	if _, ok := ifs.Else.(*ast.IfStmt); !ok {
		t.Errorf("else = %T, want *IfStmt", ifs.Else)
	}
}

func TestParseArrayOps(t *testing.T) {
	prog := parseOK(t, `
shared a[4];
func main() {
	a[0] = 1;
	a[a[0]] = a[0] + 2;
}
`)
	stmts := ast.Stmts(prog.FuncByName("main").Body)
	s1 := stmts[1].(*ast.AssignStmt)
	if s1.Index == nil {
		t.Fatal("missing index on array assign")
	}
	if got := ast.ExprString(s1.RHS); got != "a[0]+2" {
		t.Errorf("rhs = %s", got)
	}
}

func TestParseErrorsRecovered(t *testing.T) {
	errs := &source.ErrorList{}
	prog := ParseString("bad.mpl", `
func main() {
	x = ;
	y = 2;
}
`, errs)
	if errs.ErrCount() == 0 {
		t.Fatal("expected parse errors")
	}
	// Recovery: the later good statement must still be parsed.
	found := false
	for _, s := range ast.Stmts(prog.FuncByName("main").Body) {
		if a, ok := s.(*ast.AssignStmt); ok && a.LHS.Name == "y" {
			found = true
		}
	}
	if !found {
		t.Error("parser did not recover to parse y = 2")
	}
}

// TestParseStrayTopLevelBrace is a regression test for an infinite loop:
// synchronize() stops before '}' (statement recovery), but at top level
// that token never starts a declaration, so parseProgram must skip it.
func TestParseStrayTopLevelBrace(t *testing.T) {
	for _, src := range []string{
		`}`,
		`} } }`,
		"func main() { x = ; } }\nfunc tail() { }",
	} {
		errs := &source.ErrorList{}
		ParseString("stray.mpl", src, errs)
		if errs.ErrCount() == 0 {
			t.Errorf("%q: expected parse errors", src)
		}
	}
}

func TestParseErrorMessages(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{`func main( { }`, "expected"},
		{`var;`, "expected"},
		{`func main() { if x { } }`, "expected"},
		{`garbage`, "expected declaration"},
	}
	for _, c := range cases {
		errs := &source.ErrorList{}
		ParseString("e.mpl", c.src, errs)
		if errs.ErrCount() == 0 {
			t.Errorf("%q: no error", c.src)
			continue
		}
		if !strings.Contains(errs.Err().Error(), c.wantSub) {
			t.Errorf("%q: error %q does not contain %q", c.src, errs.Err(), c.wantSub)
		}
	}
}

func TestStmtIDsAreSourceOrdered(t *testing.T) {
	prog := parseOK(t, `
func main() {
	var a = 1;
	if (a > 0) {
		a = 2;
	}
	a = 3;
}
`)
	stmts := ast.Stmts(prog.FuncByName("main").Body)
	for i := 1; i < len(stmts); i++ {
		if stmts[i].ID() <= stmts[i-1].ID() {
			t.Errorf("stmt %d has ID %d, not after %d", i, stmts[i].ID(), stmts[i-1].ID())
		}
	}
}

func TestParseEmptyStatement(t *testing.T) {
	prog := parseOK(t, `func main() { ;; var x = 1; ; }`)
	stmts := ast.Stmts(prog.FuncByName("main").Body)
	if len(stmts) != 1 {
		t.Errorf("stmts = %d, want 1", len(stmts))
	}
}

func TestStmtStringRendering(t *testing.T) {
	prog := parseOK(t, `
sem s; chan c;
func f(x int) int { return x; }
func main() {
	var d = f(1);
	P(s);
	V(s);
	send(c, d+1);
	spawn f(2);
	print("v", d);
}
`)
	stmts := ast.Stmts(prog.FuncByName("main").Body)
	want := []string{"var d = f(1)", "P(s)", "V(s)", "send(c,d+1)", "spawn f(2)", `print("v",d)`}
	for i, w := range want {
		if got := ast.StmtString(stmts[i]); got != w {
			t.Errorf("stmt %d = %q, want %q", i, got, w)
		}
	}
}
