// Package pdg builds the paper's static graphs (§4.1, §5.5):
//
//   - the static program dependence graph per function — control-dependence
//     edges (Ferrante/Ottenstein/Warren via the CFG's postdominator tree)
//     plus data-dependence edges (def-use chains from reaching definitions,
//     widened with interprocedural call effects);
//   - the simplified static graph — the subset containing only ENTRY, EXIT,
//     branch predicates, synchronization operations, and subroutine calls,
//     connected by flow edges; and
//   - the synchronization units of Definition 5.1 — for each non-branching
//     node, the simplified-graph edges reachable without passing through
//     another non-branching node — together with each unit's statically
//     computed shared-variable read/write sets, which place and size the
//     extra shared prelogs of §5.5.
package pdg

import (
	"fmt"
	"sort"
	"strings"

	"ppd/internal/ast"
	"ppd/internal/bitset"
	"ppd/internal/cfg"
	"ppd/internal/dataflow"
	"ppd/internal/interproc"
	"ppd/internal/sched"
	"ppd/internal/sem"
)

// DataDep is one static data-dependence edge: the definition of Var at From
// may reach the use at To. From may be the ENTRY node (value flows in from
// the caller or from pre-existing global state).
type DataDep struct {
	From cfg.NodeID
	To   cfg.NodeID
	Var  int // space index
}

// SimpleNodeKind classifies nodes kept in the simplified static graph.
type SimpleNodeKind int

// Simplified-graph node kinds.
const (
	SimpleEntry SimpleNodeKind = iota
	SimpleExit
	SimpleBranch // if/while/for predicate — the only "branching" kind
	SimpleSync   // P, V, send, recv, spawn
	SimpleCall   // statement containing a subroutine call
)

func (k SimpleNodeKind) String() string {
	switch k {
	case SimpleEntry:
		return "ENTRY"
	case SimpleExit:
		return "EXIT"
	case SimpleBranch:
		return "branch"
	case SimpleSync:
		return "sync"
	case SimpleCall:
		return "call"
	}
	return "?"
}

// Branching reports whether the kind is a branching node. Everything else
// (ENTRY, EXIT, sync, call) is non-branching, per Fig 5.3.
func (k SimpleNodeKind) Branching() bool { return k == SimpleBranch }

// SimpleEdge is one flow edge of the simplified static graph. Interior
// lists the collapsed ordinary statements (CFG nodes) the edge traverses,
// in execution order.
type SimpleEdge struct {
	ID       int
	From, To cfg.NodeID
	Interior []cfg.NodeID

	// Reads/Writes are the shared variables (GlobalIDs) possibly read or
	// written while traversing this edge, including the target predicate's
	// reads when To is branching.
	Reads  *bitset.Set
	Writes *bitset.Set
}

// SyncUnit is Definition 5.1's synchronization unit: the simplified-graph
// edges reachable from Start without passing through another non-branching
// node, with the union of their shared read/write sets.
type SyncUnit struct {
	Start cfg.NodeID // a non-branching simplified node
	Edges []int      // edge IDs
	Reads *bitset.Set
	Write *bitset.Set

	// CrossReads restricts Reads to variables some *other* process may
	// write — the only values the §5.5 shared prelog must re-supply for
	// reproducible emulation. Reads a process's own re-execution reproduces
	// need no log entry.
	CrossReads *bitset.Set
}

// Simplified is the simplified static graph of one function.
type Simplified struct {
	Kinds map[cfg.NodeID]SimpleNodeKind // kept nodes only
	Edges []*SimpleEdge
	Out   map[cfg.NodeID][]int // outgoing edge IDs per kept node
	Units []*SyncUnit          // in Start order (entry first, then StmtID)
}

// FuncPDG bundles every static-analysis artifact of one function.
type FuncPDG struct {
	Fn       *sem.FuncInfo
	CFG      *cfg.Graph
	Space    *dataflow.Space
	UseDefs  map[ast.StmtID]*dataflow.UseDef // widened with call effects
	Reaching *dataflow.Reaching
	DataDeps []DataDep
	Simple   *Simplified

	// dataDepsTo indexes DataDeps by use node for flowback queries.
	dataDepsTo map[cfg.NodeID][]DataDep
}

// Program is the static PDG of the whole program.
type Program struct {
	Info       *sem.Info
	Inter      *interproc.Result
	Funcs      map[string]*FuncPDG
	SharedMask *bitset.Set // GlobalIDs that are shared variables

	// WrittenByOthers maps each function to the globals that processes
	// other than the one executing it may write: the union of every spawn
	// target's DEFINED set (spawned code can run in many instances), plus
	// main's DEFINED set for functions reachable from a spawn target.
	WrittenByOthers map[string]*bitset.Set
}

// Build runs the whole static-analysis pipeline.
func Build(info *sem.Info) *Program {
	return BuildWithFilter(info, true)
}

// BuildWithFilter optionally disables the cross-write restriction of the
// shared prelogs (see SyncUnit.CrossReads). Disabling it yields a literal
// reading of §5.5 — every shared read in a unit is logged — and exists only
// for the ablation experiment that quantifies what the refinement saves.
func BuildWithFilter(info *sem.Info, crossWriteFilter bool) *Program {
	return BuildFromInter(interproc.Analyze(info), crossWriteFilter, nil)
}

// BuildFromInter builds the static PDG from a precomputed interprocedural
// result, fanning the per-function construction (CFG, reaching definitions,
// def-use chains, simplified graph, sync units) out across pool. A nil pool
// runs sequentially. After the sequential MOD/REF fixpoint and the
// cross-write set computation, each function's build reads only immutable
// shared state, so the parallel merge (FuncList index order) yields a
// Program identical to the sequential one.
func BuildFromInter(inter *interproc.Result, crossWriteFilter bool, pool *sched.Pool) *Program {
	info := inter.Info
	p := &Program{
		Info:       info,
		Inter:      inter,
		Funcs:      make(map[string]*FuncPDG),
		SharedMask: bitset.New(info.NumGlobals()),
	}
	for _, id := range info.SharedIDs() {
		p.SharedMask.Add(id)
	}
	if crossWriteFilter {
		p.computeWrittenByOthers()
	} else {
		p.WrittenByOthers = make(map[string]*bitset.Set)
		for _, fn := range info.FuncList {
			p.WrittenByOthers[fn.Name()] = p.SharedMask.Clone()
		}
	}
	if pool == nil {
		for _, fn := range info.FuncList {
			p.Funcs[fn.Name()] = p.buildFunc(fn)
		}
	} else {
		funcs := sched.Map(pool, len(info.FuncList), func(i int) *FuncPDG {
			return p.buildFunc(info.FuncList[i])
		})
		for i, fn := range info.FuncList {
			p.Funcs[fn.Name()] = funcs[i]
		}
	}
	return p
}

// computeWrittenByOthers derives, per function, the shared globals some
// concurrently-running process may write (see Program.WrittenByOthers).
func (p *Program) computeWrittenByOthers() {
	p.WrittenByOthers = make(map[string]*bitset.Set)
	targets := p.Inter.SpawnTargets()
	crossBase := bitset.New(p.Info.NumGlobals())
	for t := range targets {
		if s, ok := p.Inter.Summaries[t]; ok {
			crossBase.UnionWith(s.Defined)
		}
	}
	// Functions reachable from a spawn target through plain calls.
	reach := make(map[string]bool)
	var visit func(string)
	visit = func(fn string) {
		if reach[fn] {
			return
		}
		reach[fn] = true
		if s, ok := p.Inter.Summaries[fn]; ok {
			for _, callee := range s.Callees {
				if !s.SpawnedOnly[callee] {
					visit(callee)
				}
			}
		}
	}
	for t := range targets {
		visit(t)
	}
	var mainDefined *bitset.Set
	if m, ok := p.Inter.Summaries["main"]; ok {
		mainDefined = m.Defined
	}
	for _, fn := range p.Info.FuncList {
		w := crossBase.Clone()
		if reach[fn.Name()] && mainDefined != nil {
			w.UnionWith(mainDefined)
		}
		w.IntersectWith(p.SharedMask)
		p.WrittenByOthers[fn.Name()] = w
	}
}

func (p *Program) buildFunc(fn *sem.FuncInfo) *FuncPDG {
	space := p.Inter.Spaces[fn.Name()]
	g := cfg.Build(fn)

	// Widen a private copy of the UseDefs with interprocedural effects.
	direct := p.Inter.UseDefs[fn.Name()]
	uds := make(map[ast.StmtID]*dataflow.UseDef, len(direct))
	for id, ud := range direct {
		uds[id] = &dataflow.UseDef{
			Use:   ud.Use.Clone(),
			Def:   ud.Def.Clone(),
			Kill:  ud.Kill.Clone(),
			Calls: ud.Calls,
		}
	}
	dataflow.ApplyCallEffects(space, uds, p.Inter.Effects())

	reach := dataflow.ComputeReaching(space, g, uds)

	f := &FuncPDG{
		Fn:         fn,
		CFG:        g,
		Space:      space,
		UseDefs:    uds,
		Reaching:   reach,
		dataDepsTo: make(map[cfg.NodeID][]DataDep),
	}
	for _, du := range reach.DefUseChains() {
		dd := DataDep{From: du.Def.Node, To: du.Use, Var: du.Var}
		f.DataDeps = append(f.DataDeps, dd)
		f.dataDepsTo[du.Use] = append(f.dataDepsTo[du.Use], dd)
	}
	f.Simple = p.buildSimplified(f, direct)
	return f
}

// DataDepsTo returns the static data dependences feeding node n.
func (f *FuncPDG) DataDepsTo(n cfg.NodeID) []DataDep { return f.dataDepsTo[n] }

// CtrlDepsOf returns the branch nodes n is control dependent on.
func (f *FuncPDG) CtrlDepsOf(n cfg.NodeID) []cfg.NodeID { return f.CFG.CtrlDeps[n] }

// classify determines whether a CFG node is kept in the simplified graph
// and with what kind. Ordinary assignments and prints collapse into edges.
func classify(n *cfg.Node) (SimpleNodeKind, bool) {
	if n.ID == cfg.EntryNode {
		return SimpleEntry, true
	}
	if n.ID == cfg.ExitNode {
		return SimpleExit, true
	}
	s := n.Stmt
	if s == nil {
		return 0, false
	}
	// Sync operations first: they are unit boundaries even when they also
	// contain calls (a recv in a call argument, say).
	sync := false
	call := false
	ast.Inspect(s, func(x ast.Node) bool {
		switch x.(type) {
		case *ast.BlockStmt:
			// Do not descend into nested statements: classification is per
			// CFG node, and nested statements have their own nodes.
			return false
		case *ast.IfStmt, *ast.WhileStmt, *ast.ForStmt:
			if x != ast.Node(s) {
				return false
			}
			// For the node's own predicate statement, only the condition
			// expression belongs to it; children statements have own nodes.
		case *ast.SemStmt, *ast.SendStmt, *ast.SpawnStmt, *ast.RecvExpr:
			sync = true
		case *ast.CallExpr:
			call = true
		}
		return true
	})
	// Restrict the inspection to this statement's own expressions: for
	// if/while/for we must not pick up calls in the body (bodies are other
	// CFG nodes). Inspect above descends into Then/Else/Body, so redo
	// precisely for predicates.
	switch st := s.(type) {
	case *ast.IfStmt:
		sync, call = exprSyncCall(st.Cond)
	case *ast.WhileStmt:
		sync, call = exprSyncCall(st.Cond)
	case *ast.ForStmt:
		if st.Cond != nil {
			sync, call = exprSyncCall(st.Cond)
		} else {
			sync, call = false, false
		}
	}
	if _, isBranch := s.(*ast.IfStmt); isBranch {
		if sync || call {
			return SimpleCall, true // degenerate: predicate with a call
		}
		return SimpleBranch, true
	}
	switch s.(type) {
	case *ast.WhileStmt, *ast.ForStmt:
		if sync || call {
			return SimpleCall, true
		}
		return SimpleBranch, true
	}
	if sync {
		return SimpleSync, true
	}
	if call {
		return SimpleCall, true
	}
	return 0, false
}

func exprSyncCall(e ast.Expr) (sync, call bool) {
	ast.Inspect(e, func(x ast.Node) bool {
		switch x.(type) {
		case *ast.RecvExpr:
			sync = true
		case *ast.CallExpr:
			call = true
		}
		return true
	})
	return sync, call
}

func (p *Program) buildSimplified(f *FuncPDG, directUDs map[ast.StmtID]*dataflow.UseDef) *Simplified {
	g := f.CFG
	s := &Simplified{
		Kinds: make(map[cfg.NodeID]SimpleNodeKind),
		Out:   make(map[cfg.NodeID][]int),
	}
	for _, n := range g.Nodes {
		if kind, keep := classify(n); keep {
			s.Kinds[n.ID] = kind
		}
	}

	sharedUse := func(id ast.StmtID) *bitset.Set {
		out := bitset.New(p.Info.NumGlobals())
		if ud, ok := directUDs[id]; ok {
			got := f.Space.GlobalsOnly(ud.Use)
			got.IntersectWith(p.SharedMask)
			out.UnionWith(got)
		}
		return out
	}
	sharedDef := func(id ast.StmtID) *bitset.Set {
		out := bitset.New(p.Info.NumGlobals())
		if ud, ok := directUDs[id]; ok {
			got := f.Space.GlobalsOnly(ud.Def)
			got.IntersectWith(p.SharedMask)
			out.UnionWith(got)
		}
		return out
	}

	// Collapse: from each kept node, follow each CFG successor through
	// non-kept (necessarily single-successor) nodes until the next kept
	// node, accumulating interior statements and their shared reads/writes.
	for from := range s.Kinds {
		for _, succ := range g.Nodes[from].Succs {
			e := &SimpleEdge{
				ID:     len(s.Edges),
				From:   from,
				Reads:  bitset.New(p.Info.NumGlobals()),
				Writes: bitset.New(p.Info.NumGlobals()),
			}
			cur := succ
			guard := 0
			for {
				if _, kept := s.Kinds[cur]; kept {
					break
				}
				n := g.Nodes[cur]
				e.Interior = append(e.Interior, cur)
				if n.Stmt != nil {
					e.Reads.UnionWith(sharedUse(n.Stmt.ID()))
					e.Writes.UnionWith(sharedDef(n.Stmt.ID()))
				}
				if len(n.Succs) == 0 {
					// Dead end (unreachable fragment); drop the edge.
					cur = -1
					break
				}
				cur = n.Succs[0]
				guard++
				if guard > len(g.Nodes)+1 {
					cur = -1 // defensive: malformed interior cycle
					break
				}
			}
			if cur == -1 {
				continue
			}
			e.To = cur
			// A branching target's predicate reads occur on entry to the
			// node, i.e. while still inside this edge's unit.
			if kind := s.Kinds[cur]; kind.Branching() {
				if st := g.Nodes[cur].Stmt; st != nil {
					e.Reads.UnionWith(sharedUse(st.ID()))
				}
			}
			s.Edges = append(s.Edges, e)
			s.Out[from] = append(s.Out[from], e.ID)
		}
	}

	s.Units = p.buildUnits(f, s)
	return s
}

// buildUnits computes Definition 5.1 sync units for every non-branching
// node except EXIT (nothing is reachable from EXIT).
func (p *Program) buildUnits(f *FuncPDG, s *Simplified) []*SyncUnit {
	var starts []cfg.NodeID
	for id, kind := range s.Kinds {
		if !kind.Branching() && kind != SimpleExit {
			starts = append(starts, id)
		}
	}
	// Deterministic order: ENTRY first, then by CFG node id.
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })

	var units []*SyncUnit
	for _, start := range starts {
		u := &SyncUnit{
			Start: start,
			Reads: bitset.New(p.Info.NumGlobals()),
			Write: bitset.New(p.Info.NumGlobals()),
		}
		// The start node's own direct reads happen at the unit's beginning
		// (call arguments, send values).
		if st := f.CFG.Nodes[start].Stmt; st != nil {
			if ud, ok := p.Inter.UseDefs[f.Fn.Name()][st.ID()]; ok {
				got := f.Space.GlobalsOnly(ud.Use)
				got.IntersectWith(p.SharedMask)
				u.Reads.UnionWith(got)
				gotW := f.Space.GlobalsOnly(ud.Def)
				gotW.IntersectWith(p.SharedMask)
				u.Write.UnionWith(gotW)
			}
		}
		seenEdge := make(map[int]bool)
		var work []int
		work = append(work, s.Out[start]...)
		for len(work) > 0 {
			eid := work[len(work)-1]
			work = work[:len(work)-1]
			if seenEdge[eid] {
				continue
			}
			seenEdge[eid] = true
			e := s.Edges[eid]
			u.Edges = append(u.Edges, eid)
			u.Reads.UnionWith(e.Reads)
			u.Write.UnionWith(e.Writes)
			if s.Kinds[e.To].Branching() {
				work = append(work, s.Out[e.To]...)
			}
		}
		sort.Ints(u.Edges)
		u.CrossReads = u.Reads.Clone()
		u.CrossReads.IntersectWith(p.WrittenByOthers[f.Fn.Name()])
		units = append(units, u)
	}
	return units
}

// UnitAt returns the sync unit starting at the given CFG node, or nil.
func (s *Simplified) UnitAt(n cfg.NodeID) *SyncUnit {
	for _, u := range s.Units {
		if u.Start == n {
			return u
		}
	}
	return nil
}

// String renders the simplified graph and its units for golden tests,
// mirroring the flavor of the paper's Fig 5.3 caption.
func (f *FuncPDG) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "simplified %s:\n", f.Fn.Name())
	s := f.Simple
	var kept []cfg.NodeID
	for id := range s.Kinds {
		kept = append(kept, id)
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i] < kept[j] })
	for _, id := range kept {
		label := s.Kinds[id].String()
		if st := f.CFG.Nodes[id].Stmt; st != nil {
			label = fmt.Sprintf("%s s%d %s", label, st.ID(), ast.StmtString(st))
		}
		fmt.Fprintf(&b, "  n%d [%s]\n", id, label)
	}
	for _, e := range s.Edges {
		fmt.Fprintf(&b, "  e%d: n%d->n%d interior=%d reads=%s writes=%s\n",
			e.ID, e.From, e.To, len(e.Interior), e.Reads, e.Writes)
	}
	for _, u := range s.Units {
		fmt.Fprintf(&b, "  unit@n%d edges=%v reads=%s writes=%s\n", u.Start, u.Edges, u.Reads, u.Write)
	}
	return b.String()
}
