package pdg

import (
	"testing"

	"ppd/internal/ast"
	"ppd/internal/cfg"
	"ppd/internal/parser"
	"ppd/internal/sem"
	"ppd/internal/source"
)

func build(t *testing.T, src string) *Program {
	t.Helper()
	errs := &source.ErrorList{}
	prog := parser.ParseString("test.mpl", src, errs)
	info := sem.Check(prog, errs)
	if errs.ErrCount() != 0 {
		t.Fatalf("front-end errors:\n%v", errs.Err())
	}
	return Build(info)
}

func nodeOf(t *testing.T, f *FuncPDG, summary string) cfg.NodeID {
	t.Helper()
	for _, n := range f.CFG.Nodes {
		if n.Stmt != nil && ast.StmtString(n.Stmt) == summary {
			return n.ID
		}
	}
	t.Fatalf("no node %q", summary)
	return -1
}

func TestDataDepsIncludeCallEffects(t *testing.T) {
	p := build(t, `
var g;
func setg(v int) { g = v; }
func main() {
	setg(7);
	var x = g;
}`)
	f := p.Funcs["main"]
	use := nodeOf(t, f, "var x = g")
	def := nodeOf(t, f, "setg(7)")
	found := false
	for _, dd := range f.DataDepsTo(use) {
		if dd.From == def && f.Space.Name(dd.Var) == "g" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing interprocedural data dep setg(7) -> var x = g; have %v", f.DataDepsTo(use))
	}
}

func TestCtrlDepsExposed(t *testing.T) {
	p := build(t, `
func main() {
	var a = 1;
	if (a > 0) { a = 2; }
}`)
	f := p.Funcs["main"]
	arm := nodeOf(t, f, "a=2")
	cond := nodeOf(t, f, "if (a>0)")
	deps := f.CtrlDepsOf(arm)
	if len(deps) != 1 || deps[0] != cond {
		t.Errorf("ctrl deps of arm = %v, want [%d]", deps, cond)
	}
}

func TestSimplifiedKeepsOnlyStructuralNodes(t *testing.T) {
	p := build(t, `
sem s;
func helper() {}
func main() {
	var a = 1;
	a = a + 1;
	P(s);
	if (a > 0) { a = 2; }
	helper();
	V(s);
}`)
	f := p.Funcs["main"]
	sg := f.Simple
	// Kept: ENTRY, EXIT, P, if, helper-call, V = 6 nodes.
	if len(sg.Kinds) != 6 {
		t.Fatalf("kept = %d nodes, want 6\n%s", len(sg.Kinds), f.String())
	}
	counts := map[SimpleNodeKind]int{}
	for _, k := range sg.Kinds {
		counts[k]++
	}
	if counts[SimpleEntry] != 1 || counts[SimpleExit] != 1 ||
		counts[SimpleBranch] != 1 || counts[SimpleSync] != 2 || counts[SimpleCall] != 1 {
		t.Errorf("kind counts = %v", counts)
	}
}

func TestSimplifiedEdgeInterior(t *testing.T) {
	p := build(t, `
sem s;
func main() {
	var a = 1;
	var b = 2;
	P(s);
	V(s);
}`)
	f := p.Funcs["main"]
	sg := f.Simple
	// Edge ENTRY->P must collapse the two declarations.
	for _, eid := range sg.Out[cfg.EntryNode] {
		e := sg.Edges[eid]
		if sg.Kinds[e.To] == SimpleSync && len(e.Interior) != 2 {
			t.Errorf("entry edge interior = %d stmts, want 2", len(e.Interior))
		}
	}
}

// TestFigure53SyncUnits mirrors the structure of the paper's Fig 5.3: a
// subroutine accessing a shared variable under nested conditionals, whose
// simplified graph partitions into synchronization units that overlap in
// their tail edges (as the paper's units {e1,e2,e3,e5,e6,e8,e9}, {e4,e9},
// {e7,e8,e9} share e8/e9).
func TestFigure53SyncUnits(t *testing.T) {
	p := build(t, `
shared SV;
sem s;
func sync0() { P(s); V(s); }
func syncB() { P(s); V(s); }
func foo3(p int, q int, r int) {
	sync0();
	if (p == 1) {
		syncB();
	}
	if (r == 1) {
		SV = SV + p;
	} else {
		SV = SV - q;
	}
}
func main() { foo3(1, 1, 1); }`)
	f := p.Funcs["foo3"]
	sg := f.Simple

	// Non-branching nodes: ENTRY, call sync0, call syncB, EXIT.
	// Units start at ENTRY, sync0, syncB -> 3 units.
	if len(sg.Units) != 3 {
		t.Fatalf("units = %d, want 3\n%s", len(sg.Units), f.String())
	}

	entryU := sg.UnitAt(cfg.EntryNode)
	aU := sg.UnitAt(nodeOf(t, f, "sync0()"))
	bU := sg.UnitAt(nodeOf(t, f, "syncB()"))
	if entryU == nil || aU == nil || bU == nil {
		t.Fatalf("missing units\n%s", f.String())
	}

	// The entry unit contains exactly the edge to the first call.
	if len(entryU.Edges) != 1 {
		t.Errorf("entry unit edges = %v, want 1 edge", entryU.Edges)
	}

	// Units A and B must overlap in the two tail edges out of the r-branch
	// (the Fig 5.3 sharing property).
	inA := map[int]bool{}
	for _, e := range aU.Edges {
		inA[e] = true
	}
	shared := 0
	for _, e := range bU.Edges {
		if inA[e] {
			shared++
		}
	}
	if shared != 2 {
		t.Errorf("units A and B share %d edges, want 2 (the r-branch arms)\n%s", shared, f.String())
	}

	// Both units read and write SV (it is accessed in the tail arms).
	sv := p.Info.GlobalByName("SV").GlobalID
	for name, u := range map[string]*SyncUnit{"A": aU, "B": bU} {
		if !u.Reads.Has(sv) {
			t.Errorf("unit %s reads = %s, want SV(%d)", name, u.Reads, sv)
		}
		if !u.Write.Has(sv) {
			t.Errorf("unit %s writes = %s, want SV(%d)", name, u.Write, sv)
		}
	}
	// The entry unit must not claim SV: no shared access before sync0.
	if entryU.Reads.Has(sv) || entryU.Write.Has(sv) {
		t.Errorf("entry unit should not touch SV: reads=%s writes=%s", entryU.Reads, entryU.Write)
	}
}

func TestUnitSharedReadsRespectBranchPredicates(t *testing.T) {
	p := build(t, `
shared SV;
sem s;
func main() {
	P(s);
	if (SV > 0) { print(1); }
	V(s);
}`)
	f := p.Funcs["main"]
	sv := p.Info.GlobalByName("SV").GlobalID
	pNode := nodeOf(t, f, "P(s)")
	u := f.Simple.UnitAt(pNode)
	if u == nil {
		t.Fatalf("no unit at P(s)\n%s", f.String())
	}
	if !u.Reads.Has(sv) {
		t.Errorf("unit at P(s) must read SV via the branch predicate; reads=%s", u.Reads)
	}
}

func TestLoopStaysInsideOneUnit(t *testing.T) {
	p := build(t, `
shared SV;
sem s;
func main() {
	P(s);
	var i = 0;
	while (i < 10) {
		SV = SV + i;
		i = i + 1;
	}
	V(s);
}`)
	f := p.Funcs["main"]
	pNode := nodeOf(t, f, "P(s)")
	u := f.Simple.UnitAt(pNode)
	sv := p.Info.GlobalByName("SV").GlobalID
	if !u.Reads.Has(sv) || !u.Write.Has(sv) {
		t.Errorf("loop body accesses must fold into the enclosing unit: %s/%s", u.Reads, u.Write)
	}
	// The V(s) node starts its own (possibly empty) unit.
	vU := f.Simple.UnitAt(nodeOf(t, f, "V(s)"))
	if vU == nil {
		t.Fatal("no unit at V(s)")
	}
	if vU.Reads.Has(sv) {
		t.Error("unit after loop must not re-claim loop reads")
	}
}

func TestEveryFunctionHasEntryUnit(t *testing.T) {
	p := build(t, `
func f(x int) int { return x + 1; }
func main() { var v = f(2); print(v); }`)
	for name, f := range p.Funcs {
		if f.Simple.UnitAt(cfg.EntryNode) == nil {
			t.Errorf("%s: missing entry unit", name)
		}
	}
}

func TestSharedMaskExcludesSemsAndChans(t *testing.T) {
	p := build(t, `
var g;
sem s;
chan c;
func main() { g = 1; }`)
	if p.SharedMask.Count() != 1 {
		t.Errorf("shared mask = %s, want only g", p.SharedMask)
	}
	if !p.SharedMask.Has(p.Info.GlobalByName("g").GlobalID) {
		t.Error("g missing from shared mask")
	}
}
