package progdb

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"

	"ppd/internal/eblock"
)

// Cache is a persistent, content-addressed store of preparatory-phase
// artifacts. Entries are keyed by CacheKey — a hash over the source bytes,
// the e-block configuration, and the codec version — so a cache directory
// can be shared across programs and ppd versions: anything that would
// change the compile output changes the key, and stale entries are simply
// never looked up again.
type Cache struct {
	Dir string
}

// CacheKey returns the content address for one compile: sha256 over the
// codec version, the e-block config, the fusion-table fingerprint
// (bytecode.FusionTable.Fingerprint; "off" when fusion is disabled), the
// abstract-interpreter fingerprint (absint.Fingerprint — the facts feed
// both the persisted vet result and the fusion safety certificates, so an
// engine change must miss), the source name, and the source bytes. Field
// boundaries are length-framed so concatenation ambiguities cannot
// collide.
func CacheKey(name, src string, cfg eblock.Config, fusion, facts string) string {
	h := sha256.New()
	fmt.Fprintf(h, "ppdc\x00v%d\x00li%d\x00lb%d\x00fz%d\x00%s\x00ai%d\x00%s\x00", CodecVersion,
		cfg.LeafInlineThreshold, cfg.LoopBlockMinStmts, len(fusion), fusion, len(facts), facts)
	fmt.Fprintf(h, "%d\x00%s%d\x00%s", len(name), name, len(src), src)
	return hex.EncodeToString(h.Sum(nil))
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.Dir, key+".ppdc")
}

// Load returns the cached artifacts for key and their encoded size, or
// (nil, 0, nil) on a clean miss. A present-but-unreadable entry (corrupt
// bytes, old codec) is also a miss: the caller recompiles and Store
// overwrites it.
func (c *Cache) Load(key string) (*CachedProgram, int, error) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, err
	}
	cp, err := Decode(data)
	if err != nil {
		return nil, 0, nil // treat corruption as a miss, not a failure
	}
	return cp, len(data), nil
}

// Store writes the entry atomically (temp file + rename) so a concurrent
// Load never observes a torn write. Returns the encoded size.
func (c *Cache) Store(key string, cp *CachedProgram) (int, error) {
	if err := os.MkdirAll(c.Dir, 0o755); err != nil {
		return 0, err
	}
	data := Encode(cp)
	tmp, err := os.CreateTemp(c.Dir, key+".tmp*")
	if err != nil {
		return 0, err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	return len(data), nil
}
