package progdb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"ppd/internal/analysis"
	"ppd/internal/ast"
	"ppd/internal/bytecode"
	"ppd/internal/eblock"
	"ppd/internal/source"
)

// Binary codec for cached preparatory-phase artifacts. Like the vm log
// codec, it is append-based with varint integers, a fixed magic, and an
// EncodedLen that mirrors the encoder's arithmetic exactly (pinned by
// tests). The decoder never panics on malformed input and never allocates
// proportionally to a corrupt length prefix: every claimed element must be
// present in the input, so slices grow from a bounded initial capacity.
//
// The format is versioned; CodecVersion participates in the cache key, so
// a codec change silently invalidates old entries instead of misreading
// them — but Decode still checks the header version for files reached by
// other paths.

// cacheMagic is "PPDC" — the artifact-cache container, distinct from the
// log codec's "PPD1".
const cacheMagic = 0x50504443

// CodecVersion is bumped whenever the encoded layout changes. It is part
// of both the file header and the content-hash cache key.
//
// v2: functions carry the superinstruction side table (bytecode.Fuse), so
// warm cache hits return fused bytecode; v1 entries decode-fail into clean
// misses.
//
// v3: the program carries WidenedSuper (certificate-widened fusion window
// count) and the vet result carries the abstract-interpretation facts —
// lock-guard prunes on the conflict matrix and the facts counters — so a
// warm hit answers `vet -json` identically to a cold run; v2 entries
// decode-fail into clean misses.
//
// v4: functions carry the precomputed prelog-PC index (PrelogAt), so a warm
// cache hit starts emulation without re-scanning code for OpPrelog sites;
// v3 entries decode-fail into clean misses.
const CodecVersion = 4

// CachedProgram is the persisted slice of a compile: everything the
// execution phase needs (the bytecode program) plus the vet result the
// debugging phase uses to prune its race detectors. The semantic layers
// (AST, sem.Info, PDG, e-block plan, the database proper) are cheap to
// rebuild from source and full of unexported graph state, so they are
// rehydrated on demand instead of serialized.
type CachedProgram struct {
	SourceName string
	Source     string
	Config     eblock.Config
	Prog       *bytecode.Program
	Vet        *analysis.Result
}

// Encode serializes cp. The output is deterministic: map-shaped fields
// (ArraySlots, PerPass) are emitted in sorted key order, and FuncIdx is
// not emitted at all (it is rebuilt from Funcs on decode).
func Encode(cp *CachedProgram) []byte {
	b := make([]byte, 0, EncodedLen(cp))
	b = binary.BigEndian.AppendUint32(b, cacheMagic)
	b = binary.AppendUvarint(b, CodecVersion)
	b = appendString(b, cp.SourceName)
	b = appendString(b, cp.Source)
	b = binary.AppendVarint(b, int64(cp.Config.LeafInlineThreshold))
	b = binary.AppendVarint(b, int64(cp.Config.LoopBlockMinStmts))
	b = appendProgram(b, cp.Prog)
	b = appendVet(b, cp.Vet)
	return b
}

// EncodedLen returns exactly len(Encode(cp)) without encoding.
func EncodedLen(cp *CachedProgram) int {
	n := 4 + uvarintLen(CodecVersion)
	n += stringLen(cp.SourceName)
	n += stringLen(cp.Source)
	n += varintLen(int64(cp.Config.LeafInlineThreshold))
	n += varintLen(int64(cp.Config.LoopBlockMinStmts))
	n += programLen(cp.Prog)
	n += vetLen(cp.Vet)
	return n
}

// Decode parses an Encode output. It rejects bad magic, version
// mismatches, truncation, and trailing garbage.
func Decode(data []byte) (*CachedProgram, error) {
	d := &decoder{b: data}
	if len(data) < 4 {
		return nil, errors.New("progdb: short header")
	}
	if m := binary.BigEndian.Uint32(data[:4]); m != cacheMagic {
		return nil, fmt.Errorf("progdb: bad magic %#x", m)
	}
	d.pos = 4
	ver, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if ver != CodecVersion {
		return nil, fmt.Errorf("progdb: codec version %d, want %d", ver, CodecVersion)
	}
	cp := &CachedProgram{}
	if cp.SourceName, err = d.string(); err != nil {
		return nil, err
	}
	if cp.Source, err = d.string(); err != nil {
		return nil, err
	}
	if cp.Config.LeafInlineThreshold, err = d.int(); err != nil {
		return nil, err
	}
	if cp.Config.LoopBlockMinStmts, err = d.int(); err != nil {
		return nil, err
	}
	if cp.Prog, err = d.program(); err != nil {
		return nil, err
	}
	if cp.Vet, err = d.vet(); err != nil {
		return nil, err
	}
	if d.pos != len(d.b) {
		return nil, fmt.Errorf("progdb: %d trailing bytes", len(d.b)-d.pos)
	}
	return cp, nil
}

// ---- encode helpers ----

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendInts(b []byte, s []int) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	for _, x := range s {
		b = binary.AppendVarint(b, int64(x))
	}
	return b
}

func appendProgram(b []byte, p *bytecode.Program) []byte {
	b = binary.AppendVarint(b, int64(p.MainIdx))
	b = binary.AppendVarint(b, int64(p.WidenedSuper))
	b = binary.AppendUvarint(b, uint64(len(p.Strings)))
	for _, s := range p.Strings {
		b = appendString(b, s)
	}
	b = binary.AppendUvarint(b, uint64(len(p.Globals)))
	for i := range p.Globals {
		g := &p.Globals[i]
		b = appendString(b, g.Name)
		b = append(b, byte(g.Kind))
		b = appendBool(b, g.IsArray)
		b = binary.AppendVarint(b, int64(g.Len))
		b = binary.AppendVarint(b, g.Init)
		b = appendBool(b, g.HasInit)
		b = appendBool(b, g.Shared)
	}
	b = binary.AppendUvarint(b, uint64(len(p.Funcs)))
	for _, f := range p.Funcs {
		b = appendFunc(b, f)
	}
	b = binary.AppendUvarint(b, uint64(len(p.Blocks)))
	for _, bm := range p.Blocks {
		b = appendBlockMeta(b, bm)
	}
	return b
}

func appendFunc(b []byte, f *bytecode.Func) []byte {
	b = binary.AppendVarint(b, int64(f.Idx))
	b = appendString(b, f.Name)
	b = binary.AppendVarint(b, int64(f.NumParams))
	b = binary.AppendVarint(b, int64(f.NumSlots))
	b = appendBool(b, f.HasResult)
	b = binary.AppendVarint(b, int64(f.BlockID))
	b = binary.AppendUvarint(b, uint64(len(f.Code)))
	for i := range f.Code {
		in := &f.Code[i]
		b = append(b, byte(in.Op))
		b = binary.AppendVarint(b, int64(in.A))
		b = binary.AppendVarint(b, int64(in.B))
		b = binary.AppendUvarint(b, uint64(in.Stmt))
	}
	b = binary.AppendUvarint(b, uint64(len(f.Units)))
	for i := range f.Units {
		b = binary.AppendUvarint(b, uint64(f.Units[i].Stmt))
		b = appendInts(b, f.Units[i].Globals)
	}
	b = appendInts(b, f.ParamSlots)
	// ArraySlots in sorted key order so equal programs encode equal bytes.
	keys := make([]int, 0, len(f.ArraySlots))
	for k := range f.ArraySlots {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	b = binary.AppendUvarint(b, uint64(len(keys)))
	for _, k := range keys {
		b = binary.AppendVarint(b, int64(k))
		b = binary.AppendVarint(b, int64(f.ArraySlots[k]))
	}
	// PrelogAt in sorted key order, same determinism rule as ArraySlots.
	pkeys := make([]int, 0, len(f.PrelogAt))
	for k := range f.PrelogAt {
		pkeys = append(pkeys, k)
	}
	sort.Ints(pkeys)
	b = binary.AppendUvarint(b, uint64(len(pkeys)))
	for _, k := range pkeys {
		b = binary.AppendVarint(b, int64(k))
		b = binary.AppendVarint(b, int64(f.PrelogAt[k]))
	}
	// Superinstruction side table, sparse: only non-None entries, keyed by
	// pc (the table is parallel to Code and usually mostly empty).
	nSup := 0
	for i := range f.Super {
		if f.Super[i].Op != bytecode.SuperNone {
			nSup++
		}
	}
	b = binary.AppendUvarint(b, uint64(nSup))
	for pc := range f.Super {
		s := &f.Super[pc]
		if s.Op == bytecode.SuperNone {
			continue
		}
		b = binary.AppendUvarint(b, uint64(pc))
		b = append(b, byte(s.Op), s.W, byte(s.Bin))
		b = binary.AppendVarint(b, int64(s.A))
		b = binary.AppendVarint(b, int64(s.B))
		b = binary.AppendVarint(b, int64(s.C))
		b = binary.AppendVarint(b, s.K)
		b = binary.AppendVarint(b, int64(s.T))
	}
	return b
}

func appendBlockMeta(b []byte, bm *bytecode.BlockMeta) []byte {
	b = binary.AppendVarint(b, int64(bm.ID))
	b = append(b, byte(bm.Kind))
	b = binary.AppendVarint(b, int64(bm.FuncIdx))
	b = binary.AppendUvarint(b, uint64(bm.LoopStmt))
	b = appendInts(b, bm.UsedLocals)
	b = appendInts(b, bm.UsedGlobals)
	b = appendInts(b, bm.DefinedLocals)
	b = appendInts(b, bm.DefinedGlobals)
	b = appendBool(b, bm.HasRet)
	b = binary.AppendVarint(b, int64(bm.PrelogPC))
	b = binary.AppendVarint(b, int64(bm.PostPC))
	return b
}

func appendPos(b []byte, p source.Position) []byte {
	b = appendString(b, p.Filename)
	b = binary.AppendVarint(b, int64(p.Offset))
	b = binary.AppendVarint(b, int64(p.Line))
	b = binary.AppendVarint(b, int64(p.Column))
	return b
}

func appendVet(b []byte, v *analysis.Result) []byte {
	if v == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	b = binary.AppendUvarint(b, uint64(len(v.Diagnostics)))
	for _, d := range v.Diagnostics {
		b = appendString(b, d.Code)
		b = binary.AppendVarint(b, int64(d.Sev))
		b = appendPos(b, d.Pos)
		b = appendString(b, d.Message)
		b = binary.AppendUvarint(b, uint64(len(d.Related)))
		for i := range d.Related {
			b = appendPos(b, d.Related[i].Pos)
			b = appendString(b, d.Related[i].Message)
		}
	}
	w := v.Conflicts.Wire()
	if w == nil {
		b = append(b, 0)
	} else {
		b = append(b, 1)
		b = binary.AppendVarint(b, int64(w.NumGlobals))
		b = binary.AppendUvarint(b, uint64(len(w.Classes)))
		for i := range w.Classes {
			cl := &w.Classes[i]
			b = appendString(b, cl.Entry)
			b = appendBool(b, cl.Many)
			b = appendInts(b, cl.Reads)
			b = appendInts(b, cl.Writes)
		}
		b = binary.AppendUvarint(b, uint64(len(w.Pairs)))
		for i := range w.Pairs {
			p := &w.Pairs[i]
			b = binary.AppendVarint(b, int64(p.A))
			b = binary.AppendVarint(b, int64(p.B))
			b = appendInts(b, p.Vars)
		}
		b = binary.AppendUvarint(b, uint64(len(w.Guarded)))
		for i := range w.Guarded {
			b = binary.AppendVarint(b, int64(w.Guarded[i].Gid))
			b = binary.AppendVarint(b, int64(w.Guarded[i].Sem))
		}
	}
	b = binary.AppendVarint(b, int64(v.Facts.Intervals))
	b = binary.AppendVarint(b, int64(v.Facts.Nonzero))
	b = binary.AppendVarint(b, int64(v.Facts.Locksets))
	// PerPass in sorted key order for deterministic bytes.
	passes := make([]string, 0, len(v.PerPass))
	for k := range v.PerPass {
		passes = append(passes, k)
	}
	sort.Strings(passes)
	b = binary.AppendUvarint(b, uint64(len(passes)))
	for _, k := range passes {
		b = appendString(b, k)
		b = binary.AppendVarint(b, int64(v.PerPass[k]))
	}
	return b
}

// ---- length mirrors ----

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func varintLen(v int64) int {
	uv := uint64(v) << 1
	if v < 0 {
		uv = ^uv
	}
	return uvarintLen(uv)
}

func stringLen(s string) int { return uvarintLen(uint64(len(s))) + len(s) }

func intsLen(s []int) int {
	n := uvarintLen(uint64(len(s)))
	for _, x := range s {
		n += varintLen(int64(x))
	}
	return n
}

func posLen(p source.Position) int {
	return stringLen(p.Filename) + varintLen(int64(p.Offset)) +
		varintLen(int64(p.Line)) + varintLen(int64(p.Column))
}

func programLen(p *bytecode.Program) int {
	n := varintLen(int64(p.MainIdx)) + varintLen(int64(p.WidenedSuper))
	n += uvarintLen(uint64(len(p.Strings)))
	for _, s := range p.Strings {
		n += stringLen(s)
	}
	n += uvarintLen(uint64(len(p.Globals)))
	for i := range p.Globals {
		g := &p.Globals[i]
		n += stringLen(g.Name) + 1 + 1 + varintLen(int64(g.Len)) +
			varintLen(g.Init) + 1 + 1
	}
	n += uvarintLen(uint64(len(p.Funcs)))
	for _, f := range p.Funcs {
		n += funcLen(f)
	}
	n += uvarintLen(uint64(len(p.Blocks)))
	for _, bm := range p.Blocks {
		n += blockMetaLen(bm)
	}
	return n
}

func funcLen(f *bytecode.Func) int {
	n := varintLen(int64(f.Idx)) + stringLen(f.Name) +
		varintLen(int64(f.NumParams)) + varintLen(int64(f.NumSlots)) + 1 +
		varintLen(int64(f.BlockID))
	n += uvarintLen(uint64(len(f.Code)))
	for i := range f.Code {
		in := &f.Code[i]
		n += 1 + varintLen(int64(in.A)) + varintLen(int64(in.B)) +
			uvarintLen(uint64(in.Stmt))
	}
	n += uvarintLen(uint64(len(f.Units)))
	for i := range f.Units {
		n += uvarintLen(uint64(f.Units[i].Stmt)) + intsLen(f.Units[i].Globals)
	}
	n += intsLen(f.ParamSlots)
	n += uvarintLen(uint64(len(f.ArraySlots)))
	for k, v := range f.ArraySlots {
		n += varintLen(int64(k)) + varintLen(int64(v))
	}
	n += uvarintLen(uint64(len(f.PrelogAt)))
	for k, v := range f.PrelogAt {
		n += varintLen(int64(k)) + varintLen(int64(v))
	}
	nSup := 0
	for i := range f.Super {
		s := &f.Super[i]
		if s.Op == bytecode.SuperNone {
			continue
		}
		nSup++
		n += uvarintLen(uint64(i)) + 3 +
			varintLen(int64(s.A)) + varintLen(int64(s.B)) + varintLen(int64(s.C)) +
			varintLen(s.K) + varintLen(int64(s.T))
	}
	n += uvarintLen(uint64(nSup))
	return n
}

func blockMetaLen(bm *bytecode.BlockMeta) int {
	return varintLen(int64(bm.ID)) + 1 + varintLen(int64(bm.FuncIdx)) +
		uvarintLen(uint64(bm.LoopStmt)) +
		intsLen(bm.UsedLocals) + intsLen(bm.UsedGlobals) +
		intsLen(bm.DefinedLocals) + intsLen(bm.DefinedGlobals) +
		1 + varintLen(int64(bm.PrelogPC)) + varintLen(int64(bm.PostPC))
}

func vetLen(v *analysis.Result) int {
	if v == nil {
		return 1
	}
	n := 1 + uvarintLen(uint64(len(v.Diagnostics)))
	for _, d := range v.Diagnostics {
		n += stringLen(d.Code) + varintLen(int64(d.Sev)) + posLen(d.Pos) +
			stringLen(d.Message) + uvarintLen(uint64(len(d.Related)))
		for i := range d.Related {
			n += posLen(d.Related[i].Pos) + stringLen(d.Related[i].Message)
		}
	}
	w := v.Conflicts.Wire()
	n++
	if w != nil {
		n += varintLen(int64(w.NumGlobals))
		n += uvarintLen(uint64(len(w.Classes)))
		for i := range w.Classes {
			cl := &w.Classes[i]
			n += stringLen(cl.Entry) + 1 + intsLen(cl.Reads) + intsLen(cl.Writes)
		}
		n += uvarintLen(uint64(len(w.Pairs)))
		for i := range w.Pairs {
			p := &w.Pairs[i]
			n += varintLen(int64(p.A)) + varintLen(int64(p.B)) + intsLen(p.Vars)
		}
		n += uvarintLen(uint64(len(w.Guarded)))
		for i := range w.Guarded {
			n += varintLen(int64(w.Guarded[i].Gid)) + varintLen(int64(w.Guarded[i].Sem))
		}
	}
	n += varintLen(int64(v.Facts.Intervals)) + varintLen(int64(v.Facts.Nonzero)) +
		varintLen(int64(v.Facts.Locksets))
	n += uvarintLen(uint64(len(v.PerPass)))
	for k, c := range v.PerPass {
		n += stringLen(k) + varintLen(int64(c))
	}
	return n
}

// ---- decoder ----

// cacheReadCap bounds initial slice capacities while decoding, same idiom
// as the log codec: a lying length prefix degrades to a truncation error
// instead of a giant allocation.
const cacheReadCap = 1024

type decoder struct {
	b   []byte
	pos int
}

var errTruncated = errors.New("progdb: truncated input")

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b[d.pos:])
	if n <= 0 {
		return 0, errTruncated
	}
	d.pos += n
	return v, nil
}

func (d *decoder) varint() (int64, error) {
	v, n := binary.Varint(d.b[d.pos:])
	if n <= 0 {
		return 0, errTruncated
	}
	d.pos += n
	return v, nil
}

func (d *decoder) int() (int, error) {
	v, err := d.varint()
	return int(v), err
}

func (d *decoder) byte() (byte, error) {
	if d.pos >= len(d.b) {
		return 0, errTruncated
	}
	c := d.b[d.pos]
	d.pos++
	return c, nil
}

func (d *decoder) bool() (bool, error) {
	c, err := d.byte()
	if err != nil {
		return false, err
	}
	switch c {
	case 0:
		return false, nil
	case 1:
		return true, nil
	}
	return false, fmt.Errorf("progdb: bad bool byte %d", c)
}

func (d *decoder) string() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if uint64(len(d.b)-d.pos) < n {
		return "", errTruncated
	}
	s := string(d.b[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s, nil
}

func (d *decoder) ints() ([]int, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	s := make([]int, 0, min(n, cacheReadCap))
	for i := uint64(0); i < n; i++ {
		x, err := d.int()
		if err != nil {
			return nil, err
		}
		s = append(s, x)
	}
	return s, nil
}

func (d *decoder) pos_() (source.Position, error) {
	var p source.Position
	var err error
	if p.Filename, err = d.string(); err != nil {
		return p, err
	}
	if p.Offset, err = d.int(); err != nil {
		return p, err
	}
	if p.Line, err = d.int(); err != nil {
		return p, err
	}
	p.Column, err = d.int()
	return p, err
}

func (d *decoder) program() (*bytecode.Program, error) {
	p := &bytecode.Program{FuncIdx: make(map[string]int)}
	var err error
	if p.MainIdx, err = d.int(); err != nil {
		return nil, err
	}
	if p.WidenedSuper, err = d.int(); err != nil {
		return nil, err
	}
	nStr, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	p.Strings = make([]string, 0, min(nStr, cacheReadCap))
	for i := uint64(0); i < nStr; i++ {
		s, err := d.string()
		if err != nil {
			return nil, err
		}
		p.Strings = append(p.Strings, s)
	}
	nGlob, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	p.Globals = make([]bytecode.GlobalDef, 0, min(nGlob, cacheReadCap))
	for i := uint64(0); i < nGlob; i++ {
		var g bytecode.GlobalDef
		if g.Name, err = d.string(); err != nil {
			return nil, err
		}
		kind, err := d.byte()
		if err != nil {
			return nil, err
		}
		g.Kind = bytecode.GlobalKind(kind)
		if g.IsArray, err = d.bool(); err != nil {
			return nil, err
		}
		if g.Len, err = d.int(); err != nil {
			return nil, err
		}
		if g.Init, err = d.varint(); err != nil {
			return nil, err
		}
		if g.HasInit, err = d.bool(); err != nil {
			return nil, err
		}
		if g.Shared, err = d.bool(); err != nil {
			return nil, err
		}
		p.Globals = append(p.Globals, g)
	}
	nFuncs, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	p.Funcs = make([]*bytecode.Func, 0, min(nFuncs, cacheReadCap))
	for i := uint64(0); i < nFuncs; i++ {
		f, err := d.fn()
		if err != nil {
			return nil, fmt.Errorf("func %d: %w", i, err)
		}
		p.Funcs = append(p.Funcs, f)
		p.FuncIdx[f.Name] = int(i)
	}
	nBlocks, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	p.Blocks = make([]*bytecode.BlockMeta, 0, min(nBlocks, cacheReadCap))
	for i := uint64(0); i < nBlocks; i++ {
		bm, err := d.blockMeta()
		if err != nil {
			return nil, fmt.Errorf("block %d: %w", i, err)
		}
		p.Blocks = append(p.Blocks, bm)
	}
	return p, nil
}

func (d *decoder) fn() (*bytecode.Func, error) {
	f := &bytecode.Func{}
	var err error
	if f.Idx, err = d.int(); err != nil {
		return nil, err
	}
	if f.Name, err = d.string(); err != nil {
		return nil, err
	}
	if f.NumParams, err = d.int(); err != nil {
		return nil, err
	}
	if f.NumSlots, err = d.int(); err != nil {
		return nil, err
	}
	if f.HasResult, err = d.bool(); err != nil {
		return nil, err
	}
	if f.BlockID, err = d.int(); err != nil {
		return nil, err
	}
	nCode, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	f.Code = make([]bytecode.Instr, 0, min(nCode, cacheReadCap))
	for i := uint64(0); i < nCode; i++ {
		var in bytecode.Instr
		op, err := d.byte()
		if err != nil {
			return nil, err
		}
		in.Op = bytecode.Op(op)
		if in.A, err = d.int(); err != nil {
			return nil, err
		}
		if in.B, err = d.int(); err != nil {
			return nil, err
		}
		stmt, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		in.Stmt = ast.StmtID(stmt)
		f.Code = append(f.Code, in)
	}
	nUnits, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	f.Units = make([]bytecode.UnitLog, 0, min(nUnits, cacheReadCap))
	for i := uint64(0); i < nUnits; i++ {
		var u bytecode.UnitLog
		stmt, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		u.Stmt = ast.StmtID(stmt)
		if u.Globals, err = d.ints(); err != nil {
			return nil, err
		}
		f.Units = append(f.Units, u)
	}
	if f.ParamSlots, err = d.ints(); err != nil {
		return nil, err
	}
	nArr, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if nArr > 0 {
		f.ArraySlots = make(map[int]int, min(nArr, cacheReadCap))
		for i := uint64(0); i < nArr; i++ {
			k, err := d.int()
			if err != nil {
				return nil, err
			}
			v, err := d.int()
			if err != nil {
				return nil, err
			}
			f.ArraySlots[k] = v
		}
	}
	nPre, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if nPre > 0 {
		f.PrelogAt = make(map[int]int, min(nPre, cacheReadCap))
		for i := uint64(0); i < nPre; i++ {
			k, err := d.int()
			if err != nil {
				return nil, err
			}
			v, err := d.int()
			if err != nil {
				return nil, err
			}
			f.PrelogAt[k] = v
		}
	}
	nSup, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if nSup > 0 {
		// len(f.Code) is already decoded, so the dense side table's size is
		// bounded by validated input.
		f.Super = make([]bytecode.SuperInstr, len(f.Code))
		for i := uint64(0); i < nSup; i++ {
			pc, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			op, err := d.byte()
			if err != nil {
				return nil, err
			}
			var s bytecode.SuperInstr
			s.Op = bytecode.SuperOp(op)
			if s.W, err = d.byte(); err != nil {
				return nil, err
			}
			bin, err := d.byte()
			if err != nil {
				return nil, err
			}
			s.Bin = bytecode.Op(bin)
			if s.A, err = d.int(); err != nil {
				return nil, err
			}
			if s.B, err = d.int(); err != nil {
				return nil, err
			}
			if s.C, err = d.int(); err != nil {
				return nil, err
			}
			if s.K, err = d.varint(); err != nil {
				return nil, err
			}
			if s.T, err = d.int(); err != nil {
				return nil, err
			}
			// The dispatcher executes Super entries without per-step pc
			// checks, so reject anything the fusion pass could not emit.
			if s.Op == bytecode.SuperNone || s.Op >= bytecode.NumSuperOps {
				return nil, fmt.Errorf("progdb: super op %d out of range", op)
			}
			if s.W < 2 || s.W > 4 {
				return nil, fmt.Errorf("progdb: super width %d out of range", s.W)
			}
			if pc >= uint64(len(f.Code)) || pc+uint64(s.W) > uint64(len(f.Code)) {
				return nil, fmt.Errorf("progdb: super pc %d out of range", pc)
			}
			f.Super[pc] = s
		}
	}
	return f, nil
}

func (d *decoder) blockMeta() (*bytecode.BlockMeta, error) {
	bm := &bytecode.BlockMeta{}
	var err error
	if bm.ID, err = d.int(); err != nil {
		return nil, err
	}
	kind, err := d.byte()
	if err != nil {
		return nil, err
	}
	bm.Kind = bytecode.BlockKind(kind)
	if bm.FuncIdx, err = d.int(); err != nil {
		return nil, err
	}
	loop, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	bm.LoopStmt = ast.StmtID(loop)
	if bm.UsedLocals, err = d.ints(); err != nil {
		return nil, err
	}
	if bm.UsedGlobals, err = d.ints(); err != nil {
		return nil, err
	}
	if bm.DefinedLocals, err = d.ints(); err != nil {
		return nil, err
	}
	if bm.DefinedGlobals, err = d.ints(); err != nil {
		return nil, err
	}
	if bm.HasRet, err = d.bool(); err != nil {
		return nil, err
	}
	if bm.PrelogPC, err = d.int(); err != nil {
		return nil, err
	}
	if bm.PostPC, err = d.int(); err != nil {
		return nil, err
	}
	return bm, nil
}

func (d *decoder) vet() (*analysis.Result, error) {
	present, err := d.bool()
	if err != nil {
		return nil, err
	}
	if !present {
		return nil, nil
	}
	v := &analysis.Result{}
	nDiag, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	v.Diagnostics = make([]*analysis.Diagnostic, 0, min(nDiag, cacheReadCap))
	for i := uint64(0); i < nDiag; i++ {
		dg := &analysis.Diagnostic{}
		if dg.Code, err = d.string(); err != nil {
			return nil, err
		}
		sev, err := d.varint()
		if err != nil {
			return nil, err
		}
		dg.Sev = analysis.Severity(sev)
		if dg.Pos, err = d.pos_(); err != nil {
			return nil, err
		}
		if dg.Message, err = d.string(); err != nil {
			return nil, err
		}
		nRel, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		dg.Related = make([]analysis.Related, 0, min(nRel, cacheReadCap))
		for j := uint64(0); j < nRel; j++ {
			var rel analysis.Related
			if rel.Pos, err = d.pos_(); err != nil {
				return nil, err
			}
			if rel.Message, err = d.string(); err != nil {
				return nil, err
			}
			dg.Related = append(dg.Related, rel)
		}
		v.Diagnostics = append(v.Diagnostics, dg)
	}
	hasConf, err := d.bool()
	if err != nil {
		return nil, err
	}
	if hasConf {
		w := &analysis.ConflictWire{}
		if w.NumGlobals, err = d.int(); err != nil {
			return nil, err
		}
		// A legitimate input cannot describe more globals than it has bytes;
		// without this bound a forged count would size the rebuilt bitsets.
		if w.NumGlobals < 0 || w.NumGlobals > len(d.b) {
			return nil, fmt.Errorf("progdb: implausible NumGlobals %d", w.NumGlobals)
		}
		nCls, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		w.Classes = make([]analysis.ClassWire, 0, min(nCls, cacheReadCap))
		for i := uint64(0); i < nCls; i++ {
			var cl analysis.ClassWire
			if cl.Entry, err = d.string(); err != nil {
				return nil, err
			}
			if cl.Many, err = d.bool(); err != nil {
				return nil, err
			}
			if cl.Reads, err = d.boundedElems(w.NumGlobals); err != nil {
				return nil, err
			}
			if cl.Writes, err = d.boundedElems(w.NumGlobals); err != nil {
				return nil, err
			}
			w.Classes = append(w.Classes, cl)
		}
		nPairs, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		w.Pairs = make([]analysis.PairWire, 0, min(nPairs, cacheReadCap))
		for i := uint64(0); i < nPairs; i++ {
			var p analysis.PairWire
			if p.A, err = d.int(); err != nil {
				return nil, err
			}
			if p.B, err = d.int(); err != nil {
				return nil, err
			}
			if p.Vars, err = d.boundedElems(w.NumGlobals); err != nil {
				return nil, err
			}
			w.Pairs = append(w.Pairs, p)
		}
		nGuard, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		w.Guarded = make([]analysis.LockGuard, 0, min(nGuard, cacheReadCap))
		for i := uint64(0); i < nGuard; i++ {
			var g analysis.LockGuard
			if g.Gid, err = d.int(); err != nil {
				return nil, err
			}
			if g.Sem, err = d.int(); err != nil {
				return nil, err
			}
			if g.Gid < 0 || g.Gid >= w.NumGlobals || g.Sem < 0 || g.Sem >= w.NumGlobals {
				return nil, fmt.Errorf("progdb: lock guard (%d,%d) out of range [0,%d)", g.Gid, g.Sem, w.NumGlobals)
			}
			w.Guarded = append(w.Guarded, g)
		}
		v.Conflicts = analysis.FromWire(w)
	}
	if v.Facts.Intervals, err = d.int(); err != nil {
		return nil, err
	}
	if v.Facts.Nonzero, err = d.int(); err != nil {
		return nil, err
	}
	if v.Facts.Locksets, err = d.int(); err != nil {
		return nil, err
	}
	nPass, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if nPass > 0 {
		v.PerPass = make(map[string]int, min(nPass, cacheReadCap))
		for i := uint64(0); i < nPass; i++ {
			k, err := d.string()
			if err != nil {
				return nil, err
			}
			c, err := d.int()
			if err != nil {
				return nil, err
			}
			v.PerPass[k] = c
		}
	}
	return v, nil
}

// boundedElems reads a bitset element list and rejects elements outside
// [0, n): FromWire would otherwise index past the rebuilt set's words.
func (d *decoder) boundedElems(n int) ([]int, error) {
	s, err := d.ints()
	if err != nil {
		return nil, err
	}
	for _, e := range s {
		if e < 0 || e >= n {
			return nil, fmt.Errorf("progdb: bitset element %d out of range [0,%d)", e, n)
		}
	}
	return s, nil
}
