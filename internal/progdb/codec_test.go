package progdb_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"ppd/internal/analysis/absint"
	"ppd/internal/compile"
	"ppd/internal/eblock"
	"ppd/internal/progdb"
	"ppd/internal/workloads"
)

// cachedFrom compiles src and packages the artifacts the way CompileCached
// stores them, vet result included.
func cachedFrom(t testing.TB, name, src string) *progdb.CachedProgram {
	t.Helper()
	cfg := eblock.DefaultConfig()
	art, err := compile.CompileSource(name, src, cfg)
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	return &progdb.CachedProgram{
		SourceName: name,
		Source:     src,
		Config:     cfg,
		Prog:       art.Prog,
		Vet:        art.Vet(nil),
	}
}

func testPrograms(t testing.TB) []*progdb.CachedProgram {
	t.Helper()
	var cps []*progdb.CachedProgram
	for _, w := range workloads.Standard() {
		cps = append(cps, cachedFrom(t, w.Name+".mpl", w.Src))
	}
	return cps
}

func TestCodecRoundTrip(t *testing.T) {
	for _, cp := range testPrograms(t) {
		enc := progdb.Encode(cp)
		if got := progdb.EncodedLen(cp); got != len(enc) {
			t.Errorf("%s: EncodedLen = %d, encoded %d bytes", cp.SourceName, got, len(enc))
		}
		dec, err := progdb.Decode(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v", cp.SourceName, err)
		}
		// Re-encoding the decoded program must reproduce the bytes exactly:
		// the codec is deterministic and loses nothing it stores.
		re := progdb.Encode(dec)
		if !bytes.Equal(enc, re) {
			t.Errorf("%s: re-encode differs (%d vs %d bytes)", cp.SourceName, len(enc), len(re))
		}
		if dec.SourceName != cp.SourceName || dec.Source != cp.Source || dec.Config != cp.Config {
			t.Errorf("%s: identity fields corrupted", cp.SourceName)
		}
		// FuncIdx is rebuilt, not stored.
		for name, idx := range cp.Prog.FuncIdx {
			if dec.Prog.FuncIdx[name] != idx {
				t.Errorf("%s: FuncIdx[%s] = %d, want %d", cp.SourceName, name, dec.Prog.FuncIdx[name], idx)
			}
		}
		if cp.Vet != nil {
			if dec.Vet == nil {
				t.Fatalf("%s: vet result lost", cp.SourceName)
			}
			if got, want := dec.Vet.Text(), cp.Vet.Text(); got != want {
				t.Errorf("%s: vet text differs:\n got: %s\nwant: %s", cp.SourceName, got, want)
			}
			if (dec.Vet.Conflicts == nil) != (cp.Vet.Conflicts == nil) {
				t.Fatalf("%s: conflict matrix presence differs", cp.SourceName)
			}
			if cp.Vet.Conflicts != nil {
				if got, want := dec.Vet.Conflicts.String(), cp.Vet.Conflicts.String(); got != want {
					t.Errorf("%s: conflict matrix differs:\n got: %s\nwant: %s", cp.SourceName, got, want)
				}
				if got, want := dec.Vet.Conflicts.Mask().Elems(), cp.Vet.Conflicts.Mask().Elems(); len(got) != len(want) {
					t.Errorf("%s: rebuilt mask has %d elems, want %d", cp.SourceName, len(got), len(want))
				}
			}
		}
	}
}

func TestCodecVersionMismatch(t *testing.T) {
	cp := cachedFrom(t, "v.mpl", `func main() { print(1); }`)
	enc := progdb.Encode(cp)
	// Byte 4 is the (single-byte) uvarint codec version.
	enc[4] = progdb.CodecVersion + 1
	if _, err := progdb.Decode(enc); err == nil {
		t.Fatal("decode accepted a future codec version")
	}
}

func TestCodecBadMagic(t *testing.T) {
	cp := cachedFrom(t, "m.mpl", `func main() { print(1); }`)
	enc := progdb.Encode(cp)
	enc[0] ^= 0xFF
	if _, err := progdb.Decode(enc); err == nil {
		t.Fatal("decode accepted bad magic")
	}
}

func TestCodecTruncated(t *testing.T) {
	cp := cachedFrom(t, "t.mpl", `
shared g;
sem m = 1;
func inc() { P(m); g = g + 1; V(m); }
func main() { spawn inc(); inc(); }
`)
	enc := progdb.Encode(cp)
	for i := 0; i < len(enc); i++ {
		if _, err := progdb.Decode(enc[:i]); err == nil {
			t.Fatalf("decode accepted truncation to %d/%d bytes", i, len(enc))
		}
	}
}

func TestCodecTrailingGarbage(t *testing.T) {
	cp := cachedFrom(t, "g.mpl", `func main() { print(1); }`)
	enc := append(progdb.Encode(cp), 0x00)
	if _, err := progdb.Decode(enc); err == nil {
		t.Fatal("decode accepted trailing garbage")
	}
}

func TestCodecCorruptNoPanic(t *testing.T) {
	cp := testPrograms(t)[0]
	enc := progdb.Encode(cp)
	// Flip every byte in turn; decode must return (possibly successfully,
	// for don't-care bits) without panicking or over-allocating.
	for i := range enc {
		mut := bytes.Clone(enc)
		mut[i] ^= 0xFF
		_, _ = progdb.Decode(mut)
	}
}

func FuzzArtifactsDecode(f *testing.F) {
	for _, w := range workloads.Standard() {
		f.Add(progdb.Encode(cachedFrom(f, w.Name+".mpl", w.Src)))
	}
	f.Add([]byte("PPDC"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := progdb.Decode(data)
		if err != nil {
			return
		}
		// Anything that decodes must re-encode to a stable byte string.
		enc := progdb.Encode(cp)
		cp2, err := progdb.Decode(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !bytes.Equal(enc, progdb.Encode(cp2)) {
			t.Fatal("re-encode is not a fixed point")
		}
	})
}

func TestCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := &progdb.Cache{Dir: dir}
	cp := testPrograms(t)[0]
	key := progdb.CacheKey(cp.SourceName, cp.Source, cp.Config, "off", absint.Fingerprint)

	if got, _, err := c.Load(key); err != nil || got != nil {
		t.Fatalf("empty cache Load = %v, %v; want miss", got, err)
	}
	size, err := c.Store(key, cp)
	if err != nil {
		t.Fatalf("store: %v", err)
	}
	if size != progdb.EncodedLen(cp) {
		t.Errorf("stored %d bytes, EncodedLen says %d", size, progdb.EncodedLen(cp))
	}
	got, gotSize, err := c.Load(key)
	if err != nil || got == nil {
		t.Fatalf("load after store = %v, %v", got, err)
	}
	if gotSize != size {
		t.Errorf("loaded size %d, stored %d", gotSize, size)
	}
	if !bytes.Equal(progdb.Encode(got), progdb.Encode(cp)) {
		t.Error("loaded entry differs from stored entry")
	}
}

func TestCacheCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	c := &progdb.Cache{Dir: dir}
	cp := cachedFrom(t, "c.mpl", `func main() { print(1); }`)
	key := progdb.CacheKey(cp.SourceName, cp.Source, cp.Config, "off", absint.Fingerprint)
	if _, err := c.Store(key, cp); err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.ppdc"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("cache entries = %v, %v", entries, err)
	}
	if err := os.WriteFile(entries[0], []byte("not a cache entry"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _, err := c.Load(key)
	if err != nil || got != nil {
		t.Fatalf("corrupt entry Load = %v, %v; want clean miss", got, err)
	}
}

func TestCacheKeySensitivity(t *testing.T) {
	cfg := eblock.DefaultConfig()
	base := progdb.CacheKey("a.mpl", "func main() {}", cfg, "off", absint.Fingerprint)
	if progdb.CacheKey("a.mpl", "func main() { }", cfg, "off", absint.Fingerprint) == base {
		t.Error("key ignores source bytes")
	}
	if progdb.CacheKey("b.mpl", "func main() {}", cfg, "off", absint.Fingerprint) == base {
		t.Error("key ignores source name")
	}
	cfg2 := cfg
	cfg2.LeafInlineThreshold++
	if progdb.CacheKey("a.mpl", "func main() {}", cfg2, "off", absint.Fingerprint) == base {
		t.Error("key ignores e-block config")
	}
	if progdb.CacheKey("a.mpl", "func main() {}", cfg, "off", "absint-v2") == base {
		t.Error("key ignores the abstract-interpreter fingerprint")
	}
	if progdb.CacheKey("a.mpl", "func main() {}", cfg, "off", absint.Fingerprint) != base {
		t.Error("key is not deterministic")
	}
}
