// Package progdb implements the paper's program database (§3.2.1, §4.1):
// "information on the program text such as the places where an identifier
// is defined or used", plus "the information obtained by semantic analyses
// of the program, such as the set of variables that may be used or modified
// when invoking a subroutine". The PPD Controller consults it during the
// debugging phase to direct the emulation package and label graph nodes.
package progdb

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"ppd/internal/analysis"
	"ppd/internal/ast"
	"ppd/internal/eblock"
	"ppd/internal/pdg"
	"ppd/internal/sched"
	"ppd/internal/sem"
	"ppd/internal/source"
)

// VarSites records where one variable is defined and used (by StmtID).
type VarSites struct {
	Symbol *sem.Symbol
	Scope  string // "" for globals, else the function name
	Defs   []ast.StmtID
	Uses   []ast.StmtID
}

// StmtInfo is the database's per-statement record.
type StmtInfo struct {
	ID       ast.StmtID
	Func     string
	Pos      source.Position
	Text     string // one-line rendering
	IsBranch bool
	Calls    []string
}

// DB is the program database.
type DB struct {
	Prog *ast.Program
	Info *sem.Info
	PDG  *pdg.Program
	Plan *eblock.Plan

	Stmts map[ast.StmtID]*StmtInfo

	// vars is keyed by "scope\x00name" (scope empty for globals).
	vars map[string]*VarSites

	// vet caches the static-analysis result: the paper's program database
	// stores "the information obtained by semantic analyses of the
	// program", and the vet diagnostics (with their conflict matrix) are
	// exactly that for the analysis passes. Computed once on demand.
	vetMu sync.Mutex
	vet   *analysis.Result
}

// EnsureVet returns the cached static-analysis result, computing it with
// compute on first use. Safe for concurrent callers; compute runs at most
// once per database.
func (db *DB) EnsureVet(compute func() *analysis.Result) *analysis.Result {
	db.vetMu.Lock()
	defer db.vetMu.Unlock()
	if db.vet == nil {
		db.vet = compute()
	}
	return db.vet
}

// Vet returns the persisted static-analysis result, or nil if no analysis
// has run against this database yet.
func (db *DB) Vet() *analysis.Result {
	db.vetMu.Lock()
	defer db.vetMu.Unlock()
	return db.vet
}

// Build assembles the database from the earlier analyses.
func Build(p *pdg.Program, plan *eblock.Plan) *DB {
	return BuildWith(p, plan, nil)
}

// BuildWith is Build with the per-function statement/variable indexing
// fanned out across pool (nil pool runs sequentially). Each function's
// index is collected into a private partial; partials merge in FuncList
// order, reproducing the sequential database exactly — per-variable
// def/use site lists keep their sequential append order.
func BuildWith(p *pdg.Program, plan *eblock.Plan, pool *sched.Pool) *DB {
	db := &DB{
		Prog:  p.Info.Prog,
		Info:  p.Info,
		PDG:   p,
		Plan:  plan,
		Stmts: make(map[ast.StmtID]*StmtInfo),
		vars:  make(map[string]*VarSites),
	}
	for _, g := range p.Info.Globals {
		db.vars[key("", g.Name)] = &VarSites{Symbol: g}
	}
	for _, fn := range p.Info.FuncList {
		for _, l := range fn.Locals {
			db.vars[key(fn.Name(), l.Name)] = &VarSites{Symbol: l, Scope: fn.Name()}
		}
	}
	n := len(p.Info.FuncList)
	var parts []*funcIndex
	if pool == nil {
		parts = make([]*funcIndex, n)
		for i, fn := range p.Info.FuncList {
			parts[i] = db.collectFunc(fn)
		}
	} else {
		parts = sched.Map(pool, n, func(i int) *funcIndex {
			return db.collectFunc(p.Info.FuncList[i])
		})
	}
	for _, part := range parts {
		db.mergeFunc(part)
	}
	return db
}

func key(scope, name string) string { return scope + "\x00" + name }

// funcIndex is one function's database contribution, collected without
// touching the shared maps so collection can run concurrently.
type funcIndex struct {
	stmts []*StmtInfo
	sites []siteContrib
}

// siteContrib is one def or use site of a variable, in the order the
// sequential indexer would have appended it.
type siteContrib struct {
	sym   *sem.Symbol
	scope string // "" for globals
	def   bool
	id    ast.StmtID
}

// collectFunc gathers one function's statement records and variable sites.
// It only reads shared state (AST, PDG, spaces); all output goes into the
// returned partial.
func (db *DB) collectFunc(fn *sem.FuncInfo) *funcIndex {
	f := db.PDG.Funcs[fn.Name()]
	space := f.Space
	file := db.Prog.File
	part := &funcIndex{}
	for _, s := range ast.Stmts(fn.Decl.Body) {
		id := s.ID()
		si := &StmtInfo{
			ID:   id,
			Func: fn.Name(),
			Pos:  file.Position(s.Pos()),
			Text: ast.StmtString(s),
		}
		switch s.(type) {
		case *ast.IfStmt, *ast.WhileStmt, *ast.ForStmt:
			si.IsBranch = true
		}
		if ud, ok := db.PDG.Inter.UseDefs[fn.Name()][id]; ok {
			si.Calls = ud.Calls
			contrib := func(v int, def bool) {
				sc := siteContrib{sym: space.Symbol(v), def: def, id: id}
				if !space.IsGlobal(v) {
					sc.scope = fn.Name()
				}
				part.sites = append(part.sites, sc)
			}
			ud.Def.ForEach(func(v int) { contrib(v, true) })
			ud.Use.ForEach(func(v int) { contrib(v, false) })
		}
		part.stmts = append(part.stmts, si)
	}
	return part
}

// mergeFunc folds one partial into the shared maps. Callers invoke it in
// FuncList order, which makes the merged database identical to the one the
// sequential indexer builds.
func (db *DB) mergeFunc(part *funcIndex) {
	for _, si := range part.stmts {
		db.Stmts[si.ID] = si
	}
	for _, sc := range part.sites {
		k := key(sc.scope, sc.sym.Name)
		vs, ok := db.vars[k]
		if !ok {
			vs = &VarSites{Symbol: sc.sym, Scope: sc.scope}
			db.vars[k] = vs
		}
		if sc.def {
			vs.Defs = append(vs.Defs, sc.id)
		} else {
			vs.Uses = append(vs.Uses, sc.id)
		}
	}
}

// Global returns def/use sites of a global variable, or nil.
func (db *DB) Global(name string) *VarSites { return db.vars[key("", name)] }

// Local returns def/use sites of a function-scoped variable, or nil.
func (db *DB) Local(fn, name string) *VarSites { return db.vars[key(fn, name)] }

// Stmt returns the record for a statement ID, or nil.
func (db *DB) Stmt(id ast.StmtID) *StmtInfo { return db.Stmts[id] }

// FuncUsedDefined reports the interprocedural USED/DEFINED global names of
// a function — the paper's canonical program-database query.
func (db *DB) FuncUsedDefined(fn string) (used, defined []string) {
	s, ok := db.PDG.Inter.Summaries[fn]
	if !ok {
		return nil, nil
	}
	for _, id := range s.Used.Elems() {
		used = append(used, db.Info.Globals[id].Name)
	}
	for _, id := range s.Defined.Elems() {
		defined = append(defined, db.Info.Globals[id].Name)
	}
	return used, defined
}

// DefsOf returns the statements that may define the named variable as seen
// from function fn (locals shadow globals).
func (db *DB) DefsOf(fn, name string) []ast.StmtID {
	if vs := db.Local(fn, name); vs != nil {
		return vs.Defs
	}
	if vs := db.Global(name); vs != nil {
		return vs.Defs
	}
	return nil
}

// Dump renders the whole database; `ppd dump` exposes it.
func (db *DB) Dump() string {
	var b strings.Builder
	b.WriteString("=== program database ===\n")

	b.WriteString("globals:\n")
	for _, g := range db.Info.Globals {
		vs := db.Global(g.Name)
		fmt.Fprintf(&b, "  %-12s %-6s defs=%v uses=%v\n", g.Name, g.Kind, vs.Defs, vs.Uses)
	}

	b.WriteString("functions:\n")
	for _, fn := range db.Info.FuncList {
		used, defined := db.FuncUsedDefined(fn.Name())
		fmt.Fprintf(&b, "  %-12s USED=%v DEFINED=%v\n", fn.Name(), used, defined)
	}

	b.WriteString("statements:\n")
	ids := make([]int, 0, len(db.Stmts))
	for id := range db.Stmts {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		si := db.Stmts[ast.StmtID(id)]
		fmt.Fprintf(&b, "  s%-4d %-10s %4d: %s\n", si.ID, si.Func, si.Pos.Line, si.Text)
	}

	b.WriteString(db.Plan.String())
	return b.String()
}
