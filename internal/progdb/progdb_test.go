package progdb

import (
	"strings"
	"testing"

	"ppd/internal/ast"
	"ppd/internal/eblock"
	"ppd/internal/parser"
	"ppd/internal/pdg"
	"ppd/internal/sem"
	"ppd/internal/source"
)

func buildDB(t *testing.T, src string) *DB {
	t.Helper()
	errs := &source.ErrorList{}
	prog := parser.ParseString("test.mpl", src, errs)
	info := sem.Check(prog, errs)
	if errs.ErrCount() != 0 {
		t.Fatalf("front-end errors:\n%v", errs.Err())
	}
	p := pdg.Build(info)
	return Build(p, eblock.Build(p, eblock.Config{}))
}

const dbSrc = `
var g = 1;
shared sv;
func setg(v int) {
	g = v;
	sv = sv + v;
}
func getg() int { return g; }
func main() {
	setg(3);
	var x = getg();
	print(x);
}
`

func TestGlobalSites(t *testing.T) {
	db := buildDB(t, dbSrc)
	g := db.Global("g")
	if g == nil {
		t.Fatal("no entry for g")
	}
	if len(g.Defs) == 0 || len(g.Uses) == 0 {
		t.Fatalf("g sites: defs=%v uses=%v", g.Defs, g.Uses)
	}
	// g is defined in setg (statement "g=v") and used in getg.
	defTexts := map[string]bool{}
	for _, id := range g.Defs {
		defTexts[db.Stmt(id).Text] = true
	}
	if !defTexts["g=v"] {
		t.Errorf("g defs = %v", defTexts)
	}
	if db.Global("nosuch") != nil {
		t.Error("unknown global should be nil")
	}
}

func TestLocalSites(t *testing.T) {
	db := buildDB(t, dbSrc)
	x := db.Local("main", "x")
	if x == nil {
		t.Fatal("no entry for main/x")
	}
	if len(x.Defs) != 1 || len(x.Uses) != 1 {
		t.Errorf("x sites: defs=%v uses=%v", x.Defs, x.Uses)
	}
	if db.Local("setg", "x") != nil {
		t.Error("x is not in setg's scope")
	}
}

func TestStmtInfo(t *testing.T) {
	db := buildDB(t, dbSrc)
	// Find the call statement setg(3).
	var call *StmtInfo
	for _, si := range db.Stmts {
		if si.Text == "setg(3)" {
			call = si
		}
	}
	if call == nil {
		t.Fatal("no setg(3) statement")
	}
	if call.Func != "main" || len(call.Calls) != 1 || call.Calls[0] != "setg" {
		t.Errorf("call info = %+v", call)
	}
	if call.Pos.Line == 0 {
		t.Error("missing line info")
	}
	if db.Stmt(ast.StmtID(9999)) != nil {
		t.Error("unknown stmt should be nil")
	}
}

func TestFuncUsedDefined(t *testing.T) {
	db := buildDB(t, dbSrc)
	used, defined := db.FuncUsedDefined("setg")
	joinU, joinD := strings.Join(used, ","), strings.Join(defined, ",")
	if !strings.Contains(joinD, "g") || !strings.Contains(joinD, "sv") {
		t.Errorf("setg defined = %v", defined)
	}
	if !strings.Contains(joinU, "sv") {
		t.Errorf("setg used = %v", used)
	}
	// main transitively defines g via setg.
	_, mainD := db.FuncUsedDefined("main")
	if !strings.Contains(strings.Join(mainD, ","), "g") {
		t.Errorf("main defined = %v", mainD)
	}
	u, d := db.FuncUsedDefined("nosuch")
	if u != nil || d != nil {
		t.Error("unknown func should return nils")
	}
}

func TestDefsOfShadowing(t *testing.T) {
	db := buildDB(t, `
var v = 1;
func f() {
	var v = 2;
	v = 3;
}
func main() { v = 4; f(); }
`)
	// From f's perspective, v is the local.
	fDefs := db.DefsOf("f", "v")
	for _, id := range fDefs {
		if db.Stmt(id).Func != "f" {
			t.Errorf("f's v defs include %s", db.Stmt(id).Func)
		}
	}
	// From main's perspective, v is the global.
	mDefs := db.DefsOf("main", "v")
	found := false
	for _, id := range mDefs {
		if db.Stmt(id).Text == "v=4" {
			found = true
		}
	}
	if !found {
		t.Errorf("main's v defs = %v", mDefs)
	}
	if db.DefsOf("main", "zzz") != nil {
		t.Error("unknown var should be nil")
	}
}

func TestBranchFlag(t *testing.T) {
	db := buildDB(t, `
func main() {
	var a = 1;
	if (a > 0) { a = 2; }
	while (a < 9) { a = a + 1; }
}`)
	branches, plain := 0, 0
	for _, si := range db.Stmts {
		if si.IsBranch {
			branches++
		} else {
			plain++
		}
	}
	if branches != 2 {
		t.Errorf("branches = %d, want 2", branches)
	}
	if plain == 0 {
		t.Error("no plain statements recorded")
	}
}

func TestDump(t *testing.T) {
	db := buildDB(t, dbSrc)
	dump := db.Dump()
	for _, want := range []string{
		"=== program database ===",
		"globals:", "functions:", "statements:", "e-block plan",
		"setg", "sv", "USED=", "DEFINED=",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q", want)
		}
	}
}
