package progdb_test

import (
	"os"
	"path/filepath"
	"testing"

	"ppd/internal/analysis/absint"
	"ppd/internal/bytecode"
	"ppd/internal/compile"
	"ppd/internal/eblock"
	"ppd/internal/progdb"
	"ppd/internal/workloads"
)

// TestCodecPreservesSuper pins the v2 codec's superinstruction side
// tables: a fused program round-trips with every SuperInstr intact, so a
// warm cache hit executes through the same fast paths as a cold compile.
func TestCodecPreservesSuper(t *testing.T) {
	for _, cp := range testPrograms(t) {
		if cp.Prog.NumSuper() == 0 {
			t.Fatalf("%s: compile produced no superinstructions; codec test is vacuous", cp.SourceName)
		}
		dec, err := progdb.Decode(progdb.Encode(cp))
		if err != nil {
			t.Fatalf("%s: decode: %v", cp.SourceName, err)
		}
		if got, want := dec.Prog.NumSuper(), cp.Prog.NumSuper(); got != want {
			t.Fatalf("%s: decoded %d superinstructions, want %d", cp.SourceName, got, want)
		}
		for fi, f := range cp.Prog.Funcs {
			df := dec.Prog.Funcs[fi]
			if len(f.Super) != len(df.Super) {
				t.Fatalf("%s/%s: Super len %d, want %d", cp.SourceName, f.Name, len(df.Super), len(f.Super))
			}
			for pc := range f.Super {
				if f.Super[pc] != df.Super[pc] {
					t.Errorf("%s/%s pc %d: Super %+v, want %+v",
						cp.SourceName, f.Name, pc, df.Super[pc], f.Super[pc])
				}
			}
		}
	}
}

// TestCodecRejectsCorruptSuper feeds the decoder side tables that violate
// its invariants — out-of-range opcode, impossible width, fused window
// past the end of Code — and requires a decode error for each, so a
// corrupted cache entry can never reach the dispatch loop.
func TestCodecRejectsCorruptSuper(t *testing.T) {
	corrupt := []struct {
		name string
		mut  func(s *bytecode.SuperInstr, pc int)
	}{
		{"op out of range", func(s *bytecode.SuperInstr, pc int) { s.Op = bytecode.NumSuperOps }},
		{"width too small", func(s *bytecode.SuperInstr, pc int) { s.W = 1 }},
		{"width too large", func(s *bytecode.SuperInstr, pc int) { s.W = 5 }},
		{"window past end", func(s *bytecode.SuperInstr, pc int) { s.W = 4 }},
	}
	for _, tc := range corrupt {
		t.Run(tc.name, func(t *testing.T) {
			cp := cachedFrom(t, "s.mpl", `func main() { print(1); }`)
			f := cp.Prog.Funcs[0]
			pc := len(f.Code) - 2
			if f.Super == nil {
				f.Super = make([]bytecode.SuperInstr, len(f.Code))
			}
			s := &f.Super[pc]
			*s = bytecode.SuperInstr{Op: bytecode.SuperCmpJf, W: 2}
			tc.mut(s, pc)
			if _, err := progdb.Decode(progdb.Encode(cp)); err == nil {
				t.Fatalf("decoder accepted corrupt side table (%s)", tc.name)
			}
		})
	}
}

// TestCodecPreservesWidenedAndFacts pins the fields the v3 codec added:
// the certificate-widened fusion count, the abstract-interpretation fact
// counters, and the lockset-pruned guard list must all survive a
// round-trip, so a warm cache hit answers `ppd vet -json` and
// `ppd stats` identically to a cold compile.
func TestCodecPreservesWidenedAndFacts(t *testing.T) {
	cfg := eblock.DefaultConfig()
	w := workloads.Histo(20)
	art, err := compile.CompileFusedSource(w.Name+".mpl", w.Src, cfg, bytecode.DefaultFusionTable())
	if err != nil {
		t.Fatal(err)
	}
	if art.Prog.WidenedSuper == 0 {
		t.Fatal("histo compile produced no certificate-widened windows; test is vacuous")
	}
	cp := &progdb.CachedProgram{
		SourceName: w.Name + ".mpl", Source: w.Src, Config: cfg,
		Prog: art.Prog, Vet: art.Vet(nil),
	}
	dec, err := progdb.Decode(progdb.Encode(cp))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Prog.WidenedSuper != cp.Prog.WidenedSuper {
		t.Errorf("WidenedSuper = %d, want %d", dec.Prog.WidenedSuper, cp.Prog.WidenedSuper)
	}
	if cp.Vet.Facts.Intervals == 0 || cp.Vet.Facts.Nonzero == 0 {
		t.Fatalf("histo vet carries no facts; test is vacuous: %+v", cp.Vet.Facts)
	}
	if dec.Vet.Facts != cp.Vet.Facts {
		t.Errorf("facts counters = %+v, want %+v", dec.Vet.Facts, cp.Vet.Facts)
	}

	gc := cachedFrom(t, "guarded.mpl", workloads.GuardedCounter(2, 5).Src)
	if len(gc.Vet.Conflicts.Guarded) == 0 {
		t.Fatal("guarded-counter vet pruned nothing; test is vacuous")
	}
	gdec, err := progdb.Decode(progdb.Encode(gc))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := gdec.Vet.Conflicts.Guarded, gc.Vet.Conflicts.Guarded; len(got) != len(want) {
		t.Fatalf("guard list length = %d, want %d", len(got), len(want))
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("guard[%d] = %+v, want %+v", i, got[i], want[i])
			}
		}
	}
}

// TestCacheKeyFusionSensitivity: enabling, disabling, or reshaping the
// fusion table must change the content address, so a cache directory can
// serve fused and unfused compiles side by side without cross-talk.
func TestCacheKeyFusionSensitivity(t *testing.T) {
	cfg := eblock.DefaultConfig()
	off := progdb.CacheKey("a.mpl", "func main() {}", cfg, "off", absint.Fingerprint)
	full := progdb.CacheKey("a.mpl", "func main() {}", cfg, bytecode.DefaultFusionTable().Fingerprint(), absint.Fingerprint)
	all := progdb.CacheKey("a.mpl", "func main() {}", cfg, bytecode.AllPatterns().Fingerprint(), absint.Fingerprint)
	if off == full || full == all || off == all {
		t.Errorf("fusion fingerprint does not separate cache keys: off=%s full=%s all=%s", off, full, all)
	}
	var nilTab *bytecode.FusionTable
	if nilTab.Fingerprint() != "off" {
		t.Errorf("nil table fingerprint = %q, want off", nilTab.Fingerprint())
	}
}

// TestCacheOldCodecVersionIsMiss: after a codec version bump, entries
// written by the previous version must read as clean misses (recompile
// and overwrite), never as errors or stale programs.
func TestCacheOldCodecVersionIsMiss(t *testing.T) {
	dir := t.TempDir()
	c := &progdb.Cache{Dir: dir}
	cp := cachedFrom(t, "old.mpl", `func main() { print(1); }`)
	key := progdb.CacheKey(cp.SourceName, cp.Source, cp.Config, "off", absint.Fingerprint)
	if _, err := c.Store(key, cp); err != nil {
		t.Fatal(err)
	}
	// Rewrite the stored entry with the previous codec version byte, as a
	// pre-bump ppd binary would have left it (v1 had no Super tables; a
	// version mismatch alone must already reject it).
	enc := progdb.Encode(cp)
	enc[4] = progdb.CodecVersion - 1
	if err := os.WriteFile(filepath.Join(dir, key+".ppdc"), enc, 0o644); err != nil {
		t.Fatal(err)
	}
	got, _, err := c.Load(key)
	if err != nil || got != nil {
		t.Fatalf("old-version entry Load = %v, %v; want clean miss", got, err)
	}
}
