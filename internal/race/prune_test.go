package race

import (
	"strings"
	"testing"

	"ppd/internal/analysis"
	"ppd/internal/compile"
	"ppd/internal/eblock"
	"ppd/internal/obs"
	"ppd/internal/parallel"
	"ppd/internal/vm"
	"ppd/internal/workloads"
)

// pruneCases covers every standard workload plus the conflict-sparse
// sharded shape, both racy-counter variants, and the fully lock-guarded
// counter (whose mask the lockset analysis empties), across two seeds —
// the matrix the masked detectors must be golden-equivalent on.
func pruneCases() []*workloads.Workload {
	wls := workloads.Standard()
	wls = append(wls,
		workloads.Sharded(4, 40),
		workloads.RacyCounter(3, 25, false),
		workloads.RacyCounter(3, 25, true),
		workloads.GuardedCounter(3, 25),
	)
	return wls
}

func renderAll(rs []*Race) string {
	var sb strings.Builder
	for _, r := range rs {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestMaskedEquivalentToUnfiltered pins the static filter's soundness
// end to end: on every workload and seed, the masked Indexed and Parallel
// detectors report byte-identical races to the unfiltered Indexed.
func TestMaskedEquivalentToUnfiltered(t *testing.T) {
	for _, wl := range pruneCases() {
		for _, seed := range []int64{0, 3} {
			art, err := compile.CompileSource(wl.Name, wl.Src, eblock.DefaultConfig())
			if err != nil {
				t.Fatalf("compile %s: %v", wl.Name, err)
			}
			v := vm.New(art.Prog, vm.Options{Mode: vm.ModeLog, Seed: seed, Quantum: 7})
			if err := v.Run(); err != nil {
				t.Fatalf("run %s: %v", wl.Name, err)
			}
			g := parallel.Build(v.Log, len(art.Prog.Globals))
			mask := analysis.Analyze(art.PDG, art.Prog, nil).Conflicts.Mask()

			want := renderAll(Indexed(g))
			if got := renderAll(IndexedMasked(g, mask, nil)); got != want {
				t.Errorf("%s seed %d: IndexedMasked diverges\nmask: %s\ngot:\n%swant:\n%s",
					wl.Name, seed, mask, got, want)
			}
			if got := renderAll(ParallelMasked(g, 4, mask, nil)); got != want {
				t.Errorf("%s seed %d: ParallelMasked diverges\nmask: %s\ngot:\n%swant:\n%s",
					wl.Name, seed, mask, got, want)
			}
		}
	}
}

// TestMaskPrunesShardedBuckets pins the payoff: the sharded workload's
// per-worker shards have no static conflicts, so the masked detector
// skips their buckets entirely (and still agrees with the unfiltered
// detector, per the equivalence test above).
func TestMaskPrunesShardedBuckets(t *testing.T) {
	wl := workloads.Sharded(4, 40)
	art, err := compile.CompileSource(wl.Name, wl.Src, eblock.Config{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	v := vm.New(art.Prog, vm.Options{Mode: vm.ModeLog, Seed: 0, Quantum: 3})
	if err := v.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	g := parallel.Build(v.Log, len(art.Prog.Globals))
	res := analysis.Analyze(art.PDG, art.Prog, nil)
	mask := res.Conflicts.Mask()

	sink := obs.New()
	races := IndexedMasked(g, mask, sink)
	if len(races) != 0 {
		t.Fatalf("sharded workload should be race-free, got %d races", len(races))
	}
	snap := sink.Snapshot()
	if snap.Counters["race.buckets.pruned"] == 0 {
		t.Fatalf("expected pruned buckets on the conflict-sparse workload; counters: %v", snap.Counters)
	}
	if snap.Counters["race.pairs"] != 0 {
		t.Fatalf("all accessed variables are conflict-free; expected 0 candidate pairs, got %d",
			snap.Counters["race.pairs"])
	}
}

// TestLocksetPrunesGuardedCounter pins the abstract interpreter's
// contribution to the static filter: on the guarded-counter workload the
// lockset analysis proves every access to the counter holds m, so the
// conflict mask is empty, the detector scans zero candidate pairs, and
// the safe-counter control (same program, but main reads the counter
// without the lock) keeps the counter in its mask.
func TestLocksetPrunesGuardedCounter(t *testing.T) {
	wl := workloads.GuardedCounter(3, 25)
	art, err := compile.CompileSource(wl.Name, wl.Src, eblock.DefaultConfig())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res := analysis.Analyze(art.PDG, art.Prog, nil)
	if len(res.Conflicts.Guarded) == 0 {
		t.Fatal("lockset analysis pruned nothing on the fully guarded counter")
	}
	mask := res.Conflicts.Mask()
	if !mask.IsEmpty() {
		t.Fatalf("guarded counter should empty the conflict mask, got %s", mask)
	}

	v := vm.New(art.Prog, vm.Options{Mode: vm.ModeLog, Seed: 0, Quantum: 7})
	if err := v.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	g := parallel.Build(v.Log, len(art.Prog.Globals))
	sink := obs.New()
	if races := IndexedMasked(g, mask, sink); len(races) != 0 {
		t.Fatalf("guarded counter must be race-free, got %d races", len(races))
	}
	if pairs := sink.Snapshot().Counters["race.pairs"]; pairs != 0 {
		t.Fatalf("lock-guarded variable still scanned: %d candidate pairs", pairs)
	}

	control := workloads.RacyCounter(3, 25, true)
	cart, err := compile.CompileSource(control.Name, control.Src, eblock.DefaultConfig())
	if err != nil {
		t.Fatalf("compile control: %v", err)
	}
	if m := analysis.Analyze(cart.PDG, cart.Prog, nil).Conflicts.Mask(); m.IsEmpty() {
		t.Fatal("safe-counter control should keep its counter in the mask (main reads it unlocked)")
	}
}

// TestRaceNamesFromGraph checks satellite coverage for named reports:
// when the graph carries variable names, Race.String and Report print
// them instead of raw GlobalIDs.
func TestRaceNamesFromGraph(t *testing.T) {
	wl := workloads.RacyCounter(3, 10, false)
	art, err := compile.CompileSource(wl.Name, wl.Src, eblock.Config{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	v := vm.New(art.Prog, vm.Options{Mode: vm.ModeLog, Seed: 0, Quantum: 3})
	if err := v.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	g := parallel.Build(v.Log, len(art.Prog.Globals))
	names := make([]string, len(art.Prog.Globals))
	for gid, def := range art.Prog.Globals {
		names[gid] = def.Name
	}
	g.VarNames = names
	races := Indexed(g)
	if len(races) == 0 {
		t.Fatal("expected races on the unprotected counter")
	}
	for _, r := range races {
		if !strings.Contains(r.String(), "counter") {
			t.Fatalf("Race.String should name the variable, got %q", r.String())
		}
		if strings.Contains(r.String(), "[0]") {
			t.Fatalf("Race.String still prints raw IDs: %q", r.String())
		}
	}
	rep := Report(races, nil)
	if !strings.Contains(rep, "counter") {
		t.Fatalf("Report without a name func should use graph names:\n%s", rep)
	}
}

// BenchmarkRacePruned measures the masked detector on the conflict-sparse
// sharded workload against the unfiltered baseline (BenchmarkRaceIndexed
// shape); E16 reports the same comparison.
func BenchmarkRacePruned(b *testing.B) {
	wl := workloads.Sharded(8, 120)
	art, err := compile.CompileSource(wl.Name, wl.Src, eblock.Config{})
	if err != nil {
		b.Fatal(err)
	}
	v := vm.New(art.Prog, vm.Options{Mode: vm.ModeLog, Seed: 0, Quantum: 3})
	if err := v.Run(); err != nil {
		b.Fatal(err)
	}
	g := parallel.Build(v.Log, len(art.Prog.Globals))
	mask := analysis.Analyze(art.PDG, art.Prog, nil).Conflicts.Mask()
	b.Run("unfiltered", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Indexed(g)
		}
	})
	b.Run("masked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			IndexedMasked(g, mask, nil)
		}
	})
}
