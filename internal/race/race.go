// Package race detects race conditions in an execution instance per the
// paper's §6.4: two *simultaneous* internal edges (Definition 6.1) race
// when their shared READ/WRITE sets conflict (Definition 6.3); an execution
// instance is race-free when no pair races (Definition 6.4).
//
// Two detectors are provided. Naive enumerates all pairs of internal edges
// from different processes — the quadratic cost the paper's §7 names as the
// open problem ("finding all pairs of possible conflicting edges is more
// expensive ... we are currently investigating algorithms to reduce the
// cost"). Indexed is such an algorithm: it buckets edges by the shared
// variable they touch, so only edges that can possibly conflict are ever
// compared, and each comparison is an O(P) vector-clock check. Experiment
// E8 benchmarks the two against each other.
package race

import (
	"fmt"
	"sort"
	"strings"

	"ppd/internal/bitset"
	"ppd/internal/obs"
	"ppd/internal/parallel"
	"ppd/internal/sched"
)

// Conflict classifies a race by access kinds.
type Conflict int

// Conflict kinds (Definition 6.3's three intersection tests).
const (
	WriteWrite Conflict = iota
	WriteRead           // e1 writes, e2 reads
	ReadWrite           // e1 reads, e2 writes
)

func (c Conflict) String() string {
	switch c {
	case WriteWrite:
		return "write/write"
	case WriteRead:
		return "write/read"
	case ReadWrite:
		return "read/write"
	}
	return "?"
}

// Race is one detected race: two simultaneous edges and the variables they
// conflict on.
type Race struct {
	E1, E2 *parallel.InternalEdge
	Kind   Conflict
	Vars   []int // GlobalIDs in conflict
	// Names holds the source names of Vars when the graph carries them
	// (parallel.Graph.VarNames); reports prefer names over raw IDs.
	Names []string
}

// VarNames renders the conflicting variables: source names when known,
// GlobalIDs otherwise.
func (r *Race) VarNames() string {
	if len(r.Names) == len(r.Vars) && len(r.Names) > 0 {
		return strings.Join(r.Names, ",")
	}
	return fmt.Sprintf("%v", r.Vars)
}

// String renders the race for reports.
func (r *Race) String() string {
	return fmt.Sprintf("%s race between P%d edge %d and P%d edge %d on %s",
		r.Kind, r.E1.PID+1, r.E1.ID, r.E2.PID+1, r.E2.ID, r.VarNames())
}

// pairKey canonicalizes a race for deduplication: the edge pair in ID
// order plus the conflict kind. The variables in conflict are fully
// determined by (pair, kind) — the bitset intersection is deterministic —
// so a comparable struct suffices and the dedup map never touches
// fmt.Sprintf.
type pairKey struct {
	a, b int
	kind Conflict
}

// key canonicalizes a race for deduplication across detectors.
func (r *Race) key() pairKey {
	a, b := r.E1.ID, r.E2.ID
	if a > b {
		a, b = b, a
	}
	return pairKey{a, b, r.Kind}
}

// checkPair applies Definition 6.3 to a pair of simultaneous edges,
// returning the races found (possibly several kinds). Each intersection is
// one fused pass (bitset.Intersection) instead of an Intersects probe
// followed by Clone+IntersectWith.
func checkPair(g *parallel.Graph, e1, e2 *parallel.InternalEdge) []*Race {
	// Canonical orientation so both detectors classify a conflict the same
	// way regardless of discovery order.
	if e1.ID > e2.ID {
		e1, e2 = e2, e1
	}
	return CheckOrientedPair(e1, e2, g.VarNames)
}

// CheckOrientedPair is checkPair without the re-orientation: the caller
// has already put the pair in canonical order. The streaming detector
// needs this split because it classifies pairs while edges still carry
// process-local IDs — raw ID order would mis-orient a cross-process pair,
// but (PID, local index) order equals final global ID order, so the
// stream orients by that and the classification matches the batch
// detector's exactly. varNames, when non-nil, resolves conflict variables
// to source names (the batch path passes Graph.VarNames).
func CheckOrientedPair(e1, e2 *parallel.InternalEdge, varNames []string) []*Race {
	mk := func(kind Conflict, inter *bitset.Set) *Race {
		r := &Race{E1: e1, E2: e2, Kind: kind, Vars: inter.Elems()}
		if varNames != nil {
			r.Names = make([]string, len(r.Vars))
			for i, v := range r.Vars {
				r.Names[i] = varNames[v]
			}
		}
		return r
	}
	var out []*Race
	if inter, ok := bitset.Intersection(e1.Writes, e2.Writes); ok {
		out = append(out, mk(WriteWrite, inter))
	}
	if inter, ok := bitset.Intersection(e1.Writes, e2.Reads); ok {
		out = append(out, mk(WriteRead, inter))
	}
	if inter, ok := bitset.Intersection(e1.Reads, e2.Writes); ok {
		out = append(out, mk(ReadWrite, inter))
	}
	return out
}

// Naive enumerates every pair of internal edges from different processes,
// tests simultaneity, then conflicts. O(E² · (P + V/64)).
func Naive(g *parallel.Graph) []*Race {
	var out []*Race
	for i := 0; i < len(g.Edges); i++ {
		for j := i + 1; j < len(g.Edges); j++ {
			e1, e2 := g.Edges[i], g.Edges[j]
			if e1.PID == e2.PID {
				continue
			}
			if !g.Simultaneous(e1, e2) {
				continue
			}
			out = append(out, checkPair(g, e1, e2)...)
		}
	}
	return dedup(out)
}

// buckets indexes the graph's internal edges per shared variable,
// separately for readers and writers — the candidate sets Definition 6.3
// can ever accept.
func buckets(g *parallel.Graph) (readers, writers [][]*parallel.InternalEdge) {
	nv := g.NumShared()
	readers = make([][]*parallel.InternalEdge, nv)
	writers = make([][]*parallel.InternalEdge, nv)
	for _, e := range g.Edges {
		e.Reads.ForEach(func(v int) { readers[v] = append(readers[v], e) })
		e.Writes.ForEach(func(v int) { writers[v] = append(writers[v], e) })
	}
	return readers, writers
}

// scanVars tests every candidate pair of the variables in [lo, hi),
// appending the races found. Pairs sharing several variables are tested
// once per variable; the duplicate Race entries that produces are removed
// by dedup — cheaper than tracking visited pairs in a map. pairs counts
// candidate pairs tested (a plain local counter; the caller folds it into
// its sink only when observation is enabled).
// mask, when non-nil, is the static conflict mask: buckets of variables
// outside it are skipped entirely (pruned counts them). Soundness: the
// mask over-approximates every variable two processes can conflict on, so
// a skipped bucket can contain no racing pair — any race discoverable via
// a pruned variable conflicts on that variable, which would have put it
// in the mask.
func scanVars(g *parallel.Graph, readers, writers [][]*parallel.InternalEdge, lo, hi int, mask *bitset.Set, pairs, pruned *int64) []*Race {
	var out []*Race
	tryPair := func(e1, e2 *parallel.InternalEdge) {
		if e1.PID == e2.PID {
			return
		}
		*pairs++
		if !g.Simultaneous(e1, e2) {
			return
		}
		out = append(out, checkPair(g, e1, e2)...)
	}
	for v := lo; v < hi; v++ {
		if mask != nil && !mask.Has(v) {
			if len(writers[v]) > 0 || len(readers[v]) > 0 {
				*pruned++
			}
			continue
		}
		// write/write and write/read candidates.
		for i, w := range writers[v] {
			for _, w2 := range writers[v][i+1:] {
				tryPair(w, w2)
			}
			for _, r := range readers[v] {
				tryPair(w, r)
			}
		}
	}
	return out
}

// Indexed buckets edges per shared variable (separately for readers and
// writers), then tests only pairs sharing a variable — the candidate set
// Definition 6.3 can ever accept. For typical programs the buckets are
// small, eliminating the quadratic sweep over unrelated edges.
func Indexed(g *parallel.Graph) []*Race { return IndexedObs(g, nil) }

// IndexedObs is Indexed reporting detector metrics to sink: candidate
// pairs tested ("race.pairs"), races found ("race.races"), and detection
// time (the "debug.race" scope). A nil sink disables observation.
func IndexedObs(g *parallel.Graph, sink *obs.Sink) []*Race {
	return IndexedMasked(g, nil, sink)
}

// IndexedMasked is Indexed with an optional static conflict filter: when
// mask is non-nil, per-variable buckets outside it are skipped without
// scanning ("race.buckets.pruned" counts them). The mask must
// over-approximate the statically-possible conflicts (analysis.
// ConflictMatrix.Mask does); the result is then identical to the
// unfiltered detector's. A nil mask scans everything.
func IndexedMasked(g *parallel.Graph, mask *bitset.Set, sink *obs.Sink) []*Race {
	sc := sink.Scope("debug.race")
	defer sc.End()
	readers, writers := buckets(g)
	var pairs, pruned int64
	out := dedup(scanVars(g, readers, writers, 0, g.NumShared(), mask, &pairs, &pruned))
	record(sink, pairs, pruned, len(out))
	return out
}

// chunkScan is one worker's share of a sharded scan: the races plus the
// pair count of a contiguous variable range.
type chunkScan struct {
	races  []*Race
	pairs  int64
	pruned int64
}

// Parallel is Indexed with the per-variable buckets sharded across a
// bounded worker pool: each worker scans a contiguous range of shared
// variables (the buckets are independent by construction), the per-worker
// race slices are merged in variable order, and dedup canonicalizes —
// so the result is identical to Indexed's, slice order included. workers
// <= 0 selects GOMAXPROCS; one worker (or one variable) degenerates to
// the sequential scan with no goroutines.
func Parallel(g *parallel.Graph, workers int) []*Race {
	return ParallelObs(g, workers, nil)
}

// ParallelObs is Parallel reporting detector metrics to sink (see
// IndexedObs). Each worker counts pairs in a plain local; the counts are
// folded into the sink once after the merge, so the hot scan never
// touches an atomic. A nil sink disables observation.
func ParallelObs(g *parallel.Graph, workers int, sink *obs.Sink) []*Race {
	return ParallelMasked(g, workers, nil, sink)
}

// ParallelMasked is Parallel with the same optional static conflict
// filter as IndexedMasked; pruning happens inside each worker's variable
// range, so the sharding (and therefore the merged, deduped result) is
// unchanged.
func ParallelMasked(g *parallel.Graph, workers int, mask *bitset.Set, sink *obs.Sink) []*Race {
	sc := sink.Scope("debug.race")
	defer sc.End()
	readers, writers := buckets(g)
	parts := sched.ChunkMap(sched.NewObs(workers, sink), g.NumShared(),
		func(lo, hi int) chunkScan {
			var cs chunkScan
			cs.races = scanVars(g, readers, writers, lo, hi, mask, &cs.pairs, &cs.pruned)
			return cs
		})
	var all []*Race
	var pairs, pruned int64
	for _, part := range parts {
		all = append(all, part.races...)
		pairs += part.pairs
		pruned += part.pruned
	}
	out := dedup(all)
	record(sink, pairs, pruned, len(out))
	return out
}

// record folds one detection run's tallies into the sink.
func record(sink *obs.Sink, pairs, pruned int64, races int) {
	if sink == nil {
		return
	}
	sink.Counter("race.pairs").Add(pairs)
	sink.Counter("race.races").Add(int64(races))
	sink.Counter("race.buckets.pruned").Add(pruned)
	sink.Counter("race.runs").Inc()
}

// Canonicalize dedups and sorts races into the canonical report order —
// (E1.ID, E2.ID, Kind) ascending, first occurrence kept. The batch
// detectors apply it internally; the streaming detector applies it after
// renumbering its retained edges into the global ID space, which is what
// makes its final race set byte-identical to the batch oracle's.
func Canonicalize(rs []*Race) []*Race { return dedup(rs) }

func dedup(rs []*Race) []*Race {
	seen := make(map[pairKey]bool)
	var out []*Race
	for _, r := range rs {
		k := r.key()
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].E1.ID != out[j].E1.ID {
			return out[i].E1.ID < out[j].E1.ID
		}
		if out[i].E2.ID != out[j].E2.ID {
			return out[i].E2.ID < out[j].E2.ID
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// RaceFree implements Definition 6.4 for an execution instance.
func RaceFree(g *parallel.Graph) bool {
	return len(Indexed(g)) == 0
}

// Report renders races with variable names resolved.
func Report(races []*Race, globalName func(int) string) string {
	if len(races) == 0 {
		return "no races detected: the execution instance is race-free (Def 6.4)\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d race(s) detected:\n", len(races))
	for _, r := range races {
		joined := r.VarNames()
		if globalName != nil {
			names := make([]string, len(r.Vars))
			for i, v := range r.Vars {
				names[i] = globalName(v)
			}
			joined = strings.Join(names, ",")
		}
		fmt.Fprintf(&sb, "  %s race: P%d [events %d..%d] vs P%d [events %d..%d] on %s\n",
			r.Kind, r.E1.PID+1, r.E1.Start, r.E1.End,
			r.E2.PID+1, r.E2.Start, r.E2.End, joined)
	}
	return sb.String()
}
