package race

import (
	"fmt"
	"strings"
	"testing"

	"ppd/internal/bitset"
	"ppd/internal/compile"
	"ppd/internal/eblock"
	"ppd/internal/logging"
	"ppd/internal/obs"
	"ppd/internal/parallel"
	"ppd/internal/vm"
	"ppd/internal/workloads"
)

func detect(t *testing.T, src string, opts vm.Options) ([]*Race, *parallel.Graph, *compile.Artifacts) {
	t.Helper()
	art, err := compile.CompileSource("test.mpl", src, eblock.Config{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	opts.Mode = vm.ModeLog
	v := vm.New(art.Prog, opts)
	if err := v.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	g := parallel.Build(v.Log, len(art.Prog.Globals))
	return Indexed(g), g, art
}

// TestSection63Race reproduces the paper's §6.3 example: SV written in
// edge e1 (P1) and read in edge e3 (P3), properly ordered through
// synchronization — race-free. Adding an unsynchronized write in edge e2
// (P2) creates a race.
func TestSection63RaceFreeCase(t *testing.T) {
	src := `
shared SV;
sem s1 = 0;
sem done = 0;
func p1() {
	SV = 10;
	V(s1);
	V(done);
}
func p3() {
	P(s1);
	print(SV);
	V(done);
}
func main() {
	spawn p1();
	spawn p3();
	P(done);
	P(done);
}`
	races, g, _ := detect(t, src, vm.Options{Quantum: 1})
	if len(races) != 0 {
		t.Errorf("expected race-free instance, got:\n%s\ngraph:\n%s",
			Report(races, func(i int) string { return "g" }), g)
	}
	if !RaceFree(g) {
		t.Error("RaceFree must agree")
	}
}

func TestSection63RaceCase(t *testing.T) {
	// Same as above plus p2's unsynchronized write to SV: now the write in
	// p2 races with both p1's write and p3's read.
	src := `
shared SV;
sem s1 = 0;
sem done = 0;
func p1() {
	SV = 10;
	V(s1);
	V(done);
}
func p2() {
	SV = 20;
	V(done);
}
func p3() {
	P(s1);
	print(SV);
	V(done);
}
func main() {
	spawn p1();
	spawn p2();
	spawn p3();
	P(done);
	P(done);
	P(done);
}`
	races, g, art := detect(t, src, vm.Options{Quantum: 1})
	if len(races) == 0 {
		t.Fatalf("expected races, found none:\n%s", g)
	}
	kinds := map[Conflict]bool{}
	for _, r := range races {
		kinds[r.Kind] = true
		for _, v := range r.Vars {
			if art.Info.Globals[v].Name != "SV" {
				t.Errorf("race on %s, want SV", art.Info.Globals[v].Name)
			}
		}
	}
	if !kinds[WriteWrite] {
		t.Error("missing write/write race (p1 vs p2)")
	}
	if !kinds[WriteRead] && !kinds[ReadWrite] {
		t.Error("missing write/read race (p2 vs p3)")
	}
}

func TestProtectedCounterRaceFree(t *testing.T) {
	src := `
shared counter;
sem m = 1;
sem done = 0;
func w() {
	var i = 0;
	while (i < 5) {
		P(m);
		counter = counter + 1;
		V(m);
		i = i + 1;
	}
	V(done);
}
func main() {
	spawn w();
	spawn w();
	P(done);
	P(done);
	print(counter);
}`
	for _, seed := range []int64{0, 1, 9} {
		races, _, _ := detect(t, src, vm.Options{Quantum: 1, Seed: seed})
		if len(races) != 0 {
			t.Errorf("seed %d: mutex-protected counter reported racy: %v", seed, races)
		}
	}
}

func TestUnprotectedCounterRaces(t *testing.T) {
	src := `
shared counter;
sem done = 0;
func w() {
	counter = counter + 1;
	V(done);
}
func main() {
	spawn w();
	spawn w();
	P(done);
	P(done);
}`
	races, _, _ := detect(t, src, vm.Options{Quantum: 1})
	if len(races) == 0 {
		t.Fatal("unprotected counter must race")
	}
	// Both write/write and read/write conflicts exist.
	kinds := map[Conflict]bool{}
	for _, r := range races {
		kinds[r.Kind] = true
	}
	if !kinds[WriteWrite] {
		t.Error("missing write/write")
	}
}

func TestNaiveAndIndexedAgree(t *testing.T) {
	srcs := []string{
		// racy
		`
shared a; shared b;
sem done = 0;
func w1() { a = 1; b = a + 1; V(done); }
func w2() { b = 2; a = b * 3; V(done); }
func main() { spawn w1(); spawn w2(); P(done); P(done); }`,
		// race-free
		`
shared a;
sem m = 1;
sem done = 0;
func w() { P(m); a = a + 1; V(m); V(done); }
func main() { spawn w(); spawn w(); P(done); P(done); }`,
		// disjoint variables: no conflicts at all
		`
shared a; shared b;
sem done = 0;
func w1() { a = 1; V(done); }
func w2() { b = 2; V(done); }
func main() { spawn w1(); spawn w2(); P(done); P(done); }`,
	}
	for i, src := range srcs {
		for _, seed := range []int64{0, 4} {
			art, err := compile.CompileSource("agree.mpl", src, eblock.Config{})
			if err != nil {
				t.Fatal(err)
			}
			v := vm.New(art.Prog, vm.Options{Mode: vm.ModeLog, Seed: seed, Quantum: 1})
			if err := v.Run(); err != nil {
				t.Fatal(err)
			}
			g := parallel.Build(v.Log, len(art.Prog.Globals))
			naive := Naive(g)
			indexed := Indexed(g)
			if len(naive) != len(indexed) {
				t.Errorf("src %d seed %d: naive=%d indexed=%d races", i, seed, len(naive), len(indexed))
				continue
			}
			for k := range naive {
				if naive[k].key() != indexed[k].key() || naive[k].Kind != indexed[k].Kind {
					t.Errorf("src %d seed %d: race %d differs: %v vs %v", i, seed, k, naive[k], indexed[k])
				}
			}
		}
	}
}

func TestRaceOnArray(t *testing.T) {
	src := `
shared buf[4];
sem done = 0;
func w(i int) { buf[i] = i; V(done); }
func main() {
	spawn w(0);
	spawn w(1);
	P(done);
	P(done);
}`
	races, _, _ := detect(t, src, vm.Options{Quantum: 1})
	// Arrays are treated as single variables (conservative): concurrent
	// element writes report as a potential write/write race.
	if len(races) == 0 {
		t.Error("concurrent array writes should report a (conservative) race")
	}
}

func TestMessagePassingOrdersAccesses(t *testing.T) {
	src := `
shared sv;
chan c;
func producer() {
	sv = 99;
	send(c, 1);
}
func main() {
	spawn producer();
	var x = recv(c);
	print(sv + x);
}`
	races, _, _ := detect(t, src, vm.Options{Quantum: 1})
	if len(races) != 0 {
		t.Errorf("message-ordered accesses reported racy: %v", races)
	}
}

func TestReportRendering(t *testing.T) {
	e1 := &parallel.InternalEdge{ID: 0, PID: 0, Reads: bitset.New(1), Writes: bitset.FromSlice(1, []int{0})}
	e2 := &parallel.InternalEdge{ID: 1, PID: 1, Reads: bitset.New(1), Writes: bitset.FromSlice(1, []int{0})}
	r := &Race{E1: e1, E2: e2, Kind: WriteWrite, Vars: []int{0}}
	got := Report([]*Race{r}, func(int) string { return "SV" })
	if !strings.Contains(got, "write/write") || !strings.Contains(got, "SV") {
		t.Errorf("report = %s", got)
	}
	empty := Report(nil, func(int) string { return "" })
	if !strings.Contains(empty, "race-free") {
		t.Errorf("empty report = %s", empty)
	}
	_ = logging.OpP
}

// TestDetectorsEquivalence is the cross-detector golden contract: Naive,
// Indexed, and Parallel (at several worker counts) must return identical
// race sets — same order, same pairs, same kinds, same variables — on every
// standard workload and on a seeded racy one. Determinism is the product:
// the parallel detector is only admissible because of this test.
func TestDetectorsEquivalence(t *testing.T) {
	type caseDef struct {
		wl      *workloads.Workload
		quantum int
		seed    int64
	}
	var cases []caseDef
	for _, wl := range workloads.Standard() {
		cases = append(cases, caseDef{wl, 3, 0})
	}
	cases = append(cases,
		caseDef{workloads.RacyCounter(4, 6, false), 1, 0},
		caseDef{workloads.RacyCounter(4, 6, false), 1, 7},
		caseDef{workloads.RacyCounter(3, 5, true), 1, 3},
		caseDef{workloads.Sharded(4, 8), 3, 0},
	)
	for _, tc := range cases {
		art, err := compile.CompileSource(tc.wl.Name, tc.wl.Src, eblock.Config{})
		if err != nil {
			t.Fatalf("%s: compile: %v", tc.wl.Name, err)
		}
		v := vm.New(art.Prog, vm.Options{Mode: vm.ModeLog, Quantum: tc.quantum, Seed: tc.seed})
		if err := v.Run(); err != nil {
			t.Fatalf("%s: run: %v", tc.wl.Name, err)
		}
		g := parallel.Build(v.Log, len(art.Prog.Globals))
		want := Indexed(g)
		if naive := Naive(g); !sameRaces(want, naive) {
			t.Errorf("%s seed %d: Naive diverges from Indexed (%d vs %d races)",
				tc.wl.Name, tc.seed, len(naive), len(want))
		}
		for _, workers := range []int{1, 2, 4, 8} {
			got := Parallel(g, workers)
			if !sameRaces(want, got) {
				t.Errorf("%s seed %d workers %d: Parallel diverges from Indexed (%d vs %d races)",
					tc.wl.Name, tc.seed, workers, len(got), len(want))
			}
		}
	}
}

// sameRaces compares two detector outputs element-wise: pair, kind, and
// conflicting variables must all match in order.
func sameRaces(a, b []*Race) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].key() != b[i].key() {
			return false
		}
		if len(a[i].Vars) != len(b[i].Vars) {
			return false
		}
		for j := range a[i].Vars {
			if a[i].Vars[j] != b[i].Vars[j] {
				return false
			}
		}
	}
	return true
}

// TestRacyCounterHasRacesAcrossDetectors seeds a genuinely racy workload
// and checks all three detectors agree it races.
func TestRacyCounterHasRacesAcrossDetectors(t *testing.T) {
	wl := workloads.RacyCounter(3, 4, false)
	art, err := compile.CompileSource(wl.Name, wl.Src, eblock.Config{})
	if err != nil {
		t.Fatal(err)
	}
	v := vm.New(art.Prog, vm.Options{Mode: vm.ModeLog, Quantum: 1})
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	g := parallel.Build(v.Log, len(art.Prog.Globals))
	n, i, p := Naive(g), Indexed(g), Parallel(g, 4)
	if len(i) == 0 {
		t.Fatal("unprotected counter must race")
	}
	if !sameRaces(i, n) || !sameRaces(i, p) {
		t.Errorf("detectors disagree: naive=%d indexed=%d parallel=%d", len(n), len(i), len(p))
	}
}

func TestIndexedObsCountersAndEquivalence(t *testing.T) {
	src := `
shared a;
shared b;
sem done = 0;
func w() { a = a + 1; b = b + 1; V(done); }
func main() { spawn w(); spawn w(); P(done); P(done); }`
	want, g, _ := detect(t, src, vm.Options{Quantum: 1})
	if len(want) == 0 {
		t.Fatal("test program must race")
	}
	sink := obs.New()
	got := IndexedObs(g, sink)
	if Report(got, gidName) != Report(want, gidName) {
		t.Errorf("IndexedObs != Indexed:\n%s\nvs\n%s",
			Report(got, gidName), Report(want, gidName))
	}
	snap := sink.Snapshot()
	if n := snap.Counter("race.runs"); n != 1 {
		t.Errorf("race.runs = %d, want 1", n)
	}
	if n := snap.Counter("race.races"); n != int64(len(want)) {
		t.Errorf("race.races = %d, want %d", n, len(want))
	}
	if n := snap.Counter("race.pairs"); n < int64(len(want)) {
		t.Errorf("race.pairs = %d, want >= %d (every race was a checked pair)", n, len(want))
	}
	if snap.Timer("debug.race").Count != 1 {
		t.Error("debug.race scope not observed")
	}
}

func TestParallelObsMatchesIndexedObs(t *testing.T) {
	wl := workloads.Sharded(4, 20)
	art, err := compile.CompileSource(wl.Name, wl.Src, eblock.Config{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	v := vm.New(art.Prog, vm.Options{Mode: vm.ModeLog, Quantum: 3})
	if err := v.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	g := parallel.Build(v.Log, len(art.Prog.Globals))
	sinkI, sinkP := obs.New(), obs.New()
	want := IndexedObs(g, sinkI)
	for _, workers := range []int{1, 2, 4} {
		got := ParallelObs(g, workers, sinkP)
		if Report(got, gidName) != Report(want, gidName) {
			t.Errorf("workers=%d: ParallelObs != IndexedObs", workers)
		}
	}
	// Both variants checked the same universe of conflicting pairs.
	pi := sinkI.Snapshot().Counter("race.pairs")
	pp := sinkP.Snapshot().Counter("race.pairs")
	if pp != 3*pi {
		t.Errorf("parallel pairs = %d over 3 runs, indexed = %d per run", pp, pi)
	}
}

func gidName(gid int) string { return fmt.Sprintf("g%d", gid) }
