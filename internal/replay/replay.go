// Package replay implements §5.7: restoration of program state from
// postlogs. "The accumulation of the information carried by all the
// postlogs from postlog(1) up to postlog(i) is the same as the information
// carried by the program state at the time postlog(i) is made" — so the
// global state at any completed interval boundary can be rebuilt by folding
// postlogs in order, without re-executing anything.
//
// On top of restoration, the package supports the paper's what-if
// experiments: "the user could change the values of variables and re-start
// the program from the same point to see the effect of these changes" —
// WhatIf re-runs one e-block instance from its prelog with selected values
// overridden and reports how the outcome changes.
package replay

import (
	"fmt"

	"ppd/internal/bytecode"
	"ppd/internal/emulation"
	"ppd/internal/logging"
	"ppd/internal/vm"
)

// Snapshot is a restored global state.
type Snapshot struct {
	Globals []logging.Value
	// UpTo is the record index (exclusive) whose postlogs were folded.
	UpTo int
}

// InitialGlobals builds the program's initial global values (the state at
// process start).
func InitialGlobals(prog *bytecode.Program) []logging.Value {
	out := make([]logging.Value, len(prog.Globals))
	for i, g := range prog.Globals {
		if g.Kind == bytecode.GlobalVar {
			if g.IsArray {
				out[i] = logging.Value{Arr: make([]int64, g.Len)}
			} else {
				out[i] = logging.Value{Int: g.Init}
			}
		}
	}
	return out
}

// RestoreAt rebuilds the global state as of the k-th record (exclusive) of
// the process's book by folding every postlog and shared prelog before it.
// Shared prelogs are folded too: they snapshot shared values written by
// *other* processes, which postlogs of this process alone cannot supply.
func RestoreAt(prog *bytecode.Program, book *logging.Book, k int) *Snapshot {
	if k > len(book.Records) {
		k = len(book.Records)
	}
	// Fold by reference (records are immutable once written), cloning only
	// the final values — restoration cost is then linear in the record
	// count, not in total bytes folded.
	s := &Snapshot{Globals: InitialGlobals(prog), UpTo: k}
	for _, r := range book.Records[:k] {
		switch r.Kind {
		case logging.RecPostlog, logging.RecShPrelog, logging.RecPrelog:
			for gid, val := range r.Globals.All() {
				s.Globals[gid] = val
			}
		}
	}
	for gid := range s.Globals {
		s.Globals[gid] = s.Globals[gid].Clone()
	}
	return s
}

// RestoreAtPostlog restores the state right after the i-th postlog (0-based
// among postlogs) of the process.
func RestoreAtPostlog(prog *bytecode.Program, book *logging.Book, i int) (*Snapshot, error) {
	seen := 0
	for ri, r := range book.Records {
		if r.Kind == logging.RecPostlog {
			if seen == i {
				return RestoreAt(prog, book, ri+1), nil
			}
			seen++
		}
	}
	return nil, fmt.Errorf("replay: process %d has only %d postlog(s)", book.PID, seen)
}

// Override names one value change for a what-if run.
type Override struct {
	// Global overrides a global by GlobalID when Slot < 0; otherwise Slot
	// overrides a frame slot of the e-block's function.
	Global int
	Slot   int
	Value  int64
}

// WhatIfResult compares the original interval with the re-run.
type WhatIfResult struct {
	Original *emulation.Result
	Modified *emulation.Result

	// ChangedGlobals lists GlobalIDs whose end-of-interval value differs.
	ChangedGlobals []int
}

// WhatIf re-executes the e-block instance at prelogIdx twice — once
// faithfully, once with the overrides applied to the prelog — and diffs the
// outcomes. The log itself is never mutated.
func WhatIf(prog *bytecode.Program, book *logging.Book, prelogIdx int, overrides []Override) (*WhatIfResult, error) {
	em := emulation.New(prog, book)
	orig, err := em.EmulateFresh(prelogIdx)
	if err != nil {
		return nil, err
	}

	// Clone the book with the prelog modified.
	mod := &logging.Book{PID: book.PID, Records: append([]*logging.Record(nil), book.Records...)}
	pre := *book.Records[prelogIdx]
	pre.Locals = pre.Locals.Clone()
	pre.Globals = pre.Globals.Clone()
	for _, o := range overrides {
		if o.Slot >= 0 {
			pre.Locals.Set(o.Slot, logging.Value{Int: o.Value})
		} else {
			pre.Globals.Set(o.Global, logging.Value{Int: o.Value})
		}
	}
	mod.Records[prelogIdx] = &pre

	em2 := emulation.New(prog, mod)
	modified, err := em2.EmulateFresh(prelogIdx)
	if err != nil {
		return nil, err
	}

	res := &WhatIfResult{Original: orig, Modified: modified}
	for gid := range orig.Globals {
		if !valueEqual(orig.Globals[gid], modified.Globals[gid]) {
			res.ChangedGlobals = append(res.ChangedGlobals, gid)
		}
	}
	return res, nil
}

func valueEqual(a, b vm.Value) bool {
	if (a.Arr == nil) != (b.Arr == nil) {
		return false
	}
	if a.Arr == nil {
		return a.Int == b.Int
	}
	if len(a.Arr) != len(b.Arr) {
		return false
	}
	for i := range a.Arr {
		if a.Arr[i] != b.Arr[i] {
			return false
		}
	}
	return true
}

// ResumeFrom restarts live execution from a restored snapshot: a fresh VM
// whose globals are the snapshot and whose main process begins at the given
// function (the paper's "re-start the program from the same point"). The
// typical target is the function whose interval follows the restoration
// point.
func ResumeFrom(prog *bytecode.Program, snap *Snapshot, fn string, args []int64, opts vm.Options) (*vm.VM, error) {
	f := prog.FuncByName(fn)
	if f == nil {
		return nil, fmt.Errorf("replay: no function %q", fn)
	}
	machine := vm.New(prog, opts)
	for gid, val := range snap.Globals {
		machine.Globals[gid] = val.Clone()
	}
	if err := machine.RunFunc(f, args); err != nil {
		return machine, err
	}
	return machine, nil
}
