package replay

import (
	"bytes"
	"testing"

	"ppd/internal/compile"
	"ppd/internal/eblock"
	"ppd/internal/emulation"
	"ppd/internal/vm"
)

func logged(t *testing.T, src string, opts vm.Options) (*compile.Artifacts, *vm.VM) {
	t.Helper()
	art, err := compile.CompileSource("test.mpl", src, eblock.Config{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	opts.Mode = vm.ModeLog
	v := vm.New(art.Prog, opts)
	_ = v.Run()
	return art, v
}

func TestRestoreAtPostlogs(t *testing.T) {
	src := `
var g;
func step(v int) { g = g + v; }
func main() {
	step(10);
	step(100);
	step(1000);
}`
	art, v := logged(t, src, vm.Options{})
	book := v.Log.Books[0]
	gid := art.Info.GlobalByName("g").GlobalID

	wants := []int64{10, 110, 1110}
	for i, want := range wants {
		snap, err := RestoreAtPostlog(art.Prog, book, i)
		if err != nil {
			t.Fatalf("restore %d: %v", i, err)
		}
		if got := snap.Globals[gid].Int; got != want {
			t.Errorf("after postlog %d: g = %d, want %d", i, got, want)
		}
	}
	if _, err := RestoreAtPostlog(art.Prog, book, 99); err == nil {
		t.Error("expected error for out-of-range postlog index")
	}
}

func TestRestoreMatchesLiveState(t *testing.T) {
	// The final restoration must equal the VM's actual final globals.
	src := `
var a = 1;
shared arr[3];
func f(i int, v int) { arr[i] = v; a = a * 2; }
func main() {
	f(0, 7);
	f(1, 8);
	f(2, 9);
}`
	art, v := logged(t, src, vm.Options{})
	book := v.Log.Books[0]
	snap := RestoreAt(art.Prog, book, len(book.Records))
	for gid := range art.Prog.Globals {
		got, want := snap.Globals[gid], v.Globals[gid]
		if got.IsArray() != want.IsArray() {
			t.Fatalf("global %d shape mismatch", gid)
		}
		if got.IsArray() {
			for i := range got.Arr {
				if got.Arr[i] != want.Arr[i] {
					t.Errorf("global %d[%d] = %d, want %d", gid, i, got.Arr[i], want.Arr[i])
				}
			}
		} else if got.Int != want.Int {
			t.Errorf("global %d = %d, want %d", gid, got.Int, want.Int)
		}
	}
}

func TestRestoreSeesOtherProcessWrites(t *testing.T) {
	// Main's own postlogs never wrote sv; the shared prelog folding must
	// still expose the worker's write at the restoration point.
	src := `
shared sv;
sem done = 0;
func w() { sv = 5; V(done); }
func main() {
	spawn w();
	P(done);
	print(sv);
}`
	art, v := logged(t, src, vm.Options{Quantum: 1})
	book := v.Log.Books[0]
	gid := art.Info.GlobalByName("sv").GlobalID
	snap := RestoreAt(art.Prog, book, len(book.Records))
	if snap.Globals[gid].Int != 5 {
		t.Errorf("restored sv = %d, want 5 (via shared prelog)", snap.Globals[gid].Int)
	}
}

func TestWhatIfChangesOutcome(t *testing.T) {
	src := `
var g;
func f(a int) int {
	if (a > 10) { g = 1; } else { g = 2; }
	return g * a;
}
func main() { print(f(20)); }`
	art, v := logged(t, src, vm.Options{})
	book := v.Log.Books[0]
	em := emulation.New(art.Prog, book)
	fBlock := int(art.Plan.ByFunc["f"].ID)
	idx := em.PrelogIndices(fBlock)[0]

	// Original: a=20 > 10, g=1. Override a to 3: g=2.
	res, err := WhatIf(art.Prog, book, idx, []Override{{Slot: 0, Global: -1, Value: 3}})
	if err != nil {
		t.Fatal(err)
	}
	gid := art.Info.GlobalByName("g").GlobalID
	if res.Original.Globals[gid].Int != 1 {
		t.Errorf("original g = %d, want 1", res.Original.Globals[gid].Int)
	}
	if res.Modified.Globals[gid].Int != 2 {
		t.Errorf("modified g = %d, want 2", res.Modified.Globals[gid].Int)
	}
	if len(res.ChangedGlobals) != 1 || res.ChangedGlobals[0] != gid {
		t.Errorf("changed globals = %v, want [%d]", res.ChangedGlobals, gid)
	}
	// The log itself must be untouched.
	res2, err := WhatIf(art.Prog, book, idx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.ChangedGlobals) != 0 {
		t.Error("no-override what-if must change nothing (log mutated?)")
	}
}

func TestWhatIfGlobalOverride(t *testing.T) {
	src := `
var g = 10;
func f() int { return g * 3; }
func main() { print(f()); }`
	art, v := logged(t, src, vm.Options{})
	book := v.Log.Books[0]
	em := emulation.New(art.Prog, book)
	idx := em.PrelogIndices(int(art.Plan.ByFunc["f"].ID))[0]
	gid := art.Info.GlobalByName("g").GlobalID

	res, err := WhatIf(art.Prog, book, idx, []Override{{Slot: -1, Global: gid, Value: 7}})
	if err != nil {
		t.Fatal(err)
	}
	// Return values live in the trace; check via the final globals being
	// unchanged (g only read) and the traces differing.
	if res.Original.Trace.String() == res.Modified.Trace.String() {
		t.Error("override should change the traced computation")
	}
}

func TestResumeFrom(t *testing.T) {
	src := `
var g;
func phase1() { g = 41; }
func phase2() { g = g + 1; print(g); }
func main() {
	phase1();
	phase2();
}`
	art, v := logged(t, src, vm.Options{})
	book := v.Log.Books[0]
	// Restore right after phase1's postlog, then re-run phase2.
	snap, err := RestoreAtPostlog(art.Prog, book, 0)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	machine, err := ResumeFrom(art.Prog, snap, "phase2", nil, vm.Options{Output: &out})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if out.String() != "42\n" {
		t.Errorf("resumed output = %q, want 42", out.String())
	}
	gid := art.Info.GlobalByName("g").GlobalID
	if machine.Globals[gid].Int != 42 {
		t.Errorf("resumed g = %d", machine.Globals[gid].Int)
	}
	if _, err := ResumeFrom(art.Prog, snap, "nosuch", nil, vm.Options{}); err == nil {
		t.Error("expected error for unknown function")
	}
}
