// Package sched is the debugging phase's shared worker pool: a small,
// bounded fan-out primitive used by parallel graph construction
// (parallel.Build), the parallel race detector (race.Parallel), and the
// Controller's cache prefetching.
//
// The paper's §7 leaves "reducing the cost of finding all pairs of possible
// conflicting edges" open, and every debugging-phase analysis here
// decomposes into independent units (per-process log scans, per-variable
// conflict buckets, per-interval emulations). sched exploits that: work is
// split into at most Workers contiguous chunks, each chunk runs on its own
// goroutine, and results are merged back in index order — so callers get
// parallel speed with *deterministic* output, the product's core contract.
//
// Design rules:
//
//   - bounded: never more than Workers goroutines per call, GOMAXPROCS by
//     default, so nested fan-outs cannot explode;
//   - degenerate cases run inline: one worker or one item costs no
//     goroutine, which keeps single-core machines and tiny inputs at
//     sequential speed;
//   - panics inside workers are captured and re-raised on the caller's
//     goroutine, matching sequential semantics;
//   - merge order is the index order of the input, never completion order;
//   - observability is opt-in per pool (NewObs) and costs one nil check
//     per fan-out when disabled.
package sched

import (
	"fmt"
	"runtime"
	"sync"

	"ppd/internal/obs"
)

// Pool is a bounded worker pool. The zero value is unusable; use New or
// NewObs. A Pool carries no goroutines between calls — each fan-out spawns
// and joins its own workers — so a Pool is safe for concurrent use and
// costs nothing while idle.
type Pool struct {
	workers int

	// Observability (nil when disabled). Counters are resolved once here
	// so fan-outs never do name lookups.
	sink     *obs.Sink
	cFanouts *obs.Counter // fan-out calls (Chunks/ForEach/Map/ChunkMap)
	cTasks   *obs.Counter // items fanned out
	cChunks  *obs.Counter // chunk goroutines (or inline runs) executed
	tWait    *obs.Timer   // per-chunk queue wait: fan-out start -> chunk start
	tBusy    *obs.Timer   // per-chunk busy time
}

// New returns a pool running at most workers goroutines per fan-out.
// workers <= 0 selects GOMAXPROCS.
func New(workers int) *Pool { return NewObs(workers, nil) }

// NewObs returns a pool that reports fan-out counts, queue wait, and
// worker busy time to sink ("sched.*" metrics). A nil sink disables
// observation, leaving only a nil check per fan-out.
func NewObs(workers int, sink *obs.Sink) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers}
	if sink != nil {
		p.sink = sink
		p.cFanouts = sink.Counter("sched.fanouts")
		p.cTasks = sink.Counter("sched.tasks")
		p.cChunks = sink.Counter("sched.chunks")
		p.tWait = sink.Timer("sched.wait")
		p.tBusy = sink.Timer("sched.busy")
	}
	return p
}

var (
	sharedOnce sync.Once
	sharedPool *Pool
)

// Shared returns the process-wide default pool, sized to GOMAXPROCS. The
// debugging phase's packages all fan out through this one pool so their
// combined parallelism stays bounded by the machine, not by the number of
// subsystems that happen to be busy.
func Shared() *Pool {
	sharedOnce.Do(func() { sharedPool = New(0) })
	return sharedPool
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// chunks partitions [0, n) into at most p.workers near-equal contiguous
// ranges, returning the boundary list b with b[0]=0 and b[len-1]=n.
func (p *Pool) chunks(n int) []int {
	k := p.workers
	if k > n {
		k = n
	}
	bounds := make([]int, k+1)
	for i := 0; i <= k; i++ {
		bounds[i] = i * n / k
	}
	return bounds
}

// runChunks is the fan-out engine behind Chunks and ChunkMap: fn(c, lo, hi)
// owns chunk c covering [lo, hi). Degenerate cases run inline on the
// caller's goroutine; a panic in any chunk is re-raised here.
func (p *Pool) runChunks(n int, fn func(c, lo, hi int)) {
	if n <= 0 {
		return
	}
	if p.sink != nil {
		p.cFanouts.Inc()
		p.cTasks.Add(int64(n))
	}
	if p.workers == 1 || n == 1 {
		if p.sink != nil {
			p.cChunks.Inc()
			sw := p.tBusy.Start()
			fn(0, 0, n)
			sw.Stop()
			return
		}
		fn(0, 0, n)
		return
	}
	bounds := p.chunks(n)
	var launch obs.Stopwatch
	if p.sink != nil {
		p.cChunks.Add(int64(len(bounds) - 1))
		launch = p.tWait.Start()
	}
	var wg sync.WaitGroup
	panics := make([]any, len(bounds)-1)
	for c := 0; c < len(bounds)-1; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[c] = r
				}
			}()
			var sw obs.Stopwatch
			if p.sink != nil {
				launch.Stop() // queue wait of this chunk: fan-out start -> now
				sw = p.tBusy.Start()
			}
			fn(c, bounds[c], bounds[c+1])
			if p.sink != nil {
				sw.Stop()
			}
		}(c)
	}
	wg.Wait()
	for _, r := range panics {
		if r != nil {
			panic(fmt.Sprintf("sched: worker panic: %v", r))
		}
	}
}

// Chunks runs fn over at most Workers contiguous, disjoint sub-ranges of
// [0, n), concurrently, and blocks until all complete. fn(lo, hi) owns
// [lo, hi). A panic in any chunk is re-raised here.
func (p *Pool) Chunks(n int, fn func(lo, hi int)) {
	p.runChunks(n, func(_, lo, hi int) { fn(lo, hi) })
}

// ForEach runs fn(i) for every i in [0, n), fanned out across the pool's
// workers in contiguous chunks, and blocks until all complete.
func (p *Pool) ForEach(n int, fn func(i int)) {
	p.Chunks(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// Map computes fn(i) for every i in [0, n) across the pool's workers and
// returns the results in index order — the deterministic merge.
func Map[T any](p *Pool, n int, fn func(i int) T) []T {
	out := make([]T, n)
	p.ForEach(n, func(i int) { out[i] = fn(i) })
	return out
}

// ChunkMap computes fn over each contiguous chunk of [0, n) and returns the
// per-chunk results in chunk order. Use it when per-item results would
// allocate too much and the caller can merge chunk aggregates (e.g. one
// race slice per variable range).
func ChunkMap[T any](p *Pool, n int, fn func(lo, hi int) T) []T {
	if n <= 0 {
		return nil
	}
	k := p.workers
	if k > n {
		k = n
	}
	out := make([]T, k)
	p.runChunks(n, func(c, lo, hi int) { out[c] = fn(lo, hi) })
	return out
}
