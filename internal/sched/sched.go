// Package sched is the debugging phase's shared worker pool: a small,
// bounded fan-out primitive used by parallel graph construction
// (parallel.Build), the parallel race detector (race.Parallel), and the
// Controller's cache prefetching.
//
// The paper's §7 leaves "reducing the cost of finding all pairs of possible
// conflicting edges" open, and every debugging-phase analysis here
// decomposes into independent units (per-process log scans, per-variable
// conflict buckets, per-interval emulations). sched exploits that: work is
// split into at most Workers contiguous chunks, each chunk runs on its own
// goroutine, and results are merged back in index order — so callers get
// parallel speed with *deterministic* output, the product's core contract.
//
// Design rules:
//
//   - bounded: never more than Workers goroutines per call, GOMAXPROCS by
//     default, so nested fan-outs cannot explode;
//   - degenerate cases run inline: one worker or one item costs no
//     goroutine, which keeps single-core machines and tiny inputs at
//     sequential speed;
//   - panics inside workers are captured and re-raised on the caller's
//     goroutine, matching sequential semantics;
//   - merge order is the index order of the input, never completion order.
package sched

import (
	"fmt"
	"runtime"
	"sync"
)

// Pool is a bounded worker pool. The zero value is unusable; use New.
// A Pool carries no goroutines between calls — each fan-out spawns and
// joins its own workers — so a Pool is safe for concurrent use and costs
// nothing while idle.
type Pool struct {
	workers int
}

// New returns a pool running at most workers goroutines per fan-out.
// workers <= 0 selects GOMAXPROCS.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

var (
	sharedOnce sync.Once
	sharedPool *Pool
)

// Shared returns the process-wide default pool, sized to GOMAXPROCS. The
// debugging phase's packages all fan out through this one pool so their
// combined parallelism stays bounded by the machine, not by the number of
// subsystems that happen to be busy.
func Shared() *Pool {
	sharedOnce.Do(func() { sharedPool = New(0) })
	return sharedPool
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// chunks partitions [0, n) into at most p.workers near-equal contiguous
// ranges, returning the boundary list b with b[0]=0 and b[len-1]=n.
func (p *Pool) chunks(n int) []int {
	k := p.workers
	if k > n {
		k = n
	}
	bounds := make([]int, k+1)
	for i := 0; i <= k; i++ {
		bounds[i] = i * n / k
	}
	return bounds
}

// Chunks runs fn over at most Workers contiguous, disjoint sub-ranges of
// [0, n), concurrently, and blocks until all complete. fn(lo, hi) owns
// [lo, hi). A panic in any chunk is re-raised here.
func (p *Pool) Chunks(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if p.workers == 1 || n == 1 {
		fn(0, n)
		return
	}
	bounds := p.chunks(n)
	var wg sync.WaitGroup
	panics := make([]any, len(bounds)-1)
	for c := 0; c < len(bounds)-1; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[c] = r
				}
			}()
			fn(bounds[c], bounds[c+1])
		}(c)
	}
	wg.Wait()
	for _, r := range panics {
		if r != nil {
			panic(fmt.Sprintf("sched: worker panic: %v", r))
		}
	}
}

// ForEach runs fn(i) for every i in [0, n), fanned out across the pool's
// workers in contiguous chunks, and blocks until all complete.
func (p *Pool) ForEach(n int, fn func(i int)) {
	p.Chunks(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// Map computes fn(i) for every i in [0, n) across the pool's workers and
// returns the results in index order — the deterministic merge.
func Map[T any](p *Pool, n int, fn func(i int) T) []T {
	out := make([]T, n)
	p.ForEach(n, func(i int) { out[i] = fn(i) })
	return out
}

// ChunkMap computes fn over each contiguous chunk of [0, n) and returns the
// per-chunk results in chunk order. Use it when per-item results would
// allocate too much and the caller can merge chunk aggregates (e.g. one
// race slice per variable range).
func ChunkMap[T any](p *Pool, n int, fn func(lo, hi int) T) []T {
	if n <= 0 {
		return nil
	}
	if p.workers == 1 || n == 1 {
		return []T{fn(0, n)}
	}
	bounds := p.chunks(n)
	out := make([]T, len(bounds)-1)
	var wg sync.WaitGroup
	panics := make([]any, len(out))
	for c := range out {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[c] = r
				}
			}()
			out[c] = fn(bounds[c], bounds[c+1])
		}(c)
	}
	wg.Wait()
	for _, r := range panics {
		if r != nil {
			panic(fmt.Sprintf("sched: worker panic: %v", r))
		}
	}
	return out
}
