package sched

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"ppd/internal/obs"
)

func TestNewDefaultsToGOMAXPROCS(t *testing.T) {
	if got, want := New(0).Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("New(0).Workers() = %d, want %d", got, want)
	}
	if got := New(-3).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("New(-3).Workers() = %d", got)
	}
	if got := New(7).Workers(); got != 7 {
		t.Errorf("New(7).Workers() = %d", got)
	}
	if Shared() != Shared() {
		t.Error("Shared must return one process-wide pool")
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 64} {
		for _, n := range []int{0, 1, 2, 7, 100} {
			counts := make([]int32, n)
			New(workers).ForEach(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestChunksAreDisjointAndComplete(t *testing.T) {
	for _, workers := range []int{1, 3, 4, 16} {
		for _, n := range []int{1, 5, 16, 33} {
			var mu [64]int32 // covered marks, padded enough for n<=64
			var calls int32
			New(workers).Chunks(n, func(lo, hi int) {
				atomic.AddInt32(&calls, 1)
				if lo >= hi {
					t.Errorf("workers=%d n=%d: empty chunk [%d,%d)", workers, n, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&mu[i], 1)
				}
			})
			if int(calls) > workers {
				t.Errorf("workers=%d n=%d: %d chunks exceed bound", workers, n, calls)
			}
			for i := 0; i < n; i++ {
				if mu[i] != 1 {
					t.Fatalf("workers=%d n=%d: index %d covered %d times", workers, n, i, mu[i])
				}
			}
		}
	}
}

func TestMapIsDeterministicallyOrdered(t *testing.T) {
	p := New(8)
	want := Map(New(1), 50, func(i int) int { return i * i })
	for rep := 0; rep < 20; rep++ {
		got := Map(p, 50, func(i int) int { return i * i })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("rep %d: Map[%d] = %d, want %d", rep, i, got[i], want[i])
			}
		}
	}
}

func TestChunkMapMergesInChunkOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 9} {
		parts := ChunkMap(New(workers), 23, func(lo, hi int) []int {
			out := make([]int, 0, hi-lo)
			for i := lo; i < hi; i++ {
				out = append(out, i)
			}
			return out
		})
		var flat []int
		for _, p := range parts {
			flat = append(flat, p...)
		}
		if len(flat) != 23 {
			t.Fatalf("workers=%d: merged %d items, want 23", workers, len(flat))
		}
		for i, v := range flat {
			if v != i {
				t.Fatalf("workers=%d: merge out of order at %d: %d", workers, i, v)
			}
		}
	}
}

func TestWorkerPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate to caller")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Fatalf("panic lost its payload: %v", r)
		}
	}()
	New(4).ForEach(8, func(i int) {
		if i == 5 {
			panic("boom")
		}
	})
}

func TestNewObsRecordsFanouts(t *testing.T) {
	sink := obs.New()
	p := NewObs(4, sink)
	got := Map(p, 10, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("Map[%d] = %d", i, v)
		}
	}
	snap := sink.Snapshot()
	if n := snap.Counter("sched.fanouts"); n != 1 {
		t.Errorf("sched.fanouts = %d, want 1", n)
	}
	if n := snap.Counter("sched.tasks"); n != 10 {
		t.Errorf("sched.tasks = %d, want 10", n)
	}
	if n := snap.Counter("sched.chunks"); n != 4 {
		t.Errorf("sched.chunks = %d, want 4 (one per worker)", n)
	}
	// Every chunk's busy time is observed; wait is observed once per
	// spawned chunk (goroutine path only).
	if n := snap.Timer("sched.busy").Count; n != 4 {
		t.Errorf("sched.busy count = %d, want 4", n)
	}
	if n := snap.Timer("sched.wait").Count; n != 4 {
		t.Errorf("sched.wait count = %d, want 4", n)
	}
}

func TestNewObsInlinePathCountsBusyOnly(t *testing.T) {
	sink := obs.New()
	p := NewObs(1, sink)
	p.ForEach(5, func(int) {})
	snap := sink.Snapshot()
	if n := snap.Counter("sched.chunks"); n != 1 {
		t.Errorf("sched.chunks = %d, want 1 (inline)", n)
	}
	if n := snap.Timer("sched.busy").Count; n != 1 {
		t.Errorf("sched.busy count = %d, want 1", n)
	}
	if n := snap.Timer("sched.wait").Count; n != 0 {
		t.Errorf("sched.wait count = %d, want 0 (no goroutine spawned)", n)
	}
}

func TestNewObsNilSinkStaysQuiet(t *testing.T) {
	p := NewObs(4, nil)
	if got := Map(p, 8, func(i int) int { return i + 1 })[7]; got != 8 {
		t.Errorf("Map result = %d", got)
	}
}
