// Package sem performs semantic analysis of an MPL program: name
// resolution, type checking, and variable numbering.
//
// Numbering is the load-bearing output. Every global variable receives a
// dense GlobalID and every local/parameter a per-function frame Slot; the
// data-flow analyses, interprocedural USED/DEFINED sets, prelog/postlog
// records, and race-detection READ/WRITE sets are all bitsets indexed by
// these numbers (the paper's §7 "bit-mask representations for sets of
// variables ... can have a large payoff").
//
// MPL runs on a shared-memory model: all globals live in one address space
// visible to every process, exactly like the paper's SMMP target. The
// `shared` keyword is a documentation synonym for `var` at global scope;
// race detection tracks every global scalar and array.
package sem

import (
	"ppd/internal/ast"
	"ppd/internal/source"
	"ppd/internal/token"
)

// SymKind classifies a symbol.
type SymKind int

// Symbol kinds.
const (
	SymGlobal SymKind = iota // global int or array (shared memory)
	SymSem                   // semaphore
	SymChan                  // message channel
	SymParam                 // function parameter
	SymLocal                 // function local
	SymFunc                  // function
)

func (k SymKind) String() string {
	switch k {
	case SymGlobal:
		return "global"
	case SymSem:
		return "sem"
	case SymChan:
		return "chan"
	case SymParam:
		return "param"
	case SymLocal:
		return "local"
	case SymFunc:
		return "func"
	}
	return "?"
}

// Symbol is one named entity.
type Symbol struct {
	Name     string
	Kind     SymKind
	Type     ast.Type
	GlobalID int       // dense index among all globals (vars, sems, chans); -1 otherwise
	Slot     int       // frame slot for params/locals; -1 otherwise
	Fn       *FuncInfo // for SymFunc
	DeclPos  source.Pos
}

// IsShared reports whether the symbol is a shared-memory variable (a global
// int or array) — the class of variables race detection tracks.
func (s *Symbol) IsShared() bool { return s.Kind == SymGlobal }

// FuncInfo aggregates per-function semantic results.
type FuncInfo struct {
	Decl     *ast.FuncDecl
	Sym      *Symbol
	Index    int       // declaration order
	Params   []*Symbol // in order; slots 0..len-1
	Locals   []*Symbol // params first, then locals, in slot order
	NumSlots int
}

// Name returns the function's name.
func (f *FuncInfo) Name() string { return f.Decl.Name.Name }

// Info is the result of Check: every resolution and typing fact later
// phases need.
type Info struct {
	Prog     *ast.Program
	Globals  []*Symbol // indexed by GlobalID
	Funcs    map[string]*FuncInfo
	FuncList []*FuncInfo
	Uses     map[*ast.Ident]*Symbol // every resolved identifier use
	Types    map[ast.Expr]ast.Type
	Main     *FuncInfo

	// EnclosingFunc maps each statement to the function containing it.
	EnclosingFunc map[ast.StmtID]*FuncInfo
}

// NumGlobals returns the size of the global index space.
func (in *Info) NumGlobals() int { return len(in.Globals) }

// SharedIDs returns the GlobalIDs of all shared-memory variables (excluding
// semaphores and channels), in increasing order.
func (in *Info) SharedIDs() []int {
	var ids []int
	for _, g := range in.Globals {
		if g.IsShared() {
			ids = append(ids, g.GlobalID)
		}
	}
	return ids
}

// GlobalByName returns the global symbol with the given name, or nil.
func (in *Info) GlobalByName(name string) *Symbol {
	for _, g := range in.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

type checker struct {
	info *Info
	errs *source.ErrorList
	file *source.File

	fn     *FuncInfo
	scopes []map[string]*Symbol
	loop   int // loop nesting depth
}

// Check resolves and type-checks the program. Diagnostics go to errs; the
// returned Info is valid to the extent the program was.
func Check(prog *ast.Program, errs *source.ErrorList) *Info {
	c := &checker{
		info: &Info{
			Prog:          prog,
			Funcs:         make(map[string]*FuncInfo),
			Uses:          make(map[*ast.Ident]*Symbol),
			Types:         make(map[ast.Expr]ast.Type),
			EnclosingFunc: make(map[ast.StmtID]*FuncInfo),
		},
		errs: errs,
		file: prog.File,
	}
	c.collectGlobals()
	c.collectFuncs()
	for _, f := range c.info.FuncList {
		c.checkFunc(f)
	}
	if m, ok := c.info.Funcs["main"]; ok {
		c.info.Main = m
		if len(m.Decl.Params) != 0 {
			c.errorf(m.Decl.FuncPos, "main must take no parameters")
		}
	} else {
		c.errorf(source.NoPos, "program has no main function")
	}
	return c.info
}

func (c *checker) errorf(pos source.Pos, format string, args ...any) {
	c.errs.Errorf(c.file.Position(pos), format, args...)
}

func (c *checker) collectGlobals() {
	seen := make(map[string]bool)
	for _, g := range c.info.Prog.Globals {
		if seen[g.Name.Name] {
			c.errorf(g.Name.NamePos, "duplicate global %q", g.Name.Name)
			continue
		}
		seen[g.Name.Name] = true
		sym := &Symbol{
			Name:     g.Name.Name,
			Type:     g.Type,
			GlobalID: len(c.info.Globals),
			Slot:     -1,
			DeclPos:  g.Name.NamePos,
		}
		switch g.Kw {
		case token.VAR, token.SHARED:
			sym.Kind = SymGlobal
		case token.SEM:
			sym.Kind = SymSem
		case token.CHAN:
			sym.Kind = SymChan
		}
		c.info.Globals = append(c.info.Globals, sym)
		c.info.Uses[g.Name] = sym
		if g.Init != nil {
			t := c.checkExpr(g.Init)
			if sym.Kind == SymGlobal && sym.Type.Kind == ast.TypeInt && t.Kind != ast.TypeInt && t.Kind != ast.TypeInvalid {
				c.errorf(g.Init.Pos(), "global %q initializer must be int, got %s", sym.Name, t.Kind)
			}
			if sym.Kind == SymSem && t.Kind != ast.TypeInt && t.Kind != ast.TypeInvalid {
				c.errorf(g.Init.Pos(), "semaphore %q initial count must be int, got %s", sym.Name, t.Kind)
			}
		}
	}
}

func (c *checker) collectFuncs() {
	for i, f := range c.info.Prog.Funcs {
		if _, dup := c.info.Funcs[f.Name.Name]; dup {
			c.errorf(f.Name.NamePos, "duplicate function %q", f.Name.Name)
			continue
		}
		if c.info.GlobalByName(f.Name.Name) != nil {
			c.errorf(f.Name.NamePos, "%q declared as both global and function", f.Name.Name)
		}
		fi := &FuncInfo{Decl: f, Index: i}
		fi.Sym = &Symbol{
			Name:     f.Name.Name,
			Kind:     SymFunc,
			Type:     f.Result,
			GlobalID: -1,
			Slot:     -1,
			Fn:       fi,
			DeclPos:  f.Name.NamePos,
		}
		c.info.Funcs[f.Name.Name] = fi
		c.info.FuncList = append(c.info.FuncList, fi)
		c.info.Uses[f.Name] = fi.Sym
	}
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, make(map[string]*Symbol)) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declareLocal(id *ast.Ident, kind SymKind, t ast.Type) *Symbol {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[id.Name]; dup {
		c.errorf(id.NamePos, "duplicate declaration of %q", id.Name)
	}
	sym := &Symbol{
		Name:    id.Name,
		Kind:    kind,
		Type:    t,
		Slot:    c.fn.NumSlots,
		DeclPos: id.NamePos,
	}
	sym.GlobalID = -1
	c.fn.NumSlots++
	c.fn.Locals = append(c.fn.Locals, sym)
	top[id.Name] = sym
	c.info.Uses[id] = sym
	return sym
}

func (c *checker) lookup(name string) *Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	if g := c.info.GlobalByName(name); g != nil {
		return g
	}
	if f, ok := c.info.Funcs[name]; ok {
		return f.Sym
	}
	return nil
}

func (c *checker) checkFunc(f *FuncInfo) {
	c.fn = f
	c.pushScope()
	for _, p := range f.Decl.Params {
		sym := c.declareLocal(p.Name, SymParam, p.Type)
		f.Params = append(f.Params, sym)
	}
	c.checkBlock(f.Decl.Body)
	c.popScope()
	c.fn = nil
}

func (c *checker) checkBlock(b *ast.BlockStmt) {
	c.pushScope()
	for _, s := range b.List {
		c.checkStmt(s)
	}
	c.popScope()
}

func (c *checker) markStmt(s ast.Stmt) {
	if s.ID() != ast.NoStmt {
		c.info.EnclosingFunc[s.ID()] = c.fn
	}
}

func (c *checker) checkStmt(s ast.Stmt) {
	if s == nil {
		return
	}
	switch s := s.(type) {
	case *ast.VarDeclStmt:
		c.markStmt(s)
		if s.Init != nil {
			t := c.checkExpr(s.Init)
			if s.Type.Kind == ast.TypeArray {
				c.errorf(s.Init.Pos(), "array variable %q cannot have a scalar initializer", s.Name.Name)
			} else {
				// Local declarations infer int or bool from the initializer.
				switch t.Kind {
				case ast.TypeInt, ast.TypeBool:
					s.Type = ast.Type{Kind: t.Kind}
				case ast.TypeInvalid:
					// already reported
				default:
					c.errorf(s.Init.Pos(), "cannot initialize variable %q with %s", s.Name.Name, t.Kind)
				}
			}
		}
		c.declareLocal(s.Name, SymLocal, s.Type)

	case *ast.AssignStmt:
		c.markStmt(s)
		sym := c.resolve(s.LHS)
		if sym == nil {
			// resolve already reported
		} else if sym.Kind == SymFunc || sym.Kind == SymSem || sym.Kind == SymChan {
			c.errorf(s.LHS.NamePos, "cannot assign to %s %q", sym.Kind, sym.Name)
		}
		if s.Index != nil {
			if sym != nil && sym.Type.Kind != ast.TypeArray {
				c.errorf(s.LHS.NamePos, "%q is not an array", s.LHS.Name)
			}
			it := c.checkExpr(s.Index)
			if it.Kind != ast.TypeInt && it.Kind != ast.TypeInvalid {
				c.errorf(s.Index.Pos(), "array index must be int, got %s", it.Kind)
			}
		} else if sym != nil && sym.Type.Kind == ast.TypeArray {
			c.errorf(s.LHS.NamePos, "cannot assign whole array %q", sym.Name)
		}
		rt := c.checkExpr(s.RHS)
		if sym != nil && sym.Type.Kind == ast.TypeBool {
			if rt.Kind != ast.TypeBool && rt.Kind != ast.TypeInvalid {
				c.errorf(s.RHS.Pos(), "cannot assign %s to bool variable %q", rt.Kind, sym.Name)
			}
		} else if rt.Kind != ast.TypeInt && rt.Kind != ast.TypeInvalid {
			c.errorf(s.RHS.Pos(), "cannot assign %s value to %q", rt.Kind, s.LHS.Name)
		}

	case *ast.IfStmt:
		c.markStmt(s)
		c.checkCond(s.Cond)
		c.checkBlock(s.Then)
		if s.Else != nil {
			c.checkStmt(s.Else)
		}

	case *ast.WhileStmt:
		c.markStmt(s)
		c.checkCond(s.Cond)
		c.loop++
		c.checkBlock(s.Body)
		c.loop--

	case *ast.ForStmt:
		c.markStmt(s)
		c.pushScope()
		if s.Init != nil {
			c.checkStmt(s.Init)
		}
		if s.Cond != nil {
			c.checkCond(s.Cond)
		}
		if s.Post != nil {
			c.checkStmt(s.Post)
		}
		c.loop++
		c.checkBlock(s.Body)
		c.loop--
		c.popScope()

	case *ast.ReturnStmt:
		c.markStmt(s)
		want := c.fn.Decl.Result
		if s.Result == nil {
			if want.Kind != ast.TypeVoid {
				c.errorf(s.RetPos, "function %q must return a %s value", c.fn.Name(), want.Kind)
			}
		} else {
			got := c.checkExpr(s.Result)
			if want.Kind == ast.TypeVoid {
				c.errorf(s.Result.Pos(), "function %q returns no value", c.fn.Name())
			} else if got.Kind != want.Kind && got.Kind != ast.TypeInvalid {
				c.errorf(s.Result.Pos(), "function %q returns %s, got %s", c.fn.Name(), want.Kind, got.Kind)
			}
		}

	case *ast.BreakStmt:
		c.markStmt(s)
		if c.loop == 0 {
			c.errorf(s.KwPos, "break outside loop")
		}
	case *ast.ContinueStmt:
		c.markStmt(s)
		if c.loop == 0 {
			c.errorf(s.KwPos, "continue outside loop")
		}

	case *ast.SpawnStmt:
		c.markStmt(s)
		c.checkCall(s.Call, true)

	case *ast.SemStmt:
		c.markStmt(s)
		sym := c.resolve(s.Sem)
		if sym != nil && sym.Kind != SymSem {
			c.errorf(s.Sem.NamePos, "%q is not a semaphore", s.Sem.Name)
		}

	case *ast.SendStmt:
		c.markStmt(s)
		sym := c.resolve(s.Chan)
		if sym != nil && sym.Kind != SymChan {
			c.errorf(s.Chan.NamePos, "%q is not a channel", s.Chan.Name)
		}
		t := c.checkExpr(s.Value)
		if t.Kind != ast.TypeInt && t.Kind != ast.TypeInvalid {
			c.errorf(s.Value.Pos(), "send value must be int, got %s", t.Kind)
		}

	case *ast.ExprStmt:
		c.markStmt(s)
		switch x := s.X.(type) {
		case *ast.CallExpr:
			c.checkCall(x, false)
		case *ast.RecvExpr:
			c.checkExpr(x)
		default:
			c.errorf(s.X.Pos(), "expression statement must be a call or recv")
		}

	case *ast.PrintStmt:
		c.markStmt(s)
		for _, a := range s.Args {
			c.checkExpr(a)
		}

	case *ast.BlockStmt:
		c.checkBlock(s)
	}
}

func (c *checker) checkCond(e ast.Expr) {
	t := c.checkExpr(e)
	if t.Kind != ast.TypeBool && t.Kind != ast.TypeInvalid {
		c.errorf(e.Pos(), "condition must be bool, got %s", t.Kind)
	}
}

func (c *checker) resolve(id *ast.Ident) *Symbol {
	sym := c.lookup(id.Name)
	if sym == nil {
		c.errorf(id.NamePos, "undeclared identifier %q", id.Name)
		return nil
	}
	c.info.Uses[id] = sym
	return sym
}

func (c *checker) checkCall(call *ast.CallExpr, spawn bool) ast.Type {
	fi, ok := c.info.Funcs[call.Fun.Name]
	if !ok {
		c.errorf(call.Fun.NamePos, "call of undeclared function %q", call.Fun.Name)
		for _, a := range call.Args {
			c.checkExpr(a)
		}
		return ast.Type{Kind: ast.TypeInvalid}
	}
	c.info.Uses[call.Fun] = fi.Sym
	if len(call.Args) != len(fi.Decl.Params) {
		c.errorf(call.Fun.NamePos, "%q takes %d argument(s), got %d",
			fi.Name(), len(fi.Decl.Params), len(call.Args))
	}
	for i, a := range call.Args {
		t := c.checkExpr(a)
		if i < len(fi.Decl.Params) {
			want := fi.Decl.Params[i].Type
			if t.Kind != want.Kind && t.Kind != ast.TypeInvalid {
				c.errorf(a.Pos(), "argument %d of %q must be %s, got %s",
					i+1, fi.Name(), want.Kind, t.Kind)
			}
		}
	}
	if spawn && fi.Decl.Result.Kind != ast.TypeVoid {
		c.errs.Warnf(c.file.Position(call.Fun.NamePos),
			"spawned function %q returns a value that is discarded", fi.Name())
	}
	return fi.Decl.Result
}

func (c *checker) checkExpr(e ast.Expr) ast.Type {
	t := c.exprType(e)
	c.info.Types[e] = t
	return t
}

func (c *checker) exprType(e ast.Expr) ast.Type {
	switch e := e.(type) {
	case *ast.IntLit:
		return ast.Type{Kind: ast.TypeInt}
	case *ast.BoolLit:
		return ast.Type{Kind: ast.TypeBool}
	case *ast.StringLit:
		return ast.Type{Kind: ast.TypeString}
	case *ast.Ident:
		sym := c.resolve(e)
		if sym == nil {
			return ast.Type{Kind: ast.TypeInvalid}
		}
		switch sym.Kind {
		case SymFunc:
			c.errorf(e.NamePos, "function %q used as a value", e.Name)
			return ast.Type{Kind: ast.TypeInvalid}
		case SymSem, SymChan:
			c.errorf(e.NamePos, "%s %q used as a value", sym.Kind, e.Name)
			return ast.Type{Kind: ast.TypeInvalid}
		}
		if sym.Type.Kind == ast.TypeArray {
			c.errorf(e.NamePos, "array %q used without index", e.Name)
			return ast.Type{Kind: ast.TypeInvalid}
		}
		return sym.Type
	case *ast.UnaryExpr:
		t := c.checkExpr(e.X)
		switch e.Op {
		case token.SUB:
			if t.Kind != ast.TypeInt && t.Kind != ast.TypeInvalid {
				c.errorf(e.X.Pos(), "operand of - must be int, got %s", t.Kind)
			}
			return ast.Type{Kind: ast.TypeInt}
		case token.NOT:
			if t.Kind != ast.TypeBool && t.Kind != ast.TypeInvalid {
				c.errorf(e.X.Pos(), "operand of ! must be bool, got %s", t.Kind)
			}
			return ast.Type{Kind: ast.TypeBool}
		}
		return ast.Type{Kind: ast.TypeInvalid}
	case *ast.BinaryExpr:
		xt := c.checkExpr(e.X)
		yt := c.checkExpr(e.Y)
		switch e.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO, token.REM:
			c.wantInt(e.X, xt)
			c.wantInt(e.Y, yt)
			return ast.Type{Kind: ast.TypeInt}
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
			c.wantInt(e.X, xt)
			c.wantInt(e.Y, yt)
			return ast.Type{Kind: ast.TypeBool}
		case token.EQL, token.NEQ:
			if xt.Kind != yt.Kind && xt.Kind != ast.TypeInvalid && yt.Kind != ast.TypeInvalid {
				c.errorf(e.OpPos, "mismatched operands of %s: %s vs %s", e.Op, xt.Kind, yt.Kind)
			}
			return ast.Type{Kind: ast.TypeBool}
		case token.LAND, token.LOR:
			c.wantBool(e.X, xt)
			c.wantBool(e.Y, yt)
			return ast.Type{Kind: ast.TypeBool}
		}
		return ast.Type{Kind: ast.TypeInvalid}
	case *ast.IndexExpr:
		sym := c.resolve(e.X)
		if sym != nil && sym.Type.Kind != ast.TypeArray {
			c.errorf(e.X.NamePos, "%q is not an array", e.X.Name)
		}
		it := c.checkExpr(e.Index)
		if it.Kind != ast.TypeInt && it.Kind != ast.TypeInvalid {
			c.errorf(e.Index.Pos(), "array index must be int, got %s", it.Kind)
		}
		return ast.Type{Kind: ast.TypeInt}
	case *ast.CallExpr:
		t := c.checkCall(e, false)
		if t.Kind == ast.TypeVoid {
			c.errorf(e.Fun.NamePos, "void function %q used as a value", e.Fun.Name)
			return ast.Type{Kind: ast.TypeInvalid}
		}
		return t
	case *ast.RecvExpr:
		sym := c.resolve(e.Chan)
		if sym != nil && sym.Kind != SymChan {
			c.errorf(e.Chan.NamePos, "%q is not a channel", e.Chan.Name)
		}
		return ast.Type{Kind: ast.TypeInt}
	case *ast.ParenExpr:
		return c.checkExpr(e.X)
	}
	return ast.Type{Kind: ast.TypeInvalid}
}

func (c *checker) wantInt(e ast.Expr, t ast.Type) {
	if t.Kind != ast.TypeInt && t.Kind != ast.TypeInvalid {
		c.errorf(e.Pos(), "operand must be int, got %s", t.Kind)
	}
}

func (c *checker) wantBool(e ast.Expr, t ast.Type) {
	if t.Kind != ast.TypeBool && t.Kind != ast.TypeInvalid {
		c.errorf(e.Pos(), "operand must be bool, got %s", t.Kind)
	}
}
