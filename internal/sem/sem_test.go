package sem

import (
	"strings"
	"testing"

	"ppd/internal/ast"
	"ppd/internal/parser"
	"ppd/internal/source"
)

func check(t *testing.T, src string) (*Info, *source.ErrorList) {
	t.Helper()
	errs := &source.ErrorList{}
	prog := parser.ParseString("test.mpl", src, errs)
	if errs.ErrCount() != 0 {
		t.Fatalf("parse errors:\n%v", errs.Err())
	}
	info := Check(prog, errs)
	return info, errs
}

func checkOK(t *testing.T, src string) *Info {
	t.Helper()
	info, errs := check(t, src)
	if errs.ErrCount() != 0 {
		t.Fatalf("unexpected check errors:\n%v", errs.Err())
	}
	return info
}

func wantErr(t *testing.T, src, sub string) {
	t.Helper()
	_, errs := check(t, src)
	if errs.ErrCount() == 0 {
		t.Fatalf("expected error containing %q, got none", sub)
	}
	if !strings.Contains(errs.Err().Error(), sub) {
		t.Fatalf("error %q does not contain %q", errs.Err(), sub)
	}
}

func TestGlobalNumbering(t *testing.T) {
	info := checkOK(t, `
shared sv;
var g = 3;
sem mutex = 1;
chan c;
shared arr[4];
func main() {}
`)
	if info.NumGlobals() != 5 {
		t.Fatalf("NumGlobals = %d, want 5", info.NumGlobals())
	}
	for i, g := range info.Globals {
		if g.GlobalID != i {
			t.Errorf("global %s has ID %d, want %d", g.Name, g.GlobalID, i)
		}
	}
	shared := info.SharedIDs()
	if len(shared) != 3 { // sv, g, arr
		t.Errorf("SharedIDs = %v, want 3 entries", shared)
	}
	if info.GlobalByName("mutex").Kind != SymSem {
		t.Error("mutex not a semaphore")
	}
	if info.GlobalByName("c").Kind != SymChan {
		t.Error("c not a channel")
	}
}

func TestLocalSlots(t *testing.T) {
	info := checkOK(t, `
func f(a int, b int) int {
	var x = a;
	var y = b;
	return x + y;
}
func main() { var r = f(1,2); }
`)
	f := info.Funcs["f"]
	if f.NumSlots != 4 {
		t.Fatalf("NumSlots = %d, want 4", f.NumSlots)
	}
	for i, s := range f.Locals {
		if s.Slot != i {
			t.Errorf("local %s slot = %d, want %d", s.Name, s.Slot, i)
		}
	}
	if len(f.Params) != 2 || f.Params[0].Kind != SymParam {
		t.Errorf("params wrong: %+v", f.Params)
	}
}

func TestScopingShadowing(t *testing.T) {
	info := checkOK(t, `
var x = 1;
func main() {
	var x = 2;
	if (x > 0) {
		var x = 3;
		x = 4;
	}
	x = 5;
}
`)
	mainFn := info.Funcs["main"]
	stmts := ast.Stmts(mainFn.Decl.Body)
	// x = 4 resolves to the innermost local (slot 1); x = 5 to slot 0.
	inner := stmts[3].(*ast.AssignStmt)
	outer := stmts[4].(*ast.AssignStmt)
	if got := info.Uses[inner.LHS]; got.Slot != 1 {
		t.Errorf("inner x slot = %d, want 1", got.Slot)
	}
	if got := info.Uses[outer.LHS]; got.Slot != 0 {
		t.Errorf("outer x slot = %d, want 0", got.Slot)
	}
}

func TestEnclosingFunc(t *testing.T) {
	info := checkOK(t, `
func a() { var x = 1; }
func main() { var y = 2; }
`)
	for id := ast.StmtID(1); id <= ast.StmtID(info.Prog.NumStmts); id++ {
		if info.EnclosingFunc[id] == nil {
			t.Errorf("stmt %d has no enclosing func", id)
		}
	}
}

func TestErrors(t *testing.T) {
	cases := []struct{ name, src, sub string }{
		{"undeclared", `func main() { x = 1; }`, "undeclared"},
		{"dup global", "var x;\nvar x;\nfunc main() {}", "duplicate global"},
		{"dup local", `func main() { var a = 1; var a = 2; }`, "duplicate declaration"},
		{"dup func", "func f() {}\nfunc f() {}\nfunc main() {}", "duplicate function"},
		{"no main", `func f() {}`, "no main function"},
		{"main params", `func main(a int) {}`, "main must take no parameters"},
		{"bad cond", `func main() { if (1+2) {} }`, "condition must be bool"},
		{"assign func", "func f() {}\nfunc main() { f = 1; }", "cannot assign to func"},
		{"assign sem", "sem s;\nfunc main() { s = 1; }", "cannot assign to sem"},
		{"call arity", "func f(a int) {}\nfunc main() { f(); }", "takes 1 argument"},
		{"call undeclared", `func main() { g(); }`, "undeclared function"},
		{"void as value", "func f() {}\nfunc main() { var x = f(); }", "void function"},
		{"not array", `var x; func main() { x[0] = 1; }`, "not an array"},
		{"whole array", "shared a[3];\nfunc main() { a = 1; }", "cannot assign whole array"},
		{"array no index", "shared a[3];\nfunc main() { var x = a; }", "without index"},
		{"P on non-sem", `var x; func main() { P(x); }`, "not a semaphore"},
		{"send non-chan", `var x; func main() { send(x, 1); }`, "not a channel"},
		{"recv non-chan", `var x; func main() { var v = recv(x); }`, "not a channel"},
		{"break outside", `func main() { break; }`, "break outside loop"},
		{"continue outside", `func main() { continue; }`, "continue outside loop"},
		{"return value from void", `func main() { return 3; }`, "returns no value"},
		{"missing return value", "func f() int { return; }\nfunc main() { var x = f(); }", "must return a int"},
		{"bool arith", `func main() { var x = true + 1; }`, "must be int"},
		{"mismatched eq", `func main() { if (1 == true) {} }`, "mismatched operands"},
		{"func as value", "func f() {}\nfunc main() { var x = f + 1; }", "used as a value"},
		{"sem as value", "sem s;\nfunc main() { var x = s + 1; }", "used as a value"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { wantErr(t, c.src, c.sub) })
	}
}

func TestSpawnWarnsOnResult(t *testing.T) {
	info, errs := check(t, `
func f() int { return 1; }
func main() { spawn f(); }
`)
	if errs.ErrCount() != 0 {
		t.Fatalf("unexpected errors: %v", errs.Err())
	}
	if errs.Len() == 0 {
		t.Error("expected a warning about discarded spawn result")
	}
	_ = info
}

func TestTypesRecorded(t *testing.T) {
	info := checkOK(t, `
func main() {
	var x = 1 + 2;
	var b = x < 3;
}
`)
	n := 0
	for _, typ := range info.Types {
		if typ.Kind == ast.TypeInvalid {
			t.Error("invalid type recorded in clean program")
		}
		n++
	}
	if n == 0 {
		t.Error("no types recorded")
	}
}

func TestSymKindStrings(t *testing.T) {
	wants := map[SymKind]string{
		SymGlobal: "global", SymSem: "sem", SymChan: "chan",
		SymParam: "param", SymLocal: "local", SymFunc: "func",
	}
	for k, w := range wants {
		if k.String() != w {
			t.Errorf("%d = %q, want %q", k, k.String(), w)
		}
	}
	if SymKind(99).String() != "?" {
		t.Error("unknown kind")
	}
}

func TestBoolOperandErrors(t *testing.T) {
	wantErr(t, `func main() { if (1 && true) {} }`, "must be bool")
	wantErr(t, `func main() { if (true || 2) {} }`, "must be bool")
	wantErr(t, `func main() { var x = !3; }`, "must be bool")
	wantErr(t, `func main() { var x = -true; }`, "must be int")
}

func TestRecvAndCallTyping(t *testing.T) {
	checkOK(t, `
chan c;
func g() int { return 1; }
func main() {
	var a = recv(c) + g();
	print(a);
}`)
	wantErr(t, `
chan c;
func main() { if (recv(c)) {} }`, "condition must be bool")
}

func TestArrayIndexTyping(t *testing.T) {
	wantErr(t, `shared a[3]; func main() { var x = a[true]; }`, "index must be int")
	wantErr(t, `shared a[3]; func main() { a[false] = 1; }`, "index must be int")
}

func TestGlobalFuncNameCollision(t *testing.T) {
	wantErr(t, "var f;\nfunc f() {}\nfunc main() {}", "declared as both")
}

func TestSemInitTyping(t *testing.T) {
	wantErr(t, "sem s = true;\nfunc main() {}", "must be int")
}
