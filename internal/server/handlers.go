package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"ppd"
	"ppd/internal/eblock"
)

// routes installs the HTTP surface:
//
//	POST   /v1/sessions             create: compile (cached) + run logged
//	GET    /v1/sessions             list live sessions
//	GET    /v1/sessions/{id}        attach: session info, refreshes TTL
//	DELETE /v1/sessions/{id}        close and remove the session
//	POST   /v1/sessions/{id}/run    re-run under new options (exclusive)
//	GET    /v1/sessions/{id}/races  race detection (memoized)
//	POST   /v1/sessions/{id}/flowback  flowback fragment for a process
//	POST   /v1/sessions/{id}/whatif    what-if re-execution (§5.7)
//	GET    /v1/sessions/{id}/vet    static analysis (memoized)
//	GET    /v1/sessions/{id}/log    binary log download
//	GET    /v1/sessions/{id}/stats  the session's own obs snapshot
//	POST   /v1/compile              compile-only probe (cache check)
//	GET    /metrics                 daemon-wide obs snapshot (JSON)
//	GET    /healthz                 liveness
func (s *Server) routes(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	mux.HandleFunc("GET /v1/sessions", s.handleList)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleAttach)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	mux.HandleFunc("POST /v1/sessions/{id}/run", s.handleRerun)
	mux.HandleFunc("GET /v1/sessions/{id}/races", s.handleRaces)
	mux.HandleFunc("POST /v1/sessions/{id}/flowback", s.handleFlowback)
	mux.HandleFunc("POST /v1/sessions/{id}/whatif", s.handleWhatIf)
	mux.HandleFunc("GET /v1/sessions/{id}/vet", s.handleVet)
	mux.HandleFunc("GET /v1/sessions/{id}/log", s.handleLog)
	mux.HandleFunc("GET /v1/sessions/{id}/stats", s.handleStats)
	mux.HandleFunc("POST /v1/compile", s.handleCompile)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
}

// errorBody is the JSON error envelope every non-2xx response carries.
type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// statusFor maps an error to its HTTP status and stable machine code.
func statusFor(err error) (int, string) {
	switch {
	case errors.Is(err, ppd.ErrInvalidOptions):
		return http.StatusBadRequest, "invalid_options"
	case errors.Is(err, ppd.ErrSessionNotFound):
		return http.StatusNotFound, "session_not_found"
	case errors.Is(err, ppd.ErrSessionBusy):
		return http.StatusConflict, "session_busy"
	case errors.Is(err, ppd.ErrSessionClosed):
		return http.StatusGone, "session_closed"
	case errors.Is(err, ppd.ErrServerSaturated):
		return http.StatusTooManyRequests, "server_saturated"
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable, "cancelled"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	status, code := statusFor(err)
	writeJSON(w, status, errorBody{Error: err.Error(), Code: code})
}

// writeErrorCode is writeError with the status/code forced — for errors
// whose class the handler knows better than statusFor (compile errors).
func writeErrorCode(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, errorBody{Error: err.Error(), Code: code})
}

func readJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: malformed request body: %v", ppd.ErrInvalidOptions, err)
	}
	return nil
}

// runOptions are the client-settable execution knobs, shared by create
// and re-run requests.
type runOptions struct {
	Seed     int64 `json:"seed"`
	Quantum  int   `json:"quantum"`
	MaxSteps int64 `json:"max_steps"`
	NoFusion bool  `json:"no_fusion"`
	// StopAtFirstRace cancels the run as soon as the online pipeline
	// reports a race (implies monitoring). StreamBatch tunes the tee's
	// record batch size; 0 keeps the default.
	StopAtFirstRace bool `json:"stop_at_first_race"`
	StreamBatch     int  `json:"stream_batch"`
}

// options resolves the request knobs plus the server-wide policy knobs
// into ppd.Options. Output capture is the caller's.
func (s *Server) options(ro runOptions) ppd.Options {
	return ppd.Options{
		Seed:            ro.Seed,
		Quantum:         ro.Quantum,
		MaxSteps:        ro.MaxSteps,
		NoFusion:        ro.NoFusion,
		StopAtFirstRace: ro.StopAtFirstRace,
		StreamBatch:     ro.StreamBatch,
		Workers:         s.cfg.SessionWorkers,
		CacheBound:      s.cfg.CacheBound,
		CacheDir:        s.cfg.CacheDir,
	}
}

// sessionInfo is the listing/attach view of a session.
type sessionInfo struct {
	ID         string    `json:"id"`
	Filename   string    `json:"filename"`
	Created    time.Time `json:"created"`
	IdleNS     int64     `json:"idle_ns"`
	Seed       int64     `json:"seed"`
	Quantum    int       `json:"quantum"`
	Procs      int       `json:"procs"`
	Failed     string    `json:"failed,omitempty"`
	Deadlocked bool      `json:"deadlocked"`
}

func (ss *session) info(now time.Time) sessionInfo {
	info := sessionInfo{
		ID:       ss.id,
		Filename: ss.filename,
		Created:  ss.created,
		IdleNS:   now.UnixNano() - ss.lastUsed.Load(),
		Seed:     ss.seed.Load(),
		Quantum:  int(ss.quantum.Load()),
	}
	if info.IdleNS < 0 {
		info.IdleNS = 0
	}
	exec := ss.sess.Execution()
	info.Procs = exec.Log().NumProcs()
	info.Deadlocked = exec.Deadlocked()
	if err := ss.sess.Failed(); err != nil {
		info.Failed = err.Error()
	}
	return info
}

type createRequest struct {
	Filename string `json:"filename"`
	Source   string `json:"source"`
	runOptions
}

type createResponse struct {
	sessionInfo
	Output string `json:"output"`
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	s.cQueries.Inc()
	var req createRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if req.Source == "" {
		writeError(w, fmt.Errorf("%w: request field \"source\" is empty", ppd.ErrInvalidOptions))
		return
	}
	if req.Filename == "" {
		req.Filename = "session.mpl"
	}
	// Claim a table slot before the expensive compile+run: a server at
	// MaxSessions refuses immediately instead of compiling first.
	res, err := s.reserve()
	if err != nil {
		writeError(w, err)
		return
	}
	defer res.release()
	release, err := s.admit(r.Context().Done())
	if err != nil {
		writeError(w, err)
		return
	}
	defer release()

	var out limitedBuffer
	opts := s.options(req.runOptions)
	opts.Output = &out
	sess, err := ppd.OpenSessionContext(r.Context(), req.Filename, req.Source, opts)
	if err != nil {
		if errors.Is(err, ppd.ErrCompile) {
			writeErrorCode(w, http.StatusBadRequest, "compile_error", err)
		} else {
			// Options, server-state, cancellation, or run-phase
			// infrastructure errors keep their own class.
			writeError(w, err)
		}
		return
	}
	now := time.Now()
	ss := &session{
		id:       newID(),
		filename: req.Filename,
		created:  now,
		sess:     sess,
	}
	ss.seed.Store(req.Seed)
	ss.quantum.Store(int64(req.Quantum))
	ss.touch(now)
	s.insert(ss, res)
	s.cCreated.Inc()
	writeJSON(w, http.StatusCreated, createResponse{sessionInfo: ss.info(now), Output: out.String()})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.cQueries.Inc()
	now := time.Now()
	s.mu.Lock()
	infos := make([]sessionInfo, 0, len(s.sessions))
	live := make([]*session, 0, len(s.sessions))
	for _, ss := range s.sessions {
		live = append(live, ss)
	}
	s.mu.Unlock()
	for _, ss := range live {
		infos = append(infos, ss.info(now))
	}
	writeJSON(w, http.StatusOK, map[string]any{"sessions": infos, "count": len(infos)})
}

func (s *Server) handleAttach(w http.ResponseWriter, r *http.Request) {
	s.cQueries.Inc()
	ss, err := s.lookup(r.PathValue("id"), time.Now())
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ss.info(time.Now()))
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	s.cQueries.Inc()
	ss, err := s.remove(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	s.retire(ss, s.cClosed)
	writeJSON(w, http.StatusOK, map[string]any{"closed": ss.id})
}

func (s *Server) handleRerun(w http.ResponseWriter, r *http.Request) {
	s.cQueries.Inc()
	var req runOptions
	if err := readJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	ss, err := s.lookup(r.PathValue("id"), time.Now())
	if err != nil {
		writeError(w, err)
		return
	}
	// Worker slot first, session lock second — the same order withSession
	// uses. The reverse order can deadlock the pool: queries holding
	// every slot block on the session lock while the rerun holds the lock
	// waiting for a slot.
	release, err := s.admit(r.Context().Done())
	if err != nil {
		writeError(w, err)
		return
	}
	defer release()
	// Re-run is exclusive: instead of queueing behind a long query (and
	// invalidating the execution it is looking at), answer busy.
	if !ss.mu.TryLock() {
		s.cBusy.Inc()
		writeError(w, fmt.Errorf("%w: %q has an operation in flight", ppd.ErrSessionBusy, ss.id))
		return
	}
	defer ss.mu.Unlock()
	if r.URL.Query().Get("stream") == "1" {
		s.streamRerun(w, r, ss, req)
		return
	}
	var out limitedBuffer
	opts := s.options(req)
	opts.Output = &out
	if err := ss.sess.Rerun(r.Context(), opts); err != nil {
		writeError(w, err)
		return
	}
	ss.seed.Store(req.Seed)
	ss.quantum.Store(int64(req.Quantum))
	writeJSON(w, http.StatusOK, createResponse{sessionInfo: ss.info(time.Now()), Output: out.String()})
}

// streamEvent is one NDJSON line of a streaming re-run: type "race" lines
// arrive incrementally while the program is still running, then exactly
// one "summary" (or "error") line closes the stream.
type streamEvent struct {
	Type string `json:"type"`

	// type "race"
	Race string `json:"race,omitempty"`

	// type "summary"
	Count         int    `json:"count,omitempty"`
	Report        string `json:"report,omitempty"`
	StoppedAtRace bool   `json:"stopped_at_race,omitempty"`
	Batches       int64  `json:"stream_batches,omitempty"`
	Highwater     int64  `json:"stream_frontier_highwater,omitempty"`
	Retired       int64  `json:"stream_events_retired,omitempty"`
	Output        string `json:"output,omitempty"`

	// type "error"
	Error string `json:"error,omitempty"`
}

// streamRerun is the ?stream=1 branch of handleRerun: the re-run happens
// with the online analysis pipeline attached and each race is written to
// the response — NDJSON, flushed per event — while the program is still
// executing. The caller holds the session's exclusive lock and a worker
// slot. Because the 200 header is committed before the run starts, a
// failing run is reported as a final "error" line rather than a status.
func (s *Server) streamRerun(w http.ResponseWriter, r *http.Request, ss *session, req runOptions) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	var out limitedBuffer
	opts := s.options(req)
	opts.Output = &out
	// The callback runs on the pipeline's feeding goroutine; StreamRaces
	// does not return until that goroutine has drained (the tee joins it),
	// so these writes never interleave with the summary below.
	res, err := ss.sess.StreamRaces(r.Context(), opts, func(ev ppd.RaceEvent) {
		_ = enc.Encode(streamEvent{Type: "race", Race: ev.String()})
		if flusher != nil {
			flusher.Flush()
		}
	})
	if err != nil {
		_ = enc.Encode(streamEvent{Type: "error", Error: err.Error()})
		return
	}
	ss.seed.Store(req.Seed)
	ss.quantum.Store(int64(req.Quantum))
	exec := ss.sess.Execution()
	report := exec.OnlineRaceReport()
	_ = enc.Encode(streamEvent{
		Type:          "summary",
		Count:         len(res.Races),
		Report:        report,
		StoppedAtRace: exec.StoppedAtRace(),
		Batches:       res.Batches,
		Highwater:     res.Highwater,
		Retired:       res.Retired,
		Output:        out.String(),
	})
	if flusher != nil {
		flusher.Flush()
	}
}

type racesResponse struct {
	Count  int      `json:"count"`
	Report string   `json:"report"`
	Races  []string `json:"races"`
}

func (s *Server) handleRaces(w http.ResponseWriter, r *http.Request) {
	s.withSession(w, r, func(ss *session) (any, error) {
		races, err := ss.sess.Races()
		if err != nil {
			return nil, err
		}
		report, err := ss.sess.RaceReport()
		if err != nil {
			return nil, err
		}
		resp := racesResponse{Count: len(races), Report: report}
		for _, rc := range races {
			resp.Races = append(resp.Races, rc.String())
		}
		return resp, nil
	})
}

type flowbackRequest struct {
	PID   int `json:"pid"`
	Depth int `json:"depth"`
}

func (s *Server) handleFlowback(w http.ResponseWriter, r *http.Request) {
	var req flowbackRequest
	if err := readJSON(r, &req); err != nil {
		s.cQueries.Inc()
		writeError(w, err)
		return
	}
	if req.Depth <= 0 {
		req.Depth = 4
	}
	s.withSession(w, r, func(ss *session) (any, error) {
		frag, err := ss.sess.Flowback(req.PID, req.Depth)
		if err != nil {
			return nil, err
		}
		interval, err := ss.sess.FocusInterval(req.PID)
		if err != nil {
			return nil, err
		}
		return map[string]any{"pid": req.PID, "interval": interval, "depth": req.Depth, "fragment": frag}, nil
	})
}

type whatIfRequest struct {
	PID    int    `json:"pid"`
	Prelog int    `json:"prelog"` // < 0 selects the focus interval
	Global string `json:"global"`
	Value  int64  `json:"value"`
}

type whatIfResponse struct {
	OriginalErr    string `json:"original_err,omitempty"`
	ModifiedErr    string `json:"modified_err,omitempty"`
	ChangedGlobals []int  `json:"changed_globals"`
}

func (s *Server) handleWhatIf(w http.ResponseWriter, r *http.Request) {
	var req whatIfRequest
	if err := readJSON(r, &req); err != nil {
		s.cQueries.Inc()
		writeError(w, err)
		return
	}
	s.withSession(w, r, func(ss *session) (any, error) {
		res, err := ss.sess.WhatIf(req.PID, req.Prelog, req.Global, req.Value)
		if err != nil {
			return nil, err
		}
		resp := whatIfResponse{ChangedGlobals: res.ChangedGlobals}
		if res.ChangedGlobals == nil {
			resp.ChangedGlobals = []int{}
		}
		if res.Original.Err != nil {
			resp.OriginalErr = res.Original.Err.Error()
		}
		if res.Modified.Err != nil {
			resp.ModifiedErr = res.Modified.Err.Error()
		}
		return resp, nil
	})
}

func (s *Server) handleVet(w http.ResponseWriter, r *http.Request) {
	s.withSession(w, r, func(ss *session) (any, error) {
		res, err := ss.sess.Vet()
		if err != nil {
			return nil, err
		}
		return map[string]any{
			"clean":       res.Clean(),
			"diagnostics": len(res.Diagnostics),
			"text":        res.Text(),
		}, nil
	})
}

func (s *Server) handleLog(w http.ResponseWriter, r *http.Request) {
	s.cQueries.Inc()
	ss, err := s.lookup(r.PathValue("id"), time.Now())
	if err != nil {
		writeError(w, err)
		return
	}
	release, err := s.admit(r.Context().Done())
	if err != nil {
		writeError(w, err)
		return
	}
	defer release()
	var buf limitedBuffer
	buf.limit = 1 << 30
	if err := ss.sess.WriteLog(&buf); err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(buf.Len()))
	_, _ = w.Write(buf.Bytes())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.cQueries.Inc()
	ss, err := s.lookup(r.PathValue("id"), time.Now())
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ss.sess.Stats())
}

type compileRequest struct {
	Filename string `json:"filename"`
	Source   string `json:"source"`
	NoFusion bool   `json:"no_fusion"`
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	s.cQueries.Inc()
	var req compileRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if req.Filename == "" {
		req.Filename = "probe.mpl"
	}
	release, err := s.admit(r.Context().Done())
	if err != nil {
		writeError(w, err)
		return
	}
	defer release()
	prog, err := ppd.CompileOpts(req.Filename, req.Source, eblock.DefaultConfig(),
		ppd.Options{CacheDir: s.cfg.CacheDir, NoFusion: req.NoFusion})
	if err != nil {
		if errors.Is(err, ppd.ErrCompile) {
			writeErrorCode(w, http.StatusBadRequest, "compile_error", err)
		} else {
			writeError(w, err)
		}
		return
	}
	cs := prog.CompileStats()
	writeJSON(w, http.StatusOK, map[string]any{
		"filename":     req.Filename,
		"funcs":        cs.Counter("compile.funcs"),
		"instrs":       cs.Counter("compile.instrs"),
		"eblocks":      cs.Counter("compile.eblocks"),
		"cache_hits":   cs.Counter("compile.cache.hits"),
		"cache_misses": cs.Counter("compile.cache.misses"),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	n := len(s.sessions)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "sessions": n})
}

// withSession is the shared shape of the per-session query handlers:
// lookup (touching the TTL clock), admission control, the per-session
// lock (concurrent queries on one session serialize; exclusive
// operations observe them as busy), run the query, and encode the reply
// or the mapped error.
func (s *Server) withSession(w http.ResponseWriter, r *http.Request, fn func(*session) (any, error)) {
	s.cQueries.Inc()
	ss, err := s.lookup(r.PathValue("id"), time.Now())
	if err != nil {
		writeError(w, err)
		return
	}
	release, err := s.admit(r.Context().Done())
	if err != nil {
		writeError(w, err)
		return
	}
	defer release()
	ss.mu.Lock()
	defer ss.mu.Unlock()
	resp, err := fn(ss)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// limitedBuffer captures program output with a cap, so a print-heavy
// program cannot balloon a session-creation response.
type limitedBuffer struct {
	buf       []byte
	limit     int
	truncated bool
}

func (b *limitedBuffer) Write(p []byte) (int, error) {
	limit := b.limit
	if limit == 0 {
		limit = 1 << 20
	}
	if room := limit - len(b.buf); room > 0 {
		if len(p) <= room {
			b.buf = append(b.buf, p...)
		} else {
			b.buf = append(b.buf, p[:room]...)
			b.truncated = true
		}
	} else if len(p) > 0 {
		b.truncated = true
	}
	return len(p), nil
}

func (b *limitedBuffer) String() string {
	if b.truncated {
		return string(b.buf) + "\n[output truncated]\n"
	}
	return string(b.buf)
}

func (b *limitedBuffer) Bytes() []byte { return b.buf }
func (b *limitedBuffer) Len() int      { return len(b.buf) }
