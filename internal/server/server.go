// Package server implements the `ppd serve` daemon: a long-running
// HTTP/JSON service that manages many concurrent debugging sessions over
// the public ppd.Session API. It is the composition layer the ROADMAP's
// north star calls for — the pieces it glues together all predate it:
//
//   - the content-addressed artifact cache (Config.CacheDir) is shared by
//     every session, so identical source compiles once across the whole
//     daemon's lifetime;
//   - each session owns a ppd.Session — compiled program, logged
//     execution, and a Controller with its LRU-bounded emulation cache;
//   - heavy work (compile+run, race detection, flowback, what-if, vet)
//     passes admission control: a bounded worker pool with a bounded
//     wait queue, and 429 backpressure once both are full;
//   - idle sessions are evicted by a TTL janitor, releasing their
//     emulation caches deterministically;
//   - every obs snapshot — live sessions, retired sessions, and the
//     server's own counters — is exported at /metrics.
//
// Error mapping (ppd sentinel → HTTP status):
//
//	ppd.ErrInvalidOptions   400 invalid_options
//	ppd.ErrSessionNotFound  404 session_not_found
//	ppd.ErrSessionBusy      409 session_busy
//	ppd.ErrSessionClosed    410 session_closed
//	ppd.ErrServerSaturated  429 server_saturated
//	(anything else)         500 internal
//
// Compile/parse failures (ppd.ErrCompile) map to 400 compile_error; a
// creation error that is neither a compile failure nor one of the
// sentinels above is a run-phase infrastructure failure and maps to 500
// internal — never to compile_error.
package server

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ppd"
	"ppd/internal/obs"
)

// Config tunes a Server. The zero value serves: GOMAXPROCS workers, a
// 4×workers admission queue, 1024 sessions, a 15-minute idle TTL, and no
// persistent artifact cache.
type Config struct {
	// CacheDir enables the persistent artifact cache, shared by every
	// session: two sessions over identical source compile once. Empty
	// disables (each session still compiles normally).
	CacheDir string

	// MaxSessions caps live sessions; creation beyond it is refused with
	// ppd.ErrServerSaturated. <= 0 selects 1024.
	MaxSessions int

	// SessionTTL evicts sessions idle longer than this, releasing their
	// emulation caches. 0 selects 15 minutes; < 0 disables eviction.
	SessionTTL time.Duration

	// Workers bounds concurrently executing heavy operations (session
	// creation, re-run, races, flowback, what-if, vet, log download).
	// <= 0 selects GOMAXPROCS.
	Workers int

	// MaxQueue bounds requests waiting for a worker slot; beyond it the
	// request is refused with ppd.ErrServerSaturated. 0 selects
	// 4×Workers; < 0 refuses immediately once all workers are busy.
	MaxQueue int

	// SessionWorkers bounds each session's debugging-phase fan-out
	// (ppd.Options.Workers). 0 leaves the per-session default.
	SessionWorkers int

	// CacheBound caps each session's emulation LRU
	// (ppd.Options.CacheBound). 0 leaves the per-session default.
	CacheBound int
}

// withDefaults resolves the zero-value knobs.
func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	if c.SessionTTL == 0 {
		c.SessionTTL = 15 * time.Minute
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 4 * c.Workers
	}
	return c
}

// session is one managed debugging session. Its mutex serializes the
// operations the HTTP surface runs against it; exclusive operations
// (re-run, delete) TryLock and answer ErrSessionBusy instead of queueing
// behind a long query.
type session struct {
	id       string
	filename string
	created  time.Time

	mu   sync.Mutex
	sess *ppd.Session

	// lastUsed is the admission timestamp of the most recent request that
	// touched the session (atomic UnixNano; the janitor reads it without
	// taking mu, so a long-running query cannot stall eviction scans).
	lastUsed atomic.Int64

	// seed/quantum record the options of the current execution for
	// listings and for the race-report identity contract. Atomics: list
	// and attach read them without the session lock, re-run writes them.
	seed    atomic.Int64
	quantum atomic.Int64
}

func (ss *session) touch(now time.Time) { ss.lastUsed.Store(now.UnixNano()) }

// Server is the daemon: a session table, an admission-controlled worker
// pool, a TTL janitor, and the HTTP surface over both.
type Server struct {
	cfg  Config
	sink *obs.Sink

	sem    chan struct{} // worker slots
	queued atomic.Int64  // requests waiting for a slot

	mu       sync.Mutex
	sessions map[string]*session
	reserved int           // table slots claimed by in-flight creates
	retired  *obs.Snapshot // final stats of closed/expired sessions

	janitorStop chan struct{}
	janitorDone chan struct{}

	// Resolved counters (the sink outlives every request).
	cCreated   *obs.Counter
	cClosed    *obs.Counter
	cExpired   *obs.Counter
	cQueries   *obs.Counter
	cSaturated *obs.Counter
	cBusy      *obs.Counter
}

// New builds a Server. Call Start to launch the TTL janitor and Close to
// shut everything down; Handler returns the HTTP surface.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	sink := obs.New()
	return &Server{
		cfg:        cfg,
		sink:       sink,
		sem:        make(chan struct{}, cfg.Workers),
		sessions:   make(map[string]*session),
		retired:    &obs.Snapshot{Counters: map[string]int64{}, Timers: map[string]obs.TimerStat{}},
		cCreated:   sink.Counter("server.sessions.created"),
		cClosed:    sink.Counter("server.sessions.closed"),
		cExpired:   sink.Counter("server.sessions.expired"),
		cQueries:   sink.Counter("server.queries"),
		cSaturated: sink.Counter("server.rejected.saturated"),
		cBusy:      sink.Counter("server.rejected.busy"),
	}
}

// Start launches the TTL janitor. It is a no-op when eviction is
// disabled, and must not be called twice without an intervening Close.
func (s *Server) Start() {
	if s.cfg.SessionTTL <= 0 {
		return
	}
	s.janitorStop = make(chan struct{})
	s.janitorDone = make(chan struct{})
	period := s.cfg.SessionTTL / 4
	if period < time.Second {
		period = time.Second
	}
	go func() {
		defer close(s.janitorDone)
		tick := time.NewTicker(period)
		defer tick.Stop()
		for {
			select {
			case <-s.janitorStop:
				return
			case now := <-tick.C:
				s.SweepIdle(now)
			}
		}
	}()
}

// Close stops the janitor and closes every live session, folding their
// final stats into the retired aggregate (still visible at /metrics
// until the Server itself is dropped).
func (s *Server) Close() {
	if s.janitorStop != nil {
		close(s.janitorStop)
		<-s.janitorDone
		s.janitorStop = nil
	}
	s.mu.Lock()
	victims := make([]*session, 0, len(s.sessions))
	for id, ss := range s.sessions {
		victims = append(victims, ss)
		delete(s.sessions, id)
	}
	s.mu.Unlock()
	for _, ss := range victims {
		s.retire(ss, s.cClosed)
	}
}

// SweepIdle evicts every session idle since before now−TTL and returns
// how many were evicted. The janitor calls it periodically; tests call
// it directly with a synthetic clock.
func (s *Server) SweepIdle(now time.Time) int {
	if s.cfg.SessionTTL <= 0 {
		return 0
	}
	deadline := now.Add(-s.cfg.SessionTTL).UnixNano()
	s.mu.Lock()
	var victims []*session
	for id, ss := range s.sessions {
		if ss.lastUsed.Load() < deadline {
			victims = append(victims, ss)
			delete(s.sessions, id)
		}
	}
	s.mu.Unlock()
	for _, ss := range victims {
		s.retire(ss, s.cExpired)
	}
	return len(victims)
}

// retire closes a session already removed from the table and folds its
// final observability snapshot (which includes the cache release the
// Close performs) into the retired aggregate. It waits for the session's
// in-flight operation, never holding the server lock while doing so.
func (s *Server) retire(ss *session, counter *obs.Counter) {
	ss.mu.Lock()
	_ = ss.sess.Close()
	final := ss.sess.Stats()
	ss.mu.Unlock()
	counter.Inc()
	s.mu.Lock()
	s.retired.Merge(final)
	s.mu.Unlock()
}

// admit acquires a worker slot, queueing up to MaxQueue waiters, and
// returns the release func. Beyond the queue bound — or if the request's
// context dies while waiting — it fails without running the work.
func (s *Server) admit(done <-chan struct{}) (func(), error) {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, nil
	default:
	}
	if s.queued.Add(1) > int64(s.cfg.MaxQueue) {
		s.queued.Add(-1)
		s.cSaturated.Inc()
		return nil, ppd.ErrServerSaturated
	}
	defer s.queued.Add(-1)
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, nil
	case <-done:
		return nil, fmt.Errorf("ppd: request cancelled while queued for a worker")
	}
}

// lookup finds a live session and touches its idle clock.
func (s *Server) lookup(id string, now time.Time) (*session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ss, ok := s.sessions[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ppd.ErrSessionNotFound, id)
	}
	ss.touch(now)
	return ss, nil
}

// remove unlinks a session from the table (for DELETE).
func (s *Server) remove(id string) (*session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ss, ok := s.sessions[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ppd.ErrSessionNotFound, id)
	}
	delete(s.sessions, id)
	return ss, nil
}

// reservation is a claimed slot in the session table: reserve takes it
// before the expensive compile+run so MaxSessions refuses work before
// performing it, insert transfers it to the live table, and release
// (safe to defer unconditionally) returns it if the session never
// materialized.
type reservation struct {
	s    *Server
	done bool // consumed by insert or returned by release; guarded by s.mu
}

// reserve claims a table slot, enforcing MaxSessions against live
// sessions plus in-flight creates.
func (s *Server) reserve() (*reservation, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.sessions)+s.reserved >= s.cfg.MaxSessions {
		s.cSaturated.Inc()
		return nil, fmt.Errorf("%w: %d sessions live (MaxSessions)", ppd.ErrServerSaturated, len(s.sessions))
	}
	s.reserved++
	return &reservation{s: s}, nil
}

func (r *reservation) release() {
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	if !r.done {
		r.done = true
		r.s.reserved--
	}
}

// insert registers a new session, consuming the reservation its create
// holds (so the table bound is exact: a session is either reserved or
// live, never both, never neither).
func (s *Server) insert(ss *session, res *reservation) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !res.done {
		res.done = true
		s.reserved--
	}
	s.sessions[ss.id] = ss
}

// newID mints a session ID: 8 random bytes, hex-encoded.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("server: id entropy unavailable: %v", err))
	}
	return "s" + hex.EncodeToString(b[:])
}

// Metrics builds the daemon-wide observability snapshot: the server's own
// counters, the retired aggregate, every live session's three-phase
// stats, and the point-in-time gauges (live sessions, queue depth).
func (s *Server) Metrics() *obs.Snapshot {
	snap := s.sink.Snapshot()
	s.mu.Lock()
	live := make([]*session, 0, len(s.sessions))
	for _, ss := range s.sessions {
		live = append(live, ss)
	}
	snap.Merge(s.retired)
	snap.Counters["server.sessions.active"] = int64(len(s.sessions))
	s.mu.Unlock()
	snap.Counters["server.queue.depth"] = s.queued.Load()
	snap.Counters["server.workers"] = int64(s.cfg.Workers)
	for _, ss := range live {
		snap.Merge(ss.sess.Stats())
	}
	return snap
}

// Handler returns the daemon's HTTP surface. See routes in handlers.go.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.routes(mux)
	return mux
}
