package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"ppd"
	"ppd/internal/workloads"
)

const crashSrc = `
var g = 1;
func f(a int) int {
	g = g + a;
	return g * 2;
}
func main() {
	var r = f(20) / (g - 21);
	print(r);
}
`

// harness bundles a Server with an httptest frontend and a JSON client.
type harness struct {
	srv *Server
	ts  *httptest.Server
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return &harness{srv: srv, ts: ts}
}

// call issues a JSON request and decodes the response body into out
// (which may be nil). It returns the HTTP status code.
func (h *harness) call(t *testing.T, method, path string, body, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, h.ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: decode %q: %v", method, path, data, err)
		}
	}
	if out != nil && resp.StatusCode >= 300 {
		_ = json.Unmarshal(data, out) // error envelope, best effort
	}
	return resp.StatusCode
}

func (h *harness) create(t *testing.T, src string, extra map[string]any) string {
	t.Helper()
	body := map[string]any{"filename": "t.mpl", "source": src}
	for k, v := range extra {
		body[k] = v
	}
	var created struct {
		ID string `json:"id"`
	}
	if code := h.call(t, "POST", "/v1/sessions", body, &created); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	return created.ID
}

func (h *harness) metrics(t *testing.T) map[string]int64 {
	t.Helper()
	var m struct {
		Counters map[string]int64 `json:"counters"`
	}
	if code := h.call(t, "GET", "/metrics", nil, &m); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	return m.Counters
}

// TestServerLifecycle drives the full session surface end to end over
// HTTP: create, list, attach, query every endpoint, delete, 404 after.
func TestServerLifecycle(t *testing.T) {
	h := newHarness(t, Config{})
	id := h.create(t, crashSrc, nil)

	var info struct {
		ID     string `json:"id"`
		Failed string `json:"failed"`
	}
	if code := h.call(t, "GET", "/v1/sessions/"+id, nil, &info); code != http.StatusOK {
		t.Fatalf("attach: status %d", code)
	}
	if info.Failed == "" {
		t.Error("attach info lost the failure")
	}

	var list struct {
		Count int `json:"count"`
	}
	h.call(t, "GET", "/v1/sessions", nil, &list)
	if list.Count != 1 {
		t.Errorf("list count = %d, want 1", list.Count)
	}

	if code := h.call(t, "GET", "/v1/sessions/"+id+"/races", nil, nil); code != http.StatusOK {
		t.Errorf("races: status %d", code)
	}
	var fb struct {
		Fragment string `json:"fragment"`
	}
	if code := h.call(t, "POST", "/v1/sessions/"+id+"/flowback",
		map[string]any{"pid": 0, "depth": 3}, &fb); code != http.StatusOK || fb.Fragment == "" {
		t.Errorf("flowback: status %d, fragment %q", code, fb.Fragment)
	}
	var wi struct {
		OriginalErr string `json:"original_err"`
		ModifiedErr string `json:"modified_err"`
	}
	if code := h.call(t, "POST", "/v1/sessions/"+id+"/whatif",
		map[string]any{"pid": 0, "prelog": -1, "global": "g", "value": 5}, &wi); code != http.StatusOK {
		t.Fatalf("whatif: status %d", code)
	}
	if wi.OriginalErr == "" || wi.ModifiedErr != "" {
		t.Errorf("whatif: original %q, modified %q; want failure → success", wi.OriginalErr, wi.ModifiedErr)
	}
	if code := h.call(t, "GET", "/v1/sessions/"+id+"/vet", nil, nil); code != http.StatusOK {
		t.Errorf("vet: status %d", code)
	}
	if code := h.call(t, "GET", "/v1/sessions/"+id+"/stats", nil, nil); code != http.StatusOK {
		t.Errorf("stats: status %d", code)
	}
	resp, err := http.Get(h.ts.URL + "/v1/sessions/" + id + "/log")
	if err != nil {
		t.Fatal(err)
	}
	logBytes, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(logBytes) == 0 {
		t.Errorf("log download: status %d, %d bytes", resp.StatusCode, len(logBytes))
	}

	// Re-run under a different seed replaces the execution in place.
	if code := h.call(t, "POST", "/v1/sessions/"+id+"/run",
		map[string]any{"seed": 9}, nil); code != http.StatusOK {
		t.Errorf("rerun: status %d", code)
	}

	if code := h.call(t, "DELETE", "/v1/sessions/"+id, nil, nil); code != http.StatusOK {
		t.Fatalf("delete: status %d", code)
	}
	var errBody struct {
		Code string `json:"code"`
	}
	if code := h.call(t, "GET", "/v1/sessions/"+id, nil, &errBody); code != http.StatusNotFound {
		t.Errorf("attach after delete: status %d, want 404", code)
	}
	if errBody.Code != "session_not_found" {
		t.Errorf("error code = %q, want session_not_found", errBody.Code)
	}
}

// TestServerConcurrentSessions exercises the whole table under the race
// detector: many goroutines create, attach, query, re-run, and delete
// overlapping sessions while a sweeper runs.
func TestServerConcurrentSessions(t *testing.T) {
	h := newHarness(t, Config{SessionTTL: time.Hour})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := h.create(t, crashSrc, map[string]any{"seed": i})
			h.call(t, "GET", "/v1/sessions/"+id, nil, nil)
			h.call(t, "GET", "/v1/sessions/"+id+"/races", nil, nil)
			h.call(t, "POST", "/v1/sessions/"+id+"/flowback", map[string]any{"pid": 0, "depth": 2}, nil)
			h.call(t, "GET", "/v1/sessions", nil, nil)
			if i%2 == 0 {
				h.call(t, "DELETE", "/v1/sessions/"+id, nil, nil)
			}
		}(i)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-done:
				return
			default:
				h.srv.SweepIdle(time.Now()) // TTL is an hour: evicts nothing, races with everything
				h.call(t, "GET", "/metrics", nil, nil)
			}
		}
	}()
	wg.Wait()
	done <- struct{}{}
	<-done

	counters := h.metrics(t)
	if got := counters["server.sessions.created"]; got != 8 {
		t.Errorf("server.sessions.created = %d, want 8", got)
	}
	if got := counters["server.sessions.closed"]; got != 4 {
		t.Errorf("server.sessions.closed = %d, want 4", got)
	}
	if got := counters["server.sessions.active"]; got != 4 {
		t.Errorf("server.sessions.active = %d, want 4", got)
	}
}

// TestTTLEvictionFreesEmulationCache is the satellite contract: an idle
// session's eviction drops its controller cache, observable in /metrics as
// debug.cache.evictions even after the session is gone.
func TestTTLEvictionFreesEmulationCache(t *testing.T) {
	ttl := time.Minute
	h := newHarness(t, Config{SessionTTL: ttl})
	id := h.create(t, crashSrc, nil)
	// Populate the emulation cache.
	if code := h.call(t, "POST", "/v1/sessions/"+id+"/flowback",
		map[string]any{"pid": 0, "depth": 2}, nil); code != http.StatusOK {
		t.Fatalf("flowback: status %d", code)
	}

	// Not yet idle long enough: nothing happens.
	if n := h.srv.SweepIdle(time.Now()); n != 0 {
		t.Fatalf("premature eviction of %d session(s)", n)
	}
	// Synthetic clock: far past the TTL.
	if n := h.srv.SweepIdle(time.Now().Add(ttl + time.Hour)); n != 1 {
		t.Fatalf("SweepIdle evicted %d session(s), want 1", n)
	}

	counters := h.metrics(t)
	if got := counters["server.sessions.expired"]; got != 1 {
		t.Errorf("server.sessions.expired = %d, want 1", got)
	}
	if got := counters["server.sessions.active"]; got != 0 {
		t.Errorf("server.sessions.active = %d, want 0", got)
	}
	if got := counters["debug.cache.evictions"]; got < 1 {
		t.Errorf("debug.cache.evictions = %d, want >= 1 (eviction must free the emulation cache)", got)
	}
	if code := h.call(t, "GET", "/v1/sessions/"+id, nil, nil); code != http.StatusNotFound {
		t.Errorf("attach after expiry: status %d, want 404", code)
	}
}

// TestArtifactCacheSharedAcrossSessions: the second session over identical
// source must hit the persistent artifact cache, visible in /metrics.
func TestArtifactCacheSharedAcrossSessions(t *testing.T) {
	h := newHarness(t, Config{CacheDir: t.TempDir()})
	h.create(t, crashSrc, nil)
	h.create(t, crashSrc, nil)
	counters := h.metrics(t)
	if got := counters["compile.cache.hits"]; got < 1 {
		t.Errorf("compile.cache.hits = %d, want >= 1 (second identical compile must hit)", got)
	}
	if got := counters["compile.cache.misses"]; got != 1 {
		t.Errorf("compile.cache.misses = %d, want 1", got)
	}
}

// TestRaceReportByteIdentical: the report served over HTTP equals the
// single-process API's byte for byte, for the same (source, seed, quantum).
func TestRaceReportByteIdentical(t *testing.T) {
	wl := workloads.RacyCounter(4, 20, false)
	const seed, quantum = 11, 1

	direct, err := ppd.OpenSession(wl.Name+".mpl", wl.Src, ppd.Options{Seed: seed, Quantum: quantum})
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	want, err := direct.RaceReport()
	if err != nil {
		t.Fatal(err)
	}
	races, err := direct.Races()
	if err != nil {
		t.Fatal(err)
	}
	if len(races) == 0 {
		t.Fatal("racy workload produced no races; the identity check is vacuous")
	}

	h := newHarness(t, Config{})
	id := h.create(t, wl.Src, map[string]any{"seed": seed, "quantum": quantum})
	var resp struct {
		Count  int    `json:"count"`
		Report string `json:"report"`
	}
	if code := h.call(t, "GET", "/v1/sessions/"+id+"/races", nil, &resp); code != http.StatusOK {
		t.Fatalf("races: status %d", code)
	}
	if resp.Count != len(races) {
		t.Errorf("served %d races, direct API found %d", resp.Count, len(races))
	}
	if resp.Report != want {
		t.Errorf("served race report diverged from the direct API:\n--- direct\n%s\n--- served\n%s", want, resp.Report)
	}
}

// TestSaturation: with every worker slot taken and no queue, requests are
// refused with 429/server_saturated; MaxSessions bounds the table the same
// way.
func TestSaturation(t *testing.T) {
	h := newHarness(t, Config{Workers: 1, MaxQueue: -1})
	// Occupy the only worker slot from the test.
	h.srv.sem <- struct{}{}
	var errBody struct {
		Code string `json:"code"`
	}
	code := h.call(t, "POST", "/v1/sessions",
		map[string]any{"source": crashSrc}, &errBody)
	if code != http.StatusTooManyRequests || errBody.Code != "server_saturated" {
		t.Errorf("create while saturated: status %d code %q, want 429 server_saturated", code, errBody.Code)
	}
	<-h.srv.sem
	if got := h.metrics(t)["server.rejected.saturated"]; got != 1 {
		t.Errorf("server.rejected.saturated = %d, want 1", got)
	}

	// Table bound: a second session beyond MaxSessions is refused too.
	h2 := newHarness(t, Config{MaxSessions: 1})
	h2.create(t, crashSrc, nil)
	code = h2.call(t, "POST", "/v1/sessions", map[string]any{"source": crashSrc}, &errBody)
	if code != http.StatusTooManyRequests || errBody.Code != "server_saturated" {
		t.Errorf("create beyond MaxSessions: status %d code %q, want 429 server_saturated", code, errBody.Code)
	}
	// The bound is admission control, not a post-hoc check: a full table
	// refuses before compiling anything — even source that would not
	// compile is answered 429, not 400 compile_error.
	code = h2.call(t, "POST", "/v1/sessions", map[string]any{"source": "func main( {"}, &errBody)
	if code != http.StatusTooManyRequests || errBody.Code != "server_saturated" {
		t.Errorf("create beyond MaxSessions (bad source): status %d code %q, want 429 server_saturated (no compile)", code, errBody.Code)
	}
}

// TestRerunPoolNoDeadlock is the lock-ordering regression gate: re-run
// must take a worker slot before the session lock (the order every query
// uses). The reverse order deadlocked a Workers=1 pool — a query holding
// the only slot blocked on the session lock while a queued re-run held
// the lock waiting for the slot — so this hammers one session with
// interleaved re-runs and queries on a one-worker server and merely has
// to finish.
func TestRerunPoolNoDeadlock(t *testing.T) {
	h := newHarness(t, Config{Workers: 1, MaxQueue: 64})
	id := h.create(t, crashSrc, nil)
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 4; j++ {
				if i%2 == 0 {
					// 200 OK or 409 busy are both fine; hanging is not.
					h.call(t, "POST", "/v1/sessions/"+id+"/run", map[string]any{"seed": j}, nil)
				} else {
					h.call(t, "GET", "/v1/sessions/"+id+"/races", nil, nil)
					h.call(t, "GET", "/metrics", nil, nil)
				}
			}
		}(i)
	}
	wg.Wait()
}

// TestBusy: while an exclusive operation would collide with an in-flight
// one, re-run answers 409/session_busy instead of queueing.
func TestBusy(t *testing.T) {
	h := newHarness(t, Config{})
	id := h.create(t, crashSrc, nil)
	h.srv.mu.Lock()
	ss := h.srv.sessions[id]
	h.srv.mu.Unlock()
	ss.mu.Lock() // simulate a long-running query holding the session
	defer ss.mu.Unlock()
	var errBody struct {
		Code string `json:"code"`
	}
	code := h.call(t, "POST", "/v1/sessions/"+id+"/run", map[string]any{"seed": 1}, &errBody)
	if code != http.StatusConflict || errBody.Code != "session_busy" {
		t.Errorf("rerun while busy: status %d code %q, want 409 session_busy", code, errBody.Code)
	}
	if got := h.metrics(t)["server.rejected.busy"]; got != 1 {
		t.Errorf("server.rejected.busy = %d, want 1", got)
	}
}

// TestErrorMapping pins the remaining HTTP mappings: malformed JSON and
// invalid options are 400s with distinct codes, compile failures are 400
// compile_error, unknown sessions 404.
func TestErrorMapping(t *testing.T) {
	h := newHarness(t, Config{})
	var errBody struct {
		Code  string `json:"code"`
		Error string `json:"error"`
	}

	resp, err := http.Post(h.ts.URL+"/v1/sessions", "application/json",
		bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	_ = json.Unmarshal(data, &errBody)
	if resp.StatusCode != http.StatusBadRequest || errBody.Code != "invalid_options" {
		t.Errorf("malformed body: status %d code %q, want 400 invalid_options", resp.StatusCode, errBody.Code)
	}

	code := h.call(t, "POST", "/v1/sessions",
		map[string]any{"source": crashSrc, "quantum": -1}, &errBody)
	if code != http.StatusBadRequest || errBody.Code != "invalid_options" {
		t.Errorf("negative quantum: status %d code %q, want 400 invalid_options", code, errBody.Code)
	}

	code = h.call(t, "POST", "/v1/sessions",
		map[string]any{"source": "func main( {"}, &errBody)
	if code != http.StatusBadRequest || errBody.Code != "compile_error" {
		t.Errorf("syntax error: status %d code %q, want 400 compile_error", code, errBody.Code)
	}

	code = h.call(t, "POST", "/v1/sessions", map[string]any{"source": ""}, &errBody)
	if code != http.StatusBadRequest {
		t.Errorf("empty source: status %d, want 400", code)
	}

	code = h.call(t, "GET", "/v1/sessions/snope/races", nil, &errBody)
	if code != http.StatusNotFound || errBody.Code != "session_not_found" {
		t.Errorf("unknown session: status %d code %q, want 404 session_not_found", code, errBody.Code)
	}

	var health struct {
		Status string `json:"status"`
	}
	if code := h.call(t, "GET", "/healthz", nil, &health); code != http.StatusOK || health.Status != "ok" {
		t.Errorf("healthz: status %d body %+v", code, health)
	}
}

// TestJanitorEvicts covers the Start/Close path: a real (short-period)
// janitor evicts an idle session without test intervention.
func TestJanitorEvicts(t *testing.T) {
	srv := New(Config{SessionTTL: 10 * time.Millisecond})
	srv.Start()
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, _ := json.Marshal(map[string]any{"source": crashSrc})
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		srv.mu.Lock()
		n := len(srv.sessions)
		srv.mu.Unlock()
		if n == 0 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("janitor never evicted the idle session")
}

// TestMetricsGauges sanity-checks the derived gauges.
func TestMetricsGauges(t *testing.T) {
	h := newHarness(t, Config{Workers: 3})
	h.create(t, crashSrc, nil)
	counters := h.metrics(t)
	if got := counters["server.workers"]; got != 3 {
		t.Errorf("server.workers = %d, want 3", got)
	}
	if got := counters["server.queue.depth"]; got != 0 {
		t.Errorf("server.queue.depth = %d, want 0", got)
	}
	if got := counters["exec.steps"]; got <= 0 {
		t.Errorf("exec.steps = %d, want > 0 (live session stats must merge)", got)
	}
}

// TestStreamingRerun drives POST /run?stream=1: the response is NDJSON
// with incremental race events followed by one summary line whose report
// is byte-identical to the batch /races report over the same re-run, and
// the daemon's /metrics pick up the stream.* counters.
func TestStreamingRerun(t *testing.T) {
	wl := workloads.RacyCounter(3, 10, false)
	h := newHarness(t, Config{})
	id := h.create(t, wl.Src, map[string]any{"seed": int64(1), "quantum": 5})

	body, _ := json.Marshal(map[string]any{"seed": int64(2), "quantum": 1})
	resp, err := http.Post(h.ts.URL+"/v1/sessions/"+id+"/run?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream rerun: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}

	type line struct {
		Type    string `json:"type"`
		Race    string `json:"race"`
		Count   int    `json:"count"`
		Report  string `json:"report"`
		Batches int64  `json:"stream_batches"`
		Error   string `json:"error"`
	}
	var races []line
	var summary *line
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var l line
		if err := dec.Decode(&l); err != nil {
			t.Fatalf("decode NDJSON line: %v", err)
		}
		switch l.Type {
		case "race":
			if summary != nil {
				t.Error("race event after the summary line")
			}
			races = append(races, l)
		case "summary":
			cp := l
			summary = &cp
		default:
			t.Fatalf("unexpected line type %q (error=%q)", l.Type, l.Error)
		}
	}
	if summary == nil {
		t.Fatal("no summary line")
	}
	if len(races) == 0 || summary.Count == 0 {
		t.Fatalf("streamed %d race events, summary count %d", len(races), summary.Count)
	}
	if summary.Batches == 0 {
		t.Error("summary carries no stream_batches counter")
	}

	// The session now holds the monitored execution: the batch /races
	// report over it must equal the streamed summary's report.
	var batch struct {
		Report string `json:"report"`
	}
	if code := h.call(t, "GET", "/v1/sessions/"+id+"/races", nil, &batch); code != http.StatusOK {
		t.Fatalf("races after stream: status %d", code)
	}
	if batch.Report != summary.Report {
		t.Errorf("streamed report diverges from batch:\n--- streamed\n%s--- batch\n%s", summary.Report, batch.Report)
	}

	m := h.metrics(t)
	for _, key := range []string{"stream.batches", "stream.races.online", "stream.events.retired"} {
		if _, ok := m[key]; !ok {
			t.Errorf("/metrics missing %s after a streaming re-run", key)
		}
	}
	if m["stream.races.online"] == 0 {
		t.Error("/metrics stream.races.online is zero after a racy streaming re-run")
	}
}

// TestStreamingRerunStopAtFirstRace exercises the early-abort knob over
// HTTP: the summary reports stopped_at_race.
func TestStreamingRerunStopAtFirstRace(t *testing.T) {
	wl := workloads.RacyTicker(3, 200)
	h := newHarness(t, Config{})
	id := h.create(t, wl.Src, map[string]any{"quantum": 5})

	body, _ := json.Marshal(map[string]any{"quantum": 3, "stop_at_first_race": true})
	resp, err := http.Post(h.ts.URL+"/v1/sessions/"+id+"/run?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stopped bool
	var sawSummary bool
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var l struct {
			Type          string `json:"type"`
			StoppedAtRace bool   `json:"stopped_at_race"`
			Error         string `json:"error"`
		}
		if err := dec.Decode(&l); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if l.Type == "error" {
			t.Fatalf("stream error: %s", l.Error)
		}
		if l.Type == "summary" {
			sawSummary, stopped = true, l.StoppedAtRace
		}
	}
	if !sawSummary {
		t.Fatal("no summary line")
	}
	if !stopped {
		t.Error("summary does not report stopped_at_race")
	}
}
