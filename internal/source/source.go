// Package source provides source-file abstractions shared by every stage of
// the PPD compiler: files, byte-offset positions, human-readable line/column
// positions, spans, and diagnostic lists.
//
// Positions are compact (a file index plus byte offset) so AST nodes and
// bytecode instructions can carry them cheaply; they resolve to line/column
// only when formatting diagnostics or debugger output.
package source

import (
	"fmt"
	"sort"
	"strings"
)

// Pos is a compact position: a byte offset into a File. The zero value
// (NoPos) means "no position".
type Pos int

// NoPos is the zero Pos, meaning position information is absent.
const NoPos Pos = 0

// IsValid reports whether the position carries real location information.
func (p Pos) IsValid() bool { return p != NoPos }

// File holds the name and content of one source file plus the byte offsets
// of line starts, enabling O(log n) offset→line/column resolution.
type File struct {
	Name    string
	Content string
	lines   []int // byte offset of the start of each line
}

// NewFile builds a File, indexing line starts eagerly.
func NewFile(name, content string) *File {
	f := &File{Name: name, Content: content}
	f.lines = append(f.lines, 0)
	for i := 0; i < len(content); i++ {
		if content[i] == '\n' {
			f.lines = append(f.lines, i+1)
		}
	}
	return f
}

// Pos converts a byte offset into a Pos. Offsets are 0-based; Pos values are
// stored off-by-one so that offset 0 is distinguishable from NoPos.
func (f *File) Pos(offset int) Pos { return Pos(offset + 1) }

// Offset converts a Pos back into a byte offset.
func (f *File) Offset(p Pos) int { return int(p) - 1 }

// Position resolves a Pos to a line/column location.
func (f *File) Position(p Pos) Position {
	if !p.IsValid() {
		return Position{Filename: f.Name}
	}
	off := f.Offset(p)
	line := sort.Search(len(f.lines), func(i int) bool { return f.lines[i] > off }) - 1
	if line < 0 {
		line = 0
	}
	return Position{
		Filename: f.Name,
		Offset:   off,
		Line:     line + 1,
		Column:   off - f.lines[line] + 1,
	}
}

// Line returns the 1-based line number for p, or 0 when p is invalid.
func (f *File) Line(p Pos) int {
	if !p.IsValid() {
		return 0
	}
	return f.Position(p).Line
}

// LineText returns the text of the given 1-based line, without the newline.
func (f *File) LineText(line int) string {
	if line < 1 || line > len(f.lines) {
		return ""
	}
	start := f.lines[line-1]
	end := len(f.Content)
	if line < len(f.lines) {
		end = f.lines[line] - 1
	}
	return f.Content[start:end]
}

// NumLines returns the number of lines in the file.
func (f *File) NumLines() int { return len(f.lines) }

// Position is a resolved, human-readable source location.
type Position struct {
	Filename string
	Offset   int // byte offset, 0-based
	Line     int // 1-based
	Column   int // 1-based, in bytes
}

// IsValid reports whether the position has a line number.
func (p Position) IsValid() bool { return p.Line > 0 }

// String renders the position as file:line:column, omitting absent parts.
func (p Position) String() string {
	s := p.Filename
	if p.IsValid() {
		if s != "" {
			s += ":"
		}
		s += fmt.Sprintf("%d:%d", p.Line, p.Column)
	}
	if s == "" {
		return "-"
	}
	return s
}

// Span is a half-open [Start, End) region of a file.
type Span struct {
	Start, End Pos
}

// IsValid reports whether the span's start position is valid.
func (s Span) IsValid() bool { return s.Start.IsValid() }

// Diagnostic is one compiler or debugger message tied to a source position.
type Diagnostic struct {
	Pos  Position
	Msg  string
	Warn bool // warning rather than error
}

// Error implements the error interface.
func (d *Diagnostic) Error() string {
	kind := "error"
	if d.Warn {
		kind = "warning"
	}
	return fmt.Sprintf("%s: %s: %s", d.Pos, kind, d.Msg)
}

// ErrorList accumulates diagnostics across a compilation.
type ErrorList struct {
	diags []*Diagnostic
}

// Errorf appends a formatted error at pos.
func (l *ErrorList) Errorf(pos Position, format string, args ...any) {
	l.diags = append(l.diags, &Diagnostic{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// Warnf appends a formatted warning at pos.
func (l *ErrorList) Warnf(pos Position, format string, args ...any) {
	l.diags = append(l.diags, &Diagnostic{Pos: pos, Msg: fmt.Sprintf(format, args...), Warn: true})
}

// Len returns the total number of diagnostics (errors and warnings).
func (l *ErrorList) Len() int { return len(l.diags) }

// ErrCount returns the number of non-warning diagnostics.
func (l *ErrorList) ErrCount() int {
	n := 0
	for _, d := range l.diags {
		if !d.Warn {
			n++
		}
	}
	return n
}

// Diagnostics returns all accumulated diagnostics in insertion order.
func (l *ErrorList) Diagnostics() []*Diagnostic { return l.diags }

// Sort orders diagnostics by file, line, column.
func (l *ErrorList) Sort() {
	sort.SliceStable(l.diags, func(i, j int) bool {
		a, b := l.diags[i].Pos, l.diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
}

// Err returns nil when the list holds no errors; otherwise an error whose
// message joins every diagnostic, one per line.
func (l *ErrorList) Err() error {
	if l.ErrCount() == 0 {
		return nil
	}
	var b strings.Builder
	for i, d := range l.diags {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(d.Error())
	}
	return fmt.Errorf("%s", b.String())
}
