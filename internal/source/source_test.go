package source

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPositionResolution(t *testing.T) {
	f := NewFile("a.mpl", "ab\ncde\n\nf")
	cases := []struct {
		offset, line, col int
	}{
		{0, 1, 1}, {1, 1, 2}, {2, 1, 3}, // 'a' 'b' '\n'
		{3, 2, 1}, {5, 2, 3},
		{7, 3, 1},
		{8, 4, 1},
	}
	for _, c := range cases {
		pos := f.Position(f.Pos(c.offset))
		if pos.Line != c.line || pos.Column != c.col {
			t.Errorf("offset %d: got %d:%d, want %d:%d", c.offset, pos.Line, pos.Column, c.line, c.col)
		}
	}
	if got := f.NumLines(); got != 4 {
		t.Errorf("NumLines = %d, want 4", got)
	}
}

func TestPosRoundTripProperty(t *testing.T) {
	content := strings.Repeat("line one\nline two longer\n\n", 40)
	f := NewFile("p.mpl", content)
	prop := func(off uint16) bool {
		o := int(off) % len(content)
		return f.Offset(f.Pos(o)) == o
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestLineText(t *testing.T) {
	f := NewFile("a.mpl", "first\nsecond\nthird")
	if got := f.LineText(2); got != "second" {
		t.Errorf("LineText(2) = %q", got)
	}
	if got := f.LineText(3); got != "third" {
		t.Errorf("LineText(3) = %q", got)
	}
	if got := f.LineText(0); got != "" {
		t.Errorf("LineText(0) = %q", got)
	}
	if got := f.LineText(99); got != "" {
		t.Errorf("LineText(99) = %q", got)
	}
}

func TestNoPos(t *testing.T) {
	f := NewFile("a.mpl", "x")
	if NoPos.IsValid() {
		t.Error("NoPos must be invalid")
	}
	pos := f.Position(NoPos)
	if pos.IsValid() {
		t.Error("resolved NoPos must be invalid")
	}
	if got := pos.String(); got != "a.mpl" {
		t.Errorf("NoPos string = %q", got)
	}
	if f.Line(NoPos) != 0 {
		t.Error("Line(NoPos) != 0")
	}
}

func TestPositionString(t *testing.T) {
	p := Position{Filename: "f.mpl", Line: 3, Column: 7}
	if got := p.String(); got != "f.mpl:3:7" {
		t.Errorf("String = %q", got)
	}
	empty := Position{}
	if got := empty.String(); got != "-" {
		t.Errorf("empty String = %q", got)
	}
}

func TestErrorList(t *testing.T) {
	l := &ErrorList{}
	if l.Err() != nil {
		t.Error("empty list must have nil Err")
	}
	l.Warnf(Position{Filename: "w.mpl", Line: 1, Column: 1}, "watch out %d", 1)
	if l.Err() != nil {
		t.Error("warnings alone must not produce an error")
	}
	if l.ErrCount() != 0 || l.Len() != 1 {
		t.Errorf("counts: err=%d len=%d", l.ErrCount(), l.Len())
	}
	l.Errorf(Position{Filename: "e.mpl", Line: 2, Column: 3}, "bad %s", "thing")
	err := l.Err()
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "bad thing") || !strings.Contains(err.Error(), "watch out 1") {
		t.Errorf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "e.mpl:2:3: error:") {
		t.Errorf("err formatting = %v", err)
	}
}

func TestErrorListSort(t *testing.T) {
	l := &ErrorList{}
	l.Errorf(Position{Filename: "b.mpl", Line: 1, Column: 1}, "third")
	l.Errorf(Position{Filename: "a.mpl", Line: 5, Column: 1}, "second")
	l.Errorf(Position{Filename: "a.mpl", Line: 2, Column: 9}, "first-a")
	l.Errorf(Position{Filename: "a.mpl", Line: 2, Column: 1}, "first-b")
	l.Sort()
	d := l.Diagnostics()
	order := []string{"first-b", "first-a", "second", "third"}
	for i, want := range order {
		if d[i].Msg != want {
			t.Errorf("diag %d = %q, want %q", i, d[i].Msg, want)
		}
	}
}

func TestSpan(t *testing.T) {
	f := NewFile("s.mpl", "hello")
	sp := Span{Start: f.Pos(1), End: f.Pos(4)}
	if !sp.IsValid() {
		t.Error("span should be valid")
	}
	var zero Span
	if zero.IsValid() {
		t.Error("zero span should be invalid")
	}
}
